// Free-list slab pool for the steady-state hot path.
//
// PR 1 pooled the simulator's callback slots; this module generalizes that
// discipline to every remaining per-op allocation: coroutine frames (via
// Task's promise operator new), the Counter/Waiter synchronization state and
// per-verb OpState (via std::allocate_shared), and value byte buffers (via
// the Bytes/PoolVec vector aliases). With all of them on the pool, a
// quorum-of-3 write performs ZERO heap allocations at steady state — the
// zero_alloc_test guard enforces this for all three KV stores.
//
// Design:
//  * Power-of-two size classes from 64 B to 256 KB, each a singly-linked
//    free list carved from slabs (one ::operator new per slab refill, never
//    returned). Alloc/Free are O(1) pointer pops/pushes.
//  * The simulation is strictly single-threaded, so the pool is one global
//    set of shelves (equivalent to per-Worker/per-ClientCpu ownership, with
//    none of the plumbing). The shelves are a leaky heap singleton reachable
//    from a static pointer: free-listed memory is "still reachable" to leak
//    checkers, and no static-destruction-order hazard exists for late frees.
//  * Under AddressSanitizer the pool delegates straight to ::operator
//    new/delete. Pooled memory would otherwise mask use-after-free (a
//    recycled slot is live memory), so the ASan CI jobs run with full
//    allocator fidelity while production builds run allocation-free. The
//    zero-allocation guard test skips itself under ASan for the same reason.

#ifndef SWARM_SRC_SIM_POOL_H_
#define SWARM_SRC_SIM_POOL_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define SWARM_POOL_BYPASS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SWARM_POOL_BYPASS 1
#endif
#endif

namespace swarm::sim {

class FramePool {
 public:
  struct Stats {
    uint64_t allocs = 0;        // Pool hits (free-list pops).
    uint64_t frees = 0;         // Free-list pushes.
    uint64_t slab_refills = 0;  // ::operator new calls for slab growth.
    uint64_t slab_bytes = 0;    // Total bytes owned by slabs.
    uint64_t oversize = 0;      // Requests beyond the largest class.
  };

  static void* Alloc(size_t n) {
#ifdef SWARM_POOL_BYPASS
    return ::operator new(n);
#else
    const size_t cls = ClassOf(n);
    Shelves& s = S();
    if (cls >= kNumClasses) {
      ++s.stats.oversize;
      return ::operator new(n);
    }
    FreeNode*& head = s.head[cls];
    if (head == nullptr) {
      Refill(s, cls);
    }
    FreeNode* node = head;
    head = node->next;
    ++s.stats.allocs;
    return node;
#endif
  }

  static void Free(void* p, size_t n) {
#ifdef SWARM_POOL_BYPASS
    ::operator delete(p);
#else
    if (p == nullptr) {
      return;
    }
    const size_t cls = ClassOf(n);
    Shelves& s = S();
    if (cls >= kNumClasses) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = s.head[cls];
    s.head[cls] = node;
    ++s.stats.frees;
#endif
  }

  static Stats stats() {
#ifdef SWARM_POOL_BYPASS
    return Stats{};
#else
    return S().stats;
#endif
  }

 private:
  // 64 B .. 256 KB in power-of-two classes; larger requests (none on the hot
  // path) fall through to the system allocator.
  static constexpr size_t kMinBits = 6;
  static constexpr size_t kMaxBits = 18;
  static constexpr size_t kNumClasses = kMaxBits - kMinBits + 1;
  static constexpr size_t kMinSlabBytes = size_t{1} << 16;  // 64 KB per refill.

  struct FreeNode {
    FreeNode* next;
  };

  struct Shelves {
    FreeNode* head[kNumClasses] = {};
    std::vector<void*> slabs;
    Stats stats;
  };

  static size_t ClassOf(size_t n) {
    const size_t bits = static_cast<size_t>(std::bit_width(n > 1 ? n - 1 : size_t{1}));
    return bits <= kMinBits ? 0 : bits - kMinBits;
  }

  static Shelves& S() {
    // Leaky singleton: reachable forever via this static, so leak checkers
    // stay quiet and frees after main() cannot touch a destroyed pool.
    static Shelves* s = new Shelves;
    return *s;
  }

  static void Refill(Shelves& s, size_t cls) {
    const size_t node_bytes = size_t{1} << (cls + kMinBits);
    const size_t slab_bytes = node_bytes < kMinSlabBytes ? kMinSlabBytes : node_bytes;
    auto* base = static_cast<unsigned char*>(::operator new(slab_bytes));
    s.slabs.push_back(base);
    for (size_t off = 0; off + node_bytes <= slab_bytes; off += node_bytes) {
      auto* node = reinterpret_cast<FreeNode*>(base + off);
      node->next = s.head[cls];
      s.head[cls] = node;
    }
    ++s.stats.slab_refills;
    s.stats.slab_bytes += slab_bytes;
  }
};

// Minimal std allocator over FramePool. All instances are interchangeable
// (the pool is global), so container moves/swaps never copy elements.
template <typename T>
struct PoolAlloc {
  using value_type = T;

  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(size_t n) { return static_cast<T*>(FramePool::Alloc(n * sizeof(T))); }
  void deallocate(T* p, size_t n) { FramePool::Free(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAlloc<U>&) const {
    return true;
  }
};

// Pool-backed vector aliases for hot-path buffers. A fresh Bytes per op is
// allocation-free at steady state: its buffer comes off the size-class free
// list and returns there on destruction.
template <typename T>
using PoolVec = std::vector<T, PoolAlloc<T>>;

// Byte buffer on the pool. A subclass (not an alias) so it converts both ways
// with plain std::vector<uint8_t>: protocol results flow into cold-path
// consumers (tests, examples, the verification history) that hold ordinary
// vectors, and literals flow in. The conversions copy — acceptable off the
// hot path, where only pool-to-pool moves occur.
class Bytes : public PoolVec<uint8_t> {
 public:
  using PoolVec<uint8_t>::PoolVec;
  Bytes() = default;
  Bytes(const PoolVec<uint8_t>& v) : PoolVec<uint8_t>(v) {}             // NOLINT
  Bytes(PoolVec<uint8_t>&& v) : PoolVec<uint8_t>(std::move(v)) {}       // NOLINT
  Bytes(const std::vector<uint8_t>& v) : PoolVec<uint8_t>(v.begin(), v.end()) {}  // NOLINT
  operator std::vector<uint8_t>() const { return {begin(), end()}; }    // NOLINT
};

// allocate_shared over the pool: one pooled block holds control block +
// object, refcount semantics unchanged. The drop-in replacement for
// std::make_shared on hot-path shared state (phase structs, verb OpState).
template <typename T, typename... Args>
std::shared_ptr<T> MakePooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAlloc<T>{}, std::forward<Args>(args)...);
}

// Equality bridges so call sites (mostly tests) comparing protocol results
// against plain std::vector<uint8_t> literals keep working. Found via ADL:
// Bytes' template arguments put swarm::sim in the lookup set.
inline bool operator==(const Bytes& a, const std::vector<uint8_t>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
inline bool operator==(const std::vector<uint8_t>& a, const Bytes& b) { return b == a; }

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_POOL_H_
