// Lazy coroutine task for single-threaded discrete-event simulation.
//
// Task<T> is the return type of every asynchronous protocol function. Tasks
// are lazy: the coroutine body does not start until the task is co_awaited
// (or handed to Spawn for detached execution). Completion resumes the awaiter
// through symmetric transfer, so long await chains do not grow the stack.
//
// Lifetime rules (all single-threaded, no synchronization needed):
//  * An awaited Task is owned by the awaiting coroutine frame; the frame of
//    the inner coroutine is destroyed when the Task goes out of scope.
//  * A Spawned Task is owned by a small detached driver coroutine that
//    self-destroys when the task completes.

#ifndef SWARM_SRC_SIM_TASK_H_
#define SWARM_SRC_SIM_TASK_H_

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "src/sim/pool.h"

namespace swarm::sim {

template <typename T>
class Task;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  // Coroutine frames are the single largest per-op allocation class (every
  // protocol step is a coroutine). Routing them through the size-class pool
  // makes frame creation/destruction free-list pops at steady state.
  static void* operator new(size_t n) { return FramePool::Alloc(n); }
  static void operator delete(void* p, size_t n) { FramePool::Free(p, n); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.continuation) {
        return p.continuation;
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace internal

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // Start (or resume into) the task body.
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) {
          std::rethrow_exception(p.exception);
        }
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        auto& p = h.promise();
        if (p.exception) {
          std::rethrow_exception(p.exception);
        }
      }
    };
    return Awaiter{h_};
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

namespace internal {

// Detached driver: eagerly runs a Task<void> to completion and self-destroys.
// The moved-in Task lives in the driver's frame, keeping the inner coroutine
// alive for exactly as long as it needs.
struct Detached {
  struct promise_type {
    static void* operator new(size_t n) { return FramePool::Alloc(n); }
    static void operator delete(void* p, size_t n) { FramePool::Free(p, n); }

    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

inline Detached RunDetached(Task<void> t) { co_await std::move(t); }

}  // namespace internal

// Starts `t` immediately and lets it run to completion in the background.
// Any exception escaping a detached task terminates the program.
inline void Spawn(Task<void> t) { internal::RunDetached(std::move(t)); }

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_TASK_H_
