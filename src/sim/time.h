// Virtual-time definitions for the discrete-event simulator.
//
// All latencies in the simulated RDMA fabric and all measurements reported by
// the benchmark harness are expressed in virtual nanoseconds. Virtual time is
// advanced only by the event loop in sim::Simulator, never by the host clock,
// which makes every run deterministic for a given seed.

#ifndef SWARM_SRC_SIM_TIME_H_
#define SWARM_SRC_SIM_TIME_H_

#include <cstdint>

namespace swarm::sim {

// Virtual nanoseconds since simulation start.
using Time = int64_t;

// Duration literal helpers (virtual time).
constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * 1000;
constexpr Time kSecond = 1000 * 1000 * 1000;

constexpr double ToMicros(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double ToMillis(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSeconds(Time t) { return static_cast<double>(t) / 1e9; }

// Sentinel meaning "no timeout".
constexpr Time kNoTimeout = -1;

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_TIME_H_
