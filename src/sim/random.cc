#include "src/sim/random.h"

namespace swarm::sim {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::U64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Debiased multiply-shift (Lemire). Bias is negligible for our bounds but
  // the rejection loop keeps distribution tests honest.
  uint64_t x = U64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = U64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Double() {
  return static_cast<double>(U64() >> 11) * 0x1.0p-53;
}

}  // namespace swarm::sim
