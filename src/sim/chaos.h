// Deterministic chaos engine: seed-replayable fault injection in the style
// of FoundationDB-like simulation testing.
//
// The engine runs as one more actor inside the discrete-event simulator. At
// randomized (but seed-determined) instants it injects faults against the
// fabric and membership service while an application workload runs:
//
//   * node crashes (and optional restarts) with randomized membership
//     detection delays — the §7.7 failover scenario, machine-generated,
//   * per-link delay spikes and message-drop bursts through the fabric's
//     link_delay_fn / drop_fn hooks (a dropped response APPLIES the verb's
//     effect at the node, the possibly-applied case quorum protocols must
//     survive),
//   * scripted membership events: lease expiries and detection-delay sweeps,
//   * recycler epoch churn through a caller-provided hook.
//
// Everything the engine does is drawn from the simulator's single Rng, so a
// scenario is fully determined by (ScenarioSpec, seed): replaying a failing
// seed reproduces the exact event trace, which TraceHash() fingerprints.
// Every injected fault is appended to an in-order trace for failure
// diagnosis and for the replay-identity tests.

#ifndef SWARM_SRC_SIM_CHAOS_H_
#define SWARM_SRC_SIM_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace swarm::chaos {

enum class FaultKind : uint8_t {
  kCrash = 1,       // node crashed (param = detection delay used)
  kRestart,         // node restarted (param: 0 = came back EMPTY, 1 = entered
                    // the kRecoverWithRepair lifecycle)
  kDelaySpike,      // per-link delay spike began (param = extra ns)
  kDelayClear,      // spike ended
  kDropBurst,       // message-drop burst began (param = probability, permille)
  kDropStop,        // burst ended
  kLeaseExpiry,     // a client's membership lease was force-expired (param = id)
  kDetectionSweep,  // membership detection delay re-scripted (param = new ns)
  kEpochChurn,      // recycler epoch churn hook fired
  kRepairDone,      // a kRecoverWithRepair lifecycle completed (param: 0 = the
                    // node was repaired and readmitted, 1 = repair gave up and
                    // the node stays quorum-excluded)
  kQpDropBurst,     // drop burst on ONE client QP began (node = target link,
                    // param = tag << 16 | probability permille)
  kQpDropStop,      // per-QP burst ended (param = tag)
  kPartition,       // asymmetric sustained partition began: ONE direction of
                    // one link drops EVERYTHING for a bounded interval while
                    // the other keeps delivering (param: 1 = requests dropped
                    // and acks delivered, 0 = requests delivered and acks
                    // dropped — the applied-but-invisible direction)
  kPartitionHeal,   // the partition healed
  kMigrateStart,    // a live-migration lifecycle was kicked off through the
                    // set_migration_fn hook (param = ordinal)
  kMigrateDone,     // the lifecycle completed (param: 0 = success, 1 = it
                    // aborted/was skipped — the cluster stayed as before)
  kClientSplit,     // client split-brain began: the client population (by QP
                    // tag) and the memory nodes are each cut in two, and
                    // every message between a client and a far-side node
                    // drops in BOTH directions — two groups of writers each
                    // see only their half of the cluster (param =
                    // client-group bitmask << 16 | node-side bitmask)
  kClientSplitHeal, // the split-brain healed
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  sim::Time at = 0;
  FaultKind kind{};
  int32_t node = -1;  // Target memory node, -1 when not node-scoped.
  uint64_t param = 0;
};

struct ChaosConfig {
  // Injection stops after `horizon` virtual ns. Already-scheduled clears and
  // restarts still fire, so the workload's tail runs on a clean fabric.
  sim::Time horizon = 2 * sim::kMillisecond;
  // Mean virtual gap between injected faults (gaps uniform in [1, 2*mean]).
  sim::Time mean_gap = 30 * sim::kMicrosecond;

  // Fault-mix weights; 0 disables a class. Classes whose dependency is
  // absent (no membership service / clients, no churn hook) self-disable.
  double crash_weight = 1.0;
  double delay_weight = 1.0;
  double drop_weight = 1.0;
  double lease_weight = 0.0;
  double detection_weight = 0.5;
  double churn_weight = 0.0;

  // Crash lifecycle. A restarted node comes back EMPTY (disaggregated DRAM
  // loses its contents), which no quorum protocol without state transfer can
  // survive — plain-restart linearizability suites therefore run crash-stop
  // (restart = false), while determinism/replay suites exercise restarts.
  // With `repair` set (and a repair hook installed, set_repair_fn) a restart
  // becomes the full kRecoverWithRepair lifecycle instead: the node rejoins
  // with its allocation map intact but quorum-EXCLUDED, a repair coordinator
  // rebuilds its replica slots from surviving quorums, and only then is it
  // readmitted — the crash-recover regime the linearizability suites CAN
  // check. The node counts against max_crashed until readmission.
  int max_crashed = 1;      // Simultaneously crashed/repairing nodes.
  int crashable_nodes = 0;  // Only nodes [0, n) may crash; 0 = all nodes.
  bool restart = false;
  bool repair = false;
  sim::Time min_down = 200 * sim::kMicrosecond;
  sim::Time max_down = 800 * sim::kMicrosecond;
  // Randomized per-crash membership detection delay (slow-detection sweeps).
  sim::Time min_detection = 2 * sim::kMicrosecond;
  sim::Time max_detection = 120 * sim::kMicrosecond;

  // Per-link delay spikes.
  sim::Time max_spike = 25 * sim::kMicrosecond;
  sim::Time max_spike_duration = 120 * sim::kMicrosecond;

  // Message-drop bursts. A burst's sampled probability p is split per
  // direction by the request/ack weights: the heavier direction drops at p,
  // the lighter at p scaled by its weight ratio. Equal weights (default)
  // reproduce the old symmetric model; drop_req_weight = 0 yields pure
  // ack-loss bursts — the applied-but-unacknowledged case quorum commits and
  // repair are most sensitive to.
  double max_drop_p = 0.4;
  double drop_req_weight = 1.0;
  double drop_ack_weight = 1.0;
  sim::Time max_drop_duration = 60 * sim::kMicrosecond;

  // Asymmetric sustained partitions: one direction of one link drops every
  // message (probability 1.0) for a bounded interval while the opposite
  // direction keeps delivering — a half-open network split, nastier than a
  // probabilistic burst because an entire quorum leg goes dark (requests
  // dropped) or an entire leg's effects apply invisibly (acks dropped).
  // Opt-in via the weight.
  double partition_weight = 0.0;
  sim::Time min_partition_duration = 40 * sim::kMicrosecond;
  sim::Time max_partition_duration = 200 * sim::kMicrosecond;

  // Live-migration lifecycles (node admission, key moves, drains) injected
  // through set_migration_fn, at most max_migrations per scenario. The hook
  // owns the choreography; the engine owns WHEN it fires and records the
  // start/done trace events.
  double migration_weight = 0.0;
  int max_migrations = 2;

  // Per-QP drop bursts: each burst targets the queue pair of ONE client
  // (Worker::set_chaos_tag, tags drawn uniformly from [0, qp_tag_count)) to
  // ONE memory node — a flaky cable or dying NIC port rather than a
  // congested link, so a single client loses a replica while everyone else
  // proceeds. Shares max_drop_p / max_drop_duration and the per-direction
  // weights with link bursts. Self-disables when qp_tag_count == 0.
  double qp_drop_weight = 0.0;
  int qp_tag_count = 0;

  // Client split-brain partitions (the adversary family no single-link
  // fault can express): the client population — every QP tag in
  // [0, qp_tag_count) — is cut into two non-empty groups and the memory
  // nodes into two non-empty sides, and for the sampled duration every
  // message between a group-A client and a side-B node (and vice versa)
  // drops in BOTH directions. The two groups keep operating against
  // disjoint cluster halves: the group holding a replica minority
  // accumulates possibly-applied writes and stale caches while the
  // majority group commits — exactly the regime where stale-location and
  // tombstone races hide. The index RPC link is deliberately NOT split
  // (it models an independent control plane; per-client index reachability
  // has no QP tag to key on). Requires qp_tag_count >= 2 and at least two
  // memory nodes; one split is live at a time, a new one supersedes.
  double client_split_weight = 0.0;
  sim::Time min_client_split_duration = 40 * sim::kMicrosecond;
  sim::Time max_client_split_duration = 200 * sim::kMicrosecond;

  // Whether spikes/drops may also hit the index service's RPC link
  // (fabric::Fabric::index_link()), opening index/data inconsistency
  // windows. Opt-in: enable it only when an IndexService is actually wired
  // to the fabric, or the diverted events silently thin the fault pressure
  // on the data links. Data-node links are unaffected by this switch.
  bool fault_index_link = false;
};

// The engine installs itself into the fabric's chaos hooks on construction
// and uninstalls on destruction. It must outlive the simulation run (its
// scheduled clear/restart callbacks reference it).
class ChaosEngine {
 public:
  // `membership` may be null: crashes then hit the fabric directly and the
  // lease/detection classes self-disable.
  ChaosEngine(fabric::Fabric* fabric, membership::MembershipService* membership,
              ChaosConfig config);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // Binds the kEpochChurn fault class (typically Recycler::HeartbeatAll
  // followed by RunRound). Enable with ChaosConfig::churn_weight > 0.
  void set_epoch_churn(std::function<sim::Task<void>()> fn) { churn_fn_ = std::move(fn); }

  // Binds the kRecoverWithRepair lifecycle (typically
  // repair::RepairService::RecoverAndRepair): invoked at a crashed node's
  // restart instant; the node stays counted against max_crashed until the
  // returned task — restart, repair, readmission — completes. The task must
  // co_return true when the node was readmitted, false when repair gave up
  // (the node then stays quorum-excluded for the rest of the scenario).
  // Enable with ChaosConfig::restart + ChaosConfig::repair.
  void set_repair_fn(std::function<sim::Task<bool>(int)> fn) { repair_fn_ = std::move(fn); }

  // Binds the kMigrateStart/kMigrateDone lifecycle (typically a
  // MigrationService admission, key-move batch, or drain): invoked at
  // injection instants, at most ChaosConfig::max_migrations times per
  // scenario. The task co_returns true on success, false when the lifecycle
  // aborted or was skipped. Enable with ChaosConfig::migration_weight > 0.
  void set_migration_fn(std::function<sim::Task<bool>()> fn) { migration_fn_ = std::move(fn); }

  // Spawns the injection driver. Call once, before (or after) starting the
  // workload actors but before Simulator::Run.
  void Start();

  const ChaosConfig& config() const { return config_; }
  const std::vector<FaultEvent>& trace() const { return trace_; }
  int crashed_count() const { return crashed_count_; }

  // Order-and-content fingerprint of the injected trace: two runs of the
  // same (spec, seed) must produce equal hashes — the replay guarantee.
  uint64_t TraceHash() const;

  // Human-readable per-kind counts, e.g. "crash=1 spike=4 drop=2" (for
  // failure messages next to the seed).
  std::string TraceSummary() const;

 private:
  sim::Task<void> RunLoop();
  sim::Task<void> RepairCycle(int node);
  sim::Task<void> MigrationCycle();
  void InjectOne();

  void InjectCrash();
  void InjectDelaySpike();
  void InjectDropBurst();
  void InjectQpDropBurst();
  void InjectPartition();
  void InjectClientSplit();
  void InjectMigration();
  void InjectLeaseExpiry();
  void InjectDetectionSweep();
  void InjectEpochChurn();

  void Record(FaultKind kind, int node, uint64_t param) {
    trace_.push_back(FaultEvent{sim_->Now(), kind, node, param});
  }

  sim::Simulator* sim_;
  fabric::Fabric* fabric_;
  membership::MembershipService* membership_;
  ChaosConfig config_;
  std::function<sim::Task<void>()> churn_fn_;
  std::function<sim::Task<bool>(int)> repair_fn_;
  std::function<sim::Task<bool>()> migration_fn_;
  int migrations_started_ = 0;

  // Per-link live fault state consulted by the fabric hooks; one entry per
  // memory node plus one for the index service's RPC link.
  std::vector<sim::Time> spike_delay_;
  std::vector<uint64_t> spike_gen_;
  std::vector<double> drop_req_p_;
  std::vector<double> drop_ack_p_;
  std::vector<uint64_t> drop_gen_;
  // Active per-QP bursts (usually 0 or 1; scanned by the drop hook).
  struct QpBurst {
    uint64_t id = 0;
    int tag = -1;
    int node = -1;
    double req_p = 0.0;
    double ack_p = 0.0;
  };
  std::vector<QpBurst> qp_bursts_;
  uint64_t next_qp_burst_id_ = 0;
  // The live client split-brain, consulted by the drop hook. Bit t of
  // client_side / bit n of node_side put tag t / node n in group B; a
  // cross-side (client, node) pair drops every message while active.
  struct ClientSplit {
    bool active = false;
    uint64_t gen = 0;
    uint64_t client_side = 0;
    uint64_t node_side = 0;
  };
  ClientSplit client_split_;
  std::vector<bool> crashed_;
  int crashed_count_ = 0;

  std::vector<FaultEvent> trace_;
};

}  // namespace swarm::chaos

#endif  // SWARM_SRC_SIM_CHAOS_H_
