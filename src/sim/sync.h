// Coroutine synchronization primitives for quorum-style protocols.
//
// The replication protocols in this repository constantly follow the pattern
// "issue one op per memory node, wait for a majority, let the rest finish in
// the background". Counter implements that: spawned per-node ops Add(1) on
// completion and the issuing coroutine awaits a threshold, optionally with a
// timeout (used for the optimistic-majority escalation of SWARM §6).
//
// Counter is a shared handle (copyable); its state outlives the awaiting
// scope so that straggler ops completing later never touch freed memory.

#ifndef SWARM_SRC_SIM_SYNC_H_
#define SWARM_SRC_SIM_SYNC_H_

#include <coroutine>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/pool.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace swarm::sim {

class Counter {
 public:
  // State and Waiter nodes live on the frame pool (allocate_shared with
  // PoolAlloc puts the object and its control block in one pooled slot), so
  // quorum waits allocate nothing at steady state. The shared_ptr refcounts
  // keep the lifetime rules identical to the heap version: a straggler
  // completion or a pending timeout callback holds its own reference, so a
  // recycled slot can never be reached through a stale pointer.
  explicit Counter(Simulator* sim) : state_(std::allocate_shared<State>(PoolAlloc<State>{})) {
    state_->sim = sim;
  }

  void Add(int delta = 1) {
    state_->count += delta;
    WakeReady();
  }

  int count() const { return state_->count; }

  // Suspends until count() >= threshold. If `timeout` >= 0 and the threshold
  // is not reached within `timeout` virtual ns, resumes returning false.
  Task<bool> WaitFor(int threshold, Time timeout = kNoTimeout) {
    State& s = *state_;
    if (s.count >= threshold) {
      co_return true;
    }
    auto w = std::allocate_shared<Waiter>(PoolAlloc<Waiter>{});
    w->threshold = threshold;
    s.waiters.push_back(w);
    if (timeout >= 0) {
      auto state = state_;
      s.sim->After(timeout, [state, w] {
        if (!w->settled) {
          w->settled = true;
          w->reached = false;
          state->sim->At(state->sim->Now(), [w] { w->handle.resume(); });
        }
      });
    }
    co_await SuspendInto{w.get()};
    co_return w->reached;
  }

 private:
  struct Waiter {
    int threshold = 0;
    bool settled = false;
    bool reached = false;
    std::coroutine_handle<> handle;
  };

  struct State {
    Simulator* sim = nullptr;
    int count = 0;
    PoolVec<std::shared_ptr<Waiter>> waiters;
  };

  struct SuspendInto {
    Waiter* w;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { w->handle = h; }
    void await_resume() const noexcept {}
  };

  void WakeReady() {
    State& s = *state_;
    for (size_t i = 0; i < s.waiters.size();) {
      auto& w = s.waiters[i];
      if (!w->settled && w->handle && s.count >= w->threshold) {
        auto ready = w;
        s.waiters.erase(s.waiters.begin() + static_cast<long>(i));
        ready->settled = true;
        ready->reached = true;
        // Resume via the event queue so Add() never reenters protocol code.
        s.sim->At(s.sim->Now(), [ready] { ready->handle.resume(); });
      } else if (w->settled) {
        s.waiters.erase(s.waiters.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }

  std::shared_ptr<State> state_;
};

// Building blocks for fan-out/join combinators (WhenBoth/WhenAll here, the
// doorbell-batched PostBoth/PostAll/PostMany in the fabric layer): run a
// task, deposit its result, signal a completion counter.

template <typename T>
Task<void> StoreInto(Task<T> t, std::shared_ptr<T> out, Counter done) {
  *out = co_await std::move(t);
  done.Add(1);
}

inline Task<void> SignalWhenDone(Task<void> t, Counter done) {
  co_await std::move(t);
  done.Add(1);
}

// Runs two tasks concurrently and resumes when both have completed, returning
// both results. Used for Safe-Guess's parallel {m = M.READ(), M.WRITE(w)}.
template <typename A, typename B>
Task<std::pair<A, B>> WhenBoth(Simulator* sim, Task<A> a, Task<B> b) {
  Counter done(sim);
  auto ra = std::allocate_shared<A>(PoolAlloc<A>{});
  auto rb = std::allocate_shared<B>(PoolAlloc<B>{});
  Spawn(StoreInto(std::move(a), ra, done));
  Spawn(StoreInto(std::move(b), rb, done));
  co_await done.WaitFor(2);
  co_return std::pair<A, B>{std::move(*ra), std::move(*rb)};
}

// Runs all tasks concurrently and resumes when every one has completed.
inline Task<void> WhenAll(Simulator* sim, std::vector<Task<void>> tasks) {
  Counter done(sim);
  const int n = static_cast<int>(tasks.size());
  for (auto& t : tasks) {
    Spawn(SignalWhenDone(std::move(t), done));
  }
  co_await done.WaitFor(n);
}

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_SYNC_H_
