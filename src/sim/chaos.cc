#include "src/sim/chaos.h"

#include <algorithm>
#include <array>

namespace swarm::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kDelaySpike:
      return "spike";
    case FaultKind::kDelayClear:
      return "spike_clear";
    case FaultKind::kDropBurst:
      return "drop";
    case FaultKind::kDropStop:
      return "drop_stop";
    case FaultKind::kLeaseExpiry:
      return "lease_expiry";
    case FaultKind::kDetectionSweep:
      return "detection_sweep";
    case FaultKind::kEpochChurn:
      return "epoch_churn";
    case FaultKind::kRepairDone:
      return "repair_done";
    case FaultKind::kQpDropBurst:
      return "qp_drop";
    case FaultKind::kQpDropStop:
      return "qp_drop_stop";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kPartitionHeal:
      return "partition_heal";
    case FaultKind::kMigrateStart:
      return "migrate";
    case FaultKind::kMigrateDone:
      return "migrate_done";
    case FaultKind::kClientSplit:
      return "client_split";
    case FaultKind::kClientSplitHeal:
      return "client_split_heal";
  }
  return "?";
}

ChaosEngine::ChaosEngine(fabric::Fabric* fabric, membership::MembershipService* membership,
                         ChaosConfig config)
    : sim_(fabric->sim()), fabric_(fabric), membership_(membership), config_(config) {
  // One fault-state slot per link: every memory node plus the index RPC link.
  const size_t n = static_cast<size_t>(fabric_->chaos_link_count());
  spike_delay_.assign(n, 0);
  spike_gen_.assign(n, 0);
  drop_req_p_.assign(n, 0.0);
  drop_ack_p_.assign(n, 0.0);
  drop_gen_.assign(n, 0);
  // Sized to max_nodes, not num_nodes: a migration hook can hot-add nodes
  // mid-scenario (Fabric::AddNode) and they must be crashable too.
  crashed_.assign(static_cast<size_t>(fabric_->max_nodes()), false);
  fabric_->set_link_delay_fn(
      [this](int node, bool /*response*/) { return spike_delay_[static_cast<size_t>(node)]; });
  fabric_->set_drop_fn([this](int node, bool response, int qp_tag) {
    // A live split-brain severs cross-side (client, node) pairs outright —
    // deterministically and before any Rng draw, so the split's drops never
    // perturb the random stream the probabilistic faults consume.
    if (client_split_.active && qp_tag >= 0 && node < fabric_->num_nodes()) {
      const bool client_b = (client_split_.client_side >> qp_tag) & 1;
      const bool node_b = (client_split_.node_side >> node) & 1;
      if (client_b != node_b) {
        return true;
      }
    }
    // Consumes Rng only while a burst is active, so installing the engine
    // does not perturb fault-free runs.
    double p = response ? drop_ack_p_[static_cast<size_t>(node)]
                        : drop_req_p_[static_cast<size_t>(node)];
    if (qp_tag >= 0) {
      for (const QpBurst& b : qp_bursts_) {
        if (b.tag == qp_tag && b.node == node) {
          p = std::max(p, response ? b.ack_p : b.req_p);
        }
      }
    }
    return p > 0.0 && sim_->rng().Chance(p);
  });
}

ChaosEngine::~ChaosEngine() {
  fabric_->set_link_delay_fn({});
  fabric_->set_drop_fn({});
}

void ChaosEngine::Start() { sim::Spawn(RunLoop()); }

sim::Task<void> ChaosEngine::RunLoop() {
  while (sim_->Now() < config_.horizon) {
    const sim::Time gap = 1 + static_cast<sim::Time>(
                                  sim_->rng().Below(static_cast<uint64_t>(2 * config_.mean_gap)));
    co_await sim_->Delay(gap);
    if (sim_->Now() >= config_.horizon) {
      break;
    }
    InjectOne();
  }
}

void ChaosEngine::InjectOne() {
  struct Class {
    double weight;
    void (ChaosEngine::*inject)();
  };
  const int crash_limit = config_.crashable_nodes > 0
                              ? std::min(config_.crashable_nodes, fabric_->num_nodes())
                              : fabric_->num_nodes();
  bool crash_candidate = false;
  for (int i = 0; i < crash_limit; ++i) {
    if (!crashed_[static_cast<size_t>(i)] &&
        (membership_ == nullptr || membership_->CrashEligible(i))) {
      crash_candidate = true;
      break;
    }
  }
  const bool lease_ok = membership_ != nullptr && membership_->HasRegisteredClients();
  const bool split_ok = config_.qp_tag_count >= 2 && fabric_->num_nodes() >= 2;
  std::array<Class, 10> classes{{
      {crash_candidate && crashed_count_ < config_.max_crashed ? config_.crash_weight : 0.0,
       &ChaosEngine::InjectCrash},
      {config_.delay_weight, &ChaosEngine::InjectDelaySpike},
      {config_.drop_weight, &ChaosEngine::InjectDropBurst},
      {config_.qp_tag_count > 0 ? config_.qp_drop_weight : 0.0,
       &ChaosEngine::InjectQpDropBurst},
      {config_.partition_weight, &ChaosEngine::InjectPartition},
      {split_ok ? config_.client_split_weight : 0.0, &ChaosEngine::InjectClientSplit},
      {migration_fn_ && migrations_started_ < config_.max_migrations ? config_.migration_weight
                                                                     : 0.0,
       &ChaosEngine::InjectMigration},
      {lease_ok ? config_.lease_weight : 0.0, &ChaosEngine::InjectLeaseExpiry},
      {membership_ != nullptr ? config_.detection_weight : 0.0,
       &ChaosEngine::InjectDetectionSweep},
      {churn_fn_ ? config_.churn_weight : 0.0, &ChaosEngine::InjectEpochChurn},
  }};
  double total = 0.0;
  for (const Class& c : classes) {
    total += c.weight;
  }
  if (total <= 0.0) {
    return;
  }
  double pick = sim_->rng().Double() * total;
  const Class* chosen = nullptr;
  for (const Class& c : classes) {
    if (c.weight <= 0.0) {
      continue;
    }
    chosen = &c;  // FP residue fallback: the last positive-weight class.
    pick -= c.weight;
    if (pick <= 0.0) {
      break;
    }
  }
  (this->*chosen->inject)();
}

void ChaosEngine::InjectCrash() {
  const int limit = config_.crashable_nodes > 0
                        ? std::min(config_.crashable_nodes, fabric_->num_nodes())
                        : fabric_->num_nodes();
  std::vector<int> candidates;
  for (int i = 0; i < limit; ++i) {
    // Decommissioned nodes host nothing and left the membership: crashing
    // one would burn a max_crashed slot on a no-op.
    if (!crashed_[static_cast<size_t>(i)] &&
        (membership_ == nullptr || membership_->CrashEligible(i))) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return;
  }
  const int node = candidates[sim_->rng().Below(candidates.size())];
  const sim::Time detection =
      config_.min_detection +
      static_cast<sim::Time>(sim_->rng().Below(
          static_cast<uint64_t>(config_.max_detection - config_.min_detection) + 1));
  crashed_[static_cast<size_t>(node)] = true;
  ++crashed_count_;
  if (membership_ != nullptr) {
    membership_->CrashNode(node, detection);
  } else {
    fabric_->Crash(node);
  }
  Record(FaultKind::kCrash, node, static_cast<uint64_t>(detection));
  if (!config_.restart) {
    return;  // Crash-stop: the node never comes back within this scenario.
  }
  const sim::Time down =
      config_.min_down + static_cast<sim::Time>(sim_->rng().Below(
                             static_cast<uint64_t>(config_.max_down - config_.min_down) + 1));
  if (config_.repair && repair_fn_) {
    // kRecoverWithRepair: restart → repair → readmit. The node keeps
    // counting against max_crashed until the lifecycle completes, so a
    // surviving quorum exists for the repair reads throughout.
    sim_->After(down, [this, node] {
      Record(FaultKind::kRestart, node, 1);
      sim::Spawn(RepairCycle(node));
    });
    return;
  }
  sim_->After(down, [this, node] {
    crashed_[static_cast<size_t>(node)] = false;
    --crashed_count_;
    if (membership_ != nullptr) {
      membership_->RecoverNode(node);
    } else {
      fabric_->Recover(node);
    }
    Record(FaultKind::kRestart, node, 0);
  });
}

sim::Task<void> ChaosEngine::RepairCycle(int node) {
  const bool readmitted = co_await repair_fn_(node);
  crashed_[static_cast<size_t>(node)] = false;
  --crashed_count_;
  Record(FaultKind::kRepairDone, node, readmitted ? 0 : 1);
}

void ChaosEngine::InjectDelaySpike() {
  const int links = config_.fault_index_link ? fabric_->chaos_link_count() : fabric_->num_nodes();
  const int node = static_cast<int>(sim_->rng().Below(static_cast<uint64_t>(links)));
  const sim::Time spike =
      1 + static_cast<sim::Time>(sim_->rng().Below(static_cast<uint64_t>(config_.max_spike)));
  const sim::Time duration = 1 + static_cast<sim::Time>(sim_->rng().Below(
                                     static_cast<uint64_t>(config_.max_spike_duration)));
  spike_delay_[static_cast<size_t>(node)] = spike;
  const uint64_t gen = ++spike_gen_[static_cast<size_t>(node)];
  Record(FaultKind::kDelaySpike, node, static_cast<uint64_t>(spike));
  sim_->After(duration, [this, node, gen] {
    // A newer spike on the same link supersedes this clear.
    if (spike_gen_[static_cast<size_t>(node)] == gen) {
      spike_delay_[static_cast<size_t>(node)] = 0;
      Record(FaultKind::kDelayClear, node, 0);
    }
  });
}

void ChaosEngine::InjectDropBurst() {
  const int links = config_.fault_index_link ? fabric_->chaos_link_count() : fabric_->num_nodes();
  const int node = static_cast<int>(sim_->rng().Below(static_cast<uint64_t>(links)));
  const double p = std::max(0.02, config_.max_drop_p * sim_->rng().Double());
  const sim::Time duration = 1 + static_cast<sim::Time>(sim_->rng().Below(
                                     static_cast<uint64_t>(config_.max_drop_duration)));
  // Per-direction split: the heavier-weighted direction drops at the full
  // sampled p, the other is scaled down by the weight ratio.
  const double wmax = std::max(config_.drop_req_weight, config_.drop_ack_weight);
  const double req_scale = wmax > 0.0 ? config_.drop_req_weight / wmax : 0.0;
  const double ack_scale = wmax > 0.0 ? config_.drop_ack_weight / wmax : 0.0;
  drop_req_p_[static_cast<size_t>(node)] = p * req_scale;
  drop_ack_p_[static_cast<size_t>(node)] = p * ack_scale;
  const uint64_t gen = ++drop_gen_[static_cast<size_t>(node)];
  Record(FaultKind::kDropBurst, node, static_cast<uint64_t>(p * 1000.0));
  sim_->After(duration, [this, node, gen] {
    if (drop_gen_[static_cast<size_t>(node)] == gen) {
      drop_req_p_[static_cast<size_t>(node)] = 0.0;
      drop_ack_p_[static_cast<size_t>(node)] = 0.0;
      Record(FaultKind::kDropStop, node, 0);
    }
  });
}

void ChaosEngine::InjectQpDropBurst() {
  // One client's QP to one node goes flaky: everyone else keeps clean links,
  // so the victim alone loses a replica (and, ack-biased, alone accumulates
  // possibly-applied writes the other clients then race to observe).
  const int tag = static_cast<int>(sim_->rng().Below(static_cast<uint64_t>(config_.qp_tag_count)));
  const int node = static_cast<int>(sim_->rng().Below(static_cast<uint64_t>(fabric_->num_nodes())));
  const double p = std::max(0.02, config_.max_drop_p * sim_->rng().Double());
  const sim::Time duration = 1 + static_cast<sim::Time>(sim_->rng().Below(
                                     static_cast<uint64_t>(config_.max_drop_duration)));
  const double wmax = std::max(config_.drop_req_weight, config_.drop_ack_weight);
  QpBurst burst;
  burst.id = ++next_qp_burst_id_;
  burst.tag = tag;
  burst.node = node;
  burst.req_p = wmax > 0.0 ? p * config_.drop_req_weight / wmax : 0.0;
  burst.ack_p = wmax > 0.0 ? p * config_.drop_ack_weight / wmax : 0.0;
  qp_bursts_.push_back(burst);
  Record(FaultKind::kQpDropBurst, node,
         (static_cast<uint64_t>(tag) << 16) | static_cast<uint64_t>(p * 1000.0));
  const uint64_t id = burst.id;
  sim_->After(duration, [this, id, node, tag] {
    for (size_t i = 0; i < qp_bursts_.size(); ++i) {
      if (qp_bursts_[i].id == id) {
        qp_bursts_.erase(qp_bursts_.begin() + static_cast<long>(i));
        Record(FaultKind::kQpDropStop, node, static_cast<uint64_t>(tag));
        break;
      }
    }
  });
}

void ChaosEngine::InjectPartition() {
  // Asymmetric sustained partition: ONE direction of one link drops
  // everything while the other keeps delivering. Requests-dropped starves a
  // quorum leg outright; acks-dropped is the nastier half-open split — every
  // verb APPLIES at the node but completes locally as failed, so the whole
  // leg accumulates possibly-applied state.
  const int links = config_.fault_index_link ? fabric_->chaos_link_count() : fabric_->num_nodes();
  const int node = static_cast<int>(sim_->rng().Below(static_cast<uint64_t>(links)));
  const bool drop_requests = sim_->rng().Chance(0.5);
  const sim::Time duration =
      config_.min_partition_duration +
      static_cast<sim::Time>(sim_->rng().Below(
          static_cast<uint64_t>(config_.max_partition_duration - config_.min_partition_duration) +
          1));
  drop_req_p_[static_cast<size_t>(node)] = drop_requests ? 1.0 : 0.0;
  drop_ack_p_[static_cast<size_t>(node)] = drop_requests ? 0.0 : 1.0;
  const uint64_t gen = ++drop_gen_[static_cast<size_t>(node)];
  Record(FaultKind::kPartition, node, drop_requests ? 1 : 0);
  sim_->After(duration, [this, node, gen] {
    // A newer burst/partition on the same link supersedes this heal.
    if (drop_gen_[static_cast<size_t>(node)] == gen) {
      drop_req_p_[static_cast<size_t>(node)] = 0.0;
      drop_ack_p_[static_cast<size_t>(node)] = 0.0;
      Record(FaultKind::kPartitionHeal, node, 0);
    }
  });
}

void ChaosEngine::InjectClientSplit() {
  // Cut the client population and the node set into two non-empty halves
  // each: cross-side traffic drops entirely, both directions, so the two
  // client groups run against disjoint cluster views until the heal. A
  // group facing a replica minority sees its quorums starve (ops go
  // pending/unavailable, exactly the possibly-applied regime), while the
  // other group keeps committing — and any location cache either group
  // populated before the cut goes stale against the other's progress.
  const int tags = std::min(config_.qp_tag_count, 63);
  const int nodes = std::min(fabric_->num_nodes(), 63);
  // Non-trivial bitmasks: [1, 2^k - 2] keeps both sides populated.
  const uint64_t client_side =
      1 + sim_->rng().Below((uint64_t{1} << tags) - 2);
  const uint64_t node_side =
      1 + sim_->rng().Below((uint64_t{1} << nodes) - 2);
  const sim::Time duration =
      config_.min_client_split_duration +
      static_cast<sim::Time>(
          sim_->rng().Below(static_cast<uint64_t>(config_.max_client_split_duration -
                                                  config_.min_client_split_duration) +
                            1));
  client_split_.active = true;
  client_split_.client_side = client_side;
  client_split_.node_side = node_side;
  const uint64_t gen = ++client_split_.gen;
  Record(FaultKind::kClientSplit, -1, (client_side << 16) | node_side);
  sim_->After(duration, [this, gen] {
    // A newer split supersedes this heal.
    if (client_split_.gen == gen) {
      client_split_.active = false;
      Record(FaultKind::kClientSplitHeal, -1, 0);
    }
  });
}

void ChaosEngine::InjectMigration() {
  ++migrations_started_;
  Record(FaultKind::kMigrateStart, -1, static_cast<uint64_t>(migrations_started_));
  sim::Spawn(MigrationCycle());
}

sim::Task<void> ChaosEngine::MigrationCycle() {
  const bool ok = co_await migration_fn_();
  Record(FaultKind::kMigrateDone, -1, ok ? 0 : 1);
}

void ChaosEngine::InjectLeaseExpiry() {
  const std::vector<uint32_t> ids = membership_->RegisteredClients();
  const uint32_t id = ids[sim_->rng().Below(ids.size())];
  membership_->ExpireLease(id);
  Record(FaultKind::kLeaseExpiry, -1, id);
}

void ChaosEngine::InjectDetectionSweep() {
  const sim::Time d =
      config_.min_detection +
      static_cast<sim::Time>(sim_->rng().Below(
          static_cast<uint64_t>(config_.max_detection - config_.min_detection) + 1));
  membership_->set_detection_delay(d);
  Record(FaultKind::kDetectionSweep, -1, static_cast<uint64_t>(d));
}

void ChaosEngine::InjectEpochChurn() {
  Record(FaultKind::kEpochChurn, -1, 0);
  sim::Spawn(churn_fn_());
}

uint64_t ChaosEngine::TraceHash() const {
  // FNV-1a over every event's fields, in trace order.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const FaultEvent& e : trace_) {
    mix(static_cast<uint64_t>(e.at));
    mix(static_cast<uint64_t>(e.kind));
    mix(static_cast<uint64_t>(static_cast<int64_t>(e.node)));
    mix(e.param);
  }
  return h;
}

std::string ChaosEngine::TraceSummary() const {
  std::array<int, 32> counts{};
  for (const FaultEvent& e : trace_) {
    ++counts[static_cast<size_t>(e.kind) % counts.size()];
  }
  std::string out;
  for (uint8_t k = static_cast<uint8_t>(FaultKind::kCrash);
       k <= static_cast<uint8_t>(FaultKind::kClientSplitHeal); ++k) {
    const int c = counts[k];
    if (c == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += FaultKindName(static_cast<FaultKind>(k));
    out += '=';
    out += std::to_string(c);
  }
  return out.empty() ? "none" : out;
}

}  // namespace swarm::chaos
