// Deterministic pseudo-random number generation for the simulator.
//
// A single Rng instance is owned by the Simulator so that an entire run is
// reproducible from one seed. Protocol code and workload generators must draw
// randomness from it (or from generators seeded by it) rather than from
// std::random_device.

#ifndef SWARM_SRC_SIM_RANDOM_H_
#define SWARM_SRC_SIM_RANDOM_H_

#include <cstdint>

namespace swarm::sim {

// splitmix64-seeded xoshiro256** generator. Small, fast, and good enough for
// workload generation and latency jitter; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 1) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t U64();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double Double();

  // True with probability p.
  bool Chance(double p) { return Double() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_RANDOM_H_
