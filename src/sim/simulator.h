// Discrete-event simulator core.
//
// The simulator owns a virtual clock and a timer queue. Actors (clients,
// protocol operations, background tasks) are C++20 coroutines that suspend on
// awaitables which schedule their resumption at a future virtual time.
// Execution is strictly single-threaded: exactly one event runs at a time,
// events with equal timestamps run in scheduling order, and the whole run is
// reproducible from the Rng seed.
//
// Hot-path design (the event loop dominates every benchmark's host time):
//  * An event's payload is a tagged pointer: either a coroutine handle
//    (ResumeAt — the overwhelmingly common case, scheduled with ZERO
//    allocations) or a type-erased callback stored in a pooled slab slot.
//    Callback slots are recycled through a free list; slabs grow in chunks,
//    so steady-state scheduling never touches the allocator. Callables
//    larger than the inline slot storage (rare) fall back to one heap
//    allocation held inside the slot.
//  * Near events — almost everything, since fabric RTTs are ~2 us — live in
//    a timing wheel: one FIFO bucket per virtual nanosecond over a 2048 ns
//    window, with an occupancy bitmap for cursor advancement. Push and pop
//    are O(1); bucket FIFO order IS (time, seq) order because a bucket holds
//    a single timestamp and appends happen in scheduling order.
//  * Mid-range events (protocol timeouts, detection sweeps, lease and
//    recycler rounds — everything from 2 us to ~2 ms) live in a SECOND,
//    coarse wheel level: 1024 buckets of 2048 ns each, covering a ~2.1 ms
//    horizon past the fine window. A coarse bucket spans exactly one fine
//    window; when the fine wheel drains, the next nonempty coarse bucket is
//    promoted wholesale (bucket append order is (time, seq) order, see
//    Push), so ms-scale timers never touch the comparison-based heap.
//  * Far events (beyond the coarse horizon) overflow into a flat 4-ary
//    min-heap of 24-byte PODs ordered by (time, seq); when both wheels
//    drain, the coarse level is re-based onto the earliest far event and
//    every event inside the new horizon migrates up in (time, seq) order, so
//    the global dispatch order is exactly the seed's.

#ifndef SWARM_SRC_SIM_SIMULATOR_H_
#define SWARM_SRC_SIM_SIMULATOR_H_

#include <array>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/pool.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace swarm::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {
    heap_.reserve(1024);
    // Pre-size every bucket to one pool node (8 fine payloads / 4 coarse
    // items fill a 64 B class exactly). Rebasing re-anchors the windows, so
    // over a long run every bucket index gets touched eventually; paying the
    // ~190 KB up front keeps first-touch growth off the steady-state path.
    for (Bucket& b : buckets_) {
      b.items.reserve(8);
    }
    for (L2Bucket& b : l2_buckets_) {
      b.items.reserve(4);
    }
  }
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at virtual time `when` (clamped to Now()). The
  // callable is moved into a pooled slot; scheduling allocates only when the
  // callable outgrows the inline slot storage or every slab slot is in use.
  template <typename F>
  void At(Time when, F&& fn) {
    Push(when, TagCallback(MakeSlot(std::forward<F>(fn))));
  }

  // Schedules `fn` to run `delay` ns from now.
  template <typename F>
  void After(Time delay, F&& fn) {
    At(now_ + delay, std::forward<F>(fn));
  }

  // Schedules resumption of a suspended coroutine. Never allocates: the
  // handle itself is the event payload.
  void ResumeAt(Time when, std::coroutine_handle<> h) {
    Push(when, reinterpret_cast<uintptr_t>(h.address()));
  }

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamp <= `t`, then sets the clock to `t`.
  void RunUntil(Time t);

  // Runs a single event. Returns false if the queue was empty.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }
  uint64_t coroutine_events() const { return coroutine_events_; }
  uint64_t callback_events() const { return events_processed_ - coroutine_events_; }
  size_t queue_depth() const { return wheel_count_ + l2_count_ + heap_.size(); }
  // Callback slots ever carved from slabs (pool high-water mark).
  size_t callback_pool_slots() const { return pool_slots_; }

  // Awaitable: suspends the current coroutine for `delay` virtual ns.
  auto Delay(Time delay) {
    struct Awaiter {
      Simulator* sim;
      Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim->ResumeAt(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + (delay > 0 ? delay : 0)};
  }

  // Awaitable: suspends the current coroutine until virtual time `t`.
  auto WaitUntil(Time t) { return Delay(t - now_); }

 private:
  // Sized so every callback the fabric and protocol layers schedule stays
  // inline. The largest is WriteThenCas's arrival lambda, which carries the
  // whole CAS continuation (~180 bytes) so the pipelined series stays one
  // scheduling unit.
  static constexpr size_t kInlineCallbackBytes = 184;
  static constexpr size_t kSlabSlots = 256;

  // Wheel geometry: 1 ns buckets over a 2048 ns window, base-aligned so
  // bucket index == at & kWheelMask with no wrap inside a window.
  static constexpr size_t kWheelBits = 11;
  static constexpr size_t kWheelSize = size_t{1} << kWheelBits;
  static constexpr Time kWheelMask = static_cast<Time>(kWheelSize - 1);
  static constexpr size_t kBitmapWords = kWheelSize / 64;

  // Coarse level: 1024 buckets, each spanning one fine window (2048 ns), for
  // a ~2.1 ms horizon. Anchored (not circular): promotion consumes buckets
  // front to back and the level re-bases off the heap when it drains.
  static constexpr size_t kL2Bits = 10;
  static constexpr size_t kL2Buckets = size_t{1} << kL2Bits;
  static constexpr Time kL2Span = static_cast<Time>(kL2Buckets) << kWheelBits;
  static constexpr size_t kL2BitmapWords = kL2Buckets / 64;

  struct CallbackSlot {
    // Invokes (when `run`) and destroys the stored callable. Set by MakeSlot.
    void (*op)(CallbackSlot*, bool run);
    CallbackSlot* next_free;
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  struct Event {
    Time at;
    uint64_t seq;
    // Low bit set: CallbackSlot*. Low bit clear: coroutine frame address.
    // Both are at least 8-byte aligned, so the bit is free for the tag.
    uintptr_t payload;
  };

  struct Bucket {
    PoolVec<uintptr_t> items;  // FIFO: appended in scheduling order.
    size_t head = 0;
  };

  // Coarse-bucket entry: events in one coarse bucket carry mixed timestamps
  // inside the bucket's 2048 ns span, so the time rides along. No seq: the
  // bucket's append order IS (time, seq) order for same-time events (direct
  // pushes append in seq order, and heap migration — which only happens into
  // an empty level — pops in (time, seq) order).
  struct L2Item {
    Time at;
    uintptr_t payload;
  };

  struct L2Bucket {
    PoolVec<L2Item> items;
  };

  static bool IsCallback(uintptr_t payload) { return (payload & 1) != 0; }
  static uintptr_t TagCallback(CallbackSlot* s) { return reinterpret_cast<uintptr_t>(s) | 1; }
  static CallbackSlot* SlotOf(uintptr_t payload) {
    return reinterpret_cast<CallbackSlot*>(payload & ~uintptr_t{1});
  }

  template <typename F>
  CallbackSlot* MakeSlot(F&& fn) {
    using Fn = std::decay_t<F>;
    CallbackSlot* slot = AllocSlot();
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(slot->storage)) Fn(std::forward<F>(fn));
      slot->op = [](CallbackSlot* s, bool run) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(s->storage));
        if (run) {
          (*f)();
        }
        f->~Fn();
      };
    } else {
      // Oversized callable: one pooled allocation, owned by the slot. Still
      // allocation-free at steady state — the spill block comes off the
      // size-class free list like everything else.
      void* mem = FramePool::Alloc(sizeof(Fn));
      ::new (static_cast<void*>(slot->storage)) Fn*(::new (mem) Fn(std::forward<F>(fn)));
      slot->op = [](CallbackSlot* s, bool run) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(s->storage));
        if (run) {
          (*f)();
        }
        f->~Fn();
        FramePool::Free(f, sizeof(Fn));
      };
    }
    return slot;
  }

  CallbackSlot* AllocSlot();
  void FreeSlot(CallbackSlot* slot) {
    slot->next_free = free_slots_;
    free_slots_ = slot;
  }

  static bool Before(const Event& a, const Event& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  // Wheel events need no seq: bucket order is scheduling order. Heap events
  // get one so far-future ties dispatch in scheduling order after migration.
  void Push(Time when, uintptr_t payload) {
    if (when < now_) {
      when = now_;
    }
    // The fine wheel only accepts events inside its window. `when >= base_`
    // holds whenever the wheel is nonempty (pushes clamp to now_, and
    // now_ >= base_ then); it is checked anyway so an invariant break cannot
    // write outside the bitmap. The coarse level accepts events from its
    // first UNPROMOTED bucket (l2_cursor_) to its horizon; everything else —
    // beyond the horizon, or landing in the already-promoted gap while the
    // fine wheel is empty — overflows to the heap, where RefillL1 picks it
    // up in (time, seq) order.
    if (wheel_count_ > 0 && when >= base_ && when < base_ + static_cast<Time>(kWheelSize)) {
      WheelAppend(when, payload);
    } else if (l2_count_ > 0 && when >= l2_cursor_ && when < l2_base_ + kL2Span) {
      L2Append(when, payload);
    } else {
      HeapPush(Event{when, seq_++, payload});
    }
  }

  void WheelAppend(Time at, uintptr_t payload) {
    Bucket& b = buckets_[static_cast<size_t>(at & kWheelMask)];
    b.items.push_back(payload);
    const size_t idx = static_cast<size_t>(at - base_);
    bitmap_[idx >> 6] |= uint64_t{1} << (idx & 63);
    ++wheel_count_;
  }

  void L2Append(Time at, uintptr_t payload) {
    const size_t idx = static_cast<size_t>((at - l2_base_) >> kWheelBits);
    l2_buckets_[idx].items.push_back(L2Item{at, payload});
    l2_bitmap_[idx >> 6] |= uint64_t{1} << (idx & 63);
    ++l2_count_;
  }

  // Refills the (empty) fine wheel from the earliest pending source: gap
  // events from the heap, the next nonempty coarse bucket, or — when the
  // coarse level itself is empty — a coarse re-base off the heap. Returns
  // false when nothing is pending anywhere.
  bool RefillL1();

  // Promotes the first nonempty coarse bucket into the fine wheel (append
  // order preserved) and anchors the fine window on its span.
  void PromoteNextL2Bucket();

  // Re-anchors the (empty) coarse level at the earliest far event and
  // migrates every heap event inside the new horizon, in (time, seq) order.
  void RebaseL2();

  // First nonempty bucket time at or after `from` (wheel must be nonempty).
  Time NextBucketTime(Time from) const;

  // Earliest pending event time across all three levels; false when empty.
  // Pure peek: used by RunUntil, which must not re-anchor windows without
  // immediately dispatching (Push's invariants key off fresh anchors).
  bool PeekNextTime(Time* out) const;

  void HeapPush(Event ev);
  Event HeapPopTop();
  void Dispatch(uintptr_t payload);

  Time now_ = 0;
  Time base_ = 0;
  uint64_t seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t coroutine_events_ = 0;
  size_t wheel_count_ = 0;
  size_t pool_slots_ = 0;
  // Coarse level state; meaningful only while l2_count_ > 0. l2_cursor_ is
  // the start of the first unpromoted bucket (== base_ + kWheelSize whenever
  // a bucket has been promoted, because a coarse bucket IS a fine window).
  Time l2_base_ = 0;
  Time l2_cursor_ = 0;
  size_t l2_count_ = 0;
  PoolVec<Event> heap_;
  std::array<Bucket, kWheelSize> buckets_;
  std::array<uint64_t, kBitmapWords> bitmap_{};
  std::array<L2Bucket, kL2Buckets> l2_buckets_;
  std::array<uint64_t, kL2BitmapWords> l2_bitmap_{};
  std::vector<std::unique_ptr<CallbackSlot[]>> slabs_;
  CallbackSlot* free_slots_ = nullptr;
  Rng rng_;
};

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_SIMULATOR_H_
