// Discrete-event simulator core.
//
// The simulator owns a virtual clock and a min-heap of timed events. Actors
// (clients, protocol operations, background tasks) are C++20 coroutines that
// suspend on awaitables which schedule their resumption at a future virtual
// time. Execution is strictly single-threaded: exactly one event runs at a
// time, events with equal timestamps run in scheduling order, and the whole
// run is reproducible from the Rng seed.

#ifndef SWARM_SRC_SIM_SIMULATOR_H_
#define SWARM_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace swarm::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at virtual time `when` (clamped to Now()).
  void At(Time when, std::function<void()> fn);

  // Schedules `fn` to run `delay` ns from now.
  void After(Time delay, std::function<void()> fn) { At(now_ + delay, std::move(fn)); }

  // Schedules resumption of a suspended coroutine.
  void ResumeAt(Time when, std::coroutine_handle<> h);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamp <= `t`, then sets the clock to `t`.
  void RunUntil(Time t);

  // Runs a single event. Returns false if the queue was empty.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }

  // Awaitable: suspends the current coroutine for `delay` virtual ns.
  auto Delay(Time delay) {
    struct Awaiter {
      Simulator* sim;
      Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim->ResumeAt(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + (delay > 0 ? delay : 0)};
  }

  // Awaitable: suspends the current coroutine until virtual time `t`.
  auto WaitUntil(Time t) { return Delay(t - now_); }

 private:
  struct Event {
    Time at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  Rng rng_;
};

}  // namespace swarm::sim

#endif  // SWARM_SRC_SIM_SIMULATOR_H_
