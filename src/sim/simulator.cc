#include "src/sim/simulator.h"

#include <bit>

namespace swarm::sim {

Simulator::~Simulator() {
  // Destroy (without running) any callables still queued, so their captured
  // state (shared_ptrs, buffers) is released. Pending coroutine resumptions
  // need no action here: suspended frames are owned by their Task chains.
  for (const Event& ev : heap_) {
    if (IsCallback(ev.payload)) {
      CallbackSlot* slot = SlotOf(ev.payload);
      slot->op(slot, /*run=*/false);
    }
  }
  for (Bucket& b : buckets_) {
    for (size_t i = b.head; i < b.items.size(); ++i) {
      if (IsCallback(b.items[i])) {
        CallbackSlot* slot = SlotOf(b.items[i]);
        slot->op(slot, /*run=*/false);
      }
    }
  }
}

Simulator::CallbackSlot* Simulator::AllocSlot() {
  if (free_slots_ == nullptr) {
    auto slab = std::make_unique<CallbackSlot[]>(kSlabSlots);
    for (size_t i = 0; i < kSlabSlots; ++i) {
      slab[i].next_free = free_slots_;
      free_slots_ = &slab[i];
    }
    pool_slots_ += kSlabSlots;
    slabs_.push_back(std::move(slab));
  }
  CallbackSlot* slot = free_slots_;
  free_slots_ = slot->next_free;
  return slot;
}

// The far-event heap is 4-ary with hole-based sifting: half the levels of a
// binary heap and one 24-byte move per level instead of a three-move swap.

void Simulator::HeapPush(Event ev) {
  heap_.push_back(ev);  // Placeholder; the hole sifts up from the back.
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Before(ev, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

Simulator::Event Simulator::HeapPopTop() {
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return top;
  }
  size_t i = 0;
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    const size_t end = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < end; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
  return top;
}

void Simulator::Rebase() {
  // Precondition: wheel empty, heap nonempty. Anchor the window so that
  // bucket index == at & kWheelMask needs no wrap handling.
  base_ = heap_.front().at & ~kWheelMask;
  const Time end = base_ + static_cast<Time>(kWheelSize);
  while (!heap_.empty() && heap_.front().at < end) {
    const Event ev = HeapPopTop();  // (time, seq) order => FIFO per bucket.
    WheelAppend(ev.at, ev.payload);
  }
}

Time Simulator::NextBucketTime(Time from) const {
  size_t idx = static_cast<size_t>(from - base_);
  size_t word = idx >> 6;
  uint64_t bits = bitmap_[word] & (~uint64_t{0} << (idx & 63));
  while (bits == 0) {
    bits = bitmap_[++word];  // wheel_count_ > 0 guarantees termination.
  }
  return base_ + static_cast<Time>((word << 6) + static_cast<size_t>(std::countr_zero(bits)));
}

void Simulator::Dispatch(uintptr_t payload) {
  ++events_processed_;
  if (IsCallback(payload)) {
    CallbackSlot* slot = SlotOf(payload);
    // Run + destroy, then recycle the slot. The callable may schedule new
    // events (and thus allocate slots) while it runs; recycling afterwards
    // keeps the slot out of its own reach.
    slot->op(slot, /*run=*/true);
    FreeSlot(slot);
  } else {
    ++coroutine_events_;
    std::coroutine_handle<>::from_address(reinterpret_cast<void*>(payload)).resume();
  }
}

bool Simulator::Step() {
  if (wheel_count_ == 0) {
    if (heap_.empty()) {
      return false;
    }
    Rebase();
  }
  const Time t = NextBucketTime(now_ > base_ ? now_ : base_);
  Bucket& b = buckets_[static_cast<size_t>(t & kWheelMask)];
  const uintptr_t payload = b.items[b.head];
  if (++b.head == b.items.size()) {
    b.items.clear();  // Keeps capacity: steady state reallocates nothing.
    b.head = 0;
    const size_t idx = static_cast<size_t>(t - base_);
    bitmap_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }
  --wheel_count_;
  now_ = t;
  Dispatch(payload);
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  // Peek without rebasing: Rebase() must stay coupled to an immediate Step,
  // otherwise the wheel could hold events while now_ < base_, breaking the
  // invariant Push relies on (wheel nonempty => pushes land at >= base_).
  while (true) {
    Time next;
    if (wheel_count_ > 0) {
      next = NextBucketTime(now_ > base_ ? now_ : base_);
    } else if (!heap_.empty()) {
      next = heap_.front().at;
    } else {
      break;
    }
    if (next > t) {
      break;
    }
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

}  // namespace swarm::sim
