#include "src/sim/simulator.h"

namespace swarm::sim {

void Simulator::At(Time when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, seq_++, std::move(fn)});
}

void Simulator::ResumeAt(Time when, std::coroutine_handle<> h) {
  At(when, [h] { h.resume(); });
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top() returns a const ref; move out via const_cast is
  // well-defined here because we pop immediately and never reuse the slot.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

}  // namespace swarm::sim
