#include "src/sim/simulator.h"

#include <bit>

namespace swarm::sim {

Simulator::~Simulator() {
  // Destroy (without running) any callables still queued, so their captured
  // state (shared_ptrs, buffers) is released. Pending coroutine resumptions
  // need no action here: suspended frames are owned by their Task chains.
  for (const Event& ev : heap_) {
    if (IsCallback(ev.payload)) {
      CallbackSlot* slot = SlotOf(ev.payload);
      slot->op(slot, /*run=*/false);
    }
  }
  for (Bucket& b : buckets_) {
    for (size_t i = b.head; i < b.items.size(); ++i) {
      if (IsCallback(b.items[i])) {
        CallbackSlot* slot = SlotOf(b.items[i]);
        slot->op(slot, /*run=*/false);
      }
    }
  }
  for (L2Bucket& b : l2_buckets_) {
    for (const L2Item& item : b.items) {
      if (IsCallback(item.payload)) {
        CallbackSlot* slot = SlotOf(item.payload);
        slot->op(slot, /*run=*/false);
      }
    }
  }
}

Simulator::CallbackSlot* Simulator::AllocSlot() {
  if (free_slots_ == nullptr) {
    auto slab = std::make_unique<CallbackSlot[]>(kSlabSlots);
    for (size_t i = 0; i < kSlabSlots; ++i) {
      slab[i].next_free = free_slots_;
      free_slots_ = &slab[i];
    }
    pool_slots_ += kSlabSlots;
    slabs_.push_back(std::move(slab));
  }
  CallbackSlot* slot = free_slots_;
  free_slots_ = slot->next_free;
  return slot;
}

// The far-event heap is 4-ary with hole-based sifting: half the levels of a
// binary heap and one 24-byte move per level instead of a three-move swap.

void Simulator::HeapPush(Event ev) {
  heap_.push_back(ev);  // Placeholder; the hole sifts up from the back.
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Before(ev, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

Simulator::Event Simulator::HeapPopTop() {
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return top;
  }
  size_t i = 0;
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    const size_t end = first_child + 4 < n ? first_child + 4 : n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < end; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
  return top;
}

void Simulator::RebaseL2() {
  // Precondition: both wheels empty, heap nonempty. Anchor the coarse level
  // on the fine-window grid so every coarse bucket IS a fine window.
  l2_base_ = heap_.front().at & ~kWheelMask;
  l2_cursor_ = l2_base_;
  const Time end = l2_base_ + kL2Span;
  while (!heap_.empty() && heap_.front().at < end) {
    const Event ev = HeapPopTop();  // (time, seq) order => FIFO per bucket.
    L2Append(ev.at, ev.payload);
  }
}

void Simulator::PromoteNextL2Bucket() {
  // Precondition: fine wheel empty, coarse level nonempty.
  size_t idx = static_cast<size_t>((l2_cursor_ - l2_base_) >> kWheelBits);
  size_t word = idx >> 6;
  uint64_t bits = l2_bitmap_[word] & (~uint64_t{0} << (idx & 63));
  while (bits == 0) {
    bits = l2_bitmap_[++word];  // l2_count_ > 0 guarantees termination.
  }
  idx = (word << 6) + static_cast<size_t>(std::countr_zero(bits));
  L2Bucket& b = l2_buckets_[idx];
  base_ = l2_base_ + (static_cast<Time>(idx) << kWheelBits);
  l2_cursor_ = base_ + static_cast<Time>(kWheelSize);
  for (const L2Item& item : b.items) {
    WheelAppend(item.at, item.payload);  // Append order is (time, seq) order.
  }
  l2_count_ -= b.items.size();
  b.items.clear();  // Keeps capacity.
  l2_bitmap_[word] &= ~(uint64_t{1} << (idx & 63));
}

bool Simulator::RefillL1() {
  while (true) {
    if (l2_count_ == 0) {
      if (heap_.empty()) {
        return false;
      }
      RebaseL2();
    }
    // Gap events: pushed while the fine wheel was empty, landing in the
    // already-promoted region below l2_cursor_ (Push routed them to the
    // heap). They belong to the CURRENT fine window — base_ is fresh, since
    // l2_cursor_ == base_ + kWheelSize whenever a bucket has been promoted,
    // and right after RebaseL2 the heap holds nothing below the horizon —
    // and must dispatch before any unpromoted coarse bucket.
    if (!heap_.empty() && heap_.front().at < l2_cursor_) {
      while (!heap_.empty() && heap_.front().at < l2_cursor_) {
        const Event ev = HeapPopTop();
        WheelAppend(ev.at, ev.payload);
      }
      return true;
    }
    PromoteNextL2Bucket();
    if (wheel_count_ > 0) {
      return true;
    }
  }
}

Time Simulator::NextBucketTime(Time from) const {
  size_t idx = static_cast<size_t>(from - base_);
  size_t word = idx >> 6;
  uint64_t bits = bitmap_[word] & (~uint64_t{0} << (idx & 63));
  while (bits == 0) {
    bits = bitmap_[++word];  // wheel_count_ > 0 guarantees termination.
  }
  return base_ + static_cast<Time>((word << 6) + static_cast<size_t>(std::countr_zero(bits)));
}

void Simulator::Dispatch(uintptr_t payload) {
  ++events_processed_;
  if (IsCallback(payload)) {
    CallbackSlot* slot = SlotOf(payload);
    // Run + destroy, then recycle the slot. The callable may schedule new
    // events (and thus allocate slots) while it runs; recycling afterwards
    // keeps the slot out of its own reach.
    slot->op(slot, /*run=*/true);
    FreeSlot(slot);
  } else {
    ++coroutine_events_;
    std::coroutine_handle<>::from_address(reinterpret_cast<void*>(payload)).resume();
  }
}

bool Simulator::Step() {
  if (wheel_count_ == 0 && !RefillL1()) {
    return false;
  }
  const Time t = NextBucketTime(now_ > base_ ? now_ : base_);
  Bucket& b = buckets_[static_cast<size_t>(t & kWheelMask)];
  const uintptr_t payload = b.items[b.head];
  if (++b.head == b.items.size()) {
    b.items.clear();  // Keeps capacity: steady state reallocates nothing.
    b.head = 0;
    const size_t idx = static_cast<size_t>(t - base_);
    bitmap_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }
  --wheel_count_;
  now_ = t;
  Dispatch(payload);
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

bool Simulator::PeekNextTime(Time* out) const {
  if (wheel_count_ > 0) {
    // Fine-wheel events precede everything in the coarse level (>= l2_cursor_
    // == window end) and anything in the heap (gap events migrate into the
    // fine wheel before it refills; far events are beyond the horizon).
    *out = NextBucketTime(now_ > base_ ? now_ : base_);
    return true;
  }
  bool have = false;
  Time best = 0;
  if (!heap_.empty()) {
    best = heap_.front().at;
    have = true;
  }
  if (l2_count_ > 0) {
    // Find the first nonempty coarse bucket; its start is a lower bound on
    // its contents, so scan items for the true minimum only when that bound
    // could beat the heap.
    size_t idx = static_cast<size_t>((l2_cursor_ - l2_base_) >> kWheelBits);
    size_t word = idx >> 6;
    uint64_t bits = l2_bitmap_[word] & (~uint64_t{0} << (idx & 63));
    while (bits == 0) {
      bits = l2_bitmap_[++word];
    }
    idx = (word << 6) + static_cast<size_t>(std::countr_zero(bits));
    const Time start = l2_base_ + (static_cast<Time>(idx) << kWheelBits);
    if (!have || start < best) {
      for (const L2Item& item : l2_buckets_[idx].items) {
        if (!have || item.at < best) {
          best = item.at;
          have = true;
        }
      }
    }
  }
  *out = best;
  return have;
}

void Simulator::RunUntil(Time t) {
  // Peek without refilling: RefillL1/RebaseL2 must stay coupled to an
  // immediate Step, otherwise a wheel could hold events while now_ lags its
  // anchor, breaking the invariants Push relies on (fresh anchors whenever a
  // level is nonempty).
  while (true) {
    Time next;
    if (!PeekNextTime(&next) || next > t) {
      break;
    }
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

}  // namespace swarm::sim
