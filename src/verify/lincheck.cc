#include "src/verify/lincheck.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

namespace swarm::verify {
namespace {

constexpr sim::Time kNoDeadline = std::numeric_limits<sim::Time>::max();

// One retained op of a cell after the pending-op closure. `deadline` is the
// effective response the WGL enabling rule uses: the recorded response for
// completed ops, the capped window for pending writes whose unique value was
// read, kNoDeadline otherwise.
struct CellOp {
  size_t id = 0;  // Index into the caller's history vector.
  bool is_write = false;
  uint64_t value = 0;
  sim::Time invoked = 0;
  sim::Time deadline = 0;
  bool pending = false;  // Optional to linearize.
};

// A cell's input: (caller index, op), possibly rewritten by the failure
// minimizer (truncation re-marks in-flight ops as pending).
using CellInput = std::vector<std::pair<size_t, HistoryOp>>;

// Pending-op closure (sound AND complete — each rule preserves the verdict):
//  * pending reads constrain nothing (they are never required and never
//    change state) — dropped;
//  * a pending write whose value no completed read returned (at or after its
//    invocation) can only overwrite the register, never explain an op —
//    dropped;
//  * a pending write of a nonzero value written by no other op, whose value
//    WAS returned by completed reads, must linearize before the first such
//    read's response (it is the only write that can explain it) — its
//    deadline is capped there, re-enabling time-window cuts behind it. With
//    duplicate or zero values the unbounded window is kept: a capped window
//    is only provably equivalent for a unique writer.
// `ambient` lists values the register may hold BEFORE this history runs
// (entry values of a truncated window re-check): a read of such a value
// needs no write at all, so the unique-writer capping proof does not apply
// to it. Whole-cell checks start from 0 only, which `value != 0` covers.
//
// `optimistic` additionally caps observed pending writes of duplicate/zero
// values (removes) at the next completed overwrite's response. SAFETY: a
// pending op's real window is unbounded, so SHRINKING its deadline only
// restricts which linearizations the DFS may build — every acceptance under
// the cap concatenates into a valid uncapped linearization (completed ops
// keep their true deadlines; the capped pending op is merely placed earlier
// than it had to be, which is always allowed). The cap can therefore cause
// false REJECTIONS only — e.g. a remove that genuinely took effect after a
// later window's overwrite — and CheckImpl re-runs a rejected cell exactly
// (cap off) before reporting a violation. Without the cap, a single pending
// remove keeps its window open to the end of the cell and remove-heavy
// single-key histories collapse into one exponential window.
//
// Returns the retained ops sorted by invocation (ties by caller index).
std::vector<CellOp> Preprocess(const CellInput& in, const std::set<uint64_t>& ambient = {},
                               bool optimistic = false) {
  std::map<uint64_t, int> writes_of;           // value -> write count
  std::map<uint64_t, std::vector<sim::Time>> reads_of;  // value -> completed-read responses
  // Completed writes by invocation, with suffix-min of responses: the
  // optimistic cap for a pending write invoked at t is the earliest response
  // among completed writes invoked at/after t ("the next completed
  // overwrite").
  std::vector<std::pair<sim::Time, sim::Time>> completed_writes;  // (invoked, responded)
  for (const auto& [id, op] : in) {
    if (op.is_write) {
      ++writes_of[op.value];
      if (!op.pending) {
        completed_writes.push_back({op.invoked, op.responded});
      }
    } else if (!op.pending) {
      reads_of[op.value].push_back(op.responded);
    }
  }
  for (auto& [value, times] : reads_of) {
    std::sort(times.begin(), times.end());
  }
  std::sort(completed_writes.begin(), completed_writes.end());
  std::vector<sim::Time> suffix_min_resp(completed_writes.size() + 1, kNoDeadline);
  for (size_t i = completed_writes.size(); i-- > 0;) {
    suffix_min_resp[i] = std::min(suffix_min_resp[i + 1], completed_writes[i].second);
  }
  auto next_overwrite_resp = [&](sim::Time invoked) {
    const auto it = std::lower_bound(completed_writes.begin(), completed_writes.end(),
                                     std::pair<sim::Time, sim::Time>{invoked, 0});
    return suffix_min_resp[static_cast<size_t>(it - completed_writes.begin())];
  };

  std::vector<CellOp> out;
  out.reserve(in.size());
  for (const auto& [id, op] : in) {
    CellOp c;
    c.id = id;
    c.is_write = op.is_write;
    c.value = op.value;
    c.invoked = op.invoked;
    c.pending = op.pending;
    if (!op.pending) {
      c.deadline = op.responded;
      out.push_back(c);
      continue;
    }
    if (!op.is_write) {
      continue;  // Pending read: unconstrained.
    }
    const auto it = reads_of.find(op.value);
    sim::Time first_read = kNoDeadline;
    bool observed = false;
    if (it != reads_of.end()) {
      for (sim::Time t : it->second) {
        if (t >= op.invoked) {
          observed = true;
          first_read = t;  // Sorted: first hit is the earliest.
          break;
        }
      }
    }
    if (!observed) {
      continue;  // Never observed: including it could only burn state.
    }
    if (op.value != 0 && writes_of[op.value] == 1 && ambient.count(op.value) == 0) {
      c.deadline = first_read;  // Unique writer: provably exact cap.
    } else if (optimistic) {
      c.deadline = next_overwrite_resp(op.invoked);  // Acceptance-sound cap.
    } else {
      c.deadline = kNoDeadline;
    }
    out.push_back(c);
  }
  std::stable_sort(out.begin(), out.end(), [](const CellOp& a, const CellOp& b) {
    return a.invoked != b.invoked ? a.invoked < b.invoked : a.id < b.id;
  });
  return out;
}

// [first, first+count) range of a cell's retained ops forming one time
// window: no retained op's [invoked, deadline] spans a window boundary.
struct Window {
  size_t first = 0;
  size_t count = 0;
};

std::vector<Window> SplitWindows(const std::vector<CellOp>& ops) {
  std::vector<Window> out;
  if (ops.empty()) {
    return out;
  }
  size_t start = 0;
  sim::Time horizon = ops[0].deadline;
  for (size_t i = 1; i < ops.size(); ++i) {
    // `>` not `>=`: an op invoked exactly at another's response is still
    // concurrent under the enabling rule (matching the legacy DFS).
    if (ops[i].invoked > horizon) {
      out.push_back({start, i - start});
      start = i;
      horizon = ops[i].deadline;
    } else {
      horizon = std::max(horizon, ops[i].deadline);
    }
  }
  out.push_back({start, ops.size() - start});
  return out;
}

// Dynamic-bitset DFS state: linearized set + register value.
struct DfsState {
  std::vector<uint64_t> mask;
  uint64_t value = 0;

  bool operator==(const DfsState&) const = default;
};

struct DfsStateHash {
  size_t operator()(const DfsState& s) const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
      h ^= h >> 29;
    };
    mix(s.value);
    for (uint64_t w : s.mask) {
      mix(w);
    }
    return static_cast<size_t>(h);
  }
};

// Wing&Gong just-in-time DFS over one window. `AddInit` explores every
// reachable state from one initial register value; `finals()` accumulates
// the values the register can hold once all completed ops are linearized —
// including states where leftover pending writes did or did not apply, so
// chaining windows through the value set stays exact. With `decide_only` it
// stops at the first complete state (the last window needs no finals).
//
// The state memo persists across a window's inits: a DFS state (linearized
// set, register value) fully determines its remaining exploration no matter
// which init reached it, so states shared between inits are explored once.
// (Root states never collide with memoized interior states — an empty mask
// occurs only at a root, and the inits are distinct.)
class WindowDfs {
 public:
  WindowDfs(const CellOp* ops, size_t n, CheckStats* stats)
      : ops_(ops), n_(n), words_((n + 63) / 64), stats_(stats) {
    completed_total_ = 0;
    for (size_t i = 0; i < n_; ++i) {
      completed_total_ += ops_[i].pending ? 0 : 1;
    }
  }

  // Returns true iff decide_only and a complete state was reached.
  bool AddInit(uint64_t init, bool decide_only) {
    decide_only_ = decide_only;
    found_ = false;
    cur_.mask.assign(words_, 0);
    cur_.value = init;
    Dfs(completed_total_);
    return found_;
  }

  const std::set<uint64_t>& finals() const { return finals_; }

 private:
  bool Linearized(size_t i) const { return (cur_.mask[i >> 6] >> (i & 63)) & 1; }

  void Dfs(size_t completed_left) {
    if (!visited_.insert(cur_).second) {
      return;
    }
    ++stats_->states;
    if (completed_left == 0) {
      finals_.insert(cur_.value);
      if (decide_only_) {
        found_ = true;
        return;
      }
    }
    // An op is enabled iff no unlinearized op responded before it was
    // invoked (just-in-time linearization).
    sim::Time min_resp = kNoDeadline;
    for (size_t i = 0; i < n_; ++i) {
      if (!Linearized(i)) {
        min_resp = std::min(min_resp, ops_[i].deadline);
      }
    }
    const uint64_t value_here = cur_.value;
    for (size_t i = 0; i < n_; ++i) {
      if (Linearized(i)) {
        continue;
      }
      const CellOp& op = ops_[i];
      if (op.invoked > min_resp) {
        continue;  // Some other op must linearize first.
      }
      if (!op.is_write && op.value != value_here) {
        continue;  // A read must return the current value.
      }
      cur_.mask[i >> 6] |= 1ull << (i & 63);
      cur_.value = op.is_write ? op.value : value_here;
      Dfs(completed_left - (op.pending ? 0 : 1));
      cur_.mask[i >> 6] &= ~(1ull << (i & 63));
      cur_.value = value_here;
      if (found_) {
        return;
      }
    }
  }

  const CellOp* ops_;
  size_t n_;
  size_t words_;
  size_t completed_total_ = 0;
  CheckStats* stats_;
  DfsState cur_;
  std::unordered_set<DfsState, DfsStateHash> visited_;
  std::set<uint64_t> finals_;
  bool decide_only_ = false;
  bool found_ = false;
};

struct CellFailure {
  Window window;
  std::vector<uint64_t> inits;  // Register values possible at window entry.
};

// Checks one cell's retained ops starting from any of `inits`, chaining the
// windows through the reachable-value sets.
std::optional<CellFailure> RunCell(const std::vector<CellOp>& ops,
                                   const std::vector<uint64_t>& init_values,
                                   CheckStats* stats) {
  const std::vector<Window> windows = SplitWindows(ops);
  std::vector<uint64_t> inits = init_values;
  for (size_t wi = 0; wi < windows.size(); ++wi) {
    const Window& w = windows[wi];
    ++stats->windows;
    stats->max_window_ops = std::max(stats->max_window_ops, static_cast<uint64_t>(w.count));
    const bool last = wi + 1 == windows.size();
    WindowDfs dfs(ops.data() + w.first, w.count, stats);
    for (uint64_t init : inits) {
      if (dfs.AddInit(init, last)) {
        return std::nullopt;  // Accepted; no later window needs the finals.
      }
    }
    if (dfs.finals().empty()) {
      return CellFailure{w, std::move(inits)};
    }
    inits.assign(dfs.finals().begin(), dfs.finals().end());
  }
  return std::nullopt;
}

// Truncates a failing window at virtual time `cut`: ops invoked later are
// dropped, completed ops still in flight are re-marked pending. The result
// is exactly the history an observer would have recorded at `cut`, so a
// rejected truncation is itself a valid (smaller) counterexample.
CellInput TruncateAt(const CellInput& in, sim::Time cut) {
  CellInput out;
  for (const auto& [id, op] : in) {
    if (op.invoked > cut) {
      continue;
    }
    HistoryOp t = op;
    if (!t.pending && t.responded > cut) {
      t.pending = true;
    }
    out.push_back({id, t});
  }
  return out;
}

// Shrinks a failing window to the earliest truncation that is already
// rejected and fills the report from it.
void MinimizeFailure(const CellInput& window_ops, const std::vector<uint64_t>& inits,
                     uint64_t key, CheckResult* res) {
  res->linearizable = false;
  res->key = key;

  std::vector<std::pair<sim::Time, size_t>> completions;  // (responded, id)
  for (const auto& [id, op] : window_ops) {
    if (!op.pending) {
      completions.push_back({op.responded, id});
    }
  }
  std::sort(completions.begin(), completions.end());

  CheckStats scratch;
  // The truncated window is a standalone history entered with `inits`
  // possibly already in the register — those values can explain reads
  // without any write, so they are ambient for the capping rule.
  const std::set<uint64_t> ambient(inits.begin(), inits.end());
  for (const auto& [cut, culprit_id] : completions) {
    const CellInput truncated = TruncateAt(window_ops, cut);
    const std::vector<CellOp> retained = Preprocess(truncated, ambient);
    if (!RunCell(retained, inits, &scratch).has_value()) {
      continue;  // Still linearizable up to this completion.
    }
    res->culprit = culprit_id;
    res->window_end = cut;
    res->window_begin = cut;
    for (const auto& [id, op] : truncated) {
      res->window_begin = std::min(res->window_begin, op.invoked);
      res->window_ops.push_back(id);
    }
    return;
  }
  // Unreachable in practice (the full window is a failing truncation), but
  // degrade gracefully: report the whole window.
  res->window_end = 0;
  res->window_begin = kNoDeadline;
  for (const auto& [id, op] : window_ops) {
    res->window_begin = std::min(res->window_begin, op.invoked);
    if (!op.pending) {
      res->window_end = std::max(res->window_end, op.responded);
    }
    res->window_ops.push_back(id);
  }
}

// Shared engine behind Check / CheckReport. Returns early without a report
// when `res` is null.
bool CheckImpl(const std::vector<HistoryOp>& ops, CheckResult* res) {
  std::map<uint64_t, CellInput> cells;  // Ordered: deterministic reports.
  for (size_t i = 0; i < ops.size(); ++i) {
    cells[ops[i].key].push_back({i, ops[i]});
  }
  CheckStats local_stats;
  CheckStats* stats = res != nullptr ? &res->stats : &local_stats;
  for (const auto& [key, input] : cells) {
    ++stats->cells;
    // Optimistic pass first: pending removes capped at the next completed
    // overwrite, so remove-heavy cells still split into windows. The cap is
    // acceptance-sound (see Preprocess) — only a REJECTION needs the exact,
    // uncapped re-run before it may be believed.
    const std::vector<CellOp> capped = Preprocess(input, {}, /*optimistic=*/true);
    if (!RunCell(capped, {0}, stats).has_value()) {
      continue;
    }
    ++stats->fallback_cells;
    const std::vector<CellOp> retained = Preprocess(input);
    std::optional<CellFailure> fail = RunCell(retained, {0}, stats);
    if (!fail.has_value()) {
      continue;
    }
    if (res != nullptr) {
      // Hand the minimizer the failing window's retained ops, as recorded.
      CellInput window_ops;
      for (size_t i = 0; i < fail->window.count; ++i) {
        const size_t id = retained[fail->window.first + i].id;
        window_ops.push_back({id, ops[id]});
      }
      MinimizeFailure(window_ops, fail->inits, key, res);
    }
    return false;
  }
  return true;
}

}  // namespace

std::string CheckResult::Describe(const std::vector<HistoryOp>& ops) const {
  if (linearizable) {
    return "linearizable (" + std::to_string(stats.cells) + " cells, " +
           std::to_string(stats.windows) + " windows, " + std::to_string(stats.states) +
           " states)";
  }
  int pending = 0;
  for (size_t id : window_ops) {
    pending += ops[id].pending ? 1 : 0;
  }
  std::string msg = "key " + std::to_string(key) + " NON-LINEARIZABLE: minimal window [" +
                    std::to_string(window_begin) + ".." + std::to_string(window_end) + "], " +
                    std::to_string(window_ops.size()) + " ops (" + std::to_string(pending) +
                    " pending)";
  for (size_t id : window_ops) {
    const HistoryOp& op = ops[id];
    msg += "\n    #" + std::to_string(id) + " " + (op.is_write ? "W(" : "R(") +
           std::to_string(op.value) + ") @" + std::to_string(op.invoked) +
           (op.pending ? " pending" : ".." + std::to_string(op.responded));
    if (id == culprit) {
      msg += "  <- completion breaks the window";
    }
  }
  return msg;
}

bool LinearizabilityChecker::Check(const std::vector<HistoryOp>& ops) {
  return CheckImpl(ops, nullptr);
}

CheckResult LinearizabilityChecker::CheckReport(const std::vector<HistoryOp>& ops) {
  CheckResult res;
  res.linearizable = CheckImpl(ops, &res);
  return res;
}

// --- The pre-PR-4 bitmask DFS, kept verbatim as a differential oracle. ----

namespace {

class LegacyChecker {
 public:
  static bool Check(const std::vector<HistoryOp>& ops) {
    if (ops.size() > 63) {
      return false;  // The historical cap: callers kept histories small.
    }
    LegacyChecker checker(ops);
    return checker.Dfs(0, 0);
  }

 private:
  explicit LegacyChecker(const std::vector<HistoryOp>& ops) : ops_(ops) {
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (!ops_[i].pending) {
        completed_ |= 1ull << i;
      }
    }
  }

  sim::Time ResponseOf(size_t i) const {
    return ops_[i].pending ? std::numeric_limits<sim::Time>::max() : ops_[i].responded;
  }

  bool Dfs(uint64_t mask, uint64_t value) {
    if ((mask & completed_) == completed_) {
      return true;  // Every completed op explained; leftovers are pending.
    }
    if (!visited_.insert({mask, value}).second) {
      return false;
    }
    sim::Time min_resp = std::numeric_limits<sim::Time>::max();
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) == 0) {
        min_resp = std::min(min_resp, ResponseOf(i));
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) != 0) {
        continue;
      }
      const HistoryOp& op = ops_[i];
      if (op.invoked > min_resp) {
        continue;
      }
      if (op.is_write) {
        if (Dfs(mask | (1ull << i), op.value)) {
          return true;
        }
      } else if (op.value == value) {
        if (Dfs(mask | (1ull << i), value)) {
          return true;
        }
      }
    }
    return false;
  }

  const std::vector<HistoryOp>& ops_;
  uint64_t completed_ = 0;
  std::set<std::pair<uint64_t, uint64_t>> visited_;
};

}  // namespace

bool LinearizabilityChecker::CheckLegacy(const std::vector<HistoryOp>& ops) {
  return LegacyChecker::Check(ops);
}

}  // namespace swarm::verify
