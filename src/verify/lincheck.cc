#include "src/verify/lincheck.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/sim/pool.h"

namespace swarm::verify {
namespace {

constexpr sim::Time kNoDeadline = std::numeric_limits<sim::Time>::max();

// One retained op of a cell after the pending-op closure. `deadline` is the
// effective response the WGL enabling rule uses: the recorded response for
// completed ops, the capped window for pending writes whose unique value was
// read, kNoDeadline otherwise.
struct CellOp {
  size_t id = 0;  // Index into the caller's history vector.
  bool is_write = false;
  uint64_t value = 0;
  sim::Time invoked = 0;
  sim::Time deadline = 0;
  bool pending = false;  // Optional to linearize.
};

// A cell's input: (caller index, op), possibly rewritten by the failure
// minimizer (truncation re-marks in-flight ops as pending).
using CellInput = std::vector<std::pair<size_t, HistoryOp>>;

// Pending-op closure (sound AND complete — each rule preserves the verdict):
//  * pending reads constrain nothing (they are never required and never
//    change state) — dropped;
//  * a pending write whose value no completed read returned (at or after its
//    invocation) can only overwrite the register, never explain an op —
//    dropped;
//  * a pending write of a nonzero value written by no other op, whose value
//    WAS returned by completed reads, must linearize before the first such
//    read's response (it is the only write that can explain it) — its
//    deadline is capped there, re-enabling time-window cuts behind it. With
//    duplicate or zero values the unbounded window is kept: a capped window
//    is only provably equivalent for a unique writer.
// `ambient` lists values the register may hold BEFORE this history runs
// (entry values of a truncated window re-check): a read of such a value
// needs no write at all, so the unique-writer capping proof does not apply
// to it. Whole-cell checks start from 0 only, which `value != 0` covers.
//
// `optimistic` additionally caps observed pending writes of duplicate/zero
// values (removes) at the next completed overwrite's response. SAFETY: a
// pending op's real window is unbounded, so SHRINKING its deadline only
// restricts which linearizations the DFS may build — every acceptance under
// the cap concatenates into a valid uncapped linearization (completed ops
// keep their true deadlines; the capped pending op is merely placed earlier
// than it had to be, which is always allowed). The cap can therefore cause
// false REJECTIONS only — e.g. a remove that genuinely took effect after a
// later window's overwrite — and CheckImpl re-runs a rejected cell exactly
// (cap off) before reporting a violation. Without the cap, a single pending
// remove keeps its window open to the end of the cell and remove-heavy
// single-key histories collapse into one exponential window.
//
// Returns the retained ops sorted by invocation (ties by caller index).
std::vector<CellOp> Preprocess(const CellInput& in, const std::set<uint64_t>& ambient = {},
                               bool optimistic = false) {
  std::map<uint64_t, int> writes_of;           // value -> write count
  std::map<uint64_t, std::vector<sim::Time>> reads_of;  // value -> completed-read responses
  // Completed writes by invocation, with suffix-min of responses: the
  // optimistic cap for a pending write invoked at t is the earliest response
  // among completed writes invoked at/after t ("the next completed
  // overwrite").
  std::vector<std::pair<sim::Time, sim::Time>> completed_writes;  // (invoked, responded)
  for (const auto& [id, op] : in) {
    if (op.is_write) {
      ++writes_of[op.value];
      if (!op.pending) {
        completed_writes.push_back({op.invoked, op.responded});
      }
    } else if (!op.pending) {
      reads_of[op.value].push_back(op.responded);
    }
  }
  for (auto& [value, times] : reads_of) {
    std::sort(times.begin(), times.end());
  }
  std::sort(completed_writes.begin(), completed_writes.end());
  std::vector<sim::Time> suffix_min_resp(completed_writes.size() + 1, kNoDeadline);
  for (size_t i = completed_writes.size(); i-- > 0;) {
    suffix_min_resp[i] = std::min(suffix_min_resp[i + 1], completed_writes[i].second);
  }
  auto next_overwrite_resp = [&](sim::Time invoked) {
    const auto it = std::lower_bound(completed_writes.begin(), completed_writes.end(),
                                     std::pair<sim::Time, sim::Time>{invoked, 0});
    return suffix_min_resp[static_cast<size_t>(it - completed_writes.begin())];
  };

  std::vector<CellOp> out;
  out.reserve(in.size());
  for (const auto& [id, op] : in) {
    CellOp c;
    c.id = id;
    c.is_write = op.is_write;
    c.value = op.value;
    c.invoked = op.invoked;
    c.pending = op.pending;
    if (!op.pending) {
      c.deadline = op.responded;
      out.push_back(c);
      continue;
    }
    if (!op.is_write) {
      continue;  // Pending read: unconstrained.
    }
    const auto it = reads_of.find(op.value);
    sim::Time first_read = kNoDeadline;
    bool observed = false;
    if (it != reads_of.end()) {
      for (sim::Time t : it->second) {
        if (t >= op.invoked) {
          observed = true;
          first_read = t;  // Sorted: first hit is the earliest.
          break;
        }
      }
    }
    if (!observed) {
      continue;  // Never observed: including it could only burn state.
    }
    if (op.value != 0 && writes_of[op.value] == 1 && ambient.count(op.value) == 0) {
      c.deadline = first_read;  // Unique writer: provably exact cap.
    } else if (optimistic) {
      c.deadline = next_overwrite_resp(op.invoked);  // Acceptance-sound cap.
    } else {
      c.deadline = kNoDeadline;
    }
    out.push_back(c);
  }
  std::stable_sort(out.begin(), out.end(), [](const CellOp& a, const CellOp& b) {
    return a.invoked != b.invoked ? a.invoked < b.invoked : a.id < b.id;
  });
  return out;
}

// [first, first+count) range of a cell's retained ops forming one time
// window: no retained op's [invoked, deadline] spans a window boundary.
struct Window {
  size_t first = 0;
  size_t count = 0;
};

std::vector<Window> SplitWindows(const std::vector<CellOp>& ops) {
  std::vector<Window> out;
  if (ops.empty()) {
    return out;
  }
  size_t start = 0;
  sim::Time horizon = ops[0].deadline;
  for (size_t i = 1; i < ops.size(); ++i) {
    // `>` not `>=`: an op invoked exactly at another's response is still
    // concurrent under the enabling rule (matching the legacy DFS).
    if (ops[i].invoked > horizon) {
      out.push_back({start, i - start});
      start = i;
      horizon = ops[i].deadline;
    } else {
      horizon = std::max(horizon, ops[i].deadline);
    }
  }
  out.push_back({start, ops.size() - start});
  return out;
}

// Dynamic-bitset DFS state: linearized set + register value.
struct DfsState {
  std::vector<uint64_t> mask;
  uint64_t value = 0;

  bool operator==(const DfsState&) const = default;
};

struct DfsStateHash {
  size_t operator()(const DfsState& s) const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
      h ^= h >> 29;
    };
    mix(s.value);
    for (uint64_t w : s.mask) {
      mix(w);
    }
    return static_cast<size_t>(h);
  }
};

// Wing&Gong just-in-time DFS over one window, PR-4 scan-based edition:
// the enabling rule rescans every op per DFS node and the memo copies the
// full bitset per state. Kept verbatim as the differential oracle for
// FrontierWindowDfs below (CheckBaseline) — the two engines explore the
// identical state space, so their verdicts must agree on every history.
//
// `AddInit` explores every reachable state from one initial register value;
// `finals()` accumulates the values the register can hold once all
// completed ops are linearized — including states where leftover pending
// writes did or did not apply, so chaining windows through the value set
// stays exact. With `decide_only` it stops at the first complete state (the
// last window needs no finals).
//
// The state memo persists across a window's inits: a DFS state (linearized
// set, register value) fully determines its remaining exploration no matter
// which init reached it, so states shared between inits are explored once.
// (Root states never collide with memoized interior states — an empty mask
// occurs only at a root, and the inits are distinct.)
class ScanWindowDfs {
 public:
  ScanWindowDfs(const CellOp* ops, size_t n, CheckStats* stats)
      : ops_(ops), n_(n), words_((n + 63) / 64), stats_(stats) {
    completed_total_ = 0;
    for (size_t i = 0; i < n_; ++i) {
      completed_total_ += ops_[i].pending ? 0 : 1;
    }
  }

  // Returns true iff decide_only and a complete state was reached.
  bool AddInit(uint64_t init, bool decide_only) {
    decide_only_ = decide_only;
    found_ = false;
    cur_.mask.assign(words_, 0);
    cur_.value = init;
    Dfs(completed_total_);
    return found_;
  }

  const std::set<uint64_t>& finals() const { return finals_; }

 private:
  bool Linearized(size_t i) const { return (cur_.mask[i >> 6] >> (i & 63)) & 1; }

  void Dfs(size_t completed_left) {
    if (!visited_.insert(cur_).second) {
      return;
    }
    ++stats_->states;
    if (completed_left == 0) {
      finals_.insert(cur_.value);
      if (decide_only_) {
        found_ = true;
        return;
      }
    }
    // An op is enabled iff no unlinearized op responded before it was
    // invoked (just-in-time linearization).
    sim::Time min_resp = kNoDeadline;
    for (size_t i = 0; i < n_; ++i) {
      if (!Linearized(i)) {
        min_resp = std::min(min_resp, ops_[i].deadline);
      }
    }
    const uint64_t value_here = cur_.value;
    for (size_t i = 0; i < n_; ++i) {
      if (Linearized(i)) {
        continue;
      }
      const CellOp& op = ops_[i];
      if (op.invoked > min_resp) {
        continue;  // Some other op must linearize first.
      }
      if (!op.is_write && op.value != value_here) {
        continue;  // A read must return the current value.
      }
      cur_.mask[i >> 6] |= 1ull << (i & 63);
      cur_.value = op.is_write ? op.value : value_here;
      Dfs(completed_left - (op.pending ? 0 : 1));
      cur_.mask[i >> 6] &= ~(1ull << (i & 63));
      cur_.value = value_here;
      if (found_) {
        return;
      }
    }
  }

  const CellOp* ops_;
  size_t n_;
  size_t words_;
  size_t completed_total_ = 0;
  CheckStats* stats_;
  DfsState cur_;
  std::unordered_set<DfsState, DfsStateHash> visited_;
  std::set<uint64_t> finals_;
  bool decide_only_ = false;
  bool found_ = false;
};

// --- Frontier engine: the production WindowDfs for 10^5-op histories. ----

// One 64-byte node of the persistent linearized-set bitset, sized to the
// FramePool's smallest class: a refcount plus 7 mask words (448 ops per
// chunk). Chunks are shared copy-on-write between the DFS cursor and every
// memoized state: sibling states differ in one bit, so they share every
// chunk except the one holding it — a memoized state costs O(1) new chunks
// where the scan engine copies the whole mask.
struct MaskChunk {
  uint32_t refs = 0;
  uint32_t pad = 0;
  uint64_t words[7] = {};
};
static_assert(sizeof(MaskChunk) == 64, "MaskChunk must fill one pool node");

constexpr size_t kChunkWords = 7;
constexpr size_t kChunkBits = kChunkWords * 64;

MaskChunk* NewChunk() {
  auto* c = static_cast<MaskChunk*>(sim::FramePool::Alloc(sizeof(MaskChunk)));
  c->refs = 1;
  std::memset(c->words, 0, sizeof(c->words));
  return c;
}

MaskChunk* CopyChunk(const MaskChunk* src) {
  auto* c = static_cast<MaskChunk*>(sim::FramePool::Alloc(sizeof(MaskChunk)));
  c->refs = 1;
  std::memcpy(c->words, src->words, sizeof(c->words));
  return c;
}

void UnrefChunk(MaskChunk* c) {
  if (--c->refs == 0) {
    sim::FramePool::Free(c, sizeof(MaskChunk));
  }
}

// Deterministic per-bit Zobrist keys: flipping bit i XORs SplitMix64(i)
// into the state hash, so the memo hash is maintained in O(1) per
// linearize/backtrack instead of rehashing the mask.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// A memoized (linearized set, register value) state. The chunk pointers are
// stored inline for windows up to 2 chunks (896 ops — the common case after
// quiescent-point splitting) and in a pool-allocated array beyond that; the
// representation is implied by the window's chunk count, so no tag is kept.
struct MemoEntry {
  uint64_t hash = 0;
  uint64_t value = 0;
  union {
    MaskChunk* inline_chunks[2];
    MaskChunk** chunks;
  };

  MemoEntry() : inline_chunks{nullptr, nullptr} {}

  MaskChunk* const* ptrs(size_t nchunks) const {
    return nchunks <= 2 ? inline_chunks : chunks;
  }
  MaskChunk** ptrs(size_t nchunks) {
    return nchunks <= 2 ? inline_chunks : chunks;
  }
};

struct MemoHash {
  size_t operator()(const MemoEntry& e) const { return static_cast<size_t>(e.hash); }
};

// Exact equality: chunk pointer identity first (the persistent sharing makes
// this the overwhelmingly common hit), content comparison as the fallback —
// COW round trips can produce distinct chunks with equal bits, and a missed
// dedup only costs time while a spurious one would be unsound.
struct MemoEq {
  size_t nchunks;
  bool operator()(const MemoEntry& a, const MemoEntry& b) const {
    if (a.hash != b.hash || a.value != b.value) {
      return false;
    }
    MaskChunk* const* pa = a.ptrs(nchunks);
    MaskChunk* const* pb = b.ptrs(nchunks);
    for (size_t c = 0; c < nchunks; ++c) {
      if (pa[c] != pb[c] &&
          std::memcmp(pa[c]->words, pb[c]->words, sizeof(pa[c]->words)) != 0) {
        return false;
      }
    }
    return true;
  }
};

// The production Wing&Gong DFS: same state space, inits contract, finals
// and decide_only semantics as ScanWindowDfs, with two structural upgrades
// that take checked histories from ~2k to 10^5 ops:
//
//  * Frontier in invocation order. Preprocess hands the window's ops sorted
//    by invocation; the unlinearized ones are kept in a doubly-linked list
//    in that order, and a min segment tree over their deadlines gives the
//    enabling horizon at the root. A candidate scan walks the list and
//    STOPS at the first op invoked past the horizon — everything later is
//    disabled too — so a DFS node costs O(candidates + log n), not O(n).
//    Linearize unlinks + lifts the op's tree leaf to +inf; backtrack relinks
//    (LIFO order makes the splice exact) and restores the leaf.
//  * Persistent memo. The cursor state is an array of refcounted MaskChunks
//    mutated copy-on-write; memo inserts share the cursor's chunks instead
//    of copying the mask, and the state hash rides Zobrist keys so hashing
//    is O(1) per step. See MaskChunk/MemoEntry above.
//
// The DFS itself is an explicit-stack loop — a 10^5-op window would
// overflow the call stack at recursion depth n. Candidate iteration order
// matches the scan engine exactly (both visit unlinearized ops in
// invocation order), so the two engines explore identical trees.
class FrontierWindowDfs {
 public:
  FrontierWindowDfs(const CellOp* ops, size_t n, CheckStats* stats)
      : ops_(ops),
        n_(n),
        nchunks_((n + kChunkBits - 1) / kChunkBits),
        stats_(stats),
        visited_(16, MemoHash{}, MemoEq{nchunks_}) {
    completed_total_ = 0;
    zob_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      completed_total_ += ops_[i].pending ? 0 : 1;
      zob_[i] = SplitMix64(i + 0x5eed5eedull);
    }
    // Doubly-linked frontier over [0, n) in invocation order, sentinel n.
    next_.resize(n_ + 1);
    prev_.resize(n_ + 1);
    for (size_t i = 0; i <= n_; ++i) {
      next_[i] = i + 1 <= n_ ? i + 1 : 0;
      prev_[i] = i > 0 ? i - 1 : n_;
    }
    next_[n_] = n_ > 0 ? 0 : n_;
    // Min segment tree over deadlines; linearized leaves lift to +inf.
    segn_ = std::bit_ceil(std::max<size_t>(n_, 1));
    seg_.assign(2 * segn_, kNoDeadline);
    for (size_t i = 0; i < n_; ++i) {
      seg_[segn_ + i] = ops_[i].deadline;
    }
    for (size_t p = segn_ - 1; p >= 1; --p) {
      seg_[p] = std::min(seg_[2 * p], seg_[2 * p + 1]);
    }
    cur_.resize(nchunks_);
    for (auto& c : cur_) {
      c = NewChunk();
    }
  }

  FrontierWindowDfs(const FrontierWindowDfs&) = delete;
  FrontierWindowDfs& operator=(const FrontierWindowDfs&) = delete;

  ~FrontierWindowDfs() {
    for (const MemoEntry& e : visited_) {
      MaskChunk* const* p = e.ptrs(nchunks_);
      for (size_t c = 0; c < nchunks_; ++c) {
        UnrefChunk(p[c]);
      }
      if (nchunks_ > 2) {
        sim::FramePool::Free(e.chunks, nchunks_ * sizeof(MaskChunk*));
      }
    }
    for (MaskChunk* c : cur_) {
      UnrefChunk(c);
    }
  }

  // Returns true iff decide_only and a complete state was reached. The
  // frontier list, segment tree and cursor bitset are fully restored on
  // exit (every descent is undone), so inits reuse them directly.
  bool AddInit(uint64_t init, bool decide_only) {
    decide_only_ = decide_only;
    found_ = false;
    cur_value_ = init;
    if (EnterState(completed_total_)) {
      stack_.clear();
      stack_.push_back(Frame{next_[n_], kNone, init, completed_total_});
    }
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      size_t i = f.cursor;
      if (found_) {
        i = n_;  // Decided: unwind, restoring the shared structures.
      }
      const sim::Time horizon = seg_[1];
      while (i != n_) {
        const CellOp& op = ops_[i];
        if (op.invoked > horizon) {
          i = n_;  // Invocation-sorted: every later op is disabled too.
          break;
        }
        if (!op.is_write && op.value != cur_value_) {
          i = next_[i];  // A read must return the current value.
          continue;
        }
        break;
      }
      if (i == n_) {
        if (f.op_in != kNone) {
          Undo(f.op_in, f.value_before);
        }
        stack_.pop_back();
        continue;
      }
      f.cursor = next_[i];
      const uint64_t value_before = cur_value_;
      Apply(i);
      const size_t left = f.completed_left - (ops_[i].pending ? 0 : 1);
      if (EnterState(left)) {
        stack_.push_back(Frame{next_[n_], i, value_before, left});
      } else {
        Undo(i, value_before);  // Memoized (or decided at entry).
      }
    }
    return found_;
  }

  const std::set<uint64_t>& finals() const { return finals_; }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  struct Frame {
    size_t cursor;          // Next frontier position to try (n_ = done).
    size_t op_in;           // Op linearized to enter this state (kNone: root).
    uint64_t value_before;  // Register value to restore on exit.
    size_t completed_left;
  };

  void SegSet(size_t i, sim::Time v) {
    size_t p = segn_ + i;
    seg_[p] = v;
    for (p >>= 1; p >= 1; p >>= 1) {
      seg_[p] = std::min(seg_[2 * p], seg_[2 * p + 1]);
    }
  }

  // Copy-on-write bit flips over the cursor chunks: exclusive ownership is
  // re-established (64-byte copy) only when a memoized state still shares
  // the chunk.
  void FlipBit(size_t i) {
    const size_t c = i / kChunkBits;
    MaskChunk*& chunk = cur_[c];
    if (chunk->refs > 1) {
      MaskChunk* copy = CopyChunk(chunk);
      --chunk->refs;
      chunk = copy;
    }
    chunk->words[(i % kChunkBits) >> 6] ^= 1ull << (i & 63);
    bit_hash_ ^= zob_[i];
  }

  void Apply(size_t i) {
    FlipBit(i);
    next_[prev_[i]] = next_[i];  // Unlink; i keeps its links for the relink.
    prev_[next_[i]] = prev_[i];
    SegSet(i, kNoDeadline);
    if (ops_[i].is_write) {
      cur_value_ = ops_[i].value;
    }
  }

  void Undo(size_t i, uint64_t value_before) {
    FlipBit(i);
    next_[prev_[i]] = i;  // LIFO discipline makes the splice exact.
    prev_[next_[i]] = i;
    SegSet(i, ops_[i].deadline);
    cur_value_ = value_before;
  }

  // Memo lookup/insert for the cursor state. Returns true iff the state is
  // new and its candidates should be explored; handles finals/decide_only
  // exactly like ScanWindowDfs::Dfs's prologue.
  bool EnterState(size_t completed_left) {
    MemoEntry probe;
    probe.hash = SplitMix64(bit_hash_ ^ (cur_value_ * 0x9E3779B97F4A7C15ull));
    probe.value = cur_value_;
    if (nchunks_ <= 2) {
      for (size_t c = 0; c < nchunks_; ++c) {
        probe.inline_chunks[c] = cur_[c];
      }
    } else {
      probe.chunks = cur_.data();
    }
    if (visited_.find(probe) != visited_.end()) {
      return false;
    }
    MemoEntry own = probe;
    if (nchunks_ > 2) {
      own.chunks =
          static_cast<MaskChunk**>(sim::FramePool::Alloc(nchunks_ * sizeof(MaskChunk*)));
      std::copy(cur_.begin(), cur_.end(), own.chunks);
    }
    for (MaskChunk* c : cur_) {
      ++c->refs;
    }
    visited_.insert(own);
    ++stats_->states;
    if (completed_left == 0) {
      finals_.insert(cur_value_);
      if (decide_only_) {
        found_ = true;
        return false;
      }
    }
    return true;
  }

  const CellOp* ops_;
  size_t n_;
  size_t nchunks_;
  size_t completed_total_ = 0;
  CheckStats* stats_;
  std::vector<uint64_t> zob_;
  std::vector<size_t> next_;
  std::vector<size_t> prev_;
  size_t segn_ = 1;
  std::vector<sim::Time> seg_;
  std::vector<MaskChunk*> cur_;  // Cursor bitset (COW handles).
  uint64_t cur_value_ = 0;
  uint64_t bit_hash_ = 0;  // XOR of zob_[i] over set bits.
  std::vector<Frame> stack_;
  std::unordered_set<MemoEntry, MemoHash, MemoEq, sim::PoolAlloc<MemoEntry>> visited_;
  std::set<uint64_t> finals_;
  bool decide_only_ = false;
  bool found_ = false;
};

struct CellFailure {
  Window window;
  std::vector<uint64_t> inits;  // Register values possible at window entry.
};

// Checks one cell's retained ops starting from any of `inits`, chaining the
// windows through the reachable-value sets.
template <typename Dfs>
std::optional<CellFailure> RunCellT(const std::vector<CellOp>& ops,
                                    const std::vector<uint64_t>& init_values,
                                    CheckStats* stats) {
  const std::vector<Window> windows = SplitWindows(ops);
  std::vector<uint64_t> inits = init_values;
  for (size_t wi = 0; wi < windows.size(); ++wi) {
    const Window& w = windows[wi];
    ++stats->windows;
    stats->max_window_ops = std::max(stats->max_window_ops, static_cast<uint64_t>(w.count));
    const bool last = wi + 1 == windows.size();
    Dfs dfs(ops.data() + w.first, w.count, stats);
    for (uint64_t init : inits) {
      if (dfs.AddInit(init, last)) {
        return std::nullopt;  // Accepted; no later window needs the finals.
      }
    }
    if (dfs.finals().empty()) {
      return CellFailure{w, std::move(inits)};
    }
    inits.assign(dfs.finals().begin(), dfs.finals().end());
  }
  return std::nullopt;
}

// kFrontier is the production engine; kScan is the retained PR-4 engine
// behind CheckBaseline, the frontier engine's differential oracle.
enum class Engine { kFrontier, kScan };

std::optional<CellFailure> RunCell(const std::vector<CellOp>& ops,
                                   const std::vector<uint64_t>& init_values, CheckStats* stats,
                                   Engine engine = Engine::kFrontier) {
  return engine == Engine::kScan ? RunCellT<ScanWindowDfs>(ops, init_values, stats)
                                 : RunCellT<FrontierWindowDfs>(ops, init_values, stats);
}

// Truncates a failing window at virtual time `cut`: ops invoked later are
// dropped, completed ops still in flight are re-marked pending. The result
// is exactly the history an observer would have recorded at `cut`, so a
// rejected truncation is itself a valid (smaller) counterexample.
CellInput TruncateAt(const CellInput& in, sim::Time cut) {
  CellInput out;
  for (const auto& [id, op] : in) {
    if (op.invoked > cut) {
      continue;
    }
    HistoryOp t = op;
    if (!t.pending && t.responded > cut) {
      t.pending = true;
    }
    out.push_back({id, t});
  }
  return out;
}

// Shrinks a failing window to the earliest truncation that is already
// rejected and fills the report from it.
//
// Rejection is MONOTONE in the cut time, which makes this a binary search
// (O(log n) truncation re-checks — at 10^5-op windows a linear sweep would
// dwarf the check itself): suppose T(t') is linearizable for a cut t' > t,
// with witness L'. Every op of T(t) that completed by t has all its
// linearization points at or before t, while every op T(t') has beyond
// T(t) was invoked after t — so in L' those extra ops sit strictly after
// all of T(t)'s completed ops, and T(t)'s in-flight ops (pending in both
// views, hence optional and explanation-free) are the only ops interleaved
// with them. Deleting the extra ops from L' therefore leaves a valid
// witness for T(t): rejected cuts form a suffix of the sorted completions.
void MinimizeFailure(const CellInput& window_ops, const std::vector<uint64_t>& inits,
                     uint64_t key, CheckResult* res) {
  res->linearizable = false;
  res->key = key;

  std::vector<std::pair<sim::Time, size_t>> completions;  // (responded, id)
  for (const auto& [id, op] : window_ops) {
    if (!op.pending) {
      completions.push_back({op.responded, id});
    }
  }
  std::sort(completions.begin(), completions.end());

  CheckStats scratch;
  // The truncated window is a standalone history entered with `inits`
  // possibly already in the register — those values can explain reads
  // without any write, so they are ambient for the capping rule.
  const std::set<uint64_t> ambient(inits.begin(), inits.end());
  auto rejected = [&](size_t k) {
    ++res->stats.minimize_probes;
    const CellInput truncated = TruncateAt(window_ops, completions[k].first);
    const std::vector<CellOp> retained = Preprocess(truncated, ambient);
    return RunCellT<FrontierWindowDfs>(retained, inits, &scratch).has_value();
  };

  // The cut at the last completion keeps every completed op and only drops
  // later-invoked pending ops, which no completed op can observe — so it
  // fails whenever the window fails. Guard anyway and degrade to reporting
  // the whole window if the invariant is ever violated.
  if (!completions.empty() && rejected(completions.size() - 1)) {
    size_t lo = 0;
    size_t hi = completions.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (rejected(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const auto& [cut, culprit_id] = completions[hi];
    res->culprit = culprit_id;
    res->window_end = cut;
    res->window_begin = cut;
    for (const auto& [id, op] : TruncateAt(window_ops, cut)) {
      res->window_begin = std::min(res->window_begin, op.invoked);
      res->window_ops.push_back(id);
    }
    return;
  }
  res->window_end = 0;
  res->window_begin = kNoDeadline;
  for (const auto& [id, op] : window_ops) {
    res->window_begin = std::min(res->window_begin, op.invoked);
    if (!op.pending) {
      res->window_end = std::max(res->window_end, op.responded);
    }
    res->window_ops.push_back(id);
  }
}

// Shared pipeline behind Check / CheckReport / CheckBaseline. Returns early
// without a report when `res` is null.
bool CheckImpl(const std::vector<HistoryOp>& ops, CheckResult* res,
               Engine engine = Engine::kFrontier) {
  std::map<uint64_t, CellInput> cells;  // Ordered: deterministic reports.
  for (size_t i = 0; i < ops.size(); ++i) {
    cells[ops[i].key].push_back({i, ops[i]});
  }
  CheckStats local_stats;
  CheckStats* stats = res != nullptr ? &res->stats : &local_stats;
  for (const auto& [key, input] : cells) {
    ++stats->cells;
    // Optimistic pass first: pending removes capped at the next completed
    // overwrite, so remove-heavy cells still split into windows. The cap is
    // acceptance-sound (see Preprocess) — only a REJECTION needs the exact,
    // uncapped re-run before it may be believed.
    const std::vector<CellOp> capped = Preprocess(input, {}, /*optimistic=*/true);
    if (!RunCell(capped, {0}, stats, engine).has_value()) {
      continue;
    }
    ++stats->fallback_cells;
    const std::vector<CellOp> retained = Preprocess(input);
    std::optional<CellFailure> fail = RunCell(retained, {0}, stats, engine);
    if (!fail.has_value()) {
      continue;
    }
    if (res != nullptr) {
      // Hand the minimizer the failing window's retained ops, as recorded.
      CellInput window_ops;
      for (size_t i = 0; i < fail->window.count; ++i) {
        const size_t id = retained[fail->window.first + i].id;
        window_ops.push_back({id, ops[id]});
      }
      MinimizeFailure(window_ops, fail->inits, key, res);
    }
    return false;
  }
  return true;
}

}  // namespace

std::string CheckResult::Describe(const std::vector<HistoryOp>& ops) const {
  if (linearizable) {
    return "linearizable (" + std::to_string(stats.cells) + " cells, " +
           std::to_string(stats.windows) + " windows, " + std::to_string(stats.states) +
           " states)";
  }
  int pending = 0;
  for (size_t id : window_ops) {
    pending += ops[id].pending ? 1 : 0;
  }
  std::string msg = "key " + std::to_string(key) + " NON-LINEARIZABLE: minimal window [" +
                    std::to_string(window_begin) + ".." + std::to_string(window_end) + "], " +
                    std::to_string(window_ops.size()) + " ops (" + std::to_string(pending) +
                    " pending)";
  for (size_t id : window_ops) {
    const HistoryOp& op = ops[id];
    msg += "\n    #" + std::to_string(id) + " " + (op.is_write ? "W(" : "R(") +
           std::to_string(op.value) + ") @" + std::to_string(op.invoked) +
           (op.pending ? " pending" : ".." + std::to_string(op.responded));
    if (id == culprit) {
      msg += "  <- completion breaks the window";
    }
  }
  return msg;
}

bool LinearizabilityChecker::Check(const std::vector<HistoryOp>& ops) {
  return CheckImpl(ops, nullptr);
}

CheckResult LinearizabilityChecker::CheckReport(const std::vector<HistoryOp>& ops) {
  CheckResult res;
  res.linearizable = CheckImpl(ops, &res);
  return res;
}

bool LinearizabilityChecker::CheckBaseline(const std::vector<HistoryOp>& ops) {
  return CheckImpl(ops, nullptr, Engine::kScan);
}

// --- The pre-PR-4 bitmask DFS, kept verbatim as a differential oracle. ----

namespace {

class LegacyChecker {
 public:
  static bool Check(const std::vector<HistoryOp>& ops) {
    if (ops.size() > 63) {
      return false;  // The historical cap: callers kept histories small.
    }
    LegacyChecker checker(ops);
    return checker.Dfs(0, 0);
  }

 private:
  explicit LegacyChecker(const std::vector<HistoryOp>& ops) : ops_(ops) {
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (!ops_[i].pending) {
        completed_ |= 1ull << i;
      }
    }
  }

  sim::Time ResponseOf(size_t i) const {
    return ops_[i].pending ? std::numeric_limits<sim::Time>::max() : ops_[i].responded;
  }

  bool Dfs(uint64_t mask, uint64_t value) {
    if ((mask & completed_) == completed_) {
      return true;  // Every completed op explained; leftovers are pending.
    }
    if (!visited_.insert({mask, value}).second) {
      return false;
    }
    sim::Time min_resp = std::numeric_limits<sim::Time>::max();
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) == 0) {
        min_resp = std::min(min_resp, ResponseOf(i));
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) != 0) {
        continue;
      }
      const HistoryOp& op = ops_[i];
      if (op.invoked > min_resp) {
        continue;
      }
      if (op.is_write) {
        if (Dfs(mask | (1ull << i), op.value)) {
          return true;
        }
      } else if (op.value == value) {
        if (Dfs(mask | (1ull << i), value)) {
          return true;
        }
      }
    }
    return false;
  }

  const std::vector<HistoryOp>& ops_;
  uint64_t completed_ = 0;
  std::set<std::pair<uint64_t, uint64_t>> visited_;
};

}  // namespace

bool LinearizabilityChecker::CheckLegacy(const std::vector<HistoryOp>& ops) {
  return LegacyChecker::Check(ops);
}

}  // namespace swarm::verify
