// Linearizability checking for register histories, with no bound on history
// length.
//
// A history is a collection of operations (reads and writes on registers
// identified by `key`) with invocation/response timestamps from the
// simulator's virtual clock. The checker decides whether a linearization
// exists that is consistent with register semantics: every read returns the
// latest linearized write's value (or 0, the initial/empty value, if none),
// every completed op takes effect exactly once between its invocation and
// response, and every PENDING op — one whose response was never recorded
// because the client observed a timeout, an unavailable quorum, or crashed
// mid-call — takes effect at most once, anywhere after its invocation.
//
// The engine is a Wing&Gong-style just-in-time DFS (linearize any op whose
// invocation precedes every unlinearized op's response, apply register
// semantics, memoize visited states, backtrack on dead ends) made tractable
// for multi-thousand-op chaos histories by three reductions applied first:
//
//  * P-compositionality (Herlihy&Wing locality / Lowe): the history is
//    partitioned by `key` and each cell is checked independently — a
//    5,000-op soak over 64 keys decomposes into ~80-op cells.
//  * Pending-op closure: pending reads constrain nothing and are dropped;
//    a pending write whose value no completed read ever returned can only
//    overwrite state, never explain anything, and is dropped too; a pending
//    write of a uniquely-written nonzero value that WAS read must linearize
//    before the first read that returned it, so its unbounded window is
//    capped at that read's response. Observed pending writes of DUPLICATE or
//    ZERO values (removes) carry no such proof; they are first tried with an
//    OPTIMISTIC cap at the next completed overwrite's response — capping a
//    pending op only restricts where it may linearize, so an acceptance
//    under the cap is a real linearization, while a rejection falls back to
//    an exact re-run with the cap removed. Without the cap a remove-heavy
//    single-key soak degenerates into one giant window.
//  * Time-window partitioning: within a cell, the history is cut at
//    quiescent points (instants no op spans). Windows chain through the set
//    of register values reachable at each cut, so concurrent tails with
//    ambiguous outcomes stay exact.
//
// Scaling to 10^5-op histories (see src/verify/README.md for the design
// note) the DFS itself is frontier-driven and its memo is persistent:
//
//  * Enabling rule in O(log n): ops are kept in a doubly-linked frontier
//    list ordered by invocation time with a min-deadline segment tree over
//    the unlinearized set. Candidates are scanned in invocation order and
//    the scan STOPS at the first op invoked after the enabling horizon
//    (the tree root) — the old engine's O(n) rescan per DFS node is gone.
//  * Persistent bitset memo: the (linearized-set, register value) states
//    are stored as arrays of refcounted 64-byte chunks (FramePool slabs)
//    shared copy-on-write between the DFS cursor and every memoized state.
//    Sibling states share all chunks except the one they differ in, so a
//    memoized state costs O(1) chunks instead of an O(n/64)-word copy.
//
// Two older engines are kept as differential oracles
// (tests/lincheck_test.cc runs all of them over randomized histories):
// CheckLegacy() is the pre-PR-4 single-window uint64-mask DFS (≤63 ops),
// and CheckBaseline() is the PR-4 scan-based engine — same reduction
// pipeline, linear enabling scan, per-state bitset copies.
//
// On failure, CheckReport() shrinks the failing cell to a minimal
// non-linearizable window: the shortest truncation of the cell (later ops
// dropped, in-flight ops re-marked pending) that is already rejected,
// reported as op ids + time bounds + the op whose completion broke it.
// Rejection is monotone in the truncation cut (each truncation is exactly
// the history an observer records at that instant), so the minimizer
// binary-searches the completions — O(log n) truncation re-checks even for
// a 10^5-op window (stats.minimize_probes counts them).
//
// Values are plain uint64 (0 = the initial/empty value). Writes should use
// distinct values for the strongest discrimination; duplicates are handled
// soundly but weaken both discrimination and the reductions above.

#ifndef SWARM_SRC_VERIFY_LINCHECK_H_
#define SWARM_SRC_VERIFY_LINCHECK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace swarm::verify {

struct HistoryOp {
  bool is_write = false;
  uint64_t value = 0;  // Written value, or value returned by the read.
  sim::Time invoked = 0;
  sim::Time responded = 0;
  // No response recorded: possibly applied anywhere after `invoked`, or
  // never. `responded` is ignored for pending ops.
  bool pending = false;
  // P-compositionality cell. Ops on different keys are independent
  // registers; single-register histories leave this 0.
  uint64_t key = 0;
};

struct CheckStats {
  uint64_t cells = 0;          // Per-key cells checked.
  uint64_t windows = 0;        // Time windows checked across all cells.
  uint64_t states = 0;         // Memoized DFS states explored.
  uint64_t max_window_ops = 0; // Largest window handed to the DFS.
  uint64_t fallback_cells = 0; // Cells re-checked exactly after the
                               // optimistic pending-remove cap rejected.
  uint64_t minimize_probes = 0; // Truncation re-checks run by the failure
                                // minimizer (binary search: O(log n)).
};

// Verdict plus, on failure, the minimal non-linearizable window.
struct CheckResult {
  bool linearizable = true;
  CheckStats stats;

  // Failure report (meaningful only when !linearizable).
  uint64_t key = 0;              // Failing cell.
  size_t culprit = SIZE_MAX;     // Op id whose completion makes the window fail.
  std::vector<size_t> window_ops;  // Ids (indices into the checked vector) of
                                   // the minimal failing window's ops.
  sim::Time window_begin = 0;
  sim::Time window_end = 0;

  // Human-readable report; `ops` must be the vector that was checked.
  std::string Describe(const std::vector<HistoryOp>& ops) const;
};

class LinearizabilityChecker {
 public:
  // True iff the history has a linearization consistent with register
  // semantics. Unbounded: partitions by key, prunes/caps pending ops, splits
  // at quiescent points, then runs the WGL DFS per window.
  static bool Check(const std::vector<HistoryOp>& ops);

  // Same decision procedure, plus stats and a minimal failing window on
  // rejection.
  static CheckResult CheckReport(const std::vector<HistoryOp>& ops);

  // The PR-4 scan-based engine: identical reduction pipeline (cells,
  // pending closure, windows), but the DFS rescans all ops per node and
  // copies the full bitset per memoized state. Decision only. Kept as the
  // differential oracle for the frontier engine — tests/lincheck_test.cc
  // requires verdict agreement over 10k randomized histories.
  static bool CheckBaseline(const std::vector<HistoryOp>& ops);

  // The pre-PR-4 bitmask DFS, unchanged: single register (keys ignored),
  // rejects histories longer than 63 ops outright. Kept as the differential
  // oracle for the new engine.
  static bool CheckLegacy(const std::vector<HistoryOp>& ops);
};

}  // namespace swarm::verify

#endif  // SWARM_SRC_VERIFY_LINCHECK_H_
