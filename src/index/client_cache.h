// Client-side location cache (§5.2, §7.1).
//
// SWARM-KV clients cache the replica locations (and the 8 B In-n-Out
// metadata, i.e. the per-replica slot-cache words) of the keys they touch so
// that steady-state gets and updates bypass the index entirely. The cache
// may be unbounded ("index caches large enough to cache all key locations",
// most of §7) or bounded with an approximate-LFU replacement policy (the
// 5 MiB-cache experiment of Fig. 6).
//
// The cache is SEGMENTED by the same consistent-hash ShardRouter the
// IndexService uses, so each segment mirrors exactly one index shard: a
// shard's invalidation traffic touches one segment, and the capacity budget
// splits evenly across segments (an approximate-LFU victim is drawn from the
// key's own segment). One segment (the default) is the old behavior.
//
// Modeled entry sizes follow the paper's accounting: 24 B of location data
// per entry for DM-ABD/FUSEE-style caches, 32 B for SWARM-KV (location +
// In-n-Out metadata), and ~32 B of replacement-policy metadata that is the
// same for every system and therefore excluded from the comparison.

#ifndef SWARM_SRC_INDEX_CLIENT_CACHE_H_
#define SWARM_SRC_INDEX_CLIENT_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/index/shard_router.h"
#include "src/sim/random.h"
#include "src/swarm/layout.h"
#include "src/swarm/quorum_max.h"

namespace swarm::index {

struct CacheEntry {
  std::shared_ptr<const ObjectLayout> layout;
  uint64_t generation = 0;                  // Index generation of the mapping.
  std::shared_ptr<ObjectCache> obj_cache;   // In-n-Out slot words (SWARM only).
  uint32_t freq = 0;                        // Approximate-LFU frequency.
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;

  double MissRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(total);
  }
};

class ClientCache {
 public:
  // `capacity` = max entries; 0 = unbounded. `entry_bytes` is the modeled
  // per-entry footprint used when sizing from a byte budget (§7.1).
  // `shards` must match the IndexService's shard count so segment boundaries
  // mirror index-shard ownership.
  explicit ClientCache(size_t capacity = 0, uint64_t entry_bytes = 32, uint64_t seed = 1,
                       int shards = 1)
      : capacity_(capacity), entry_bytes_(entry_bytes), rng_(seed), router_(shards),
        segs_(static_cast<size_t>(router_.shards())) {}

  static size_t EntriesForBudget(uint64_t bytes, uint64_t entry_bytes) {
    return static_cast<size_t>(bytes / entry_bytes);
  }

  // Returns the entry and bumps its frequency, or nullptr on miss.
  CacheEntry* Lookup(uint64_t key) {
    Segment& seg = SegmentFor(key);
    auto it = seg.map.find(key);
    if (it == seg.map.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    if (it->second.freq < UINT32_MAX) {
      ++it->second.freq;
    }
    return &it->second;
  }

  // Inserts or replaces; evicts a low-frequency victim from the key's own
  // segment when that segment's share of the capacity is full.
  void Put(uint64_t key, CacheEntry entry) {
    Segment& seg = SegmentFor(key);
    auto it = seg.map.find(key);
    if (it != seg.map.end()) {
      entry.freq = it->second.freq;
      it->second = std::move(entry);
      return;
    }
    if (capacity_ != 0 && seg.map.size() >= SegmentCapacity()) {
      EvictOne(seg);
    }
    entry.freq = 1;
    seg.map.emplace(key, std::move(entry));
    seg.keys.push_back(key);
  }

  // Drops a key (flush on observing a delete, §5.3.3/§5.3.4).
  void Invalidate(uint64_t key) {
    if (SegmentFor(key).map.erase(key) > 0) {
      ++stats_.invalidations;
    }
  }

  // Drops every entry referencing `layout` — the client's side of the §4.5
  // recycling message ("stop accessing the to-be-recycled buffers"): the
  // index GC is about to forget the retired layout, so a stale mapping to it
  // must not survive in any cache (IndexService::add_gc_listener).
  void InvalidateLayout(const ObjectLayout* layout) {
    for (Segment& seg : segs_) {
      for (auto it = seg.map.begin(); it != seg.map.end();) {
        if (it->second.layout.get() == layout) {
          it = seg.map.erase(it);
          ++stats_.invalidations;
        } else {
          ++it;
        }
      }
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const Segment& seg : segs_) {
      n += seg.map.size();
    }
    return n;
  }
  uint64_t ModeledBytes() const { return size() * entry_bytes_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Segment {
    std::unordered_map<uint64_t, CacheEntry> map;
    std::vector<uint64_t> keys;  // Sampling support; may contain stale keys.
  };

  Segment& SegmentFor(uint64_t key) {
    return segs_[static_cast<size_t>(router_.ShardOf(key))];
  }

  size_t SegmentCapacity() const {
    const size_t per = capacity_ / segs_.size();
    return per == 0 ? 1 : per;
  }

  // Approximate LFU within one segment: sample a handful of entries in O(1)
  // via a lazy key vector, evict the least frequent, and age the sampled
  // survivors so old heat decays. Stale vector slots (already-evicted keys)
  // are cleaned up lazily as they are drawn.
  void EvictOne(Segment& seg) {
    constexpr int kSamples = 8;
    uint64_t victim = 0;
    uint32_t victim_freq = UINT32_MAX;
    bool found = false;
    int draws = 0;
    while (draws < kSamples && !seg.keys.empty()) {
      const size_t slot = static_cast<size_t>(rng_.Below(seg.keys.size()));
      auto it = seg.map.find(seg.keys[slot]);
      if (it == seg.map.end()) {
        seg.keys[slot] = seg.keys.back();  // Stale: compact and redraw.
        seg.keys.pop_back();
        continue;
      }
      ++draws;
      if (it->second.freq < victim_freq) {
        victim_freq = it->second.freq;
        victim = it->first;
        found = true;
      }
      if (it->second.freq > 0) {
        --it->second.freq;  // Gentle aging so stale heat decays over time.
      }
    }
    if (found) {
      seg.map.erase(victim);
      ++stats_.evictions;
    }
  }

  size_t capacity_;
  uint64_t entry_bytes_;
  sim::Rng rng_;
  ShardRouter router_;
  std::vector<Segment> segs_;
  CacheStats stats_;
};

}  // namespace swarm::index

#endif  // SWARM_SRC_INDEX_CLIENT_CACHE_H_
