// Inverse placement map: node -> owned slots (grouped into extents by
// address order), the structure that makes rebuilding a node O(slots-on-node)
// instead of O(store).
//
// The IndexService maintains it as layouts are inserted, replaced (migration
// flips) and GC-dropped. Each slot records which layout currently OWNS the
// address — "newest claim wins": when a migration flip re-homes a key, the
// replacement layout re-registers and overwrites the slots it shares with its
// predecessor, and the predecessor keeps only the vacated (fenced) slot,
// marked `moved`. On GC drop, exactly the slots still owned by the dropped
// layout are released — which is also the moment the "permanent" migration
// fence over a vacated slot can finally be lifted and the slot recycled,
// because nothing can reference the layout anymore.
//
// Repair walks ForEachSlotOn(node) in address order: live slots plus
// retired-but-restorable ones (deleted layouts pinned by stale caches) —
// the same coverage the old O(store) SnapshotSorted + retired() walk had,
// minus moved slots, which repair must never restore.

#ifndef SWARM_SRC_INDEX_PLACEMENT_MAP_H_
#define SWARM_SRC_INDEX_PLACEMENT_MAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/swarm/layout.h"

namespace swarm::index {

class PlacementMap {
 public:
  struct Slot {
    std::shared_ptr<const ObjectLayout> owner;
    uint64_t key = 0;
    int32_t replica = 0;   // Index into owner->replicas.
    bool moved = false;    // Vacated by a migration flip; never restore.
  };

  // Claims every replica slot of `layout` for it (overwriting any previous
  // owner's claim on shared addresses).
  void Register(uint64_t key, const std::shared_ptr<const ObjectLayout>& layout) {
    for (int r = 0; r < layout->num_replicas; ++r) {
      const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
      auto& by_addr = NodeSlots(rep.node);
      Slot& s = by_addr[rep.meta_addr];
      s.owner = layout;
      s.key = key;
      s.replica = r;
      s.moved = false;
    }
  }

  // Marks the slots still owned by `layout` as moved (called after the
  // replacement layout re-registered: only the vacated slots remain).
  void MarkMoved(const ObjectLayout* layout) {
    ForEachOwned(layout, [](Slot& s) { s.moved = true; });
  }

  // Releases the slots still owned by `layout`: fn(node, addr, len) for each,
  // then the entry is erased. Called on GC drop.
  template <typename Fn>
  void Release(const ObjectLayout* layout, Fn&& fn) {
    for (int r = 0; r < layout->num_replicas; ++r) {
      const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
      const auto node = static_cast<size_t>(rep.node);
      if (node >= nodes_.size()) {
        continue;
      }
      auto it = nodes_[node].find(rep.meta_addr);
      if (it == nodes_[node].end() || it->second.owner.get() != layout) {
        continue;  // A newer layout claimed this address.
      }
      fn(rep.node, rep.meta_addr, layout->replica_slot_bytes(rep.inplace_addr != 0));
      nodes_[node].erase(it);
    }
  }

  // Address-ordered walk of one node's slots: fn(addr, const Slot&).
  template <typename Fn>
  void ForEachSlotOn(int node, Fn&& fn) const {
    const auto idx = static_cast<size_t>(node);
    if (idx >= nodes_.size()) {
      return;
    }
    for (const auto& [addr, slot] : nodes_[idx]) {
      fn(addr, slot);
    }
  }

  // How many slots `layout` still owns (its claims minus newer overwrites).
  // The GC's use-count gate subtracts these: each owned Slot holds one
  // shared_ptr reference that is the map's own, not an in-flight holder's.
  size_t OwnedCount(const ObjectLayout* layout) const {
    size_t n = 0;
    for (int r = 0; r < layout->num_replicas; ++r) {
      const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
      const auto node = static_cast<size_t>(rep.node);
      if (node >= nodes_.size()) {
        continue;
      }
      auto it = nodes_[node].find(rep.meta_addr);
      if (it != nodes_[node].end() && it->second.owner.get() == layout) {
        ++n;
      }
    }
    return n;
  }

  // Slots currently tracked on `node` (moved ones included).
  uint64_t SlotsOn(int node) const {
    const auto idx = static_cast<size_t>(node);
    return idx < nodes_.size() ? nodes_[idx].size() : 0;
  }

  // Any non-moved slot left on `node`? (Drain's completion check.)
  bool HasLiveSlotOn(int node) const {
    const auto idx = static_cast<size_t>(node);
    if (idx >= nodes_.size()) {
      return false;
    }
    for (const auto& [addr, slot] : nodes_[idx]) {
      if (!slot.moved) {
        return true;
      }
    }
    return false;
  }

  size_t total_slots() const {
    size_t n = 0;
    for (const auto& m : nodes_) {
      n += m.size();
    }
    return n;
  }

 private:
  std::map<uint64_t, Slot>& NodeSlots(int node) {
    const auto idx = static_cast<size_t>(node);
    if (idx >= nodes_.size()) {
      nodes_.resize(idx + 1);
    }
    return nodes_[idx];
  }

  template <typename Fn>
  void ForEachOwned(const ObjectLayout* layout, Fn&& fn) {
    for (int r = 0; r < layout->num_replicas; ++r) {
      const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
      const auto node = static_cast<size_t>(rep.node);
      if (node >= nodes_.size()) {
        continue;
      }
      auto it = nodes_[node].find(rep.meta_addr);
      if (it != nodes_[node].end() && it->second.owner.get() == layout) {
        fn(it->second);
      }
    }
  }

  std::vector<std::map<uint64_t, Slot>> nodes_;  // node -> addr -> slot.
};

}  // namespace swarm::index

#endif  // SWARM_SRC_INDEX_PLACEMENT_MAP_H_
