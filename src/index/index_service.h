// Reliable index service (§5.1/§5.2).
//
// SWARM-KV needs "a fast index ... which can run on traditional servers and
// [is] fault-tolerant", reachable in one roundtrip, mapping keys to the
// locations of their replicas. SWARM-KV is oblivious to the index's
// implementation (the paper reuses FUSEE's resizable index hardened to strong
// consistency), so we model it as a linearizable map service with
// fabric-like access latency: every operation costs one client submission
// plus a network roundtrip.
//
// The service is SHARDED by consistent hash of the key (ShardRouter): each
// shard owns an independent map, retired list, and GC bookkeeping, and an
// optional per-shard service occupancy (set_shard_service_time) models the
// serialization a single index server would impose — N shards give N-way
// service parallelism, which is what lets lookup/insert/retire throughput
// scale past one server. One shard (the default) is byte-for-byte the old
// single-service behavior.
//
// The service also maintains the cluster's inverse PlacementMap
// (node -> slots): every insert/replace registers the layout's replica
// slots, migration flips mark vacated slots moved, and the retired-layout GC
// releases a dropped layout's slots back to the node allocators — lifting
// the migration fences that protected them. Repair and drain walk this map,
// making both O(slots-on-node) instead of O(store).
//
// Entries carry a generation number so that a delete's background unmap
// (§5.3.2) cannot erase a newer mapping racing in from a re-insert.

#ifndef SWARM_SRC_INDEX_INDEX_SERVICE_H_
#define SWARM_SRC_INDEX_INDEX_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/placement_map.h"
#include "src/index/shard_router.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/swarm/layout.h"

namespace swarm::index {

struct IndexEntry {
  std::shared_ptr<const ObjectLayout> layout;
  uint64_t generation = 0;
};

struct IndexStats {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t removes = 0;
};

class IndexService {
 public:
  // With `fabric` set, index RPCs ride the chaos fault hooks on the fabric's
  // dedicated index link (Fabric::index_link()): delay spikes stretch each
  // leg and drop bursts trigger RPC retransmissions (the transport is
  // reliable, so a drop costs a retransmission timeout rather than losing
  // the operation — but the fault windows it opens between the data path and
  // the index are real). Null keeps the service fault-free. `shards` > 1
  // splits the keyspace across independent shards (consistent hash).
  IndexService(sim::Simulator* sim, fabric::Fabric* fabric = nullptr,
               sim::Time one_way_delay = 680, sim::Time jitter = 90,
               sim::Time submit_cost = 200, int shards = 1)
      : sim_(sim), fabric_(fabric), one_way_(one_way_delay), jitter_(jitter),
        submit_cost_(submit_cost), router_(shards),
        shards_(static_cast<size_t>(router_.shards())) {}

  // One-roundtrip lookup. nullopt = key not mapped.
  sim::Task<std::optional<IndexEntry>> Lookup(uint64_t key, fabric::ClientCpu* cpu);

  // Insert-if-absent (§5.3.1). Returns {true, entry-as-inserted} on success,
  // or {false, existing entry} when a mapping already exists (the caller then
  // recycles its buffers and turns the insert into an update).
  sim::Task<std::pair<bool, IndexEntry>> InsertIfAbsent(
      uint64_t key, std::shared_ptr<const ObjectLayout> layout, fabric::ClientCpu* cpu);

  // Removes the mapping only if its generation still matches (used by the
  // background unmap after a delete). Returns true if removed.
  sim::Task<bool> RemoveIfGeneration(uint64_t key, uint64_t generation, fabric::ClientCpu* cpu);

  // The migration flip's index half: atomically swaps the key's layout for
  // `layout` (the destination replica set) iff the mapping still exists at
  // `expected_generation`, bumping the generation so every cached Located
  // goes stale. Returns the new generation, or 0 when the guard failed (a
  // concurrent delete unmapped the key, or a racing re-insert replaced it) —
  // the migration then aborts and the destination copy is abandoned. The old
  // layout enters the retired list as MOVED: still referenceable by stale
  // caches (so GC keeps it quarantined), but its replica slots are fenced on
  // the source nodes, so repair must NOT restore them.
  sim::Task<uint64_t> ReplaceLayout(uint64_t key, uint64_t expected_generation,
                                    std::shared_ptr<const ObjectLayout> layout,
                                    fabric::ClientCpu* cpu);

  // Keeps a layout alive after its mapping is removed: background straggler
  // tasks (verified promotions, write-backs) and stale-cached clients may
  // still reference it, so repair must keep restoring it. Retirement is
  // coupled to the memory recycler's epochs (set_retirement_horizon): each
  // entry is tagged with the recycler epoch current at retirement, and once
  // the safe horizon passes it the layout is dropped for good.
  //
  // Externally-retired layouts (insert losers that never got a mapping) are
  // registered in the placement map here so their replica slots are released
  // at GC time — un-mapped layouts used to leak their slots forever.
  void Retire(std::shared_ptr<const ObjectLayout> layout) { Retire(std::move(layout), false); }
  // `moved` marks a layout retired by a migration flip rather than a delete:
  // its regions are fenced on the source nodes (kMovedReplica) and the
  // authoritative state lives in the replacement layout, so the repair walk
  // must skip it — restoring it would write stale state behind the fence.
  void Retire(std::shared_ptr<const ObjectLayout> layout, bool moved) {
    if (!moved) {
      placement_.Register(/*key=*/0, layout);
    }
    RetireToShard(/*shard=*/0, std::move(layout), moved);
  }

  // One unmapped-but-still-referenceable layout: the recycler epoch that was
  // current at its retirement bounds which clients can still reference it.
  struct RetiredLayout {
    std::shared_ptr<const ObjectLayout> layout;
    uint64_t epoch = 0;
    bool caches_notified = false;  // §4.5 drop message sent (GC listeners ran).
    bool moved = false;            // Migrated away: repair must not restore it.
  };

  // Retired layouts still inside the recycler's safe horizon, in retirement
  // order, for ONE shard (default: shard 0 — the whole service when
  // unsharded). Repair no longer walks this (the placement map covers
  // retired slots too); it remains for tests and diagnostics.
  const std::vector<RetiredLayout>& retired(int shard = 0) const {
    return shards_[static_cast<size_t>(shard)].retired;
  }

  // Couples retirement to the recycler (§4.5): `current_epoch` tags new
  // retirements, `safe_before` is Recycler::SafeReclaimBefore. SAFETY of the
  // drop — a repair stops restoring a dropped layout, so a stale reader that
  // could still reach it might pair wiped replicas into a bogus quorum — so
  // a layout is only dropped once NOTHING can reference it again:
  //   1. the safe horizon passed its retire epoch (every live client
  //      acknowledged draining accesses from before the retirement; clients
  //      that never acknowledged are sticky-fenced),
  //   2. the GC listeners ran (§4.5's "stop accessing the to-be-recycled
  //      buffers" message: client LOCATION CACHES drop their entries for the
  //      layout — the model must enforce the premise the ack claims), and
  //   3. no in-flight operation still holds the layout (its shared_ptr
  //      use-count has fallen to the retired list's own reference) — a
  //      long-stuck op that located the key before the round keeps the
  //      layout repairable until it completes.
  void set_retirement_horizon(std::function<uint64_t()> current_epoch,
                              std::function<uint64_t()> safe_before) {
    retire_epoch_fn_ = std::move(current_epoch);
    safe_before_fn_ = std::move(safe_before);
  }

  // Registers a §4.5 drop listener, called for each layout the GC is about
  // to drop (chaos harnesses wire every client cache's InvalidateLayout).
  void add_gc_listener(std::function<void(const std::shared_ptr<const ObjectLayout>&)> fn) {
    gc_listeners_.push_back(std::move(fn));
  }

  // Drops retired layouts the safe horizon has passed (each shard GCs its own
  // list); returns how many were dropped. Called opportunistically on Retire
  // and by the repair walk.
  //
  // Dropping a layout releases its placement-map slots: the node-side fences
  // over vacated (moved) slots are lifted and the slots go back to the slab
  // allocator — through its straggler quarantine, which is what makes the
  // recycling safe even though straggler coroutines may hold raw
  // ObjectLayout pointers a while longer (their C++ objects are parked in a
  // graveyard until the simulation ends, mirroring a fenced client that can
  // still issue accesses at reclaimed addresses).
  size_t GcRetired();

  uint64_t retired_dropped() const { return retired_dropped_; }

  // Direct (zero-roundtrip) inspection, used by the benchmark harness to
  // pre-warm client caches as an infinitely long warm-up phase would.
  const IndexEntry* Peek(uint64_t key) const {
    const Shard& sh = shards_[static_cast<size_t>(router_.ShardOf(key))];
    auto it = sh.map.find(key);
    return it == sh.map.end() ? nullptr : &it->second;
  }

  const IndexStats& stats() const { return stats_; }
  size_t size() const {
    size_t n = 0;
    for (const Shard& sh : shards_) {
      n += sh.map.size();
    }
    return n;
  }
  int shard_count() const { return router_.shards(); }

  // Models the per-shard server occupancy: every op holds its shard for
  // `t` ns of service time (FIFO). 0 (default) = infinitely fast servers,
  // the pre-sharding behavior. With it, N shards give N-way parallelism —
  // the scalability the fig8 key-count axis measures.
  void set_shard_service_time(sim::Time t) { service_time_ = t; }

  // The cluster's inverse placement map (node -> slots). Repair and
  // migration walk this instead of the key-sorted store snapshot.
  const PlacementMap& placement() const { return placement_; }

  // Deterministic (key-sorted) snapshot of the live mappings across all
  // shards — admission rebalancing scans this; repair does not (it walks the
  // placement map). Entries inserted after the snapshot need no repair:
  // their writes quorum-excluded the recovering node, so any future majority
  // intersects the replicas that did ack.
  std::vector<std::pair<uint64_t, IndexEntry>> SnapshotSorted() const;

  // Approximate per-key memory footprint on the index servers (24 B location
  // record, as §5.2), for the resource accounting of Table 3.
  uint64_t ModeledBytes() const { return size() * 24; }

 private:
  struct Shard {
    std::unordered_map<uint64_t, IndexEntry> map;
    std::vector<RetiredLayout> retired;
    sim::Time busy_until = 0;
  };

  // One network roundtrip to the index server, including client submission.
  // The request leg completes before the caller's map access; the response
  // leg after it — so chaos faults can delay a mutation's acknowledgement
  // past the instant the mapping became visible to other clients.
  sim::Task<void> Roundtrip(fabric::ClientCpu* cpu);
  sim::Task<void> Leg(bool response);
  // FIFO occupancy of one shard's server (no-op when service_time_ == 0).
  sim::Task<void> Occupy(int shard);

  void RetireToShard(int shard, std::shared_ptr<const ObjectLayout> layout, bool moved) {
    shards_[static_cast<size_t>(shard)].retired.push_back(
        {std::move(layout), retire_epoch_fn_ ? retire_epoch_fn_() : 0, false, moved});
    GcRetired();  // Opportunistic: churn keeps the lists bounded by itself.
  }

  sim::Simulator* sim_;
  fabric::Fabric* fabric_;
  sim::Time one_way_;
  sim::Time jitter_;
  sim::Time submit_cost_;
  sim::Time service_time_ = 0;
  uint64_t next_generation_ = 1;  // Global: generations order across shards.
  ShardRouter router_;
  std::vector<Shard> shards_;
  PlacementMap placement_;
  std::vector<std::shared_ptr<const ObjectLayout>> graveyard_;  // Lifetime only.
  std::function<uint64_t()> retire_epoch_fn_;
  std::function<uint64_t()> safe_before_fn_;
  std::vector<std::function<void(const std::shared_ptr<const ObjectLayout>&)>> gc_listeners_;
  uint64_t retired_dropped_ = 0;
  IndexStats stats_;
};

}  // namespace swarm::index

#endif  // SWARM_SRC_INDEX_INDEX_SERVICE_H_
