// Reliable index service (§5.1/§5.2).
//
// SWARM-KV needs "a fast index ... which can run on traditional servers and
// [is] fault-tolerant", reachable in one roundtrip, mapping keys to the
// locations of their replicas. SWARM-KV is oblivious to the index's
// implementation (the paper reuses FUSEE's resizable index hardened to strong
// consistency), so we model it as a linearizable map service with
// fabric-like access latency: every operation costs one client submission
// plus a network roundtrip.
//
// Entries carry a generation number so that a delete's background unmap
// (§5.3.2) cannot erase a newer mapping racing in from a re-insert.

#ifndef SWARM_SRC_INDEX_INDEX_SERVICE_H_
#define SWARM_SRC_INDEX_INDEX_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/swarm/layout.h"

namespace swarm::index {

struct IndexEntry {
  std::shared_ptr<const ObjectLayout> layout;
  uint64_t generation = 0;
};

struct IndexStats {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t removes = 0;
};

class IndexService {
 public:
  // With `fabric` set, index RPCs ride the chaos fault hooks on the fabric's
  // dedicated index link (Fabric::index_link()): delay spikes stretch each
  // leg and drop bursts trigger RPC retransmissions (the transport is
  // reliable, so a drop costs a retransmission timeout rather than losing
  // the operation — but the fault windows it opens between the data path and
  // the index are real). Null keeps the service fault-free.
  IndexService(sim::Simulator* sim, fabric::Fabric* fabric = nullptr,
               sim::Time one_way_delay = 680, sim::Time jitter = 90,
               sim::Time submit_cost = 200)
      : sim_(sim), fabric_(fabric), one_way_(one_way_delay), jitter_(jitter),
        submit_cost_(submit_cost) {}

  // One-roundtrip lookup. nullopt = key not mapped.
  sim::Task<std::optional<IndexEntry>> Lookup(uint64_t key, fabric::ClientCpu* cpu);

  // Insert-if-absent (§5.3.1). Returns {true, entry-as-inserted} on success,
  // or {false, existing entry} when a mapping already exists (the caller then
  // recycles its buffers and turns the insert into an update).
  sim::Task<std::pair<bool, IndexEntry>> InsertIfAbsent(
      uint64_t key, std::shared_ptr<const ObjectLayout> layout, fabric::ClientCpu* cpu);

  // Removes the mapping only if its generation still matches (used by the
  // background unmap after a delete). Returns true if removed.
  sim::Task<bool> RemoveIfGeneration(uint64_t key, uint64_t generation, fabric::ClientCpu* cpu);

  // Keeps a layout alive for the remainder of the simulation even after its
  // mapping is removed: background straggler tasks (verified promotions,
  // write-backs) may still reference it. Mirrors the fact that real memory
  // is only recycled through the §4.5 protocol.
  void Retire(std::shared_ptr<const ObjectLayout> layout) {
    retired_.push_back(std::move(layout));
  }

  // Unmapped-but-still-referenceable layouts, in retirement order. Repair
  // must restore these too: a stale-cached client can still read a retired
  // object, and a rejoined replica that misses its tombstone would pair with
  // a stale survivor and resurrect the deleted value.
  const std::vector<std::shared_ptr<const ObjectLayout>>& retired() const { return retired_; }

  // Direct (zero-roundtrip) inspection, used by the benchmark harness to
  // pre-warm client caches as an infinitely long warm-up phase would.
  const IndexEntry* Peek(uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  const IndexStats& stats() const { return stats_; }
  size_t size() const { return map_.size(); }

  // Deterministic (key-sorted) snapshot of the live mappings — the repair
  // coordinator walks this to find every replica slot a recovering node
  // hosts. Entries inserted after the snapshot need no repair: their writes
  // quorum-excluded the recovering node, so any future majority intersects
  // the replicas that did ack.
  std::vector<std::pair<uint64_t, IndexEntry>> SnapshotSorted() const;

  // Approximate per-key memory footprint on the index servers (24 B location
  // record, as §5.2), for the resource accounting of Table 3.
  uint64_t ModeledBytes() const { return map_.size() * 24; }

 private:
  // One network roundtrip to the index server, including client submission.
  // The request leg completes before the caller's map access; the response
  // leg after it — so chaos faults can delay a mutation's acknowledgement
  // past the instant the mapping became visible to other clients.
  sim::Task<void> Roundtrip(fabric::ClientCpu* cpu);
  sim::Task<void> Leg(bool response);

  sim::Simulator* sim_;
  fabric::Fabric* fabric_;
  sim::Time one_way_;
  sim::Time jitter_;
  sim::Time submit_cost_;
  uint64_t next_generation_ = 1;
  std::unordered_map<uint64_t, IndexEntry> map_;
  std::vector<std::shared_ptr<const ObjectLayout>> retired_;
  IndexStats stats_;
};

}  // namespace swarm::index

#endif  // SWARM_SRC_INDEX_INDEX_SERVICE_H_
