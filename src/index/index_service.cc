#include "src/index/index_service.h"

#include <utility>

namespace swarm::index {

sim::Task<void> IndexService::Roundtrip(fabric::ClientCpu* cpu) {
  if (cpu != nullptr) {
    // Posting the RPC's send WQE rides the same doorbell as any verbs batched
    // alongside it (e.g. an insert's parallel replica writes, §5.3.1).
    co_await cpu->Submit(submit_cost_);
  }
  sim::Time delay = 2 * one_way_;
  if (jitter_ > 0) {
    delay += sim_->rng().Range(-jitter_, jitter_);
  }
  co_await sim_->Delay(delay);
}

sim::Task<std::optional<IndexEntry>> IndexService::Lookup(uint64_t key, fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.lookups;
  auto it = map_.find(key);
  if (it == map_.end()) {
    co_return std::nullopt;
  }
  co_return it->second;
}

sim::Task<std::pair<bool, IndexEntry>> IndexService::InsertIfAbsent(
    uint64_t key, std::shared_ptr<const ObjectLayout> layout, fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.inserts;
  auto it = map_.find(key);
  if (it != map_.end()) {
    co_return std::pair<bool, IndexEntry>{false, it->second};
  }
  IndexEntry entry{std::move(layout), next_generation_++};
  map_.emplace(key, entry);
  co_return std::pair<bool, IndexEntry>{true, entry};
}

sim::Task<bool> IndexService::RemoveIfGeneration(uint64_t key, uint64_t generation,
                                                 fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.removes;
  auto it = map_.find(key);
  if (it == map_.end() || it->second.generation != generation) {
    co_return false;
  }
  Retire(std::move(it->second.layout));
  map_.erase(it);
  co_return true;
}

}  // namespace swarm::index
