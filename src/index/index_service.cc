#include "src/index/index_service.h"

#include <algorithm>
#include <utility>

namespace swarm::index {

sim::Task<void> IndexService::Leg(bool response) {
  if (fabric_ != nullptr) {
    // Reliable transport over a faulty link: every drop costs one
    // retransmission timeout before the leg finally goes through. This keeps
    // the RPC's at-most-once apply semantics while letting chaos stretch the
    // window between an index mutation and its acknowledgement (or between a
    // client's request and the mutation).
    const int link = fabric_->index_link();
    while (fabric_->DropMessage(link, response)) {
      co_await sim_->Delay(fabric_->config().failure_detect_delay);
    }
  }
  sim::Time delay = one_way_;
  if (jitter_ > 0) {
    delay += sim_->rng().Range(-jitter_, jitter_);
  }
  if (fabric_ != nullptr) {
    delay += fabric_->LinkExtraDelay(fabric_->index_link(), response);
  }
  co_await sim_->Delay(std::max<sim::Time>(delay, 1));
}

sim::Task<void> IndexService::Roundtrip(fabric::ClientCpu* cpu) {
  if (cpu != nullptr) {
    // Posting the RPC's send WQE rides the same doorbell as any verbs batched
    // alongside it (e.g. an insert's parallel replica writes, §5.3.1).
    co_await cpu->Submit(submit_cost_);
  }
  co_await Leg(/*response=*/false);
}

sim::Task<std::optional<IndexEntry>> IndexService::Lookup(uint64_t key, fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.lookups;
  std::optional<IndexEntry> result;
  auto it = map_.find(key);
  if (it != map_.end()) {
    result = it->second;
  }
  co_await Leg(/*response=*/true);
  co_return result;
}

sim::Task<std::pair<bool, IndexEntry>> IndexService::InsertIfAbsent(
    uint64_t key, std::shared_ptr<const ObjectLayout> layout, fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.inserts;
  std::pair<bool, IndexEntry> result;
  auto it = map_.find(key);
  if (it != map_.end()) {
    result = {false, it->second};
  } else {
    IndexEntry entry{std::move(layout), next_generation_++};
    map_.emplace(key, entry);
    result = {true, entry};
  }
  co_await Leg(/*response=*/true);
  co_return result;
}

sim::Task<bool> IndexService::RemoveIfGeneration(uint64_t key, uint64_t generation,
                                                 fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.removes;
  bool removed = false;
  auto it = map_.find(key);
  if (it != map_.end() && it->second.generation == generation) {
    Retire(std::move(it->second.layout));
    map_.erase(it);
    removed = true;
  }
  co_await Leg(/*response=*/true);
  co_return removed;
}

sim::Task<uint64_t> IndexService::ReplaceLayout(uint64_t key, uint64_t expected_generation,
                                                std::shared_ptr<const ObjectLayout> layout,
                                                fabric::ClientCpu* cpu) {
  co_await Roundtrip(cpu);
  ++stats_.inserts;
  uint64_t new_generation = 0;
  auto it = map_.find(key);
  if (it != map_.end() && it->second.generation == expected_generation) {
    Retire(std::move(it->second.layout), /*moved=*/true);
    it->second.layout = std::move(layout);
    it->second.generation = next_generation_++;
    new_generation = it->second.generation;
  }
  co_await Leg(/*response=*/true);
  co_return new_generation;
}

std::vector<std::pair<uint64_t, IndexEntry>> IndexService::SnapshotSorted() const {
  std::vector<std::pair<uint64_t, IndexEntry>> entries(map_.begin(), map_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace swarm::index
