#include "src/index/index_service.h"

#include <algorithm>
#include <utility>

namespace swarm::index {

sim::Task<void> IndexService::Leg(bool response) {
  if (fabric_ != nullptr) {
    // Reliable transport over a faulty link: every drop costs one
    // retransmission timeout before the leg finally goes through. This keeps
    // the RPC's at-most-once apply semantics while letting chaos stretch the
    // window between an index mutation and its acknowledgement (or between a
    // client's request and the mutation).
    const int link = fabric_->index_link();
    while (fabric_->DropMessage(link, response)) {
      co_await sim_->Delay(fabric_->config().failure_detect_delay);
    }
  }
  sim::Time delay = one_way_;
  if (jitter_ > 0) {
    delay += sim_->rng().Range(-jitter_, jitter_);
  }
  if (fabric_ != nullptr) {
    delay += fabric_->LinkExtraDelay(fabric_->index_link(), response);
  }
  co_await sim_->Delay(std::max<sim::Time>(delay, 1));
}

sim::Task<void> IndexService::Roundtrip(fabric::ClientCpu* cpu) {
  if (cpu != nullptr) {
    // Posting the RPC's send WQE rides the same doorbell as any verbs batched
    // alongside it (e.g. an insert's parallel replica writes, §5.3.1).
    co_await cpu->Submit(submit_cost_);
  }
  co_await Leg(/*response=*/false);
}

sim::Task<void> IndexService::Occupy(int shard) {
  if (service_time_ == 0) {
    co_return;
  }
  // FIFO service at the shard's server: reserve the next slot now, then wait
  // until it starts and hold it for service_time_.
  Shard& sh = shards_[static_cast<size_t>(shard)];
  const sim::Time start = std::max(sim_->Now(), sh.busy_until);
  sh.busy_until = start + service_time_;
  co_await sim_->Delay(sh.busy_until - sim_->Now());
}

sim::Task<std::optional<IndexEntry>> IndexService::Lookup(uint64_t key, fabric::ClientCpu* cpu) {
  const int shard = router_.ShardOf(key);
  co_await Roundtrip(cpu);
  co_await Occupy(shard);
  ++stats_.lookups;
  std::optional<IndexEntry> result;
  auto& map = shards_[static_cast<size_t>(shard)].map;
  auto it = map.find(key);
  if (it != map.end()) {
    result = it->second;
  }
  co_await Leg(/*response=*/true);
  co_return result;
}

sim::Task<std::pair<bool, IndexEntry>> IndexService::InsertIfAbsent(
    uint64_t key, std::shared_ptr<const ObjectLayout> layout, fabric::ClientCpu* cpu) {
  const int shard = router_.ShardOf(key);
  co_await Roundtrip(cpu);
  co_await Occupy(shard);
  ++stats_.inserts;
  std::pair<bool, IndexEntry> result;
  auto& map = shards_[static_cast<size_t>(shard)].map;
  auto it = map.find(key);
  if (it != map.end()) {
    result = {false, it->second};
  } else {
    IndexEntry entry{std::move(layout), next_generation_++};
    placement_.Register(key, entry.layout);
    map.emplace(key, entry);
    result = {true, entry};
  }
  co_await Leg(/*response=*/true);
  co_return result;
}

sim::Task<bool> IndexService::RemoveIfGeneration(uint64_t key, uint64_t generation,
                                                 fabric::ClientCpu* cpu) {
  const int shard = router_.ShardOf(key);
  co_await Roundtrip(cpu);
  co_await Occupy(shard);
  ++stats_.removes;
  bool removed = false;
  auto& map = shards_[static_cast<size_t>(shard)].map;
  auto it = map.find(key);
  if (it != map.end() && it->second.generation == generation) {
    // Already placement-registered at insert; no re-register needed.
    RetireToShard(shard, std::move(it->second.layout), /*moved=*/false);
    map.erase(it);
    removed = true;
  }
  co_await Leg(/*response=*/true);
  co_return removed;
}

sim::Task<uint64_t> IndexService::ReplaceLayout(uint64_t key, uint64_t expected_generation,
                                                std::shared_ptr<const ObjectLayout> layout,
                                                fabric::ClientCpu* cpu) {
  const int shard = router_.ShardOf(key);
  co_await Roundtrip(cpu);
  co_await Occupy(shard);
  ++stats_.inserts;
  uint64_t new_generation = 0;
  auto& map = shards_[static_cast<size_t>(shard)].map;
  auto it = map.find(key);
  if (it != map.end() && it->second.generation == expected_generation) {
    std::shared_ptr<const ObjectLayout> old = std::move(it->second.layout);
    it->second.layout = std::move(layout);
    it->second.generation = next_generation_++;
    new_generation = it->second.generation;
    // Re-register FIRST so the replacement claims the slots it shares with
    // its predecessor; only the genuinely vacated (fenced) slots then remain
    // owned by the old layout, and those are the ones marked moved.
    placement_.Register(key, it->second.layout);
    placement_.MarkMoved(old.get());
    RetireToShard(shard, std::move(old), /*moved=*/true);
  }
  co_await Leg(/*response=*/true);
  co_return new_generation;
}

size_t IndexService::GcRetired() {
  if (!safe_before_fn_) {
    return 0;
  }
  const uint64_t horizon = safe_before_fn_();
  size_t dropped_total = 0;
  for (Shard& sh : shards_) {
    if (sh.retired.empty()) {
      continue;
    }
    // Pass 1: tell caches to drop references to every horizon-passed layout
    // (the §4.5 message). This releases their shared_ptr copies, so pass 2's
    // use-count gate sees only genuine in-flight holders. Once notified, a
    // retired layout can never re-enter a cache (it is unmapped; re-inserts
    // build fresh layouts), so each layout is notified exactly once even
    // when an in-flight holder pins it across many GC calls.
    for (auto& r : sh.retired) {
      if (r.epoch < horizon && !r.caches_notified) {
        r.caches_notified = true;
        for (auto& fn : gc_listeners_) {
          fn(r.layout);
        }
      }
    }
    size_t kept = 0;
    for (auto& r : sh.retired) {
      // The drop gate: beyond the references the retired entry itself and the
      // placement map's owned slots hold, nothing may reference the layout —
      // no cache entry, no in-flight Located copy. Exact in the
      // single-threaded simulation.
      const long pinned_by_us =
          1 + static_cast<long>(placement_.OwnedCount(r.layout.get()));
      if (r.epoch >= horizon || r.layout.use_count() > pinned_by_us) {
        sh.retired[kept++] = std::move(r);
        continue;
      }
      // Drop: release the layout's slots back to their nodes. For a MOVED
      // slot this is the moment its migration fence is finally lifted — the
      // layout is unreferenceable, so no straggler can ever address the slot
      // again — and the address recycles through the slab quarantine.
      placement_.Release(r.layout.get(), [this](int node, uint64_t addr, uint64_t len) {
        if (fabric_ == nullptr) {
          return;
        }
        auto& n = fabric_->node(node);
        n.RestoreRegion(addr, len);
        n.FreeSlot(addr);
      });
      graveyard_.push_back(std::move(r.layout));
    }
    dropped_total += sh.retired.size() - kept;
    sh.retired.resize(kept);
  }
  retired_dropped_ += dropped_total;
  return dropped_total;
}

std::vector<std::pair<uint64_t, IndexEntry>> IndexService::SnapshotSorted() const {
  std::vector<std::pair<uint64_t, IndexEntry>> entries;
  entries.reserve(size());
  for (const Shard& sh : shards_) {
    entries.insert(entries.end(), sh.map.begin(), sh.map.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace swarm::index
