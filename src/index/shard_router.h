// Key -> shard routing shared by IndexService and ClientCache.
//
// A consistent-hash ring over the shard ids (32 virtual points per shard):
// both sides must agree on the mapping so a client's per-shard cache segment
// mirrors the index shard that owns the key, and so a future re-shard moves
// only ~1/N of the keyspace. With one shard the router is free (always 0).

#ifndef SWARM_SRC_INDEX_SHARD_ROUTER_H_
#define SWARM_SRC_INDEX_SHARD_ROUTER_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/hash/xxhash.h"

namespace swarm::index {

class ShardRouter {
 public:
  ShardRouter() = default;
  explicit ShardRouter(int shards) : shards_(shards < 1 ? 1 : shards) {
    if (shards_ == 1) {
      return;
    }
    ring_.reserve(static_cast<size_t>(shards_) * kVnodes);
    for (int s = 0; s < shards_; ++s) {
      for (int v = 0; v < kVnodes; ++v) {
        ring_.emplace_back(
            hash::Mix64(static_cast<uint64_t>(s) * 1031 + static_cast<uint64_t>(v), 0x7368617264),
            s);
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }

  int shards() const { return shards_; }

  int ShardOf(uint64_t key) const {
    if (shards_ == 1) {
      return 0;
    }
    const uint64_t point = hash::Mix64(key, 0x726f757465);
    auto it = std::lower_bound(ring_.begin(), ring_.end(), std::make_pair(point, -1));
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    return it->second;
  }

 private:
  static constexpr int kVnodes = 32;
  int shards_ = 1;
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace swarm::index

#endif  // SWARM_SRC_INDEX_SHARD_ROUTER_H_
