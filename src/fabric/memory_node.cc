#include "src/fabric/memory_node.h"

#include <cassert>
#include <cstring>

namespace swarm::fabric {

MemoryNode::MemoryNode(uint64_t capacity_bytes)
    : mem_(static_cast<uint8_t*>(std::calloc(capacity_bytes, 1))), capacity_(capacity_bytes) {
  assert(mem_ != nullptr);
}

void MemoryNode::ReadInto(uint64_t addr, std::span<uint8_t> out) const {
  assert(addr + out.size() <= capacity_);
  std::memcpy(out.data(), mem_.get() + addr, out.size());
}

void MemoryNode::WriteFrom(uint64_t addr, std::span<const uint8_t> data) {
  assert(addr + data.size() <= capacity_);
  std::memcpy(mem_.get() + addr, data.data(), data.size());
}

uint64_t MemoryNode::LoadWord(uint64_t addr) const {
  assert(addr % 8 == 0 && addr + 8 <= capacity_);
  uint64_t v;
  std::memcpy(&v, mem_.get() + addr, 8);
  return v;
}

void MemoryNode::StoreWord(uint64_t addr, uint64_t value) {
  assert(addr % 8 == 0 && addr + 8 <= capacity_);
  std::memcpy(mem_.get() + addr, &value, 8);
}

uint64_t MemoryNode::CasWord(uint64_t addr, uint64_t expected, uint64_t desired) {
  const uint64_t prev = LoadWord(addr);
  if (prev == expected) {
    StoreWord(addr, desired);
  }
  return prev;
}

uint64_t MemoryNode::Allocate(uint64_t size, uint64_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  const uint64_t aligned = (next_free_ + align - 1) & ~(align - 1);
  assert(aligned + size <= capacity_ && "memory node out of capacity");
  next_free_ = aligned + size;
  return aligned;
}

void MemoryNode::Recover(bool preserve_reservations) {
  failed_ = false;
  std::memset(mem_.get(), 0, next_free_);  // Only touched pages need clearing.
  if (!preserve_reservations) {
    next_free_ = 64;
  }
}

void MemoryNode::RetireRegion(uint64_t addr, uint64_t len) {
  if (len == 0) {
    return;
  }
  retired_.emplace_back(addr, addr + len);
}

void MemoryNode::RestoreRegion(uint64_t addr, uint64_t len) {
  const std::pair<uint64_t, uint64_t> interval(addr, addr + len);
  for (size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i] == interval) {
      retired_[i] = retired_.back();
      retired_.pop_back();
      return;
    }
  }
}

bool MemoryNode::RegionRetired(uint64_t addr, uint64_t len) const {
  const uint64_t end = addr + (len > 0 ? len : 1);
  for (const auto& [b, e] : retired_) {
    if (addr < e && end > b) {
      return true;
    }
  }
  return false;
}

}  // namespace swarm::fabric
