#include "src/fabric/memory_node.h"

#include <cassert>
#include <cstring>

namespace swarm::fabric {

MemoryNode::MemoryNode(uint64_t capacity_bytes)
    : mem_(static_cast<uint8_t*>(std::calloc(capacity_bytes, 1))), capacity_(capacity_bytes) {
  assert(mem_ != nullptr);
  extent_.Reset(/*base=*/64, capacity_);  // Address 0 is reserved as null.
  slab_.Reset(&extent_);
}

void MemoryNode::ReadInto(uint64_t addr, std::span<uint8_t> out) const {
  assert(addr + out.size() <= capacity_);
  std::memcpy(out.data(), mem_.get() + addr, out.size());
}

void MemoryNode::WriteFrom(uint64_t addr, std::span<const uint8_t> data) {
  assert(addr + data.size() <= capacity_);
  std::memcpy(mem_.get() + addr, data.data(), data.size());
}

uint64_t MemoryNode::LoadWord(uint64_t addr) const {
  assert(addr % 8 == 0 && addr + 8 <= capacity_);
  uint64_t v;
  std::memcpy(&v, mem_.get() + addr, 8);
  return v;
}

void MemoryNode::StoreWord(uint64_t addr, uint64_t value) {
  assert(addr % 8 == 0 && addr + 8 <= capacity_);
  std::memcpy(mem_.get() + addr, &value, 8);
}

uint64_t MemoryNode::CasWord(uint64_t addr, uint64_t expected, uint64_t desired) {
  const uint64_t prev = LoadWord(addr);
  if (prev == expected) {
    StoreWord(addr, desired);
  }
  return prev;
}

uint64_t MemoryNode::Allocate(uint64_t size, uint64_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  const uint64_t addr = extent_.Allocate(size, align);
  assert(addr != alloc::ExtentAllocator::kNone && "memory node out of capacity");
  // Reused ranges carry old contents; the cluster invariant is that fresh
  // buffers come back zeroed (§5.3.1), so clear on allocation.
  std::memset(mem_.get() + addr, 0, size);
  return addr;
}

void MemoryNode::Free(uint64_t addr, uint64_t size) { extent_.Free(addr, size); }

uint64_t MemoryNode::AllocSlot(uint64_t slot_bytes) {
  const uint64_t addr = slab_.AllocSlot(slot_bytes);
  assert(addr != alloc::SlabAllocator::kNone && "memory node out of capacity");
  std::memset(mem_.get() + addr, 0, slot_bytes);
  return addr;
}

bool MemoryNode::FreeSlot(uint64_t addr) { return slab_.FreeSlot(addr); }

void MemoryNode::Recover(bool preserve_reservations) {
  failed_ = false;
  // Only touched pages need clearing.
  std::memset(mem_.get(), 0, extent_.high_water());
  if (!preserve_reservations) {
    extent_.Reset(/*base=*/64, capacity_);
    slab_.Reset(&extent_);
  }
}

void MemoryNode::RetireRegion(uint64_t addr, uint64_t len) {
  retired_.Insert(addr, len);
}

void MemoryNode::RestoreRegion(uint64_t addr, uint64_t len) {
  retired_.Remove(addr, len);
}

bool MemoryNode::RegionRetired(uint64_t addr, uint64_t len) const {
  return retired_.Overlaps(addr, len);
}

}  // namespace swarm::fabric
