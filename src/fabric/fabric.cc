#include "src/fabric/fabric.h"

#include "src/util/annotations.h"

#include <algorithm>
#include <memory>

namespace swarm::fabric {

SWARM_HOT_PATH sim::Task<void> ClientCpu::Consume(sim::Time cost) {
  const sim::Time start = std::max(sim_->Now(), busy_until_);
  busy_until_ = start + cost;
  busy_ns_ += cost;
  if (busy_until_ > sim_->Now()) {
    co_await sim_->WaitUntil(busy_until_);
  }
}

SWARM_HOT_PATH sim::Task<void> ClientCpu::Submit(sim::Time cost, sim::Time wqe_cost, int wqes) {
  if (batch_depth_ == 0) {
    if (stats_ != nullptr) {
      ++stats_->doorbells;
    }
    co_await Consume(cost + wqe_cost);
    co_return;
  }
  // Batched: the first verb rings the doorbell (charging the CPU once); the
  // rest join it. `batch_ready_ < Now()` guards a guard held open across
  // virtual time (sequential verbs under one guard): a fresh doorbell rings.
  // A verb that would push the doorbell past its WQE budget also rings a
  // fresh one — the NIC only accepts max_wqe_ entries per doorbell write, so
  // an oversized batch splits into ceil(K/max) doorbells, each paying
  // submit_cost (plus the unchanged per-WQE build cost).
  const bool wqe_split =
      batch_charged_ && max_wqe_ > 0 && batch_wqes_ + wqes > max_wqe_;
  if (!batch_charged_ || batch_ready_ < sim_->Now() || wqe_split) {
    batch_charged_ = true;
    batch_wqes_ = 0;
    const sim::Time start = std::max(sim_->Now(), busy_until_);
    busy_until_ = start + cost;
    busy_ns_ += cost;
    batch_ready_ = busy_until_;
    if (stats_ != nullptr) {
      ++stats_->doorbells;
      if (wqe_split) {
        ++stats_->doorbell_splits;
      }
    }
  }
  batch_wqes_ += wqes;
  if (wqe_cost > 0) {
    // Per-WQE build cost: WQEs of one doorbell are built serially, so each
    // verb departs when its own WQE is done and the CPU stays busy for the
    // whole list (submit_cost + K*per_verb_cost for a K-verb doorbell).
    busy_until_ = std::max(busy_until_, batch_ready_) + wqe_cost;
    busy_ns_ += wqe_cost;
    batch_ready_ = busy_until_;
  }
  ++batch_verbs_;
  if (stats_ != nullptr) {
    ++stats_->batched_verbs;
  }
  if (batch_ready_ > sim_->Now()) {
    co_await sim_->WaitUntil(batch_ready_);
  }
}

void ClientCpu::EndBatch() {
  if (!enabled_ || batch_depth_ == 0) {
    return;
  }
  if (--batch_depth_ == 0) {
    if (batch_verbs_ > 0 && stats_ != nullptr) {
      ++stats_->batches;
    }
    batch_charged_ = false;
    batch_verbs_ = 0;
    batch_wqes_ = 0;
  }
}

sim::Task<void> PostAll(ClientCpu* cpu, sim::Simulator* sim,
                        sim::PoolVec<sim::Task<void>> verbs) {
  sim::Counter done(sim);
  const int n = static_cast<int>(verbs.size());
  {
    CpuBatch batch(cpu);
    for (auto& v : verbs) {
      sim::Spawn(sim::SignalWhenDone(std::move(v), done));
    }
  }
  co_await done.WaitFor(n);
}

namespace {

// Shared completion block for PostMany/PostQuorum. Every spawned verb holds
// a reference, so the block outlives the caller's (possibly first-quorum)
// resume; the pooled slot recycles only after the LAST straggler finished.
struct ManyResults {
  sim::PoolVec<OpResult> results;
  sim::PoolVec<uint8_t> completed;
};

sim::Task<void> StoreResultAt(sim::Task<OpResult> verb, std::shared_ptr<ManyResults> out,
                              size_t idx, sim::Counter done) {
  out->results[idx] = co_await std::move(verb);
  out->completed[idx] = 1;
  done.Add(1);
}

std::shared_ptr<ManyResults> SpawnUnderOneDoorbell(ClientCpu* cpu,
                                                   sim::PoolVec<sim::Task<OpResult>>& verbs,
                                                   sim::Counter& done) {
  auto out = std::allocate_shared<ManyResults>(sim::PoolAlloc<ManyResults>{});
  out->results.resize(verbs.size());
  out->completed.assign(verbs.size(), 0);
  CpuBatch batch(cpu);
  for (size_t i = 0; i < verbs.size(); ++i) {
    sim::Spawn(StoreResultAt(std::move(verbs[i]), out, i, done));
  }
  return out;
}

}  // namespace

sim::Task<sim::PoolVec<OpResult>> PostMany(ClientCpu* cpu, sim::Simulator* sim,
                                           sim::PoolVec<sim::Task<OpResult>> verbs) {
  sim::Counter done(sim);
  const int n = static_cast<int>(verbs.size());
  auto out = SpawnUnderOneDoorbell(cpu, verbs, done);
  co_await done.WaitFor(n);
  co_return std::move(out->results);
}

sim::Task<QuorumOutcome> PostQuorum(ClientCpu* cpu, sim::Simulator* sim,
                                    sim::PoolVec<sim::Task<OpResult>> verbs, int quorum,
                                    sim::Time timeout) {
  sim::Counter done(sim);
  auto out = SpawnUnderOneDoorbell(cpu, verbs, done);
  QuorumOutcome o;
  o.reached = co_await done.WaitFor(quorum, timeout);
  o.completed_count = done.count();
  // Snapshot: stragglers keep mutating *out after this resume, so the caller
  // gets a copy taken at the quorum instant (pooled buffers, no heap).
  o.results = out->results;
  o.completed = out->completed;
  co_return o;
}

Fabric::Fabric(sim::Simulator* sim, FabricConfig config)
    : sim_(sim), config_(config),
      max_nodes_(std::max(config.max_nodes, config.num_nodes)) {
  nodes_.reserve(static_cast<size_t>(max_nodes_));
  for (int i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<MemoryNode>(config_.node_capacity_bytes));
    nodes_.back()->set_now_fn([sim] { return sim->Now(); });
  }
  // Sized to the lifetime bound so hot-added nodes slot in without moving
  // any per-node state.
  nic_free_.assign(static_cast<size_t>(max_nodes_), 0);
}

int Fabric::AddNode() {
  const int id = num_nodes();
  if (id >= max_nodes_) {
    return -1;  // Admission plans are bounded by config.max_nodes.
  }
  nodes_.push_back(std::make_unique<MemoryNode>(config_.node_capacity_bytes));
  nodes_.back()->set_now_fn([sim = sim_] { return sim->Now(); });
  nodes_.back()->set_fence_epoch(fence_epoch_);
  nodes_.back()->set_fence_enforced(fence_enforced_);
  return id;
}

sim::Time Fabric::ReserveNicAtArrival(int node, sim::Time service) {
  sim::Time& free_at = nic_free_[static_cast<size_t>(node)];
  const sim::Time start = std::max(sim_->Now(), free_at);
  free_at = start + service;
  return start;
}

sim::Time Fabric::SampleDelay() {
  const sim::Time j = config_.delay_jitter;
  sim::Time d = config_.one_way_delay;
  if (j > 0) {
    d += sim_->rng().Range(-j, j);
  }
  return std::max<sim::Time>(d, 1);
}

uint64_t Fabric::TotalAllocated() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->bytes_allocated();
  }
  return total;
}

namespace {

// Per-verb completion state, shared between the issuing coroutine and the
// callback chain that models the verb's journey through the fabric.
//
// Pooling audit (completion-after-cancellation): in all four verb paths the
// last write to an OpState happens strictly BEFORE the matching done.Add(1),
// and the awaiting coroutine resumes only via a later event-queue entry — so
// no path writes an OpState after its owner resumed. The hazard the
// shared_ptr guards is the other direction: the awaiting coroutine can be
// GONE before the callbacks run (a response-drop makes the client time out
// while the completion chain is still in flight, and a destroyed Simulator
// destroys queued callbacks without running them). Every callback therefore
// holds a reference, and the pooled slot recycles only when the last one
// releases it — recycling while a dropped ack's completion is in flight is
// impossible by construction. completion_race_test forces exactly this
// interleaving via the response-drop chaos hook under ASan (where the pool
// delegates to the real allocator, so any regression is a reported UAF).
struct OpState {
  OpResult result;
};

std::shared_ptr<OpState> MakeOpState() {
  return std::allocate_shared<OpState>(sim::PoolAlloc<OpState>{});
}

}  // namespace

SWARM_HOT_PATH sim::Task<OpResult> Qp::Read(uint64_t addr, std::span<uint8_t> out) {
  Fabric& f = *fabric_;
  const FabricConfig& cfg = f.config();
  if (revoked_) {
    co_return RevokedResult();  // Dead until the client re-validates.
  }
  const uint64_t verb_epoch = stamp();
  if (cpu_ != nullptr) {
    co_await cpu_->Submit(cfg.submit_cost, cfg.per_verb_cost);
  }
  f.stats().ops_issued++;
  f.stats().reads++;
  f.stats().bytes_to_nodes += kVerbHeaderBytes;

  sim::Simulator* sim = f.sim();
  const sim::Time departure = sim->Now();
  // A READ has no node-side effect, so a dropped request and a dropped
  // response are indistinguishable to everyone: the bytes never arrive.
  if (f.DropMessage(node_, false, chaos_tag_) || f.DropMessage(node_, true, chaos_tag_)) {
    co_await sim->WaitUntil(departure + cfg.failure_detect_delay);
    OpResult lost;
    lost.status = Status::kNodeFailed;
    co_return lost;
  }
  sim::Time arrival =
      departure + f.SampleDelay() + f.LinkExtraDelay(node_, false) + f.node(node_).extra_delay();
  arrival = std::max(arrival, last_arrival_ + 1);  // Per-QP FIFO (RDMA ordering).
  last_arrival_ = arrival;

  auto st = MakeOpState();
  sim::Counter done(sim);
  const int node_id = node_;
  const bool repair_ch = repair_channel_;
  uint8_t* out_ptr = out.data();
  const size_t out_len = out.size();

  // The NIC is reserved AT arrival (arrival-order service): a verb delayed
  // in the network must not block earlier-arriving traffic.
  sim->At(arrival, [&f, sim, st, done, node_id, repair_ch, verb_epoch, addr, out_ptr, out_len,
                    departure]() mutable {
    const sim::Time exec = f.ReserveNicAtArrival(node_id, f.config().node_op_cost);
    sim->At(exec, [&f, sim, st, done, node_id, repair_ch, verb_epoch, addr, out_ptr, out_len,
                   departure, exec]() mutable {
      MemoryNode& node = f.node(node_id);
      const FabricConfig& ncfg = f.config();
      const Status adm = node.VerbStatus(repair_ch, verb_epoch, addr, out_len);
      if (adm == Status::kNodeFailed) {
        st->result.status = Status::kNodeFailed;
        sim->At(std::max(sim->Now(), departure + ncfg.failure_detect_delay),
                [done]() mutable { done.Add(1); });
        return;
      }
      if (adm != Status::kOk) {
        // Epoch-fence or retired-region rejection: the node actively NACKs,
        // so the client learns at normal response speed rather than after
        // the failure timeout.
        st->result.status = adm;
        f.stats().bytes_from_nodes += kAckBytes;
        const sim::Time complete =
            exec + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
        sim->At(complete, [done]() mutable { done.Add(1); });
        return;
      }
      node.ReadInto(addr, std::span<uint8_t>(out_ptr, out_len));
      f.stats().bytes_from_nodes += kVerbHeaderBytes + out_len;
      const sim::Time complete = exec + ncfg.node_op_cost + ncfg.read_extra + f.SampleDelay() +
                                 f.LinkExtraDelay(node_id, true) + f.TransferTime(out_len);
      sim->At(complete, [done]() mutable { done.Add(1); });
    });
  });

  co_await done.WaitFor(1);
  if (st->result.status == Status::kStaleEpoch) {
    revoked_ = true;  // §5.4: the QP stays dead until re-validation re-arms it.
  }
  co_return st->result;
}

SWARM_HOT_PATH sim::Task<OpResult> Qp::Write(uint64_t addr, std::span<const uint8_t> data) {
  Fabric& f = *fabric_;
  const FabricConfig& cfg = f.config();
  if (revoked_) {
    co_return RevokedResult();
  }
  const uint64_t verb_epoch = stamp();
  if (cpu_ != nullptr) {
    co_await cpu_->Submit(cfg.submit_cost, cfg.per_verb_cost);
  }
  f.stats().ops_issued++;
  f.stats().writes++;
  f.stats().bytes_to_nodes += kVerbHeaderBytes + data.size();

  sim::Simulator* sim = f.sim();
  const sim::Time departure = sim->Now();
  if (f.DropMessage(node_, false, chaos_tag_)) {
    // Request lost: the write never reaches the node.
    co_await sim->WaitUntil(departure + cfg.failure_detect_delay);
    OpResult lost;
    lost.status = Status::kNodeFailed;
    co_return lost;
  }
  // Response lost: the write APPLIES at the node, only the ack is missing —
  // the possibly-applied case quorum protocols must survive.
  const bool drop_resp = f.DropMessage(node_, true, chaos_tag_);
  const sim::Time xfer = f.TransferTime(data.size());
  sim::Time arrival =
      departure + f.SampleDelay() + f.LinkExtraDelay(node_, false) + f.node(node_).extra_delay();
  arrival = std::max(arrival, last_arrival_ + 1);  // Per-QP FIFO (RDMA ordering).
  last_arrival_ = arrival + xfer;  // The transfer occupies the QP's channel.

  auto st = MakeOpState();
  sim::Counter done(sim);
  const int node_id = node_;
  const bool repair_ch = repair_channel_;
  const uint8_t* src = data.data();
  const size_t len = data.size();

  // Shared rejection tail: kNodeFailed times out, kStaleEpoch/kMovedReplica
  // NACK at response speed — unless the response leg drops, which hides the
  // NACK and looks like a node failure to the client.
  auto reject = [&f, sim, st, done, node_id, departure](Status adm, bool lost_resp) mutable {
    const FabricConfig& ncfg = f.config();
    if ((adm == Status::kStaleEpoch || adm == Status::kMovedReplica) && !lost_resp) {
      st->result.status = adm;
      f.stats().bytes_from_nodes += kAckBytes;
      const sim::Time complete =
          sim->Now() + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
      sim->At(complete, [done]() mutable { done.Add(1); });
      return;
    }
    st->result.status = Status::kNodeFailed;
    sim->At(std::max(sim->Now(), departure + ncfg.failure_detect_delay),
            [done]() mutable { done.Add(1); });
  };

  const bool staged = cfg.staged_large_writes && len > 8 && xfer > 0;
  sim->At(arrival, [&f, sim, st, done, node_id, repair_ch, verb_epoch, addr, src, len, xfer,
                    staged, drop_resp, reject]() mutable {
    const sim::Time start = f.ReserveNicAtArrival(node_id, f.config().node_op_cost);
    const sim::Time finish = start + xfer;  // Last byte lands at `finish`.
    auto tail = [&f, sim, st, done, node_id, repair_ch, verb_epoch, addr, src, len, staged,
                 drop_resp, reject]() mutable {
      MemoryNode& node = f.node(node_id);
      const Status adm = node.VerbStatus(repair_ch, verb_epoch, addr, len);
      if (adm != Status::kOk) {
        reject(adm, drop_resp);
        return;
      }
      const size_t half = staged ? len / 2 : 0;
      node.WriteFrom(addr + half, std::span<const uint8_t>(src + half, len - half));
      if (drop_resp) {
        reject(Status::kNodeFailed, true);
        return;
      }
      f.stats().bytes_from_nodes += kAckBytes;
      const FabricConfig& ncfg = f.config();
      const sim::Time complete =
          sim->Now() + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
      sim->At(complete, [done]() mutable { done.Add(1); });
    };
    if (staged) {
      const size_t half = len / 2;
      sim->At(start, [&f, node_id, repair_ch, verb_epoch, addr, src, half] {
        if (f.node(node_id).Admits(repair_ch, verb_epoch, addr, half) == Status::kOk) {
          f.node(node_id).WriteFrom(addr, std::span<const uint8_t>(src, half));
        }
      });
    }
    sim->At(finish, std::move(tail));
  });

  co_await done.WaitFor(1);
  if (st->result.status == Status::kStaleEpoch) {
    revoked_ = true;
  }
  co_return st->result;
}

SWARM_HOT_PATH sim::Task<OpResult> Qp::Cas(uint64_t addr, uint64_t expected, uint64_t desired) {
  Fabric& f = *fabric_;
  const FabricConfig& cfg = f.config();
  if (revoked_) {
    co_return RevokedResult();
  }
  const uint64_t verb_epoch = stamp();
  if (cpu_ != nullptr) {
    co_await cpu_->Submit(cfg.submit_cost, cfg.per_verb_cost);
  }
  f.stats().ops_issued++;
  f.stats().casses++;
  f.stats().bytes_to_nodes += kVerbHeaderBytes + 16;

  sim::Simulator* sim = f.sim();
  const sim::Time departure = sim->Now();
  if (f.DropMessage(node_, false, chaos_tag_)) {
    co_await sim->WaitUntil(departure + cfg.failure_detect_delay);
    OpResult lost;
    lost.status = Status::kNodeFailed;
    co_return lost;
  }
  // Response lost: the CAS takes effect but the old value never comes back.
  const bool drop_resp = f.DropMessage(node_, true, chaos_tag_);
  sim::Time arrival =
      departure + f.SampleDelay() + f.LinkExtraDelay(node_, false) + f.node(node_).extra_delay();
  arrival = std::max(arrival, last_arrival_ + 1);  // Per-QP FIFO (RDMA ordering).
  last_arrival_ = arrival;

  auto st = MakeOpState();
  sim::Counter done(sim);
  const int node_id = node_;
  const bool repair_ch = repair_channel_;

  sim->At(arrival, [&f, sim, st, done, node_id, repair_ch, verb_epoch, addr, expected, desired,
                    departure, drop_resp]() mutable {
    const sim::Time exec = f.ReserveNicAtArrival(node_id, f.config().node_op_cost);
    sim->At(exec, [&f, sim, st, done, node_id, repair_ch, verb_epoch, addr, expected, desired,
                   departure, drop_resp]() mutable {
      MemoryNode& node = f.node(node_id);
      const FabricConfig& ncfg = f.config();
      const Status adm = node.VerbStatus(repair_ch, verb_epoch, addr, 8);
      if (adm == Status::kNodeFailed || (adm != Status::kOk && drop_resp)) {
        // A NACK whose response leg drops looks like a node failure.
        st->result.status = Status::kNodeFailed;
        sim->At(std::max(sim->Now(), departure + ncfg.failure_detect_delay),
                [done]() mutable { done.Add(1); });
        return;
      }
      if (adm != Status::kOk) {
        st->result.status = adm;
        f.stats().bytes_from_nodes += kAckBytes;
        const sim::Time complete =
            sim->Now() + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
        sim->At(complete, [done]() mutable { done.Add(1); });
        return;
      }
      const uint64_t old = node.CasWord(addr, expected, desired);
      if (drop_resp) {
        st->result.status = Status::kNodeFailed;
        sim->At(std::max(sim->Now(), departure + ncfg.failure_detect_delay),
                [done]() mutable { done.Add(1); });
        return;
      }
      st->result.old_value = old;
      f.stats().bytes_from_nodes += kAckBytes + 8;
      const sim::Time complete =
          sim->Now() + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
      sim->At(complete, [done]() mutable { done.Add(1); });
    });
  });

  co_await done.WaitFor(1);
  if (st->result.status == Status::kStaleEpoch) {
    revoked_ = true;
  }
  co_return st->result;
}

SWARM_HOT_PATH sim::Task<OpResult> Qp::WriteThenCas(uint64_t waddr, std::span<const uint8_t> data, uint64_t caddr,
                                     uint64_t expected, uint64_t desired) {
  Fabric& f = *fabric_;
  const FabricConfig& cfg = f.config();
  if (revoked_) {
    co_return RevokedResult();
  }
  const uint64_t verb_epoch = stamp();
  if (cpu_ != nullptr) {
    // One submission covers the whole pipelined series (§7.2: the fixed cost
    // is per series of RDMA operations to a memory node), but the series
    // carries two WQEs.
    co_await cpu_->Submit(cfg.submit_cost, 2 * cfg.per_verb_cost, /*wqes=*/2);
  }
  f.stats().ops_issued += 2;
  f.stats().writes++;
  f.stats().casses++;
  f.stats().bytes_to_nodes += 2 * kVerbHeaderBytes + data.size() + 16;

  sim::Simulator* sim = f.sim();
  const sim::Time departure = sim->Now();
  if (f.DropMessage(node_, false, chaos_tag_)) {
    // The pipelined series is one network message: neither verb applies.
    co_await sim->WaitUntil(departure + cfg.failure_detect_delay);
    OpResult lost;
    lost.status = Status::kNodeFailed;
    co_return lost;
  }
  // Response lost: BOTH the write and the CAS apply; the ack is missing.
  const bool drop_resp = f.DropMessage(node_, true, chaos_tag_);
  const sim::Time xfer = f.TransferTime(data.size());
  sim::Time arrival =
      departure + f.SampleDelay() + f.LinkExtraDelay(node_, false) + f.node(node_).extra_delay();
  arrival = std::max(arrival, last_arrival_ + 1);  // Per-QP FIFO (RDMA ordering).
  last_arrival_ = arrival + xfer;  // The transfer occupies the QP's channel.

  auto st = MakeOpState();
  sim::Counter done(sim);
  const int node_id = node_;
  const bool repair_ch = repair_channel_;
  const uint8_t* src = data.data();
  const size_t len = data.size();
  const bool staged = cfg.staged_large_writes && len > 8 && xfer > 0;

  auto cas_body = [&f, sim, st, done, node_id, repair_ch, verb_epoch, caddr, expected, desired,
                   departure, drop_resp]() mutable {
    MemoryNode& node = f.node(node_id);
    const FabricConfig& ncfg = f.config();
    const Status adm = node.VerbStatus(repair_ch, verb_epoch, caddr, 8);
    if (adm == Status::kNodeFailed || (adm != Status::kOk && drop_resp)) {
      // A NACK whose response leg drops looks like a node failure.
      st->result.status = Status::kNodeFailed;
      sim->At(std::max(sim->Now(), departure + ncfg.failure_detect_delay),
              [done]() mutable { done.Add(1); });
      return;
    }
    if (adm != Status::kOk) {
      st->result.status = adm;
      f.stats().bytes_from_nodes += kAckBytes;
      const sim::Time complete =
          sim->Now() + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
      sim->At(complete, [done]() mutable { done.Add(1); });
      return;
    }
    const uint64_t old = node.CasWord(caddr, expected, desired);
    if (drop_resp) {
      st->result.status = Status::kNodeFailed;
      sim->At(std::max(sim->Now(), departure + ncfg.failure_detect_delay),
              [done]() mutable { done.Add(1); });
      return;
    }
    st->result.old_value = old;
    f.stats().bytes_from_nodes += kAckBytes + 8;
    const sim::Time complete =
        sim->Now() + ncfg.node_op_cost + f.SampleDelay() + f.LinkExtraDelay(node_id, true);
    sim->At(complete, [done]() mutable { done.Add(1); });
  };

  sim->At(arrival, [&f, sim, node_id, repair_ch, verb_epoch, waddr, src, len, xfer, staged,
                    cas_body]() mutable {
    const sim::Time start = f.ReserveNicAtArrival(node_id, 2 * f.config().node_op_cost);
    const sim::Time write_done = start + xfer;
    const sim::Time cas_at = write_done + f.config().node_op_cost;
    if (staged) {
      const size_t half = len / 2;
      sim->At(start, [&f, node_id, repair_ch, verb_epoch, waddr, src, half] {
        if (f.node(node_id).Admits(repair_ch, verb_epoch, waddr, half) == Status::kOk) {
          f.node(node_id).WriteFrom(waddr, std::span<const uint8_t>(src, half));
        }
      });
      sim->At(write_done, [&f, node_id, repair_ch, verb_epoch, waddr, src, half, len] {
        if (f.node(node_id).Admits(repair_ch, verb_epoch, waddr + half, len - half) ==
            Status::kOk) {
          f.node(node_id).WriteFrom(waddr + half,
                                    std::span<const uint8_t>(src + half, len - half));
        }
      });
    } else {
      sim->At(write_done, [&f, node_id, repair_ch, verb_epoch, waddr, src, len] {
        if (f.node(node_id).Admits(repair_ch, verb_epoch, waddr, len) == Status::kOk) {
          f.node(node_id).WriteFrom(waddr, std::span<const uint8_t>(src, len));
        }
      });
    }
    // FIFO pipelining: the CAS executes only after the write has fully
    // applied (if the CAS's effect is visible, so is the write).
    sim->At(cas_at, std::move(cas_body));
  });

  co_await done.WaitFor(1);
  if (st->result.status == Status::kStaleEpoch) {
    revoked_ = true;
  }
  co_return st->result;
}

}  // namespace swarm::fabric
