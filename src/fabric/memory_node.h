// A passive disaggregated-memory node.
//
// The node is a byte array plus an extent/slab allocator
// (src/alloc/extent_allocator.h). It runs no protocol logic whatsoever — all
// intelligence lives in the clients, as required by SWARM's setting
// (CXL-style memory, or RDMA NICs without two-sided ops). The fabric layer
// decides *when* (in virtual time) each access executes; the node only
// performs the raw memory operation at that instant.

#ifndef SWARM_SRC_FABRIC_MEMORY_NODE_H_
#define SWARM_SRC_FABRIC_MEMORY_NODE_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/alloc/extent_allocator.h"
#include "src/fabric/verbs.h"
#include "src/sim/time.h"

namespace swarm::fabric {

class MemoryNode {
 public:
  explicit MemoryNode(uint64_t capacity_bytes);

  // --- Raw access (invoked by the fabric at an op's execution event). ---
  void ReadInto(uint64_t addr, std::span<uint8_t> out) const;
  void WriteFrom(uint64_t addr, std::span<const uint8_t> data);
  uint64_t LoadWord(uint64_t addr) const;
  void StoreWord(uint64_t addr, uint64_t value);
  // Atomic 64-bit CAS. Returns the previous value; swaps iff it == expected.
  uint64_t CasWord(uint64_t addr, uint64_t expected, uint64_t desired);

  // --- Allocation (control plane; returned regions are zero-initialized). ---
  // Returns the base address of a fresh extent of `size` bytes with the given
  // power-of-two alignment (default 8), by best-fit over the coalescing free
  // map.
  uint64_t Allocate(uint64_t size, uint64_t align = 8);
  // Returns [addr, addr+size) to the allocator. Freed ranges sit in a
  // virtual-time quarantine (when a time source is wired via set_now_fn)
  // long enough that no straggler verb against the old owner can still be in
  // flight when the address is reused.
  void Free(uint64_t addr, uint64_t size);
  // Fixed-size slot in a slab extent (the per-replica object slots). Slots of
  // one size class are contiguous within their extent, so repair can harvest
  // and migration can fence a whole extent at once.
  uint64_t AllocSlot(uint64_t slot_bytes);
  bool FreeSlot(uint64_t addr);
  // Extent descriptor for a slab slot address (nullptr if not a slab slot).
  const alloc::SlabAllocator::Extent* SlotExtentOf(uint64_t addr) const {
    return slab_.ExtentOf(addr);
  }
  // Virtual-time source for the free quarantines (wired by Fabric).
  void set_now_fn(std::function<int64_t()> fn) {
    extent_.set_now_fn(fn);
    slab_.set_now_fn(std::move(fn));
  }

  // High-water footprint: 1 + the highest byte ever handed out. Monotone
  // across frees (Recover() memsets this range; Table 3 reports it).
  uint64_t bytes_allocated() const { return extent_.high_water(); }
  uint64_t live_bytes() const { return extent_.live_bytes(); }
  uint64_t capacity() const { return capacity_; }
  const alloc::ExtentAllocator& extent_allocator() const { return extent_; }

  // --- Failure injection. ---
  void Crash() { failed_ = true; }
  // A recovered node comes back empty: disaggregated DRAM loses its contents.
  // With `preserve_reservations` the allocation map survives (the cluster's
  // control plane remembers which regions belong to which objects), so every
  // pre-crash address stays reserved and a repair coordinator can write the
  // replicas' state back into the SAME locations — the crash-recover model.
  // Without it the bump pointer resets too (the crash-stop "replacement node"
  // model, where nothing will ever reference the old addresses again).
  void Recover(bool preserve_reservations = false);
  bool failed() const { return failed_; }

  // Repair fence: while set, the node rejects every verb except the repair
  // coordinator's (Qp::set_repair_channel). Closes the in-flight window
  // where a verb issued against the crashed node executes after its restart
  // and would observe wiped memory — clients must keep seeing kNodeFailed
  // until the node is repaired and readmitted.
  void set_repair_fenced(bool fenced) { repair_fenced_ = fenced; }
  bool repair_fenced() const { return repair_fenced_; }

  // Membership-epoch fence (§5.4 per-client QP revocation): the membership
  // service pushes its epoch to EVERY node on each repair-relevant
  // transition (crash, restart-for-repair, readmission). A verb stamped with
  // an older epoch is rejected with kStaleEpoch — it was issued by a client
  // whose view predates the transition, and trusting it would let an op in
  // flight across a whole crash-repair cycle land on freshly restored state
  // (the residual window the repair fence alone leaves open). The repair
  // coordinator's channel is exempt: it drives the transitions itself.
  void set_fence_epoch(uint64_t epoch) { fence_epoch_ = epoch; }
  uint64_t fence_epoch() const { return fence_epoch_; }
  // Canary knob (MembershipService::set_epoch_fencing(false)): the node
  // keeps LEARNING the epoch but stops enforcing it — stale verbs land, and
  // stale_landings() counts how many the fence would have rejected (the
  // pre-fix exposure, also a handy diagnostic).
  void set_fence_enforced(bool on) { fence_enforced_ = on; }
  uint64_t stale_landings() const { return stale_landings_; }

  // Whether a verb on a (non-)repair channel is rejected at execution.
  bool Rejects(bool repair_channel) const {
    return failed_ || (repair_fenced_ && !repair_channel);
  }
  // Full admission decision for a verb stamped with `verb_epoch` targeting
  // [addr, addr+len): kNodeFailed dominates (a dead node cannot NACK), then
  // the epoch fence, then region retirement (migrated-away extents).
  // Counts the pre-fix exposure; a verb's INTERMEDIATE events (staged write
  // halves, the write leg of a pipelined series) must use Admits() instead
  // so each stale verb lands in the counter exactly once.
  Status VerbStatus(bool repair_channel, uint64_t verb_epoch, uint64_t addr, uint64_t len) const {
    const Status s = Admits(repair_channel, verb_epoch, addr, len);
    if (s == Status::kOk && !repair_channel && verb_epoch < fence_epoch_) {
      ++stale_landings_;  // Pre-fix build: trusted anyway. Count the exposure.
    }
    return s;
  }
  // Same decision, no exposure accounting.
  Status Admits(bool repair_channel, uint64_t verb_epoch, uint64_t addr, uint64_t len) const {
    if (Rejects(repair_channel)) {
      return Status::kNodeFailed;
    }
    if (!repair_channel && verb_epoch < fence_epoch_ && fence_enforced_) {
      return Status::kStaleEpoch;
    }
    if (!repair_channel && !retired_.empty() && retired_.Overlaps(addr, len)) {
      return Status::kMovedReplica;
    }
    return Status::kOk;
  }

  // --- Region retirement (live extent migration). ---
  // Marks [addr, addr+len) as migrated away: every later non-repair-channel
  // verb touching the interval is NACKed with kMovedReplica. The migration
  // coordinator's repair channel stays exempt so it can harvest the frozen
  // final state. Retirement survives Recover(preserve_reservations): a
  // crash-repair cycle must not resurrect a region whose ownership moved.
  // The retired set is a coalescing interval map, so a migration can fence a
  // whole slab extent with ONE interval and later lift it slot-by-slot
  // (RestoreRegion removes the intersection, splitting as needed).
  void RetireRegion(uint64_t addr, uint64_t len);
  // Aborted migration (pre-remap) or retired-layout GC: lifts the fence so
  // the range is admissible (and reusable) again.
  void RestoreRegion(uint64_t addr, uint64_t len);
  bool RegionRetired(uint64_t addr, uint64_t len) const;
  size_t retired_region_count() const { return retired_.interval_count(); }

  // Extra per-op delay (simulates an overloaded or distant node).
  void set_extra_delay(sim::Time d) { extra_delay_ = d; }
  sim::Time extra_delay() const { return extra_delay_; }

 private:
  struct FreeDeleter {
    void operator()(uint8_t* p) const { std::free(p); }
  };

  // calloc-backed so untouched pages cost nothing (multi-GiB nodes are cheap
  // to model) and memory starts zeroed ("cleared buffers", §5.3.1). Allocate
  // re-zeroes on reuse to preserve the invariant.
  std::unique_ptr<uint8_t[], FreeDeleter> mem_;
  uint64_t capacity_;
  alloc::ExtentAllocator extent_;  // Owns [64, capacity); 0 is null.
  alloc::SlabAllocator slab_;
  bool failed_ = false;
  bool repair_fenced_ = false;
  // Retired intervals, coalescing. O(log n) overlap checks keep admission
  // cheap even with thousands of long-lived migration fences.
  alloc::FreeMap retired_;
  uint64_t fence_epoch_ = 0;  // 0 = never fenced; every stamp passes.
  bool fence_enforced_ = true;
  mutable uint64_t stale_landings_ = 0;
  sim::Time extra_delay_ = 0;
};

}  // namespace swarm::fabric

#endif  // SWARM_SRC_FABRIC_MEMORY_NODE_H_
