// A passive disaggregated-memory node.
//
// The node is a byte array plus a bump allocator. It runs no protocol logic
// whatsoever — all intelligence lives in the clients, as required by SWARM's
// setting (CXL-style memory, or RDMA NICs without two-sided ops). The fabric
// layer decides *when* (in virtual time) each access executes; the node only
// performs the raw memory operation at that instant.

#ifndef SWARM_SRC_FABRIC_MEMORY_NODE_H_
#define SWARM_SRC_FABRIC_MEMORY_NODE_H_

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>

#include "src/sim/time.h"

namespace swarm::fabric {

class MemoryNode {
 public:
  explicit MemoryNode(uint64_t capacity_bytes);

  // --- Raw access (invoked by the fabric at an op's execution event). ---
  void ReadInto(uint64_t addr, std::span<uint8_t> out) const;
  void WriteFrom(uint64_t addr, std::span<const uint8_t> data);
  uint64_t LoadWord(uint64_t addr) const;
  void StoreWord(uint64_t addr, uint64_t value);
  // Atomic 64-bit CAS. Returns the previous value; swaps iff it == expected.
  uint64_t CasWord(uint64_t addr, uint64_t expected, uint64_t desired);

  // --- Allocation (setup-time / client pre-allocation; zero-initialized). ---
  // Returns the base address of a fresh region of `size` bytes with the given
  // power-of-two alignment (default 8).
  uint64_t Allocate(uint64_t size, uint64_t align = 8);
  uint64_t bytes_allocated() const { return next_free_; }
  uint64_t capacity() const { return capacity_; }

  // --- Failure injection. ---
  void Crash() { failed_ = true; }
  // A recovered node comes back empty: disaggregated DRAM loses its contents.
  // With `preserve_reservations` the allocation map survives (the cluster's
  // control plane remembers which regions belong to which objects), so every
  // pre-crash address stays reserved and a repair coordinator can write the
  // replicas' state back into the SAME locations — the crash-recover model.
  // Without it the bump pointer resets too (the crash-stop "replacement node"
  // model, where nothing will ever reference the old addresses again).
  void Recover(bool preserve_reservations = false);
  bool failed() const { return failed_; }

  // Repair fence: while set, the node rejects every verb except the repair
  // coordinator's (Qp::set_repair_channel). Closes the in-flight window
  // where a verb issued against the crashed node executes after its restart
  // and would observe wiped memory — clients must keep seeing kNodeFailed
  // until the node is repaired and readmitted.
  void set_repair_fenced(bool fenced) { repair_fenced_ = fenced; }
  bool repair_fenced() const { return repair_fenced_; }
  // Whether a verb on a (non-)repair channel is rejected at execution.
  bool Rejects(bool repair_channel) const {
    return failed_ || (repair_fenced_ && !repair_channel);
  }

  // Extra per-op delay (simulates an overloaded or distant node).
  void set_extra_delay(sim::Time d) { extra_delay_ = d; }
  sim::Time extra_delay() const { return extra_delay_; }

 private:
  struct FreeDeleter {
    void operator()(uint8_t* p) const { std::free(p); }
  };

  // calloc-backed so untouched pages cost nothing (multi-GiB nodes are cheap
  // to model) and memory starts zeroed ("cleared buffers", §5.3.1).
  std::unique_ptr<uint8_t[], FreeDeleter> mem_;
  uint64_t capacity_;
  uint64_t next_free_ = 64;  // Address 0 is reserved as a null pointer.
  bool failed_ = false;
  bool repair_fenced_ = false;
  sim::Time extra_delay_ = 0;
};

}  // namespace swarm::fabric

#endif  // SWARM_SRC_FABRIC_MEMORY_NODE_H_
