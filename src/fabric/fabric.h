// Simulated RDMA fabric: latency/bandwidth model, queue pairs, doorbell
// batching, failure injection, and IO accounting.
//
// This module is the hardware substitution for the paper's testbed (4 client
// servers + 4 memory nodes, ConnectX NICs, 100 Gbps switch). Timing model for
// one verb issued by a client:
//
//   submit:   the issuing worker consumes `submit_cost` on its client CPU
//             (models the 200+ ns cost of posting a series of RDMA work
//             requests, which causes the throughput wall of §7.2),
//   request:  one-way delay + jitter + payload/bandwidth,
//   execute:  the raw memory access at the node. Large writes apply in two
//             stages spread across the transfer window, so concurrent reads
//             can observe torn data (the non-atomicity In-n-Out handles),
//   response: one-way delay + jitter + payload/bandwidth,
//   complete: the awaiting coroutine resumes with the result.
//
// Doorbell batching (§7.2): posting a work request is dominated by the fixed
// cost of building WQEs and ringing the NIC doorbell, and real NICs let a
// client post MANY work requests — even to different destinations — under a
// single doorbell. The model mirrors that: while a CpuBatch is open on a
// ClientCpu, the FIRST verb submitted charges `submit_cost` once and every
// other verb in the batch rides the same doorbell; all of them depart
// together when that single submission completes. A quorum-of-R write
// therefore consumes one `submit_cost`, not R, and its verbs leave the
// client simultaneously instead of staggered 200 ns apart. Everything after
// departure (delay, NIC occupancy, FIFO per QP) is unchanged, and batching
// can be disabled wholesale with FabricConfig::doorbell_batching for A/B
// comparisons.
//
// Ops on the same queue pair execute at the node in issue order (RDMA FIFO),
// which is what makes the pipelined WRITE→CAS of In-n-Out (§4.3) correct in a
// single roundtrip.

#ifndef SWARM_SRC_FABRIC_FABRIC_H_
#define SWARM_SRC_FABRIC_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/fabric/memory_node.h"
#include "src/fabric/verbs.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace swarm::fabric {

struct FabricConfig {
  int num_nodes = 4;
  // Upper bound on nodes over the fabric's lifetime (elastic membership:
  // Fabric::AddNode admits fresh nodes up to this). 0 = num_nodes, i.e. a
  // fixed-size cluster. Per-link fault state and the index pseudo-link are
  // sized/positioned by this bound so they stay stable across hot-adds.
  int max_nodes = 0;
  uint64_t node_capacity_bytes = 1ull << 30;

  // Latency model, calibrated so a small READ round-trips in ~1.9 us and a
  // small WRITE in ~1.6 us, matching the paper's RAW baseline (§7.1).
  sim::Time one_way_delay = 680;      // ns
  sim::Time delay_jitter = 90;        // uniform +/- per direction
  sim::Time node_op_cost = 50;        // ns per verb at the node
  sim::Time read_extra = 250;         // extra ns for READs (PCIe read round at the node)
  sim::Time submit_cost = 200;        // ns of client CPU per doorbell (verb or batch)
  // ns of client CPU per WQE on top of the doorbell's fixed cost (real NICs
  // pay a small per-WQE increment; a pipelined series like WriteThenCas
  // carries two WQEs). Default 0 preserves the pure-doorbell model.
  sim::Time per_verb_cost = 0;
  // Per-doorbell WQE budget: real NICs bound how many work-queue entries one
  // doorbell write can post. A batch whose WQE count would exceed this rings
  // a fresh doorbell (charging submit_cost again, so a K-WQE burst costs
  // ceil(K/max) * submit_cost + K * per_verb_cost). 0 = unlimited (the
  // pre-limit model). The default is wide enough that quorum fan-outs up to
  // 7 replicas (14 WQEs with pipelined pairs) still ride one doorbell.
  int max_wqe_per_doorbell = 16;
  double bandwidth_bytes_per_ns = 12.5;  // 100 Gbps each direction

  // Virtual time after which an op against a crashed node completes locally
  // with kNodeFailed (models RC QP retry exhaustion / uKharon notification).
  sim::Time failure_detect_delay = 4000;

  // If true, writes larger than 8 B apply in two stages across the transfer
  // window so concurrent readers can tear.
  bool staged_large_writes = true;

  // If false, CpuBatch is inert and every verb pays its own submit_cost
  // (the sequential-submission model of the seed; kept for A/B benches).
  bool doorbell_batching = true;

  // --- Fault-injection hooks (the chaos engine, src/sim/chaos.h). ---
  //
  // Both are consulted once per NETWORK MESSAGE per direction (`response` =
  // false for the request leg, true for the completion leg) — a pipelined
  // WriteThenCas series is ONE message, and a READ whose request leg drops
  // never samples its response leg. A dropped request never reaches the
  // node; a dropped response applies the verb's effect at the node but
  // loses the completion — either way the client observes kNodeFailed after
  // failure_detect_delay, exactly like an op against a crashed node (RC
  // retry exhaustion). link_delay_fn returns extra one-way delay for the
  // given leg, sampled at that leg's scheduling instant. Unset hooks cost
  // nothing on the verb path.
  //
  // drop_fn additionally receives the issuing QP's chaos tag
  // (Qp::set_chaos_tag, -1 when untagged) so the chaos engine can target a
  // SINGLE client's queue pair — a flaky cable / dying NIC port rather than
  // a congested link. Non-verb paths (index RPCs) pass -1.
  using LinkDelayFn = std::function<sim::Time(int node, bool response)>;
  using DropFn = std::function<bool(int node, bool response, int qp_tag)>;
  LinkDelayFn link_delay_fn;
  DropFn drop_fn;
};

struct FabricStats {
  uint64_t ops_issued = 0;
  uint64_t bytes_to_nodes = 0;    // request headers + write payloads
  uint64_t bytes_from_nodes = 0;  // response headers + read payloads
  uint64_t casses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;

  // Doorbell accounting: `doorbells` counts submit_cost charges (one per
  // unbatched verb, one per batch); `batches` counts closed CpuBatches that
  // carried at least one verb; `batched_verbs` counts verbs that rode a
  // batch. Mean verbs per doorbell-batch = batched_verbs / batches.
  uint64_t doorbells = 0;
  uint64_t batches = 0;
  uint64_t batched_verbs = 0;
  // Extra doorbells rung because a batch exceeded max_wqe_per_doorbell.
  uint64_t doorbell_splits = 0;

  void Reset() { *this = FabricStats{}; }
  uint64_t total_io() const { return bytes_to_nodes + bytes_from_nodes; }
  double verbs_per_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_verbs) / static_cast<double>(batches);
  }
};

// Per-client CPU model. Worker coroutines that share a ClientCpu serialize
// their verb submissions on it; `busy_ns` accumulates for Table 3's CPU
// utilization metric.
class ClientCpu {
 public:
  explicit ClientCpu(sim::Simulator* sim) : sim_(sim) {}

  // Consumes `cost` ns of CPU, queueing behind earlier consumers. Used for
  // non-verb work (RPC marshalling); never joins a doorbell batch.
  sim::Task<void> Consume(sim::Time cost);

  // Verb-submission consumption. Standalone, behaves like
  // Consume(cost + wqe_cost) and counts one doorbell. While a batch is open
  // (see CpuBatch), the first verb charges `cost` once and every later verb
  // rides the same doorbell for free; all of them resume when the shared
  // submission completes. `wqe_cost` (FabricConfig::per_verb_cost times the
  // WQE count of this call) is charged per verb even inside a batch: a
  // K-verb doorbell consumes cost + K*per_verb_cost of CPU, with verbs
  // departing as their WQEs finish building. `wqes` is the WQE count this
  // call posts (2 for a pipelined WriteThenCas series); when a batch's
  // accumulated WQEs would exceed the configured per-doorbell budget, the
  // batch splits — this verb rings a fresh doorbell and pays submit_cost.
  sim::Task<void> Submit(sim::Time cost, sim::Time wqe_cost = 0, int wqes = 1);

  void BeginBatch() { batch_depth_ += enabled_ ? 1 : 0; }
  void EndBatch();
  bool batching() const { return batch_depth_ > 0; }

  // Wires doorbell accounting, the config switch, and the per-doorbell WQE
  // budget (0 = unlimited); done by Worker (and tests) once the owning
  // fabric is known. Idempotent.
  void Configure(FabricStats* stats, bool batching_enabled, int max_wqe_per_doorbell = 0) {
    stats_ = stats;
    enabled_ = batching_enabled;
    max_wqe_ = max_wqe_per_doorbell;
  }

  sim::Time busy_ns() const { return busy_ns_; }
  void ResetBusy() { busy_ns_ = 0; }

 private:
  sim::Simulator* sim_;
  FabricStats* stats_ = nullptr;
  sim::Time busy_until_ = 0;
  sim::Time busy_ns_ = 0;
  bool enabled_ = true;
  int batch_depth_ = 0;
  int max_wqe_ = 0;  // Per-doorbell WQE budget; 0 = unlimited.
  bool batch_charged_ = false;
  sim::Time batch_ready_ = 0;
  uint64_t batch_verbs_ = 0;
  int batch_wqes_ = 0;  // WQEs accumulated on the current doorbell.
};

// RAII doorbell batch: every verb submitted on `cpu` while this guard is
// alive shares one amortized submit_cost. The intended pattern is to open
// the guard, Spawn the coroutines that post the verbs (Spawn runs each until
// its first suspension, which is the verb's Submit), and close the guard
// before co_awaiting completions — i.e. the guard brackets the POSTING of
// work, not its completion. Nested guards join the outermost doorbell.
class CpuBatch {
 public:
  explicit CpuBatch(ClientCpu* cpu) : cpu_(cpu) {
    if (cpu_ != nullptr) {
      cpu_->BeginBatch();
    }
  }
  ~CpuBatch() {
    if (cpu_ != nullptr) {
      cpu_->EndBatch();
    }
  }
  CpuBatch(const CpuBatch&) = delete;
  CpuBatch& operator=(const CpuBatch&) = delete;

 private:
  ClientCpu* cpu_;
};

class Fabric;

// Client-side endpoint of a queue pair to one memory node. Each logical
// worker (one outstanding application operation) uses its own Qp set, as a
// real client would use a dedicated QP context per issuing thread.
class Qp {
 public:
  Qp(Fabric* fabric, int node, ClientCpu* cpu) : fabric_(fabric), node_(node), cpu_(cpu) {}

  // Marks this QP as the repair coordinator's channel: its verbs pass a
  // node's repair fence (MemoryNode::set_repair_fenced) and its epoch fence
  // (the coordinator drives the epoch transitions itself).
  void set_repair_channel(bool on) { repair_channel_ = on; }

  // Wires the issuing client's cached membership epoch: every verb is
  // stamped with `*epoch` at posting time and memory nodes reject stamps
  // older than their fence epoch (§5.4 QP revocation). Unwired QPs stamp
  // kNoFenceEpoch and pass every fence. `epoch` must outlive the QP (the
  // Worker keeps the ClientEpoch alive).
  void set_epoch(const uint64_t* epoch) { epoch_ = epoch; }

  // A verb completing kStaleEpoch REVOKES its QP: further verbs fail fast
  // with kStaleEpoch, locally, without touching the fabric — the node has
  // disconnected this client until it re-validates its membership epoch.
  // Worker::RefreshEpoch() re-arms the QP after the re-validation pull.
  bool revoked() const { return revoked_; }
  void Rearm() { revoked_ = false; }

  // Tags this QP for per-QP fault targeting (FabricConfig::DropFn). Chaos
  // scenarios tag every worker of client i with tag i; -1 = untargetable.
  void set_chaos_tag(int tag) { chaos_tag_ = tag; }
  int chaos_tag() const { return chaos_tag_; }

  // One-sided READ of [addr, addr+out.size()). The bytes are sampled at the
  // op's execution instant at the node and delivered at completion.
  sim::Task<OpResult> Read(uint64_t addr, std::span<uint8_t> out);

  // One-sided WRITE. Not atomic for payloads larger than 8 B.
  sim::Task<OpResult> Write(uint64_t addr, std::span<const uint8_t> data);

  // Atomic 64-bit compare-and-swap; OpResult::old_value holds the prior word.
  sim::Task<OpResult> Cas(uint64_t addr, uint64_t expected, uint64_t desired);

  // Pipelined WRITE followed by CAS on the same QP: executes in order at the
  // node, completes in ONE roundtrip total (§2.1 property 3; used by
  // In-n-Out's write, Fig. 3).
  sim::Task<OpResult> WriteThenCas(uint64_t waddr, std::span<const uint8_t> data, uint64_t caddr,
                                   uint64_t expected, uint64_t desired);

  int node() const { return node_; }

 private:
  friend class Fabric;
  Fabric* fabric_;
  int node_;
  ClientCpu* cpu_;
  bool repair_channel_ = false;
  bool revoked_ = false;
  const uint64_t* epoch_ = nullptr;  // Client's cached membership epoch.
  int chaos_tag_ = -1;
  sim::Time last_arrival_ = 0;  // FIFO ordering of executions at the node.

  uint64_t stamp() const { return epoch_ != nullptr ? *epoch_ : kNoFenceEpoch; }
  OpResult RevokedResult() const {
    OpResult r;
    r.status = Status::kStaleEpoch;
    return r;
  }
};

class Fabric {
 public:
  Fabric(sim::Simulator* sim, FabricConfig config);

  sim::Simulator* sim() { return sim_; }
  const FabricConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int max_nodes() const { return max_nodes_; }
  MemoryNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }

  // Hot-adds a brand-new (empty, serving-capable) memory node and returns
  // its id. The node inherits the current fence epoch so verbs stamped
  // before its admission epoch bump cannot land on it unnoticed. Fails an
  // assert beyond config.max_nodes — admission plans are sized up front.
  int AddNode();

  FabricStats& stats() { return stats_; }

  // Crashes node `i`: in-flight requests that have not yet executed and all
  // future ops fail after `failure_detect_delay`; memory contents are lost.
  void Crash(int i) { node(i).Crash(); }
  void Recover(int i) { node(i).Recover(); }
  // Crash-recover model: the node rejoins empty but with its allocation map
  // intact, so a repair coordinator (src/repair/) can write replica state
  // back into the pre-crash addresses.
  void RecoverPreservingLayout(int i) { node(i).Recover(/*preserve_reservations=*/true); }

  // Membership-epoch fence push: the membership service calls this on every
  // repair-relevant transition; verbs stamped with an older epoch are
  // rejected at EVERY node from this instant on (§5.4 QP revocation — the
  // membership service instructs all memory nodes at once).
  void SetFenceEpoch(uint64_t epoch) {
    fence_epoch_ = epoch;
    for (auto& n : nodes_) {
      n->set_fence_epoch(epoch);
    }
  }
  void SetFenceEnforced(bool on) {
    fence_enforced_ = on;
    for (auto& n : nodes_) {
      n->set_fence_enforced(on);
    }
  }

  // Pseudo-link id for the index service's RPC channel: the chaos hooks
  // (link_delay_fn / drop_fn) are keyed by link, and the index server rides
  // one more link beyond the memory nodes so fault scenarios can open
  // index/data inconsistency windows. chaos_link_count() sizes per-link
  // fault state. Both are anchored at max_nodes so they are STABLE across
  // node hot-adds (per-link chaos arrays never need to move).
  int index_link() const { return max_nodes_; }
  int chaos_link_count() const { return max_nodes_ + 1; }

  // Installs/replaces the chaos hooks after construction (the chaos engine
  // is built around an existing fabric). Pass {} to uninstall.
  void set_link_delay_fn(FabricConfig::LinkDelayFn fn) { config_.link_delay_fn = std::move(fn); }
  void set_drop_fn(FabricConfig::DropFn fn) { config_.drop_fn = std::move(fn); }

  sim::Time LinkExtraDelay(int node, bool response) {
    return config_.link_delay_fn ? config_.link_delay_fn(node, response) : 0;
  }
  bool DropMessage(int node, bool response, int qp_tag = -1) {
    return config_.drop_fn && config_.drop_fn(node, response, qp_tag);
  }

  // One direction of network latency including jitter.
  sim::Time SampleDelay();

  // NIC occupancy model: each verb occupies the target node's NIC engine for
  // its fixed processing cost, so offered verb rates beyond the per-node
  // service rate queue up (the fabric-saturation wall of §7.3). Payload
  // transfers overlap (DMA engines), so concurrent large ops still interleave
  // — and tear — at the memory.
  //
  // The engine serves messages in ARRIVAL order: this must be called AT a
  // message's arrival instant (it reserves from Now()). Reserving at issue
  // time — the old model — would let a network-delayed message block the
  // NIC for everything arriving earlier, an unphysical total order per node
  // that masked the §5.4 in-flight-verb window entirely (a repair could
  // never overtake a stranded verb). Per-QP FIFO is unaffected: it is
  // enforced on arrival instants by the Qp itself (RDMA orders a QP's
  // messages in the network, not at the NIC). Returns the service start.
  sim::Time ReserveNicAtArrival(int node, sim::Time service);

  // Total bytes of disaggregated memory allocated across all nodes.
  uint64_t TotalAllocated() const;

 private:
  friend class Qp;

  sim::Time TransferTime(uint64_t bytes) const {
    return static_cast<sim::Time>(static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns);
  }

  sim::Simulator* sim_;
  FabricConfig config_;
  int max_nodes_;
  uint64_t fence_epoch_ = 0;      // Applied to hot-added nodes on AddNode.
  bool fence_enforced_ = true;    // Likewise (epoch-fencing canary knob).
  std::vector<std::unique_ptr<MemoryNode>> nodes_;
  std::vector<sim::Time> nic_free_;
  FabricStats stats_;
};

// --- Doorbell-batched posting helpers. -------------------------------------
//
// All three open a CpuBatch, start every verb task (each runs until its
// Submit suspension, joining the shared doorbell), close the batch, and then
// await completions. Lazy tasks are required: the verbs must not have been
// started by the caller.

// Posts two verb tasks under one doorbell and resumes when both completed.
// The workhorse for pipelined pairs like [oop WRITE → slot CAS] next to an
// in-place WRITE, or DM-ABD's "write out-of-place while reading the word".
template <typename A, typename B>
sim::Task<std::pair<A, B>> PostBoth(ClientCpu* cpu, sim::Simulator* sim, sim::Task<A> a,
                                    sim::Task<B> b) {
  sim::Counter done(sim);
  auto ra = std::allocate_shared<A>(sim::PoolAlloc<A>{});
  auto rb = std::allocate_shared<B>(sim::PoolAlloc<B>{});
  {
    CpuBatch batch(cpu);
    sim::Spawn(sim::StoreInto(std::move(a), ra, done));
    sim::Spawn(sim::StoreInto(std::move(b), rb, done));
  }
  co_await done.WaitFor(2);
  co_return std::pair<A, B>{std::move(*ra), std::move(*rb)};
}

// Posts all verb tasks under one doorbell and resumes when every one has
// completed.
sim::Task<void> PostAll(ClientCpu* cpu, sim::Simulator* sim,
                        sim::PoolVec<sim::Task<void>> verbs);

// Posts N result-bearing verbs (possibly to different nodes) under one
// doorbell; resumes when all have completed, returning their results in
// order. The generic many-verb entry point for application code.
sim::Task<sim::PoolVec<OpResult>> PostMany(ClientCpu* cpu, sim::Simulator* sim,
                                           sim::PoolVec<sim::Task<OpResult>> verbs);

// Outcome of a first-quorum post, snapshotted at the instant the caller
// resumed. `results[i]` is meaningful only where `completed[i]` is set;
// stragglers that finish later update the (refcounted, pooled) shared block,
// never this snapshot.
struct [[nodiscard]] QuorumOutcome {
  bool reached = false;  // Quorum hit (false = timeout expired first).
  int completed_count = 0;
  sim::PoolVec<OpResult> results;
  sim::PoolVec<uint8_t> completed;  // 1 = results[i] valid.
};

// First-quorum variant of PostMany: posts every verb under one doorbell and
// resumes as soon as `quorum` of them completed (or `timeout` virtual ns
// elapsed, if >= 0). The remaining verbs keep running detached against a
// shared result block that they themselves keep alive — the caller's early
// resume can never turn a straggler's completion into a use-after-free (see
// the OpState pooling audit in fabric.cc). This is the fabric-level API the
// quorum protocols' resume-at-quorum behavior is built on.
sim::Task<QuorumOutcome> PostQuorum(ClientCpu* cpu, sim::Simulator* sim,
                                    sim::PoolVec<sim::Task<OpResult>> verbs, int quorum,
                                    sim::Time timeout = sim::kNoTimeout);

}  // namespace swarm::fabric

#endif  // SWARM_SRC_FABRIC_FABRIC_H_
