// Simulated RDMA fabric: latency/bandwidth model, queue pairs, failure
// injection, and IO accounting.
//
// This module is the hardware substitution for the paper's testbed (4 client
// servers + 4 memory nodes, ConnectX NICs, 100 Gbps switch). Timing model for
// one verb issued by a client:
//
//   submit:   the issuing worker consumes `submit_cost` on its client CPU
//             (models the 200+ ns cost of posting a series of RDMA work
//             requests, which causes the throughput wall of §7.2),
//   request:  one-way delay + jitter + payload/bandwidth,
//   execute:  the raw memory access at the node. Large writes apply in two
//             stages spread across the transfer window, so concurrent reads
//             can observe torn data (the non-atomicity In-n-Out handles),
//   response: one-way delay + jitter + payload/bandwidth,
//   complete: the awaiting coroutine resumes with the result.
//
// Ops on the same queue pair execute at the node in issue order (RDMA FIFO),
// which is what makes the pipelined WRITE→CAS of In-n-Out (§4.3) correct in a
// single roundtrip.

#ifndef SWARM_SRC_FABRIC_FABRIC_H_
#define SWARM_SRC_FABRIC_FABRIC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/fabric/memory_node.h"
#include "src/fabric/verbs.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace swarm::fabric {

struct FabricConfig {
  int num_nodes = 4;
  uint64_t node_capacity_bytes = 1ull << 30;

  // Latency model, calibrated so a small READ round-trips in ~1.9 us and a
  // small WRITE in ~1.6 us, matching the paper's RAW baseline (§7.1).
  sim::Time one_way_delay = 680;      // ns
  sim::Time delay_jitter = 90;        // uniform +/- per direction
  sim::Time node_op_cost = 50;        // ns per verb at the node
  sim::Time read_extra = 250;         // extra ns for READs (PCIe read round at the node)
  sim::Time submit_cost = 200;        // ns of client CPU per issued verb batch
  double bandwidth_bytes_per_ns = 12.5;  // 100 Gbps each direction

  // Virtual time after which an op against a crashed node completes locally
  // with kNodeFailed (models RC QP retry exhaustion / uKharon notification).
  sim::Time failure_detect_delay = 4000;

  // If true, writes larger than 8 B apply in two stages across the transfer
  // window so concurrent readers can tear.
  bool staged_large_writes = true;
};

struct FabricStats {
  uint64_t ops_issued = 0;
  uint64_t bytes_to_nodes = 0;    // request headers + write payloads
  uint64_t bytes_from_nodes = 0;  // response headers + read payloads
  uint64_t casses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;

  void Reset() { *this = FabricStats{}; }
  uint64_t total_io() const { return bytes_to_nodes + bytes_from_nodes; }
};

// Per-client CPU model. Worker coroutines that share a ClientCpu serialize
// their verb submissions on it; `busy_ns` accumulates for Table 3's CPU
// utilization metric.
class ClientCpu {
 public:
  explicit ClientCpu(sim::Simulator* sim) : sim_(sim) {}

  // Consumes `cost` ns of CPU, queueing behind earlier consumers.
  sim::Task<void> Consume(sim::Time cost);

  sim::Time busy_ns() const { return busy_ns_; }
  void ResetBusy() { busy_ns_ = 0; }

 private:
  sim::Simulator* sim_;
  sim::Time busy_until_ = 0;
  sim::Time busy_ns_ = 0;
};

class Fabric;

// Client-side endpoint of a queue pair to one memory node. Each logical
// worker (one outstanding application operation) uses its own Qp set, as a
// real client would use a dedicated QP context per issuing thread.
class Qp {
 public:
  Qp(Fabric* fabric, int node, ClientCpu* cpu) : fabric_(fabric), node_(node), cpu_(cpu) {}

  // One-sided READ of [addr, addr+out.size()). The bytes are sampled at the
  // op's execution instant at the node and delivered at completion.
  sim::Task<OpResult> Read(uint64_t addr, std::span<uint8_t> out);

  // One-sided WRITE. Not atomic for payloads larger than 8 B.
  sim::Task<OpResult> Write(uint64_t addr, std::span<const uint8_t> data);

  // Atomic 64-bit compare-and-swap; OpResult::old_value holds the prior word.
  sim::Task<OpResult> Cas(uint64_t addr, uint64_t expected, uint64_t desired);

  // Pipelined WRITE followed by CAS on the same QP: executes in order at the
  // node, completes in ONE roundtrip total (§2.1 property 3; used by
  // In-n-Out's write, Fig. 3).
  sim::Task<OpResult> WriteThenCas(uint64_t waddr, std::span<const uint8_t> data, uint64_t caddr,
                                   uint64_t expected, uint64_t desired);

  int node() const { return node_; }

 private:
  friend class Fabric;
  Fabric* fabric_;
  int node_;
  ClientCpu* cpu_;
  sim::Time last_arrival_ = 0;  // FIFO ordering of executions at the node.
};

class Fabric {
 public:
  Fabric(sim::Simulator* sim, FabricConfig config);

  sim::Simulator* sim() { return sim_; }
  const FabricConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  MemoryNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }

  FabricStats& stats() { return stats_; }

  // Crashes node `i`: in-flight requests that have not yet executed and all
  // future ops fail after `failure_detect_delay`; memory contents are lost.
  void Crash(int i) { node(i).Crash(); }
  void Recover(int i) { node(i).Recover(); }

  // One direction of network latency including jitter.
  sim::Time SampleDelay();

  // NIC occupancy model: each verb occupies the target node's NIC engine for
  // its fixed processing cost, so offered verb rates beyond the per-node
  // service rate queue up (the fabric-saturation wall of §7.3). Payload
  // transfers overlap (DMA engines), so concurrent large ops still interleave
  // — and tear — at the memory. Returns the execution start time.
  sim::Time ReserveNic(int node, sim::Time earliest, sim::Time service);

  // Total bytes of disaggregated memory allocated across all nodes.
  uint64_t TotalAllocated() const;

 private:
  friend class Qp;

  sim::Time TransferTime(uint64_t bytes) const {
    return static_cast<sim::Time>(static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns);
  }

  sim::Simulator* sim_;
  FabricConfig config_;
  std::vector<std::unique_ptr<MemoryNode>> nodes_;
  std::vector<sim::Time> nic_free_;
  FabricStats stats_;
};

}  // namespace swarm::fabric

#endif  // SWARM_SRC_FABRIC_FABRIC_H_
