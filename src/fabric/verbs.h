// Common types for the simulated one-sided verb interface.
//
// The fabric exposes exactly the capabilities SWARM assumes of disaggregated
// memory (§2.1 of the paper):
//   1. READ / WRITE of arbitrary buffers, with NO atomicity for buffers larger
//      than a word (concurrent large ops may tear / clobber),
//   2. an atomic 64-bit compare-and-swap,
//   3. FIFO pipelining of operations on the same queue pair, so that a WRITE
//      followed by a CAS executes in order at the node within one roundtrip.
// Memory nodes have no compute: every verb is a plain memory access.

#ifndef SWARM_SRC_FABRIC_VERBS_H_
#define SWARM_SRC_FABRIC_VERBS_H_

#include <cstdint>

namespace swarm::fabric {

// [[nodiscard]]: a verb status that goes unread is exactly the bug class the
// chaos engine kept catching (dropped commit-critical completions). Route
// intentional drops through swarm::DiscardStatus (src/util/discard.h).
enum class [[nodiscard]] Status : uint8_t {
  kOk = 0,
  // The target node crashed (or is unreachable); the op completed locally
  // with an error after the configured detection timeout.
  kNodeFailed = 1,
  // The node rejected the verb because it was stamped with a membership
  // epoch older than the cluster's last repair-relevant transition (§5.4
  // per-client QP revocation). The verb had NO effect and its completion
  // carries NO information about object state: the issuing client must
  // re-validate its membership epoch, re-arm its queue pairs and retry.
  kStaleEpoch = 2,
  // The verb targeted a region whose replica was migrated away (live
  // extent migration): ownership of the object has been flipped to a new
  // layout and this region is permanently retired. Like kStaleEpoch the
  // verb had NO effect, but the signal is per-REGION, not per-epoch: the
  // client's queue pair stays armed and the client re-locates the object
  // through the index instead of re-validating membership.
  kMovedReplica = 3,
};

struct [[nodiscard]] OpResult {
  Status status = Status::kOk;
  // For CAS: the value the word held just before the CAS executed.
  uint64_t old_value = 0;

  bool ok() const { return status == Status::kOk; }
};

// A client process's cached membership epoch, shared by all of its Workers
// and read by their Qps when stamping verbs. The membership service pushes
// epoch advances to subscribed clients after its detection delay; a client
// that learns it is stale (Status::kStaleEpoch) re-validates by pulling.
struct ClientEpoch {
  uint64_t value = 1;
};

// Verb stamp of a Qp with no wired ClientEpoch: passes every fence. Lets
// epoch-oblivious users (benchmarks, unit fixtures, the repair coordinator)
// keep working; chaos/linearizability harnesses wire real epochs.
inline constexpr uint64_t kNoFenceEpoch = ~0ull;

// Wire-overhead model used for IO accounting (Table 3): every verb carries a
// fixed header each way in addition to its payload.
constexpr uint64_t kVerbHeaderBytes = 40;
constexpr uint64_t kAckBytes = 16;

}  // namespace swarm::fabric

#endif  // SWARM_SRC_FABRIC_VERBS_H_
