// Coalescing interval map over [begin, end) byte ranges — the core container
// of the extent allocator (src/alloc/extent_allocator.h) and of the memory
// node's retired-region fence set (src/fabric/memory_node.h).
//
// Two indexes are kept in lock-step:
//   * by_addr_: begin -> end, ordered by address. Insertion coalesces with
//     adjacent intervals, removal splits — so the map always holds the
//     minimal set of maximal disjoint intervals, and overlap queries are
//     O(log n) regardless of how many allocations ever touched the range.
//   * by_size_: (length, begin), ordered by length. BestFit takes the
//     smallest interval that can satisfy an aligned request, which keeps
//     large extents intact for large requests (classic best-fit
//     anti-fragmentation, the property tests/alloc_test.cc pins).
//
// Remove() is lenient: it removes the INTERSECTION of the given range with
// the map. That is exactly what both users need — the allocator always
// removes ranges it just found, and the fence set's RestoreRegion must cope
// with a whole-extent fence being lifted slot-by-slot (migration flips
// convert one extent-granularity fence into per-slot fences).

#ifndef SWARM_SRC_ALLOC_FREE_MAP_H_
#define SWARM_SRC_ALLOC_FREE_MAP_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace swarm::alloc {

class FreeMap {
 public:
  static constexpr uint64_t kNone = ~0ull;

  // Inserts [begin, begin+len), coalescing with any adjacent or overlapping
  // intervals (overlap is tolerated so fence re-arming is idempotent).
  void Insert(uint64_t begin, uint64_t len) {
    if (len == 0) {
      return;
    }
    uint64_t end = begin + len;
    // Swallow every interval that overlaps or touches [begin, end).
    auto it = by_addr_.upper_bound(begin);
    if (it != by_addr_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= begin) {
        it = prev;
      }
    }
    while (it != by_addr_.end() && it->first <= end) {
      begin = std::min(begin, it->first);
      end = std::max(end, it->second);
      Unlink(it->first, it->second);
      it = by_addr_.erase(it);
    }
    by_addr_.emplace(begin, end);
    Link(begin, end);
  }

  // Removes the intersection of [begin, begin+len) with the map, splitting
  // intervals as needed. Bytes outside the map are ignored.
  void Remove(uint64_t begin, uint64_t len) {
    if (len == 0 || by_addr_.empty()) {
      return;
    }
    const uint64_t end = begin + len;
    auto it = by_addr_.upper_bound(begin);
    if (it != by_addr_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > begin) {
        it = prev;
      }
    }
    while (it != by_addr_.end() && it->first < end) {
      const uint64_t ib = it->first;
      const uint64_t ie = it->second;
      Unlink(ib, ie);
      it = by_addr_.erase(it);
      if (ib < begin) {
        by_addr_.emplace(ib, begin);
        Link(ib, begin);
      }
      if (ie > end) {
        by_addr_.emplace(end, ie);
        Link(end, ie);
        break;
      }
    }
  }

  // True when [begin, begin+len) intersects any interval. len == 0 is
  // treated as a 1-byte probe (same convention as MemoryNode::RegionRetired).
  bool Overlaps(uint64_t begin, uint64_t len) const {
    if (by_addr_.empty()) {
      return false;
    }
    const uint64_t end = begin + (len > 0 ? len : 1);
    auto it = by_addr_.upper_bound(begin);
    if (it != by_addr_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > begin) {
        return true;
      }
    }
    return it != by_addr_.end() && it->first < end;
  }

  // True when [begin, begin+len) lies entirely inside one interval.
  bool Contains(uint64_t begin, uint64_t len) const {
    if (by_addr_.empty()) {
      return false;
    }
    auto it = by_addr_.upper_bound(begin);
    if (it == by_addr_.begin()) {
      return false;
    }
    auto prev = std::prev(it);
    return prev->first <= begin && begin + len <= prev->second;
  }

  // Carves `len` bytes at `align` from the smallest interval that fits and
  // returns the aligned address, or kNone. Remainders are re-inserted, so a
  // carve never loses bytes to internal fragmentation.
  uint64_t BestFit(uint64_t len, uint64_t align) {
    assert(len > 0 && (align & (align - 1)) == 0);
    for (auto it = by_size_.lower_bound({len, 0}); it != by_size_.end(); ++it) {
      const uint64_t begin = it->second;
      const uint64_t end = begin + it->first;
      const uint64_t aligned = (begin + align - 1) & ~(align - 1);
      if (aligned + len > end) {
        continue;  // Alignment padding does not fit; try the next-larger one.
      }
      by_addr_.erase(begin);
      by_size_.erase(it);
      total_ -= end - begin;
      if (aligned > begin) {
        by_addr_.emplace(begin, aligned);
        Link(begin, aligned);
      }
      if (aligned + len < end) {
        by_addr_.emplace(aligned + len, end);
        Link(aligned + len, end);
      }
      return aligned;
    }
    return kNone;
  }

  uint64_t total() const { return total_; }
  uint64_t largest() const { return by_size_.empty() ? 0 : by_size_.rbegin()->first; }
  size_t interval_count() const { return by_addr_.size(); }
  bool empty() const { return by_addr_.empty(); }
  void clear() {
    by_addr_.clear();
    by_size_.clear();
    total_ = 0;
  }

  // Deterministic address-ordered walk: fn(begin, len).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [b, e] : by_addr_) {
      fn(b, e - b);
    }
  }

 private:
  void Link(uint64_t begin, uint64_t end) {
    by_size_.emplace(end - begin, begin);
    total_ += end - begin;
  }
  void Unlink(uint64_t begin, uint64_t end) {
    by_size_.erase({end - begin, begin});
    total_ -= end - begin;
  }

  std::map<uint64_t, uint64_t> by_addr_;                 // begin -> end
  std::set<std::pair<uint64_t, uint64_t>> by_size_;      // (len, begin)
  uint64_t total_ = 0;
};

}  // namespace swarm::alloc

#endif  // SWARM_SRC_ALLOC_FREE_MAP_H_
