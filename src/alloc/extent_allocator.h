// Extent + slab allocation for memory-node server memory.
//
// ExtentAllocator owns one contiguous byte range [base, limit) of a memory
// node and hands out variable-size extents by best-fit search over a
// coalescing FreeMap. Freed extents pass through a VIRTUAL-TIME quarantine
// before becoming allocatable again: the simulation's straggler lifetimes
// (retry budgets, chaos delay spikes, in-flight verbs pinned behind an epoch
// fence) are bounded by hundreds of microseconds, so a multi-millisecond
// quarantine guarantees that by the time an address is reused, no verb issued
// against its previous owner can still be in flight. That is what lets the
// system recycle addresses at all — the seed's bump allocator upheld
// "addresses are never reused" by never freeing.
//
// SlabAllocator sits on top for the fixed-size replica/log slots every store
// allocates per object: it carves uniform extents from the ExtentAllocator,
// divides each into slots of one size class, and serves AllocSlot/FreeSlot
// from per-extent free masks. Wholly-free extents are returned (through the
// quarantine). The extent is also the unit of repair harvests and migration
// fences: all slots of an extent are contiguous, so one RetireRegion interval
// fences a whole extent's worth of slots.
//
// Everything here is deterministic: ordered containers, no wall clock, no
// randomness — same call sequence, same addresses.

#ifndef SWARM_SRC_ALLOC_EXTENT_ALLOCATOR_H_
#define SWARM_SRC_ALLOC_EXTENT_ALLOCATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/alloc/free_map.h"

namespace swarm::alloc {

class ExtentAllocator {
 public:
  static constexpr uint64_t kNone = FreeMap::kNone;
  // Quarantine delay for freed extents, in virtual nanoseconds. Stragglers
  // that can still touch a freed range are bounded by retry budgets
  // (~12 x 10 us) plus extreme chaos spikes (>100 us); 5 ms dominates both
  // with an order of magnitude to spare and costs nothing in virtual time.
  static constexpr int64_t kQuarantineNs = 5'000'000;

  ExtentAllocator() = default;

  // (Re)initializes the allocator to own [base, limit), all free.
  void Reset(uint64_t base, uint64_t limit);

  // `now_fn` enables the free quarantine (virtual time source, usually the
  // simulator clock). Without it, Free() returns bytes to the free map
  // immediately — acceptable only for unit fixtures with no concurrency.
  void set_now_fn(std::function<int64_t()> now_fn) { now_fn_ = std::move(now_fn); }

  // Best-fit allocation; returns kNone when no extent fits even after
  // draining the ripe part of the quarantine.
  uint64_t Allocate(uint64_t size, uint64_t align = 8);

  // Returns [addr, addr+size) to the allocator, via quarantine if a time
  // source is wired.
  void Free(uint64_t addr, uint64_t size);

  uint64_t live_bytes() const { return live_bytes_; }
  // High-water end address: 1 + the highest byte ever handed out. The memory
  // node's Recover() memsets this range, and Table 3 reports it as the
  // allocated footprint, so it must be monotone even when extents are freed.
  uint64_t high_water() const { return high_water_; }
  uint64_t quarantined_bytes() const { return quarantined_bytes_; }
  const FreeMap& free_map() const { return free_; }
  uint64_t allocs() const { return allocs_; }
  uint64_t frees() const { return frees_; }

 private:
  void DrainRipe(bool force);

  struct Quarantined {
    uint64_t addr = 0;
    uint64_t size = 0;
    int64_t ripe_at = 0;
  };

  FreeMap free_;
  std::deque<Quarantined> quarantine_;  // FIFO by free time; ripe from front.
  std::function<int64_t()> now_fn_;
  uint64_t base_ = 0;
  uint64_t limit_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t high_water_ = 0;
  uint64_t quarantined_bytes_ = 0;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
};

// Fixed-size slot allocation over uniform extents.
class SlabAllocator {
 public:
  static constexpr uint64_t kNone = FreeMap::kNone;
  static constexpr int kSlotsPerExtent = 64;  // One free mask word per extent.

  SlabAllocator() = default;
  explicit SlabAllocator(ExtentAllocator* extents) : extents_(extents) {}
  void Reset(ExtentAllocator* extents);

  // Virtual-time source enabling the per-slot free quarantine. Freed slots
  // must not be reused while a straggler (a coroutine holding a raw layout
  // pointer past the layout's GC) could still touch them; the quarantine
  // outlives every bounded straggler, exactly like the extent-level one.
  void set_now_fn(std::function<int64_t()> fn) { now_fn_ = std::move(fn); }

  // Allocates one slot of `slot_bytes` (rounded up to 8). Returns kNone when
  // the underlying extent allocator is exhausted.
  uint64_t AllocSlot(uint64_t slot_bytes);

  // Frees the slot starting at `addr` (must be a slot address previously
  // returned by AllocSlot). The slot becomes reusable once its quarantine
  // ripens; wholly-free extents then go back to the extent allocator.
  // Returns false if `addr` is not a live slab slot.
  bool FreeSlot(uint64_t addr);

  struct Extent {
    uint64_t base = 0;
    uint64_t bytes = 0;       // base..base+bytes covers all slots.
    uint64_t slot_bytes = 0;  // Size class.
    int live_slots = 0;
  };

  // Extent descriptor for any address inside a slab extent, or nullptr.
  const Extent* ExtentOf(uint64_t addr) const;

  uint64_t live_slots() const { return live_slots_; }
  size_t extent_count() const { return extents_by_base_.size(); }

 private:
  struct ExtentState {
    Extent ext;
    uint64_t free_mask = 0;  // Bit i set = slot i free.
  };
  struct SizeClass {
    std::vector<uint64_t> partial;  // Extent bases with at least one free slot.
  };

  void DrainRipeSlots(bool force);
  bool ReleaseSlot(uint64_t addr);

  struct QuarantinedSlot {
    uint64_t addr = 0;
    int64_t ripe_at = 0;
  };

  ExtentAllocator* extents_ = nullptr;
  std::map<uint64_t, ExtentState> extents_by_base_;
  std::map<uint64_t, SizeClass> classes_;  // slot_bytes -> state
  std::deque<QuarantinedSlot> slot_quarantine_;  // FIFO by free time.
  std::set<uint64_t> quarantined_addrs_;  // Double-free guard while pending.
  std::function<int64_t()> now_fn_;
  uint64_t live_slots_ = 0;
};

}  // namespace swarm::alloc

#endif  // SWARM_SRC_ALLOC_EXTENT_ALLOCATOR_H_
