#include "src/alloc/extent_allocator.h"

#include <cassert>

namespace swarm::alloc {

void ExtentAllocator::Reset(uint64_t base, uint64_t limit) {
  assert(base <= limit);
  base_ = base;
  limit_ = limit;
  free_.clear();
  if (limit > base) {
    free_.Insert(base, limit - base);
  }
  quarantine_.clear();
  live_bytes_ = 0;
  high_water_ = base;
  quarantined_bytes_ = 0;
  allocs_ = 0;
  frees_ = 0;
}

void ExtentAllocator::DrainRipe(bool force) {
  const int64_t now = now_fn_ ? now_fn_() : 0;
  while (!quarantine_.empty() &&
         (force || quarantine_.front().ripe_at <= now)) {
    const Quarantined& q = quarantine_.front();
    free_.Insert(q.addr, q.size);
    quarantined_bytes_ -= q.size;
    quarantine_.pop_front();
  }
}

uint64_t ExtentAllocator::Allocate(uint64_t size, uint64_t align) {
  assert(size > 0);
  DrainRipe(/*force=*/false);
  uint64_t addr = free_.BestFit(size, align);
  if (addr == kNone && !quarantine_.empty()) {
    // OOM pressure overrides the quarantine: capacity exhaustion in the seed
    // was a hard assert, so reusing a not-yet-ripe range beats dying. In
    // practice this only fires in deliberately tiny unit fixtures.
    DrainRipe(/*force=*/true);
    addr = free_.BestFit(size, align);
  }
  if (addr == kNone) {
    return kNone;
  }
  ++allocs_;
  live_bytes_ += size;
  if (addr + size > high_water_) {
    high_water_ = addr + size;
  }
  return addr;
}

void ExtentAllocator::Free(uint64_t addr, uint64_t size) {
  assert(size > 0 && addr >= base_ && addr + size <= limit_);
  ++frees_;
  live_bytes_ -= size;
  if (!now_fn_) {
    free_.Insert(addr, size);
    return;
  }
  quarantine_.push_back({addr, size, now_fn_() + kQuarantineNs});
  quarantined_bytes_ += size;
}

void SlabAllocator::Reset(ExtentAllocator* extents) {
  extents_ = extents;
  extents_by_base_.clear();
  classes_.clear();
  slot_quarantine_.clear();
  quarantined_addrs_.clear();
  live_slots_ = 0;
}

void SlabAllocator::DrainRipeSlots(bool force) {
  const int64_t now = now_fn_ ? now_fn_() : 0;
  while (!slot_quarantine_.empty() &&
         (force || slot_quarantine_.front().ripe_at <= now)) {
    const uint64_t addr = slot_quarantine_.front().addr;
    slot_quarantine_.pop_front();
    quarantined_addrs_.erase(addr);
    ReleaseSlot(addr);
  }
}

uint64_t SlabAllocator::AllocSlot(uint64_t slot_bytes) {
  assert(extents_ != nullptr && slot_bytes > 0);
  slot_bytes = (slot_bytes + 7) & ~uint64_t{7};
  DrainRipeSlots(/*force=*/false);
  SizeClass& cls = classes_[slot_bytes];
  if (cls.partial.empty()) {
    const uint64_t bytes = slot_bytes * kSlotsPerExtent;
    uint64_t fresh = extents_->Allocate(bytes, /*align=*/64);
    if (fresh == kNone && !slot_quarantine_.empty()) {
      // OOM pressure overrides the slot quarantine (mirrors the extent-level
      // escape hatch: only deliberately tiny fixtures get here).
      DrainRipeSlots(/*force=*/true);
      if (cls.partial.empty()) {
        fresh = extents_->Allocate(bytes, /*align=*/64);
      }
    }
    if (cls.partial.empty()) {
      if (fresh == kNone) {
        return kNone;
      }
      ExtentState st;
      st.ext = {fresh, bytes, slot_bytes, 0};
      st.free_mask = ~uint64_t{0};
      extents_by_base_.emplace(fresh, st);
      cls.partial.push_back(fresh);
    }
  }
  const uint64_t base = cls.partial.back();
  ExtentState& st = extents_by_base_.at(base);
  assert(st.free_mask != 0);
  const int slot = __builtin_ctzll(st.free_mask);
  assert(slot >= 0 && slot < kSlotsPerExtent);
  st.free_mask &= ~(uint64_t{1} << slot);
  ++st.ext.live_slots;
  ++live_slots_;
  if (st.free_mask == 0) {
    cls.partial.pop_back();
  }
  return base + static_cast<uint64_t>(slot) * slot_bytes;
}

bool SlabAllocator::FreeSlot(uint64_t addr) {
  // Validate before queueing so a bogus/double free is reported immediately.
  const Extent* ext = ExtentOf(addr);
  if (ext == nullptr || (addr - ext->base) % ext->slot_bytes != 0) {
    return false;
  }
  auto probe = extents_by_base_.find(ext->base);
  const int probe_slot = static_cast<int>((addr - ext->base) / ext->slot_bytes);
  if (probe->second.free_mask & (uint64_t{1} << probe_slot)) {
    return false;  // Already free.
  }
  if (quarantined_addrs_.count(addr) != 0) {
    return false;  // Already pending.
  }
  if (!now_fn_) {
    return ReleaseSlot(addr);
  }
  slot_quarantine_.push_back({addr, now_fn_() + ExtentAllocator::kQuarantineNs});
  quarantined_addrs_.insert(addr);
  return true;
}

bool SlabAllocator::ReleaseSlot(uint64_t addr) {
  auto it = extents_by_base_.upper_bound(addr);
  if (it == extents_by_base_.begin()) {
    return false;
  }
  --it;
  ExtentState& st = it->second;
  if (addr >= st.ext.base + st.ext.bytes) {
    return false;
  }
  const uint64_t off = addr - st.ext.base;
  if (off % st.ext.slot_bytes != 0) {
    return false;
  }
  const int slot = static_cast<int>(off / st.ext.slot_bytes);
  const uint64_t bit = uint64_t{1} << slot;
  if (st.free_mask & bit) {
    return false;  // Double free.
  }
  const bool was_full = st.free_mask == 0;
  st.free_mask |= bit;
  --st.ext.live_slots;
  --live_slots_;
  SizeClass& cls = classes_[st.ext.slot_bytes];
  if (st.ext.live_slots == 0) {
    // Return the whole extent. Erase from the partial list wherever it is
    // (it is usually at the back — slots free in bursts per extent).
    for (size_t i = cls.partial.size(); i-- > 0;) {
      if (cls.partial[i] == st.ext.base) {
        cls.partial.erase(cls.partial.begin() + static_cast<long>(i));
        break;
      }
    }
    extents_->Free(st.ext.base, st.ext.bytes);
    extents_by_base_.erase(it);
    return true;
  }
  if (was_full) {
    cls.partial.push_back(st.ext.base);
  }
  return true;
}

const SlabAllocator::Extent* SlabAllocator::ExtentOf(uint64_t addr) const {
  auto it = extents_by_base_.upper_bound(addr);
  if (it == extents_by_base_.begin()) {
    return nullptr;
  }
  --it;
  const ExtentState& st = it->second;
  if (addr >= st.ext.base + st.ext.bytes) {
    return nullptr;
  }
  return &st.ext;
}

}  // namespace swarm::alloc
