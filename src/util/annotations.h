// Source annotations consumed by the static-analysis suite (tools/lint/).
//
// SWARM_HOT_PATH marks a function as steady-state hot path: it must not
// reach a heap allocation (raw `new`, `std::function`, allocating standard
// containers). The runtime complement is tests/zero_alloc_test.cc, which
// counts operator-new calls over warm measured rounds; the static check
// (tools/lint/check_protocol_invariants.py, pass `swarm-hot-path-alloc`)
// catches the regression at lint time instead of at test time, and also
// covers code paths the zero-alloc harness does not execute.
//
// Under clang the macro expands to [[clang::annotate("swarm::hot_path")]]
// so AST-level tooling sees it; under gcc (which warns on unknown
// attribute namespaces) it expands to nothing — the lint suite recognises
// the macro token itself, so the check works identically on both.

#ifndef SWARM_SRC_UTIL_ANNOTATIONS_H_
#define SWARM_SRC_UTIL_ANNOTATIONS_H_

#if defined(__clang__)
#define SWARM_HOT_PATH [[clang::annotate("swarm::hot_path")]]
#else
#define SWARM_HOT_PATH
#endif

#endif  // SWARM_SRC_UTIL_ANNOTATIONS_H_
