// The ONE sanctioned way to drop a [[nodiscard]] status on the floor.
//
// Every status-bearing type in this tree (fabric::Status / OpResult /
// QuorumOutcome, kv::KvStatus / KvResult, swarm's per-protocol results,
// repair::RepairOutcome / MigrateStatus) is [[nodiscard]]: the chaos engine's
// headline catches — FUSEE's fire-and-forget backup index-slot clear (PR 6,
// seed 12115), the swallowed commit-critical phase-3 statuses (PR 2) — were
// all silently dropped statuses, so the compiler now refuses the silent drop.
//
// When a drop IS the intended semantics (a best-effort cache prefetch, a
// canary deliberately reproducing a bug, a fire-and-forget hint whose failure
// the protocol tolerates by design), route it through DiscardStatus() with a
// justification comment at the call site. `git grep DiscardStatus` then
// enumerates every intentional drop in the tree; the static-analysis suite
// (tools/lint/) treats DiscardStatus as the only recognised sink and flags
// `(void)`-casts of status types as evasion.

#ifndef SWARM_SRC_UTIL_DISCARD_H_
#define SWARM_SRC_UTIL_DISCARD_H_

namespace swarm {

// Consumes and ignores a status-bearing value, on purpose. The empty body
// compiles away entirely; the call exists for the reader and for grep.
template <typename T>
constexpr void DiscardStatus(T&& /*status*/) noexcept {}

}  // namespace swarm

#endif  // SWARM_SRC_UTIL_DISCARD_H_
