#include "src/hash/xxhash.h"

#include <cstring>

namespace swarm::hash {
namespace {

constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ull;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ull;
constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ull;
constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ull;

uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

uint64_t Xxh64(std::span<const uint8_t> data, uint64_t seed) {
  const uint8_t* p = data.data();
  const uint8_t* end = p + data.size();
  uint64_t h;

  if (data.size() >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);

    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }

  return Avalanche(h);
}

uint64_t HashMetaAndValue(uint64_t metadata, std::span<const uint8_t> value) {
  // Equivalent to hashing the concatenation, but avoids a copy: seed the
  // value hash with an avalanche of the metadata word.
  return Xxh64(value, Avalanche(metadata * kPrime1 + kPrime5));
}

uint64_t Mix64(uint64_t a, uint64_t b) {
  return Avalanche(a * kPrime1 + b * kPrime2 + kPrime4);
}

}  // namespace swarm::hash
