// From-scratch implementation of the xxHash64 algorithm (Yann Collet).
//
// The paper's artifact uses xxHash3 to validate In-n-Out's in-place data;
// any fast 64-bit non-cryptographic hash with good avalanche works. We
// implement classic XXH64, verified against the reference test vectors in
// tests/hash_test.cc, plus a convenience mixer for hashing a (metadata,
// value) pair as In-n-Out does (§4.3).

#ifndef SWARM_SRC_HASH_XXHASH_H_
#define SWARM_SRC_HASH_XXHASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace swarm::hash {

// XXH64 of `data` with the given seed.
uint64_t Xxh64(std::span<const uint8_t> data, uint64_t seed = 0);

// Hash of an 8-byte metadata word concatenated (logically) with a value
// buffer. This is In-n-Out's integrity hash: the in-place copy of a value is
// valid only if it matches the (timestamp, out-of-place pointer) metadata.
uint64_t HashMetaAndValue(uint64_t metadata, std::span<const uint8_t> value);

// Stateless 64-bit mix of two words (used for key placement / slot hashing).
uint64_t Mix64(uint64_t a, uint64_t b);

}  // namespace swarm::hash

#endif  // SWARM_SRC_HASH_XXHASH_H_
