#include "src/stats/histogram.h"

#include <bit>

namespace swarm::stats {

size_t LatencyHistogram::BucketFor(uint64_t v) {
  if (v < (1u << kMinorBits)) {
    return static_cast<size_t>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kMinorBits;
  const uint64_t minor = (v >> shift) & ((1u << kMinorBits) - 1);
  const size_t bucket = static_cast<size_t>((msb - kMinorBits + 1) << kMinorBits) +
                        static_cast<size_t>(minor);
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

uint64_t LatencyHistogram::BucketLow(size_t bucket) {
  if (bucket < (1u << kMinorBits)) {
    return bucket;
  }
  const size_t major = (bucket >> kMinorBits) - 1;
  const uint64_t minor = bucket & ((1u << kMinorBits) - 1);
  return ((1ull << kMinorBits) | minor) << major;
}

sim::Time LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target) {
      return static_cast<sim::Time>(BucketLow(b));
    }
  }
  return max_;
}

std::vector<std::pair<double, double>> LatencyHistogram::Cdf(size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (count_ == 0) {
    return points;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) {
      continue;
    }
    cumulative += buckets_[b];
    points.emplace_back(static_cast<double>(BucketLow(b)) / 1e3,
                        100.0 * static_cast<double>(cumulative) / static_cast<double>(count_));
  }
  if (points.size() > max_points) {
    std::vector<std::pair<double, double>> thinned;
    const double step = static_cast<double>(points.size()) / static_cast<double>(max_points);
    for (double i = 0; i < static_cast<double>(points.size()); i += step) {
      thinned.push_back(points[static_cast<size_t>(i)]);
    }
    thinned.push_back(points.back());
    return thinned;
  }
  return points;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  if (other.count_ > 0 && (count_ == other.count_ || other.min_ < min_)) {
    min_ = other.min_;
  }
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace swarm::stats
