// Latency recording and summary statistics for the benchmark harness.
//
// LatencyHistogram records virtual-time latencies with fixed relative
// precision (log-linear buckets, HdrHistogram-style) and produces
// percentiles, means, and CDF series like the ones plotted in the paper's
// figures.

#ifndef SWARM_SRC_STATS_HISTOGRAM_H_
#define SWARM_SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace swarm::stats {

class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  void Record(sim::Time latency_ns) {
    if (latency_ns < 0) {
      latency_ns = 0;
    }
    ++buckets_[BucketFor(static_cast<uint64_t>(latency_ns))];
    ++count_;
    sum_ += static_cast<uint64_t>(latency_ns);
    if (latency_ns > max_) {
      max_ = latency_ns;
    }
    if (count_ == 1 || latency_ns < min_) {
      min_ = latency_ns;
    }
  }

  uint64_t count() const { return count_; }
  sim::Time min() const { return count_ == 0 ? 0 : min_; }
  sim::Time max() const { return max_; }
  double MeanUs() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_) / 1e3;
  }

  // p in [0, 100].
  sim::Time Percentile(double p) const;
  double PercentileUs(double p) const { return static_cast<double>(Percentile(p)) / 1e3; }

  // CDF points (latency_us, percentile) suitable for plotting; at most
  // `max_points` entries.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 200) const;

  void Merge(const LatencyHistogram& other);
  void Reset();

 private:
  // Log-linear: 64 major (power-of-two) buckets x 32 minor = <3.2% error.
  static constexpr int kMinorBits = 5;
  static constexpr int kNumBuckets = 64 << kMinorBits;

  static size_t BucketFor(uint64_t v);
  static uint64_t BucketLow(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  sim::Time min_ = 0;
  sim::Time max_ = 0;
};

}  // namespace swarm::stats

#endif  // SWARM_SRC_STATS_HISTOGRAM_H_
