#include "src/ycsb/workload.h"

#include "src/hash/xxhash.h"

namespace swarm::ycsb {

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // Exact sum for small n, Euler-Maclaurin style approximation beyond: the
  // YCSB core computes zeta incrementally; for our key counts (<= 16M) the
  // approximation error is far below the noise of the experiments.
  constexpr uint64_t kExact = 1 << 20;
  double sum = 0;
  const uint64_t limit = n < kExact ? n : kExact;
  for (uint64_t i = 1; i <= limit; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > kExact) {
    // ∫ x^-theta dx from kExact to n.
    sum += (std::pow(static_cast<double>(n), 1 - theta) -
            std::pow(static_cast<double>(kExact), 1 - theta)) /
           (1 - theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
  threshold_ = 1.0 + std::pow(0.5, theta);
}

uint64_t ZipfianGenerator::Next(sim::Rng& rng) {
  const double u = rng.Double();
  const double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < threshold_) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) {
      rank = n_ - 1;
    }
  }
  // Scramble so popular keys spread over the keyspace (fnv-style scatter,
  // like YCSB's ScrambledZipfian).
  return hash::Mix64(rank, 0x59435342) % n_;
}

std::vector<uint8_t> Workload::ValueFor(uint64_t key, uint64_t version) const {
  std::vector<uint8_t> value(cfg_.value_size);
  uint64_t state = hash::Mix64(key, version);
  for (size_t i = 0; i < value.size(); ++i) {
    if (i % 8 == 0) {
      state = hash::Mix64(state, i);
    }
    value[i] = static_cast<uint8_t>(state >> ((i % 8) * 8));
  }
  return value;
}

}  // namespace swarm::ycsb
