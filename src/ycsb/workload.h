// YCSB workload generation (§7, "Workloads").
//
// The paper evaluates with YCSB A (50% gets / 50% updates) and B (95% / 5%)
// under a Zipfian(0.99) key popularity distribution. We implement the
// standard YCSB Zipfian generator (Gray et al.'s rejection-free method used
// by the YCSB core), a uniform alternative, and deterministic value
// generation keyed by (key, version).

#ifndef SWARM_SRC_YCSB_WORKLOAD_H_
#define SWARM_SRC_YCSB_WORKLOAD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/sim/random.h"

namespace swarm::ycsb {

// Zipfian generator over [0, n) with exponent theta (YCSB default 0.99).
// Popular items are spread across the keyspace by a multiplicative hash so
// that hot keys do not cluster on one memory node.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(sim::Rng& rng);

  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double threshold_;  // zeta(2, theta) precomputed pieces.
};

class UniformGenerator {
 public:
  explicit UniformGenerator(uint64_t n) : n_(n) {}
  uint64_t Next(sim::Rng& rng) { return rng.Below(n_); }

 private:
  uint64_t n_;
};

enum class OpType : uint8_t { kGet = 0, kUpdate = 1, kInsert = 2, kRemove = 3 };

struct WorkloadConfig {
  uint64_t num_keys = 100000;
  double get_fraction = 0.95;  // Workload B; A uses 0.5.
  bool zipfian = true;
  double zipf_theta = 0.99;
  uint32_t value_size = 64;
};

inline WorkloadConfig WorkloadA(uint64_t keys = 100000, uint32_t value_size = 64) {
  WorkloadConfig cfg;
  cfg.num_keys = keys;
  cfg.get_fraction = 0.5;
  cfg.value_size = value_size;
  return cfg;
}

inline WorkloadConfig WorkloadB(uint64_t keys = 100000, uint32_t value_size = 64) {
  WorkloadConfig cfg;
  cfg.num_keys = keys;
  cfg.get_fraction = 0.95;
  cfg.value_size = value_size;
  return cfg;
}

// Per-worker operation stream.
class Workload {
 public:
  Workload(const WorkloadConfig& cfg, uint64_t seed)
      : cfg_(cfg), rng_(seed), zipf_(cfg.num_keys, cfg.zipf_theta), uniform_(cfg.num_keys) {}

  struct Op {
    OpType type;
    uint64_t key;
  };

  Op Next() {
    Op op;
    op.type = rng_.Chance(cfg_.get_fraction) ? OpType::kGet : OpType::kUpdate;
    op.key = cfg_.zipfian ? zipf_.Next(rng_) : uniform_.Next(rng_);
    return op;
  }

  // Deterministic value payload for a (key, version) pair.
  std::vector<uint8_t> ValueFor(uint64_t key, uint64_t version) const;

  const WorkloadConfig& config() const { return cfg_; }
  sim::Rng& rng() { return rng_; }

 private:
  WorkloadConfig cfg_;
  sim::Rng rng_;
  ZipfianGenerator zipf_;
  UniformGenerator uniform_;
};

}  // namespace swarm::ycsb

#endif  // SWARM_SRC_YCSB_WORKLOAD_H_
