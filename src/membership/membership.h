// Membership service (a uKharon [22] stand-in).
//
// The paper relies on uKharon, a microsecond-scale membership manager, for
// two things: letting clients learn about memory-node failures without
// waiting for per-operation timeouts, and fencing suspected clients so that
// out-of-place buffers can be recycled safely (§4.5, §5.4).
//
// We model it as a centralized observer with a configurable detection delay:
// when a node crashes, every subscribed client's known-failed set is updated
// `detection_delay` later; clients that queried earlier learn through their
// own op timeouts, exactly as in the paper's failover experiment (§7.7).
// Client leases support the recycler extension: a client that stops renewing
// its lease is suspected and (in the model) fenced from the fabric.
//
// --- The membership epoch (§5.4 per-client QP revocation) -----------------
//
// The service keeps a monotonically increasing EPOCH that advances on every
// repair-relevant transition: a node crash, a restart-for-repair
// (BeginRepair) and a readmission (CompleteRepair). Each advance is pushed
// to all memory nodes IMMEDIATELY (the membership service instructs the
// nodes, as uKharon instructs them to disconnect suspected clients) and to
// subscribed clients after the detection delay.
//
// Clients stamp every verb with their cached epoch (Worker → Qp →
// ClientEpoch); a node rejects any verb stamped with an epoch older than its
// fence epoch, completing it as kStaleEpoch — a completion that proves
// NOTHING about object state. The rejection also revokes the issuing QP
// client-side: further verbs on it fail fast until the client re-validates
// its epoch with the service (ValidateEpoch, the pull path that works even
// for a client whose push notifications never arrive) and re-arms its QPs
// (Worker::RefreshEpoch).
//
// Why this closes the crash-repair residual window: the repair fence
// (set_repair_fenced) only rejects verbs that EXECUTE while the node is
// mid-repair. A verb already in flight across the WHOLE cycle — issued
// before the crash, executing after readmission, possibly at a SURVIVOR
// whose state the repair already harvested — passes that fence and would be
// trusted (e.g. a TryLock CAS completing a lock majority the lock
// restoration could not see). With epoch fencing, any verb stamped before
// the crash is rejected everywhere from the crash instant on, so no
// completion that straddles a repair can ever count toward a quorum.
//
// The epoch_fencing knob exists ONLY for the chaos canary gallery: disabling
// it reproduces the pre-fix behavior so the suites can demonstrate they
// catch the violation.
//
// --- Elastic membership: the node lifecycle state model ------------------
//
// A memory node moves through five lifecycle states:
//
//     join ──> syncing ──> serving ──> draining ──> retired
//
//   * JOIN     (AdmitNode): the node is powered on and reachable — clients
//     can open queue pairs to it — but no object layout references it and
//     placement must not choose it. It holds no data.
//   * SYNCING  (the MigrationService rebalance): extents are being copied
//     onto the node from surviving quorums. Each extent becomes visible to
//     clients only through its atomic ownership flip (index generation bump
//     + source-region retirement); until a flip commits, the extent's reads
//     and writes keep going to the old owner. The node needs NO quorum
//     exclusion in this state: nothing references it until a flip, and a
//     flipped layout is fully installed.
//   * SERVING  (CompleteJoin): placement includes the node; it is a normal
//     replica holder. All pre-existing nodes start here.
//   * DRAINING (BeginDrain): placement excludes the node for NEW objects and
//     the MigrationService moves its extents away one by one, but the node
//     keeps serving every extent it still owns — a drain under full traffic
//     is invisible to clients except for per-extent relocation NACKs
//     (kMovedReplica) at flip instants.
//   * RETIRED  (Decommission): all extents are gone; the node is switched
//     off. Retirement is crash-like for the fabric (verbs time out) and
//     advances the membership epoch so stragglers bounce, but unlike a
//     crash nothing needs repair — the node owns nothing. Retired nodes are
//     never crash/restart candidates for the chaos engine and never rejoin;
//     re-admission of hardware is modeled as a fresh AdmitNode.
//
// The `repairing` flag stays ORTHOGONAL to the lifecycle: a serving node
// that crash-recovers is repaired in place (src/repair/repair.h) whatever
// its state, and migrate-vs-repair arbitration is the MigrationService's
// job, not the membership's.

#ifndef SWARM_SRC_MEMBERSHIP_MEMBERSHIP_H_
#define SWARM_SRC_MEMBERSHIP_MEMBERSHIP_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace swarm::membership {

// Lifecycle state of a memory node (see the header comment). The syncing
// phase is not a distinct state here: it is kJoining/kDraining WHILE the
// MigrationService has a plan in flight for the node.
enum class NodeState : uint8_t {
  kServing = 0,
  kJoining = 1,
  kDraining = 2,
  kRetired = 3,
};

class MembershipService {
 public:
  MembershipService(sim::Simulator* sim, fabric::Fabric* fabric,
                    sim::Time detection_delay = 50 * sim::kMicrosecond,
                    sim::Time lease_duration = 1 * sim::kMillisecond)
      : sim_(sim), fabric_(fabric), detection_delay_(detection_delay),
        lease_duration_(lease_duration),
        repairing_(std::make_shared<std::vector<bool>>(
            static_cast<size_t>(fabric->num_nodes()), false)),
        serving_(std::make_shared<std::vector<bool>>(
            static_cast<size_t>(fabric->num_nodes()), true)),
        states_(static_cast<size_t>(fabric->num_nodes()), NodeState::kServing) {}

  // --- Memory-node monitoring ---

  // Registers a client's known-failed vector for push notification.
  void Subscribe(std::shared_ptr<std::vector<bool>> known_failed) {
    subscribers_.push_back(std::move(known_failed));
  }

  // Registers a client's cached epoch for push notification: each
  // repair-relevant transition is pushed `detection_delay` later. A client
  // that is NOT subscribed (the chaos suites' "client that never learns")
  // only advances through the kStaleEpoch→ValidateEpoch pull path.
  void SubscribeEpoch(std::shared_ptr<fabric::ClientEpoch> epoch) {
    epoch_subscribers_.push_back(std::move(epoch));
  }

  // Crashes `node` on the fabric and notifies subscribers after the
  // detection delay. The overload with an explicit delay scripts a slow (or
  // fast) detection sweep for this one event — the chaos engine uses it to
  // model uKharon under load.
  void CrashNode(int node) { CrashNode(node, detection_delay_); }
  void CrashNode(int node, sim::Time detection_delay) {
    fabric_->Crash(node);
    AdvanceEpoch();  // In-flight verbs must not outlive the crash (§5.4).
    PushEpoch(detection_delay);
    NotifyFailed(node, true, detection_delay);
  }

  void RecoverNode(int node) { RecoverNode(node, detection_delay_); }
  void RecoverNode(int node, sim::Time detection_delay) {
    fabric_->Recover(node);
    NotifyFailed(node, false, detection_delay);
  }

  // Scripts the baseline detection delay for subsequent crash/recover
  // notifications (a chaos "detection sweep" slows or speeds the service).
  void set_detection_delay(sim::Time d) { detection_delay_ = d; }

  // --- Crash-recover repair lifecycle (src/repair/repair.h) ---
  //
  // A restarted memory node must not serve quorum operations until a repair
  // coordinator has rebuilt its replica slots from surviving quorums. The
  // per-node `repairing` flag is that gate: Workers share the vector and
  // quorum selection (src/swarm/) excludes flagged nodes entirely — they
  // neither receive protocol verbs nor count toward any majority. Only the
  // repair coordinator itself addresses a repairing node (directly, replica
  // by replica).

  // Restarts `node` with its allocation map preserved, marks it repairing,
  // and FENCES it: every verb except the repair coordinator's keeps failing
  // (an in-flight verb issued against the crashed node must not execute
  // against the wiped-but-alive memory). Subscribers are NOT notified — the
  // node stays in their known-failed sets until CompleteRepair.
  void BeginRepair(int node) {
    fabric_->RecoverPreservingLayout(node);
    fabric_->node(node).set_repair_fenced(true);
    (*repairing_)[static_cast<size_t>(node)] = true;
    AdvanceEpoch();  // Restart-for-repair is a repair-relevant transition.
    PushEpoch(detection_delay_);
  }

  // Readmits a repaired node: lifts the fence, clears the repairing flag
  // immediately and pushes the recovery notification after the detection
  // delay.
  void CompleteRepair(int node) {
    fabric_->node(node).set_repair_fenced(false);
    (*repairing_)[static_cast<size_t>(node)] = false;
    // Readmission advances the epoch BEFORE the fence lifts takes effect for
    // stale clients: a verb issued under the pre-repair view that lands on
    // the freshly restored replicas must bounce, not be trusted.
    AdvanceEpoch();
    PushEpoch(detection_delay_);
    NotifyFailed(node, false, detection_delay_);
  }

  // A repair that gave up (no surviving quorum within its retry budget)
  // leaves the node excluded — safe, merely unavailable — until a later
  // readmission triggers a re-repair (repair::RepairService dark-slot
  // bookkeeping).
  bool IsRepairing(int node) const {
    const auto idx = static_cast<size_t>(node);
    return idx < repairing_->size() && (*repairing_)[idx];
  }
  const std::shared_ptr<std::vector<bool>>& repairing() const { return repairing_; }

  // --- Elastic membership (node lifecycle; see the header comment) ---

  // Admits a brand-new memory node: hot-adds it on the fabric (bounded by
  // FabricConfig::max_nodes) in state kJoining — reachable, empty, excluded
  // from placement until CompleteJoin. Grows every per-node shared vector in
  // place so pre-existing clients see a consistent view. Returns the new
  // node id, or -1 if the fabric is at its lifetime bound.
  int AdmitNode() {
    const int id = fabric_->AddNode();
    if (id < 0) {
      return -1;
    }
    const auto n = static_cast<size_t>(id) + 1;
    repairing_->resize(n, false);
    serving_->resize(n, false);
    states_.resize(n, NodeState::kJoining);
    for (auto& s : subscribers_) {
      if (s->size() < n) {
        s->resize(n, false);
      }
    }
    return id;
  }

  // Joining → serving: the MigrationService finished installing the node's
  // share of extents; placement may now choose it for new objects.
  void CompleteJoin(int node) {
    SetState(node, NodeState::kServing, /*serving=*/true);
  }

  // Serving → draining: placement stops choosing the node, the
  // MigrationService starts moving its extents away. The node keeps serving
  // every extent it still owns.
  void BeginDrain(int node) {
    SetState(node, NodeState::kDraining, /*serving=*/false);
  }

  // Draining → retired: all extents are gone; switch the node off. Crash-like
  // for the fabric (a retired node answers nothing), epoch-bumped so verbs
  // still in flight toward it cannot be trusted anywhere — but nothing needs
  // repair, because a fully drained node owns nothing.
  void Decommission(int node) {
    SetState(node, NodeState::kRetired, /*serving=*/false);
    fabric_->Crash(node);
    AdvanceEpoch();
    PushEpoch(detection_delay_);
    NotifyFailed(node, true, detection_delay_);
  }

  NodeState State(int node) const {
    const auto idx = static_cast<size_t>(node);
    return idx < states_.size() ? states_[idx] : NodeState::kServing;
  }
  bool IsRetired(int node) const { return State(node) == NodeState::kRetired; }
  // Chaos crash/restart targeting: a retired node is switched off — crashing
  // it is meaningless and restarting it would resurrect a ghost.
  bool CrashEligible(int node) const { return !IsRetired(node); }

  // Placement filter, shared with the KV stores like `repairing()`: serving_
  // lists which nodes placement may choose. Object layouts created before a
  // membership change keep their nodes regardless — only the MigrationService
  // moves existing extents.
  const std::shared_ptr<std::vector<bool>>& serving() const { return serving_; }
  bool IsServing(int node) const {
    const auto idx = static_cast<size_t>(node);
    return idx < serving_->size() && (*serving_)[idx];
  }

  // An extent ownership flip is a repair-relevant transition (§5.4): verbs
  // stamped before the flip must not be trusted as evidence about the moved
  // extent. The MigrationService bumps the epoch at each flip instant.
  void NoteOwnershipFlip() {
    AdvanceEpoch();
    PushEpoch(detection_delay_);
  }

  // --- Membership epoch (see the header comment) ---

  uint64_t epoch() const { return epoch_; }

  // The pull path: a client that learned it is stale (kStaleEpoch)
  // re-validates its view. Modeled as instantaneous service state; the
  // caller (Worker::RefreshEpoch) pays the network roundtrip.
  uint64_t ValidateEpoch() const { return epoch_; }

  // CANARY knob: with fencing off the epoch still advances, is still pushed
  // and still reaches the nodes, but they stop ENFORCING it — verbs stamped
  // before a crash-repair cycle land and are trusted (each counted in
  // MemoryNode::stale_landings), the pre-fix behavior the chaos canary must
  // catch. Production configurations leave this on.
  void set_epoch_fencing(bool on) {
    epoch_fencing_ = on;
    // Via the fabric so nodes hot-added later inherit the setting.
    fabric_->SetFenceEnforced(on);
  }

  // --- Client leases (for the memory recycler, §4.5/§5.4) ---

  void RegisterClient(uint32_t client_id) {
    leases_[client_id] = sim_->Now() + lease_duration_;
  }

  void RenewLease(uint32_t client_id) {
    if (fenced_.count(client_id) != 0) {
      return;  // Disconnected: renewals can no longer reach the service.
    }
    auto it = leases_.find(client_id);
    if (it != leases_.end()) {
      it->second = sim_->Now() + lease_duration_;
    }
  }

  // A client whose lease expired (or who was fenced) is suspected; the
  // membership service would instruct memory nodes to disconnect it so it
  // can no longer access freed memory (§5.4).
  bool IsSuspected(uint32_t client_id) const {
    if (fenced_.count(client_id) != 0) {
      return true;
    }
    auto it = leases_.find(client_id);
    return it == leases_.end() || it->second < sim_->Now();
  }

  // Permanently disconnects a suspected client (§5.4: memory nodes reject
  // its accesses). Fencing is STICKY: once someone acted on the suspicion —
  // e.g. the recycler reused memory the client could still reference — a
  // late lease renewal must not resurrect it.
  void Fence(uint32_t client_id) { fenced_.insert(client_id); }
  bool IsFenced(uint32_t client_id) const { return fenced_.count(client_id) != 0; }

  // Scripted lease expiry: immediately suspects `client_id` as if its lease
  // had run out (chaos's "client appears dead to the membership service").
  // A later RenewLease resurrects it — unless it was fenced meanwhile —
  // modeling a network-partitioned client coming back.
  void ExpireLease(uint32_t client_id) {
    auto it = leases_.find(client_id);
    if (it != leases_.end()) {
      it->second = sim_->Now() - 1;
    }
  }

  bool HasRegisteredClients() const { return !leases_.empty(); }

  // Registered lease holders, sorted by id — a deterministic order for the
  // chaos engine's target picks (unordered_map iteration is not).
  std::vector<uint32_t> RegisteredClients() const {
    std::vector<uint32_t> ids;
    ids.reserve(leases_.size());
    for (const auto& [id, expiry] : leases_) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  sim::Time detection_delay() const { return detection_delay_; }
  sim::Time lease_duration() const { return lease_duration_; }

 private:
  void AdvanceEpoch() {
    ++epoch_;
    fabric_->SetFenceEpoch(epoch_);  // Nodes learn immediately (uKharon push).
  }

  void SetState(int node, NodeState state, bool serving) {
    const auto idx = static_cast<size_t>(node);
    if (idx >= states_.size()) {
      states_.resize(idx + 1, NodeState::kServing);
      serving_->resize(idx + 1, true);
    }
    states_[idx] = state;
    (*serving_)[idx] = serving;
  }

  // Pushes `node`'s failed/recovered bit to subscribed clients after the
  // detection delay, growing vectors that predate a hot-added node.
  void NotifyFailed(int node, bool failed, sim::Time detection_delay) {
    sim_->After(detection_delay, [this, node, failed] {
      const auto idx = static_cast<size_t>(node);
      for (auto& s : subscribers_) {
        if (s->size() <= idx) {
          s->resize(idx + 1, false);
        }
        (*s)[idx] = failed;
      }
    });
  }

  // Pushes the epoch-at-transition to subscribed clients after the detection
  // delay. max(): pushes may be delivered out of order when detection delays
  // differ per event, and a client's cached epoch must never regress.
  void PushEpoch(sim::Time detection_delay) {
    const uint64_t e = epoch_;
    sim_->After(detection_delay, [this, e] {
      for (auto& s : epoch_subscribers_) {
        s->value = std::max(s->value, e);
      }
    });
  }

  sim::Simulator* sim_;
  fabric::Fabric* fabric_;
  sim::Time detection_delay_;
  sim::Time lease_duration_;
  std::vector<std::shared_ptr<std::vector<bool>>> subscribers_;
  std::vector<std::shared_ptr<fabric::ClientEpoch>> epoch_subscribers_;
  std::unordered_map<uint32_t, sim::Time> leases_;
  std::unordered_set<uint32_t> fenced_;
  std::shared_ptr<std::vector<bool>> repairing_;
  std::shared_ptr<std::vector<bool>> serving_;
  std::vector<NodeState> states_;
  uint64_t epoch_ = 1;
  bool epoch_fencing_ = true;
};

}  // namespace swarm::membership

#endif  // SWARM_SRC_MEMBERSHIP_MEMBERSHIP_H_
