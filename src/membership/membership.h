// Membership service (a uKharon [22] stand-in).
//
// The paper relies on uKharon, a microsecond-scale membership manager, for
// two things: letting clients learn about memory-node failures without
// waiting for per-operation timeouts, and fencing suspected clients so that
// out-of-place buffers can be recycled safely (§4.5, §5.4).
//
// We model it as a centralized observer with a configurable detection delay:
// when a node crashes, every subscribed client's known-failed set is updated
// `detection_delay` later; clients that queried earlier learn through their
// own op timeouts, exactly as in the paper's failover experiment (§7.7).
// Client leases support the recycler extension: a client that stops renewing
// its lease is suspected and (in the model) fenced from the fabric.

#ifndef SWARM_SRC_MEMBERSHIP_MEMBERSHIP_H_
#define SWARM_SRC_MEMBERSHIP_MEMBERSHIP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace swarm::membership {

class MembershipService {
 public:
  MembershipService(sim::Simulator* sim, fabric::Fabric* fabric,
                    sim::Time detection_delay = 50 * sim::kMicrosecond,
                    sim::Time lease_duration = 1 * sim::kMillisecond)
      : sim_(sim), fabric_(fabric), detection_delay_(detection_delay),
        lease_duration_(lease_duration) {}

  // --- Memory-node monitoring ---

  // Registers a client's known-failed vector for push notification.
  void Subscribe(std::shared_ptr<std::vector<bool>> known_failed) {
    subscribers_.push_back(std::move(known_failed));
  }

  // Crashes `node` on the fabric and notifies subscribers after the
  // detection delay.
  void CrashNode(int node) {
    fabric_->Crash(node);
    sim_->After(detection_delay_, [this, node] {
      for (auto& s : subscribers_) {
        (*s)[static_cast<size_t>(node)] = true;
      }
    });
  }

  void RecoverNode(int node) {
    fabric_->Recover(node);
    sim_->After(detection_delay_, [this, node] {
      for (auto& s : subscribers_) {
        (*s)[static_cast<size_t>(node)] = false;
      }
    });
  }

  // --- Client leases (for the memory recycler, §4.5/§5.4) ---

  void RegisterClient(uint32_t client_id) {
    leases_[client_id] = sim_->Now() + lease_duration_;
  }

  void RenewLease(uint32_t client_id) {
    auto it = leases_.find(client_id);
    if (it != leases_.end()) {
      it->second = sim_->Now() + lease_duration_;
    }
  }

  // A client whose lease expired is suspected; the membership service would
  // instruct memory nodes to disconnect it so it can no longer access freed
  // memory (§5.4).
  bool IsSuspected(uint32_t client_id) const {
    auto it = leases_.find(client_id);
    return it == leases_.end() || it->second < sim_->Now();
  }

  sim::Time detection_delay() const { return detection_delay_; }

 private:
  sim::Simulator* sim_;
  fabric::Fabric* fabric_;
  sim::Time detection_delay_;
  sim::Time lease_duration_;
  std::vector<std::shared_ptr<std::vector<bool>>> subscribers_;
  std::unordered_map<uint32_t, sim::Time> leases_;
};

}  // namespace swarm::membership

#endif  // SWARM_SRC_MEMBERSHIP_MEMBERSHIP_H_
