// FUSEE baseline (§7, "Baselines"; Shen et al., FAST '23): a fully
// memory-disaggregated key-value store with a synchronous replication
// scheme, re-implemented as a roundtrip-faithful model on our fabric.
//
// Characteristics reproduced from the paper's description and Table 2:
//  * 2 replicas tolerate 1 failure (synchronous replication needs only f+1).
//  * updates are out-of-place and take 4 roundtrips (write blocks to both
//    replicas; CAS the primary index slot; update backup slot + invalidate
//    the old block; commit), 5 on CAS conflicts (hot keys).
//  * gets take 1 roundtrip when the client's cached block location is
//    fresh; keys recently modified by other clients cost a second roundtrip
//    (the old block forwards to the index/new block). Uncached gets read
//    the on-node index slot first: 2 roundtrips.
//  * a memory-node failure stops progress until a multi-phase recovery
//    (log scanning, state transfer, role changes) completes — tens of
//    milliseconds (§7.7), vs. SWARM-KV's no-downtime failover.

#ifndef SWARM_SRC_KV_FUSEE_KV_H_
#define SWARM_SRC_KV_FUSEE_KV_H_

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/index/client_cache.h"
#include "src/kv/kv_types.h"
#include "src/swarm/placement.h"
#include "src/repair/repair.h"
#include "src/swarm/worker.h"

namespace swarm::kv {

// State shared by every FUSEE client: key directory (bucket addresses are
// computable from key hashes in real FUSEE, so lookups cost no roundtrip),
// and the recovery state machine.
//
// As a RepairableStore, FUSEE's crash-recover repair is the paper's
// log-scan recovery made index-guided: the directory names every index slot
// and block the recovered node hosted, and each is rebuilt from the
// surviving replica. All client progress blocks while a repair runs —
// FUSEE's synchronous-replication recovery semantics (§7.7) — and the node
// resumes its roles only when the repair completed.
class FuseeStore : public repair::RepairableStore {
 public:
  FuseeStore(fabric::Fabric* fabric, sim::Time recovery_duration = 40 * sim::kMillisecond)
      : fabric_(fabric), recovery_duration_(recovery_duration) {}

  struct KeyMeta {
    int primary = -1;
    int backup = -1;
    uint64_t index_addr_primary = 0;  // 8 B index slot on the primary node.
    uint64_t index_addr_backup = 0;
    // Bookkeeping stand-in for FUSEE's log-based GC: the backup-side block of
    // the current version, recycled when the next update supersedes it.
    uint32_t last_backup_oop = 0;
    // Bumped by every migration flip. Sessions snapshot it per attempt: GC
    // bookkeeping observed across a flip must be skipped — the fields now
    // describe the NEW home, and "freeing the superseded backup block" would
    // free the migration's live copy.
    uint64_t moves = 0;
  };

  fabric::Fabric* fabric() { return fabric_; }
  sim::Time recovery_duration() const { return recovery_duration_; }

  // Finds or creates the per-key metadata (bucket allocation). New keys are
  // placed on the serving set (set_serving); hot-added or draining nodes
  // receive no new keys.
  KeyMeta& MetaFor(uint64_t key);

  // Which nodes receive NEW key placements (membership's `serving` vector).
  // Unset = every fabric node, the pre-elasticity behavior.
  void set_serving(std::shared_ptr<const std::vector<bool>> serving) {
    serving_ = std::move(serving);
  }

  // --- Live migration (src/repair/migration.h's per-key flow, FUSEE-shaped) ---
  //
  // Moves the key's replica off `from` by re-homing BOTH index slots to
  // freshly allocated ones (the surviving role keeps its node but still gets
  // a new slot address): fence both old 8 B slots (MemoryNode::RetireRegion)
  // so no client CAS can commit any more, harvest the primary slot's word
  // once through `worker` (which rides the repair channel, passing the
  // fence) — final, because post-fence commits are impossible — install
  // fresh block copies + words at the new home, then flip the directory
  // entry in place. Block regions are never fenced: a block is unreachable
  // without an index word, and generation checks make recycling safe.
  // `disable_flip_fence` is the ownership-flip canary (the linearizability
  // checker must catch the stale-slot commits it permits). Returns false
  // when the key was skipped (source busy: recovery or repair in flight) or
  // the copy failed — then the fences were restored and the directory is
  // untouched.
  sim::Task<bool> MigrateKey(uint64_t key, int from, Worker* worker,
                             bool disable_flip_fence = false);

  // Drains every key hosted by `node` (one MigrateKey per key, key-sorted).
  // Returns the number of keys still on the node afterwards (0 = clean).
  sim::Task<uint64_t> MigrateNode(int node, Worker* worker, bool disable_flip_fence = false);

  uint64_t keys_moved() const { return keys_moved_; }
  uint64_t keys_aborted() const { return keys_aborted_; }

  // --- Recovery state machine (§7.7) ---
  bool InRecovery() const {
    return fabric_->sim()->Now() < recovering_until_ || repairing_ > 0;
  }
  sim::Time recovering_until() const { return recovering_until_; }
  void StartRecovery(int failed_node);
  bool NodeFailed(int node) const {
    // Hot-added nodes (Fabric::AddNode) can outgrow the vector; absent means
    // never failed.
    const auto idx = static_cast<size_t>(node);
    return idx < failed_nodes_.size() && failed_nodes_[idx];
  }

  // --- Crash-recover repair (src/repair/repair.h) ---
  sim::Task<repair::RepairOutcome> RepairNode(int node, Worker* worker,
                                              const repair::RepairConfig& config) override;
  void OnRepairBegin(int node) override {
    (void)node;
    ++repairing_;  // Synchronous replication: all progress stops. Counted,
                   // not a flag: concurrent repairs of DIFFERENT nodes
                   // (max_crashed > 1) must each hold the gate.
  }
  void OnRepairComplete(int node, bool readmitted) override {
    --repairing_;
    const auto idx = static_cast<size_t>(node);
    if (readmitted && idx < failed_nodes_.size()) {
      failed_nodes_[idx] = false;  // Roles restored.
    }
  }

  uint64_t NextGeneration() { return next_gen_++; }

  uint64_t ModeledIndexBytes() const { return directory_.size() * 2 * 8; }

  // Inverse placement registry: the ordered key set each node hosts (as
  // primary or backup). Repair and drain walk THIS — O(keys-on-node), not
  // O(directory) — and migration flips keep it current.
  uint64_t KeysOn(int node) const {
    const auto idx = static_cast<size_t>(node);
    return idx < node_keys_.size() ? node_keys_[idx].size() : 0;
  }

 private:
  void RegisterKey(uint64_t key, int primary, int backup);
  void ReplaceHome(uint64_t key, int old_primary, int old_backup, int new_primary, int new_backup);
  fabric::Fabric* fabric_;
  sim::Time recovery_duration_;
  sim::Time recovering_until_ = 0;
  int repairing_ = 0;
  std::vector<bool> failed_nodes_ = std::vector<bool>(16, false);
  uint64_t next_gen_ = 1;
  uint64_t keys_moved_ = 0;
  uint64_t keys_aborted_ = 0;
  std::shared_ptr<const std::vector<bool>> serving_;
  PlacementProbe place_;  // Minimal-remap placement over the serving set.
  std::unordered_map<uint64_t, KeyMeta> directory_;
  std::vector<std::set<uint64_t>> node_keys_;  // node -> keys hosted (ordered).
};

class FuseeKvSession : public KvSession {
 public:
  FuseeKvSession(Worker* worker, FuseeStore* store, index::ClientCache* cache)
      : worker_(worker), store_(store), cache_(cache) {}

  sim::Task<KvResult> Get(uint64_t key) override;
  sim::Task<KvResult> Update(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Insert(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Remove(uint64_t key) override;

 private:
  // Blocks until any ongoing recovery completes; returns false if the key is
  // wholly unavailable (both replicas failed).
  sim::Task<bool> AwaitUsable(const FuseeStore::KeyMeta& meta);

  // The node currently serving a key's index + primary blocks.
  int ActingPrimary(const FuseeStore::KeyMeta& meta) const;

  // Reacts to a failed fabric op: kicks off recovery.
  sim::Task<void> OnNodeFailure(int node);

  sim::Task<KvResult> WriteInternal(uint64_t key, std::span<const uint8_t> value, bool expect_new);

  // The per-node commit-log slot this session reuses (FUSEE's log is
  // circular; one slot models its tail).
  uint32_t LogSlot(int node);

  Worker* worker_;
  FuseeStore* store_;
  index::ClientCache* cache_;
  std::vector<uint32_t> log_slots_;
};

}  // namespace swarm::kv

#endif  // SWARM_SRC_KV_FUSEE_KV_H_
