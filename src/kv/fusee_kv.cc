#include "src/kv/fusee_kv.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/hash/xxhash.h"
#include "src/sim/sync.h"
#include "src/swarm/placement.h"
#include "src/util/discard.h"

namespace swarm::kv {
namespace {

// Index slot word: [generation:40][block oop:24]; 0 = key absent.
uint64_t PackIndexWord(uint64_t gen, uint32_t oop) {
  return (gen << kOopBits) | (oop & kOopMask);
}
uint64_t GenOf(uint64_t word) { return word >> kOopBits; }
uint32_t OopOf(uint64_t word) { return static_cast<uint32_t>(word & kOopMask); }

// Block header word: [generation:56][flags:8].
constexpr uint64_t kBlockValid = 1;
constexpr uint64_t kBlockForwarded = 2;

uint64_t PackHeader(uint64_t gen, uint64_t flags) { return (gen << 8) | flags; }
uint64_t HeaderGen(uint64_t hdr) { return hdr >> 8; }
bool HeaderHas(uint64_t hdr, uint64_t flag) { return (hdr & flag) != 0; }

// A verb bounced off a migration's slot fence: a per-region no-effect NACK.
// NOT a node failure — starting FUSEE's multi-phase recovery for it would
// stall the whole store 40 ms on a healthy node. The client invalidates its
// cache, waits out a slice of the copy window, and retries; the directory
// flip is picked up because sessions re-read the KeyMeta fields each attempt.
bool Moved(const fabric::OpResult& r) { return r.status == fabric::Status::kMovedReplica; }

// How long a bounced client waits before re-consulting the directory, and
// how many bounces it absorbs without burning its attempt budget. The fenced
// window lasts one quorum copy (a handful of roundtrips plus the migration's
// retry rounds), so a dozen 10 us waits spans it comfortably.
constexpr sim::Time kMovedRetryDelay = 10 * sim::kMicrosecond;
constexpr int kMovedRetryBudget = 12;

}  // namespace

FuseeStore::KeyMeta& FuseeStore::MetaFor(uint64_t key) {
  auto it = directory_.find(key);
  if (it != directory_.end()) {
    return it->second;
  }
  KeyMeta meta;
  const int n = fabric_->num_nodes();
  const uint64_t h = hash::Mix64(key, 0x465553454545);  // "FUSEE"
  int nodes[2];
  place_.Pick(h, 2, n, serving_.get(), nodes);
  meta.primary = nodes[0];
  meta.backup = nodes[1];
  // 8 B index slots come from the slab (size class 8) so a node's slots
  // cluster into extents the repair/migration walks can harvest together.
  meta.index_addr_primary = fabric_->node(meta.primary).AllocSlot(8);
  meta.index_addr_backup = fabric_->node(meta.backup).AllocSlot(8);
  RegisterKey(key, meta.primary, meta.backup);
  return directory_.emplace(key, meta).first->second;
}

void FuseeStore::StartRecovery(int failed_node) {
  const auto idx = static_cast<size_t>(failed_node);
  if (idx >= failed_nodes_.size()) {
    failed_nodes_.resize(idx + 1, false);  // Hot-added node ids grow the map.
  }
  failed_nodes_[idx] = true;
  const sim::Time until = fabric_->sim()->Now() + recovery_duration_;
  if (until > recovering_until_) {
    recovering_until_ = until;
  }
}

uint32_t FuseeKvSession::LogSlot(int node) {
  // Re-check the size on every call, not just the first: a node hot-added
  // since this session's first write (elastic membership) must get a slot.
  const auto needed = static_cast<size_t>(worker_->fabric()->num_nodes());
  if (log_slots_.size() < needed) {
    log_slots_.resize(needed, 0);
  }
  uint32_t& slot = log_slots_[static_cast<size_t>(node)];
  if (slot == 0) {
    slot = worker_->pool(node).AllocIdx();
  }
  return slot;
}

int FuseeKvSession::ActingPrimary(const FuseeStore::KeyMeta& meta) const {
  return store_->NodeFailed(meta.primary) ? meta.backup : meta.primary;
}

sim::Task<void> FuseeKvSession::OnNodeFailure(int node) {
  // Synchronous replication: accurate failure detection + multi-phase
  // recovery (log scan, state transfer, role change) before any progress.
  store_->StartRecovery(node);
  co_await worker_->sim()->WaitUntil(store_->recovering_until());
}

sim::Task<bool> FuseeKvSession::AwaitUsable(const FuseeStore::KeyMeta& meta) {
  while (store_->InRecovery()) {
    const sim::Time until = store_->recovering_until();
    if (until > worker_->sim()->Now()) {
      co_await worker_->sim()->WaitUntil(until);
    } else {
      // Repair-driven recovery has no scripted end time: poll until the
      // coordinator readmits (or abandons) the node.
      co_await worker_->sim()->Delay(5 * sim::kMicrosecond);
    }
  }
  co_return !(store_->NodeFailed(meta.primary) && store_->NodeFailed(meta.backup));
}

namespace {

struct BlockParse {
  bool ok = false;
  uint64_t hdr = 0;
  uint64_t aux = 0;
  sim::Bytes bytes;
};

BlockParse ParseBlock(sim::Bytes block, uint32_t max_value, uint64_t word) {
  BlockParse p;
  std::memcpy(&p.hdr, block.data(), 8);
  std::memcpy(&p.aux, block.data() + 8, 8);
  if (HeaderHas(p.hdr, kBlockValid) && !HeaderHas(p.hdr, kBlockForwarded) &&
      HeaderGen(p.hdr) == GenOf(word) && p.aux <= max_value) {
    p.ok = true;
    p.bytes.assign(block.begin() + kOopHeaderBytes,
                   block.begin() + kOopHeaderBytes + static_cast<long>(p.aux));
  }
  return p;
}

}  // namespace

void FuseeStore::RegisterKey(uint64_t key, int primary, int backup) {
  const auto need = static_cast<size_t>(std::max(primary, backup)) + 1;
  if (node_keys_.size() < need) {
    node_keys_.resize(need);
  }
  node_keys_[static_cast<size_t>(primary)].insert(key);
  node_keys_[static_cast<size_t>(backup)].insert(key);
}

void FuseeStore::ReplaceHome(uint64_t key, int old_primary, int old_backup, int new_primary,
                             int new_backup) {
  node_keys_[static_cast<size_t>(old_primary)].erase(key);
  node_keys_[static_cast<size_t>(old_backup)].erase(key);
  RegisterKey(key, new_primary, new_backup);
}

sim::Task<repair::RepairOutcome> FuseeStore::RepairNode(int node, Worker* worker,
                                                        const repair::RepairConfig& config) {
  (void)config;  // FUSEE keeps no tombstones: a removed key IS the zero slot.
  repair::RepairOutcome out;
  out.complete = true;
  // Index-guided log scan over the node's inverse registry: O(keys-on-node),
  // not O(directory). The set is ordered, so the walk replays
  // deterministically; snapshot it first (concurrent inserts may grow it).
  std::vector<uint64_t> keys;
  if (static_cast<size_t>(node) < node_keys_.size()) {
    const std::set<uint64_t>& hosted = node_keys_[static_cast<size_t>(node)];
    keys.assign(hosted.begin(), hosted.end());
  }
  out.slots_walked = keys.size();
  const uint32_t max_value = worker->config().max_value;
  // The repair coordinator's verbs ride the repair channel, which passes the
  // epoch fence by construction (§5.4 applies to clients, not the entity
  // driving the epoch transition) — so these loops legitimately have no
  // kStaleEpoch arm.
  // NOLINTNEXTLINE(swarm-retry-stale-epoch)
  for (uint64_t key : keys) {
    KeyMeta& meta = directory_.find(key)->second;
    const int src = meta.primary == node ? meta.backup : meta.primary;
    // Per-key survivor check: the source replica must be alive AND not
    // itself mid-repair. With concurrent repairs (max_crashed > 1) the other
    // replica can be a wiped node whose rebuild is still running — the
    // repair channel passes its rejoin fence, so without this check the
    // coordinator would read zeros there and install "absent" as truth.
    if (NodeFailed(src) || worker->NodeQuorumExcluded(src)) {
      ++out.slots_failed;  // No surviving replica (yet): retry next round.
      out.complete = false;
      continue;
    }
    const uint64_t src_addr =
        src == meta.primary ? meta.index_addr_primary : meta.index_addr_backup;
    const uint64_t dst_addr =
        node == meta.primary ? meta.index_addr_primary : meta.index_addr_backup;
    bool done = false;
    uint32_t installed_oop = 0;
    // NOLINTNEXTLINE(swarm-retry-stale-epoch) repair channel: fence-exempt.
    for (int attempt = 0; attempt < 4 && !done; ++attempt) {
      std::array<uint8_t, 8> ibuf{};
      fabric::OpResult ir = co_await worker->qp(src).Read(src_addr, ibuf);
      if (!ir.ok()) {
        break;
      }
      uint64_t word;
      std::memcpy(&word, ibuf.data(), 8);
      if (word == 0) {
        // Key deleted (possibly after an earlier attempt installed a copy):
        // the recovered slot must read absent, and any earlier attempt's
        // block is unreachable and recyclable.
        if (installed_oop != 0) {
          worker->pool(node).Free(installed_oop);
          installed_oop = 0;
        }
        sim::Bytes zero(8, 0);
        fabric::OpResult zr = co_await worker->qp(node).Write(dst_addr, zero);
        if (!zr.ok()) {
          break;
        }
        // Re-validate like the non-zero path: an insert already past the
        // recovery gate may have re-created the key on the source meanwhile,
        // and finalizing the zero would lose its acknowledged write at the
        // next failover.
        std::array<uint8_t, 8> rbuf{};
        fabric::OpResult rr = co_await worker->qp(src).Read(src_addr, rbuf);
        if (!rr.ok()) {
          break;
        }
        uint64_t word2;
        std::memcpy(&word2, rbuf.data(), 8);
        done = word2 == 0;
        continue;
      }
      sim::Bytes block(kOopHeaderBytes + max_value);
      fabric::OpResult br = co_await worker->qp(src).Read(
          static_cast<uint64_t>(OopOf(word)) * kOopGranuleBytes, block);
      if (!br.ok()) {
        break;
      }
      BlockParse p = ParseBlock(std::move(block), max_value, word);
      if (!p.ok) {
        continue;  // Concurrent in-flight update forwarded the block: redo.
      }
      // Fresh block on the recovering node + its index slot entry.
      if (installed_oop != 0) {
        worker->pool(node).Free(installed_oop);  // Superseded earlier attempt.
      }
      const uint32_t dst_oop = worker->pool(node).AllocIdx();
      installed_oop = dst_oop;
      sim::Bytes image(kOopHeaderBytes + p.bytes.size());
      const uint64_t hdr = PackHeader(GenOf(word), kBlockValid);
      const uint64_t len = p.bytes.size();
      std::memcpy(image.data(), &hdr, 8);
      std::memcpy(image.data() + 8, &len, 8);
      std::memcpy(image.data() + 16, p.bytes.data(), p.bytes.size());
      const uint64_t new_word = PackIndexWord(GenOf(word), dst_oop);
      sim::Bytes wbuf(8);
      std::memcpy(wbuf.data(), &new_word, 8);
      // Install the copy — block image + index word — under ONE doorbell.
      // Both writes ride the same QP, so per-QP FIFO puts the block in place
      // before the index word names it; the node stays quorum-excluded until
      // the repair round completes, so a partial install (index written,
      // block write failed) is unreachable and the retry round overwrites it.
      sim::PoolVec<sim::Task<fabric::OpResult>> installs;
      installs.push_back(
          worker->qp(node).Write(static_cast<uint64_t>(dst_oop) * kOopGranuleBytes, image));
      installs.push_back(worker->qp(node).Write(dst_addr, wbuf));
      sim::PoolVec<fabric::OpResult> ins =
          co_await fabric::PostMany(worker->cpu(), worker->sim(), std::move(installs));
      if (!ins[0].ok() || !ins[1].ok()) {
        break;
      }
      // Re-validate: an op that was already past the recovery gate may have
      // committed on the source meanwhile — copy again if so.
      std::array<uint8_t, 8> rbuf{};
      fabric::OpResult rr = co_await worker->qp(src).Read(src_addr, rbuf);
      if (!rr.ok()) {
        break;
      }
      uint64_t word2;
      std::memcpy(&word2, rbuf.data(), 8);
      if (word2 == word) {
        done = true;
        if (node == meta.backup) {
          meta.last_backup_oop = dst_oop;  // Future updates GC this copy.
        }
      }
    }
    if (done) {
      ++out.slots_repaired;
    } else {
      if (installed_oop != 0) {
        // The key failed terminally this round; the next round re-allocates,
        // so reclaim this round's block (the node is fenced — no reader can
        // be chasing it, and a canary-mode racer is caught by the block's
        // generation check).
        worker->pool(node).Free(installed_oop);
      }
      ++out.slots_failed;
      out.complete = false;
    }
  }
  co_return out;
}

sim::Task<bool> FuseeStore::MigrateKey(uint64_t key, int from, Worker* worker,
                                       bool disable_flip_fence) {
  auto it = directory_.find(key);
  if (it == directory_.end()) {
    co_return true;  // Never placed: nothing to move.
  }
  KeyMeta& meta = it->second;
  if (meta.primary != from && meta.backup != from) {
    co_return true;  // Already elsewhere (or a racing move beat us).
  }
  // Migrate-vs-repair arbitration: a store in recovery, or a key with either
  // home failed or mid-repair, belongs to the repair path. Skip; the caller
  // revisits once the node is readmitted.
  if (InRecovery() || NodeFailed(meta.primary) || NodeFailed(meta.backup) ||
      worker->NodeQuorumExcluded(meta.primary) || worker->NodeQuorumExcluded(meta.backup)) {
    ++keys_aborted_;
    co_return false;
  }
  const int survivor = meta.primary == from ? meta.backup : meta.primary;
  int dest = -1;
  {
    int candidates[PlacementProbe::kMaxNodes];
    size_t num_candidates = 0;
    const int n = std::min(fabric_->num_nodes(), PlacementProbe::kMaxNodes);
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<size_t>(i);
      const bool serving = serving_ == nullptr || serving_->empty() ||
                           (idx < serving_->size() && (*serving_)[idx]);
      if (serving && !NodeFailed(i) && !worker->NodeQuorumExcluded(i) && i != from &&
          i != survivor) {
        candidates[num_candidates++] = i;
      }
    }
    if (num_candidates == 0) {
      ++keys_aborted_;
      co_return false;
    }
    dest = candidates[(key * 0x9E3779B97F4A7C15ull) % num_candidates];
  }
  const int np = meta.primary == from ? dest : meta.primary;
  const int nb = meta.backup == from ? dest : meta.backup;
  const int old_primary = meta.primary;
  const int old_backup = meta.backup;
  const uint64_t old_slot_primary = meta.index_addr_primary;
  const uint64_t old_slot_backup = meta.index_addr_backup;

  // Fence BOTH old slots: from here no client CAS can commit, so the single
  // harvest below is final — contrast RepairNode, which copies from a live
  // slot and must re-validate after every install.
  if (!disable_flip_fence) {
    fabric_->node(old_primary).RetireRegion(old_slot_primary, 8);
    fabric_->node(old_backup).RetireRegion(old_slot_backup, 8);
  }

  // Harvest the fenced primary word and its block through the repair channel
  // (which passes the fence). Bounded retries cover chaos drop bursts only.
  const uint32_t max_value = worker->config().max_value;
  uint64_t word = 0;
  sim::Bytes bytes;
  bool harvested = false;
  // NOLINTNEXTLINE(swarm-retry-stale-epoch) repair channel: fence-exempt.
  for (int attempt = 0; attempt < 4 && !harvested; ++attempt) {
    std::array<uint8_t, 8> ibuf{};
    fabric::OpResult ir = co_await worker->qp(old_primary).Read(old_slot_primary, ibuf);
    if (!ir.ok()) {
      continue;
    }
    std::memcpy(&word, ibuf.data(), 8);
    if (word == 0) {
      harvested = true;  // Key absent; the new home starts absent too.
      break;
    }
    sim::Bytes block(kOopHeaderBytes + max_value);
    fabric::OpResult br = co_await worker->qp(old_primary).Read(
        static_cast<uint64_t>(OopOf(word)) * kOopGranuleBytes, block);
    if (!br.ok()) {
      continue;
    }
    BlockParse p = ParseBlock(std::move(block), max_value, word);
    if (p.ok) {
      bytes = std::move(p.bytes);
      harvested = true;
    }
  }

  // Install at the new home: fresh index slots on both roles (a role staying
  // on its node still gets a new address — its old slot is fenced for good),
  // and fresh block copies under the harvested generation.
  uint32_t np_oop = 0;
  uint32_t nb_oop = 0;
  bool installed = harvested;
  uint64_t np_slot = 0;
  uint64_t nb_slot = 0;
  if (harvested) {
    np_slot = fabric_->node(np).AllocSlot(8);
    nb_slot = fabric_->node(nb).AllocSlot(8);
  }
  if (harvested && word != 0) {
    np_oop = worker->pool(np).AllocIdx();
    nb_oop = worker->pool(nb).AllocIdx();
    sim::Bytes image(kOopHeaderBytes + bytes.size());
    const uint64_t hdr = PackHeader(GenOf(word), kBlockValid);
    const uint64_t len = bytes.size();
    std::memcpy(image.data(), &hdr, 8);
    std::memcpy(image.data() + 8, &len, 8);
    std::memcpy(image.data() + 16, bytes.data(), bytes.size());
    sim::Bytes wp(8);
    sim::Bytes wb(8);
    const uint64_t word_p = PackIndexWord(GenOf(word), np_oop);
    const uint64_t word_b = PackIndexWord(GenOf(word), nb_oop);
    std::memcpy(wp.data(), &word_p, 8);
    std::memcpy(wb.data(), &word_b, 8);
    fabric::OpResult b1 = co_await worker->qp(np).Write(
        static_cast<uint64_t>(np_oop) * kOopGranuleBytes, image);
    fabric::OpResult b2 = co_await worker->qp(nb).Write(
        static_cast<uint64_t>(nb_oop) * kOopGranuleBytes, image);
    fabric::OpResult s1 = co_await worker->qp(np).Write(np_slot, wp);
    fabric::OpResult s2 = co_await worker->qp(nb).Write(nb_slot, wb);
    installed = b1.ok() && b2.ok() && s1.ok() && s2.ok();
  }
  if (!installed) {
    // Abort: restore the fences, reclaim the new blocks, directory
    // untouched — the cluster is exactly as before the attempt (the fresh
    // 8 B slots are abandoned).
    if (np_oop != 0) {
      worker->pool(np).Free(np_oop);
    }
    if (nb_oop != 0) {
      worker->pool(nb).Free(nb_oop);
    }
    if (np_slot != 0) {
      // Never published (the directory still names the old slots) and all
      // writes against them have completed, so the fresh slots recycle
      // safely.
      fabric_->node(np).FreeSlot(np_slot);
      fabric_->node(nb).FreeSlot(nb_slot);
    }
    if (!disable_flip_fence) {
      fabric_->node(old_primary).RestoreRegion(old_slot_primary, 8);
      fabric_->node(old_backup).RestoreRegion(old_slot_backup, 8);
    }
    ++keys_aborted_;
    co_return false;
  }

  // Flip: in-sim atomic (no suspension between field writes). Sessions hold
  // KeyMeta references and re-read the fields each attempt, so the new home
  // is picked up on their next retry; `moves` tells an op that straddled the
  // flip to skip its superseded-block GC. The old fenced slots stay retired
  // forever — their 8 bytes are dead.
  const uint32_t old_primary_oop = word != 0 ? OopOf(word) : 0;
  const uint32_t old_backup_oop = meta.last_backup_oop;
  meta.primary = np;
  meta.backup = nb;
  meta.index_addr_primary = np_slot;
  meta.index_addr_backup = nb_slot;
  meta.last_backup_oop = nb_oop;
  ++meta.moves;
  ReplaceHome(key, old_primary, old_backup, np, nb);
  if (old_primary_oop != 0) {
    worker->pool(old_primary).Free(old_primary_oop);
  }
  if (word != 0 && old_backup_oop != 0) {
    // Absent keys leave the old backup block alone: an in-flight Remove past
    // its CAS still owns that free.
    worker->pool(old_backup).Free(old_backup_oop);
  }
  ++keys_moved_;
  co_return true;
}

sim::Task<uint64_t> FuseeStore::MigrateNode(int node, Worker* worker, bool disable_flip_fence) {
  // Drain from the inverse registry — O(keys-on-node). Snapshot: MigrateKey
  // mutates the set as it flips keys away.
  std::vector<uint64_t> keys;
  if (static_cast<size_t>(node) < node_keys_.size()) {
    const std::set<uint64_t>& hosted = node_keys_[static_cast<size_t>(node)];
    keys.assign(hosted.begin(), hosted.end());
  }
  uint64_t remaining = 0;
  for (uint64_t key : keys) {
    if (!co_await MigrateKey(key, node, worker, disable_flip_fence)) {
      ++remaining;
    }
  }
  co_return remaining;
}

sim::Task<KvResult> FuseeKvSession::Get(uint64_t key) {
  KvResult result;
  FuseeStore::KeyMeta& meta = store_->MetaFor(key);
  int moved_budget = kMovedRetryBudget;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!co_await AwaitUsable(meta)) {
      result.status = KvStatus::kUnavailable;
      co_return result;
    }
    const int node = ActingPrimary(meta);
    const uint64_t index_addr =
        node == meta.primary ? meta.index_addr_primary : meta.index_addr_backup;
    fabric::Qp& qp = worker_->qp(node);
    const uint32_t max_value = worker_->config().max_value;

    uint64_t word = 0;
    index::CacheEntry* cached = cache_->Lookup(key);
    bool node_error = false;
    if (cached != nullptr) {
      // Cache hit: optimistically read the cached block while validating the
      // cached location against the on-node index slot, in one roundtrip.
      // Fresh caches finish here; keys recently modified by other clients
      // need a second roundtrip for the relocated block (§7.1: FUSEE's
      // bimodal gets).
      result.cache_hit = true;
      word = cached->generation;
      sim::Bytes block(kOopHeaderBytes + max_value);
      std::array<uint8_t, 8> ibuf{};
      auto [br, ir] = co_await fabric::PostBoth(
          worker_->cpu(), worker_->sim(),
          qp.Read(static_cast<uint64_t>(OopOf(word)) * kOopGranuleBytes, block),
          qp.Read(index_addr, ibuf));
      ++result.rtts;
      if (Moved(ir)) {
        // The slot is fenced mid-migration: re-consult the directory after a
        // slice of the copy window, without burning the attempt budget.
        cache_->Invalidate(key);
        if (moved_budget-- > 0) {
          --attempt;
        }
        co_await worker_->sim()->Delay(kMovedRetryDelay);
        continue;
      }
      if (!br.ok() || !ir.ok()) {
        node_error = true;
      } else {
        uint64_t index_word;
        std::memcpy(&index_word, ibuf.data(), 8);
        if (index_word == 0) {
          cache_->Invalidate(key);
          result.status = KvStatus::kNotFound;
          co_return result;
        }
        if (index_word == word) {
          BlockParse p = ParseBlock(std::move(block), max_value, word);
          if (p.ok) {
            result.status = KvStatus::kOk;
            result.value = std::move(p.bytes);
            result.fast_path = true;
            co_return result;
          }
        }
        // Stale cache: the index moved on; fetch the new block (+1 RT).
        word = index_word;
        index::CacheEntry entry;
        entry.generation = word;
        cache_->Put(key, std::move(entry));
      }
    } else {
      // Uncached: read the on-node index slot first (+1 RT).
      std::array<uint8_t, 8> buf{};
      fabric::OpResult r = co_await qp.Read(index_addr, buf);
      ++result.rtts;
      if (Moved(r)) {
        cache_->Invalidate(key);
        if (moved_budget-- > 0) {
          --attempt;
        }
        co_await worker_->sim()->Delay(kMovedRetryDelay);
        continue;
      }
      if (!r.ok()) {
        node_error = true;
      } else {
        std::memcpy(&word, buf.data(), 8);
        if (word == 0) {
          result.status = KvStatus::kNotFound;
          co_return result;
        }
        index::CacheEntry entry;
        entry.generation = word;
        cache_->Put(key, std::move(entry));
      }
    }

    if (!node_error) {
      sim::Bytes block(kOopHeaderBytes + max_value);
      fabric::OpResult r =
          co_await qp.Read(static_cast<uint64_t>(OopOf(word)) * kOopGranuleBytes, block);
      ++result.rtts;
      if (r.ok()) {
        BlockParse p = ParseBlock(std::move(block), max_value, word);
        if (p.ok) {
          result.status = KvStatus::kOk;
          result.value = std::move(p.bytes);
          co_return result;
        }
        // Torn or concurrently replaced block: retry from scratch.
        cache_->Invalidate(key);
        continue;
      }
      node_error = true;
    }
    if (node_error) {
      if (worker_->EpochRefreshNeeded()) {
        // kStaleEpoch revoked a QP: membership staleness, NOT a node failure.
        // Starting FUSEE's multi-phase recovery for it would stall the whole
        // store on a healthy node — re-validate the epoch and retry instead.
        co_await worker_->RefreshEpoch();
        continue;
      }
      co_await OnNodeFailure(node);
    }
  }
  result.status = KvStatus::kUnavailable;
  co_return result;
}

sim::Task<KvResult> FuseeKvSession::WriteInternal(uint64_t key, std::span<const uint8_t> value,
                                                  bool expect_new) {
  KvResult result;
  FuseeStore::KeyMeta& meta = store_->MetaFor(key);
  // Index word this op's PREVIOUS attempt tried to install (0 on the first
  // attempt). A failed attempt may still have committed its phase-2 CAS —
  // and readers may have seen it — so a retry must never re-install over a
  // foreign commit that interleaved: that would resurrect our
  // already-observable value on top of it.
  uint64_t prior_word = 0;
  // NODE-sourced observations of the current acting slot within this op
  // (uncached index reads and CAS responses; a cached expectation proves
  // nothing — it may predate the op). They order foreign words by
  // (generation, observation time) lexicographically relative to our
  // install: a slot observed to hold X at some instant of this op can only
  // hold a different word later because that word committed IN-WINDOW — so
  // a retry that finds an unobserved generation knows it landed after our
  // (possibly applied) install even when it is numerically LOWER (a writer
  // that allocated its generation before ours but committed after: the
  // gen/time inversion the old "GenOf(old) > GenOf(prior)" guard
  // re-installed over). Observations reset on failover: the backup's slot
  // is a different register whose lagging pre-state we have never seen.
  int observed_node = -1;
  bool slot_observed = false;
  std::array<uint64_t, 12> seen_gens{};
  size_t num_seen = 0;
  auto observed_pre = [&](uint64_t word) {
    slot_observed = true;
    if (word != 0 && num_seen < seen_gens.size()) {
      seen_gens[num_seen++] = GenOf(word);
    }
  };
  auto was_pre_state = [&](uint64_t word) {
    for (size_t i = 0; i < num_seen; ++i) {
      if (seen_gens[i] == GenOf(word)) {
        return true;
      }
    }
    return false;
  };
  int moved_budget = kMovedRetryBudget;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!co_await AwaitUsable(meta)) {
      result.status = KvStatus::kUnavailable;
      co_return result;
    }
    // Snapshot the key's home for this attempt: a migration flip rewrites
    // the KeyMeta fields mid-op, and the cleanup below must target the nodes
    // this attempt actually wrote.
    const uint64_t moves_at_start = meta.moves;
    const int primary = ActingPrimary(meta);
    const int backup_node = meta.backup;
    const uint64_t backup_slot = meta.index_addr_backup;
    const bool backup_alive = !store_->NodeFailed(backup_node) && primary != backup_node;
    const uint64_t index_addr =
        primary == meta.primary ? meta.index_addr_primary : meta.index_addr_backup;
    fabric::Qp& qp = worker_->qp(primary);
    if (primary != observed_node) {
      // Failover: the acting slot moved; observations of the old one say
      // nothing about the new one's pre-state.
      observed_node = primary;
      slot_observed = false;
      num_seen = 0;
    }

    const uint64_t gen = store_->NextGeneration();
    const uint32_t oop_primary = worker_->pool(primary).AllocIdx();
    const uint32_t oop_backup = backup_alive ? worker_->pool(backup_node).AllocIdx() : 0;
    const uint64_t new_word = PackIndexWord(gen, oop_primary);
    const uint64_t new_word_backup = PackIndexWord(gen, oop_backup);

    // Phase 1 (1 RT): write the new KV blocks to both replicas in parallel.
    sim::Bytes block(kOopHeaderBytes + value.size());
    const uint64_t hdr = PackHeader(gen, kBlockValid);
    const uint64_t len = value.size();
    std::memcpy(block.data(), &hdr, 8);
    std::memcpy(block.data() + 8, &len, 8);
    std::memcpy(block.data() + 16, value.data(), value.size());
    fabric::OpResult w1;
    int failed_node = primary;
    if (backup_alive) {
      auto [a, b] = co_await fabric::PostBoth(
          worker_->cpu(), worker_->sim(),
          qp.Write(static_cast<uint64_t>(oop_primary) * kOopGranuleBytes, block),
          worker_->qp(backup_node)
              .Write(static_cast<uint64_t>(oop_backup) * kOopGranuleBytes, block));
      if (!a.ok()) {
        w1 = a;  // The acting primary failed.
      } else if (!b.ok()) {
        w1 = b;
        failed_node = backup_node;  // Attribute the failure correctly.
      } else {
        w1 = a;
      }
    } else {
      w1 = co_await qp.Write(static_cast<uint64_t>(oop_primary) * kOopGranuleBytes, block);
    }
    ++result.rtts;
    if (!w1.ok()) {
      if (worker_->EpochRefreshNeeded()) {
        co_await worker_->RefreshEpoch();  // Stale epoch, not a node failure.
        continue;
      }
      co_await OnNodeFailure(failed_node);
      continue;
    }

    // Phase 2 (1 RT, +1 on conflict): CAS the primary index slot.
    uint64_t expected = 0;
    if (prior_word != 0) {
      // Retry of a possibly-applied install: target our own previous word.
      // The caller's cache is useless here — it predates that install.
      expected = prior_word;
    } else if (index::CacheEntry* cached = cache_->Lookup(key)) {
      result.cache_hit = true;
      expected = cached->generation;  // Cache-sourced: NOT a slot observation.
    } else if (!expect_new) {
      // Uncached update: consult the on-node index slot first; updating a
      // key that does not exist fails.
      std::array<uint8_t, 8> buf{};
      fabric::OpResult ir = co_await qp.Read(index_addr, buf);
      ++result.rtts;
      if (Moved(ir)) {
        // Fenced mid-migration before anything committed: reclaim this
        // attempt's blocks and retry against the post-flip home.
        worker_->pool(primary).Free(oop_primary);
        if (backup_alive) {
          worker_->pool(backup_node).Free(oop_backup);
        }
        cache_->Invalidate(key);
        if (moved_budget-- > 0) {
          --attempt;
        }
        co_await worker_->sim()->Delay(kMovedRetryDelay);
        continue;
      }
      if (!ir.ok()) {
        if (worker_->EpochRefreshNeeded()) {
          co_await worker_->RefreshEpoch();
          continue;
        }
        co_await OnNodeFailure(primary);
        continue;
      }
      std::memcpy(&expected, buf.data(), 8);
      if (expected == 0) {
        result.status = KvStatus::kNotFound;
        co_return result;
      }
      observed_pre(expected);
    }
    uint64_t old_word = 0;
    bool cas_done = false;
    bool moved_bounce = false;
    for (int tries = 0; tries < 4 && !cas_done; ++tries) {
      fabric::OpResult c = co_await qp.Cas(index_addr, expected, new_word);
      ++result.rtts;
      if (!c.ok()) {
        moved_bounce = Moved(c);
        break;
      }
      if (c.old_value == expected) {
        old_word = expected;
        cas_done = true;
      } else if (!expect_new && c.old_value == 0) {
        // The key vanished (deleted concurrently). On a RETRY our previous
        // attempt's install may have applied (ack dropped) and been read
        // before the delete zeroed the slot, so the write happened — it
        // linearizes just before that delete. Only a first attempt can
        // truthfully report "key was never there".
        result.status = prior_word != 0 ? KvStatus::kOk : KvStatus::kNotFound;
        co_return result;
      } else if (prior_word != 0 && c.old_value != 0 && c.old_value != prior_word &&
                 (GenOf(c.old_value) >= GenOf(prior_word) ||
                  (slot_observed && !was_pre_state(c.old_value)))) {
        // Resurrection guard: a retry that finds a commit that landed AFTER
        // our previous attempt's install must not re-install — readers may
        // already have ordered our (possibly applied) value before that
        // commit, so installing again would resurrect it on top. Our write
        // linearizes just before the commit we observed: declare success
        // without touching the slot. "After ours" is decided by comparing
        // (generation, observation time) lexicographically, not raw
        // generation order:
        //  * a HIGHER generation was allocated after our attempt began, so
        //    it certainly committed inside our op (the classic case);
        //  * our OWN generation under a different pointer is our backup-slot
        //    install surfacing through a failover — equally ours;
        //  * a LOWER generation that this op never OBSERVED in the acting
        //    slot — while it HAS observed that slot hold something else —
        //    must have committed after that observation, i.e. after our
        //    install: a writer that allocated its generation before ours but
        //    committed later. This is the gen/time inversion the old
        //    "GenOf(old) > GenOf(prior)" guard re-installed over.
        // A lower-generation word already observed as pre-state, or any
        // word when this op never observed the acting slot (e.g. right
        // after a failover, where the backup lags behind state we only ever
        // saw on the dead primary), proves nothing and falls through to be
        // overwritten.
        result.status = expect_new ? KvStatus::kExists : KvStatus::kOk;
        co_return result;
      } else {
        observed_pre(c.old_value);
        expected = c.old_value;
      }
    }
    if (moved_bounce) {
      // The fenced CAS had NO effect — every completion this attempt saw for
      // the install was a no-effect NACK — so this attempt's word was
      // provably never visible: reclaim its blocks and retry WITHOUT
      // poisoning prior_word.
      worker_->pool(primary).Free(oop_primary);
      if (backup_alive) {
        worker_->pool(backup_node).Free(oop_backup);
      }
      cache_->Invalidate(key);
      if (moved_budget-- > 0) {
        --attempt;
      }
      co_await worker_->sim()->Delay(kMovedRetryDelay);
      continue;
    }
    // From here on this attempt's word MAY be installed (even a failed CAS
    // can have applied with its ack dropped), so the next attempt must
    // treat it as potentially visible.
    prior_word = new_word;
    if (!cas_done) {
      if (worker_->EpochRefreshNeeded()) {
        co_await worker_->RefreshEpoch();
        continue;
      }
      co_await OnNodeFailure(primary);
      continue;
    }
    if (!expect_new && old_word == 0) {
      // Raced with a delete: undo the install and fail.
      fabric::OpResult undo = co_await qp.Cas(index_addr, new_word, 0);
      ++result.rtts;
      if (Moved(undo)) {
        // A migration fenced the slot between our install and its undo: the
        // installed word is what the harvest carries to the new home, so the
        // value may well be visible there. Not a firm NotFound any more —
        // surface the ambiguity (the linearizability checker treats
        // ambiguous NotFound updates as maybe-applied).
        result.ambiguous = true;
      }
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    if (expect_new && old_word != 0) {
      result.status = KvStatus::kExists;
    }

    // Phase 3 (1 RT): update the backup index slot and invalidate the old
    // block (forwarding pointer), in parallel. The backup index update is
    // commit-critical: swallowing its failure would strand the backup with a
    // stale slot and lose this write at the next failover. The forwarding
    // pointer stays best-effort (a stale cache only pays the index
    // roundtrip).
    {
      sim::Bytes wbuf(8);
      std::memcpy(wbuf.data(), &new_word_backup, 8);
      sim::Bytes fwd(16);
      const uint64_t fhdr = PackHeader(GenOf(old_word), kBlockForwarded);
      std::memcpy(fwd.data(), &fhdr, 8);
      std::memcpy(fwd.data() + 8, &new_word, 8);
      sim::PoolVec<sim::Task<fabric::OpResult>> verbs;
      if (backup_alive) {
        verbs.push_back(worker_->qp(backup_node).Write(backup_slot, wbuf));
      }
      if (old_word != 0) {
        verbs.push_back(qp.Write(static_cast<uint64_t>(OopOf(old_word)) * kOopGranuleBytes, fwd));
      }
      if (!verbs.empty()) {
        sim::PoolVec<fabric::OpResult> rs =
            co_await fabric::PostMany(worker_->cpu(), worker_->sim(), std::move(verbs));
        ++result.rtts;
        if (backup_alive && !rs[0].ok()) {
          if (Moved(rs[0])) {
            // A migration fenced the slots AFTER our phase-2 commit: the
            // write IS durable — the harvest reads the post-fence primary
            // slot, which holds it — but the backup-side block never became
            // reachable and the flip owns all superseded-version GC.
            // Reclaim our orphaned backup block and succeed.
            worker_->pool(backup_node).Free(oop_backup);
            cache_->Invalidate(key);
            if (result.status != KvStatus::kExists) {
              result.status = KvStatus::kOk;
            }
            co_return result;
          }
          if (worker_->EpochRefreshNeeded()) {
            co_await worker_->RefreshEpoch();
            continue;
          }
          co_await OnNodeFailure(backup_node);
          continue;  // Re-run the write against the degraded replica set.
        }
      } else {
        ++result.rtts;
      }
    }

    // Phase 4 (1 RT): commit record (metadata log) on the primary.
    {
      const uint32_t log_oop = LogSlot(primary);
      sim::Bytes commit(16);
      std::memcpy(commit.data(), &gen, 8);
      std::memcpy(commit.data() + 8, &new_word, 8);
      // Cost-model write: the modeled log slot has no reader (recovery
      // replays the index, not the log), so this append exists to charge
      // FUSEE's phase-4 roundtrip — its completion status is moot.
      DiscardStatus(co_await qp.Write(static_cast<uint64_t>(log_oop) * kOopGranuleBytes, commit));
      ++result.rtts;
    }

    // GC (modeled, §7.6 "running garbage collection once per second"): the
    // superseded version's blocks are recyclable now. In degraded
    // single-copy mode the acting primary IS the backup node, so the
    // superseded block and the old backup copy are the SAME buffer — freeing
    // both would hand the slot out twice and corrupt live data.
    if (meta.moves != moves_at_start) {
      // A migration flipped the key's home mid-op (after our phase-2
      // commit, so the harvest carried the write). The flip freed the
      // superseded blocks itself and the KeyMeta fields now describe the
      // NEW home — freeing "the old backup block" here would free the
      // migration's live copy. Touch nothing.
      cache_->Invalidate(key);
      if (result.status != KvStatus::kExists) {
        result.status = KvStatus::kOk;
      }
      result.fast_path = result.rtts <= 4;
      co_return result;
    }
    if (old_word != 0) {
      worker_->pool(primary).Free(OopOf(old_word));
    }
    if (backup_alive) {
      if (meta.last_backup_oop != 0 && meta.last_backup_oop != OopOf(old_word)) {
        worker_->pool(backup_node).Free(meta.last_backup_oop);
      }
      meta.last_backup_oop = oop_backup;
    } else {
      meta.last_backup_oop = 0;  // Lost with the node, or freed as old_word.
    }

    index::CacheEntry entry;
    entry.generation = new_word;
    cache_->Put(key, std::move(entry));
    if (result.status != KvStatus::kExists) {
      result.status = KvStatus::kOk;
    }
    result.fast_path = result.rtts <= 4;
    co_return result;
  }
  result.status = KvStatus::kUnavailable;
  co_return result;
}

sim::Task<KvResult> FuseeKvSession::Update(uint64_t key, std::span<const uint8_t> value) {
  KvResult r = co_await WriteInternal(key, value, /*expect_new=*/false);
  co_return r;
}

sim::Task<KvResult> FuseeKvSession::Insert(uint64_t key, std::span<const uint8_t> value) {
  KvResult r = co_await WriteInternal(key, value, /*expect_new=*/true);
  co_return r;
}

sim::Task<KvResult> FuseeKvSession::Remove(uint64_t key) {
  KvResult result;
  FuseeStore::KeyMeta& meta = store_->MetaFor(key);
  int moved_budget = kMovedRetryBudget;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!co_await AwaitUsable(meta)) {
      result.status = KvStatus::kUnavailable;
      co_return result;
    }
    // Snapshot the home for this attempt (see WriteInternal): a migration
    // flip rewrites the fields mid-op.
    const uint64_t moves_at_start = meta.moves;
    const int primary = ActingPrimary(meta);
    const int primary_home = meta.primary;
    const int backup_node = meta.backup;
    const uint64_t backup_slot = meta.index_addr_backup;
    const uint64_t index_addr =
        primary == meta.primary ? meta.index_addr_primary : meta.index_addr_backup;
    fabric::Qp& qp = worker_->qp(primary);

    uint64_t expected = 0;
    if (index::CacheEntry* cached = cache_->Lookup(key)) {
      result.cache_hit = true;
      expected = cached->generation;
    }
    uint64_t old_word = 0;
    bool cas_settled = false;
    bool moved_bounce = false;
    for (int tries = 0; tries < 4; ++tries) {
      fabric::OpResult c = co_await qp.Cas(index_addr, expected, 0);
      ++result.rtts;
      if (!c.ok()) {
        if (c.status == fabric::Status::kStaleEpoch && worker_->EpochRefreshNeeded()) {
          // The fenced CAS never applied: re-validate and retry it verbatim.
          co_await worker_->RefreshEpoch();
          continue;
        }
        if (Moved(c)) {
          moved_bounce = true;  // No-effect NACK: nothing was deleted.
          break;
        }
        result.status = KvStatus::kUnavailable;
        co_return result;
      }
      cas_settled = true;
      if (c.old_value == expected) {
        old_word = expected;
        break;
      }
      expected = c.old_value;
    }
    cache_->Invalidate(key);
    if (moved_bounce) {
      // Fenced mid-migration before the delete committed: re-consult the
      // directory after a slice of the copy window and CAS the new home.
      if (moved_budget-- > 0) {
        --attempt;
      }
      co_await worker_->sim()->Delay(kMovedRetryDelay);
      continue;
    }
    if (!cas_settled) {
      result.status = KvStatus::kUnavailable;
      co_return result;
    }
    if (old_word == 0) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    // Invalidate the old block (forward to nothing) + clear backup slot.
    {
      sim::Bytes fwd(16, 0);
      const uint64_t fhdr = PackHeader(GenOf(old_word), kBlockForwarded);
      std::memcpy(fwd.data(), &fhdr, 8);
      // Best-effort forward-invalidate (same contract as phase 3's
      // forwarding pointer): readers re-validate against the index word,
      // which our CAS-to-0 already committed, so a lost invalidation can
      // only cost an extra bounce, never a stale read.
      DiscardStatus(co_await qp.Write(static_cast<uint64_t>(OopOf(old_word)) * kOopGranuleBytes, fwd));
      ++result.rtts;
    }
    if (meta.moves != moves_at_start) {
      // A migration flipped the key mid-op. Our CAS-to-0 committed BEFORE
      // the fence, so the harvest read absent and the new home agrees the
      // key is gone — but the flip already reconciled the block bookkeeping
      // and the fields now describe the new home. Touch nothing further.
      result.status = KvStatus::kOk;
      co_return result;
    }
    worker_->pool(primary).Free(OopOf(old_word));
    if (meta.last_backup_oop != 0 && meta.last_backup_oop != OopOf(old_word)) {
      worker_->pool(backup_node).Free(meta.last_backup_oop);
    }
    meta.last_backup_oop = 0;
    if (!store_->NodeFailed(backup_node) && primary == primary_home) {
      // Commit-critical, exactly like WriteInternal's phase-3 backup index
      // update: swallowing a failure here strands the backup slot pointing at
      // the removed value's (still byte-valid) block, and the next failover
      // resurrects it. A migration-fence bounce is the one benign outcome —
      // the fence landed after our primary commit, so the harvest read the
      // zeroed slot and the new home is already absent.
      sim::Bytes zero(8, 0);
      for (int tries = 0; tries < 4; ++tries) {
        fabric::OpResult bz = co_await worker_->qp(backup_node).Write(backup_slot, zero);
        ++result.rtts;
        if (bz.ok() || Moved(bz)) {
          break;
        }
        if (worker_->EpochRefreshNeeded()) {
          co_await worker_->RefreshEpoch();
          continue;
        }
        // Treat the unreachable backup as failed (synchronous-replication
        // rule): recovery rebuilds its slot from the zeroed primary, so the
        // delete survives the next failover.
        co_await OnNodeFailure(backup_node);
        break;
      }
    }
    result.status = KvStatus::kOk;
    co_return result;
  }
  result.status = KvStatus::kUnavailable;
  co_return result;
}

}  // namespace swarm::kv
