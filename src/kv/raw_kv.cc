#include "src/kv/raw_kv.h"

#include <cstring>

#include "src/hash/xxhash.h"
#include "src/util/discard.h"

namespace swarm::kv {
namespace {

sim::Task<void> UnmapLater(index::IndexService* index, uint64_t key, uint64_t generation) {
  // Best-effort tombstone unmap: the generation guard makes a lost or
  // duplicated attempt harmless (a newer mapping wins), so the outcome
  // carries no actionable signal for this detached cleanup task.
  DiscardStatus(co_await index->RemoveIfGeneration(key, generation, nullptr));
}

}  // namespace

sim::Task<RawKvSession::Located> RawKvSession::Locate(uint64_t key, KvResult* result) {
  Located loc;
  if (index::CacheEntry* e = cache_->Lookup(key)) {
    loc.found = true;
    loc.cache_hit = true;
    loc.layout = e->layout;
    loc.generation = e->generation;
    result->cache_hit = true;
    co_return loc;
  }
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  loc.found = true;
  loc.layout = idx->layout;
  loc.generation = idx->generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

sim::Task<KvResult> RawKvSession::Get(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  for (;;) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    const ReplicaLayout& rep = loc.layout->replicas[0];
    sim::Bytes buf(8 + loc.layout->max_value);
    fabric::OpResult r = co_await worker_->qp(rep.node).Read(rep.meta_addr, buf);
    ++result.rtts;
    if (!r.ok()) {
      result.status = KvStatus::kUnavailable;
      co_return result;
    }
    uint64_t len;
    std::memcpy(&len, buf.data(), 8);
    if (len == 0 || len > loc.layout->max_value) {
      if (loc.cache_hit) {
        // A tombstone beneath a CACHED location can belong to a mapping that
        // was deleted and re-inserted since we cached it — absence is only
        // believable off the index. The re-locate is cache-miss by
        // construction, so this cannot loop.
        cache_->Invalidate(key);
        result.cache_hit = false;
        loc = co_await Locate(key, &result);
        continue;
      }
      result.status = KvStatus::kNotFound;  // Deleted (or garbage under a torn write).
      co_return result;
    }
    result.status = KvStatus::kOk;
    result.fast_path = result.cache_hit;
    result.value.assign(buf.begin() + 8, buf.begin() + 8 + static_cast<long>(len));
    co_return result;
  }
}

sim::Task<KvResult> RawKvSession::Update(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  if (!loc.found) {
    result.status = KvStatus::kNotFound;
    co_return result;
  }
  const ReplicaLayout& rep = loc.layout->replicas[0];
  sim::Bytes buf(8 + value.size());
  const uint64_t len = value.size();
  std::memcpy(buf.data(), &len, 8);
  std::memcpy(buf.data() + 8, value.data(), value.size());
  fabric::OpResult r = co_await worker_->qp(rep.node).Write(rep.meta_addr, buf);
  ++result.rtts;
  result.status = r.ok() ? KvStatus::kOk : KvStatus::kUnavailable;
  result.fast_path = result.cache_hit;
  co_return result;
}

sim::Task<KvResult> RawKvSession::Insert(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  // Allocate a single region on a hash-chosen node (client pre-allocation:
  // no roundtrip), then in parallel write the value and insert the mapping.
  const int node = static_cast<int>(hash::Mix64(key, 0x524157) %
                                    static_cast<uint64_t>(worker_->fabric()->num_nodes()));
  ObjectLayout l;
  l.num_replicas = 1;
  l.meta_slots = 1;
  l.max_writers = 1;
  l.max_value = worker_->config().max_value;
  l.replicas[0].node = node;
  l.replicas[0].meta_addr = worker_->fabric()->node(node).Allocate(8 + l.max_value);
  std::shared_ptr<const ObjectLayout> layout = std::make_shared<ObjectLayout>(l);

  auto ins = co_await index_->InsertIfAbsent(key, layout, worker_->cpu());
  ++result.rtts;
  Located loc;
  loc.found = true;
  loc.layout = ins.second.layout;
  loc.generation = ins.second.generation;
  if (!ins.first) {
    index_->Retire(layout);
  }
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  cache_->Put(key, std::move(entry));

  const ReplicaLayout& rep = loc.layout->replicas[0];
  sim::Bytes buf(8 + value.size());
  const uint64_t len = value.size();
  std::memcpy(buf.data(), &len, 8);
  std::memcpy(buf.data() + 8, value.data(), value.size());
  fabric::OpResult r = co_await worker_->qp(rep.node).Write(rep.meta_addr, buf);
  result.status = !r.ok()              ? KvStatus::kUnavailable
                  : ins.first          ? KvStatus::kOk
                                       : KvStatus::kExists;
  co_return result;
}

sim::Task<KvResult> RawKvSession::Remove(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  for (;;) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    const ReplicaLayout& rep = loc.layout->replicas[0];
    sim::Bytes zero(8, 0);
    fabric::OpResult r = co_await worker_->qp(rep.node).Write(rep.meta_addr, zero);
    ++result.rtts;
    cache_->Invalidate(key);
    if (!r.ok()) {
      // Outcome unknown: the background unmap settles it either way (its
      // generation guard lets a racing re-insert win).
      sim::Spawn(UnmapLater(index_, key, loc.generation));
      result.status = KvStatus::kUnavailable;
      co_return result;
    }
    // The generation-guarded unmap is this store's only stale-mapping
    // detector, so its result is commit-critical: `false` under a CACHED
    // location means the mapping we just tombstoned was already dead —
    // deleted and re-inserted since we cached it — and the live object is
    // untouched. SwarmKv/DmAbd catch that case as kDeleted off the
    // replicated tombstone (§5.3.4); RAW's single blind write cannot, and
    // fire-and-forgetting the unmap here used to turn such a remove into a
    // silent no-op reported as kOk.
    const bool removed =
        co_await index_->RemoveIfGeneration(key, loc.generation, worker_->cpu());
    ++result.rtts;
    if (removed || !loc.cache_hit) {
      // Fresh-index `!removed`: a concurrent remove won the race (possibly
      // with a re-insert behind it); ours linearizes just before it.
      result.status = KvStatus::kOk;
      co_return result;
    }
    loc = co_await Locate(key, &result);  // Invalidated above: goes to the index.
  }
}

}  // namespace swarm::kv
