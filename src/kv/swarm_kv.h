// SWARM-KV (§5): a strongly consistent, highly available disaggregated
// key-value store with single-roundtrip inserts, updates, gets and
// deletes in the common case.
//
// Clients access replicated values directly on the memory nodes through
// Safe-Guess (over In-n-Out max registers); an index service maps keys to
// replica locations, and a client-side cache (optionally bounded, LFU) makes
// steady-state operations index-free.

#ifndef SWARM_SRC_KV_SWARM_KV_H_
#define SWARM_SRC_KV_SWARM_KV_H_

#include <memory>
#include <vector>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/kv_types.h"
#include "src/swarm/placement.h"
#include "src/swarm/safe_guess.h"
#include "src/swarm/worker.h"

namespace swarm::kv {

class SwarmKvSession : public KvSession {
 public:
  // `cache` is shared among all sessions of one client process.
  SwarmKvSession(Worker* worker, index::IndexService* index, index::ClientCache* cache)
      : worker_(worker), index_(index), cache_(cache) {}

  sim::Task<KvResult> Get(uint64_t key) override;
  sim::Task<KvResult> Update(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Insert(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Remove(uint64_t key) override;

  // Placement filter for fresh inserts: only nodes marked serving receive new
  // extents (MembershipService::serving()). Unset = place on all nodes.
  void set_serving(std::shared_ptr<const std::vector<bool>> serving) {
    serving_ = std::move(serving);
  }

 private:
  // A self-contained copy of a key's location (safe across co_awaits even if
  // the shared cache evicts the entry meanwhile).
  struct Located {
    bool found = false;
    bool cache_hit = false;
    std::shared_ptr<const ObjectLayout> layout;
    std::shared_ptr<ObjectCache> obj_cache;
    uint64_t generation = 0;
  };

  // Resolves a key's location, falling back to the index (+1 RT).
  // `seed_metadata`: additionally performs the weak metadata read that
  // updates In-n-Out slot caches — §7.1: updates on a SWARM-KV cache miss
  // pay 2 extra roundtrips (index + latest metadata buffer).
  sim::Task<Located> Locate(uint64_t key, bool seed_metadata, KvResult* result);

  // Picks replica nodes for a fresh insert by key hash.
  std::shared_ptr<const ObjectLayout> AllocateForKey(uint64_t key);

  // Handles a read/write that discovered a tombstone: flush the cache, ask
  // the index, and schedule the stale mapping's unmap (§5.3.3/§5.3.4).
  sim::Task<Located> HandleDeleted(uint64_t key, uint64_t stale_generation, KvResult* result);

  // Handles an op that bounced off a migration fence (SgStatus::kMoved):
  // flush the cache and chase the index until the ownership flip commits
  // under a new generation (or the fence lifts after an abort). Unlike
  // HandleDeleted this never unmaps the entry — the key is alive, in transit.
  sim::Task<Located> HandleMoved(uint64_t key, uint64_t stale_generation, KvResult* result);

  Worker* worker_;
  index::IndexService* index_;
  index::ClientCache* cache_;
  std::shared_ptr<const std::vector<bool>> serving_;
  PlacementProbe place_;  // Minimal-remap placement over the serving set.
};

}  // namespace swarm::kv

#endif  // SWARM_SRC_KV_SWARM_KV_H_
