#include "src/kv/swarm_kv.h"

#include <utility>

#include "src/hash/xxhash.h"
#include "src/util/discard.h"
#include "src/sim/sync.h"
#include "src/swarm/placement.h"

namespace swarm::kv {
namespace {

sim::Task<void> UnmapLater(index::IndexService* index, uint64_t key, uint64_t generation) {
  // Best-effort tombstone unmap: the generation guard makes a lost or
  // duplicated attempt harmless (a newer mapping wins), so the outcome
  // carries no actionable signal for this detached cleanup task.
  DiscardStatus(co_await index->RemoveIfGeneration(key, generation, nullptr));
}

KvStatus MapStatus(SgStatus s) {
  switch (s) {
    case SgStatus::kOk:
      return KvStatus::kOk;
    case SgStatus::kNotFound:
    case SgStatus::kDeleted:
      return KvStatus::kNotFound;
    case SgStatus::kUnavailable:
      return KvStatus::kUnavailable;
    case SgStatus::kMoved:
      // Only surfaces when a moved bounce could not be resolved by
      // re-locating (the op loops intercept kMoved first): fail safe as
      // unavailable — the op provably had no effect, so pending is correct.
      return KvStatus::kUnavailable;
  }
  return KvStatus::kUnavailable;
}

// How many times HandleMoved re-consults the index waiting for an in-flight
// ownership flip to commit before handing the (possibly still fenced)
// mapping back to the caller's bounded attempt loop.
constexpr int kMovedLookupRetries = 6;

}  // namespace

sim::Task<SwarmKvSession::Located> SwarmKvSession::Locate(uint64_t key, bool seed_metadata,
                                                          KvResult* result) {
  Located loc;
  if (index::CacheEntry* e = cache_->Lookup(key)) {
    loc.found = true;
    loc.cache_hit = true;
    loc.layout = e->layout;
    loc.obj_cache = worker_->SlotCacheFor(e->layout.get());
    loc.generation = e->generation;
    result->cache_hit = true;
    co_return loc;
  }
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  loc.found = true;
  loc.layout = idx->layout;
  loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
  loc.generation = idx->generation;
  if (seed_metadata) {
    // §7.1: on a cache miss, updates pay one more roundtrip to fetch the
    // latest metadata buffers (seeding the In-n-Out slot caches for the
    // one-roundtrip CAS-max).
    QuorumMax reg(worker_, loc.layout.get(), loc.obj_cache);
    // Pure cache-seeding prefetch: the quorum's value/status is irrelevant
    // here — a failed seed just means the upcoming CAS-max pays the extra
    // roundtrip it would have paid anyway.
    DiscardStatus(co_await reg.ReadQuorum(/*strong=*/false));
    ++result->rtts;
  }
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

std::shared_ptr<const ObjectLayout> SwarmKvSession::AllocateForKey(uint64_t key) {
  const ProtocolConfig& cfg = worker_->config();
  const int n = worker_->fabric()->num_nodes();
  int nodes[kMaxReplicas];
  const uint64_t h = hash::Mix64(key, 0x535741524d); // "SWARM"
  place_.Pick(h, cfg.replicas, n, serving_.get(), nodes);
  return std::make_shared<ObjectLayout>(
      AllocateObject(*worker_->fabric(), nodes, cfg.replicas, cfg.meta_slots, cfg.max_writers,
                     cfg.max_value, cfg.inplace_copies));
}

sim::Task<SwarmKvSession::Located> SwarmKvSession::HandleDeleted(uint64_t key,
                                                                 uint64_t stale_generation,
                                                                 KvResult* result) {
  // §5.3.3/§5.3.4: flush the cache, re-consult the index; remove the stale
  // mapping if the deleter failed to unmap it.
  Located loc;
  cache_->Invalidate(key);
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  if (idx->generation == stale_generation) {
    sim::Spawn(UnmapLater(index_, key, idx->generation));
    co_return loc;
  }
  // The key was re-inserted with new replicas: use them.
  loc.found = true;
  loc.layout = idx->layout;
  loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
  loc.generation = idx->generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

sim::Task<SwarmKvSession::Located> SwarmKvSession::HandleMoved(uint64_t key,
                                                               uint64_t stale_generation,
                                                               KvResult* result) {
  // A kMovedReplica bounce means this layout's extents are fenced for
  // migration. The replacement layout becomes visible when the coordinator's
  // ReplaceLayout commits (generation bump); until then the index still maps
  // the stale generation. Chase the index with a short backoff: either the
  // flip commits (new generation), the migration aborts (fence lifted under
  // the SAME generation — retrying on it then succeeds), or a concurrent
  // delete finishes (entry gone, absent is a correct observation because a
  // moved bounce provably had no effect). NEVER unmap here: unlike a
  // tombstone bounce, the key is alive, just in transit.
  Located loc;
  cache_->Invalidate(key);
  for (int i = 0; i < kMovedLookupRetries; ++i) {
    auto idx = co_await index_->Lookup(key, worker_->cpu());
    ++result->rtts;
    if (!idx.has_value()) {
      co_return loc;
    }
    loc.found = true;
    loc.layout = idx->layout;
    loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
    loc.generation = idx->generation;
    if (idx->generation != stale_generation) {
      index::CacheEntry entry;
      entry.layout = loc.layout;
      entry.generation = loc.generation;
      entry.obj_cache = loc.obj_cache;
      cache_->Put(key, std::move(entry));
      co_return loc;
    }
    co_await worker_->sim()->Delay(worker_->config().escalation_timeout);
  }
  // Still the stale generation after the backoff budget: hand it back
  // uncached. If the migration aborted meanwhile the caller's retry succeeds;
  // if the fence is still up it bounces again and the caller's bounded
  // attempt loop surfaces kUnavailable (pending — safe either way).
  co_return loc;
}

sim::Task<KvResult> SwarmKvSession::Get(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, /*seed_metadata=*/false, &result);
  bool moved = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    SafeGuessObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgReadResult r = co_await obj.Read();
    result.rtts += r.rtts;
    if (r.status == SgStatus::kDeleted) {
      loc = co_await HandleDeleted(key, loc.generation, &result);
      continue;
    }
    if (r.status == SgStatus::kMoved) {
      moved = true;
      loc = co_await HandleMoved(key, loc.generation, &result);
      continue;
    }
    result.status = MapStatus(r.status);
    if (r.status == SgStatus::kOk) {
      result.value = std::move(r.value);
      result.fast_path = r.fast_path && result.cache_hit && attempt == 0;
      result.used_inplace = r.used_inplace;
    }
    co_return result;
  }
  // Exhausted on tombstones alone the key was certainly absent at some point;
  // exhausted chasing a migration fence it may be alive on the new layout —
  // only unavailability is safe to report then.
  result.status = moved ? KvStatus::kUnavailable : KvStatus::kNotFound;
  co_return result;
}

sim::Task<KvResult> SwarmKvSession::Update(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  Located loc = co_await Locate(key, /*seed_metadata=*/true, &result);
  // Set once a Write bounced off a tombstone: the bounced attempt INSTALLED
  // its guessed word before observing the tombstone, and a reader that had
  // already fetched metadata may commit it — so a kNotFound from here on is
  // "possibly applied", not a definite observation of absence.
  bool bounced = false;
  bool moved = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;  // §5.3.3: not indexed → fail.
      result.ambiguous = bounced;
      co_return result;
    }
    SafeGuessObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult r = co_await obj.Write(value);
    result.rtts += r.rtts;
    if (r.status == SgStatus::kDeleted) {
      bounced = true;
      loc = co_await HandleDeleted(key, loc.generation, &result);
      continue;
    }
    if (r.status == SgStatus::kMoved) {
      // kMoved guarantees the write took NO effect on the fenced layout, so
      // re-executing it against the post-flip layout is a plain retry.
      moved = true;
      loc = co_await HandleMoved(key, loc.generation, &result);
      continue;
    }
    result.status = MapStatus(r.status);
    result.fast_path = r.fast_path && result.cache_hit && attempt == 0;
    co_return result;
  }
  result.status = moved ? KvStatus::kUnavailable : KvStatus::kNotFound;
  result.ambiguous = bounced;
  co_return result;
}

sim::Task<KvResult> SwarmKvSession::Insert(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  for (int attempt = 0; attempt < 3; ++attempt) {
    // §5.3.1: pick replicas, allocate cleared buffers (clients pre-allocate,
    // so this costs no roundtrip), then IN PARALLEL replicate the value and
    // insert the location into the index — one roundtrip total.
    std::shared_ptr<const ObjectLayout> layout = AllocateForKey(key);
    auto obj_cache = worker_->SlotCacheFor(layout.get());
    SafeGuessObject obj(worker_, layout.get(), obj_cache);
    // One doorbell covers the replica writes AND the index insert RPC.
    auto [wr, ins] = co_await fabric::PostBoth(
        worker_->cpu(), worker_->sim(), obj.Write(value),
        index_->InsertIfAbsent(key, layout, worker_->cpu()));
    result.rtts += wr.rtts > 1 ? wr.rtts : 1;

    if (ins.first) {
      // Fresh mapping: the parallel SWARM write targeted exactly these
      // replicas, so we are done.
      index::CacheEntry entry;
      entry.layout = layout;
      entry.generation = ins.second.generation;
      entry.obj_cache = obj_cache;
      cache_->Put(key, std::move(entry));
      result.status = MapStatus(wr.status);
      result.fast_path = wr.fast_path;
      co_return result;
    }

    // A mapping already exists: recycle our buffers and turn the insert
    // into an update on the existing replicas (§5.3.1).
    index_->Retire(std::move(layout));
    Located loc;
    loc.found = true;
    loc.layout = ins.second.layout;
    loc.obj_cache = worker_->SlotCacheFor(ins.second.layout.get());
    loc.generation = ins.second.generation;
    index::CacheEntry entry;
    entry.layout = loc.layout;
    entry.generation = loc.generation;
    entry.obj_cache = loc.obj_cache;
    cache_->Put(key, std::move(entry));

    SafeGuessObject existing(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult wr2 = co_await existing.Write(value);
    result.rtts += wr2.rtts;
    if (wr2.status == SgStatus::kMoved) {
      // The existing mapping migrated mid-write with provably no effect: drop
      // the cached copy and retry; the next InsertIfAbsent round returns the
      // post-flip mapping (or finds the entry gone and re-inserts fresh).
      cache_->Invalidate(key);
      continue;
    }
    if (wr2.status == SgStatus::kDeleted) {
      // The existing mapping is tombstoned: overwrite it (§5.3.1) by
      // unmapping and retrying the insert with fresh replicas.
      cache_->Invalidate(key);
      // Generation-guarded unmap of a tombstone before retrying the insert:
      // if it loses (concurrent remap won), the next InsertIfAbsent round
      // observes the winner — either outcome converges, so the result is
      // intentionally dropped.
      DiscardStatus(co_await index_->RemoveIfGeneration(key, loc.generation, worker_->cpu()));
      ++result.rtts;
      continue;
    }
    result.status = wr2.status == SgStatus::kOk ? KvStatus::kExists : MapStatus(wr2.status);
    co_return result;
  }
  result.status = KvStatus::kUnavailable;
  co_return result;
}

sim::Task<KvResult> SwarmKvSession::Remove(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, /*seed_metadata=*/false, &result);
  bool moved = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    SafeGuessObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult del = co_await obj.Delete();
    result.rtts += del.rtts;
    if (del.status == SgStatus::kMoved) {
      // Effect-free bounce off a migration fence: the tombstone never landed,
      // so re-executing the delete on the post-flip layout is safe.
      moved = true;
      loc = co_await HandleMoved(key, loc.generation, &result);
      continue;
    }
    if (del.status == SgStatus::kDeleted) {
      // Another deleter's tombstone is on this object too. Consult the
      // index: if it still maps OUR generation (concurrent removes racing on
      // the live object) or nothing at all, our replicated tombstone stands
      // and the delete succeeded. Only a NEWER generation means our mapping
      // was stale (deleted + re-inserted since we cached it, §5.3.4) and the
      // live object still needs deleting.
      cache_->Invalidate(key);
      auto idx = co_await index_->Lookup(key, worker_->cpu());
      ++result.rtts;
      if (idx.has_value() && idx->generation != loc.generation) {
        loc.found = true;
        loc.layout = idx->layout;
        loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
        loc.generation = idx->generation;
        continue;
      }
      if (idx.has_value()) {
        sim::Spawn(UnmapLater(index_, key, idx->generation));
      }
      result.status = KvStatus::kOk;
      co_return result;
    }
    result.fast_path = del.fast_path && result.cache_hit && attempt == 0;
    cache_->Invalidate(key);
    if (del.status == SgStatus::kOk) {
      // §5.3.2: the delete is over once the tombstone is replicated;
      // unmapping the index entry happens in the background.
      sim::Spawn(UnmapLater(index_, key, loc.generation));
      result.status = KvStatus::kOk;
    } else {
      result.status = MapStatus(del.status);
    }
    co_return result;
  }
  // Every attempt found the mapped object already tombstoned: the key kept
  // being deleted under us, so "absent" was certainly observable. If any
  // attempt instead chased a migration fence, the key may be alive on its new
  // layout — report unavailability (our tombstone provably never landed).
  result.status = moved ? KvStatus::kUnavailable : KvStatus::kNotFound;
  co_return result;
}

}  // namespace swarm::kv
