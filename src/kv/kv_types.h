// Common key-value store interface shared by SWARM-KV and the three
// baselines (RAW, DM-ABD, FUSEE), so benchmarks and examples can drive any
// of them interchangeably.

#ifndef SWARM_SRC_KV_KV_TYPES_H_
#define SWARM_SRC_KV_KV_TYPES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/task.h"

namespace swarm::kv {

// [[nodiscard]] (here and on KvResult): an unread KV status is the
// statically detectable shape of the chaos-found dropped-completion bugs;
// intentional drops go through swarm::DiscardStatus (src/util/discard.h).
enum class [[nodiscard]] KvStatus : uint8_t {
  kOk = 0,
  kNotFound,     // Key absent (never inserted, or deleted).
  kExists,       // Insert found an existing live mapping and updated it.
  kUnavailable,  // Quorum lost / store recovering.
};

struct [[nodiscard]] KvResult {
  KvStatus status = KvStatus::kUnavailable;
  sim::Bytes value;  // For gets (pool-backed: a fresh result is heap-free).
  int rtts = 0;                // Network roundtrips this op consumed.
  bool fast_path = false;      // Completed in the protocol's fast path.
  bool used_inplace = false;   // Gets: value served from in-place data.
  bool cache_hit = false;      // Location served from the client cache.
  // kNotFound only: the op's write may nonetheless have taken effect — a
  // Safe-Guess update that discovered a tombstone AFTER installing its
  // guessed word, which a concurrent reader may still commit. Testing
  // harnesses must treat such an op as possibly-applied, not as a definite
  // observation of absence.
  bool ambiguous = false;

  bool ok() const { return status == KvStatus::kOk || status == KvStatus::kExists; }
};

// One client worker's session with a store: supports one outstanding
// operation at a time (run several sessions for concurrent operations).
class KvSession {
 public:
  virtual ~KvSession() = default;

  virtual sim::Task<KvResult> Get(uint64_t key) = 0;
  virtual sim::Task<KvResult> Update(uint64_t key, std::span<const uint8_t> value) = 0;
  virtual sim::Task<KvResult> Insert(uint64_t key, std::span<const uint8_t> value) = 0;
  virtual sim::Task<KvResult> Remove(uint64_t key) = 0;
};

}  // namespace swarm::kv

#endif  // SWARM_SRC_KV_KV_TYPES_H_
