// DM-ABD key-value store (§7, "Baselines"): values replicated with the ABD
// protocol using pure out-of-place updates. Strongly consistent and
// fault-tolerant like SWARM-KV, but gets and updates commonly take two
// roundtrips (Table 2): gets chase a pointer, updates first discover a
// fresh timestamp (hidden behind the out-of-place data write) and then
// install it with a CAS.

#ifndef SWARM_SRC_KV_DM_ABD_KV_H_
#define SWARM_SRC_KV_DM_ABD_KV_H_

#include <memory>
#include <vector>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/kv_types.h"
#include "src/swarm/placement.h"
#include "src/swarm/abd.h"
#include "src/swarm/worker.h"

namespace swarm::kv {

class DmAbdKvSession : public KvSession {
 public:
  DmAbdKvSession(Worker* worker, index::IndexService* index, index::ClientCache* cache)
      : worker_(worker), index_(index), cache_(cache) {}

  sim::Task<KvResult> Get(uint64_t key) override;
  sim::Task<KvResult> Update(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Insert(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Remove(uint64_t key) override;

  // Placement filter for fresh inserts (MembershipService::serving()).
  // Unset = place on all nodes.
  void set_serving(std::shared_ptr<const std::vector<bool>> serving) {
    serving_ = std::move(serving);
  }

 private:
  struct Located {
    bool found = false;
    bool cache_hit = false;
    std::shared_ptr<const ObjectLayout> layout;
    std::shared_ptr<ObjectCache> obj_cache;
    uint64_t generation = 0;
  };

  sim::Task<Located> Locate(uint64_t key, KvResult* result);
  sim::Task<Located> HandleDeleted(uint64_t key, uint64_t stale_generation, KvResult* result);
  // Chases the index after a migration-fence bounce (see SwarmKvSession's
  // HandleMoved): never unmaps — the key is alive, just in transit.
  sim::Task<Located> HandleMoved(uint64_t key, uint64_t stale_generation, KvResult* result);
  std::shared_ptr<const ObjectLayout> AllocateForKey(uint64_t key);

  Worker* worker_;
  index::IndexService* index_;
  index::ClientCache* cache_;
  std::shared_ptr<const std::vector<bool>> serving_;
  PlacementProbe place_;  // Minimal-remap placement over the serving set.
};

}  // namespace swarm::kv

#endif  // SWARM_SRC_KV_DM_ABD_KV_H_
