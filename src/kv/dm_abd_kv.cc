#include "src/kv/dm_abd_kv.h"

#include "src/hash/xxhash.h"
#include "src/sim/sync.h"

namespace swarm::kv {
namespace {

sim::Task<void> UnmapLater(index::IndexService* index, uint64_t key, uint64_t generation) {
  (void)co_await index->RemoveIfGeneration(key, generation, nullptr);
}

KvStatus MapStatus(SgStatus s) {
  switch (s) {
    case SgStatus::kOk:
      return KvStatus::kOk;
    case SgStatus::kNotFound:
    case SgStatus::kDeleted:
      return KvStatus::kNotFound;
    case SgStatus::kUnavailable:
      return KvStatus::kUnavailable;
  }
  return KvStatus::kUnavailable;
}

}  // namespace

std::shared_ptr<const ObjectLayout> DmAbdKvSession::AllocateForKey(uint64_t key) {
  const ProtocolConfig& cfg = worker_->config();
  const int n = worker_->fabric()->num_nodes();
  int nodes[kMaxReplicas];
  const uint64_t h = hash::Mix64(key, 0x414244);  // "ABD"
  for (int i = 0; i < cfg.replicas; ++i) {
    nodes[i] = static_cast<int>((h + static_cast<uint64_t>(i)) % static_cast<uint64_t>(n));
  }
  // One shared metadata word, no in-place region: pure out-of-place ABD.
  return std::make_shared<ObjectLayout>(AllocateObject(*worker_->fabric(), nodes, cfg.replicas,
                                                       /*meta_slots=*/1, /*max_writers=*/1,
                                                       cfg.max_value, /*inplace_copies=*/0));
}

sim::Task<DmAbdKvSession::Located> DmAbdKvSession::Locate(uint64_t key, KvResult* result) {
  Located loc;
  if (index::CacheEntry* e = cache_->Lookup(key)) {
    loc.found = true;
    loc.cache_hit = true;
    loc.layout = e->layout;
    loc.obj_cache = worker_->SlotCacheFor(e->layout.get());
    loc.generation = e->generation;
    result->cache_hit = true;
    co_return loc;
  }
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  loc.found = true;
  loc.layout = idx->layout;
  loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
  loc.generation = idx->generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

sim::Task<DmAbdKvSession::Located> DmAbdKvSession::HandleDeleted(uint64_t key,
                                                                 uint64_t stale_generation,
                                                                 KvResult* result) {
  Located loc;
  cache_->Invalidate(key);
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  if (idx->generation == stale_generation) {
    sim::Spawn(UnmapLater(index_, key, idx->generation));
    co_return loc;
  }
  loc.found = true;
  loc.layout = idx->layout;
  loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
  loc.generation = idx->generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

sim::Task<KvResult> DmAbdKvSession::Get(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    AbdObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgReadResult r = co_await obj.Read();
    result.rtts += r.rtts;
    if (r.status == SgStatus::kDeleted) {
      loc = co_await HandleDeleted(key, loc.generation, &result);
      continue;
    }
    result.status = MapStatus(r.status);
    if (r.status == SgStatus::kOk) {
      result.value = std::move(r.value);
    }
    co_return result;
  }
  result.status = KvStatus::kNotFound;
  co_return result;
}

sim::Task<KvResult> DmAbdKvSession::Update(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    AbdObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult r = co_await obj.Write(value);
    result.rtts += r.rtts;
    if (r.status == SgStatus::kDeleted) {
      loc = co_await HandleDeleted(key, loc.generation, &result);
      continue;
    }
    result.status = MapStatus(r.status);
    co_return result;
  }
  result.status = KvStatus::kNotFound;
  co_return result;
}

sim::Task<KvResult> DmAbdKvSession::Insert(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  std::shared_ptr<const ObjectLayout> layout = AllocateForKey(key);
  auto obj_cache = worker_->SlotCacheFor(layout.get());
  AbdObject obj(worker_, layout.get(), obj_cache);
  // One doorbell covers the phase-1 replica writes AND the index insert RPC.
  auto [wr, ins] =
      co_await fabric::PostBoth(worker_->cpu(), worker_->sim(), obj.Write(value),
                                index_->InsertIfAbsent(key, layout, worker_->cpu()));
  result.rtts += wr.rtts;
  if (ins.first) {
    index::CacheEntry entry;
    entry.layout = layout;
    entry.generation = ins.second.generation;
    entry.obj_cache = obj_cache;
    cache_->Put(key, std::move(entry));
    result.status = MapStatus(wr.status);
    co_return result;
  }
  index_->Retire(std::move(layout));
  Located loc;
  loc.found = true;
  loc.layout = ins.second.layout;
  loc.obj_cache = worker_->SlotCacheFor(ins.second.layout.get());
  loc.generation = ins.second.generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  AbdObject existing(worker_, loc.layout.get(), loc.obj_cache);
  SgWriteResult wr2 = co_await existing.Write(value);
  result.rtts += wr2.rtts;
  result.status = wr2.status == SgStatus::kOk ? KvStatus::kExists : MapStatus(wr2.status);
  co_return result;
}

sim::Task<KvResult> DmAbdKvSession::Remove(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    AbdObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult del = co_await obj.Delete();
    result.rtts += del.rtts;
    if (del.status == SgStatus::kDeleted) {
      // Another deleter's tombstone is on this object too. If the index
      // still maps OUR generation (concurrent removes racing on the live
      // object) or nothing at all, our replicated tombstone stands and the
      // delete succeeded; only a NEWER generation means our mapping was
      // stale (deleted + re-inserted) and the live object remains.
      cache_->Invalidate(key);
      auto idx = co_await index_->Lookup(key, worker_->cpu());
      ++result.rtts;
      if (idx.has_value() && idx->generation != loc.generation) {
        loc.found = true;
        loc.layout = idx->layout;
        loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
        loc.generation = idx->generation;
        continue;
      }
      if (idx.has_value()) {
        sim::Spawn(UnmapLater(index_, key, idx->generation));
      }
      result.status = KvStatus::kOk;
      co_return result;
    }
    cache_->Invalidate(key);
    if (del.status == SgStatus::kOk) {
      // Unmap only once the tombstone is replicated: unmapping after a
      // failed delete would hide the still-live object from cache-miss
      // clients while cached clients keep operating on it.
      sim::Spawn(UnmapLater(index_, key, loc.generation));
      result.status = KvStatus::kOk;
    } else {
      result.status = MapStatus(del.status);
    }
    co_return result;
  }
  result.status = KvStatus::kNotFound;
  co_return result;
}

}  // namespace swarm::kv
