#include "src/kv/dm_abd_kv.h"

#include "src/hash/xxhash.h"
#include "src/util/discard.h"
#include "src/sim/sync.h"
#include "src/swarm/placement.h"

namespace swarm::kv {
namespace {

sim::Task<void> UnmapLater(index::IndexService* index, uint64_t key, uint64_t generation) {
  // Best-effort tombstone unmap: the generation guard makes a lost or
  // duplicated attempt harmless (a newer mapping wins), so the outcome
  // carries no actionable signal for this detached cleanup task.
  DiscardStatus(co_await index->RemoveIfGeneration(key, generation, nullptr));
}

KvStatus MapStatus(SgStatus s) {
  switch (s) {
    case SgStatus::kOk:
      return KvStatus::kOk;
    case SgStatus::kNotFound:
    case SgStatus::kDeleted:
      return KvStatus::kNotFound;
    case SgStatus::kUnavailable:
      return KvStatus::kUnavailable;
    case SgStatus::kMoved:
      // Only surfaces when a moved bounce could not be resolved by
      // re-locating (the op loops intercept kMoved first): the op provably
      // had no effect, so pending/unavailable is the safe report.
      return KvStatus::kUnavailable;
  }
  return KvStatus::kUnavailable;
}

// Index re-lookups HandleMoved spends waiting for an in-flight ownership
// flip to commit before handing the mapping back to the attempt loop.
constexpr int kMovedLookupRetries = 6;

}  // namespace

std::shared_ptr<const ObjectLayout> DmAbdKvSession::AllocateForKey(uint64_t key) {
  const ProtocolConfig& cfg = worker_->config();
  const int n = worker_->fabric()->num_nodes();
  int nodes[kMaxReplicas];
  const uint64_t h = hash::Mix64(key, 0x414244);  // "ABD"
  place_.Pick(h, cfg.replicas, n, serving_.get(), nodes);
  // One shared metadata word, no in-place region: pure out-of-place ABD.
  return std::make_shared<ObjectLayout>(AllocateObject(*worker_->fabric(), nodes, cfg.replicas,
                                                       /*meta_slots=*/1, /*max_writers=*/1,
                                                       cfg.max_value, /*inplace_copies=*/0));
}

sim::Task<DmAbdKvSession::Located> DmAbdKvSession::Locate(uint64_t key, KvResult* result) {
  Located loc;
  if (index::CacheEntry* e = cache_->Lookup(key)) {
    loc.found = true;
    loc.cache_hit = true;
    loc.layout = e->layout;
    loc.obj_cache = worker_->SlotCacheFor(e->layout.get());
    loc.generation = e->generation;
    result->cache_hit = true;
    co_return loc;
  }
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  loc.found = true;
  loc.layout = idx->layout;
  loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
  loc.generation = idx->generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

sim::Task<DmAbdKvSession::Located> DmAbdKvSession::HandleDeleted(uint64_t key,
                                                                 uint64_t stale_generation,
                                                                 KvResult* result) {
  Located loc;
  cache_->Invalidate(key);
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  ++result->rtts;
  if (!idx.has_value()) {
    co_return loc;
  }
  if (idx->generation == stale_generation) {
    sim::Spawn(UnmapLater(index_, key, idx->generation));
    co_return loc;
  }
  loc.found = true;
  loc.layout = idx->layout;
  loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
  loc.generation = idx->generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  co_return loc;
}

sim::Task<DmAbdKvSession::Located> DmAbdKvSession::HandleMoved(uint64_t key,
                                                               uint64_t stale_generation,
                                                               KvResult* result) {
  // See SwarmKvSession::HandleMoved — identical chase: either the flip
  // commits (new generation), the migration aborts (same generation, fence
  // lifted), or a concurrent delete finishes (entry gone). Never unmap.
  Located loc;
  cache_->Invalidate(key);
  for (int i = 0; i < kMovedLookupRetries; ++i) {
    auto idx = co_await index_->Lookup(key, worker_->cpu());
    ++result->rtts;
    if (!idx.has_value()) {
      co_return loc;
    }
    loc.found = true;
    loc.layout = idx->layout;
    loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
    loc.generation = idx->generation;
    if (idx->generation != stale_generation) {
      index::CacheEntry entry;
      entry.layout = loc.layout;
      entry.generation = loc.generation;
      entry.obj_cache = loc.obj_cache;
      cache_->Put(key, std::move(entry));
      co_return loc;
    }
    co_await worker_->sim()->Delay(worker_->config().escalation_timeout);
  }
  co_return loc;
}

sim::Task<KvResult> DmAbdKvSession::Get(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  bool moved = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    AbdObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgReadResult r = co_await obj.Read();
    result.rtts += r.rtts;
    if (r.status == SgStatus::kDeleted) {
      loc = co_await HandleDeleted(key, loc.generation, &result);
      continue;
    }
    if (r.status == SgStatus::kMoved) {
      moved = true;
      loc = co_await HandleMoved(key, loc.generation, &result);
      continue;
    }
    result.status = MapStatus(r.status);
    if (r.status == SgStatus::kOk) {
      result.value = std::move(r.value);
    }
    co_return result;
  }
  // Exhausted chasing a migration fence: the key may be alive on the new
  // layout, so only unavailability is safe to report.
  result.status = moved ? KvStatus::kUnavailable : KvStatus::kNotFound;
  co_return result;
}

sim::Task<KvResult> DmAbdKvSession::Update(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  bool moved = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    AbdObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult r = co_await obj.Write(value);
    result.rtts += r.rtts;
    if (r.status == SgStatus::kDeleted) {
      loc = co_await HandleDeleted(key, loc.generation, &result);
      continue;
    }
    if (r.status == SgStatus::kMoved) {
      // kMoved guarantees the write took NO effect on the fenced layout, so
      // re-executing it against the post-flip layout is a plain retry.
      moved = true;
      loc = co_await HandleMoved(key, loc.generation, &result);
      continue;
    }
    result.status = MapStatus(r.status);
    co_return result;
  }
  result.status = moved ? KvStatus::kUnavailable : KvStatus::kNotFound;
  co_return result;
}

sim::Task<KvResult> DmAbdKvSession::Insert(uint64_t key, std::span<const uint8_t> value) {
  KvResult result;
  std::shared_ptr<const ObjectLayout> layout = AllocateForKey(key);
  auto obj_cache = worker_->SlotCacheFor(layout.get());
  AbdObject obj(worker_, layout.get(), obj_cache);
  // One doorbell covers the phase-1 replica writes AND the index insert RPC.
  auto [wr, ins] =
      co_await fabric::PostBoth(worker_->cpu(), worker_->sim(), obj.Write(value),
                                index_->InsertIfAbsent(key, layout, worker_->cpu()));
  result.rtts += wr.rtts;
  if (ins.first) {
    index::CacheEntry entry;
    entry.layout = layout;
    entry.generation = ins.second.generation;
    entry.obj_cache = obj_cache;
    cache_->Put(key, std::move(entry));
    result.status = MapStatus(wr.status);
    co_return result;
  }
  index_->Retire(std::move(layout));
  Located loc;
  loc.found = true;
  loc.layout = ins.second.layout;
  loc.obj_cache = worker_->SlotCacheFor(ins.second.layout.get());
  loc.generation = ins.second.generation;
  index::CacheEntry entry;
  entry.layout = loc.layout;
  entry.generation = loc.generation;
  entry.obj_cache = loc.obj_cache;
  cache_->Put(key, std::move(entry));
  AbdObject existing(worker_, loc.layout.get(), loc.obj_cache);
  SgWriteResult wr2 = co_await existing.Write(value);
  result.rtts += wr2.rtts;
  if (wr2.status == SgStatus::kMoved) {
    // The existing mapping migrated mid-write with provably no effect:
    // re-locate once and re-run the value write on the post-flip layout.
    Located moved_loc = co_await HandleMoved(key, loc.generation, &result);
    if (!moved_loc.found) {
      result.status = KvStatus::kNotFound;  // A concurrent delete finished.
      co_return result;
    }
    AbdObject moved_obj(worker_, moved_loc.layout.get(), moved_loc.obj_cache);
    SgWriteResult wr3 = co_await moved_obj.Write(value);
    result.rtts += wr3.rtts;
    result.status = wr3.status == SgStatus::kOk ? KvStatus::kExists : MapStatus(wr3.status);
    co_return result;
  }
  result.status = wr2.status == SgStatus::kOk ? KvStatus::kExists : MapStatus(wr2.status);
  co_return result;
}

sim::Task<KvResult> DmAbdKvSession::Remove(uint64_t key) {
  KvResult result;
  Located loc = co_await Locate(key, &result);
  bool moved = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (!loc.found) {
      result.status = KvStatus::kNotFound;
      co_return result;
    }
    AbdObject obj(worker_, loc.layout.get(), loc.obj_cache);
    SgWriteResult del = co_await obj.Delete();
    result.rtts += del.rtts;
    if (del.status == SgStatus::kMoved) {
      // Effect-free bounce off a migration fence: the tombstone never landed,
      // so re-executing the delete on the post-flip layout is safe.
      moved = true;
      loc = co_await HandleMoved(key, loc.generation, &result);
      continue;
    }
    if (del.status == SgStatus::kDeleted) {
      // Another deleter's tombstone is on this object too. If the index
      // still maps OUR generation (concurrent removes racing on the live
      // object) or nothing at all, our replicated tombstone stands and the
      // delete succeeded; only a NEWER generation means our mapping was
      // stale (deleted + re-inserted) and the live object remains.
      cache_->Invalidate(key);
      auto idx = co_await index_->Lookup(key, worker_->cpu());
      ++result.rtts;
      if (idx.has_value() && idx->generation != loc.generation) {
        loc.found = true;
        loc.layout = idx->layout;
        loc.obj_cache = worker_->SlotCacheFor(idx->layout.get());
        loc.generation = idx->generation;
        continue;
      }
      if (idx.has_value()) {
        sim::Spawn(UnmapLater(index_, key, idx->generation));
      }
      result.status = KvStatus::kOk;
      co_return result;
    }
    cache_->Invalidate(key);
    if (del.status == SgStatus::kOk) {
      // Unmap only once the tombstone is replicated: unmapping after a
      // failed delete would hide the still-live object from cache-miss
      // clients while cached clients keep operating on it.
      sim::Spawn(UnmapLater(index_, key, loc.generation));
      result.status = KvStatus::kOk;
    } else {
      result.status = MapStatus(del.status);
    }
    co_return result;
  }
  result.status = moved ? KvStatus::kUnavailable : KvStatus::kNotFound;
  co_return result;
}

}  // namespace swarm::kv
