// RAW baseline (§7, "Baselines"): an unreplicated disaggregated key-value
// store with no concurrency control. Not useful in practice — concurrent
// accesses can return torn data and a node failure loses keys — but it
// establishes the latency floor: every get and update is exactly one
// roundtrip to one memory node.
//
// Per-key layout on its single node: [len 8 B][value]. Gets read the whole
// region; updates write [len][value] blindly in place.
//
// Stale location caches: with no replicated tombstone to bounce off, a
// cached location can silently go dead under a delete + re-insert. Gets
// re-locate through the index when a cached region reads as tombstoned, and
// removes await the generation-guarded unmap (retrying against the index
// when the cached generation lost) so kOk is never reported for a remove
// that provably had no effect. Updates stay blind — a lost update into a
// dead region is exactly the anomaly the replicated stores' metadata
// machinery exists to prevent, and the latency floor keeps it.

#ifndef SWARM_SRC_KV_RAW_KV_H_
#define SWARM_SRC_KV_RAW_KV_H_

#include <memory>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/kv_types.h"
#include "src/swarm/worker.h"

namespace swarm::kv {

class RawKvSession : public KvSession {
 public:
  RawKvSession(Worker* worker, index::IndexService* index, index::ClientCache* cache)
      : worker_(worker), index_(index), cache_(cache) {}

  sim::Task<KvResult> Get(uint64_t key) override;
  sim::Task<KvResult> Update(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Insert(uint64_t key, std::span<const uint8_t> value) override;
  sim::Task<KvResult> Remove(uint64_t key) override;

 private:
  struct Located {
    bool found = false;
    bool cache_hit = false;
    std::shared_ptr<const ObjectLayout> layout;  // 1 replica, region at meta_addr.
    uint64_t generation = 0;
  };

  sim::Task<Located> Locate(uint64_t key, KvResult* result);

  Worker* worker_;
  index::IndexService* index_;
  index::ClientCache* cache_;
};

}  // namespace swarm::kv

#endif  // SWARM_SRC_KV_RAW_KV_H_
