// In-flight op tracking for KV sessions.
//
// TrackedKvSession decorates any KvSession with a sequence-numbered in-flight
// window, so a RecyclerParticipant's epoch ack can genuinely DRAIN the
// client's outstanding operations (§4.5: "before recycling, a client asks all
// readers to stop accessing the to-be-recycled buffers; readers acknowledge")
// instead of modeling the drain as a fixed delay. Works for SWARM-KV and all
// baselines without touching their implementations.

#ifndef SWARM_SRC_KV_TRACKED_SESSION_H_
#define SWARM_SRC_KV_TRACKED_SESSION_H_

#include <cstdint>
#include <set>
#include <span>

#include "src/kv/kv_types.h"

namespace swarm::kv {

class TrackedKvSession : public KvSession {
 public:
  explicit TrackedKvSession(KvSession* inner) : inner_(inner) {}

  // The drain pair for RecyclerParticipant::CoupleDrain. `next_seq` is the
  // barrier: every op started before a drain captured it has a smaller
  // sequence. `oldest_inflight` equals the barrier once all of those have
  // responded (ops started after never hold the drain).
  uint64_t next_seq() const { return next_seq_; }
  uint64_t oldest_inflight() const {
    return inflight_.empty() ? next_seq_ : *inflight_.begin();
  }

  sim::Task<KvResult> Get(uint64_t key) override {
    const uint64_t seq = Begin();
    KvResult r = co_await inner_->Get(key);
    End(seq);
    co_return r;
  }
  sim::Task<KvResult> Update(uint64_t key, std::span<const uint8_t> value) override {
    const uint64_t seq = Begin();
    KvResult r = co_await inner_->Update(key, value);
    End(seq);
    co_return r;
  }
  sim::Task<KvResult> Insert(uint64_t key, std::span<const uint8_t> value) override {
    const uint64_t seq = Begin();
    KvResult r = co_await inner_->Insert(key, value);
    End(seq);
    co_return r;
  }
  sim::Task<KvResult> Remove(uint64_t key) override {
    const uint64_t seq = Begin();
    KvResult r = co_await inner_->Remove(key);
    End(seq);
    co_return r;
  }

 private:
  uint64_t Begin() {
    const uint64_t seq = next_seq_++;
    inflight_.insert(seq);
    return seq;
  }
  void End(uint64_t seq) { inflight_.erase(seq); }

  KvSession* inner_;
  uint64_t next_seq_ = 0;
  // Ordered: the drain needs the OLDEST live sequence. Sessions run one op
  // at a time, but nothing here relies on that.
  std::set<uint64_t> inflight_;
};

}  // namespace swarm::kv

#endif  // SWARM_SRC_KV_TRACKED_SESSION_H_
