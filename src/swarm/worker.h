// Per-worker client context.
//
// A Worker models one outstanding application operation stream: it owns a
// queue pair and an out-of-place buffer pool per memory node, a timestamp
// clock, and shares a ClientCpu (submission serialization, §7.2) and a
// known-failed node set with the other workers of the same client process.

#ifndef SWARM_SRC_SWARM_WORKER_H_
#define SWARM_SRC_SWARM_WORKER_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/swarm/clock.h"
#include "src/swarm/layout.h"

namespace swarm {

struct ProtocolConfig {
  int replicas = 3;
  int meta_slots = 1;          // K metadata buffers per object (§4.4).
  int max_writers = 8;         // W timestamp locks per object.
  uint32_t max_value = 64;     // value-buffer capacity, bytes.
  int oop_pool_slots = 512;    // pre-allocated out-of-place buffers per worker per node.
  int inplace_copies = 1;      // replicas holding in-place data (§6 uses 1).

  // Fail fast when a writer's tid falls outside a layout's TSL region
  // (tid >= max_writers). Such a writer would CAS its timestamp lock PAST the
  // end of the object's slab slot into whatever object owns the neighboring
  // slot: its bounce/slow-path arbitration then reads foreign words as garbage
  // lock counters, loses every arbitration it should win, and reports kOk for
  // writes that never took effect — a linearizability violation surfaced by
  // 10-client 10^5-op contention storms against the default W=8. This is a
  // deployment misconfiguration (W must cover every writer tid), not a
  // runtime condition, so the check aborts. Off only in regression canaries
  // that deliberately reproduce the historical corruption.
  bool enforce_writer_bounds = true;

  // How long an optimistic-majority phase waits for its preferred replicas
  // before broadening to all replicas (§6).
  sim::Time escalation_timeout = 3000;
  // Upper bound on waiting for a lock/write quorum; fires only when a
  // majority of replicas is unreachable (safety is preserved either way).
  sim::Time quorum_timeout = 200 * sim::kMicrosecond;
};

class Worker {
 public:
  Worker(fabric::Fabric* fabric, uint32_t tid, fabric::ClientCpu* cpu, GuessClock* clock,
         const ProtocolConfig& config, std::shared_ptr<std::vector<bool>> known_failed)
      : fabric_(fabric), tid_(tid), cpu_(cpu), clock_(clock), config_(config),
        known_failed_(std::move(known_failed)) {
    if (cpu != nullptr) {
      cpu->Configure(&fabric->stats(), fabric->config().doorbell_batching,
                     fabric->config().max_wqe_per_doorbell);
    }
    for (int n = 0; n < fabric->num_nodes(); ++n) {
      EnsureNode(n);
    }
  }

  fabric::Fabric* fabric() { return fabric_; }
  sim::Simulator* sim() { return fabric_->sim(); }
  uint32_t tid() const { return tid_; }
  GuessClock& clock() { return *clock_; }
  const ProtocolConfig& config() const { return config_; }

  fabric::ClientCpu* cpu() { return cpu_; }
  // Queue pairs and buffer pools grow lazily: a worker created before a
  // membership admission connects to the hot-added node on first use (the QP
  // setup that in a real cluster the admission handshake performs). Deques,
  // not vectors — protocol coroutines hold Qp&/OopPool& across suspension
  // points, so growth must never move existing elements.
  fabric::Qp& qp(int node) {
    EnsureNode(node);
    return qps_[static_cast<size_t>(node)];
  }
  OopPool& pool(int node) {
    EnsureNode(node);
    return pools_[static_cast<size_t>(node)];
  }

  // This worker's In-n-Out slot-cache words for one object (Algorithm 7's
  // cached previous value, 8 B per replica). Slot caches are per-WRITER
  // state: each writer CASes its own metadata buffer (§4.4), so only its own
  // history predicts the slot's content. shared_ptr so straggler background
  // tasks can keep updating them safely.
  std::shared_ptr<ObjectCache> SlotCacheFor(const void* layout) {
    auto& entry = slot_caches_[layout];
    if (entry == nullptr) {
      entry = std::make_shared<ObjectCache>();
    }
    return entry;
  }

  uint64_t SlotCacheBytes() const {
    // 8 B per replica per object actually touched (the "In-n-Out metadata"
    // of a SWARM-KV cache entry, §7.1).
    return slot_caches_.size() * 8;
  }

  // Quorum multicast (the doorbell-batched quorum pattern): spawns
  // `make(i)` for i in [first, first+count) under ONE doorbell batch — every
  // verb those per-replica tasks post before their first completion shares a
  // single amortized submit_cost — then awaits `done` reaching `quorum`
  // within `timeout`. The per-replica tasks signal `done` themselves, so the
  // caller can keep waiting on the same counter for stragglers or a second
  // escalation wave.
  template <typename OpFactory>
  sim::Task<bool> BatchedQuorum(sim::Counter done, int quorum, sim::Time timeout, int first,
                                int count, OpFactory make) {
    {
      fabric::CpuBatch batch(cpu_);
      for (int i = first; i < first + count; ++i) {
        sim::Spawn(make(i));
      }
    }
    co_return co_await done.WaitFor(quorum, timeout);
  }

  // The shared vectors below may predate a hot-added node; out-of-range reads
  // mean "nothing known about it yet" and writes grow the vector in place.
  bool NodeKnownFailed(int node) const {
    const auto idx = static_cast<size_t>(node);
    return idx < known_failed_->size() && (*known_failed_)[idx];
  }
  void MarkNodeFailed(int node) {
    const auto idx = static_cast<size_t>(node);
    if (idx >= known_failed_->size()) {
      known_failed_->resize(idx + 1, false);
    }
    (*known_failed_)[idx] = true;
  }
  void MarkNodeRecovered(int node) {
    const auto idx = static_cast<size_t>(node);
    if (idx < known_failed_->size()) {
      (*known_failed_)[idx] = false;
    }
  }

  // Repair exclusion (MembershipService::repairing()): a node flagged here is
  // dropped from quorum selection entirely — unlike known-failed nodes, which
  // merely sort last in the preferred order, a repairing node must not be
  // contacted and must not count toward any majority, because its replica
  // slots are mid-rebuild and reads from it would miss committed writes.
  void set_repair_excluded(std::shared_ptr<const std::vector<bool>> excluded) {
    repair_excluded_ = std::move(excluded);
  }
  bool NodeQuorumExcluded(int node) const {
    const auto idx = static_cast<size_t>(node);
    return repair_excluded_ != nullptr && idx < repair_excluded_->size() &&
           (*repair_excluded_)[idx];
  }

  // Marks this worker as the repair coordinator: its verbs pass the repair
  // fence of a node mid-rejoin (everyone else keeps seeing kNodeFailed).
  void MarkRepairChannel() {
    repair_channel_ = true;
    for (auto& qp : qps_) {
      qp.set_repair_channel(true);
    }
  }

  // Tags every QP of this worker for per-QP fault targeting (chaos's
  // kQpDropBurst class). Scenarios tag client i's workers with tag i.
  void set_chaos_tag(int tag) {
    chaos_tag_ = tag;
    for (auto& qp : qps_) {
      qp.set_chaos_tag(tag);
    }
  }

  // --- Membership-epoch fencing (§5.4 per-client QP revocation) ---
  //
  // Wires the client process's cached membership epoch: every verb this
  // worker posts is stamped with it, and memory nodes reject stamps older
  // than the cluster's last repair-relevant transition (kStaleEpoch). The
  // epoch is shared among a client's workers like known_failed; the
  // membership service pushes advances into it (SubscribeEpoch) — or does
  // not, for the chaos suites' client that never learns about a rejoin.
  void set_epoch(std::shared_ptr<fabric::ClientEpoch> epoch) {
    epoch_ = std::move(epoch);
    for (auto& qp : qps_) {
      qp.set_epoch(&epoch_->value);
    }
  }
  const std::shared_ptr<fabric::ClientEpoch>& epoch() const { return epoch_; }

  // Wires the re-validation pull (MembershipService::ValidateEpoch) used by
  // RefreshEpoch. `pull_delay` models the pull's network roundtrip.
  void set_epoch_source(std::function<uint64_t()> validate, sim::Time pull_delay = 2 * 680) {
    epoch_validate_ = std::move(validate);
    epoch_pull_delay_ = pull_delay;
  }

  // True when some verb of this worker bounced off an epoch fence: its QP is
  // revoked and every further verb on it fails fast. Protocol retry loops
  // check this after a failed quorum phase — a kStaleEpoch completion is a
  // membership-staleness signal, NEVER evidence about object state — and
  // call RefreshEpoch() before retrying.
  bool EpochRefreshNeeded() const {
    for (const auto& qp : qps_) {
      if (qp.revoked()) {
        return true;
      }
    }
    return false;
  }

  // Re-validates the cached epoch with the membership service (the pull
  // path, which works even for a client whose push notifications never
  // arrive) and re-arms every revoked QP. Verbs posted afterwards carry the
  // fresh stamp and pass the fences again.
  sim::Task<void> RefreshEpoch() {
    if (epoch_ != nullptr && epoch_validate_) {
      co_await sim()->Delay(epoch_pull_delay_);
      epoch_->value = std::max(epoch_->value, epoch_validate_());
    }
    for (auto& qp : qps_) {
      qp.Rearm();
    }
  }

 private:
  // Creates the QP + buffer pool for `node` if missing, applying every
  // sticky per-worker setting so a lazily-connected node is indistinguishable
  // from one wired at construction.
  void EnsureNode(int node) {
    while (static_cast<int>(qps_.size()) <= node) {
      const int n = static_cast<int>(qps_.size());
      auto& qp = qps_.emplace_back(fabric_, n, cpu_);
      pools_.emplace_back(&fabric_->node(n), fabric_->sim(), config_.max_value,
                          config_.oop_pool_slots);
      if (repair_channel_) {
        qp.set_repair_channel(true);
      }
      if (chaos_tag_ >= 0) {
        qp.set_chaos_tag(chaos_tag_);
      }
      if (epoch_ != nullptr) {
        qp.set_epoch(&epoch_->value);
      }
    }
  }

  fabric::Fabric* fabric_;
  uint32_t tid_;
  fabric::ClientCpu* cpu_;
  GuessClock* clock_;
  ProtocolConfig config_;
  std::shared_ptr<std::vector<bool>> known_failed_;
  std::shared_ptr<const std::vector<bool>> repair_excluded_;
  std::shared_ptr<fabric::ClientEpoch> epoch_;
  std::function<uint64_t()> epoch_validate_;
  sim::Time epoch_pull_delay_ = 2 * 680;
  bool repair_channel_ = false;
  int chaos_tag_ = -1;
  // Deques: growth must not invalidate references held across co_awaits.
  std::deque<fabric::Qp> qps_;
  std::deque<OopPool> pools_;
  std::unordered_map<const void*, std::shared_ptr<ObjectCache>> slot_caches_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_WORKER_H_
