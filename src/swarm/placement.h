// Serving-filtered replica placement, shared by the KV stores.
//
// Two policies live here:
//
//   * PlaceReplicas — the classic (hash + i) over the serving set. Kept for
//     pre-elastic layouts, unit fixtures, and as the degenerate fallback.
//     Allocation-free: the hot insert path must not touch the heap
//     (zero_alloc_test guards the pick).
//
//   * PlacementProbe — serving-aware linear probing over the node index
//     space: a key's replicas are the first `replicas` serving nodes at
//     (h + step) % num_nodes. At full membership this is EXACTLY the modular
//     policy, and when a node crashes or drains only the keys whose probe
//     window crossed it re-home (to the next serving index) — every other
//     key keeps its placement, which is what makes million-key drain plans
//     proportional to the delta, not the store. Stateless and heap-free.
//
// Why a probe and not a hashed-vnode ring: an arc-length ring (tried first)
// re-shuffles WHICH keys live where even at identical aggregate balance, and
// the tracked Zipfian benches (fig11 failover, fig13 contention tails) are
// sensitive to exactly that — whether a handful of hot keys share the
// crashed or contended node moves p99s far beyond the 8% gate. The probe
// keeps the committed trajectory byte-stable at full membership and still
// bounds remap on failure/drain. The index layer's ShardRouter keeps a true
// vnode ring: shards are uniform services, so arc imbalance is harmless
// there. The trade-off: admitting a node re-aims future placements globally
// (h % n changes) — acceptable because placement only decides where NEW
// objects go, and admission rebalance is the MigrationService's job anyway.
//
// Placement only decides where NEW objects go. Existing layouts keep their
// replica nodes across membership changes; moving them is the
// MigrationService's job, never the placement's.

#ifndef SWARM_SRC_SWARM_PLACEMENT_H_
#define SWARM_SRC_SWARM_PLACEMENT_H_

#include <cstdint>
#include <vector>

namespace swarm {

// Fills nodes[0..replicas) with distinct-by-index candidates for a key whose
// placement hash is `h`. `serving` may be null (no filter) and may be shorter
// than num_nodes (nodes hot-added after the vector was wired default to
// non-serving until the membership grows it). Heap-free.
inline void PlaceReplicas(uint64_t h, int replicas, int num_nodes,
                          const std::vector<bool>* serving, int* nodes) {
  int count = 0;
  if (serving != nullptr) {
    for (int i = 0; i < num_nodes; ++i) {
      if (static_cast<size_t>(i) < serving->size() && (*serving)[static_cast<size_t>(i)]) {
        ++count;
      }
    }
  }
  const bool filtered = count > 0;
  if (!filtered) {
    // No filter wired, or a degenerate membership (nothing serving): fall
    // back to the full cluster rather than failing the allocation.
    count = num_nodes;
  }
  const auto n = static_cast<uint64_t>(count);
  for (int i = 0; i < replicas; ++i) {
    const auto pick = static_cast<int>((h + static_cast<uint64_t>(i)) % n);
    if (!filtered) {
      nodes[i] = pick;
      continue;
    }
    int seen = 0;
    for (int j = 0; j < num_nodes; ++j) {
      if (static_cast<size_t>(j) < serving->size() && (*serving)[static_cast<size_t>(j)] &&
          seen++ == pick) {
        nodes[i] = j;
        break;
      }
    }
  }
}

// Minimal-remap placement over the serving nodes (see the header comment for
// the policy and the ring-vs-probe trade-off). Stateless; each session keeps
// one for interface symmetry with the stateful policies it replaced.
class PlacementProbe {
 public:
  static constexpr int kMaxNodes = 256;  // Stack-buffer bound for callers.

  // Picks `replicas` distinct serving nodes by probing (h + step) upward.
  // Falls back to PlaceReplicas over the full cluster when nothing is
  // serving, and repeats the collected cycle when fewer serving nodes exist
  // than replicas (the caller's quorum math handles duplicates the same way
  // the modular policy did). Heap-free.
  void Pick(uint64_t h, int replicas, int num_nodes,
            const std::vector<bool>* serving, int* nodes) const {
    int found = 0;
    for (int step = 0; step < num_nodes && found < replicas; ++step) {
      const auto node =
          static_cast<int>((h + static_cast<uint64_t>(step)) % static_cast<uint64_t>(num_nodes));
      const bool s = serving == nullptr || serving->empty() ||
                     (static_cast<size_t>(node) < serving->size() &&
                      (*serving)[static_cast<size_t>(node)]);
      if (s) {
        nodes[found++] = node;
      }
    }
    if (found == 0) {
      // Degenerate membership (nothing serving): full-cluster fallback.
      PlaceReplicas(h, replicas, num_nodes, nullptr, nodes);
      return;
    }
    // Fewer serving nodes than replicas: repeat the cycle.
    for (int i = found; i > 0 && found < replicas;) {
      nodes[found] = nodes[found % i];
      ++found;
    }
  }
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_PLACEMENT_H_
