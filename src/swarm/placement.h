// Serving-filtered replica placement, shared by the KV stores.
//
// Placement hashes a key onto consecutive nodes. With elastic membership the
// candidate set is the SERVING nodes only (MembershipService::serving()):
// joining nodes hold nothing yet, draining nodes must not gain new extents,
// retired nodes are gone. When every node is serving — or no serving vector
// is wired (benchmarks, unit fixtures, fixed clusters) — the choice reduces
// to the classic (hash + i) % num_nodes, so pre-elastic layouts and tests
// are unchanged.
//
// Placement only decides where NEW objects go. Existing layouts keep their
// replica nodes across membership changes; moving them is the
// MigrationService's job, never the placement's.

#ifndef SWARM_SRC_SWARM_PLACEMENT_H_
#define SWARM_SRC_SWARM_PLACEMENT_H_

#include <cstdint>
#include <vector>

namespace swarm {

// Fills nodes[0..replicas) with distinct-by-index candidates for a key whose
// placement hash is `h`. `serving` may be null (no filter) and may be shorter
// than num_nodes (nodes hot-added after the vector was wired default to
// non-serving until the membership grows it).
inline void PlaceReplicas(uint64_t h, int replicas, int num_nodes,
                          const std::vector<bool>* serving, int* nodes) {
  std::vector<int> candidates;
  candidates.reserve(static_cast<size_t>(num_nodes));
  if (serving != nullptr) {
    for (int i = 0; i < num_nodes; ++i) {
      if (static_cast<size_t>(i) < serving->size() && (*serving)[static_cast<size_t>(i)]) {
        candidates.push_back(i);
      }
    }
  }
  if (candidates.empty()) {
    // No filter wired, or a degenerate membership (nothing serving): fall
    // back to the full cluster rather than failing the allocation.
    for (int i = 0; i < num_nodes; ++i) {
      candidates.push_back(i);
    }
  }
  const auto n = static_cast<uint64_t>(candidates.size());
  for (int i = 0; i < replicas; ++i) {
    nodes[i] = candidates[static_cast<size_t>((h + static_cast<uint64_t>(i)) % n)];
  }
}

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_PLACEMENT_H_
