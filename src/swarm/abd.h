// DM-ABD baseline (§7, "Baselines"): a disaggregated key-value register
// replicated with the classic ABD protocol (Algorithm 1) using pure
// out-of-place updates — the "good engineering solution using known
// techniques" SWARM is compared against.
//
// Roundtrip structure (Table 2):
//  * update: 2 RTs — {read metadata for a fresh timestamp ∥ write the value
//    out-of-place} then CAS the metadata pointer at a majority.
//  * get: 2 RTs — read metadata at a majority, then chase the out-of-place
//    pointer (+1 RT write-back when the quorum disagrees).
//
// Out-of-place buffers are self-validating (hash of length+payload in the
// header) because, unlike In-n-Out, the buffer is written before its
// metadata word exists. All writers share one metadata slot per replica, so
// CAS retries pile up under contention (§7.8) — DM-ABD lacks §4.4's
// per-writer buffer array.

#ifndef SWARM_SRC_SWARM_ABD_H_
#define SWARM_SRC_SWARM_ABD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/sim/task.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/safe_guess.h"
#include "src/swarm/worker.h"

namespace swarm {

// One ABD-replicated object bound to a worker. Uses the same ObjectLayout as
// SWARM objects, with meta_slots = 1 and no in-place region.
class AbdObject {
 public:
  AbdObject(Worker* worker, const ObjectLayout* layout, std::shared_ptr<ObjectCache> cache)
      : worker_(worker), layout_(layout), cache_(std::move(cache)) {}

  sim::Task<SgWriteResult> Write(std::span<const uint8_t> value);
  sim::Task<SgWriteResult> Delete();
  sim::Task<SgReadResult> Read();

  // Crash-recover rejoin repair (src/repair/): reads the register state back
  // from a surviving quorum (the target's node must be repair-excluded on
  // the calling worker) and CAS-maxes it into replica `target` — the exact
  // observed word for tombstones, a freshly written out-of-place image for
  // values. Returns false when no surviving quorum answered or the value
  // bytes could not be resolved (caller retries). `skip_tombstones` is the
  // canary-gallery bug knob (repair::RepairConfig::skip_tombstone_repair).
  sim::Task<bool> RepairReplica(int target, bool skip_tombstones = false);

  // Live migration (src/repair/migration.h): harvests this (source) layout's
  // authoritative state from its surviving quorum and installs it into
  // `dst`'s replica `target` — the cross-layout analogue of RepairReplica.
  // The image hash is re-salted with the destination's metadata address, so
  // the installed buffer self-validates under the new layout. The caller's
  // worker must ride the repair channel (the vacated source slot is
  // region-fenced during the harvest).
  sim::Task<bool> CopyReplicaTo(const ObjectLayout* dst, int target);

 private:
  // Shared harvest+install core of RepairReplica (dst == layout_) and
  // CopyReplicaTo (dst is the migration's replacement layout).
  sim::Task<bool> CopyReplicaInternal(const ObjectLayout* dst, int target, bool skip_tombstones);

  sim::Task<SgWriteResult> WriteWord(Meta base, std::span<const uint8_t> value);

  // One update attempt; Write() wraps it in the membership-refresh-then-
  // retry loop for attempts failed on kStaleEpoch completions.
  sim::Task<SgWriteResult> WriteAttempt(std::span<const uint8_t> value, bool* retry_safe);

  Worker* worker_;
  const ObjectLayout* layout_;
  std::shared_ptr<ObjectCache> cache_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_ABD_H_
