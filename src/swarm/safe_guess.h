// Safe-Guess (§3, Algorithms 2/3/10): SWARM's wait-free, linearizable
// replicated register with single-roundtrip reads and writes in the common
// case.
//
// Writes guess a fresh timestamp from the loosely synchronized clock and
// install it speculatively while reading the register in the same roundtrip;
// if the guess was provably fresh the write is done (and a background task
// promotes it to VERIFIED). Otherwise the writer arbitrates with potential
// readers through its timestamp lock: if it locks the guessed timestamp in
// WRITE mode it may safely re-execute with a fresh timestamp; if it fails,
// some reader committed to the guessed value and the write stands.
//
// Reads return immediately on VERIFIED values; GUESSED values require either
// a second confirming read plus a READ-mode lock, or — the wait-free escape
// hatch — observing two different tuples from the same writer.

#ifndef SWARM_SRC_SWARM_SAFE_GUESS_H_
#define SWARM_SRC_SWARM_SAFE_GUESS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/sim/task.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/timestamp.h"
#include "src/swarm/worker.h"

namespace swarm {

enum class [[nodiscard]] SgStatus : uint8_t {
  kOk = 0,
  kNotFound,    // Register never written (empty replicas, §5.3.1).
  kDeleted,     // Register carries the delete tombstone (§5.3.2).
  kUnavailable, // No live majority of replicas.
  // The object's extents were migrated away (kMovedReplica NACKs) and the op
  // provably had NO effect here: the caller must re-locate the object
  // through the index and may safely re-execute against the new layout. An
  // op that MIGHT have taken effect reports kUnavailable instead — the
  // migration flip harvests the source's final state, so a possibly-applied
  // write may be committed and must not be blindly re-executed.
  kMoved,
};

struct [[nodiscard]] SgWriteResult {
  SgStatus status = SgStatus::kUnavailable;
  bool fast_path = false;  // Guess proven fresh in one roundtrip.
  bool lock_lost = false;  // Slow path resolved by a reader committing our guess.
  int rtts = 0;
};

struct [[nodiscard]] SgReadResult {
  SgStatus status = SgStatus::kUnavailable;
  sim::Bytes value;
  bool fast_path = false;  // Returned a VERIFIED tuple from the first read.
  bool used_inplace = false;
  int rtts = 0;
  int iterations = 0;
};

// One Safe-Guess-replicated object, bound to a worker. Cheap to construct.
class SafeGuessObject {
 public:
  SafeGuessObject(Worker* worker, const ObjectLayout* layout, std::shared_ptr<ObjectCache> cache)
      : worker_(worker), layout_(layout), cache_(std::move(cache)) {}

  // Algorithm 2. Empty `value` is a valid payload.
  sim::Task<SgWriteResult> Write(std::span<const uint8_t> value);

  // §5.3.2: writes the maximal timestamp so the object can never be
  // overwritten and all future reads observe the deletion.
  sim::Task<SgWriteResult> Delete();

  // Algorithm 3.
  sim::Task<SgReadResult> Read();

 private:
  Worker* worker_;
  const ObjectLayout* layout_;
  std::shared_ptr<ObjectCache> cache_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_SAFE_GUESS_H_
