// Memory layout of a SWARM-replicated object on its memory nodes.
//
// Each replica of an object occupies, on its node (Fig. 3 + §4.4 + §3.3):
//
//   meta_addr:    K × 8 B   In-n-Out metadata words (one per writer subset,
//                           §4.4's contention-reduction array),
//   tsl_addr:     W × 8 B   timestamp-lock CAS words (one lock per writer,
//                           §3.3; Safe-Guess state, co-located for locality),
//   inplace_addr:           [hash 8 B][len 8 B][data max_value] — only at the
//                           object's designated replica (§6: in-place data is
//                           stored at one replica chosen by key hash).
//
// Out-of-place buffers are NOT part of the per-object layout: writers carve
// them from per-(client, node) pre-allocated pools (§4.3: "writers
// pre-allocate large memory chunks").

#ifndef SWARM_SRC_SWARM_LAYOUT_H_
#define SWARM_SRC_SWARM_LAYOUT_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/simulator.h"
#include "src/swarm/timestamp.h"

namespace swarm {

inline constexpr int kMaxReplicas = 8;

// In-place region header: [hash][len].
inline constexpr uint64_t kInPlaceHeaderBytes = 16;
// Out-of-place buffer header: [meta word][len].
inline constexpr uint64_t kOopHeaderBytes = 16;

struct ReplicaLayout {
  int32_t node = -1;
  uint64_t meta_addr = 0;
  uint64_t tsl_addr = 0;
  uint64_t inplace_addr = 0;  // 0 = this replica holds no in-place data.
};

struct ObjectLayout {
  std::array<ReplicaLayout, kMaxReplicas> replicas;
  int32_t num_replicas = 0;
  int32_t meta_slots = 1;   // K metadata buffers (§4.4).
  int32_t max_writers = 1;  // W timestamp locks.
  uint32_t max_value = 0;   // capacity of value buffers, bytes.

  int majority() const { return num_replicas / 2 + 1; }
  uint64_t meta_region_bytes() const { return static_cast<uint64_t>(meta_slots) * 8; }
  uint64_t tsl_region_bytes() const { return static_cast<uint64_t>(max_writers) * 8; }
  uint64_t inplace_region_bytes() const { return kInPlaceHeaderBytes + max_value; }

  // One replica occupies ONE contiguous slab slot:
  //   [meta | in-place (designated replicas only) | tsl]
  // so a single interval fences it and a single FreeSlot releases it.
  uint64_t replica_slot_bytes(bool with_inplace) const {
    const uint64_t inplace =
        with_inplace ? (inplace_region_bytes() + 7) & ~uint64_t{7} : 0;
    return meta_region_bytes() + inplace + tsl_region_bytes();
  }
  // [addr, addr+len) of replica r's slot, for fencing/freeing.
  std::pair<uint64_t, uint64_t> replica_slot(int r) const {
    const ReplicaLayout& rep = replicas[static_cast<size_t>(r)];
    return {rep.meta_addr, replica_slot_bytes(rep.inplace_addr != 0)};
  }
};

// Allocates one object's replicas on the given nodes. `inplace_copies`
// replicas (starting from replica 0, the designated one) get an in-place
// region; the paper uses one (§6), the failover experiment can provision a
// standby. Buffers come back zeroed, i.e. "empty" (§5.3.1).
inline ObjectLayout AllocateObject(fabric::Fabric& fabric, const int* nodes, int num_replicas,
                                   int meta_slots, int max_writers, uint32_t max_value,
                                   int inplace_copies = 1) {
  ObjectLayout layout;
  layout.num_replicas = num_replicas;
  layout.meta_slots = meta_slots;
  layout.max_writers = max_writers;
  layout.max_value = max_value;
  for (int r = 0; r < num_replicas; ++r) {
    ReplicaLayout& rep = layout.replicas[static_cast<size_t>(r)];
    rep.node = nodes[r];
    fabric::MemoryNode& node = fabric.node(nodes[r]);
    // One slab slot per replica: [meta | in-place? | tsl]. The in-place
    // region sits contiguously after the metadata array so both can be
    // fetched in a single READ (§4.3: "the in-place data buffer is located
    // next to the 8 B metadata"); the timestamp locks ride in the same slot
    // so the whole replica is one fence/free interval.
    const bool with_inplace = r < inplace_copies;
    rep.meta_addr = node.AllocSlot(layout.replica_slot_bytes(with_inplace));
    if (with_inplace) {
      rep.inplace_addr = rep.meta_addr + layout.meta_region_bytes();
      rep.tsl_addr = rep.inplace_addr + ((layout.inplace_region_bytes() + 7) & ~uint64_t{7});
    } else {
      rep.inplace_addr = 0;
      rep.tsl_addr = rep.meta_addr + layout.meta_region_bytes();
    }
  }
  return layout;
}

// Per-(writer, object) cached words: this writer's metadata slot content on
// each replica (Algorithm 7's cached previous value; 8 B per replica, the
// "In-n-Out metadata" part of a SWARM-KV cache entry, §7.1).
struct ObjectCache {
  std::array<Meta, kMaxReplicas> slot{};
};

// Which metadata slot a writer CASes (§4.4: each buffer is updated by a
// subset of the writers).
inline int SlotOf(uint32_t tid, int meta_slots) {
  return static_cast<int>(tid % static_cast<uint32_t>(meta_slots));
}

// Client-side pool of out-of-place buffers on one node (§4.3: "writers
// pre-allocate large memory chunks"). Allocation is a client-local free-list
// pop / bump, never a roundtrip. A slot is recycled ONLY when the value it
// held has been superseded — the writer whose CAS replaced a metadata word
// frees the replaced word's buffer (Free()). A slow reader that still chases
// a freed-and-reused slot detects the reuse through the buffer's embedded
// header and retries; the recycler extension (src/swarm/recycler.h) layers
// the paper's polite membership-based protocol (§4.5) on top.
// Freed buffers sit in quarantine before reuse: a reader that picked up the
// superseded metadata word just before the free must be given time to finish
// its (single-roundtrip) pointer chase. This is the practical trade-off of
// §4.5 — recycling relies on partial synchrony, the read/write protocol does
// not. The quarantine must exceed the worst believable chase latency.
inline constexpr sim::Time kOopQuarantineNs = 200 * 1000;

class OopPool {
 public:
  OopPool(fabric::MemoryNode* node, sim::Simulator* sim, uint32_t max_value, int slots)
      : node_(node), sim_(sim),
        slot_bytes_((kOopHeaderBytes + max_value + kOopGranuleBytes - 1) & ~(kOopGranuleBytes - 1)),
        chunk_slots_(slots > 0 ? slots : 1) {
    AddChunk();
  }

  // Returns the granule index to embed in a metadata word.
  uint32_t AllocIdx() {
    if (head_ < quarantine_.size() && quarantine_[head_].ripe_at <= sim_->Now()) {
      const uint32_t idx = quarantine_[head_].idx;
      if (++head_ == quarantine_.size()) {
        quarantine_.clear();
        head_ = 0;
      } else if (head_ >= 64 && head_ * 2 >= quarantine_.size()) {
        // Compact the consumed prefix. Under steady churn the queue never
        // fully drains (pushes and pops run at matched rates), so without
        // this the dead prefix — and the vector — would grow forever. The
        // erase shifts in place: capacity sticks at its high-water mark and
        // steady-state recycling stays allocation-free.
        quarantine_.erase(quarantine_.begin(), quarantine_.begin() + static_cast<long>(head_));
        head_ = 0;
      }
      return idx;
    }
    if (next_in_chunk_ == chunk_slots_) {
      AddChunk();  // Exhausted: pre-allocate another chunk (no roundtrip).
    }
    const uint64_t addr = chunk_base_ + static_cast<uint64_t>(next_in_chunk_++) * slot_bytes_;
    return static_cast<uint32_t>(addr / kOopGranuleBytes);
  }

  // Recycles a superseded buffer (after quarantine). Accepts slots that were
  // originally allocated by other pools of the same geometry (write-backs
  // install words with buffers from the repairer's pool).
  void Free(uint32_t oop_idx) {
    if (oop_idx != 0) {
      quarantine_.push_back(Quarantined{oop_idx, sim_->Now() + kOopQuarantineNs});
    }
  }

  uint64_t slot_bytes() const { return slot_bytes_; }
  uint64_t total_bytes() const { return chunks_ * static_cast<uint64_t>(chunk_slots_) * slot_bytes_; }

 private:
  struct Quarantined {
    uint32_t idx;
    sim::Time ripe_at;
  };

  void AddChunk() {
    // Granule alignment is essential: metadata words address buffers in
    // kOopGranuleBytes units, so a misaligned base would truncate pointers.
    chunk_base_ = node_->Allocate(static_cast<uint64_t>(chunk_slots_) * slot_bytes_,
                                  kOopGranuleBytes);
    next_in_chunk_ = 0;
    ++chunks_;
  }

  fabric::MemoryNode* node_;
  sim::Simulator* sim_;
  uint64_t slot_bytes_;
  int chunk_slots_;
  uint64_t chunk_base_ = 0;
  int next_in_chunk_ = 0;
  uint64_t chunks_ = 0;
  sim::PoolVec<Quarantined> quarantine_;
  size_t head_ = 0;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_LAYOUT_H_
