// In-n-Out (§4): a single-node max register for large values, in one
// roundtrip, on a memory node with no compute.
//
// A write simultaneously (1) fills a fresh out-of-place buffer, (2) updates
// the 8-byte metadata word to (timestamp, oop pointer) via a CAS-emulated MAX
// (Algorithm 7), both pipelined in ONE roundtrip (Fig. 3), and (3) lazily
// refreshes the in-place copy + hash in the background. A read fetches the
// metadata array and the in-place data in one READ; if the hash validates the
// in-place bytes against the winning metadata word, it is done in one
// roundtrip, otherwise it falls back to chasing the out-of-place pointer
// (Algorithm 6).
//
// These are *client-side* helper routines: the node only ever sees raw
// READ/WRITE/CAS verbs.

#ifndef SWARM_SRC_SWARM_INOUT_H_
#define SWARM_SRC_SWARM_INOUT_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/task.h"
#include "src/swarm/layout.h"
#include "src/swarm/timestamp.h"
#include "src/swarm/worker.h"

namespace swarm {

// Result of reading one replica's metadata array (+ optional in-place data).
struct [[nodiscard]] NodeView {
  fabric::Status status = fabric::Status::kOk;
  Meta max;                    // ts-max over the metadata slots (full word, node-local oop).
  Meta my_slot;                // current content of this writer's slot (for CAS caching).
  sim::PoolVec<Meta> slots;    // all K metadata words (for write-back CAS seeds).
  bool inplace_valid = false;  // in-place bytes match `max`'s hash.
  sim::Bytes value;            // in-place value, only if inplace_valid.

  bool ok() const { return status == fabric::Status::kOk; }

  // ts-max over slots excluding words that denote the write `w` itself
  // (needed by Safe-Guess's parallel read, which must compare against other
  // writes, not its own just-installed word).
  Meta MaxExcluding(Meta w) const {
    Meta m;
    for (Meta s : slots) {
      if (s.same_write_key() != w.same_write_key()) {
        m = TsMax(m, s);
      }
    }
    return m;
  }
};

// Result of a single-node max-write.
struct [[nodiscard]] NodeMaxResult {
  fabric::Status status = fabric::Status::kOk;
  Meta installed;  // the word now in our slot if we won; default if we lost.
  Meta observed;   // ts-max word observed at the slot during the op.
  int cas_retries = 0;

  bool ok() const { return status == fabric::Status::kOk; }
};

// One replica of one object, bound to a worker. Cheap to construct per op.
class InOutReplica {
 public:
  InOutReplica(Worker* worker, const ObjectLayout* layout, int replica_idx)
      : worker_(worker), layout_(layout),
        rep_(&layout->replicas[static_cast<size_t>(replica_idx)]) {}

  int node() const { return rep_->node; }
  bool has_inplace() const { return rep_->inplace_addr != 0; }

  // MAX-writes `w` (whose oop bits are filled from a freshly allocated
  // out-of-place buffer holding `value`) into this writer's metadata slot.
  // `slot_cache` seeds the first CAS's expected value (Algorithm 7's cached
  // previous value; stale caches cost retries, §4.4/§7.9) and is updated.
  // One roundtrip when the cache is fresh: pipelined [oop WRITE → slot CAS].
  sim::Task<NodeMaxResult> WriteMax(Meta w, std::span<const uint8_t> value, Meta* slot_cache);

  // Same, but on behalf of another writer's word `w_full_ts` (write-backs by
  // readers / quorum repair): targets the slot of w's tid.
  sim::Task<NodeMaxResult> WriteMaxFor(Meta w, std::span<const uint8_t> value, Meta slot_expected);

  // Reads the metadata array and, if `want_inplace` and this replica holds
  // in-place data, the in-place region — all in one READ.
  sim::Task<NodeView> ReadNode(bool want_inplace, uint32_t my_tid);

  // Follows `word`'s out-of-place pointer. Returns the value, or nullopt if
  // the buffer no longer matches (recycled by its writer).
  sim::Task<std::optional<sim::Bytes>> ReadOop(Meta word);

  // Flips `node_word` (our previously installed GUESSED word at this node) to
  // VERIFIED; if this replica is designated, refreshes in-place data in the
  // same pipelined roundtrip (§6: in-place written only when verifying).
  sim::Task<fabric::Status> PromoteVerified(Meta node_word, std::span<const uint8_t> value);

  // Direct VERIFIED max-write (Safe-Guess slow path, deletes, quorum repair):
  // like WriteMax, but also refreshes in-place data on designated replicas in
  // the same roundtrip.
  sim::Task<NodeMaxResult> WriteVerifiedNode(Meta w, std::span<const uint8_t> value,
                                             Meta slot_expected);

 private:
  sim::Task<NodeMaxResult> WriteMaxImpl(Meta w, std::span<const uint8_t> value, Meta slot_expected,
                                        bool refresh_inplace);

  // All callers derive `slot` via SlotOf(tid, meta_slots), so the bound holds
  // by construction; the assert keeps the slab-neighbor corruption class
  // (PR-9 seed 47000) impossible to reintroduce silently.
  uint64_t SlotAddr(int slot) const {
    assert(slot >= 0 && slot < layout_->meta_slots);
    return rep_->meta_addr + static_cast<uint64_t>(slot) * 8;
  }

  // Builds [word][len][value] into a pool slot image.
  sim::Bytes OopImage(Meta full_word, std::span<const uint8_t> value) const;

  Worker* worker_;
  const ObjectLayout* layout_;
  const ReplicaLayout* rep_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_INOUT_H_
