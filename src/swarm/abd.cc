#include "src/swarm/abd.h"

#include <algorithm>
#include <cstring>

#include "src/hash/xxhash.h"
#include "src/sim/sync.h"

namespace swarm {
namespace {

// Out-of-place image for ABD: self-validating [hash][len][data]. The hash is
// seeded with the object's per-replica metadata address so that a recycled
// buffer serving a DIFFERENT object never validates (DM-ABD writes buffers
// before their timestamp exists, so the timestamp cannot be in the hash).
uint64_t AbdHash(uint64_t meta_addr, uint64_t len, std::span<const uint8_t> data) {
  return hash::HashMetaAndValue(hash::Mix64(meta_addr, len), data);
}

sim::Bytes AbdOopImage(uint64_t meta_addr, std::span<const uint8_t> value) {
  sim::Bytes image(kOopHeaderBytes + value.size());
  const uint64_t len = value.size();
  const uint64_t h = AbdHash(meta_addr, len, value);
  std::memcpy(image.data(), &h, 8);
  std::memcpy(image.data() + 8, &len, 8);
  std::memcpy(image.data() + 16, value.data(), value.size());
  return image;
}

struct Phase1State {
  sim::Counter ok;
  std::array<Meta, kMaxReplicas> words{};
  std::array<bool, kMaxReplicas> oks{};
  std::array<uint32_t, kMaxReplicas> oop_idx{};
  sim::Bytes value;  // Images are built per replica (per-node hash).
  bool moved = false;          // Some replica NACKed kMovedReplica.

  explicit Phase1State(sim::Simulator* s) : ok(s) {}
};

// Phase 1 of an update at one replica: write the value out-of-place while
// reading the metadata word, in one roundtrip.
sim::Task<void> Phase1One(Worker* worker, const ObjectLayout* layout, int r,
                          std::shared_ptr<Phase1State> ph) {
  const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
  fabric::Qp& qp = worker->qp(rep.node);
  const auto idx = static_cast<size_t>(r);

  const uint32_t oop = worker->pool(rep.node).AllocIdx();
  ph->oop_idx[idx] = oop;

  std::array<uint8_t, 8> word_buf{};
  sim::Bytes image = AbdOopImage(rep.meta_addr, ph->value);
  auto wr = qp.Write(static_cast<uint64_t>(oop) * kOopGranuleBytes, image);
  auto rd = qp.Read(rep.meta_addr, word_buf);
  auto [w_res, r_res] =
      co_await fabric::PostBoth(worker->cpu(), worker->sim(), std::move(wr), std::move(rd));
  if (!w_res.ok() || !r_res.ok()) {
    if (w_res.status == fabric::Status::kNodeFailed || r_res.status == fabric::Status::kNodeFailed) {
      worker->MarkNodeFailed(rep.node);
    }
    if (w_res.status == fabric::Status::kMovedReplica ||
        r_res.status == fabric::Status::kMovedReplica) {
      ph->moved = true;
    }
    co_return;
  }
  uint64_t word;
  std::memcpy(&word, word_buf.data(), 8);
  ph->words[idx] = Meta(word);
  ph->oks[idx] = true;
  ph->ok.Add(1);
}

struct CasState {
  sim::Counter ok;
  int max_retries = 0;
  // ts-max over the register words the CAS loops found already installed
  // (never our own `desired`): lets Delete detect a preceding tombstone.
  Meta seen_max;
  // Retry-safety bookkeeping for NON-idempotent installs (an ABD update's
  // fresh-timestamp word): `completions` counts finished CasMaxOne tasks and
  // `maybe_applied` is set when any of them installed its word (definite) or
  // completed kNodeFailed (a dropped ack may hide an install). An attempt
  // may only be re-executed when every task completed and none could have
  // applied — otherwise a re-install could resurrect an already-observed,
  // since-overwritten value under a fresh timestamp.
  int completions = 0;
  bool maybe_applied = false;
  bool moved = false;  // Some CAS bounced off a migration fence.

  explicit CasState(sim::Simulator* s) : ok(s) {}
};

// Installs `desired` at one replica with Algorithm 7's CAS-max loop,
// recycling the superseded (or unused) out-of-place buffer.
sim::Task<void> CasMaxOne(Worker* worker, const ObjectLayout* layout, int r, Meta expected,
                          Meta desired, std::shared_ptr<CasState> ph) {
  const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
  fabric::Qp& qp = worker->qp(rep.node);
  OopPool& pool = worker->pool(rep.node);
  Meta prev = expected;
  int retries = -1;
  bool installed = false;
  while (TsLess(prev, desired)) {
    fabric::OpResult res = co_await qp.Cas(rep.meta_addr, prev.raw(), desired.raw());
    ++retries;
    if (!res.ok()) {
      if (res.status == fabric::Status::kNodeFailed) {
        ph->maybe_applied = true;  // A dropped ack may hide an applied CAS.
      }
      if (res.status == fabric::Status::kMovedReplica) {
        ph->moved = true;  // Migration fence: the CAS provably did not apply.
      }
      ++ph->completions;
      co_return;
    }
    const Meta seen(res.old_value);
    // Only words the node itself returned count as observed — the caller's
    // cached `expected` may be stale and must never feed detection logic.
    ph->seen_max = TsMax(ph->seen_max, seen);
    if (seen == prev) {
      installed = true;
      if (!prev.empty() && !prev.deleted()) {
        pool.Free(prev.oop());  // Superseded buffer.
      }
      break;
    }
    prev = seen;
  }
  if (!installed && !desired.deleted()) {
    pool.Free(desired.oop());  // Our buffer never became reachable.
  }
  if (installed) {
    ph->maybe_applied = true;
  }
  ph->max_retries = std::max(ph->max_retries, std::max(retries, 0));
  ++ph->completions;
  ph->ok.Add(1);
}

// Write-back at one replica: out-of-place image + CAS, pipelined.
sim::Task<void> RepairOne(Worker* worker, const ObjectLayout* layout, int r, Meta base,
                          std::shared_ptr<Phase1State> img, std::shared_ptr<CasState> ph) {
  const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
  fabric::Qp& qp = worker->qp(rep.node);
  OopPool& pool = worker->pool(rep.node);
  const uint32_t oop = pool.AllocIdx();
  const Meta desired = base.WithOop(oop);
  sim::Bytes image = AbdOopImage(rep.meta_addr, img->value);
  Meta prev;
  bool installed = false;
  fabric::OpResult res = co_await qp.WriteThenCas(static_cast<uint64_t>(oop) * kOopGranuleBytes,
                                                  image, rep.meta_addr, 0, desired.raw());
  if (!res.ok()) {
    if (res.status == fabric::Status::kMovedReplica) {
      ph->moved = true;
    }
    co_return;
  }
  prev = Meta(res.old_value);
  installed = prev.raw() == 0;
  while (!installed && TsLess(prev, desired)) {
    res = co_await qp.Cas(rep.meta_addr, prev.raw(), desired.raw());
    if (!res.ok()) {
      if (res.status == fabric::Status::kMovedReplica) {
        ph->moved = true;
      }
      co_return;
    }
    const Meta seen(res.old_value);
    if (seen == prev) {
      installed = true;
      if (!prev.empty() && !prev.deleted()) {
        pool.Free(prev.oop());
      }
      break;
    }
    prev = seen;
  }
  if (!installed) {
    pool.Free(desired.oop());
  }
  ph->ok.Add(1);
}

// Ensures the tombstone `m` — observed in `ph` at possibly only a minority
// (a deleter that died mid-delete) — reaches a majority before the caller
// acts on the deletion. Without this, quorums that miss the tombstone keep
// resurrecting the overwritten (or a concurrently written) value. Returns
// false when no majority acked; `rtts` is bumped iff a repair wave ran.
sim::Task<bool> FenceTombstone(Worker* worker, const ObjectLayout* layout,
                               const std::array<int, kMaxReplicas>& order, int usable,
                               std::shared_ptr<Phase1State> ph, Meta m, int* rtts,
                               bool* moved = nullptr) {
  const int maj = layout->majority();
  int holders = 0;
  for (int r = 0; r < layout->num_replicas; ++r) {
    const auto idx = static_cast<size_t>(r);
    if (ph->oks[idx] && ph->words[idx].ts_order_key() == m.ts_order_key()) {
      ++holders;
    }
  }
  if (holders >= maj) {
    co_return true;
  }
  const Meta repair = Meta::Pack(m.counter(), m.tid(), m.verified(), 0);
  auto cs = sim::MakePooled<CasState>(worker->sim());
  ++*rtts;
  const bool fenced = co_await worker->BatchedQuorum(
      cs->ok, maj, worker->config().quorum_timeout, 0, usable, [&](int i) {
        const int r = order[static_cast<size_t>(i)];
        return CasMaxOne(worker, layout, r, ph->words[static_cast<size_t>(r)], repair, cs);
      });
  if (moved != nullptr) {
    *moved = cs->moved;
  }
  co_return fenced;
}

// Live replicas first, known-failed last; repair-excluded replicas dropped
// entirely (only order[0..usable) may be contacted). Returns the live count.
int LivePreferred(Worker* worker, const ObjectLayout* layout, std::array<int, kMaxReplicas>& order,
                  int* usable) {
  int live = 0;
  std::array<int, kMaxReplicas> dead{};
  int num_dead = 0;
  for (int r = 0; r < layout->num_replicas; ++r) {
    const int node = layout->replicas[static_cast<size_t>(r)].node;
    if (worker->NodeQuorumExcluded(node)) {
      continue;
    }
    if (worker->NodeKnownFailed(node)) {
      dead[static_cast<size_t>(num_dead++)] = r;
    } else {
      order[static_cast<size_t>(live++)] = r;
    }
  }
  for (int i = 0; i < num_dead; ++i) {
    order[static_cast<size_t>(live + i)] = dead[static_cast<size_t>(i)];
  }
  *usable = live + num_dead;
  return live;
}

}  // namespace

sim::Task<SgWriteResult> AbdObject::Write(std::span<const uint8_t> value) {
  bool retry_safe = false;
  SgWriteResult result = co_await WriteAttempt(value, &retry_safe);
  // Membership-refresh-then-retry: an attempt that failed because its verbs
  // bounced off an epoch fence (kStaleEpoch revoked a QP) proves nothing
  // about the register — only a genuine lost majority surfaces as
  // unavailability. The retry is gated on `retry_safe`: an ABD update
  // installs a FRESH timestamp per attempt, so re-running it is only sound
  // when the failed attempt provably installed nothing anywhere (all its
  // CASes completed unapplied — fenced or observed-superseded). Otherwise a
  // re-install could resurrect a value a reader already observed and a later
  // write already overwrote; such attempts stay kUnavailable, i.e. a
  // possibly-applied pending write, which is exactly what they are.
  for (int retry = 0; retry < 2 && result.status == SgStatus::kUnavailable && retry_safe &&
                      worker_->EpochRefreshNeeded();
       ++retry) {
    co_await worker_->RefreshEpoch();
    const int prior_rtts = result.rtts;
    result = co_await WriteAttempt(value, &retry_safe);
    result.rtts += prior_rtts;
  }
  co_return result;
}

sim::Task<SgWriteResult> AbdObject::WriteAttempt(std::span<const uint8_t> value,
                                                 bool* retry_safe) {
  *retry_safe = false;
  SgWriteResult result;
  auto ph = sim::MakePooled<Phase1State>(worker_->sim());
  ph->value.assign(value.begin(), value.end());

  std::array<int, kMaxReplicas> order{};
  int usable = 0;
  LivePreferred(worker_, layout_, order, &usable);
  const int maj = layout_->majority();
  const int first_wave = std::min(maj, usable);

  // Phase 1: out-of-place writes in parallel with the timestamp discovery
  // read (DM-ABD "hides latency by writing out-of-place data in parallel to
  // finding a fresh timestamp") — one doorbell per wave.
  auto phase1 = [&](int i) {
    return Phase1One(worker_, layout_, order[static_cast<size_t>(i)], ph);
  };
  bool got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().escalation_timeout, 0,
                                             first_wave, phase1);
  result.rtts = 1;
  if (!got && !worker_->EpochRefreshNeeded() && !ph->moved) {
    ++result.rtts;
    got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().quorum_timeout,
                                          first_wave, usable - first_wave, phase1);
  }
  if (!got) {
    // Phase 1 has no reachable effect (no metadata word points at the
    // out-of-place buffers yet): re-running the attempt is always safe —
    // including against a replacement layout after a migration fence.
    *retry_safe = true;
    if (ph->moved) {
      result.status = SgStatus::kMoved;
    }
    co_return result;
  }

  Meta m;
  for (int r = 0; r < layout_->num_replicas; ++r) {
    if (ph->oks[static_cast<size_t>(r)]) {
      m = TsMax(m, ph->words[static_cast<size_t>(r)]);
    }
  }
  if (m.deleted()) {
    // Same repair as the read path: the tombstone must reach a majority
    // before the caller unmaps/fails, or disjoint quorums resurrect values.
    bool fence_moved = false;
    const bool fenced = co_await FenceTombstone(worker_, layout_, order, usable, ph, m,
                                                &result.rtts, &fence_moved);
    // Re-installing the identical tombstone word is idempotent.
    *retry_safe = !fenced;
    if (fenced) {
      result.status = SgStatus::kDeleted;
    } else {
      // Our phase-1 buffers are unreachable and the fence CASes carry a
      // FOREIGN tombstone, so nothing of this op can have taken effect:
      // a migration-fence bounce is safe to re-execute after re-locating
      // (the replacement layout carries the harvested tombstone).
      result.status = fence_moved ? SgStatus::kMoved : SgStatus::kUnavailable;
    }
    co_return result;
  }

  // Phase 2: install (m.counter + 1, tid) at a majority.
  const Meta fresh = Meta::Pack(m.counter() + 1, worker_->tid(), /*verified=*/true, 0);
  auto cs = sim::MakePooled<CasState>(worker_->sim());
  int launched = 0;
  {
    fabric::CpuBatch batch(worker_->cpu());  // One doorbell for all installs.
    for (int r = 0; r < layout_->num_replicas; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (!ph->oks[idx]) {
        continue;  // Only replicas whose out-of-place buffer we populated.
      }
      sim::Spawn(
          CasMaxOne(worker_, layout_, r, ph->words[idx], fresh.WithOop(ph->oop_idx[idx]), cs));
      ++launched;
    }
  }
  ++result.rtts;
  got = co_await cs->ok.WaitFor(std::min(maj, launched), worker_->config().quorum_timeout);
  result.rtts += cs->max_retries;
  // Phase-2 failure is re-executable only when every CAS task finished and
  // none could have installed the fresh-timestamp word (see CasState).
  *retry_safe = !got && cs->completions == launched && !cs->maybe_applied;
  if (got) {
    result.status = SgStatus::kOk;
  } else if (*retry_safe && cs->moved) {
    // Every install bounced off a migration fence with zero effect: the
    // caller may re-locate and re-execute on the replacement layout.
    result.status = SgStatus::kMoved;
  } else {
    result.status = SgStatus::kUnavailable;
  }
  co_return result;
}

sim::Task<SgWriteResult> AbdObject::Delete() {
  SgWriteResult result;
  const Meta tombstone = Meta::Tombstone(worker_->tid());
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto cs = sim::MakePooled<CasState>(worker_->sim());
    std::array<int, kMaxReplicas> order{};
    int usable = 0;
    LivePreferred(worker_, layout_, order, &usable);
    const int maj = layout_->majority();
    ++result.rtts;
    // Delete needs every replica's actual pre-delete word (fed to seen_max
    // from CAS results only) to tell "we deleted the live object" from "this
    // object was already dead". A non-tombstone cache seed is safe: the
    // tombstone compares above it, so the loop always issues at least one CAS
    // and observes the node's word. A CACHED TOMBSTONE would short-circuit
    // the loop with no observation, so fall back to the empty seed there.
    const bool got = co_await worker_->BatchedQuorum(
        cs->ok, maj, worker_->config().quorum_timeout, 0, usable, [&](int i) {
          const auto idx = static_cast<size_t>(order[static_cast<size_t>(i)]);
          const Meta seed = cache_->slot[idx].deleted() ? Meta() : cache_->slot[idx];
          return CasMaxOne(worker_, layout_, order[static_cast<size_t>(i)], seed, tombstone, cs);
        });
    result.rtts += cs->max_retries;
    if (!got && worker_->EpochRefreshNeeded() && attempt + 1 < kMaxAttempts) {
      // Fenced CASes never applied and observed nothing: refresh and retry.
      co_await worker_->RefreshEpoch();
      continue;
    }
    if (got && cs->seen_max.deleted() &&
        cs->seen_max.same_write_key() != tombstone.same_write_key()) {
      // Another deleter's tombstone was already installed: this object was
      // dead before our op, so the caller's mapping may be stale (deleted and
      // re-inserted) and must be re-validated against the index. Quorum
      // intersection guarantees a fully deleted object shows the foreign
      // tombstone to at least one of our acked CASes.
      result.status = SgStatus::kDeleted;
    } else if (got) {
      result.status = SgStatus::kOk;
    } else if (cs->moved && cs->completions == usable && !cs->maybe_applied) {
      // All tombstone CASes bounced off a migration fence unapplied: safe to
      // re-execute the delete against the replacement layout.
      result.status = SgStatus::kMoved;
    } else {
      result.status = SgStatus::kUnavailable;
    }
    co_return result;
  }
  co_return result;
}

sim::Task<bool> AbdObject::RepairReplica(int target, bool skip_tombstones) {
  co_return co_await CopyReplicaInternal(layout_, target, skip_tombstones);
}

sim::Task<bool> AbdObject::CopyReplicaTo(const ObjectLayout* dst, int target) {
  co_return co_await CopyReplicaInternal(dst, target, /*skip_tombstones=*/false);
}

sim::Task<bool> AbdObject::CopyReplicaInternal(const ObjectLayout* dst, int target,
                                               bool skip_tombstones) {
  // Phase 1: the surviving SOURCE quorum's metadata words. For crash repair
  // the caller's worker has the target's node repair-excluded, so `order`
  // never includes it; for migration the vacated source slot is
  // region-fenced and the worker rides the fence-exempt repair channel.
  auto ph = sim::MakePooled<Phase1State>(worker_->sim());
  auto rd_one = [](Worker* worker, const ObjectLayout* layout, int r,
                   std::shared_ptr<Phase1State> st) -> sim::Task<void> {
    const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
    std::array<uint8_t, 8> buf{};
    fabric::OpResult res = co_await worker->qp(rep.node).Read(rep.meta_addr, buf);
    if (!res.ok()) {
      co_return;
    }
    uint64_t word;
    std::memcpy(&word, buf.data(), 8);
    st->words[static_cast<size_t>(r)] = Meta(word);
    st->oks[static_cast<size_t>(r)] = true;
    st->ok.Add(1);
  };
  std::array<int, kMaxReplicas> order{};
  int usable = 0;
  LivePreferred(worker_, layout_, order, &usable);
  const int maj = layout_->majority();
  const bool got = co_await worker_->BatchedQuorum(
      ph->ok, maj, worker_->config().quorum_timeout, 0, usable,
      [&](int i) { return rd_one(worker_, layout_, order[static_cast<size_t>(i)], ph); });
  if (!got) {
    co_return false;  // No surviving quorum right now.
  }
  Meta m;
  for (int r = 0; r < layout_->num_replicas; ++r) {
    const auto idx = static_cast<size_t>(r);
    if (ph->oks[idx]) {
      m = TsMax(m, ph->words[idx]);
    }
  }
  if (m.empty()) {
    co_return true;  // Nothing ever committed: the wiped replica is correct.
  }
  auto cs = sim::MakePooled<CasState>(worker_->sim());
  if (m.deleted()) {
    if (skip_tombstones) {
      co_return true;  // Canary bug: the tombstone never reaches the node.
    }
    // Tombstone stabilization: restore the EXACT tombstone word so deleted
    // objects cannot resurrect through a quorum that pairs the rejoined
    // replica with a stale survivor.
    co_await CasMaxOne(worker_, dst, target, Meta(), m, cs);
    co_return cs->ok.count() > 0;
  }

  // Phase 2: resolve m's bytes from a surviving holder.
  auto img = sim::MakePooled<Phase1State>(worker_->sim());
  bool value_ok = false;
  for (int r = 0; r < layout_->num_replicas && !value_ok; ++r) {
    const auto idx = static_cast<size_t>(r);
    if (!ph->oks[idx] || ph->words[idx].same_write_key() != m.same_write_key() ||
        ph->words[idx].oop() == 0) {
      continue;
    }
    const ReplicaLayout& rep = layout_->replicas[idx];
    sim::Bytes buf(kOopHeaderBytes + layout_->max_value);
    fabric::OpResult res = co_await worker_->qp(rep.node).Read(ph->words[idx].oop_addr(), buf);
    if (!res.ok()) {
      continue;
    }
    uint64_t h;
    uint64_t len;
    std::memcpy(&h, buf.data(), 8);
    std::memcpy(&len, buf.data() + 8, 8);
    if (len <= layout_->max_value) {
      std::span<const uint8_t> data(buf.data() + kOopHeaderBytes, static_cast<size_t>(len));
      if (AbdHash(rep.meta_addr, len, data) == h) {
        value_ok = true;
        img->value.assign(data.begin(), data.end());
      }
    }
  }
  if (!value_ok) {
    co_return false;  // Buffer torn or recycled under us: caller retries.
  }

  // Phase 3: install (word, fresh image) at the destination replica.
  const Meta base = Meta::Pack(m.counter(), m.tid(), m.verified(), 0);
  co_await RepairOne(worker_, dst, target, base, img, cs);
  co_return cs->ok.count() > 0;
}

sim::Task<SgReadResult> AbdObject::Read() {
  SgReadResult result;
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    ++result.iterations;
    if (worker_->EpochRefreshNeeded()) {
      // A previous phase's verbs bounced off an epoch fence: re-validate and
      // re-arm before this attempt — the bounced completions are membership
      // staleness, not evidence about the register.
      co_await worker_->RefreshEpoch();
    }
    // Phase 1: read the metadata word at a majority.
    auto ph = sim::MakePooled<Phase1State>(worker_->sim());
    auto rd_one = [](Worker* worker, const ObjectLayout* layout, int r,
                     std::shared_ptr<Phase1State> st) -> sim::Task<void> {
      const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
      std::array<uint8_t, 8> buf{};
      fabric::OpResult res = co_await worker->qp(rep.node).Read(rep.meta_addr, buf);
      if (!res.ok()) {
        if (res.status == fabric::Status::kNodeFailed) {
          worker->MarkNodeFailed(rep.node);
        }
        if (res.status == fabric::Status::kMovedReplica) {
          st->moved = true;
        }
        co_return;
      }
      uint64_t word;
      std::memcpy(&word, buf.data(), 8);
      st->words[static_cast<size_t>(r)] = Meta(word);
      st->oks[static_cast<size_t>(r)] = true;
      st->ok.Add(1);
    };

    std::array<int, kMaxReplicas> order{};
    int usable = 0;
    LivePreferred(worker_, layout_, order, &usable);
    const int maj = layout_->majority();
    const int first_wave = std::min(maj, usable);
    auto read_wave = [&](int i) {
      return rd_one(worker_, layout_, order[static_cast<size_t>(i)], ph);
    };
    bool got = co_await worker_->BatchedQuorum(ph->ok, maj,
                                               worker_->config().escalation_timeout, 0,
                                               first_wave, read_wave);
    ++result.rtts;
    if (!got && !worker_->EpochRefreshNeeded() && !ph->moved) {
      ++result.rtts;
      got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().quorum_timeout,
                                            first_wave, usable - first_wave, read_wave);
    }
    if (!got) {
      if (ph->moved) {
        // Migration fence: re-locate via the index (reads are always safe
        // to re-execute).
        result.status = SgStatus::kMoved;
        co_return result;
      }
      if (worker_->EpochRefreshNeeded() && attempt + 1 < kMaxAttempts) {
        continue;  // Fence-induced: the next attempt refreshes and retries.
      }
      co_return result;  // No live majority.
    }

    Meta m;
    int holders = 0;
    for (int r = 0; r < layout_->num_replicas; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (ph->oks[idx]) {
        m = TsMax(m, ph->words[idx]);
      }
    }
    for (int r = 0; r < layout_->num_replicas; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (ph->oks[idx] && ph->words[idx].ts_order_key() == m.ts_order_key()) {
        ++holders;
      }
    }
    if (m.empty()) {
      result.status = SgStatus::kNotFound;
      co_return result;
    }
    if (m.deleted()) {
      // ABD read-repair applies to tombstones too (see FenceTombstone):
      // report "deleted" only once a majority carries it.
      bool fence_moved = false;
      if (!co_await FenceTombstone(worker_, layout_, order, usable, ph, m, &result.rtts,
                                   &fence_moved)) {
        if (fence_moved) {
          result.status = SgStatus::kMoved;  // Re-locate and re-read.
        }
        co_return result;  // Else: cannot stabilize the deletion, unavailable.
      }
      result.status = SgStatus::kDeleted;
      co_return result;
    }

    // Phase 2: chase the out-of-place pointer at a replica holding m.
    bool value_ok = false;
    bool chase_moved = false;
    sim::Bytes value;
    for (int r = 0; r < layout_->num_replicas && !value_ok; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (!ph->oks[idx] || ph->words[idx].same_write_key() != m.same_write_key() ||
          ph->words[idx].oop() == 0) {
        continue;
      }
      const ReplicaLayout& rep = layout_->replicas[idx];
      sim::Bytes buf(kOopHeaderBytes + layout_->max_value);
      fabric::OpResult res =
          co_await worker_->qp(rep.node).Read(ph->words[idx].oop_addr(), buf);
      ++result.rtts;
      if (!res.ok()) {
        chase_moved = chase_moved || res.status == fabric::Status::kMovedReplica;
        continue;
      }
      uint64_t h;
      uint64_t len;
      std::memcpy(&h, buf.data(), 8);
      std::memcpy(&len, buf.data() + 8, 8);
      if (len <= layout_->max_value) {
        std::span<const uint8_t> data(buf.data() + kOopHeaderBytes, static_cast<size_t>(len));
        if (AbdHash(rep.meta_addr, len, data) == h) {
          value_ok = true;
          value.assign(data.begin(), data.end());
        }
      }
    }
    if (!value_ok) {
      if (chase_moved) {
        result.status = SgStatus::kMoved;  // Fenced mid-read: re-locate.
        co_return result;
      }
      continue;  // Buffer torn or recycled: retry the whole read.
    }

    // Phase 3 (rare): write-back so a majority holds m before returning.
    if (holders < maj) {
      auto img = sim::MakePooled<Phase1State>(worker_->sim());
      img->value = value;
      auto cs = sim::MakePooled<CasState>(worker_->sim());
      const Meta base = Meta::Pack(m.counter(), m.tid(), true, 0);
      {
        fabric::CpuBatch batch(worker_->cpu());
        for (int i = 0; i < usable; ++i) {
          const int r = order[static_cast<size_t>(i)];
          const auto idx = static_cast<size_t>(r);
          if (ph->oks[idx] && ph->words[idx].ts_order_key() == m.ts_order_key()) {
            continue;
          }
          sim::Spawn(RepairOne(worker_, layout_, r, base, img, cs));
        }
      }
      ++result.rtts;
      got = co_await cs->ok.WaitFor(maj - holders, worker_->config().quorum_timeout);
      if (!got) {
        if (cs->moved) {
          result.status = SgStatus::kMoved;  // Fenced mid-write-back: re-locate.
        }
        co_return result;
      }
    }

    result.status = SgStatus::kOk;
    result.value = std::move(value);
    result.fast_path = false;  // ABD gets always pay the pointer chase.
    co_return result;
  }
  co_return result;
}

}  // namespace swarm
