// Memory recycling coordination (§4.5, §5.4) — an extension the paper
// describes but its artifact does not implement ("We did not implement
// memory recycling").
//
// Out-of-place buffers can only be reused once no reader can still chase a
// stale pointer into them. The paper's design: before recycling, a client
// asks all readers to stop accessing the to-be-recycled buffers; readers
// acknowledge; clients that fail to respond are suspected by the membership
// service (uKharon), which instructs memory nodes to disconnect them so they
// can no longer access freed memory. Recycling therefore relies on partial
// synchrony, while the read/write protocol itself stays wait-free — the
// trade-off §4.5 argues for.
//
// This module implements that protocol as an epoch-based grace period:
//   * every participant (client) keeps a published epoch: "all my in-flight
//     reads started at or after this epoch",
//   * a recycling round advances the global epoch and collects
//     acknowledgements from all live participants,
//   * participants that do not acknowledge within their lease are suspected
//     and fenced via the membership service; the round then completes
//     without them (they can never touch memory again),
//   * buffers freed before the last fully-acknowledged epoch are safe to
//     reuse: SafeReclaimBefore() returns that horizon.
//
// OopPool's fixed time quarantine (layout.h) is the conservative stand-in
// used by the data path; the Recycler provides the protocol that justifies
// and bounds it.

#ifndef SWARM_SRC_SWARM_RECYCLER_H_
#define SWARM_SRC_SWARM_RECYCLER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace swarm {

// A client's side of the recycling protocol. An UNCOUPLED participant
// models the drain as a bounded virtual delay (ack_delay) — fine for pure
// protocol tests, but it lets an ack overtake the client's own still-running
// operation, so the published horizon can pass memory a live op is chasing
// (the use-count gate in IndexService::GcRetired was papering over exactly
// that). CoupleDrain wires the participant to the client's real op stream:
// the ack then completes only after every operation in flight at the drain's
// start has responded, which is the §4.5 contract.
class RecyclerParticipant {
 public:
  RecyclerParticipant(sim::Simulator* sim, uint32_t client_id, sim::Time ack_delay)
      : sim_(sim), client_id_(client_id), ack_delay_(ack_delay) {}

  uint32_t client_id() const { return client_id_; }
  uint64_t published_epoch() const { return published_epoch_; }
  bool crashed() const { return crashed_; }

  // Simulates a client crash: it will never acknowledge again.
  void Crash() { crashed_ = true; }

  // Couples epoch acks to a real op stream (e.g. kv::TrackedKvSession):
  // `barrier_fn` returns the next op sequence number, `oldest_fn` the oldest
  // sequence still in flight (== barrier when idle). An ack captures the
  // barrier when the drain starts and completes only once every older op has
  // responded; ops that start after the barrier never delay it, so a busy
  // client still acks in bounded time.
  void CoupleDrain(std::function<uint64_t()> barrier_fn, std::function<uint64_t()> oldest_fn,
                   sim::Time drain_poll = 2000) {
    barrier_fn_ = std::move(barrier_fn);
    oldest_fn_ = std::move(oldest_fn);
    drain_poll_ = drain_poll;
  }

  // Called (over the network) by the coordinator: drain reads older than
  // `epoch`, then publish.
  sim::Task<void> AckEpoch(uint64_t epoch, sim::Counter acks) {
    if (crashed_) {
      co_return;  // Never answers; the lease will expire.
    }
    co_await sim_->Delay(ack_delay_);
    if (barrier_fn_) {
      const uint64_t barrier = barrier_fn_();
      while (oldest_fn_() < barrier) {
        co_await sim_->Delay(drain_poll_);
      }
    }
    if (epoch > published_epoch_) {
      published_epoch_ = epoch;
    }
    acks.Add(1);
  }

 private:
  sim::Simulator* sim_;
  uint32_t client_id_;
  sim::Time ack_delay_;
  std::function<uint64_t()> barrier_fn_;
  std::function<uint64_t()> oldest_fn_;
  sim::Time drain_poll_ = 2000;
  uint64_t published_epoch_ = 0;
  bool crashed_ = false;
};

class Recycler {
 public:
  Recycler(sim::Simulator* sim, membership::MembershipService* membership,
           sim::Time rpc_delay = 2 * 680)
      : sim_(sim), membership_(membership), rpc_delay_(rpc_delay) {}

  void Register(RecyclerParticipant* participant) {
    membership_->RegisterClient(participant->client_id());
    participants_.push_back(participant);
  }

  uint64_t current_epoch() const { return epoch_; }

  // Buffers freed in epochs strictly below this are safe to reuse: every
  // live client acknowledged a later epoch, and everyone else is fenced.
  uint64_t SafeReclaimBefore() const { return safe_before_; }
  uint64_t fenced_clients() const { return fenced_; }

  // Crash-recover repair gate (repair::RepairService::InFlight): a repair
  // coordinator chases survivors' out-of-place pointers exactly like a
  // reader, but holds no lease and publishes no epoch — so the safe horizon
  // must not advance past a repair that is still in flight, or the buffers
  // it is reading could be declared recyclable under it.
  void set_repair_gate(std::function<bool()> gate) { repair_gate_ = std::move(gate); }

  // One recycling round (§5.4: run periodically in the background): advance
  // the epoch, gather acknowledgements, fence stragglers via membership.
  sim::Task<void> RunRound() {
    const uint64_t target = ++epoch_;
    sim::Counter acks(sim_);
    std::vector<RecyclerParticipant*> asked;
    for (RecyclerParticipant* p : participants_) {
      if (membership_->IsSuspected(p->client_id())) {
        // Suspected at round start: fence it STICKILY before this round can
        // move the horizon past it. Merely skipping would let a late lease
        // renewal resurrect a client that may still hold pre-epoch reads
        // into memory we are about to declare recyclable.
        if (!membership_->IsFenced(p->client_id())) {
          membership_->Fence(p->client_id());
          ++fenced_;
        }
        continue;
      }
      asked.push_back(p);
      sim::Spawn(AskOne(p, target, acks));
    }
    // Wait for all live participants, but no longer than the lease grace: a
    // client that cannot answer within it is expected to lose its lease.
    (void)co_await acks.WaitFor(static_cast<int>(asked.size()), lease_grace_);
    // SAFETY: the horizon may only move past a participant that either
    // acknowledged `target` or is fenced. A client that crashed mid-epoch
    // while holding a still-fresh lease may have reads from before the epoch
    // bump in flight, and memory nodes have not disconnected it yet — so
    // keep waiting for its lease to run out instead of recycling under it.
    for (;;) {
      bool blocked = false;
      for (RecyclerParticipant* p : asked) {
        if (p->published_epoch() < target && !membership_->IsSuspected(p->client_id())) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        break;
      }
      co_await sim_->Delay(suspect_poll_);
    }
    for (RecyclerParticipant* p : asked) {
      if (p->published_epoch() < target && membership_->IsSuspected(p->client_id()) &&
          !membership_->IsFenced(p->client_id())) {
        // The straggler's lease expired while we waited. Fence it STICKILY
        // before moving the horizon: once buffers it might reference are
        // recyclable, a late lease renewal must not resurrect it — the
        // membership service has already told memory nodes to disconnect it.
        // (The IsFenced guard keeps the count exact when churn overlaps
        // rounds.)
        membership_->Fence(p->client_id());
        ++fenced_;
      }
    }
    // An in-flight node repair reads like a client but acks no epochs: hold
    // the horizon until it completes (see set_repair_gate).
    while (repair_gate_ && repair_gate_()) {
      co_await sim_->Delay(suspect_poll_);
    }
    // Everyone still in the system has drained reads older than `target`.
    // max(): rounds may overlap (chaos fires them concurrently) and a
    // slow round must never regress the published horizon.
    safe_before_ = std::max(safe_before_, target);
  }

  // Keeps live participants' leases fresh (clients heartbeat; crashed ones
  // silently stop).
  void HeartbeatAll() {
    for (RecyclerParticipant* p : participants_) {
      if (!p->crashed()) {
        membership_->RenewLease(p->client_id());
      }
    }
  }

 private:
  sim::Task<void> AskOne(RecyclerParticipant* p, uint64_t epoch, sim::Counter acks) {
    co_await sim_->Delay(rpc_delay_);  // Request over the network.
    co_await p->AckEpoch(epoch, acks);
  }

  sim::Simulator* sim_;
  membership::MembershipService* membership_;
  sim::Time rpc_delay_;
  std::function<bool()> repair_gate_;
  sim::Time lease_grace_ = 2 * sim::kMillisecond;
  // How often a round re-checks whether a non-acking straggler has finally
  // lost its lease (bounded staleness of the fencing decision).
  sim::Time suspect_poll_ = 100 * sim::kMicrosecond;
  uint64_t epoch_ = 0;
  uint64_t safe_before_ = 0;
  uint64_t fenced_ = 0;
  std::vector<RecyclerParticipant*> participants_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_RECYCLER_H_
