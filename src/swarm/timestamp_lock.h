// Timestamp locks (§3.3, Algorithms 4/9, Appendix B).
//
// A timestamp lock arbitrates, per writer, between a writer that wants to
// re-execute a write whose guessed timestamp may be stale, and readers that
// want to commit to returning the value at that guessed timestamp. Both
// modes race to CAS (ts, mode) into a majority of 2f+1 per-node CAS words;
// it is impossible for both modes to occupy a majority, which yields the
// True-exclusion property. Locks are never released — only superseded by
// higher timestamps.

#ifndef SWARM_SRC_SWARM_TIMESTAMP_LOCK_H_
#define SWARM_SRC_SWARM_TIMESTAMP_LOCK_H_

#include <cstdint>

#include "src/sim/task.h"
#include "src/swarm/layout.h"
#include "src/swarm/timestamp.h"
#include "src/swarm/worker.h"

namespace swarm {

struct [[nodiscard]] TryLockResult {
  bool acquired = false;
  // False when no majority of lock replicas answered (crashed fabric); the
  // caller treats this as "not acquired", which is always safe.
  bool quorum_ok = false;
  int rtts = 0;
};

// The lock of writer `owner_tid` on one object. Cheap to construct per op.
class TimestampLock {
 public:
  TimestampLock(Worker* worker, const ObjectLayout* layout, uint32_t owner_tid)
      : worker_(worker), layout_(layout), owner_tid_(owner_tid) {}

  // TRYLOCK(ts, mode): returns acquired=true iff no conflicting lock attempt
  // (same ts with the opposite mode, or any higher ts) was observed at a
  // majority of the lock's CAS words.
  sim::Task<TryLockResult> TryLock(uint32_t counter, LockMode mode);

 private:
  Worker* worker_;
  const ObjectLayout* layout_;
  uint32_t owner_tid_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_TIMESTAMP_LOCK_H_
