// Timestamp and metadata-word encodings shared by Safe-Guess and In-n-Out.
//
// In-n-Out packs a Safe-Guess timestamp together with an out-of-place buffer
// pointer into a single 8-byte word (Fig. 3 of the paper) so that the max
// register's conditional update is one 64-bit CAS. The Safe-Guess
// GUESSED/VERIFIED flag is encoded next to the timestamp such that, for the
// same (counter, tid), the VERIFIED word compares greater than the GUESSED
// one — the ordering the max register needs (§3.2).
//
// Bit layout of a metadata word, most significant first:
//
//   [ counter : 32 ][ tid : 7 ][ verified : 1 ][ oop : 24 ]
//
//  * counter — clock-derived logical timestamp (256 ns units of the writer's
//    loosely synchronized clock). Counter 0 means "empty / never written";
//    counter 2^32-1 is the delete tombstone (§5.3.2: a delete writes the max
//    timestamp so it can never be overwritten).
//  * tid     — writer thread id, breaking ties between concurrent writers.
//  * verified— Safe-Guess flag: 1 = VERIFIED, 0 = GUESSED.
//  * oop     — out-of-place buffer pointer in units of kOopGranuleBytes,
//    node-local (the same logical write installs different oop values on
//    different replicas).
//
// Ordering of *writes* uses the word with the oop bits masked out
// (ts_order_key); two words denote the same write iff they agree on
// (counter, tid) (same_write_key).

#ifndef SWARM_SRC_SWARM_TIMESTAMP_H_
#define SWARM_SRC_SWARM_TIMESTAMP_H_

#include <cstdint>

namespace swarm {

inline constexpr int kOopBits = 24;
inline constexpr int kVerifiedBits = 1;
inline constexpr int kTidBits = 7;
inline constexpr int kCounterBits = 32;

inline constexpr uint64_t kOopMask = (1ull << kOopBits) - 1;
inline constexpr uint64_t kVerifiedBit = 1ull << kOopBits;
inline constexpr int kTidShift = kOopBits + kVerifiedBits;
inline constexpr int kCounterShift = kTidShift + kTidBits;

inline constexpr uint32_t kMaxTid = (1u << kTidBits) - 1;
inline constexpr uint32_t kDeleteCounter = 0xFFFFFFFFu;

// Out-of-place pointers address node memory in 64-byte granules, so 24 bits
// reach 1 GiB per node.
inline constexpr uint64_t kOopGranuleBytes = 64;

class Meta {
 public:
  constexpr Meta() : raw_(0) {}
  constexpr explicit Meta(uint64_t raw) : raw_(raw) {}

  static constexpr Meta Pack(uint32_t counter, uint32_t tid, bool verified, uint32_t oop) {
    return Meta((static_cast<uint64_t>(counter) << kCounterShift) |
                (static_cast<uint64_t>(tid & kMaxTid) << kTidShift) |
                (verified ? kVerifiedBit : 0) | (oop & kOopMask));
  }

  // The tombstone written by deletes: maximal, verified, no payload.
  static constexpr Meta Tombstone(uint32_t tid) { return Pack(kDeleteCounter, tid, true, 0); }

  constexpr uint64_t raw() const { return raw_; }
  constexpr uint32_t counter() const { return static_cast<uint32_t>(raw_ >> kCounterShift); }
  constexpr uint32_t tid() const {
    return static_cast<uint32_t>(raw_ >> kTidShift) & kMaxTid;
  }
  constexpr bool verified() const { return (raw_ & kVerifiedBit) != 0; }
  constexpr uint32_t oop() const { return static_cast<uint32_t>(raw_ & kOopMask); }
  constexpr uint64_t oop_addr() const { return static_cast<uint64_t>(oop()) * kOopGranuleBytes; }

  constexpr bool empty() const { return counter() == 0; }
  constexpr bool deleted() const { return counter() == kDeleteCounter; }

  // Total order on writes: (counter, tid, verified), oop ignored.
  constexpr uint64_t ts_order_key() const { return raw_ & ~kOopMask; }
  // Identity of a write: (counter, tid) — flag and oop ignored.
  constexpr uint64_t same_write_key() const { return raw_ & ~(kOopMask | kVerifiedBit); }

  constexpr Meta WithVerified() const { return Meta(raw_ | kVerifiedBit); }
  constexpr Meta WithOop(uint32_t oop) const { return Meta((raw_ & ~kOopMask) | (oop & kOopMask)); }

  friend constexpr bool operator==(Meta a, Meta b) { return a.raw_ == b.raw_; }

 private:
  uint64_t raw_;
};

// Order comparators on the write order (oop masked out).
constexpr bool TsLess(Meta a, Meta b) { return a.ts_order_key() < b.ts_order_key(); }
constexpr bool TsLessEq(Meta a, Meta b) { return a.ts_order_key() <= b.ts_order_key(); }
constexpr Meta TsMax(Meta a, Meta b) { return TsLess(a, b) ? b : a; }

// --- Timestamp-lock word (Algorithm 4/9). ---
//
// One lock per (object, writer); the word stores the highest timestamp
// counter locked so far plus the lock mode in the least significant bit.
// Zero is the unlocked bottom value.

enum class LockMode : uint8_t { kRead = 0, kWrite = 1 };

class TslWord {
 public:
  constexpr TslWord() : raw_(0) {}
  constexpr explicit TslWord(uint64_t raw) : raw_(raw) {}

  static constexpr TslWord Pack(uint32_t counter, LockMode mode) {
    return TslWord((static_cast<uint64_t>(counter) << 1) |
                   (mode == LockMode::kWrite ? 1u : 0u));
  }

  constexpr uint64_t raw() const { return raw_; }
  constexpr uint32_t counter() const { return static_cast<uint32_t>(raw_ >> 1); }
  constexpr LockMode mode() const {
    return (raw_ & 1) != 0 ? LockMode::kWrite : LockMode::kRead;
  }
  constexpr bool bottom() const { return raw_ == 0; }

  friend constexpr bool operator==(TslWord a, TslWord b) { return a.raw_ == b.raw_; }

 private:
  uint64_t raw_;
};

constexpr LockMode Opposite(LockMode m) {
  return m == LockMode::kRead ? LockMode::kWrite : LockMode::kRead;
}

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_TIMESTAMP_H_
