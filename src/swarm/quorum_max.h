// Reliable max register over failure-prone In-n-Out replicas (Algorithm 8,
// Appendix A, plus the §6 engineering optimizations).
//
// The register's value is the ts-maximal metadata word across a majority of
// replicas, together with the bytes that word denotes. Operations contact an
// optimistic majority first (the first `majority` live replicas of the
// object) and broaden to all replicas if some preferred replica does not
// answer within the escalation timeout — this is what gives SWARM its
// no-downtime failover (§7.7).
//
// Roundtrip behaviour (Appendix A.2):
//  * Write: 1 RT when the slot caches are fresh.
//  * Read:  1 RT when a majority agrees on the max and in-place data
//           validates; +1 RT for an out-of-place chase; +1 RT when the max
//           must be written back to complete a majority (inner_write).

#ifndef SWARM_SRC_SWARM_QUORUM_MAX_H_
#define SWARM_SRC_SWARM_QUORUM_MAX_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/sim/task.h"
#include "src/swarm/inout.h"
#include "src/swarm/layout.h"
#include "src/swarm/timestamp.h"
#include "src/swarm/worker.h"

namespace swarm {

struct [[nodiscard]] WriteReadOutcome {
  bool ok = false;  // A majority acknowledged the write.
  // ts-max across the quorum EXCLUDING the write itself — the `m` that
  // Safe-Guess compares against its guess (Algorithm 2 line 7).
  Meta m;
  // Per-replica word this write installed (empty where it lost or was not
  // attempted); needed for the background VERIFIED promotion.
  std::array<Meta, kMaxReplicas> installed{};
  // Some replica NACKed kMovedReplica: the object's extents were migrated
  // away and the caller must re-locate through the index.
  bool moved = false;
  // Whether the write may have taken effect at ANY replica: an install, a
  // kNodeFailed completion (applied-but-unacked), or a straggler still in
  // flight. Only when this is false is a failed write provably a no-op —
  // the gate for safely re-executing it against a replacement layout.
  bool effect_possible = false;
  int rtts = 0;
};

struct [[nodiscard]] ReadOutcome {
  bool ok = false;        // A majority answered.
  Meta m;                 // Global ts-max (full word as seen at some replica).
  bool value_ok = false;  // Bytes for `m` were resolved (meaningless for empty/tombstone).
  bool used_inplace = false;
  bool moved = false;     // kMovedReplica seen: re-locate via the index.
  sim::Bytes value;
  std::array<Meta, kMaxReplicas> node_words{};  // Per-replica local max.
  std::array<bool, kMaxReplicas> node_ok{};
  int rtts = 0;
};

class QuorumMax {
 public:
  // `cache` is shared because straggler per-replica tasks may update slot
  // caches after the caller's op (and even the cache entry's owner) is gone.
  QuorumMax(Worker* worker, const ObjectLayout* layout, std::shared_ptr<ObjectCache> cache)
      : worker_(worker), layout_(layout), cache_(std::move(cache)) {}

  // Safe-Guess's combined fast-path phase (Algorithm 2 line 6): per replica,
  // pipeline the In-n-Out max-write of `w` and a read of the metadata array
  // in the same roundtrip; wait for a majority.
  sim::Task<WriteReadOutcome> WriteAndRead(Meta w, std::span<const uint8_t> value);

  // Reliable max-register read. If `strong`, performs the write-back step
  // (inner_write) whenever fewer than a majority of replicas already hold the
  // max, and resolves the max's bytes (in-place fast path, else out-of-place
  // chase). A weak read skips write-back and byte resolution.
  sim::Task<ReadOutcome> ReadQuorum(bool strong);

  // Direct VERIFIED quorum write (Safe-Guess slow path, §5.3.2 deletes, and
  // quorum repair): one roundtrip to a majority when caches are fresh.
  sim::Task<bool> WriteVerified(Meta w, std::span<const uint8_t> value, int* rtts = nullptr);

  // Background promotion of a completed guessed write to VERIFIED (Algorithm
  // 2 line 8): flips the installed words and refreshes in-place data at the
  // designated replica. Fire-and-forget. When the promoter owns the words
  // (a writer promoting its own write), pass its ObjectCache so the slot
  // caches track the flipped words and the next write's CAS stays 1-RT.
  static sim::Task<void> Promote(Worker* worker, const ObjectLayout* layout,
                                 std::array<Meta, kMaxReplicas> installed,
                                 sim::Bytes value,
                                 std::shared_ptr<ObjectCache> cache = nullptr);

  // Repairs replicas holding stale words so that at least a majority carry
  // `m` (Algorithm 8's inner_write). Exposed for the read path and tests.
  sim::Task<bool> WriteBack(Meta m, std::span<const uint8_t> value, const ReadOutcome& from);

 private:
  // Preferred replica order: live replicas first, in index order (replica 0
  // is the designated in-place holder and must lead), known-failed last.
  // Repair-excluded replicas (Worker::NodeQuorumExcluded) are dropped from
  // the order entirely; only the first `num_usable` entries may be contacted.
  void PreferredOrder(std::array<int, kMaxReplicas>& order, int* num_live,
                      int* num_usable) const;

  // Single attempts behind the public ops. The public wrappers re-run an
  // attempt after a membership-epoch refresh when it failed on kStaleEpoch
  // completions (Worker::EpochRefreshNeeded) — a stale-epoch rejection says
  // nothing about object state and must never surface as unavailability
  // without a re-validated retry.
  sim::Task<WriteReadOutcome> WriteAndReadOnce(Meta w, std::span<const uint8_t> value);
  sim::Task<ReadOutcome> ReadQuorumOnce(bool strong);
  sim::Task<bool> WriteVerifiedOnce(Meta w, std::span<const uint8_t> value, int* rtts);

  Worker* worker_;
  const ObjectLayout* layout_;
  std::shared_ptr<ObjectCache> cache_;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_QUORUM_MAX_H_
