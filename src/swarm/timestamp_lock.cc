#include "src/swarm/timestamp_lock.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <memory>

#include "src/sim/sync.h"

namespace swarm {
namespace {

struct LockPhase {
  sim::Counter ok;
  sim::Counter any;
  bool higher_seen = false;    // some CAS word held a timestamp > ts
  bool opposite_seen = false;  // some CAS word held (ts, ¬mode)
  int max_rtts = 0;

  explicit LockPhase(sim::Simulator* sim) : ok(sim), any(sim) {}
};

// One CAS word's loop (Algorithm 9, lines 5–9): CAS until the word holds a
// timestamp >= ts, remembering what was observed.
sim::Task<void> LockOneReplica(Worker* worker, const ObjectLayout* layout, int replica,
                               uint32_t owner_tid, uint32_t counter, LockMode mode,
                               std::shared_ptr<LockPhase> phase) {
  const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(replica)];
  // Under enforce_writer_bounds the protocol entry points (CheckWriterBound
  // in safe_guess.cc) already rejected out-of-range tids; this assert keeps
  // the slab-neighbor CAS (PR-9 seed 47000) from sneaking back in through a
  // new caller. With enforcement off, chaos replays exercise the raw
  // misconfiguration deliberately — so the guard must follow the config.
  assert(!worker->config().enforce_writer_bounds ||
         owner_tid < static_cast<uint32_t>(layout->max_writers));
  const uint64_t addr = rep.tsl_addr + static_cast<uint64_t>(owner_tid) * 8;
  fabric::Qp& qp = worker->qp(rep.node);
  const TslWord want = TslWord::Pack(counter, mode);

  TslWord seen;  // read[c], starts at bottom.
  int rtts = 0;
  bool ok = true;
  while (seen.counter() < counter) {
    const TslWord expected = seen;
    fabric::OpResult r = co_await qp.Cas(addr, expected.raw(), want.raw());
    ++rtts;
    if (!r.ok()) {
      ok = false;
      break;
    }
    seen = TslWord(r.old_value);
    if (seen == expected) {
      break;  // Our CAS applied; this word now records (ts, mode).
    }
  }

  if (ok) {
    if (seen.counter() > counter) {
      phase->higher_seen = true;
    }
    if (seen.counter() == counter && seen.mode() == Opposite(mode)) {
      phase->opposite_seen = true;
    }
    phase->max_rtts = std::max(phase->max_rtts, rtts);
    phase->ok.Add(1);
  }
  phase->any.Add(1);
}

}  // namespace

sim::Task<TryLockResult> TimestampLock::TryLock(uint32_t counter, LockMode mode) {
  TryLockResult result;
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto phase = sim::MakePooled<LockPhase>(worker_->sim());
    // Algorithm 9 contacts every replica; only a majority must answer. A
    // repairing replica is skipped outright: its CAS words are mid-restore
    // and counting it could manufacture a majority the opposite mode already
    // holds among the survivors.
    std::array<int, kMaxReplicas> usable{};
    int n = 0;
    for (int r = 0; r < layout_->num_replicas; ++r) {
      if (!worker_->NodeQuorumExcluded(layout_->replicas[static_cast<size_t>(r)].node)) {
        usable[static_cast<size_t>(n++)] = r;
      }
    }
    // One doorbell rings the lock CAS at every usable replica.
    const bool reached = co_await worker_->BatchedQuorum(
        phase->ok, layout_->majority(), worker_->config().quorum_timeout, 0, n, [&](int i) {
          return LockOneReplica(worker_, layout_, usable[static_cast<size_t>(i)], owner_tid_,
                                counter, mode, phase);
        });
    if (!reached) {
      // A kStaleEpoch completion is a membership-staleness signal, never
      // evidence about lock state: re-validate the epoch, re-arm the QPs and
      // re-run the whole attempt (re-CASing (counter, mode) is idempotent).
      // This is exactly the retry that closes the §5.4 window — the stale
      // attempt's votes were rejected at the nodes, so they can never
      // complete a majority that straddles a crash-repair cycle.
      if (worker_->EpochRefreshNeeded() && attempt + 1 < kMaxAttempts) {
        // Bill the fenced attempt's CAS rounds plus the re-validation pull.
        result.rtts += phase->max_rtts + 1;
        co_await worker_->RefreshEpoch();
        continue;
      }
      result.rtts += phase->max_rtts;
      co_return result;  // No live majority: not acquired (safe).
    }
    result.quorum_ok = true;
    result.rtts += phase->max_rtts;
    result.acquired = !phase->higher_seen && !phase->opposite_seen;
    co_return result;
  }
  co_return result;
}

}  // namespace swarm
