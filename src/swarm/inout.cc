#include "src/swarm/inout.h"

#include <cstring>

#include "src/hash/xxhash.h"

namespace swarm {
namespace {

Meta WordAt(const sim::Bytes& buf, size_t off) {
  uint64_t w;
  std::memcpy(&w, buf.data() + off, 8);
  return Meta(w);
}

}  // namespace

sim::Bytes InOutReplica::OopImage(Meta full_word, std::span<const uint8_t> value) const {
  sim::Bytes image(kOopHeaderBytes + value.size());
  const uint64_t word = full_word.raw();
  const uint64_t len = value.size();
  std::memcpy(image.data(), &word, 8);
  std::memcpy(image.data() + 8, &len, 8);
  std::memcpy(image.data() + 16, value.data(), value.size());
  return image;
}

sim::Task<NodeMaxResult> InOutReplica::WriteMaxImpl(Meta w, std::span<const uint8_t> value,
                                                    Meta slot_expected, bool refresh_inplace) {
  NodeMaxResult result;
  fabric::Qp& qp = worker_->qp(rep_->node);
  const uint64_t slot_addr = SlotAddr(SlotOf(w.tid(), layout_->meta_slots));

  Meta w_full = w;
  sim::Bytes image;
  const bool has_payload = !w.deleted();
  if (has_payload) {
    const uint32_t oop_idx = worker_->pool(rep_->node).AllocIdx();
    w_full = w.WithOop(oop_idx);
    image = OopImage(w_full, value);
  }

  // First attempt: expected from the cache; never CAS the slot downward.
  const Meta desired = TsLess(slot_expected, w_full) ? w_full : slot_expected;
  fabric::OpResult r;
  sim::Bytes inplace_image;
  if (has_payload && refresh_inplace && has_inplace()) {
    // Direct verified write: refresh the in-place copy in the same pipelined
    // roundtrip. The hash binds the bytes to our full word, so readers only
    // trust them while that word is the node's max.
    inplace_image.resize(kInPlaceHeaderBytes + value.size());
    const uint64_t h = hash::HashMetaAndValue(w_full.raw(), value);
    const uint64_t len = value.size();
    std::memcpy(inplace_image.data(), &h, 8);
    std::memcpy(inplace_image.data() + 8, &len, 8);
    std::memcpy(inplace_image.data() + 16, value.data(), value.size());
    auto cas_op = qp.WriteThenCas(w_full.oop_addr(), image, slot_addr, slot_expected.raw(),
                                  desired.raw());
    auto inp_op = qp.Write(rep_->inplace_addr, inplace_image);
    auto [cr, ir] = co_await fabric::PostBoth(worker_->cpu(), worker_->sim(), std::move(cas_op),
                                              std::move(inp_op));
    (void)ir;
    r = cr;
  } else if (has_payload) {
    // Pipelined [out-of-place WRITE → metadata CAS]: one roundtrip (Fig. 3).
    r = co_await qp.WriteThenCas(w_full.oop_addr(), image, slot_addr, slot_expected.raw(),
                                 desired.raw());
  } else {
    r = co_await qp.Cas(slot_addr, slot_expected.raw(), desired.raw());
  }
  if (!r.ok()) {
    result.status = r.status;
    co_return result;
  }

  OopPool& pool = worker_->pool(rep_->node);
  auto free_superseded = [&pool](Meta replaced) {
    // The buffer of a replaced word is unreachable through the metadata from
    // now on: recycle it. Readers that raced still validate via the buffer
    // header and retry if they lose the race.
    if (!replaced.empty() && !replaced.deleted()) {
      pool.Free(replaced.oop());
    }
  };

  Meta prev(r.old_value);
  result.observed = prev;
  if (prev == slot_expected) {
    // CAS applied; the slot now holds `desired`.
    result.observed = TsMax(result.observed, desired);
    if (desired == w_full) {
      result.installed = w_full;
      free_superseded(prev);
    } else if (has_payload) {
      pool.Free(w_full.oop());  // Lost to the cached word: buffer unused.
    }
    co_return result;
  }

  // Cache was stale: run Algorithm 7's retry loop against the actual value.
  while (TsLess(prev, w_full)) {
    fabric::OpResult rr = co_await qp.Cas(slot_addr, prev.raw(), w_full.raw());
    ++result.cas_retries;
    if (!rr.ok()) {
      result.status = rr.status;
      co_return result;
    }
    const Meta seen(rr.old_value);
    result.observed = TsMax(result.observed, seen);
    if (seen == prev) {
      result.installed = w_full;
      result.observed = TsMax(result.observed, w_full);
      free_superseded(prev);
      co_return result;
    }
    prev = seen;
  }
  if (has_payload) {
    pool.Free(w_full.oop());  // The slot moved past us: buffer unused.
  }
  co_return result;
}

sim::Task<NodeMaxResult> InOutReplica::WriteMaxFor(Meta w, std::span<const uint8_t> value,
                                                   Meta slot_expected) {
  return WriteMaxImpl(w, value, slot_expected, /*refresh_inplace=*/false);
}

sim::Task<NodeMaxResult> InOutReplica::WriteVerifiedNode(Meta w, std::span<const uint8_t> value,
                                                         Meta slot_expected) {
  return WriteMaxImpl(w, value, slot_expected, /*refresh_inplace=*/true);
}

sim::Task<NodeMaxResult> InOutReplica::WriteMax(Meta w, std::span<const uint8_t> value,
                                                Meta* slot_cache) {
  NodeMaxResult result = co_await WriteMaxImpl(w, value, *slot_cache, /*refresh_inplace=*/false);
  if (result.ok()) {
    // The slot now holds at least max(observed, installed).
    *slot_cache = TsMax(result.observed, result.installed);
  }
  co_return result;
}

sim::Task<NodeView> InOutReplica::ReadNode(bool want_inplace, uint32_t my_tid) {
  NodeView view;
  fabric::Qp& qp = worker_->qp(rep_->node);
  const bool rd_inplace = want_inplace && has_inplace();
  const size_t meta_bytes = static_cast<size_t>(layout_->meta_region_bytes());
  const size_t total =
      meta_bytes + (rd_inplace ? static_cast<size_t>(layout_->inplace_region_bytes()) : 0);

  sim::Bytes buf(total);
  fabric::OpResult r = co_await qp.Read(rep_->meta_addr, buf);
  if (!r.ok()) {
    view.status = r.status;
    co_return view;
  }

  view.slots.reserve(static_cast<size_t>(layout_->meta_slots));
  for (int s = 0; s < layout_->meta_slots; ++s) {
    view.slots.push_back(WordAt(buf, static_cast<size_t>(s) * 8));
    view.max = TsMax(view.max, view.slots.back());
  }
  view.my_slot = view.slots[static_cast<size_t>(SlotOf(my_tid, layout_->meta_slots))];

  if (rd_inplace && !view.max.empty() && !view.max.deleted()) {
    const uint64_t stored_hash = WordAt(buf, meta_bytes).raw();
    const uint64_t len = WordAt(buf, meta_bytes + 8).raw();
    if (len <= layout_->max_value) {
      std::span<const uint8_t> data(buf.data() + meta_bytes + kInPlaceHeaderBytes,
                                    static_cast<size_t>(len));
      if (hash::HashMetaAndValue(view.max.raw(), data) == stored_hash) {
        view.inplace_valid = true;
        view.value.assign(data.begin(), data.end());
      }
    }
  }
  co_return view;
}

sim::Task<std::optional<sim::Bytes>> InOutReplica::ReadOop(Meta word) {
  if (word.oop() == 0) {
    co_return std::nullopt;
  }
  fabric::Qp& qp = worker_->qp(rep_->node);
  sim::Bytes buf(kOopHeaderBytes + layout_->max_value);
  fabric::OpResult r = co_await qp.Read(word.oop_addr(), buf);
  if (!r.ok()) {
    co_return std::nullopt;
  }
  const Meta header = WordAt(buf, 0);
  const uint64_t len = WordAt(buf, 8).raw();
  // Flag-insensitive match: the buffer was written before any VERIFIED
  // promotion, so only the write identity and pointer must agree.
  if (header.same_write_key() != word.same_write_key() || header.oop() != word.oop() ||
      len > layout_->max_value) {
    co_return std::nullopt;  // Buffer was recycled under us.
  }
  co_return sim::Bytes(buf.begin() + kOopHeaderBytes,
                                 buf.begin() + kOopHeaderBytes + static_cast<long>(len));
}

sim::Task<fabric::Status> InOutReplica::PromoteVerified(Meta node_word,
                                                        std::span<const uint8_t> value) {
  fabric::Qp& qp = worker_->qp(rep_->node);
  const Meta vword = node_word.WithVerified();
  const uint64_t slot_addr = SlotAddr(SlotOf(node_word.tid(), layout_->meta_slots));
  fabric::OpResult r;
  if (has_inplace()) {
    // Pipelined [in-place WRITE → metadata CAS to the VERIFIED word]. The
    // hash binds the bytes to the verified word so readers accept them only
    // while that word is still the node's max.
    sim::Bytes image(kInPlaceHeaderBytes + value.size());
    const uint64_t h = hash::HashMetaAndValue(vword.raw(), value);
    const uint64_t len = value.size();
    std::memcpy(image.data(), &h, 8);
    std::memcpy(image.data() + 8, &len, 8);
    std::memcpy(image.data() + 16, value.data(), value.size());
    r = co_await qp.WriteThenCas(rep_->inplace_addr, image, slot_addr, node_word.raw(),
                                 vword.raw());
  } else {
    r = co_await qp.Cas(slot_addr, node_word.raw(), vword.raw());
  }
  co_return r.status;
}

}  // namespace swarm
