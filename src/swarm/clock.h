// Loosely synchronized timestamp guessing (§3.2, §6).
//
// Safe-Guess writers guess a fresh timestamp instead of paying a roundtrip to
// discover one. The paper's clients derive guesses from a TSC-based clock
// that is loosely synchronized across machines and re-synchronized whenever a
// guess turns out stale. We model each client's clock as the virtual time
// plus a bounded skew; ObserveStale() implements the re-synchronization by
// jumping the local skew forward to the freshest timestamp observed.
//
// Guarantees (required by Safe-Guess): Guess() is strictly monotonic per
// client, and never reaches the delete tombstone counter.

#ifndef SWARM_SRC_SWARM_CLOCK_H_
#define SWARM_SRC_SWARM_CLOCK_H_

#include <cstdint>

#include "src/sim/simulator.h"
#include "src/swarm/timestamp.h"

namespace swarm {

// Virtual nanoseconds per counter unit: guesses advance every 256 ns.
inline constexpr int kCounterShiftNs = 8;

class GuessClock {
 public:
  // `skew_ns` is this client's initial clock error relative to true virtual
  // time (positive = fast clock). Real deployments see ~sub-microsecond skew
  // after PTP-style sync; benchmarks draw it from the config.
  GuessClock(sim::Simulator* sim, int64_t skew_ns) : sim_(sim), skew_ns_(skew_ns) {}

  // Returns a fresh-looking counter, strictly greater than all previous
  // guesses by this client.
  uint32_t Guess() {
    int64_t t = sim_->Now() + skew_ns_;
    if (t < 0) {
      t = 0;
    }
    uint32_t c = static_cast<uint32_t>(static_cast<uint64_t>(t) >> kCounterShiftNs);
    if (c <= last_) {
      c = last_ + 1;
    }
    if (c >= kDeleteCounter) {
      c = kDeleteCounter - 1;
    }
    last_ = c;
    return c;
  }

  // Called when a guess proved stale against `observed_counter`: re-sync the
  // local clock so the next guess lands beyond what was observed (§6).
  void ObserveStale(uint32_t observed_counter) {
    ++resyncs_;
    const int64_t observed_ns = static_cast<int64_t>(observed_counter) << kCounterShiftNs;
    const int64_t min_skew = observed_ns - sim_->Now();
    if (skew_ns_ < min_skew) {
      skew_ns_ = min_skew;
    }
    if (last_ < observed_counter) {
      last_ = observed_counter;
    }
  }

  int64_t skew_ns() const { return skew_ns_; }
  uint64_t resyncs() const { return resyncs_; }

 private:
  sim::Simulator* sim_;
  int64_t skew_ns_;
  uint32_t last_ = 0;
  uint64_t resyncs_ = 0;
};

}  // namespace swarm

#endif  // SWARM_SRC_SWARM_CLOCK_H_
