#include "src/swarm/quorum_max.h"

#include <algorithm>
#include <memory>

#include "src/sim/sync.h"

namespace swarm {
namespace {

bool IsNodeFailure(fabric::Status s) { return s == fabric::Status::kNodeFailed; }
bool IsMoved(fabric::Status s) { return s == fabric::Status::kMovedReplica; }

// --- WriteAndRead phase ---

struct WrPhase {
  sim::Counter ok;
  Meta w;
  sim::Bytes value;  // Stragglers keep using this after the caller returns.
  Meta m;                      // ts-max excluding `w` itself.
  std::array<Meta, kMaxReplicas> installed{};
  int max_retries = 0;
  bool moved = false;          // Some replica NACKed kMovedReplica.
  // Effect accounting for the retry-on-replacement-layout gate: the write
  // provably had no effect only when every launched attempt completed with a
  // no-effect NACK (kStaleEpoch/kMovedReplica) — an install, a kNodeFailed
  // completion, or a still-in-flight straggler all mean "maybe applied".
  bool maybe_applied = false;
  int launched = 0;
  int completions = 0;

  explicit WrPhase(sim::Simulator* s) : ok(s) {}
};

sim::Task<void> WriteAndReadOne(Worker* worker, const ObjectLayout* layout,
                                std::shared_ptr<ObjectCache> cache, int r,
                                std::shared_ptr<WrPhase> ph) {
  InOutReplica rep(worker, layout, r);
  // Pipeline the In-n-Out max-write and the metadata read on the same QP:
  // both are in flight simultaneously, one roundtrip total (Algorithm 2
  // line 6: "in parallel {m = M.READ(), M.WRITE(w)}") — and posted under one
  // doorbell (which joins the surrounding quorum batch when there is one).
  auto wt = rep.WriteMax(ph->w, ph->value, &cache->slot[static_cast<size_t>(r)]);
  auto rd = rep.ReadNode(/*want_inplace=*/false, worker->tid());
  auto [mr, view] =
      co_await fabric::PostBoth(worker->cpu(), worker->sim(), std::move(wt), std::move(rd));
  ++ph->completions;
  if (mr.ok() || IsNodeFailure(mr.status)) {
    ph->maybe_applied = true;  // Installed, or applied-but-unacked.
  }
  if (IsMoved(mr.status) || IsMoved(view.status)) {
    ph->moved = true;
  }
  if (!mr.ok() || !view.ok()) {
    if (IsNodeFailure(mr.status) || IsNodeFailure(view.status)) {
      worker->MarkNodeFailed(rep.node());
    }
    co_return;
  }
  Meta excl = view.MaxExcluding(ph->w);
  if (mr.observed.same_write_key() != ph->w.same_write_key()) {
    excl = TsMax(excl, mr.observed);
  }
  ph->m = TsMax(ph->m, excl);
  ph->installed[static_cast<size_t>(r)] = mr.installed;
  ph->max_retries = std::max(ph->max_retries, mr.cas_retries);
  ph->ok.Add(1);
}

// --- ReadQuorum phase ---

struct RdPhase {
  sim::Counter ok;
  std::array<Meta, kMaxReplicas> words{};
  std::array<bool, kMaxReplicas> oks{};
  std::array<sim::PoolVec<Meta>, kMaxReplicas> slots;
  bool have_inplace = false;
  bool moved = false;  // Some replica NACKed kMovedReplica.
  Meta inplace_word;
  sim::Bytes inplace_value;

  explicit RdPhase(sim::Simulator* s) : ok(s) {}
};

sim::Task<void> ReadOne(Worker* worker, const ObjectLayout* layout,
                        std::shared_ptr<ObjectCache> cache, int r, std::shared_ptr<RdPhase> ph) {
  InOutReplica rep(worker, layout, r);
  NodeView view = co_await rep.ReadNode(/*want_inplace=*/true, worker->tid());
  if (!view.ok()) {
    if (IsNodeFailure(view.status)) {
      worker->MarkNodeFailed(rep.node());
    }
    if (IsMoved(view.status)) {
      ph->moved = true;
    }
    co_return;
  }
  const auto idx = static_cast<size_t>(r);
  ph->words[idx] = view.max;
  ph->oks[idx] = true;
  ph->slots[idx] = std::move(view.slots);
  cache->slot[idx] = ph->slots[idx][static_cast<size_t>(SlotOf(worker->tid(), layout->meta_slots))];
  if (view.inplace_valid && !ph->have_inplace) {
    ph->have_inplace = true;
    ph->inplace_word = view.max;
    ph->inplace_value = std::move(view.value);
  }
  ph->ok.Add(1);
}

// --- Repair (write-back) phase ---

struct RepairPhase {
  sim::Counter fixed;
  Meta base;  // (counter, tid, flag) of the max, oop stripped.
  sim::Bytes value;
  bool moved = false;

  explicit RepairPhase(sim::Simulator* s) : fixed(s) {}
};

sim::Task<void> RepairOne(Worker* worker, const ObjectLayout* layout, int r, Meta seed,
                          std::shared_ptr<RepairPhase> ph) {
  InOutReplica rep(worker, layout, r);
  NodeMaxResult res = co_await rep.WriteMaxFor(ph->base, ph->value, seed);
  if (res.ok()) {
    ph->fixed.Add(1);
  } else if (IsMoved(res.status)) {
    ph->moved = true;
  }
}

// --- Verified write phase ---

struct VwPhase {
  sim::Counter ok;
  Meta w;
  sim::Bytes value;
  int max_retries = 0;
  bool moved = false;

  explicit VwPhase(sim::Simulator* s) : ok(s) {}
};

sim::Task<void> WriteVerifiedOne(Worker* worker, const ObjectLayout* layout,
                                 std::shared_ptr<ObjectCache> cache, int r,
                                 std::shared_ptr<VwPhase> ph) {
  InOutReplica rep(worker, layout, r);
  const auto idx = static_cast<size_t>(r);
  NodeMaxResult res = co_await rep.WriteVerifiedNode(ph->w, ph->value, cache->slot[idx]);
  if (!res.ok()) {
    if (IsNodeFailure(res.status)) {
      worker->MarkNodeFailed(rep.node());
    }
    if (IsMoved(res.status)) {
      ph->moved = true;
    }
    co_return;
  }
  cache->slot[idx] = TsMax(res.observed, res.installed);
  ph->max_retries = std::max(ph->max_retries, res.cas_retries);
  ph->ok.Add(1);
}

sim::Task<void> PromoteOne(Worker* worker, const ObjectLayout* layout, int r, Meta word,
                           std::shared_ptr<sim::Bytes> value,
                           std::shared_ptr<ObjectCache> cache) {
  InOutReplica rep(worker, layout, r);
  fabric::Status st = co_await rep.PromoteVerified(word, *value);
  if (st == fabric::Status::kOk && cache != nullptr) {
    Meta& slot = cache->slot[static_cast<size_t>(r)];
    slot = TsMax(slot, word.WithVerified());
  }
}

}  // namespace

void QuorumMax::PreferredOrder(std::array<int, kMaxReplicas>& order, int* num_live,
                               int* num_usable) const {
  int live = 0;
  std::array<int, kMaxReplicas> dead{};
  int num_dead = 0;
  for (int r = 0; r < layout_->num_replicas; ++r) {
    const int node = layout_->replicas[static_cast<size_t>(r)].node;
    if (worker_->NodeQuorumExcluded(node)) {
      continue;  // Mid-repair: not contacted, never counted.
    }
    if (worker_->NodeKnownFailed(node)) {
      dead[static_cast<size_t>(num_dead++)] = r;
    } else {
      order[static_cast<size_t>(live++)] = r;
    }
  }
  for (int i = 0; i < num_dead; ++i) {
    order[static_cast<size_t>(live + i)] = dead[static_cast<size_t>(i)];
  }
  *num_live = live;
  *num_usable = live + num_dead;
}

sim::Task<WriteReadOutcome> QuorumMax::WriteAndRead(Meta w, std::span<const uint8_t> value) {
  WriteReadOutcome out = co_await WriteAndReadOnce(w, value);
  // Membership-refresh-then-retry: a quorum that failed because verbs
  // bounced off an epoch fence proves nothing about the register — re-run
  // the attempt under the re-validated epoch (the max-write is idempotent).
  for (int retry = 0; retry < 2 && !out.ok && worker_->EpochRefreshNeeded(); ++retry) {
    co_await worker_->RefreshEpoch();
    const int prior_rtts = out.rtts;
    const bool prior_effect = out.effect_possible;
    out = co_await WriteAndReadOnce(w, value);
    out.rtts += prior_rtts;
    out.effect_possible |= prior_effect;  // Effects accumulate across attempts.
  }
  co_return out;
}

sim::Task<WriteReadOutcome> QuorumMax::WriteAndReadOnce(Meta w, std::span<const uint8_t> value) {
  auto ph = sim::MakePooled<WrPhase>(worker_->sim());
  ph->w = w;
  ph->value.assign(value.begin(), value.end());

  std::array<int, kMaxReplicas> order{};
  int live = 0;
  int usable = 0;
  PreferredOrder(order, &live, &usable);
  const int maj = layout_->majority();
  const int first_wave = std::min(maj, usable);

  // Each wave is one doorbell: all replicas' pipelined [WRITE→CAS] + READ
  // pairs ride a single amortized submit_cost (§7.2).
  auto one = [&](int i) {
    return WriteAndReadOne(worker_, layout_, cache_, order[static_cast<size_t>(i)], ph);
  };
  ph->launched += first_wave;
  bool got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().escalation_timeout, 0,
                                             first_wave, one);
  int rtts = 1;
  if (!got && !worker_->EpochRefreshNeeded() && !ph->moved) {
    // Broaden to the remaining usable replicas (a pure grace wait when the
    // first wave already covered them all). Skipped once an epoch fence
    // revoked a QP — the wrapper's refresh-retry is the productive path, not
    // a grace wait on fail-fast completions — and likewise on a moved NACK:
    // a migration flip fences ALL the layout's replicas at one instant, so
    // no straggler can complete a majority.
    ++rtts;
    ph->launched += usable - first_wave;
    got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().quorum_timeout,
                                          first_wave, usable - first_wave, one);
  }

  WriteReadOutcome out;
  out.ok = got;
  out.m = ph->m;
  out.installed = ph->installed;
  out.moved = ph->moved;
  out.effect_possible = ph->maybe_applied || ph->completions < ph->launched;
  out.rtts = rtts + ph->max_retries;
  co_return out;
}

sim::Task<ReadOutcome> QuorumMax::ReadQuorum(bool strong) {
  ReadOutcome out = co_await ReadQuorumOnce(strong);
  for (int retry = 0; retry < 2 && !out.ok && worker_->EpochRefreshNeeded(); ++retry) {
    co_await worker_->RefreshEpoch();
    const int prior_rtts = out.rtts;
    out = co_await ReadQuorumOnce(strong);
    out.rtts += prior_rtts;
  }
  co_return out;
}

sim::Task<ReadOutcome> QuorumMax::ReadQuorumOnce(bool strong) {
  auto ph = sim::MakePooled<RdPhase>(worker_->sim());

  std::array<int, kMaxReplicas> order{};
  int live = 0;
  int usable = 0;
  PreferredOrder(order, &live, &usable);
  const int maj = layout_->majority();
  const int first_wave = std::min(maj, usable);

  auto one = [&](int i) {
    return ReadOne(worker_, layout_, cache_, order[static_cast<size_t>(i)], ph);
  };
  bool got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().escalation_timeout, 0,
                                             first_wave, one);
  ReadOutcome out;
  out.rtts = 1;
  if (!got && !worker_->EpochRefreshNeeded() && !ph->moved) {
    ++out.rtts;
    got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().quorum_timeout,
                                          first_wave, usable - first_wave, one);
  }
  out.moved = ph->moved;
  if (!got) {
    co_return out;  // No live majority.
  }
  out.ok = true;

  for (int r = 0; r < layout_->num_replicas; ++r) {
    const auto idx = static_cast<size_t>(r);
    out.node_ok[idx] = ph->oks[idx];
    out.node_words[idx] = ph->words[idx];
    if (ph->oks[idx]) {
      out.m = TsMax(out.m, ph->words[idx]);
    }
  }

  // Resolve the bytes of `m` (Algorithm 6): in-place if the designated
  // replica's hash validated against the global max, else chase a pointer.
  if (out.m.empty() || out.m.deleted()) {
    out.value_ok = true;
  } else if (ph->have_inplace && ph->inplace_word.ts_order_key() == out.m.ts_order_key()) {
    out.value_ok = true;
    out.used_inplace = true;
    out.value = std::move(ph->inplace_value);
  } else if (strong) {
    for (int r = 0; r < layout_->num_replicas && !out.value_ok; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (!ph->oks[idx] || ph->words[idx].same_write_key() != out.m.same_write_key() ||
          ph->words[idx].oop() == 0) {
        continue;
      }
      InOutReplica rep(worker_, layout_, r);
      auto bytes = co_await rep.ReadOop(ph->words[idx]);
      ++out.rtts;
      if (bytes.has_value()) {
        out.value_ok = true;
        out.value = std::move(*bytes);
      }
    }
  }

  if (strong && !out.m.empty()) {
    // inner_write (Algorithm 8): make sure a majority carries the max before
    // returning it. Skipped when the quorum already agrees (Appendix A.2's
    // 0-RTT case, the common path).
    int holders = 0;
    for (int r = 0; r < layout_->num_replicas; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (ph->oks[idx] && ph->words[idx].ts_order_key() == out.m.ts_order_key()) {
        ++holders;
      }
    }
    if (holders < maj) {
      if (!out.value_ok) {
        out.ok = false;  // Cannot repair without bytes; caller retries.
        co_return out;
      }
      auto rp = sim::MakePooled<RepairPhase>(worker_->sim());
      rp->base = Meta::Pack(out.m.counter(), out.m.tid(), out.m.verified(), 0);
      rp->value = out.value;
      int launched = 0;
      {
        fabric::CpuBatch batch(worker_->cpu());  // All repairs, one doorbell.
        for (int i = 0; i < usable; ++i) {
          const int r = order[static_cast<size_t>(i)];
          const auto idx = static_cast<size_t>(r);
          if (ph->oks[idx] && ph->words[idx].ts_order_key() == out.m.ts_order_key()) {
            continue;  // Already a holder.
          }
          Meta seed;
          if (ph->oks[idx] && !ph->slots[idx].empty()) {
            seed = ph->slots[idx][static_cast<size_t>(SlotOf(out.m.tid(), layout_->meta_slots))];
          }
          sim::Spawn(RepairOne(worker_, layout_, r, seed, rp));
          ++launched;
        }
      }
      ++out.rtts;
      const bool fixed =
          co_await rp->fixed.WaitFor(maj - holders, worker_->config().quorum_timeout);
      if (!fixed) {
        out.ok = false;
        out.moved = out.moved || rp->moved;
        co_return out;
      }
    }
  }
  co_return out;
}

sim::Task<bool> QuorumMax::WriteVerified(Meta w, std::span<const uint8_t> value, int* rtts) {
  int total_rtts = 0;
  bool got = co_await WriteVerifiedOnce(w, value, &total_rtts);
  for (int retry = 0; retry < 2 && !got && worker_->EpochRefreshNeeded(); ++retry) {
    co_await worker_->RefreshEpoch();
    int attempt_rtts = 0;
    got = co_await WriteVerifiedOnce(w, value, &attempt_rtts);
    total_rtts += attempt_rtts;
  }
  if (rtts != nullptr) {
    *rtts = total_rtts;
  }
  co_return got;
}

sim::Task<bool> QuorumMax::WriteVerifiedOnce(Meta w, std::span<const uint8_t> value, int* rtts) {
  auto ph = sim::MakePooled<VwPhase>(worker_->sim());
  ph->w = w.WithVerified();
  ph->value.assign(value.begin(), value.end());

  std::array<int, kMaxReplicas> order{};
  int live = 0;
  int usable = 0;
  PreferredOrder(order, &live, &usable);
  const int maj = layout_->majority();
  const int first_wave = std::min(maj, usable);

  auto one = [&](int i) {
    return WriteVerifiedOne(worker_, layout_, cache_, order[static_cast<size_t>(i)], ph);
  };
  bool got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().escalation_timeout, 0,
                                             first_wave, one);
  int phases = 1;
  if (!got && !worker_->EpochRefreshNeeded() && !ph->moved) {
    ++phases;
    got = co_await worker_->BatchedQuorum(ph->ok, maj, worker_->config().quorum_timeout,
                                          first_wave, usable - first_wave, one);
  }
  if (rtts != nullptr) {
    *rtts = phases + ph->max_retries;
  }
  co_return got;
}

sim::Task<void> QuorumMax::Promote(Worker* worker, const ObjectLayout* layout,
                                   std::array<Meta, kMaxReplicas> installed,
                                   sim::Bytes value,
                                   std::shared_ptr<ObjectCache> cache) {
  auto shared_value = sim::MakePooled<sim::Bytes>(std::move(value));
  fabric::CpuBatch batch(worker->cpu());  // All promotions, one doorbell.
  for (int r = 0; r < layout->num_replicas; ++r) {
    const Meta word = installed[static_cast<size_t>(r)];
    if (!word.empty()) {
      sim::Spawn(PromoteOne(worker, layout, r, word, shared_value, cache));
    }
  }
  co_return;
}

sim::Task<bool> QuorumMax::WriteBack(Meta m, std::span<const uint8_t> value,
                                     const ReadOutcome& from) {
  auto rp = sim::MakePooled<RepairPhase>(worker_->sim());
  rp->base = Meta::Pack(m.counter(), m.tid(), m.verified(), 0);
  rp->value.assign(value.begin(), value.end());
  const int maj = layout_->majority();
  int holders = 0;
  {
    fabric::CpuBatch batch(worker_->cpu());
    for (int r = 0; r < layout_->num_replicas; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (worker_->NodeQuorumExcluded(layout_->replicas[idx].node)) {
        continue;  // Mid-repair: the repair coordinator owns its state.
      }
      if (from.node_ok[idx] && from.node_words[idx].ts_order_key() == m.ts_order_key()) {
        ++holders;
      } else {
        sim::Spawn(RepairOne(worker_, layout_, r, Meta(), rp));
      }
    }
  }
  if (holders >= maj) {
    co_return true;
  }
  co_return co_await rp->fixed.WaitFor(maj - holders, worker_->config().quorum_timeout);
}

}  // namespace swarm
