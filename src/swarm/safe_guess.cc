#include "src/swarm/safe_guess.h"

#include <array>
#include <cstdio>
#include <cstdlib>

#include "src/swarm/timestamp_lock.h"

namespace swarm {
namespace {

// A layout's TSL region holds exactly max_writers lock words; a writer whose
// tid indexes past it CASes the NEIGHBORING slab slot's words (see
// ProtocolConfig::enforce_writer_bounds). Every mutating entry point checks
// before touching the fabric so the misconfiguration dies at the first write
// instead of corrupting an unrelated object.
void CheckWriterBound(Worker* worker, const ObjectLayout* layout) {
  if (!worker->config().enforce_writer_bounds ||
      worker->tid() < static_cast<uint32_t>(layout->max_writers)) {
    return;
  }
  std::fprintf(stderr,
               "safe_guess: writer tid=%u outside layout TSL bound max_writers=%d; "
               "ProtocolConfig.max_writers must cover every writer tid\n",
               worker->tid(), layout->max_writers);
  std::abort();
}

}  // namespace

sim::Task<SgWriteResult> SafeGuessObject::Write(std::span<const uint8_t> value) {
  CheckWriterBound(worker_, layout_);
  SgWriteResult result;
  QuorumMax reg(worker_, layout_, cache_);

  // Line 5: guess a fresh timestamp; the GUESSED word to install.
  const uint32_t guess = worker_->clock().Guess();
  const Meta w = Meta::Pack(guess, worker_->tid(), /*verified=*/false, 0);

  // Line 6: in parallel, write w and read M — one roundtrip.
  WriteReadOutcome out = co_await reg.WriteAndRead(w, value);
  result.rtts += out.rtts;
  if (!out.ok) {
    if (out.moved && !out.effect_possible) {
      // Every attempt bounced off a migration fence with zero effect: the
      // caller may re-locate and re-execute this write on the new layout.
      result.status = SgStatus::kMoved;
    }
    co_return result;  // Else kUnavailable: possibly applied, never re-execute.
  }

  if (out.m.deleted()) {
    // The object carries a tombstone higher than any guess: the write cannot
    // take effect (§5.3.3 turns this into a cache flush + retry upstream).
    // Stabilize the tombstone at a MAJORITY before reporting the deletion:
    // it may sit at a minority (a deleter that died mid-delete), and acting
    // on it while our just-installed guessed word stays readable elsewhere
    // would let readers commit this very write after the key reported
    // not-found. ReadQuorum's inner_write does the same for reads.
    int fence_rtts = 0;
    const Meta fence = Meta::Pack(out.m.counter(), out.m.tid(), true, 0);
    const bool fenced = co_await reg.WriteVerified(fence, {}, &fence_rtts);
    result.rtts += fence_rtts;
    if (!fenced) {
      result.status = SgStatus::kUnavailable;
      co_return result;
    }
    // The bounce must ARBITRATE like the slow path before the caller may
    // re-execute this value on a successor object (§5.3.3's cache-flush
    // retry): our guessed word was installed before we observed the
    // tombstone, and a reader that deemed it fresh may commit it — a READ
    // lock on the guessed timestamp is exactly that commitment. Reporting
    // kDeleted and letting the caller retry would then apply ONE update
    // TWICE, observably (committed here, re-executed on the re-inserted
    // key). Chaos caught this double-apply once arrival-order NIC service
    // let a reader's confirm+lock straddle long delay spikes. WRITE-lock the
    // guess: acquired ⇒ no reader can ever commit it, the retry is safe
    // (kDeleted); lost ⇒ the write took effect before the object died and
    // the caller must NOT re-execute (kOk, ordered just before the delete).
    TimestampLock bounce_lock(worker_, layout_, worker_->tid());
    TryLockResult bounce = co_await bounce_lock.TryLock(guess, LockMode::kWrite);
    result.rtts += bounce.rtts;
    if (!bounce.quorum_ok) {
      result.status = SgStatus::kUnavailable;  // Unknown: recorded as pending.
      co_return result;
    }
    if (!bounce.acquired) {
      result.status = SgStatus::kOk;
      result.lock_lost = true;
      co_return result;
    }
    result.status = SgStatus::kDeleted;
    co_return result;
  }

  if (TsLessEq(out.m, w)) {
    // Line 7: fast path — the guess was fresh and our write linearized. The
    // whole phase cost ONE amortized submit_cost: the per-replica verb pairs
    // rode a single doorbell inside WriteAndRead (§7.2).
    // Line 8: promote to VERIFIED in the background to speed up readers (the
    // promotion CASes ride one doorbell too).
    result.status = SgStatus::kOk;
    result.fast_path = true;
    sim::Spawn(QuorumMax::Promote(worker_, layout_, out.installed,
                                  sim::Bytes(value.begin(), value.end()), cache_));
    co_return result;
  }

  // Line 9: slow path — the guess may be stale. Re-sync the clock (§6).
  worker_->clock().ObserveStale(out.m.counter());

  // Line 10: try to lock readers out of the guessed timestamp.
  TimestampLock lock(worker_, layout_, worker_->tid());
  TryLockResult locked = co_await lock.TryLock(guess, LockMode::kWrite);
  result.rtts += locked.rtts;
  if (!locked.quorum_ok) {
    co_return result;  // No live majority.
  }
  if (!locked.acquired) {
    // A reader locked our guessed timestamp in READ mode: it deemed the
    // guess fresh and committed to (or already returned) our value. The
    // write stands as-is.
    result.status = SgStatus::kOk;
    result.lock_lost = true;
    co_return result;
  }

  // Line 11: no reader can ever observe the guessed timestamp now; re-execute
  // with a provably fresh timestamp, directly VERIFIED.
  // clock().Guess() is now > out.m.counter() thanks to ObserveStale, which
  // also keeps per-writer timestamps strictly monotonic (Assumption 1).
  const uint32_t fresh = worker_->clock().Guess();
  const Meta w2 = Meta::Pack(fresh, worker_->tid(), /*verified=*/true, 0);
  int vw_rtts = 0;
  const bool ok = co_await reg.WriteVerified(w2, value, &vw_rtts);
  result.rtts += vw_rtts;
  result.status = ok ? SgStatus::kOk : SgStatus::kUnavailable;
  co_return result;
}

sim::Task<SgWriteResult> SafeGuessObject::Delete() {
  CheckWriterBound(worker_, layout_);
  SgWriteResult result;
  QuorumMax reg(worker_, layout_, cache_);
  const Meta tombstone = Meta::Tombstone(worker_->tid());
  // The combined write+read phase installs the tombstone AND returns the
  // quorum's ts-max excluding our own write, in the same roundtrip. If that
  // max is already a tombstone, another deleter finished before us — this
  // object was dead when we hit it, so the caller's mapping may be stale
  // (the key can live on under a newer generation, §5.3.4) and the caller
  // must re-locate. Quorum intersection makes the detection reliable: a
  // fully deleted object carries the foreign tombstone at a majority.
  WriteReadOutcome wr = co_await reg.WriteAndRead(tombstone, {});
  result.rtts = wr.rtts;
  result.fast_path = wr.rtts <= 1;
  if (!wr.ok) {
    // Same re-execution gate as Write: only a provably effect-free bounce off
    // a migration fence may be retried against the new layout.
    result.status =
        (wr.moved && !wr.effect_possible) ? SgStatus::kMoved : SgStatus::kUnavailable;
  } else if (wr.m.deleted()) {
    result.status = SgStatus::kDeleted;
  } else {
    result.status = SgStatus::kOk;
  }
  co_return result;
}

sim::Task<SgReadResult> SafeGuessObject::Read() {
  SgReadResult result;
  QuorumMax reg(worker_, layout_, cache_);

  // Line 15: tuples seen so far, keyed by writer id (bounded by W).
  struct Seen {
    bool present = false;
    uint64_t write_key = 0;
    sim::Bytes value;
  };
  std::array<Seen, kMaxTid + 1> seen{};

  const int max_iters = 2 * layout_->max_writers + 1;
  for (int iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    // Line 16: read M (reliable max-register read with write-back).
    ReadOutcome m = co_await reg.ReadQuorum(/*strong=*/true);
    result.rtts += m.rtts;
    if (!m.ok) {
      if (m.moved) {
        // Migration fence: this layout no longer owns the object. Reads have
        // no effect, so re-locating and re-reading is always safe.
        result.status = SgStatus::kMoved;
        co_return result;
      }
      // Includes the unlucky case where the max's out-of-place buffer was
      // recycled mid-read; retry unless the fabric has lost a majority. A
      // straggler kStaleEpoch completion may have revoked a QP after
      // ReadQuorum's own refresh-retry gave up — re-validate before the next
      // iteration rather than reading through dead QPs.
      if (worker_->EpochRefreshNeeded()) {
        co_await worker_->RefreshEpoch();
      }
      continue;
    }
    if (m.m.empty()) {
      result.status = SgStatus::kNotFound;
      co_return result;
    }
    if (m.m.deleted()) {
      result.status = SgStatus::kDeleted;
      co_return result;
    }
    if (!m.value_ok) {
      continue;
    }
    result.used_inplace = m.used_inplace;

    // Line 18: VERIFIED tuples are immediately safe.
    if (m.m.verified()) {
      result.status = SgStatus::kOk;
      result.value = std::move(m.value);
      result.fast_path = (iter == 0 && m.rtts <= 1);
      co_return result;
    }

    Seen& s = seen[m.m.tid()];
    if (s.present && s.write_key == m.m.same_write_key()) {
      // Line 19: same GUESSED tuple seen in two sequential reads — its
      // timestamp was fresh. Try to lock out a re-execution (line 20).
      TimestampLock lock(worker_, layout_, m.m.tid());
      TryLockResult locked = co_await lock.TryLock(m.m.counter(), LockMode::kRead);
      result.rtts += locked.rtts;
      if (locked.acquired) {
        // Line 21: mark VERIFIED in the background to speed up future reads.
        std::array<Meta, kMaxReplicas> words{};
        for (int r = 0; r < layout_->num_replicas; ++r) {
          const auto idx = static_cast<size_t>(r);
          if (m.node_ok[idx] &&
              m.node_words[idx].same_write_key() == m.m.same_write_key()) {
            words[idx] = m.node_words[idx];
          }
        }
        sim::Spawn(QuorumMax::Promote(worker_, layout_, words, m.value));
        // Line 22.
        result.status = SgStatus::kOk;
        result.value = std::move(m.value);
        co_return result;
      }
      // Lock failed: the writer saw a higher timestamp; the next iteration
      // is guaranteed to discover a new tuple (Appendix C.2).
    } else if (s.present) {
      // Line 23–24: a second, different tuple from the same writer — the
      // first write must have completed, so its value is safe to return.
      result.status = SgStatus::kOk;
      result.value = std::move(s.value);
      co_return result;
    }

    // Line 25.
    s.present = true;
    s.write_key = m.m.same_write_key();
    s.value = std::move(m.value);
  }

  // Unreachable for well-formed configurations (Appendix C.2 bounds the loop
  // at 2W+1 iterations); report unavailability rather than looping forever.
  co_return result;
}

}  // namespace swarm
