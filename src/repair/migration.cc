#include "src/repair/migration.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/repair/quorum_copy.h"
#include "src/swarm/abd.h"
#include "src/swarm/layout.h"

namespace swarm::repair {

namespace {

// Fence or unfence a replica slot. A replica is ONE contiguous slab slot
// ([meta | in-place? | tsl], see AllocateObject), so one interval covers it.
void SetSlotFence(fabric::MemoryNode& node, const ObjectLayout* layout, const ReplicaLayout& rep,
                  bool fenced) {
  const uint64_t len = layout->replica_slot_bytes(rep.inplace_addr != 0);
  if (fenced) {
    node.RetireRegion(rep.meta_addr, len);
  } else {
    node.RestoreRegion(rep.meta_addr, len);
  }
}

}  // namespace

int MigrationService::PickDestination(uint64_t key, const ObjectLayout* layout) const {
  // Stack buffer: the pick runs per migrated key inside bulk flows and must
  // not allocate (the zero-alloc guard covers the chaos hot loops).
  int candidates[kMaxNodes];
  size_t num_candidates = 0;
  const int n = worker_->fabric()->num_nodes();
  for (int i = 0; i < n && num_candidates < kMaxNodes; ++i) {
    if (!membership_->IsServing(i) || membership_->IsRepairing(i)) {
      continue;
    }
    bool hosts = false;
    for (int r = 0; r < layout->num_replicas; ++r) {
      hosts = hosts || layout->replicas[static_cast<size_t>(r)].node == i;
    }
    if (!hosts) {
      candidates[num_candidates++] = i;
    }
  }
  if (num_candidates == 0) {
    return -1;
  }
  const uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return candidates[h % num_candidates];
}

bool MigrationService::HostsReplicas(int node) const {
  // Walk the node's own slots in the inverse placement map — O(slots on the
  // node) — counting only slots whose owner is the key's CURRENT mapping
  // (retired layouts pinned by stale caches don't block a drain; their slots
  // are released by the retired-layout GC).
  bool hosts = false;
  index_->placement().ForEachSlotOn(
      node, [&](uint64_t addr, const index::PlacementMap::Slot& slot) {
        (void)addr;
        if (hosts || slot.moved) {
          return;
        }
        const index::IndexEntry* e = index_->Peek(slot.key);
        if (e != nullptr && e->layout.get() == slot.owner.get()) {
          hosts = true;
        }
      });
  return hosts;
}

sim::Task<MigrateStatus> MigrationService::MigrateKey(uint64_t key, int from, int onto) {
  // --- plan ---------------------------------------------------------------
  // A source under repair is the repair's to arbitrate: its slots are being
  // rebuilt in place and the node is quorum-excluded, so a concurrent move
  // would harvest around it anyway only to fight the rebuild. Skip; bulk
  // flows revisit the key after the repair readmits.
  if (membership_->IsRepairing(from)) {
    ++keys_skipped_;
    co_return MigrateStatus::kSkipped;
  }
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  if (!idx.has_value()) {
    ++keys_skipped_;
    co_return MigrateStatus::kSkipped;
  }
  std::shared_ptr<const ObjectLayout> src = idx->layout;
  int slot = -1;
  for (int r = 0; r < src->num_replicas; ++r) {
    if (src->replicas[static_cast<size_t>(r)].node == from) {
      slot = r;
      break;
    }
  }
  if (slot < 0) {
    ++keys_skipped_;  // Already elsewhere (or a racing move beat us).
    co_return MigrateStatus::kSkipped;
  }
  const int dest = onto >= 0 ? onto : PickDestination(key, src.get());
  if (dest < 0 || dest == from || membership_->IsRepairing(dest)) {
    co_return MigrateStatus::kNoDestination;
  }

  ++in_flight_;
  const ReplicaLayout vacated = src->replicas[static_cast<size_t>(slot)];

  // --- graft --------------------------------------------------------------
  // L' = L with the vacated slot's buffers replaced by fresh allocations on
  // the destination; every other slot is shared with L byte-for-byte.
  auto dst = std::make_shared<ObjectLayout>(*src);
  {
    const int nodes[1] = {dest};
    ObjectLayout fresh =
        AllocateObject(*worker_->fabric(), nodes, 1, src->meta_slots, src->max_writers,
                       src->max_value, /*inplace_copies=*/vacated.inplace_addr != 0 ? 1 : 0);
    dst->replicas[static_cast<size_t>(slot)] = fresh.replicas[0];
  }

  // --- fence + epoch bump -------------------------------------------------
  const bool fenced = !config_.disable_flip_fence;
  if (fenced) {
    SetSlotFence(worker_->fabric()->node(from), src.get(), vacated, /*fenced=*/true);
  }
  membership_->NoteOwnershipFlip();

  // --- copy ---------------------------------------------------------------
  bool copied = false;
  for (int round = 0; round < config_.max_rounds && !copied; ++round) {
    if (round > 0) {
      co_await worker_->sim()->Delay(config_.round_retry_delay);
    }
    if (protocol_ == LayoutProtocol::kAbd) {
      AbdObject obj(worker_, src.get(), worker_->SlotCacheFor(src.get()));
      copied = co_await obj.CopyReplicaTo(dst.get(), slot);
    } else {
      copied = co_await CopySafeGuessReplica(worker_, src, dst.get(), slot,
                                             /*skip_tombstones=*/false);
    }
  }

  // --- flip ---------------------------------------------------------------
  uint64_t new_generation = 0;
  if (copied) {
    new_generation = co_await index_->ReplaceLayout(key, idx->generation, dst, worker_->cpu());
  }
  if (new_generation != 0) {
    // ReplaceLayout retired L as moved: the repair walk skips it, cache GC
    // listeners invalidate it, and the old slot's fences are PERMANENT (they
    // survive even a crash-recover of the source node — the state behind
    // them is dead).
    ++keys_moved_;
    --in_flight_;
    co_return MigrateStatus::kMoved;
  }

  // --- abort --------------------------------------------------------------
  // Copy gave up (no surviving quorum within budget) or the flip guard
  // failed (racing delete / re-insert). Restore the fences and abandon L':
  // the cluster is exactly as before the attempt. The fresh destination slot
  // was never published — no directory entry, no cached Located, and the
  // coordinator's copy verbs have all completed — so it goes straight back
  // to the slab (through its quarantine).
  if (fenced) {
    SetSlotFence(worker_->fabric()->node(from), src.get(), vacated, /*fenced=*/false);
  }
  worker_->fabric()->node(dest).FreeSlot(dst->replicas[static_cast<size_t>(slot)].meta_addr);
  membership_->NoteOwnershipFlip();  // Un-fenced: stale holders re-learn again.
  ++keys_aborted_;
  --in_flight_;
  co_return MigrateStatus::kAborted;
}

sim::Task<uint64_t> MigrationService::MigrateExtent(int from, uint64_t addr, int onto) {
  // --- plan: the extent's keys --------------------------------------------
  // One slab extent holds same-sized replica slots back to back, and the
  // inverse placement map walks them in address order — so an extent's live
  // keys are one contiguous sub-range of the node's slot walk.
  const auto* ext = worker_->fabric()->node(from).SlotExtentOf(addr);
  if (ext == nullptr) {
    co_return 0;
  }
  const uint64_t base = ext->base;
  const uint64_t end = ext->base + ext->bytes;
  std::vector<uint64_t> keys;
  index_->placement().ForEachSlotOn(
      from, [&](uint64_t slot_addr, const index::PlacementMap::Slot& slot) {
        if (slot_addr < base || slot_addr >= end || slot.moved) {
          return;
        }
        const index::IndexEntry* e = index_->Peek(slot.key);
        if (e != nullptr && e->layout.get() == slot.owner.get()) {
          keys.push_back(slot.key);
        }
      });
  // --- fence + copy + flip, one slot at a time ----------------------------
  // Each flip plants its own slot fence; the retired map COALESCES adjacent
  // slots, so as the extent empties the fences merge into a single interval
  // covering the vacated range — admission checks stay O(log intervals) no
  // matter how many slots moved. Per-slot (rather than one up-front
  // extent-wide) fencing keeps the extent's still-free slots allocatable and
  // each aborted key's slot serving, with no fence fragments to reconcile.
  uint64_t moved = 0;
  for (uint64_t key : keys) {
    if (co_await MigrateKey(key, from, onto) == MigrateStatus::kMoved) {
      ++moved;
    }
  }
  if (moved > 0) {
    ++extents_moved_;
  }
  co_return moved;
}

sim::Task<int> MigrationService::AdmitAndRebalance(uint64_t max_keys) {
  const int node = membership_->AdmitNode();
  if (node < 0) {
    co_return -1;  // Fabric at its lifetime bound; nothing changed.
  }
  ++nodes_admitted_;
  // The node is kJoining: new placements skip it, clients know its epoch.
  // Fill it by pulling keys over — destination pinned, source picked per key
  // as the replica the key hashes to, spreading the unload evenly.
  uint64_t moved = 0;
  auto snapshot = index_->SnapshotSorted();
  for (const auto& [key, entry] : snapshot) {
    if (moved >= max_keys) {
      break;
    }
    bool hosts = false;
    for (int r = 0; r < entry.layout->num_replicas; ++r) {
      hosts = hosts || entry.layout->replicas[static_cast<size_t>(r)].node == node;
    }
    if (hosts) {
      continue;
    }
    const int r = static_cast<int>(key % static_cast<uint64_t>(entry.layout->num_replicas));
    const int from = entry.layout->replicas[static_cast<size_t>(r)].node;
    const MigrateStatus st = co_await MigrateKey(key, from, node);
    if (st == MigrateStatus::kMoved) {
      ++moved;
    }
  }
  membership_->CompleteJoin(node);
  co_return node;
}

sim::Task<bool> MigrationService::Drain(int node, bool decommission) {
  membership_->BeginDrain(node);
  bool clean = false;
  for (int round = 0; round < config_.max_rounds && !clean; ++round) {
    if (round > 0) {
      co_await worker_->sim()->Delay(config_.round_retry_delay);
    }
    clean = true;
    // Snapshot the node's live slots from the inverse placement map —
    // O(slots on the node), address-ordered (deterministic for seed
    // replay) — instead of scanning the whole store. A layout hosting two
    // replicas here lists its key twice; the second MigrateKey simply moves
    // the second replica.
    std::vector<uint64_t> keys;
    index_->placement().ForEachSlotOn(
        node, [&](uint64_t addr, const index::PlacementMap::Slot& slot) {
          (void)addr;
          if (slot.moved) {
            return;
          }
          const index::IndexEntry* e = index_->Peek(slot.key);
          if (e != nullptr && e->layout.get() == slot.owner.get()) {
            keys.push_back(slot.key);
          }
        });
    for (uint64_t key : keys) {
      const MigrateStatus st = co_await MigrateKey(key, node, -1);
      clean = clean && (st == MigrateStatus::kMoved || st == MigrateStatus::kSkipped);
    }
    // Mappings inserted after the snapshot placed on the serving set, which
    // has excluded `node` since BeginDrain — but a key skipped above (its
    // source or the whole cluster was mid-repair) still hosts one.
    clean = clean && !HostsReplicas(node);
  }
  if (clean) {
    if (decommission) {
      membership_->Decommission(node);
    }
    ++drains_completed_;
    co_return true;
  }
  // Graceful abort: the node returns to serving with whatever replicas it
  // still hosts. Keys already moved stay moved — each flip was individually
  // complete, so no state is half-transferred.
  membership_->CompleteJoin(node);
  ++drains_aborted_;
  co_return false;
}

}  // namespace swarm::repair
