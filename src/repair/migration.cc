#include "src/repair/migration.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/repair/quorum_copy.h"
#include "src/swarm/abd.h"
#include "src/swarm/layout.h"

namespace swarm::repair {

namespace {

// Fence or unfence the three regions a replica slot owns. The metadata array
// and the in-place region are allocated contiguously but retired separately
// so the bookkeeping never depends on that adjacency.
void SetSlotFence(fabric::MemoryNode& node, const ObjectLayout* layout, const ReplicaLayout& rep,
                  bool fenced) {
  const auto apply = [&](uint64_t addr, uint64_t len) {
    if (fenced) {
      node.RetireRegion(addr, len);
    } else {
      node.RestoreRegion(addr, len);
    }
  };
  apply(rep.meta_addr, layout->meta_region_bytes());
  if (rep.inplace_addr != 0) {
    apply(rep.inplace_addr, layout->inplace_region_bytes());
  }
  apply(rep.tsl_addr, layout->tsl_region_bytes());
}

}  // namespace

int MigrationService::PickDestination(uint64_t key, const ObjectLayout* layout) const {
  std::vector<int> candidates;
  const int n = worker_->fabric()->num_nodes();
  for (int i = 0; i < n; ++i) {
    if (!membership_->IsServing(i) || membership_->IsRepairing(i)) {
      continue;
    }
    bool hosts = false;
    for (int r = 0; r < layout->num_replicas; ++r) {
      hosts = hosts || layout->replicas[static_cast<size_t>(r)].node == i;
    }
    if (!hosts) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return -1;
  }
  const uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return candidates[h % candidates.size()];
}

bool MigrationService::HostsReplicas(int node) const {
  for (const auto& [key, entry] : index_->SnapshotSorted()) {
    for (int r = 0; r < entry.layout->num_replicas; ++r) {
      if (entry.layout->replicas[static_cast<size_t>(r)].node == node) {
        return true;
      }
    }
  }
  return false;
}

sim::Task<MigrateStatus> MigrationService::MigrateKey(uint64_t key, int from, int onto) {
  // --- plan ---------------------------------------------------------------
  // A source under repair is the repair's to arbitrate: its slots are being
  // rebuilt in place and the node is quorum-excluded, so a concurrent move
  // would harvest around it anyway only to fight the rebuild. Skip; bulk
  // flows revisit the key after the repair readmits.
  if (membership_->IsRepairing(from)) {
    ++keys_skipped_;
    co_return MigrateStatus::kSkipped;
  }
  auto idx = co_await index_->Lookup(key, worker_->cpu());
  if (!idx.has_value()) {
    ++keys_skipped_;
    co_return MigrateStatus::kSkipped;
  }
  std::shared_ptr<const ObjectLayout> src = idx->layout;
  int slot = -1;
  for (int r = 0; r < src->num_replicas; ++r) {
    if (src->replicas[static_cast<size_t>(r)].node == from) {
      slot = r;
      break;
    }
  }
  if (slot < 0) {
    ++keys_skipped_;  // Already elsewhere (or a racing move beat us).
    co_return MigrateStatus::kSkipped;
  }
  const int dest = onto >= 0 ? onto : PickDestination(key, src.get());
  if (dest < 0 || dest == from || membership_->IsRepairing(dest)) {
    co_return MigrateStatus::kNoDestination;
  }

  ++in_flight_;
  const ReplicaLayout vacated = src->replicas[static_cast<size_t>(slot)];

  // --- graft --------------------------------------------------------------
  // L' = L with the vacated slot's buffers replaced by fresh allocations on
  // the destination; every other slot is shared with L byte-for-byte.
  auto dst = std::make_shared<ObjectLayout>(*src);
  {
    const int nodes[1] = {dest};
    ObjectLayout fresh =
        AllocateObject(*worker_->fabric(), nodes, 1, src->meta_slots, src->max_writers,
                       src->max_value, /*inplace_copies=*/vacated.inplace_addr != 0 ? 1 : 0);
    dst->replicas[static_cast<size_t>(slot)] = fresh.replicas[0];
  }

  // --- fence + epoch bump -------------------------------------------------
  const bool fenced = !config_.disable_flip_fence;
  if (fenced) {
    SetSlotFence(worker_->fabric()->node(from), src.get(), vacated, /*fenced=*/true);
  }
  membership_->NoteOwnershipFlip();

  // --- copy ---------------------------------------------------------------
  bool copied = false;
  for (int round = 0; round < config_.max_rounds && !copied; ++round) {
    if (round > 0) {
      co_await worker_->sim()->Delay(config_.round_retry_delay);
    }
    if (protocol_ == LayoutProtocol::kAbd) {
      AbdObject obj(worker_, src.get(), worker_->SlotCacheFor(src.get()));
      copied = co_await obj.CopyReplicaTo(dst.get(), slot);
    } else {
      copied = co_await CopySafeGuessReplica(worker_, src, dst.get(), slot,
                                             /*skip_tombstones=*/false);
    }
  }

  // --- flip ---------------------------------------------------------------
  uint64_t new_generation = 0;
  if (copied) {
    new_generation = co_await index_->ReplaceLayout(key, idx->generation, dst, worker_->cpu());
  }
  if (new_generation != 0) {
    // ReplaceLayout retired L as moved: the repair walk skips it, cache GC
    // listeners invalidate it, and the old slot's fences are PERMANENT (they
    // survive even a crash-recover of the source node — the state behind
    // them is dead).
    ++keys_moved_;
    --in_flight_;
    co_return MigrateStatus::kMoved;
  }

  // --- abort --------------------------------------------------------------
  // Copy gave up (no surviving quorum within budget) or the flip guard
  // failed (racing delete / re-insert). Restore the fences and abandon L':
  // the cluster is exactly as before the attempt.
  if (fenced) {
    SetSlotFence(worker_->fabric()->node(from), src.get(), vacated, /*fenced=*/false);
  }
  membership_->NoteOwnershipFlip();  // Un-fenced: stale holders re-learn again.
  ++keys_aborted_;
  --in_flight_;
  co_return MigrateStatus::kAborted;
}

sim::Task<int> MigrationService::AdmitAndRebalance(uint64_t max_keys) {
  const int node = membership_->AdmitNode();
  if (node < 0) {
    co_return -1;  // Fabric at its lifetime bound; nothing changed.
  }
  ++nodes_admitted_;
  // The node is kJoining: new placements skip it, clients know its epoch.
  // Fill it by pulling keys over — destination pinned, source picked per key
  // as the replica the key hashes to, spreading the unload evenly.
  uint64_t moved = 0;
  auto snapshot = index_->SnapshotSorted();
  for (const auto& [key, entry] : snapshot) {
    if (moved >= max_keys) {
      break;
    }
    bool hosts = false;
    for (int r = 0; r < entry.layout->num_replicas; ++r) {
      hosts = hosts || entry.layout->replicas[static_cast<size_t>(r)].node == node;
    }
    if (hosts) {
      continue;
    }
    const int r = static_cast<int>(key % static_cast<uint64_t>(entry.layout->num_replicas));
    const int from = entry.layout->replicas[static_cast<size_t>(r)].node;
    const MigrateStatus st = co_await MigrateKey(key, from, node);
    if (st == MigrateStatus::kMoved) {
      ++moved;
    }
  }
  membership_->CompleteJoin(node);
  co_return node;
}

sim::Task<bool> MigrationService::Drain(int node, bool decommission) {
  membership_->BeginDrain(node);
  bool clean = false;
  for (int round = 0; round < config_.max_rounds && !clean; ++round) {
    if (round > 0) {
      co_await worker_->sim()->Delay(config_.round_retry_delay);
    }
    clean = true;
    auto snapshot = index_->SnapshotSorted();
    for (const auto& [key, entry] : snapshot) {
      bool hosts = false;
      for (int r = 0; r < entry.layout->num_replicas; ++r) {
        hosts = hosts || entry.layout->replicas[static_cast<size_t>(r)].node == node;
      }
      if (!hosts) {
        continue;
      }
      const MigrateStatus st = co_await MigrateKey(key, node, -1);
      clean = clean && (st == MigrateStatus::kMoved || st == MigrateStatus::kSkipped);
    }
    // Mappings inserted after the snapshot placed on the serving set, which
    // has excluded `node` since BeginDrain — but a key skipped above (its
    // source or the whole cluster was mid-repair) still hosts one.
    clean = clean && !HostsReplicas(node);
  }
  if (clean) {
    if (decommission) {
      membership_->Decommission(node);
    }
    ++drains_completed_;
    co_return true;
  }
  // Graceful abort: the node returns to serving with whatever replicas it
  // still hosts. Keys already moved stay moved — each flip was individually
  // complete, so no state is half-transferred.
  membership_->CompleteJoin(node);
  ++drains_aborted_;
  co_return false;
}

}  // namespace swarm::repair
