// Crash-recover repair (the availability story §7.7 leaves implicit): when a
// failed memory node restarts, its DRAM contents are gone but the cluster's
// allocation map is not. The RepairService turns that restart into a correct
// crash-recover cycle:
//
//   1. restart  — MembershipService::BeginRepair brings the node back with
//                 its allocation map preserved and flags it `repairing`;
//                 Workers drop it from quorum selection entirely (it neither
//                 receives protocol verbs nor counts toward any majority),
//   2. repair   — a coordinator walks every replica slot the node hosts
//                 (index-guided), reads the authoritative state back from a
//                 surviving quorum — ABD-style read-repair with tombstone
//                 stabilization: the quorum max is re-installed at the
//                 survivors before it is trusted, and delete tombstones are
//                 restored verbatim so deleted objects cannot resurrect —
//                 and writes it into the rejoining node's slots,
//   3. readmit  — MembershipService::CompleteRepair clears the repairing
//                 flag and pushes the recovery notification.
//
// Correctness rests on quorum intersection: while the node is excluded,
// every committed write reaches a majority of the REMAINING replicas, so a
// post-readmission majority — which can include the repaired node — always
// intersects either the repair's source quorum or a post-exclusion write
// quorum. A repair that cannot find a surviving quorum within its retry
// budget gives up and leaves the node permanently excluded: reduced
// availability, never stale reads.
//
// The ChaosEngine drives the lifecycle via set_repair_fn (ChaosConfig::
// repair), and the Recycler's safe horizon waits for in-flight repairs
// (Recycler::set_repair_gate): a repair chases survivors' out-of-place
// pointers exactly like a reader, but is not a lease-holding participant.

#ifndef SWARM_SRC_REPAIR_REPAIR_H_
#define SWARM_SRC_REPAIR_REPAIR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/index/index_service.h"
#include "src/membership/membership.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/swarm/worker.h"

namespace swarm::repair {

struct [[nodiscard]] RepairOutcome {
  bool complete = false;       // Every slot restored (or nothing to restore).
  uint64_t slots_repaired = 0;
  uint64_t slots_failed = 0;   // Slots whose source quorum did not answer.
  // Slots the walk visited on the node — the repair's work metric. With the
  // inverse placement map this is O(slots-on-node), not O(store); the scale
  // soak asserts the ratio stays flat as the store grows.
  uint64_t slots_walked = 0;
};

// Fault-injection knobs for the canary gallery (tests/chaos_replay_test.cc):
// each flag plants a known repair bug the crash-recover chaos suites must
// catch. Production configurations leave both false.
struct RepairConfig {
  // Repair rounds per node before giving up (the node then stays excluded).
  int max_rounds = 10;
  sim::Time round_retry_delay = 30 * sim::kMicrosecond;

  // CANARY: skip restoring delete tombstones — deleted objects resurrect
  // through quorums pairing the rejoined replica with a stale survivor.
  bool skip_tombstone_repair = false;
  // CANARY: readmit the node before (instead of after) its repair ran —
  // empty replicas serve reads and linearizability falls over.
  bool readmit_before_repair = false;
};

// A store whose replica placement the repair coordinator can walk. RepairNode
// must be idempotent: the coordinator re-invokes it until `complete`.
class RepairableStore {
 public:
  virtual ~RepairableStore() = default;

  // Rebuilds every replica slot this store placed on `node`, reading from
  // surviving quorums through `worker` — whose repair-excluded set contains
  // `node`, so its quorum reads cannot touch the node being rebuilt.
  virtual sim::Task<RepairOutcome> RepairNode(int node, Worker* worker,
                                              const RepairConfig& config) = 0;

  // Lifecycle notifications around the whole repair of `node`.
  virtual void OnRepairBegin(int node) { (void)node; }
  // readmitted=false: the coordinator gave up; the node stays excluded.
  virtual void OnRepairComplete(int node, bool readmitted) {
    (void)node;
    (void)readmitted;
  }
};

// Repairs objects reachable through an IndexService (the SWARM-KV and DM-ABD
// layouts). The two protocols share ObjectLayout but differ in their
// out-of-place image format and lock usage, so the source is told which
// repair routine fits.
enum class LayoutProtocol : uint8_t {
  kSafeGuess,  // In-n-Out images + timestamp-lock state (swarm_kv).
  kAbd,        // Self-validating ABD images, no locks (dm_abd_kv).
};

class IndexRepairSource : public RepairableStore {
 public:
  IndexRepairSource(index::IndexService* index, LayoutProtocol protocol)
      : index_(index), protocol_(protocol) {}

  sim::Task<RepairOutcome> RepairNode(int node, Worker* worker,
                                      const RepairConfig& config) override;

 private:
  index::IndexService* index_;
  LayoutProtocol protocol_;
};

// The repair coordinator: one per cluster, owning a dedicated Worker for its
// verbs (the worker's repair-excluded set must be the membership service's
// `repairing` vector, so the coordinator's own quorum reads skip the node
// under repair).
class RepairService {
 public:
  RepairService(membership::MembershipService* membership, Worker* worker,
                RepairConfig config = {})
      : membership_(membership), worker_(worker), config_(config),
        resuming_(static_cast<size_t>(worker->fabric()->num_nodes()), false),
        lifecycle_gen_(static_cast<size_t>(worker->fabric()->num_nodes()), 0) {
    worker_->set_repair_excluded(membership_->repairing());
    worker_->MarkRepairChannel();  // Repair verbs pass the rejoin fence.
  }

  void RegisterStore(RepairableStore* store) { stores_.push_back(store); }

  // The full lifecycle for one restarted node: restart (allocation map
  // preserved, quorum-excluded) → repair every registered store → readmit.
  // Returns true when the node was readmitted, false when repair gave up
  // (the node stays excluded until a later readmission triggers a
  // re-repair — see the dark-slot bookkeeping below).
  sim::Task<bool> RecoverAndRepair(int node);

  // True while any node's repair is running — the Recycler's safe-horizon
  // gate (Recycler::set_repair_gate).
  bool InFlight() const { return in_flight_ > 0; }

  // --- Dark-slot bookkeeping -----------------------------------------------
  //
  // Two overlapping repairs can mutually wait: an object hosting BOTH
  // repairing nodes has no surviving quorum, so each repair's rounds keep
  // failing that slot while the other node is excluded. A repair that
  // exhausts its round budget gives up — safe, but previously PERMANENTLY
  // dark even when the blocker was transient (the other repair completed
  // right after our give-up, a drop burst cleared, ...). The service now
  // remembers every given-up node together with its residual failed-slot
  // count, and every successful readmission re-triggers those repairs: the
  // world just changed in exactly the way that can unblock them. A resumed
  // repair skips the restart (the node is still fenced and excluded, its
  // partially repaired slots intact — RepairNode is idempotent) and runs the
  // round loop again.

  // Given-up nodes (node → slots still failing at give-up). Empty when no
  // node is dark.
  const std::map<int, uint64_t>& dark_nodes() const { return dark_; }

  uint64_t repairs_completed() const { return repairs_completed_; }
  uint64_t repairs_aborted() const { return repairs_aborted_; }
  uint64_t repairs_resumed() const { return repairs_resumed_; }
  uint64_t slots_repaired() const { return slots_repaired_; }
  // Total slots walked across every repair round — the measured repair cost
  // (proportional to slots-on-node, not store size).
  uint64_t slots_walked() const { return slots_walked_; }

  const RepairConfig& config() const { return config_; }

 private:
  // Grows the per-node lifecycle vectors for a node hot-added after this
  // service was constructed (elastic membership: an admitted node can crash
  // and repair like any other).
  void EnsureTracked(int node) {
    const auto n = static_cast<size_t>(node) + 1;
    if (resuming_.size() < n) {
      resuming_.resize(n, false);
      lifecycle_gen_.resize(n, 0);
    }
  }

  // Re-runs the round loop for a node whose earlier repair gave up; called
  // on every successful readmission. Readmits on success (which in turn
  // re-triggers any remaining dark nodes).
  sim::Task<void> ResumeRepair(int node);

  // Runs up to max_rounds over all registered stores; true when complete.
  sim::Task<bool> RepairRounds(int node, uint64_t* residual_failed);

  void TriggerDarkRetries();

  membership::MembershipService* membership_;
  Worker* worker_;
  RepairConfig config_;
  std::vector<RepairableStore*> stores_;
  int in_flight_ = 0;
  std::map<int, uint64_t> dark_;           // Given-up nodes, deterministic order.
  std::vector<bool> resuming_;             // Per-node re-repair in progress.
  std::vector<uint64_t> lifecycle_gen_;    // Bumped by each RecoverAndRepair.
  uint64_t repairs_completed_ = 0;
  uint64_t repairs_aborted_ = 0;
  uint64_t repairs_resumed_ = 0;
  uint64_t slots_repaired_ = 0;
  uint64_t slots_walked_ = 0;
};

}  // namespace swarm::repair

#endif  // SWARM_SRC_REPAIR_REPAIR_H_
