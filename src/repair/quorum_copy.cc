#include "src/repair/quorum_copy.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/swarm/inout.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/timestamp.h"

namespace swarm::repair {

uint64_t MergeTslWord(uint64_t a, uint64_t b) {
  const TslWord wa(a);
  const TslWord wb(b);
  if (wa.counter() != wb.counter()) {
    return wa.counter() > wb.counter() ? a : b;
  }
  return std::min(a, b);
}

sim::Task<bool> CopyLocks(Worker* worker, const ObjectLayout* src, const ObjectLayout* dst,
                          int target) {
  const size_t region = static_cast<size_t>(src->tsl_region_bytes());
  const int writers = src->max_writers;
  // Harvest every readable replica's lock array under ONE doorbell: the reads
  // are independent, so serializing them (a doorbell and a full roundtrip
  // each) was pure repair-time overhead. Buffer storage is stable across the
  // await — vector-of-vectors growth moves the inner vector objects, never
  // their heap blocks, so the spans captured by the lazy verb tasks stay
  // valid.
  sim::PoolVec<sim::Bytes> bufs;
  sim::PoolVec<sim::Task<fabric::OpResult>> verbs;
  for (int r = 0; r < src->num_replicas; ++r) {
    const ReplicaLayout& rep = src->replicas[static_cast<size_t>(r)];
    if (worker->NodeQuorumExcluded(rep.node)) {
      continue;  // The node under repair itself.
    }
    bufs.emplace_back(region);
    verbs.push_back(worker->qp(rep.node).Read(rep.tsl_addr, bufs.back()));
  }
  sim::PoolVec<fabric::OpResult> results =
      co_await fabric::PostMany(worker->cpu(), worker->sim(), std::move(verbs));
  sim::PoolVec<uint64_t> merged(static_cast<size_t>(writers), 0);
  bool any = false;
  for (size_t r = 0; r < results.size(); ++r) {
    if (!results[r].ok()) {
      co_return false;  // Lock state may live at a single survivor.
    }
    for (int i = 0; i < writers; ++i) {
      uint64_t word;
      std::memcpy(&word, bufs[r].data() + static_cast<size_t>(i) * 8, 8);
      merged[static_cast<size_t>(i)] = MergeTslWord(merged[static_cast<size_t>(i)], word);
      any = any || word != 0;
    }
  }
  if (!any) {
    co_return true;  // No lock was ever taken on this object.
  }
  sim::Bytes out(region);
  std::memcpy(out.data(), merged.data(), region);
  const ReplicaLayout& d = dst->replicas[static_cast<size_t>(target)];
  fabric::OpResult res = co_await worker->qp(d.node).Write(d.tsl_addr, out);
  co_return res.ok();
}

sim::Task<bool> CopySafeGuessReplica(Worker* worker, std::shared_ptr<const ObjectLayout> src,
                                     const ObjectLayout* dst, int target, bool skip_tombstones) {
  const ObjectLayout* layout = src.get();
  QuorumMax reg(worker, layout, worker->SlotCacheFor(layout));
  if (skip_tombstones) {
    // CANARY: deleted objects are not copied AT ALL — the probe must be a
    // weak read, because the strong read below write-backs the max (i.e.
    // stabilizes the tombstone at the survivors) as a side effect, which
    // would mask the injected bug.
    ReadOutcome probe = co_await reg.ReadQuorum(/*strong=*/false);
    if (probe.ok && probe.m.deleted()) {
      co_return true;
    }
  }
  ReadOutcome m = co_await reg.ReadQuorum(/*strong=*/true);
  if (!m.ok) {
    co_return false;  // No surviving quorum (or unstabilizable state) yet.
  }
  if (!m.m.empty()) {
    InOutReplica rep(worker, dst, target);
    const Meta word = Meta::Pack(m.m.counter(), m.m.tid(), m.m.verified(), 0);
    if (m.m.deleted()) {
      if (!skip_tombstones) {
        NodeMaxResult res = co_await rep.WriteVerifiedNode(word, {}, Meta());
        if (!res.ok()) {
          co_return false;
        }
      }
    } else {
      if (!m.value_ok) {
        co_return false;  // Out-of-place chase lost a race; retry the round.
      }
      NodeMaxResult res = co_await rep.WriteVerifiedNode(word, m.value, Meta());
      if (!res.ok()) {
        co_return false;
      }
    }
  }
  // Timestamp-lock state arbitrates guessed writes and must survive the slot
  // move too, or a lock majority that included the vacated slot silently
  // dissolves and both modes can acquire.
  co_return co_await CopyLocks(worker, layout, dst, target);
}

}  // namespace swarm::repair
