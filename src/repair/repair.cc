#include "src/repair/repair.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "src/swarm/abd.h"
#include "src/swarm/inout.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/timestamp.h"

namespace swarm::repair {
namespace {

// Merge rule for restoring a wiped timestamp-lock word from the survivors'
// copies: lock words only ever grow, so the higher counter wins; on a
// counter tie between modes, prefer READ — it blocks the writer's
// re-execution, i.e. the guessed write stands, which is the direction a
// reader that already committed the guess requires. (READ mode has the lower
// raw encoding at equal counters.)
uint64_t MergeTslWord(uint64_t a, uint64_t b) {
  const TslWord wa(a);
  const TslWord wb(b);
  if (wa.counter() != wb.counter()) {
    return wa.counter() > wb.counter() ? a : b;
  }
  return std::min(a, b);
}

// Restores one replica's timestamp-lock array from the surviving replicas.
// Lock state may live at a bare majority that INCLUDED the wiped node, so a
// single survivor can be the only holder — every usable replica must be
// read, not just a majority.
sim::Task<bool> RestoreLocks(Worker* worker, const ObjectLayout* layout, int target) {
  const size_t region = static_cast<size_t>(layout->tsl_region_bytes());
  const int writers = layout->max_writers;
  std::vector<uint64_t> merged(static_cast<size_t>(writers), 0);
  bool any = false;
  for (int r = 0; r < layout->num_replicas; ++r) {
    const ReplicaLayout& rep = layout->replicas[static_cast<size_t>(r)];
    if (worker->NodeQuorumExcluded(rep.node)) {
      continue;  // The node under repair itself.
    }
    std::vector<uint8_t> buf(region);
    fabric::OpResult res = co_await worker->qp(rep.node).Read(rep.tsl_addr, buf);
    if (!res.ok()) {
      co_return false;
    }
    for (int i = 0; i < writers; ++i) {
      uint64_t word;
      std::memcpy(&word, buf.data() + static_cast<size_t>(i) * 8, 8);
      merged[static_cast<size_t>(i)] = MergeTslWord(merged[static_cast<size_t>(i)], word);
      any = any || word != 0;
    }
  }
  if (!any) {
    co_return true;  // No lock was ever taken on this object.
  }
  std::vector<uint8_t> out(region);
  std::memcpy(out.data(), merged.data(), region);
  const ReplicaLayout& dst = layout->replicas[static_cast<size_t>(target)];
  fabric::OpResult res = co_await worker->qp(dst.node).Write(dst.tsl_addr, out);
  co_return res.ok();
}

// Repairs one Safe-Guess replica: ABD-style quorum read with write-back
// among the survivors (ReadQuorum(strong) re-installs the max at a majority
// before trusting it), then a direct install of the max — exact word,
// GUESSED flag and tombstones preserved — into the rejoining replica.
sim::Task<bool> RepairSafeGuessReplica(Worker* worker,
                                       std::shared_ptr<const ObjectLayout> layout_sp, int target,
                                       bool skip_tombstones) {
  const ObjectLayout* layout = layout_sp.get();
  QuorumMax reg(worker, layout, worker->SlotCacheFor(layout));
  if (skip_tombstones) {
    // CANARY: deleted objects are not repaired AT ALL — the probe must be a
    // weak read, because the strong read below write-backs the max (i.e.
    // stabilizes the tombstone at the survivors) as a side effect, which
    // would mask the injected bug.
    ReadOutcome probe = co_await reg.ReadQuorum(/*strong=*/false);
    if (probe.ok && probe.m.deleted()) {
      co_return true;
    }
  }
  ReadOutcome m = co_await reg.ReadQuorum(/*strong=*/true);
  if (!m.ok) {
    co_return false;  // No surviving quorum (or unstabilizable state) yet.
  }
  if (!m.m.empty()) {
    InOutReplica rep(worker, layout, target);
    const Meta word = Meta::Pack(m.m.counter(), m.m.tid(), m.m.verified(), 0);
    if (m.m.deleted()) {
      if (!skip_tombstones) {
        NodeMaxResult res = co_await rep.WriteVerifiedNode(word, {}, Meta());
        if (!res.ok()) {
          co_return false;
        }
      }
    } else {
      if (!m.value_ok) {
        co_return false;  // Out-of-place chase lost a race; retry the round.
      }
      NodeMaxResult res = co_await rep.WriteVerifiedNode(word, m.value, Meta());
      if (!res.ok()) {
        co_return false;
      }
    }
  }
  // Timestamp-lock state arbitrates guessed writes and must survive the
  // crash too, or a lock majority that included the wiped node silently
  // dissolves and both modes can acquire.
  co_return co_await RestoreLocks(worker, layout, target);
}

}  // namespace

sim::Task<RepairOutcome> IndexRepairSource::RepairNode(int node, Worker* worker,
                                                       const RepairConfig& config) {
  RepairOutcome out;
  out.complete = true;
  // Key-sorted snapshot of live mappings plus every retired layout, in a
  // deterministic walk order for seed replay. Mappings inserted after the
  // snapshot wrote to quorums that excluded `node`. Retired layouts matter
  // too: stale-cached clients still read them, and a rejoined replica that
  // misses its tombstone would pair with a stale survivor and resurrect the
  // deleted value.
  std::vector<std::shared_ptr<const ObjectLayout>> layouts;
  for (auto& [key, entry] : index_->SnapshotSorted()) {
    layouts.push_back(entry.layout);
  }
  // Prune first: layouts past the recycler's safe horizon can no longer be
  // referenced by any client, so repair need not re-walk them every round.
  (void)index_->GcRetired();
  for (const auto& retired : index_->retired()) {
    layouts.push_back(retired.layout);
  }
  for (const auto& layout_sp : layouts) {
    const ObjectLayout* layout = layout_sp.get();
    for (int r = 0; r < layout->num_replicas; ++r) {
      if (layout->replicas[static_cast<size_t>(r)].node != node) {
        continue;
      }
      bool ok;
      if (protocol_ == LayoutProtocol::kAbd) {
        AbdObject obj(worker, layout, worker->SlotCacheFor(layout));
        ok = co_await obj.RepairReplica(r, config.skip_tombstone_repair);
      } else {
        ok = co_await RepairSafeGuessReplica(worker, layout_sp, r,
                                             config.skip_tombstone_repair);
      }
      if (ok) {
        ++out.slots_repaired;
      } else {
        ++out.slots_failed;
        out.complete = false;
      }
    }
  }
  co_return out;
}

sim::Task<bool> RepairService::RepairRounds(int node, uint64_t* residual_failed) {
  // No registered stores means nobody can vouch for the node's (wiped)
  // contents — almost certainly a mis-wired coordinator. Treat it as an
  // aborted repair: the node stays excluded, which is safe.
  bool complete = false;
  *residual_failed = 0;
  for (int round = 0; round < config_.max_rounds && !complete && !stores_.empty(); ++round) {
    if (round > 0) {
      co_await worker_->sim()->Delay(config_.round_retry_delay);
    }
    complete = true;
    *residual_failed = 0;
    for (RepairableStore* s : stores_) {
      RepairOutcome out = co_await s->RepairNode(node, worker_, config_);
      slots_repaired_ += out.slots_repaired;
      *residual_failed += out.slots_failed;
      complete = complete && out.complete;
    }
  }
  co_return complete;
}

void RepairService::TriggerDarkRetries() {
  // Snapshot first: Spawn runs ResumeRepair eagerly until its first
  // suspension, and ResumeRepair erases its node from dark_.
  std::vector<int> nodes;
  nodes.reserve(dark_.size());
  for (const auto& [node, slots] : dark_) {
    nodes.push_back(node);
  }
  for (int node : nodes) {
    if (!resuming_[static_cast<size_t>(node)]) {
      resuming_[static_cast<size_t>(node)] = true;
      sim::Spawn(ResumeRepair(node));
    }
  }
}

sim::Task<void> RepairService::ResumeRepair(int node) {
  // The dark node is still fenced and quorum-excluded with its partially
  // repaired slots intact, so the restart step is skipped: just run the
  // round loop again (RepairNode is idempotent) now that a readmission
  // changed the survivor picture. A fresh RecoverAndRepair (chaos crashed
  // the node again) owns the lifecycle instead — it cleared dark_.
  if (dark_.count(node) == 0 || !membership_->IsRepairing(node)) {
    resuming_[static_cast<size_t>(node)] = false;
    co_return;
  }
  dark_.erase(node);
  ++in_flight_;
  ++repairs_resumed_;
  // Lifecycle guard: if the node crashes AGAIN while this resume is
  // suspended, the fresh RecoverAndRepair bumps the generation and WIPES the
  // node mid-resume — slots this resume verified may be empty again, so it
  // must not readmit on the new lifecycle's behalf.
  const uint64_t gen = lifecycle_gen_[static_cast<size_t>(node)];
  uint64_t residual = 0;
  const bool complete = co_await RepairRounds(node, &residual);
  resuming_[static_cast<size_t>(node)] = false;
  if (gen != lifecycle_gen_[static_cast<size_t>(node)]) {
    --in_flight_;
    co_return;  // A fresh lifecycle owns the node now; let it finish.
  }
  if (complete && membership_->IsRepairing(node)) {
    for (RepairableStore* s : stores_) {
      s->OnRepairComplete(node, /*readmitted=*/true);
    }
    membership_->CompleteRepair(node);
    ++repairs_completed_;
    --in_flight_;
    TriggerDarkRetries();  // This readmission may unblock other dark nodes.
    co_return;
  }
  if (membership_->IsRepairing(node)) {
    dark_[node] = residual;  // Still dark; wait for the next readmission.
  }
  --in_flight_;
}

sim::Task<bool> RepairService::RecoverAndRepair(int node) {
  ++in_flight_;
  ++lifecycle_gen_[static_cast<size_t>(node)];  // Invalidates in-flight resumes.
  dark_.erase(node);  // A fresh lifecycle supersedes any pending re-repair.
  membership_->BeginRepair(node);
  for (RepairableStore* s : stores_) {
    s->OnRepairBegin(node);
  }
  if (config_.readmit_before_repair) {
    // CANARY: the node rejoins quorums with empty replicas while the repair
    // below is still running — the bug the chaos suites must catch.
    for (RepairableStore* s : stores_) {
      s->OnRepairComplete(node, /*readmitted=*/true);
    }
    membership_->CompleteRepair(node);
  }
  uint64_t residual = 0;
  const bool complete = co_await RepairRounds(node, &residual);
  if (config_.readmit_before_repair) {
    --in_flight_;
    ++repairs_completed_;
    co_return true;  // Already (wrongly) readmitted above.
  }
  if (complete) {
    for (RepairableStore* s : stores_) {
      s->OnRepairComplete(node, /*readmitted=*/true);
    }
    membership_->CompleteRepair(node);
    ++repairs_completed_;
    --in_flight_;
    // A readmission is exactly the event that can unblock a mutually-waiting
    // repair that already gave up: retry every dark node.
    TriggerDarkRetries();
    co_return true;
  }
  for (RepairableStore* s : stores_) {
    s->OnRepairComplete(node, /*readmitted=*/false);
  }
  ++repairs_aborted_;
  dark_[node] = residual;  // Dark until some readmission triggers a retry.
  --in_flight_;
  co_return false;
}

}  // namespace swarm::repair
