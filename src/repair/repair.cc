#include "src/repair/repair.h"

#include <memory>

#include "src/repair/quorum_copy.h"
#include "src/swarm/abd.h"

namespace swarm::repair {

sim::Task<RepairOutcome> IndexRepairSource::RepairNode(int node, Worker* worker,
                                                       const RepairConfig& config) {
  RepairOutcome out;
  out.complete = true;
  // Prune first: layouts past the recycler's safe horizon can no longer be
  // referenced by any client, so repair need not re-walk them every round
  // (the GC also releases their slots, shrinking this very walk).
  (void)index_->GcRetired();
  // Walk the inverse placement map: exactly the replica slots hosted on
  // `node`, in address order (deterministic for seed replay) — O(slots on
  // the node), not O(store). The map covers live mappings AND retired
  // layouts that stale-cached clients can still reference (a rejoined
  // replica that misses its tombstone would pair with a stale survivor and
  // resurrect the deleted value). Mappings inserted after this snapshot
  // wrote to quorums that excluded `node`. The snapshot holds shared_ptrs so
  // a mid-walk GC round cannot drop a layout under the repair.
  std::vector<std::pair<std::shared_ptr<const ObjectLayout>, int>> slots;
  index_->placement().ForEachSlotOn(
      node, [&](uint64_t addr, const index::PlacementMap::Slot& slot) {
        (void)addr;
        ++out.slots_walked;
        if (slot.moved) {
          // Migrated away: the replacement layout (registered over the slots
          // it kept) is the authority now, and this vacated slot is
          // region-fenced — restoring state behind the fence would only
          // fight the migration that retired it.
          return;
        }
        slots.emplace_back(slot.owner, slot.replica);
      });
  for (const auto& [layout_sp, r] : slots) {
    const ObjectLayout* layout = layout_sp.get();
    bool ok;
    if (protocol_ == LayoutProtocol::kAbd) {
      AbdObject obj(worker, layout, worker->SlotCacheFor(layout));
      ok = co_await obj.RepairReplica(r, config.skip_tombstone_repair);
    } else {
      // Same-layout copy: harvest from the survivors, install into the
      // rejoining replica (src/repair/quorum_copy.h).
      ok = co_await CopySafeGuessReplica(worker, layout_sp, layout_sp.get(), r,
                                         config.skip_tombstone_repair);
    }
    if (ok) {
      ++out.slots_repaired;
    } else {
      ++out.slots_failed;
      out.complete = false;
    }
  }
  co_return out;
}

sim::Task<bool> RepairService::RepairRounds(int node, uint64_t* residual_failed) {
  // No registered stores means nobody can vouch for the node's (wiped)
  // contents — almost certainly a mis-wired coordinator. Treat it as an
  // aborted repair: the node stays excluded, which is safe.
  bool complete = false;
  *residual_failed = 0;
  for (int round = 0; round < config_.max_rounds && !complete && !stores_.empty(); ++round) {
    if (round > 0) {
      co_await worker_->sim()->Delay(config_.round_retry_delay);
    }
    complete = true;
    *residual_failed = 0;
    for (RepairableStore* s : stores_) {
      RepairOutcome out = co_await s->RepairNode(node, worker_, config_);
      slots_repaired_ += out.slots_repaired;
      slots_walked_ += out.slots_walked;
      *residual_failed += out.slots_failed;
      complete = complete && out.complete;
    }
  }
  co_return complete;
}

void RepairService::TriggerDarkRetries() {
  // Snapshot first: Spawn runs ResumeRepair eagerly until its first
  // suspension, and ResumeRepair erases its node from dark_.
  std::vector<int> nodes;
  nodes.reserve(dark_.size());
  for (const auto& [node, slots] : dark_) {
    nodes.push_back(node);
  }
  for (int node : nodes) {
    if (!resuming_[static_cast<size_t>(node)]) {
      resuming_[static_cast<size_t>(node)] = true;
      sim::Spawn(ResumeRepair(node));
    }
  }
}

sim::Task<void> RepairService::ResumeRepair(int node) {
  EnsureTracked(node);
  // The dark node is still fenced and quorum-excluded with its partially
  // repaired slots intact, so the restart step is skipped: just run the
  // round loop again (RepairNode is idempotent) now that a readmission
  // changed the survivor picture. A fresh RecoverAndRepair (chaos crashed
  // the node again) owns the lifecycle instead — it cleared dark_.
  if (dark_.count(node) == 0 || !membership_->IsRepairing(node)) {
    resuming_[static_cast<size_t>(node)] = false;
    co_return;
  }
  dark_.erase(node);
  ++in_flight_;
  ++repairs_resumed_;
  // Lifecycle guard: if the node crashes AGAIN while this resume is
  // suspended, the fresh RecoverAndRepair bumps the generation and WIPES the
  // node mid-resume — slots this resume verified may be empty again, so it
  // must not readmit on the new lifecycle's behalf.
  const uint64_t gen = lifecycle_gen_[static_cast<size_t>(node)];
  uint64_t residual = 0;
  const bool complete = co_await RepairRounds(node, &residual);
  resuming_[static_cast<size_t>(node)] = false;
  if (gen != lifecycle_gen_[static_cast<size_t>(node)]) {
    --in_flight_;
    co_return;  // A fresh lifecycle owns the node now; let it finish.
  }
  if (complete && membership_->IsRepairing(node)) {
    for (RepairableStore* s : stores_) {
      s->OnRepairComplete(node, /*readmitted=*/true);
    }
    membership_->CompleteRepair(node);
    ++repairs_completed_;
    --in_flight_;
    TriggerDarkRetries();  // This readmission may unblock other dark nodes.
    co_return;
  }
  if (membership_->IsRepairing(node)) {
    dark_[node] = residual;  // Still dark; wait for the next readmission.
  }
  --in_flight_;
}

sim::Task<bool> RepairService::RecoverAndRepair(int node) {
  EnsureTracked(node);
  ++in_flight_;
  ++lifecycle_gen_[static_cast<size_t>(node)];  // Invalidates in-flight resumes.
  dark_.erase(node);  // A fresh lifecycle supersedes any pending re-repair.
  membership_->BeginRepair(node);
  for (RepairableStore* s : stores_) {
    s->OnRepairBegin(node);
  }
  if (config_.readmit_before_repair) {
    // CANARY: the node rejoins quorums with empty replicas while the repair
    // below is still running — the bug the chaos suites must catch.
    for (RepairableStore* s : stores_) {
      s->OnRepairComplete(node, /*readmitted=*/true);
    }
    membership_->CompleteRepair(node);
  }
  uint64_t residual = 0;
  const bool complete = co_await RepairRounds(node, &residual);
  if (config_.readmit_before_repair) {
    --in_flight_;
    ++repairs_completed_;
    co_return true;  // Already (wrongly) readmitted above.
  }
  if (complete) {
    for (RepairableStore* s : stores_) {
      s->OnRepairComplete(node, /*readmitted=*/true);
    }
    membership_->CompleteRepair(node);
    ++repairs_completed_;
    --in_flight_;
    // A readmission is exactly the event that can unblock a mutually-waiting
    // repair that already gave up: retry every dark node.
    TriggerDarkRetries();
    co_return true;
  }
  for (RepairableStore* s : stores_) {
    s->OnRepairComplete(node, /*readmitted=*/false);
  }
  ++repairs_aborted_;
  dark_[node] = residual;  // Dark until some readmission triggers a retry.
  --in_flight_;
  co_return false;
}

}  // namespace swarm::repair
