// Elastic membership: live extent migration for node admission, drain, and
// decommission — under full traffic.
//
// Crash repair (repair.h) rebuilds a replica IN PLACE after a node loses its
// DRAM. Migration MOVES a replica somewhere else while every client keeps
// operating: admit a brand-new memory node and rebalance keys onto it, or
// drain every replica off a node so it can be decommissioned. Both directions
// are the same per-key primitive run in bulk:
//
//   plan  — look the key up, find the replica slot hosted by the source
//           node, pick a destination (serving, not under repair, not already
//           hosting a replica of this object),
//   graft — build a replacement layout L': a copy of the live layout L with
//           the vacated slot's buffers swapped for fresh allocations on the
//           destination. Every OTHER slot's buffers are SHARED between L and
//           L' — only one replica moves per flip,
//   fence — retire the vacated slot's regions on the source node
//           (MemoryNode::RetireRegion). From here no stale-cached client can
//           commit at the old slot: its verbs bounce with kMovedReplica (a
//           no-effect NACK) and the client re-resolves through the index.
//           Then bump the membership epoch (NoteOwnershipFlip) so fenced
//           QP holders re-learn membership promptly,
//   copy  — harvest the object's authoritative state from L's surviving
//           quorum (the coordinator rides the repair channel, which passes
//           the fence) and install it into L''s new slot — the shared
//           quorum-copy core of crash repair (quorum_copy.h / AbdObject::
//           CopyReplicaTo),
//   flip  — IndexService::ReplaceLayout(key, G, L'): atomically swap the
//           mapping iff the generation is still G. The old layout retires as
//           MOVED (repair skips it; caches are invalidated through the
//           retired-layout GC listeners). Failure of the guard — a racing
//           delete or re-insert — aborts the migration,
//   abort — restore the fences (RestoreRegion) and abandon L'. The cluster
//           is left EXACTLY as before the attempt: same layout, same
//           generation, old slot serving again.
//
// Why fencing one slot is enough: clients on stale L can still commit via
// the (num_replicas - 1) shared slots, so traffic is never stalled during
// the copy. Any majority of L that excludes the fenced slot is a subset of
// the shared slots, and every majority of L' contains at least one shared
// slot — so all pre-flip and post-flip quorums intersect, which is all the
// protocols ever needed.
//
// Arbitration with crash repair: a source or destination under repair is
// simply not migrated from / onto (the key is skipped this pass; bulk flows
// revisit it next round). A node crash DURING a copy fails the harvest or
// the install, and the bounded round budget turns that into a graceful
// abort. The reverse — repair walking a layout whose slot a migration just
// fenced — is benign: before the flip the layout is live and repair may
// rewrite the vacated slot through the repair channel (harmless: the fence
// keeps clients out), after the flip the layout is retired as moved and the
// repair walk skips it.

#ifndef SWARM_SRC_REPAIR_MIGRATION_H_
#define SWARM_SRC_REPAIR_MIGRATION_H_

#include <cstdint>

#include "src/index/index_service.h"
#include "src/membership/membership.h"
#include "src/repair/repair.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/swarm/worker.h"

namespace swarm::repair {

struct MigrationConfig {
  // Copy attempts per key before the migration aborts (fences restored).
  int max_rounds = 10;
  sim::Time round_retry_delay = 30 * sim::kMicrosecond;

  // CANARY: flip ownership WITHOUT fencing the vacated slot — stale-cached
  // clients keep committing at the old replica after the flip, and the two
  // layouts' quorums no longer intersect. The linearizability checker must
  // catch this (tests/chaos_replay_test.cc).
  bool disable_flip_fence = false;
};

// Per-key outcome of one migration attempt.
enum class [[nodiscard]] MigrateStatus : uint8_t {
  kMoved,          // Copied, flipped; the old slot is fenced for good.
  kSkipped,        // Key unmapped, not hosted by the source, or source busy
                   // (under repair) — nothing was changed.
  kNoDestination,  // No serving, non-repairing node outside the layout.
  kAborted,        // Copy gave up or the flip guard failed; fences restored,
                   // cluster exactly as before.
};

// The migration coordinator. Like RepairService it owns a dedicated Worker
// whose repair-excluded set is the membership's `repairing` vector and whose
// verbs ride the repair channel (they must pass both the rejoin fence and
// the region fence this service itself plants).
class MigrationService {
 public:
  MigrationService(membership::MembershipService* membership, index::IndexService* index,
                   Worker* worker, LayoutProtocol protocol, MigrationConfig config = {})
      : membership_(membership), index_(index), worker_(worker), protocol_(protocol),
        config_(config) {
    worker_->set_repair_excluded(membership_->repairing());
    worker_->MarkRepairChannel();
  }

  // Moves the key's replica off `from`. `onto` >= 0 pins the destination
  // (admission fills a node that is not serving yet); -1 picks one
  // deterministically from the serving set.
  sim::Task<MigrateStatus> MigrateKey(uint64_t key, int from, int onto = -1);

  // Extent-granularity move: migrates every key with a live replica slot in
  // the slab extent containing `addr` on `from` (the inverse placement map
  // lists them as one contiguous address range). Per-slot flip fences
  // coalesce in the node's retired map into a single interval covering the
  // vacated range. Returns the number of keys moved.
  sim::Task<uint64_t> MigrateExtent(int from, uint64_t addr, int onto = -1);

  // Node admission: adds a fresh node to the fabric + membership (kJoining,
  // excluded from new placements), migrates up to `max_keys` keys onto it,
  // then marks it serving. Returns the new node id.
  sim::Task<int> AdmitAndRebalance(uint64_t max_keys);

  // Drain: marks the node draining (new placements skip it), then migrates
  // every replica it hosts elsewhere. On success the node is retired when
  // `decommission` is set, else left drained-but-present. If any key cannot
  // be moved within the round budget the drain aborts gracefully: the node
  // returns to serving and keeps its remaining replicas (the keys already
  // moved stay moved — each flip was individually complete).
  sim::Task<bool> Drain(int node, bool decommission);

  // True while any migration is running — recycler safe-horizon gate: the
  // harvest chases out-of-place pointers exactly like a reader
  // (Recycler::set_repair_gate composes this with RepairService::InFlight).
  bool InFlight() const { return in_flight_ > 0; }

  uint64_t keys_moved() const { return keys_moved_; }
  uint64_t keys_skipped() const { return keys_skipped_; }
  uint64_t keys_aborted() const { return keys_aborted_; }
  uint64_t drains_completed() const { return drains_completed_; }
  uint64_t drains_aborted() const { return drains_aborted_; }
  uint64_t nodes_admitted() const { return nodes_admitted_; }
  uint64_t extents_moved() const { return extents_moved_; }

  const MigrationConfig& config() const { return config_; }

 private:
  // Destination-pick stack buffer bound (mirrors PlacementProbe::kMaxNodes).
  static constexpr size_t kMaxNodes = 256;

  // Deterministic destination pick: serving, not repairing, not already in
  // the layout. -1 when no node qualifies.
  int PickDestination(uint64_t key, const ObjectLayout* layout) const;

  // True when any live mapping still places a replica on `node`.
  bool HostsReplicas(int node) const;

  membership::MembershipService* membership_;
  index::IndexService* index_;
  Worker* worker_;
  LayoutProtocol protocol_;
  MigrationConfig config_;
  int in_flight_ = 0;
  uint64_t keys_moved_ = 0;
  uint64_t keys_skipped_ = 0;
  uint64_t keys_aborted_ = 0;
  uint64_t drains_completed_ = 0;
  uint64_t drains_aborted_ = 0;
  uint64_t nodes_admitted_ = 0;
  uint64_t extents_moved_ = 0;
};

}  // namespace swarm::repair

#endif  // SWARM_SRC_REPAIR_MIGRATION_H_
