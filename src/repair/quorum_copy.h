// Quorum-sourced replica copy: the shared core of crash-repair and live
// migration.
//
// Both flows do the same thing — read an object's authoritative state from a
// surviving quorum and install it, exact words preserved, into ONE replica
// slot — and differ only in where that slot lives. Crash repair rebuilds a
// wiped replica of the SAME layout (the rejoining node is quorum-excluded,
// so the harvest can never read it). Migration installs into a replica of a
// REPLACEMENT layout on a different node while the source layout keeps
// serving; there the source replica being vacated is region-fenced, and the
// harvest runs over the repair channel, which passes both fences.
//
// The copy moves three kinds of state, all of which must survive the slot
// move or crash:
//   * the metadata word — tombstones verbatim (deleted objects must not
//     resurrect), GUESSED flags preserved (an unarbitrated write stays
//     unarbitrated),
//   * the value bytes (in-place and/or a fresh out-of-place buffer on the
//     destination, per the destination layout),
//   * the timestamp-lock array — a lock majority that included the vacated
//     slot must not silently dissolve, so every readable source replica is
//     merged, not just a majority.

#ifndef SWARM_SRC_REPAIR_QUORUM_COPY_H_
#define SWARM_SRC_REPAIR_QUORUM_COPY_H_

#include <cstdint>
#include <memory>

#include "src/sim/task.h"
#include "src/swarm/layout.h"
#include "src/swarm/worker.h"

namespace swarm::repair {

// Merge rule for restoring a timestamp-lock word from several copies: lock
// words only ever grow, so the higher counter wins; on a counter tie between
// modes, prefer READ — it blocks the writer's re-execution, i.e. the guessed
// write stands, which is the direction a reader that already committed the
// guess requires. (READ mode has the lower raw encoding at equal counters.)
uint64_t MergeTslWord(uint64_t a, uint64_t b);

// Reads the timestamp-lock arrays from every readable replica of `src`,
// merges them word-wise, and installs the merged array into `dst`'s replica
// `target`. Quorum-excluded source nodes are skipped (crash repair's wiped
// node); any OTHER unreadable source replica fails the copy — lock state may
// live at a single survivor.
sim::Task<bool> CopyLocks(Worker* worker, const ObjectLayout* src, const ObjectLayout* dst,
                          int target);

// Harvests the authoritative Safe-Guess state from `src`'s surviving quorum
// (ABD-style strong read: the max is write-back-stabilized at the survivors
// before it is trusted) and installs it — exact metadata word, value bytes,
// and merged lock state — into `dst`'s replica `target`. Pass dst == src for
// crash repair; a distinct layout for migration. `skip_tombstones` is the
// repair canary knob (RepairConfig::skip_tombstone_repair).
sim::Task<bool> CopySafeGuessReplica(Worker* worker, std::shared_ptr<const ObjectLayout> src,
                                     const ObjectLayout* dst, int target, bool skip_tombstones);

}  // namespace swarm::repair

#endif  // SWARM_SRC_REPAIR_QUORUM_COPY_H_
