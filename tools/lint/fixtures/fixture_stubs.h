// Shared declaration scaffolding for the lint fixtures. The fixtures are
// LINT inputs, not build inputs — this header keeps them reading like real
// tree code (same type names, same call shapes) without pulling in the
// real headers. The checker never resolves includes; it sees each fixture
// file on its own.

#ifndef SWARM_TOOLS_LINT_FIXTURES_FIXTURE_STUBS_H_
#define SWARM_TOOLS_LINT_FIXTURES_FIXTURE_STUBS_H_

#include <cstdint>

#define SWARM_HOT_PATH [[clang::annotate("swarm::hot_path")]]

namespace swarm::fixture {

enum class Status : uint8_t { kOk, kNodeFailed, kStaleEpoch, kMovedReplica };
enum class KvStatus : uint8_t { kOk, kNotFound, kUnavailable };

struct OpResult {
  Status status = Status::kOk;
  uint64_t old_value = 0;
  bool ok() const { return status == Status::kOk; }
};

struct KvResult {
  KvStatus status = KvStatus::kUnavailable;
};

namespace sim {
template <typename T>
struct Task {};
}  // namespace sim

struct Span {};

struct Qp {
  sim::Task<OpResult> Read(uint64_t addr, Span out);
  sim::Task<OpResult> Write(uint64_t addr, Span data);
  sim::Task<OpResult> Cas(uint64_t addr, uint64_t expected, uint64_t desired);
};

struct Worker {
  sim::Task<void> RefreshEpoch();
};

template <typename T>
void DiscardStatus(T&&) {}

KvResult Classify(OpResult r);

}  // namespace swarm::fixture

#endif  // SWARM_TOOLS_LINT_FIXTURES_FIXTURE_STUBS_H_
