// MUST-TRIP fixture for swarm-hot-path-alloc.
//
// Reconstructs the PR-7 bug class: heap allocations creeping onto the
// steady-state verb path (per-op std::function callbacks, result vectors,
// shared-state blocks) — guarded at runtime by tests/zero_alloc_test.cc,
// and here at lint time for paths the harness never executes. The tagged
// function and everything it reaches in this file must stay on the pool.

#include <functional>
#include <memory>
#include <vector>

#include "fixture_stubs.h"

namespace swarm::fixture {

struct Completion {
  std::function<void()> cb;  // Fine here: this struct is not hot-tagged...
};

static void RecordCompletion(std::vector<int>* log, int node) {
  // ...but this helper is REACHED from the hot-tagged function below, so
  // its allocations count against the hot path.
  log->push_back(node);
  auto scratch = std::make_unique<int[]>(64);  // trip: reached allocation
  (void)scratch;
}

SWARM_HOT_PATH void SubmitVerb(std::vector<int>* log, int node) {
  auto* state = new Completion();     // trip: raw `new` on the hot path
  std::function<void()> on_complete;  // trip: std::function local allocates
  on_complete = [node] {};
  std::vector<int> pending;           // trip: allocating container local
  pending.push_back(node);
  RecordCompletion(log, node);        // trip: transitive, via RecordCompletion
  delete state;
}

}  // namespace swarm::fixture
