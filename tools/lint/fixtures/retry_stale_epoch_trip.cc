// MUST-TRIP fixture for swarm-retry-stale-epoch.
//
// The PR-5 §5.4 invariant: a verb rejected with kStaleEpoch had NO effect
// and its completion carries NO information about object state — the
// client must re-validate its membership epoch and retry. A retry loop
// that reasons about completion statuses but lacks the kStaleEpoch arm
// (this fixture treats every non-kOk status as a node failure) converts a
// membership transition into false evidence of failure.

#include "fixture_stubs.h"

namespace swarm::fixture {

sim::Task<bool> WriteWithRetries(Qp& qp, uint64_t addr, Span data) {
  for (int round = 0; round < 8; ++round) {
    auto r = co_await qp.Write(addr, data);  // trip: loop has no kStaleEpoch arm
    if (r.status == Status::kOk) {
      co_return true;
    }
    if (r.status == Status::kNodeFailed) {
      continue;  // Treats EVERY rejection as a failed node — including a
                 // stale-epoch fence, which says nothing about the node.
    }
  }
  co_return false;
}

}  // namespace swarm::fixture
