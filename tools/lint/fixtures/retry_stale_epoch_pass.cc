// MUST-PASS fixture for swarm-retry-stale-epoch: the same retry loop with
// the §5.4 arm — kStaleEpoch refreshes the client's membership epoch and
// retries, never counting against the failure budget — plus the
// centralized-handler variant (the arm lives in a same-file helper the
// loop calls, the FUSEE idiom).

#include "fixture_stubs.h"

namespace swarm::fixture {

sim::Task<bool> WriteWithRetriesFenced(Worker& worker, Qp& qp, uint64_t addr,
                                       Span data) {
  for (int round = 0; round < 8; ++round) {
    auto r = co_await qp.Write(addr, data);
    if (r.status == Status::kOk) {
      co_return true;
    }
    if (r.status == Status::kStaleEpoch) {
      co_await worker.RefreshEpoch();  // §5.4: re-validate, re-arm, retry.
      --round;                         // Fences don't burn failure budget.
      continue;
    }
    if (r.status == Status::kNodeFailed) {
      continue;
    }
  }
  co_return false;
}

sim::Task<void> HandleVerbFailure(Worker& worker, Status status) {
  if (status == Status::kStaleEpoch) {
    co_await worker.RefreshEpoch();
  }
}

sim::Task<bool> WriteWithCentralHandler(Worker& worker, Qp& qp, uint64_t addr,
                                        Span data) {
  for (int round = 0; round < 8; ++round) {
    auto r = co_await qp.Write(addr, data);
    if (r.status == Status::kOk) {
      co_return true;
    }
    co_await HandleVerbFailure(worker, r.status);
  }
  co_return false;
}

}  // namespace swarm::fixture
