// MUST-PASS fixture for swarm-unchecked-commit-critical: the same Remove
// shape with every commit-critical completion either branched on, retried,
// delegated, or routed through the named DiscardStatus() escape hatch.

#include "fixture_stubs.h"

namespace swarm::fixture {

sim::Task<KvResult> RemoveKeyChecked(Qp& qp, uint64_t primary_slot,
                                     uint64_t backup_slot, uint64_t old_word) {
  auto primary = co_await qp.Cas(primary_slot, old_word, 0);
  if (!primary.ok()) {
    co_return KvResult{KvStatus::kUnavailable};
  }

  // The PR-6 fix shape: the backup clear is commit-critical and retried
  // until it definitively succeeded or the op reports unavailability.
  for (int round = 0; round < 8; ++round) {
    auto backup = co_await qp.Cas(backup_slot, old_word, 0);
    if (backup.status == Status::kStaleEpoch) {
      continue;  // Fixture-scale stand-in for RefreshEpoch-and-retry.
    }
    if (backup.ok() || backup.old_value != old_word) {
      co_return KvResult{KvStatus::kOk};
    }
  }
  co_return KvResult{KvStatus::kUnavailable};
}

sim::Task<void> IntentionalDrop(Qp& qp, uint64_t addr) {
  // A best-effort prefetch hint: failure is tolerated by design, and the
  // named hatch makes the drop grep-able and justified.
  DiscardStatus(co_await qp.Read(addr, {}));
}

sim::Task<KvResult> DelegatedResult(Qp& qp, uint64_t addr, uint64_t expect) {
  // Returning the awaited result hands the decision to the caller.
  co_return Classify(co_await qp.Cas(addr, expect, 0));
}

}  // namespace swarm::fixture
