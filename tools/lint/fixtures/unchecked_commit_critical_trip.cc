// MUST-TRIP fixture for swarm-unchecked-commit-critical.
//
// Reconstructs the PR-6 seed-12115 bug: FUSEE Remove's backup index-slot
// clear was fire-and-forget — a dropped CAS completion left the backup slot
// pointing at the removed value's still-byte-valid block, which a later
// failover resurrected. The clear is commit-critical; its status must be
// branched on (and retried) like WriteInternal phase 3.
//
// Fixtures are lint inputs, not build inputs: they carry just enough
// declaration scaffolding to read naturally.

#include "fixture_stubs.h"

namespace swarm::fixture {

sim::Task<KvResult> RemoveKey(Qp& qp, uint64_t primary_slot, uint64_t backup_slot,
                              uint64_t old_word) {
  // Phase 3a: clear the primary slot, checked.
  auto primary = co_await qp.Cas(primary_slot, old_word, 0);
  if (!primary.ok()) {
    co_return KvResult{KvStatus::kUnavailable};
  }

  // Phase 3b: THE BUG — the backup-slot clear's completion is dropped on
  // the floor. A dropped response leaves the backup pointing at the dead
  // block; the next failover serves the removed value.
  co_await qp.Cas(backup_slot, old_word, 0);  // trip: fire-and-forget

  co_return KvResult{KvStatus::kOk};
}

sim::Task<void> EvadedDrop(Qp& qp, uint64_t addr, uint64_t expect) {
  // (void)-casting a commit-critical result evades the [[nodiscard]]
  // contract without leaving a grep-able DiscardStatus marker.
  (void)co_await qp.Cas(addr, expect, 0);  // trip: (void)-cast evasion
}

sim::Task<void> AssignedNeverExamined(Qp& qp, uint64_t addr, uint64_t expect) {
  // Captured but never read again: morally identical to the bare drop.
  auto r = co_await qp.Cas(addr, expect, 0);  // trip: never examined
  co_return;
}

}  // namespace swarm::fixture
