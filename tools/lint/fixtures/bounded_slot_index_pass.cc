// MUST-PASS fixture for swarm-bounded-slot-index: the same slot-address
// arithmetic dominated by a bound check (the PR-9 fix shape:
// ProtocolConfig::enforce_writer_bounds' fail-fast guard), plus the
// assert and named-guard variants.

#include <cassert>

#include "fixture_stubs.h"

namespace swarm::fixture {

inline constexpr uint32_t kMaxWriters = 8;

void AbortRun();
void CheckWriterBound(uint32_t tid, uint32_t max_writers);

sim::Task<OpResult> LockSlotCasGuarded(Qp& qp, uint64_t tsl_addr, uint32_t tid,
                                       uint64_t expected, uint64_t desired) {
  // The fail-fast guard dominates the arithmetic: an out-of-range tid can
  // never reach the address computation.
  if (tid >= kMaxWriters) {
    AbortRun();
  }
  uint64_t lock_addr = tsl_addr + tid * 8;
  co_return co_await qp.Cas(lock_addr, expected, desired);
}

sim::Task<OpResult> ReplicaWordReadAsserted(Qp& qp, uint64_t base_addr,
                                            uint32_t slot, Span out) {
  assert(slot < kMaxWriters);
  co_return co_await qp.Read(base_addr + slot * 64, out);
}

sim::Task<OpResult> LockSlotCasNamedGuard(Qp& qp, uint64_t tsl_addr, uint32_t tid,
                                          uint64_t expected, uint64_t desired) {
  CheckWriterBound(tid, kMaxWriters);
  uint64_t lock_addr = tsl_addr + tid * 8;
  co_return co_await qp.Cas(lock_addr, expected, desired);
}

}  // namespace swarm::fixture
