// MUST-PASS fixture for swarm-hot-path-alloc: the same submit shape kept
// pool-backed (the PR-7 idiom — FramePool slabs, PoolVec containers,
// allocate_shared with a PoolAlloc), plus an UNTAGGED function that may
// allocate freely.

#include <memory>
#include <vector>

#include "fixture_stubs.h"

namespace swarm::fixture {

struct FramePool {
  static void* Alloc(unsigned long n);
  static void Free(void* p, unsigned long n);
};

template <typename T>
struct PoolAlloc {
  using value_type = T;
  T* allocate(unsigned long n);
  void deallocate(T* p, unsigned long n);
};

template <typename T>
struct PoolVec {
  void push_back(const T&);
};

struct PooledCompletion {
  static void* operator new(unsigned long n) { return FramePool::Alloc(n); }
  static void operator delete(void* p, unsigned long n) { FramePool::Free(p, n); }
};

SWARM_HOT_PATH void SubmitVerbPooled(PoolVec<int>* log, int node) {
  // Pool-routed state block: operator new resolves to FramePool::Alloc.
  auto* state = new (FramePool::Alloc(sizeof(PooledCompletion))) PooledCompletion();
  PoolVec<int> pending;  // Pool-backed container: free-list pops when warm.
  pending.push_back(node);
  log->push_back(node);
  auto shared = std::allocate_shared<int>(PoolAlloc<int>{});  // Pooled idiom.
  (void)shared;
  (void)state;
}

void ColdPathSetup(std::vector<int>* out) {
  // Untagged: setup/recovery code allocates freely.
  out->push_back(1);
  auto big = std::make_unique<int[]>(1024);
  (void)big;
}

}  // namespace swarm::fixture
