// MUST-TRIP fixture for swarm-bounded-slot-index.
//
// Reconstructs the PR-9 seed-47000 bug verbatim in shape: timestamp-lock
// slot addressing `tsl_addr + tid * 8` with no dominating bound check on
// `tid`. With a 10-writer storm against a max_writers=8 slab, tids 8..9
// computed lock words PAST the slab slot and CAS'd the neighboring
// object's memory — writes reported kOk that never took effect.

#include "fixture_stubs.h"

namespace swarm::fixture {

sim::Task<OpResult> LockSlotCas(Qp& qp, uint64_t tsl_addr, uint32_t tid,
                                uint64_t expected, uint64_t desired) {
  // trip: `tid` reaches address arithmetic unbounded — nothing between
  // function entry and this expression compares it to the slab's writer
  // count.
  uint64_t lock_addr = tsl_addr + tid * 8;
  co_return co_await qp.Cas(lock_addr, expected, desired);
}

sim::Task<OpResult> ReplicaWordRead(Qp& qp, uint64_t base_addr, uint32_t slot,
                                    Span out) {
  // trip: same shape through a direct verb argument.
  co_return co_await qp.Read(base_addr + slot * 64, out);
}

}  // namespace swarm::fixture
