#!/usr/bin/env python3
"""Regression tests for the lint suite itself: every custom check must trip
on its must-trip fixture and stay silent on its must-pass fixture, so a
check that goes blind (or starts spraying false positives) fails ctest.

Registered as the `lint_fixtures` ctest entry (see CMakeLists.txt); also
run by scripts/run_lint.sh.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_protocol_invariants as lint  # noqa: E402

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

# check name -> (fixture stem, minimum findings the trip file must produce).
# The minimums pin each check's distinct detections: e.g. the
# unchecked-commit-critical trip file carries the fire-and-forget drop, the
# (void)-cast evasion, and the assigned-never-examined variant.
CASES = {
    "swarm-unchecked-commit-critical": ("unchecked_commit_critical", 3),
    "swarm-hot-path-alloc": ("hot_path_alloc", 4),
    "swarm-bounded-slot-index": ("bounded_slot_index", 2),
    "swarm-retry-stale-epoch": ("retry_stale_epoch", 1),
}


def run_check(check, path):
    return lint.lint_file(path, {check})


def main():
    failures = []
    for check, (stem, min_trips) in sorted(CASES.items()):
        trip = os.path.join(FIXTURE_DIR, f"{stem}_trip.cc")
        passing = os.path.join(FIXTURE_DIR, f"{stem}_pass.cc")
        for p in (trip, passing):
            if not os.path.exists(p):
                failures.append(f"{check}: missing fixture {p}")
        if failures:
            continue

        tripped = run_check(check, trip)
        if len(tripped) < min_trips:
            failures.append(
                f"{check}: must-trip fixture produced {len(tripped)} finding(s), "
                f"expected >= {min_trips} — the check has gone (partially) blind:\n"
                + "".join(f"    {p}:{l}: {m}\n" for p, l, _c, m in tripped))
        if any(c != check for _p, _l, c, _m in tripped):
            failures.append(f"{check}: trip run produced findings of another check")

        clean = run_check(check, passing)
        if clean:
            failures.append(
                f"{check}: must-pass fixture produced {len(clean)} finding(s) "
                "— the check has started false-positive spraying:\n"
                + "".join(f"    {p}:{l}: {m}\n" for p, l, _c, m in clean))

    # The suppression machinery is load-bearing (it is how justified
    # exceptions in the real tree stay silent) — pin it too.
    nolint_src = (
        "void F(Qp& qp) {\n"
        "  // NOLINTNEXTLINE(swarm-unchecked-commit-critical) justified: fixture\n"
        "  co_await qp.Cas(1, 2, 3);\n"
        "}\n"
    )
    toks, suppressed = lint.tokenize(nolint_src)
    if 3 not in suppressed or "swarm-unchecked-commit-critical" not in suppressed[3]:
        failures.append("NOLINTNEXTLINE suppression parsing broke")

    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint self-test: {len(CASES)} checks x (trip+pass) fixtures OK, "
          "suppression OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
