#!/usr/bin/env python3
"""Repo-specific protocol-invariant static analysis for the swarm tree.

Four passes, each encoding a bug CLASS the chaos engine caught dynamically,
so the class is rejected at lint time instead of seed-replay time:

  swarm-unchecked-commit-critical
      A fabric-verb / commit-critical result must reach a branch, a caller,
      or the explicit swarm::DiscardStatus() escape hatch. Motivated by
      FUSEE's fire-and-forget backup index-slot clear (PR 6, seed 12115)
      and the swallowed phase-3 statuses (PR 2). `(void)`-casts of verb
      results are flagged as evasion: the named hatch is the only sink.

  swarm-hot-path-alloc
      Functions tagged SWARM_HOT_PATH ([[clang::annotate("swarm::hot_path")]],
      src/util/annotations.h) must not reach raw `new`, `std::function`,
      `std::make_unique/make_shared`, or allocating std:: containers —
      transitively through same-file callees. Static complement of
      tests/zero_alloc_test.cc (PR 7's allocation purge).

  swarm-bounded-slot-index
      Address arithmetic of the `base + tid * width` shape feeding a verb
      or an address variable must be dominated by a bound check on the
      index operand. Motivated by the tid-past-the-slab out-of-bounds CAS
      (PR 9, seed 47000: `tsl_addr + tid * 8` with tid 8..9 against an
      8-writer slab, CASing the neighboring object's words).

  swarm-retry-stale-epoch
      A retry loop around fabric verbs that branches on completion status
      must have a kStaleEpoch arm (or reach RefreshEpoch through a
      same-file callee). Motivated by PR 5's §5.4 epoch fencing: a loop
      that treats kStaleEpoch like a node failure turns a membership
      transition into evidence about object state.

Frontend note: this was designed for libclang (clang.cindex); the build
image ships neither the libclang C API nor the Python bindings, and the
tree's no-new-deps rule forbids installing them, so the tool carries a
self-contained C++ tokenizer + function extractor instead. If clang.cindex
is importable it is reported by --version (and is the natural slot-in
replacement for Tokenizer/extract_functions); nothing else changes.

Suppression: standard `// NOLINT(check-name)` on the offending line or
`// NOLINTNEXTLINE(check-name)` on the line above. Every suppression
should carry a justification comment, like DiscardStatus call sites.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

CHECKS = (
    "swarm-unchecked-commit-critical",
    "swarm-hot-path-alloc",
    "swarm-bounded-slot-index",
    "swarm-retry-stale-epoch",
)

# Callee names whose results are commit-critical: the one-sided verbs, the
# doorbell-batch posting helpers, and the quorum wrappers protocols commit
# through. A co_await of any of these must not drop its result.
COMMIT_CRITICAL_CALLEES = {
    "Read", "Write", "Cas", "WriteThenCas",
    "PostMany", "PostBoth", "PostQuorum",
    "WriteAndRead", "WriteVerified", "ReadQuorum",
    "ReplaceLayout", "RemoveIfGeneration", "InsertIfAbsent",
}

# Verb-ish callees for the retry-loop pass (broader: anything that completes
# with a fabric Status belongs here).
VERB_CALLEES = COMMIT_CRITICAL_CALLEES | {"WriteMax", "WriteMaxFor", "TryLock"}

# Tokens that allocate, for the hot-path pass...
ALLOCATING_TYPES = {
    "vector", "string", "map", "unordered_map", "set", "unordered_set",
    "deque", "list", "function",
}
ALLOCATING_CALLS = {"make_unique", "make_shared"}
# ...and the pool-backed identifiers that are exempt (FramePool-routed).
POOL_ALLOWLIST = {"PoolVec", "PoolAlloc", "FramePool", "OopPool", "PoolString"}

TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<string>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)"|"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
    | (?P<pp>\#[^\n]*)
    | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.xXeEpPuUlLfF]*))
    | (?P<punct><<=|>>=|<=>|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|[{}()\[\];,<>=+\-*/%!&|^~?:.])
    """,
    re.VERBOSE | re.DOTALL,
)

NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?\(([^)]*)\)")


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


def tokenize(source):
    """Returns (tokens, suppressions) where suppressions maps line -> set of
    check names (or {"*"}) suppressed on that line."""
    toks = []
    suppressed = {}
    for m in TOKEN_RE.finditer(source):
        line = source.count("\n", 0, m.start()) + 1
        if m.lastgroup == "delim":
            continue
        if m.group("comment"):
            for nm in NOLINT_RE.finditer(m.group("comment")):
                target = line + 1 if nm.group(1) else line
                names = {n.strip() for n in nm.group(2).split(",") if n.strip()}
                suppressed.setdefault(target, set()).update(names or {"*"})
            continue
        if m.group("pp"):
            continue
        kind = m.lastgroup
        toks.append(Tok(kind, m.group(), line))
    return toks, suppressed


class Function:
    """One function definition: name, signature attributes, body tokens."""

    __slots__ = ("name", "line", "body", "hot_path", "qualname")

    def __init__(self, name, qualname, line, body, hot_path):
        self.name = name
        self.qualname = qualname
        self.line = line
        self.body = body  # list of Tok inside the outermost braces
        self.hot_path = hot_path


def _matching(toks, i, open_t, close_t):
    """Index just past the token matching toks[i] (which must be open_t)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def extract_functions(toks):
    """Finds function definitions: `name ( ... ) [quals] {`. Tracks the
    SWARM_HOT_PATH / clang::annotate("swarm::hot_path") attribute within the
    16 tokens preceding the name. Good enough for this tree's idiom; bodies
    of lambdas nest inside their enclosing function's body and are scanned
    with it."""
    funcs = []
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and i + 1 < n and toks[i + 1].text == "(":
            close = _matching(toks, i + 1, "(", ")")
            # Skip trailing qualifiers between ')' and '{'.
            j = close
            while j < n and (
                toks[j].kind == "id"
                and toks[j].text in (
                    "const", "noexcept", "override", "final", "mutable",
                )
                or toks[j].text == "->"
                or (j > close and toks[j - 1].text == "->")
            ):
                # Swallow a trailing-return-type's tokens conservatively.
                if toks[j].text == "->":
                    j += 1
                    while j < n and toks[j].text not in ("{", ";"):
                        j += 1
                    break
                j += 1
            if j < n and toks[j].text == "{":
                # Reject control-flow keywords masquerading as names.
                if t.text in ("if", "for", "while", "switch", "return",
                              "co_return", "co_await", "sizeof", "catch",
                              "new", "delete", "do", "else"):
                    i += 1
                    continue
                body_end = _matching(toks, j, "{", "}")
                hot = False
                qual = t.text
                back = i - 1
                hops = 0
                while back >= 0 and hops < 24:
                    bt = toks[back]
                    if bt.text in (";", "}", "{"):
                        break
                    if bt.kind == "id" and bt.text == "SWARM_HOT_PATH":
                        hot = True
                    if bt.kind == "string" and "swarm::hot_path" in bt.text:
                        hot = True
                    if bt.text == "::" and back >= 1 and toks[back - 1].kind == "id":
                        qual = toks[back - 1].text + "::" + qual
                    back -= 1
                    hops += 1
                funcs.append(Function(t.text, qual, t.line,
                                      toks[j + 1:body_end - 1], hot))
                i = j + 1  # Descend: member functions inside class bodies.
                continue
            i = close
            continue
        i += 1
    return funcs


# Read/Write/Cas exist both as fabric verbs (receiver: a Qp) and as
# protocol-object methods (AbdObject::Read, SafeGuessObject::Write, ...)
# whose bodies own the fabric-status handling. Only qp-receiver calls are
# verbs; the unambiguous names (PostMany, ReadQuorum, ...) always count.
AMBIGUOUS_VERB_NAMES = {"Read", "Write", "Cas", "WriteThenCas"}


def _is_verb_call(body, name_idx):
    name = body[name_idx].text
    if name not in AMBIGUOUS_VERB_NAMES:
        return True
    for k in range(max(0, name_idx - 8), name_idx):
        t = body[k]
        if t.kind == "id" and "qp" in t.text.lower():
            return True
    return False


def _callee_name(body, open_paren_idx):
    """Name of the call whose '(' is at open_paren_idx, following a.b.C(x)
    chains back to the last identifier."""
    k = open_paren_idx - 1
    if k >= 0 and body[k].kind == "id":
        return body[k].text
    return None


def _call_sites(body, names):
    """Yields (name_idx, open_paren_idx, close_idx) for calls to `names`."""
    for i, t in enumerate(body):
        if t.kind == "id" and t.text in names and i + 1 < len(body) \
                and body[i + 1].text == "(":
            # Exclude declarations: `Type Read(` — preceded by another id at
            # same expression start is still ambiguous; call sites in bodies
            # overwhelmingly follow '.', '->', '::' or expression context.
            yield i, i + 1, _matching(body, i + 1, "(", ")")


def _statement_end(body, i):
    """Index of the ';' ending the statement containing i (paren-aware)."""
    depth = 0
    n = len(body)
    while i < n:
        t = body[i].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth <= 0:
            return i
        i += 1
    return n - 1


def _statement_start(body, i):
    """Backward scan to the statement's first token. A '}' just before the
    scan point is ambiguous: a braced initializer inside this statement
    (keep scanning past it) or the end of a preceding block (stop there).
    Initializer brace groups contain no ';', which disambiguates."""
    depth = 0
    brace_resume = None  # Position just past a '}' being probed.
    while i > 0:
        t = body[i - 1].text
        if t == "}":
            if depth == 0 and brace_resume is None:
                brace_resume = i
            depth += 1
        elif t in (")", "]"):
            depth += 1
        elif t in ("(", "[", "{"):
            if depth == 0:
                return i
            depth -= 1
            if depth == 0 and t == "{":
                brace_resume = None  # Balanced initializer; keep scanning.
        elif t == ";":
            if depth == 0:
                return i
            if brace_resume is not None:
                return brace_resume  # The '}' closed a code block.
        i -= 1
    return 0


# --- Pass 1: swarm-unchecked-commit-critical --------------------------------

def check_unchecked_commit_critical(fn, findings):
    body = fn.body
    n = len(body)
    for name_idx, op, close in _call_sites(body, COMMIT_CRITICAL_CALLEES):
        if not _is_verb_call(body, name_idx):
            continue
        # Only co_awaited verb calls: find `co_await` earlier in the
        # statement (the verbs are all async).
        start = _statement_start(body, name_idx)
        stmt_toks = body[start:name_idx]
        if not any(t.text == "co_await" for t in stmt_toks):
            continue
        # Only tokens BEFORE the co_await keyword are the result's context;
        # everything after it belongs to the awaited expression itself
        # (`co_await worker->qp(n).Read(...)` — the qp(n) parens are not a
        # consumer).
        pre = []
        for t in stmt_toks:
            if t.text == "co_await":
                break
            pre.append(t.text)
        line = body[name_idx].line
        # The whole co_await expression may be nested inside an outer call's
        # parens: `Outer(co_await qp.Cas(...))`. The statement scan stops at
        # that '(' — look just outside it for the consumer.
        if start > 0 and body[start - 1].text == "(":
            outer = body[start - 2].text if start >= 2 else ""
            if outer == "DiscardStatus":
                continue  # The sanctioned sink.
            # Any other outer context (call argument, if/while condition,
            # co_return expression) consumes the result.
            continue
        # The sanctioned sink.
        if "DiscardStatus" in pre:
            continue
        # `(void) co_await v.Cas(...)` — evasion of the nodiscard contract.
        if "void" in pre:
            findings.append((line, "swarm-unchecked-commit-critical",
                             f"result of commit-critical '{body[name_idx].text}' "
                             "is (void)-cast; route intentional drops through "
                             "swarm::DiscardStatus() with a justification"))
            continue
        # Result captured? Look for `=` before co_await in this statement,
        # or the call being an argument / return value.
        eq_positions = [k for k, x in enumerate(pre) if x == "="]
        if not eq_positions:
            # Used as an argument, condition, or co_returned? If any tokens
            # of the statement before co_await suggest a consuming context,
            # accept: 'return', 'co_return', 'if', 'while', '(', ',', '?',
            # comparison/logic operators.
            consuming = {"return", "co_return", "if", "while", "switch", "(",
                         ",", "?", ":", "==", "!=", "<", ">", "<=", ">=",
                         "&&", "||", "!", "+", "-", "[", "case"}
            if any(x in consuming for x in pre):
                continue
            findings.append((line, "swarm-unchecked-commit-critical",
                             f"commit-critical '{body[name_idx].text}' is "
                             "fire-and-forget: its completion status is "
                             "dropped (the PR-6 seed-12115 bug shape) — "
                             "branch on it or DiscardStatus() it"))
            continue
        # `auto r = co_await ...` — require r to be read again afterwards.
        var_idx = eq_positions[0] - 1
        if var_idx < 0 or stmt_toks[var_idx].kind != "id":
            continue
        # A store through a dereference, member, or element (`*out = ...`,
        # `s.res = ...`, `slots[i] = ...`) escapes the function — the result
        # is examined by whoever owns that memory, not in this body.
        if var_idx > 0 and stmt_toks[var_idx - 1].text in {"*", ".", "->", "]"}:
            continue
        var = stmt_toks[var_idx].text
        end = _statement_end(body, close)
        used = False
        k = end + 1
        while k < n:
            t = body[k]
            if t.kind == "id" and t.text == var:
                stmt0 = _statement_start(body, k)
                window = {x.text for x in body[stmt0:k]}
                if "DiscardStatus" in window:
                    used = True  # Sanctioned.
                elif "void" in window and len(window & {"if", "while", "return",
                                                        "co_return"}) == 0:
                    k += 1
                    continue  # `(void)r;` alone does not count as a read.
                else:
                    used = True
            if used:
                break
            k += 1
        if not used:
            findings.append((line, "swarm-unchecked-commit-critical",
                             f"result '{var}' of commit-critical "
                             f"'{body[name_idx].text}' is never examined "
                             "afterwards — branch on it or DiscardStatus() it"))


# --- Pass 2: swarm-hot-path-alloc -------------------------------------------

def _alloc_sites(fn):
    """Yields (line, what) for allocation constructs in fn's body."""
    body = fn.body
    n = len(body)
    for i, t in enumerate(body):
        if t.kind != "id":
            continue
        if t.text == "new":
            # `operator new` definitions and `new (pool) T` placement into a
            # pool frame are the pool plumbing itself.
            if i > 0 and body[i - 1].text == "operator":
                continue
            if i + 1 < n and body[i + 1].text == "(" :
                close = _matching(body, i + 1, "(", ")")
                if any(x.kind == "id" and x.text in POOL_ALLOWLIST
                       for x in body[i + 1:close]):
                    continue
            yield t.line, "raw `new`"
        elif t.text in ALLOCATING_CALLS:
            yield t.line, f"std::{t.text}"
        elif t.text == "allocate_shared":
            close = _matching(body, i + 1, "(", ")") if i + 1 < n else i
            seg = body[i:close + 4]
            if not any(x.kind == "id" and x.text in POOL_ALLOWLIST for x in seg):
                yield t.line, "allocate_shared without a pool allocator"
        elif t.text in ALLOCATING_TYPES:
            # `std::vector<`, `std::function<`, ... used as a type.
            if i >= 2 and body[i - 1].text == "::" and body[i - 2].text == "std" \
                    and i + 1 < n and body[i + 1].text in ("<", "("):
                yield t.line, f"std::{t.text}"


def check_hot_path_alloc(funcs, fn, findings, by_name):
    if not fn.hot_path:
        return
    seen = set()
    # Same-file transitive closure: a hot-path function's same-file callees
    # are hot too (the runtime zero-alloc guard has the same reach).
    stack = [(fn, None)]
    visited = {fn.qualname}
    while stack:
        cur, via = stack.pop()
        for line, what in _alloc_sites(cur):
            where = f" (reached via '{via}')" if via else ""
            key = (cur.qualname, line, what)
            if key in seen:
                continue
            seen.add(key)
            report_line = line if via is None else fn.line
            findings.append((line if via is None else line,
                             "swarm-hot-path-alloc",
                             f"hot-path function '{fn.qualname}'{where} reaches "
                             f"{what}; hot paths must stay on the FramePool "
                             "(see src/util/annotations.h)"))
        for i, t in enumerate(cur.body):
            if t.kind == "id" and i + 1 < len(cur.body) \
                    and cur.body[i + 1].text == "(" and t.text in by_name:
                callee = by_name[t.text]
                if callee.qualname not in visited:
                    visited.add(callee.qualname)
                    stack.append((callee, callee.qualname))


# --- Pass 3: swarm-bounded-slot-index ---------------------------------------

INDEXY = re.compile(r"(tid|idx|index|slot|rep|shard|writer|node)", re.I)
ADDRY = re.compile(r"(addr|base|ptr|offset|off)", re.I)
BOUNDY_CALL = re.compile(r"(Check|Assert|Enforce|Verify|Clamp).*|.*Bound.*")


def check_bounded_slot_index(fn, findings):
    body = fn.body
    n = len(body)
    for i in range(n - 2):
        # Pattern: <id> '*' <num|id>  or  <num> '*' <id> inside a larger
        # `base + ...` expression.
        a, star, b = body[i], body[i + 1], body[i + 2]
        if star.text != "*":
            continue
        idx_tok = None
        if a.kind == "id" and INDEXY.search(a.text) and b.kind in ("num", "id"):
            idx_tok = a
        elif b.kind == "id" and INDEXY.search(b.text) and a.kind == "num":
            idx_tok = b
        elif a.text == ")":
            # Cast-wrapped index: `static_cast<uint64_t>(owner_tid) * 8`.
            # Walk back to the matching '(' and adopt the lone index-ish
            # identifier inside the parens as the multiplicand.
            depth = 1
            k = i - 1
            while k >= 0 and depth:
                if body[k].text == ")":
                    depth += 1
                elif body[k].text == "(":
                    depth -= 1
                k -= 1
            inner = [t for t in body[k + 2:i]
                     if t.kind == "id" and INDEXY.search(t.text)]
            if len(inner) == 1:
                idx_tok = inner[0]
        if idx_tok is None:
            continue
        # Must take part in a `+` with an address-ish operand, and the value
        # must flow somewhere address-like: `<x>_addr = base + tid*8`, or be
        # a direct argument of a verb call. Flat `;`-delimited bounds: the
        # anchor may sit inside a cast's parens, where the bracket-aware
        # statement scan would stop at the cast's '(' and lose the `base +`.
        stmt0 = i
        while stmt0 > 0 and body[stmt0 - 1].text not in (";", "{", "}"):
            stmt0 -= 1
        stmt1 = i
        while stmt1 < n and body[stmt1].text != ";":
            stmt1 += 1
        stmt = body[stmt0:stmt1]
        texts = [t.text for t in stmt]
        if "+" not in texts:
            continue
        addr_ctx = any(t.kind == "id" and ADDRY.search(t.text) for t in stmt)
        verb_ctx = any(t.kind == "id" and t.text in VERB_CALLEES for t in stmt)
        if not (addr_ctx or verb_ctx):
            continue
        # Dominating bound check on idx_tok.text anywhere earlier in the
        # function: a comparison adjacent to the index, an assert mentioning
        # it, or a bound-checking call taking it.
        var = idx_tok.text
        guarded = False
        for k in range(0, i):
            t = body[k]
            if t.kind != "id" or t.text != var:
                continue
            prev = body[k - 1].text if k > 0 else ""
            nxt = body[k + 1].text if k + 1 < n else ""
            if prev in ("<", "<=", ">", ">=") or nxt in ("<", "<=", ">", ">="):
                guarded = True
                break
            s0 = _statement_start(body, k)
            head = [x.text for x in body[max(0, s0 - 2):k]]
            if any(x == "assert" or BOUNDY_CALL.fullmatch(x)
                   for x in head if isinstance(x, str)):
                guarded = True
                break
        if not guarded:
            findings.append((idx_tok.line, "swarm-bounded-slot-index",
                             f"slot-address arithmetic over '{var}' has no "
                             "dominating bound check in this function (the "
                             "PR-9 seed-47000 tid-past-the-slab shape) — "
                             "guard it or assert the layout bound first"))
        # One finding per statement is enough.
        # (continue scanning for other statements)


# --- Pass 4: swarm-retry-stale-epoch ----------------------------------------

def _loops(body):
    """Yields (line, body_slice) for for/while/do loop bodies."""
    n = len(body)
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "id" and t.text in ("for", "while") and i + 1 < n \
                and body[i + 1].text == "(":
            close = _matching(body, i + 1, "(", ")")
            if close < n and body[close].text == "{":
                end = _matching(body, close, "{", "}")
                yield t.line, body[close + 1:end - 1]
                i = close + 1
                continue
        elif t.kind == "id" and t.text == "do" and i + 1 < n \
                and body[i + 1].text == "{":
            end = _matching(body, i + 1, "{", "}")
            yield t.line, body[i + 2:end - 1]
            i = i + 2
            continue
        i += 1


def check_retry_stale_epoch(fn, findings, by_name):
    for line, loop in _loops(fn.body):
        texts = [t.text for t in loop]
        tset = set(texts)
        has_verb = False
        for k, x in enumerate(texts):
            if x in VERB_CALLEES and k + 1 < len(texts) and texts[k + 1] == "(" \
                    and "co_await" in texts[max(0, k - 8):k] \
                    and _is_verb_call(loop, k):
                has_verb = True
                break
        if not has_verb:
            continue
        # Only RETRY loops that already reason about completion status AND
        # keep retrying inside the loop (`continue`): a loop that exits on
        # any failure, propagating the status to its caller, correctly
        # delegates the kStaleEpoch arm upward (the CAS-max ladders all do
        # this — they re-CAS only on contention, never on failure).
        # ...and only loops reasoning about FABRIC statuses: protocol-level
        # statuses (SgStatus, KvStatus) have their kStaleEpoch arm below, in
        # the protocol object that produced them.
        branches_on_status = bool(tset & {"OpResult", "kNodeFailed",
                                          "kMovedReplica", "kStaleEpoch"})
        if not branches_on_status or "continue" not in tset:
            continue
        handled = ("kStaleEpoch" in tset or "RefreshEpoch" in tset)
        if not handled:
            # Same-file callee may centralize the arm (e.g. a shared
            # failure-handler the loop calls on every non-kOk status).
            for x in tset:
                f2 = by_name.get(x)
                if f2 is not None and any(
                        t.text in ("kStaleEpoch", "RefreshEpoch")
                        for t in f2.body):
                    handled = True
                    break
        if not handled:
            findings.append((line, "swarm-retry-stale-epoch",
                             "retry loop over fabric verbs branches on "
                             "completion status but has no kStaleEpoch arm "
                             "(§5.4: a stale-epoch completion carries no "
                             "information about object state) — refresh the "
                             "epoch and retry, never treat it as failure"))


# --- Driver -----------------------------------------------------------------

def lint_file(path, enabled):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            source = f.read()
    except OSError as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        return []
    toks, suppressed = tokenize(source)
    funcs = extract_functions(toks)
    by_name = {}
    for fn in funcs:
        by_name.setdefault(fn.name, fn)
    findings = []
    for fn in funcs:
        if "swarm-unchecked-commit-critical" in enabled:
            check_unchecked_commit_critical(fn, findings)
        if "swarm-hot-path-alloc" in enabled:
            check_hot_path_alloc(funcs, fn, findings, by_name)
        if "swarm-bounded-slot-index" in enabled:
            check_bounded_slot_index(fn, findings)
        if "swarm-retry-stale-epoch" in enabled:
            check_retry_stale_epoch(fn, findings, by_name)
    out = []
    for line, check, msg in findings:
        names = suppressed.get(line, set())
        if "*" in names or check in names:
            continue
        out.append((path, line, check, msg))
    return out


DEFAULT_EXTS = (".cc", ".h", ".cpp", ".hpp")


def gather(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for nm in sorted(names):
                    if nm.endswith(DEFAULT_EXTS):
                        files.append(os.path.join(root, nm))
        else:
            files.append(p)
    return files


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=[], help="files or directories")
    ap.add_argument("--checks", default=",".join(CHECKS),
                    help="comma-separated subset of checks to run")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--version", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        print("\n".join(CHECKS))
        return 0
    if args.version:
        try:
            import clang.cindex  # noqa: F401
            frontend = "clang.cindex available (self-contained frontend in use)"
        except ImportError:
            frontend = "self-contained frontend (clang.cindex not importable)"
        print(f"check_protocol_invariants 1.0 — {frontend}")
        return 0

    enabled = set()
    for c in args.checks.split(","):
        c = c.strip()
        if not c:
            continue
        if c not in CHECKS:
            print(f"unknown check: {c}", file=sys.stderr)
            return 2
        enabled.add(c)
    if not args.paths:
        ap.print_usage(sys.stderr)
        return 2

    all_findings = []
    for path in gather(args.paths):
        all_findings.extend(lint_file(path, enabled))
    for path, line, check, msg in all_findings:
        print(f"{path}:{line}: [{check}] {msg}")
    if all_findings:
        print(f"\n{len(all_findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
