// Table 3: resource consumption — client CPU, client cache memory, IO
// bandwidth, and disaggregated memory — for RAW, DM-ABD, SWARM-KV and FUSEE
// under YCSB B with 1 KiB values and 4 clients at a fixed rate.
//
// Paper (1M keys, 1 KiB values, 4 clients x 200 kops, GC once per second):
//             CPU     cache      IO BW      disagg. mem
//   RAW      46.6%   22.9 MiB   6.55 Gbps    0.95 GiB
//   DM-ABD   99.0%   22.9 MiB   6.99 Gbps    3.00 GiB
//   SWARM-KV 61.3%   30.5 MiB   7.41 Gbps    4.06 GiB
//   FUSEE    74.2%   22.9 MiB   8.15 Gbps    2.04 GiB
//
// We run a scaled key count (SWARM_BENCH_T3_KEYS, default 120k) and report
// measured totals plus per-key disaggregated memory extrapolated to 1M keys.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  const uint64_t keys = EnvU64("SWARM_BENCH_T3_KEYS", 120000);
  JsonReport rep("table3_resources");
  rep.Label("t3_keys", std::to_string(keys));
  HostCostFooter footer;
  PrintHeader("Table 3: resource consumption, YCSB B, 1KiB values, 4 clients");
  std::printf("(scaled run: %llu keys; disaggregated memory also extrapolated to 1M keys)\n",
              static_cast<unsigned long long>(keys));
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "cpu_util", "cache_MiB", "io_gbps", "disagg_GiB(run)",
                  "disagg_GiB(1M keys)", "vs_raw"});
  double raw_per_key = 0;
  for (const char* store : {"raw", "dmabd", "swarm", "fusee"}) {
    HarnessConfig cfg;
    cfg.store = store;
    cfg.workload = ycsb::WorkloadB(keys, 1024);
    cfg.num_clients = 4;
    cfg.fabric.node_capacity_bytes = 8ull << 30;
    cfg.warmup_ops = WarmupOps() / 2;
    cfg.measure_ops = MeasureOps();
    KvHarness harness(cfg);
    harness.Load();
    RunResults r = harness.Run();

    const double cpu = 100.0 * static_cast<double>(r.cpu_busy) /
                       static_cast<double>(r.cpu_wall == 0 ? 1 : r.cpu_wall);
    // Cache accounting per §7.1: 24 B/entry for location data, +8 B for
    // SWARM-KV's In-n-Out metadata; all keys cached at all 4 clients.
    const double cache_mib =
        static_cast<double>(harness.TotalCacheBytes()) / (1024.0 * 1024.0);
    const double gbps = static_cast<double>(r.fabric_bytes) * 8.0 /
                        static_cast<double>(r.measure_duration == 0 ? 1 : r.measure_duration);
    const double disagg = static_cast<double>(harness.fabric().TotalAllocated());
    const double per_key = disagg / static_cast<double>(keys);
    if (std::string(store) == "raw") {
      raw_per_key = per_key;
    }
    footer.Add(harness);
    // All four are deterministic virtual-time/accounting numbers. Names
    // deliberately avoid the checker's directional suffixes (no "_pct"):
    // resource CONSUMPTION drifting in either direction is a model change
    // worth flagging, so both-ways gating is the right default.
    rep.Metric(std::string(store) + ".cpu_util", cpu / 100.0);
    rep.Metric(std::string(store) + ".cache_mib", cache_mib);
    rep.Metric(std::string(store) + ".io_gbps", gbps);
    rep.Metric(std::string(store) + ".disagg_gib", disagg / (1024.0 * 1024.0 * 1024.0));
    rows.push_back({store, Fmt("%.1f%%", cpu), Fmt("%.1f", cache_mib), Fmt("%.2f", gbps),
                    Fmt("%.2f", disagg / (1024.0 * 1024.0 * 1024.0)),
                    Fmt("%.2f", per_key * 1e6 / (1024.0 * 1024.0 * 1024.0)),
                    Fmt("%.2fx", per_key / (raw_per_key == 0 ? per_key : raw_per_key))});
  }
  PrintTable(rows);
  std::printf("\nPaper: RAW 46.6%% / 22.9MiB / 6.55Gbps / 0.95GiB; DM-ABD 99%% / 22.9 / 6.99 /\n"
              "3.00 (3.16x); SWARM-KV 61.3%% / 30.5 / 7.41 / 4.06 (4.27x); FUSEE 74.2%% /\n"
              "22.9 / 8.15 / 2.04 (2.15x).\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
