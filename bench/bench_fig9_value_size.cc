// Figure 9: throughput and average latency of SWARM-KV with YCSB A and B as
// value sizes grow from 16 B to 8 KiB, compared against a SWARM-KV variant
// without in-place data (pure out-of-place, "Out-P.").
//
// Paper's findings: latency grows linearly with value size and stays
// single-digit us at 8 KiB; gets always benefit from in-place data (8 KiB
// still 33% faster); updates with in-place are as fast as pure out-of-place
// (lazy in-place writes); In-n-Out yields higher total throughput,
// especially for read-heavy workloads (+50% at 8 KiB under YCSB B).

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig9_value_size");
  HostCostFooter footer;
  PrintHeader("Figure 9: value-size sweep 16B..8KiB, SWARM-KV (In-n-Out) vs pure out-of-place");
  for (const bool workload_a : {true, false}) {
    std::printf("\n== YCSB %s - Zipfian ==\n", workload_a ? "A (50/50)" : "B (95/5)");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"variant", "value", "get_avg_us", "update_avg_us", "tput_kops"});
    for (const bool inplace : {true, false}) {
      for (const uint32_t size : {16u, 64u, 256u, 1024u, 4096u, 8192u}) {
        HarnessConfig cfg;
        cfg.store = "swarm";
        // Fewer keys for the big-value points keeps simulated memory sane
        // without changing the latency picture (values dominate transfer).
        const uint64_t keys = size >= 4096 ? 20000 : 100000;
        cfg.workload = workload_a ? ycsb::WorkloadA(keys, size) : ycsb::WorkloadB(keys, size);
        cfg.num_clients = 4;
        // "In-n-Out" vs "Out-P.": the variant allocates no in-place region,
        // so reads always chase the out-of-place pointer.
        cfg.proto.inplace_copies = inplace ? 1 : 0;
        cfg.warmup_ops = WarmupOps() / 2;
        cfg.measure_ops = MeasureOps() / 2;
        KvHarness harness(cfg);
        harness.Load();
        RunResults r = harness.Run();
        footer.Add(harness);
        const std::string key = std::string(inplace ? "innout" : "outp") +
                                (workload_a ? ".a" : ".b") + ".v" + std::to_string(size);
        rep.Metric(key + ".get_mean_us", r.get_latency.MeanUs());
        rep.Metric(key + ".update_mean_us", r.update_latency.MeanUs());
        rep.Metric(key + ".tput_kops", r.ThroughputMops() * 1e3);
        rows.push_back({inplace ? "In-n-Out" : "Out-P.",
                        size >= 1024 ? Fmt("%.0fKiB", size / 1024.0) : Fmt("%.0fB", size),
                        Fmt("%.2f", r.get_latency.MeanUs()),
                        Fmt("%.2f", r.update_latency.MeanUs()),
                        Fmt("%.0f", r.ThroughputMops() * 1e3)});
      }
    }
    PrintTable(rows);
  }
  std::printf("\nPaper: linear latency growth; 8KiB still single-digit us; gets ~33%% faster\n"
              "with in-place at 8KiB; updates equal (lazy in-place); In-n-Out +50%% tput at\n"
              "8KiB under YCSB B.\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
