// Figure 11: latency and throughput of a SWARM-KV client through the crash
// of a memory node (at t=0), YCSB A; compared with the FUSEE baseline whose
// synchronous replication needs a multi-phase recovery.
//
// Paper: SWARM-KV suffers NO downtime — ongoing operations merely contact
// additional memory nodes (escalation past the slow majority), latency
// temporarily rises due to lost in-place data and lost quorum unanimity,
// then recovers as subsequent operations rebuild both. FUSEE-style systems
// reportedly block for tens of milliseconds.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

struct Timeline {
  sim::Time bucket_ns;
  std::map<int64_t, stats::LatencyHistogram> buckets;
  std::map<int64_t, uint64_t> ops;

  void Record(sim::Time now, sim::Time crash_at, sim::Time latency) {
    const int64_t b = (now - crash_at) / bucket_ns;
    buckets[b].Record(latency);
    ops[b]++;
  }
};

void RunOne(const char* store, JsonReport* rep, HostCostFooter* footer) {
  HarnessConfig cfg;
  cfg.store = store;
  cfg.workload = ycsb::WorkloadA(100000, 64);
  cfg.num_clients = 4;
  cfg.warmup_ops = WarmupOps() / 2;
  cfg.measure_ops = MeasureOps() * 2;  // Long run: crash lands mid-measurement.
  // The failover experiment provisions a standby in-place replica so lost
  // in-place data can be rebuilt on a surviving node (DESIGN.md deviation).
  cfg.proto.inplace_copies = 2;
  KvHarness harness(cfg);
  harness.Load();

  Timeline timeline{200 * sim::kMicrosecond, {}, {}};
  // Crash node 0 after 25% of the measured ops; membership notifies clients
  // with uKharon-like detection latency, earlier ops detect via timeouts.
  bool crashed = false;
  uint64_t seen = 0;
  const uint64_t crash_after = cfg.measure_ops / 4;
  sim::Time crash_time = 0;
  harness.set_op_hook([&](sim::Time now, ycsb::OpType, sim::Time latency, const kv::KvResult&) {
    ++seen;
    if (!crashed && seen == crash_after) {
      crashed = true;
      crash_time = now;
      harness.membership().CrashNode(0);
    }
    if (crashed) {
      timeline.Record(now, crash_time, latency);
    }
  });
  RunResults r = harness.Run();
  footer->Add(harness);
  rep->AddLatency(std::string(store) + ".get", r.get_latency);
  rep->AddLatency(std::string(store) + ".update", r.update_latency);
  rep->MetricU(std::string(store) + ".unavailable_ops", r.unavailable);
  // Recovery-window shape: the first 2 ms after the crash, merged.
  stats::LatencyHistogram post_crash;
  for (const auto& [b, hist] : timeline.buckets) {
    if (b >= 0 && static_cast<double>(b) * sim::ToMillis(timeline.bucket_ns) < 2.0) {
      post_crash.Merge(hist);
    }
  }
  rep->Metric(std::string(store) + ".post_crash_2ms.p50_us", post_crash.PercentileUs(50));
  rep->Metric(std::string(store) + ".post_crash_2ms.p99_us", post_crash.PercentileUs(99));
  // Recovery timeline, bucket by bucket: the first ten 200 us buckets after
  // the crash, gated individually so the SHAPE of the recovery (how fast
  // latency decays back, how many ops land in each window) is part of the
  // trajectory, not just the merged 2 ms aggregate. Missing buckets emit
  // zeros so the key set is stable across runs.
  for (int64_t b = 0; b < 10; ++b) {
    const std::string bkey = std::string(store) + ".timeline.b" + std::to_string(b);
    const auto hist_it = timeline.buckets.find(b);
    const auto ops_it = timeline.ops.find(b);
    rep->Metric(bkey + ".p50_us",
                hist_it == timeline.buckets.end() ? 0.0 : hist_it->second.PercentileUs(50));
    rep->Metric(bkey + ".p99_us",
                hist_it == timeline.buckets.end() ? 0.0 : hist_it->second.PercentileUs(99));
    rep->MetricU(bkey + ".ops", ops_it == timeline.ops.end() ? 0 : ops_it->second);
  }

  std::printf("\n== %s (crash of node 0 at t=0) ==\n", store);
  std::printf("unavailable ops: %llu of %llu\n", static_cast<unsigned long long>(r.unavailable),
              static_cast<unsigned long long>(r.gets + r.updates));
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"t_ms", "ops_in_bucket", "p50_us", "p99_us"});
  int printed = 0;
  for (const auto& [b, hist] : timeline.buckets) {
    const double t_ms = static_cast<double>(b) * sim::ToMillis(timeline.bucket_ns);
    // Print a dense window around the crash and a sparse tail.
    const bool dense = t_ms >= -1.0 && t_ms <= 2.0;
    const bool sparse = std::abs(t_ms - std::round(t_ms / 5.0) * 5.0) < 0.11;
    if (!dense && !sparse) {
      continue;
    }
    rows.push_back({Fmt("%.1f", t_ms), FmtU(timeline.ops.at(b)),
                    Fmt("%.2f", hist.PercentileUs(50)), Fmt("%.2f", hist.PercentileUs(99))});
    if (++printed > 60) {
      break;
    }
  }
  PrintTable(rows);
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig11_failover");
  HostCostFooter footer;
  PrintHeader("Figure 11: memory-node failure at t=0, YCSB A (availability timeline)");
  RunOne("swarm", &rep, &footer);
  RunOne("fusee", &rep, &footer);
  std::printf("\nPaper: SWARM-KV keeps serving (zero downtime); latency blips while in-place\n"
              "data and quorum unanimity are rebuilt, then recovers. Synchronous systems\n"
              "(FUSEE) block for tens of milliseconds of recovery.\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
