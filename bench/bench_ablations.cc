// Ablations of SWARM's design choices (beyond the paper's own Fig. 9/13
// ablations), as called out in DESIGN.md:
//
//  A. Clock synchrony sweep: Safe-Guess's 1-RTT writes hinge on guessed
//     timestamps being fresh; this sweeps client clock skew and reports the
//     fast-path rate and the clock re-sync rate (§3.2/§6: "assuming
//     reasonable clock synchrony ... a good timestamp can be guessed").
//  B. Escalation-timeout sweep: the §6 optimistic-majority optimization
//     trades bandwidth for a tail-latency cliff when the timeout is too
//     tight; this sweeps the timeout and reports p99 latency and the
//     escalation rate.
//  C. Metadata read batching (the §4.3 "in-place data next to the metadata"
//     choice): SWARM-KV with in-place data co-located (1 READ) vs a variant
//     paying a separate roundtrip — approximated by the pure out-of-place
//     variant at small values, isolating the read-path effect.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

void ClockSkewSweep(JsonReport* rep, HostCostFooter* footer) {
  PrintHeader("Ablation A: clock skew vs Safe-Guess fast-path rate (YCSB A, 4 clients)");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"max_skew", "updates_1rt", "update_p50_us", "update_p99_us",
                  "clock_resyncs"});
  for (const int64_t skew_ns :
       {0l, 400l, 2000l, 10000l, 50000l, 200000l, 1000000l}) {
    HarnessConfig cfg;
    cfg.store = "swarm";
    cfg.workload = ycsb::WorkloadA(100000, 64);
    cfg.num_clients = 4;
    cfg.max_clock_skew_ns = skew_ns;
    cfg.warmup_ops = WarmupOps() / 2;
    cfg.measure_ops = MeasureOps() / 2;
    KvHarness harness(cfg);
    harness.Load();
    RunResults r = harness.Run();
    footer->Add(harness);
    uint64_t one_rt = 0;
    uint64_t total = 0;
    for (const auto& [rt, n] : r.update_rtts) {
      total += n;
      one_rt += rt <= 1 ? n : 0;
    }
    const std::string key = "skew" + std::to_string(skew_ns) + "ns";
    rep->Metric(key + ".updates_1rt_pct", 100.0 * static_cast<double>(one_rt) /
                                              static_cast<double>(total ? total : 1));
    rep->Metric(key + ".update_p99_us", r.update_latency.PercentileUs(99));
    rep->MetricU(key + ".clock_resyncs", harness.TotalClockResyncs());
    rows.push_back({skew_ns >= 1000 ? Fmt("%.0fus", static_cast<double>(skew_ns) / 1000.0)
                                    : Fmt("%.0fns", static_cast<double>(skew_ns)),
                    Fmt("%.1f%%", 100.0 * static_cast<double>(one_rt) /
                                      static_cast<double>(total ? total : 1)),
                    Fmt("%.2f", r.update_latency.PercentileUs(50)),
                    Fmt("%.2f", r.update_latency.PercentileUs(99)),
                    FmtU(harness.TotalClockResyncs())});
  }
  PrintTable(rows);
  std::printf("Takeaway: with §6's re-synchronization, even millisecond static skews cost\n"
              "only a handful of slow paths before clocks converge — the 1-RTT fast path\n"
              "rate stays flat. Without re-sync, laggy writers would slow-path forever.\n");
}

void EscalationSweep(JsonReport* rep, HostCostFooter* footer) {
  PrintHeader("Ablation B: optimistic-majority escalation timeout (YCSB B, 4 clients)");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"timeout_us", "get_p50_us", "get_p99_us", "update_p99_us"});
  for (const sim::Time timeout : {1500l, 2500l, 3500l, 6000l, 12000l}) {
    HarnessConfig cfg;
    cfg.store = "swarm";
    cfg.workload = ycsb::WorkloadB(100000, 64);
    cfg.num_clients = 4;
    cfg.proto.escalation_timeout = timeout;
    cfg.warmup_ops = WarmupOps() / 2;
    cfg.measure_ops = MeasureOps() / 2;
    KvHarness harness(cfg);
    harness.Load();
    RunResults r = harness.Run();
    footer->Add(harness);
    const std::string key = "esc" + std::to_string(timeout) + "ns";
    rep->Metric(key + ".get_p99_us", r.get_latency.PercentileUs(99));
    rep->Metric(key + ".update_p99_us", r.update_latency.PercentileUs(99));
    rows.push_back({Fmt("%.1f", static_cast<double>(timeout) / 1000.0),
                    Fmt("%.2f", r.get_latency.PercentileUs(50)),
                    Fmt("%.2f", r.get_latency.PercentileUs(99)),
                    Fmt("%.2f", r.update_latency.PercentileUs(99))});
  }
  PrintTable(rows);
  std::printf("Takeaway: too-tight timeouts fire on ordinary jitter and inflate p99 with\n"
              "spurious escalations; too-loose ones delay failover (Fig. 11's blip).\n");
}

void ReplicationFreeLunchCheck(JsonReport* rep, HostCostFooter* footer) {
  PrintHeader("Ablation C: what replication costs — SWARM-KV vs RAW per op type");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"workload", "raw_get", "swarm_get", "get_overhead", "raw_upd", "swarm_upd",
                  "upd_overhead"});
  for (const bool a : {true, false}) {
    RunResults raw;
    RunResults sw;
    for (const char* store : {"raw", "swarm"}) {
      HarnessConfig cfg;
      cfg.store = store;
      cfg.workload = a ? ycsb::WorkloadA(100000, 64) : ycsb::WorkloadB(100000, 64);
      cfg.num_clients = 4;
      cfg.warmup_ops = WarmupOps() / 2;
      cfg.measure_ops = MeasureOps() / 2;
      KvHarness harness(cfg);
      harness.Load();
      if (std::string(store) == "raw") {
        raw = harness.Run();
      } else {
        sw = harness.Run();
      }
      footer->Add(harness);
    }
    const std::string key = a ? "wlA" : "wlB";
    rep->Metric(key + ".raw.get_p50_us", raw.get_latency.PercentileUs(50));
    rep->Metric(key + ".swarm.get_p50_us", sw.get_latency.PercentileUs(50));
    rep->Metric(key + ".raw.update_p50_us", raw.update_latency.PercentileUs(50));
    rep->Metric(key + ".swarm.update_p50_us", sw.update_latency.PercentileUs(50));
    rows.push_back({a ? "A" : "B", Fmt("%.2f", raw.get_latency.PercentileUs(50)),
                    Fmt("%.2f", sw.get_latency.PercentileUs(50)),
                    Fmt("+%.0f%%", 100.0 * (sw.get_latency.PercentileUs(50) /
                                                raw.get_latency.PercentileUs(50) -
                                            1.0)),
                    Fmt("%.2f", raw.update_latency.PercentileUs(50)),
                    Fmt("%.2f", sw.update_latency.PercentileUs(50)),
                    Fmt("+%.0f%%", 100.0 * (sw.update_latency.PercentileUs(50) /
                                                raw.update_latency.PercentileUs(50) -
                                            1.0))});
  }
  PrintTable(rows);
  std::printf("Paper: +27%% gets / +92%% updates (both sub-RTT absolute overhead).\n");
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("ablations");
  HostCostFooter footer;
  ClockSkewSweep(&rep, &footer);
  EscalationSweep(&rep, &footer);
  ReplicationFreeLunchCheck(&rep, &footer);
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
