// Figure 10: median latency (with p1/p99 whiskers) and per-client throughput
// of SWARM-KV and DM-ABD with 3, 5 and 7 replicas per key, YCSB B, Zipfian.
// With only 4 memory nodes, some replicas share a node (as in the paper).
//
// Paper: latency grows linearly with the replica count (each 2 extra
// replicas: gets +0.2 us, updates +0.5 us — the cost of issuing another
// series of RDMA ops), throughput drops 9% from 3→5 and 7% more from 5→7;
// the p1–p99 spread stays stable.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig10_replication");
  HostCostFooter footer;
  PrintHeader("Figure 10: replication factor 3/5/7, YCSB B, Zipfian, 4 clients");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "replicas", "get_p50_us", "get_p1_us", "get_p99_us", "update_p50_us",
                  "update_p1_us", "update_p99_us", "tput_kops_per_client"});
  for (const char* store : {"swarm", "dmabd"}) {
    for (const int replicas : {3, 5, 7}) {
      HarnessConfig cfg;
      cfg.store = store;
      cfg.workload = ycsb::WorkloadB(100000, 64);
      cfg.num_clients = 4;
      cfg.proto.replicas = replicas;
      cfg.warmup_ops = WarmupOps() / 2;
      cfg.measure_ops = MeasureOps() / 2;
      KvHarness harness(cfg);
      harness.Load();
      RunResults r = harness.Run();
      footer.Add(harness);
      const std::string key = std::string(store) + ".r" + std::to_string(replicas);
      rep.Metric(key + ".get_p50_us", r.get_latency.PercentileUs(50));
      rep.Metric(key + ".get_p99_us", r.get_latency.PercentileUs(99));
      rep.Metric(key + ".update_p50_us", r.update_latency.PercentileUs(50));
      rep.Metric(key + ".update_p99_us", r.update_latency.PercentileUs(99));
      rep.Metric(key + ".tput_kops_per_client",
                 r.ThroughputMops() * 1e3 / cfg.num_clients);
      rows.push_back({store, FmtU(static_cast<uint64_t>(replicas)),
                      Fmt("%.2f", r.get_latency.PercentileUs(50)),
                      Fmt("%.2f", r.get_latency.PercentileUs(1)),
                      Fmt("%.2f", r.get_latency.PercentileUs(99)),
                      Fmt("%.2f", r.update_latency.PercentileUs(50)),
                      Fmt("%.2f", r.update_latency.PercentileUs(1)),
                      Fmt("%.2f", r.update_latency.PercentileUs(99)),
                      Fmt("%.0f", r.ThroughputMops() * 1e3 / cfg.num_clients)});
    }
  }
  PrintTable(rows);
  std::printf("\nPaper: SWARM-KV 3 replicas: get 2.3us / update 3.0us; +0.2us gets, +0.5us\n"
              "updates per 2 extra replicas; DM-ABD starts at 4.3/4.7us; tput -9%% (3->5),\n"
              "-7%% (5->7); stable p1-p99 spread.\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
