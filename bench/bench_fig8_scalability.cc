// Figure 8: throughput and average latency of SWARM-KV and DM-ABD with YCSB
// B (Zipfian) when scaling the number of single-threaded clients from 1 to
// 64, sequential (1 op at a time) and with 4 concurrent operations.
//
// The paper sees near-linear throughput scaling (15.9 Mops at 64 clients
// sequential; 28.3 Mops peak with 4 concurrent ops at 40 clients before the
// 100 Gbps fabric saturates) with moderate latency growth.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig8_scalability");
  HostCostFooter footer;
  PrintHeader("Figure 8: scalability, 1..64 clients, YCSB B, Zipfian");
  for (const int conc : {1, 4}) {
    std::printf("\n== %d concurrent operation(s) per client ==\n", conc);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"system", "clients", "tput_mops", "get_avg_us", "update_avg_us"});
    for (const char* store : {"swarm", "dmabd"}) {
      for (const int clients : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}) {
        HarnessConfig cfg;
        cfg.store = store;
        cfg.workload = ycsb::WorkloadB(100000, 64);
        cfg.num_clients = clients;
        cfg.workers_per_client = conc;
        // Keep per-worker op counts meaningful at high client counts.
        cfg.warmup_ops = std::max<uint64_t>(WarmupOps() / 4,
                                            static_cast<uint64_t>(clients * conc) * 200);
        cfg.measure_ops = std::max<uint64_t>(MeasureOps() / 2,
                                             static_cast<uint64_t>(clients * conc) * 400);
        KvHarness harness(cfg);
        harness.Load();
        RunResults r = harness.Run();
        footer.Add(harness);
        const std::string key = std::string(store) + ".c" + std::to_string(conc) + ".n" +
                                std::to_string(clients);
        rep.Metric(key + ".tput_mops", r.ThroughputMops());
        rep.Metric(key + ".get_mean_us", r.get_latency.MeanUs());
        rep.Metric(key + ".update_mean_us", r.update_latency.MeanUs());
        rows.push_back({store, FmtU(static_cast<uint64_t>(clients)),
                        Fmt("%.2f", r.ThroughputMops()), Fmt("%.2f", r.get_latency.MeanUs()),
                        Fmt("%.2f", r.update_latency.MeanUs())});
      }
    }
    PrintTable(rows);
  }
  std::printf("\nPaper: sequential — near-linear to 15.9 Mops at 64 clients, gets 2.2->3.7us.\n"
              "4 concurrent — peak 28.3 Mops at 40 clients (fabric saturates beyond).\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
