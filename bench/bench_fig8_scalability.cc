// Figure 8: throughput and average latency of SWARM-KV and DM-ABD with YCSB
// B (Zipfian) when scaling the number of single-threaded clients from 1 to
// 64, sequential (1 op at a time) and with 4 concurrent operations.
//
// The paper sees near-linear throughput scaling (15.9 Mops at 64 clients
// sequential; 28.3 Mops peak with 4 concurrent ops at 40 clients before the
// 100 Gbps fabric saturates) with moderate latency growth.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig8_scalability");
  HostCostFooter footer;
  PrintHeader("Figure 8: scalability, 1..64 clients, YCSB B, Zipfian");
  for (const int conc : {1, 4}) {
    std::printf("\n== %d concurrent operation(s) per client ==\n", conc);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"system", "clients", "tput_mops", "get_avg_us", "update_avg_us"});
    for (const char* store : {"swarm", "dmabd"}) {
      for (const int clients : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}) {
        HarnessConfig cfg;
        cfg.store = store;
        cfg.workload = ycsb::WorkloadB(100000, 64);
        cfg.num_clients = clients;
        cfg.workers_per_client = conc;
        // Keep per-worker op counts meaningful at high client counts.
        cfg.warmup_ops = std::max<uint64_t>(WarmupOps() / 4,
                                            static_cast<uint64_t>(clients * conc) * 200);
        cfg.measure_ops = std::max<uint64_t>(MeasureOps() / 2,
                                             static_cast<uint64_t>(clients * conc) * 400);
        KvHarness harness(cfg);
        harness.Load();
        RunResults r = harness.Run();
        footer.Add(harness);
        const std::string key = std::string(store) + ".c" + std::to_string(conc) + ".n" +
                                std::to_string(clients);
        rep.Metric(key + ".tput_mops", r.ThroughputMops());
        rep.Metric(key + ".get_mean_us", r.get_latency.MeanUs());
        rep.Metric(key + ".update_mean_us", r.update_latency.MeanUs());
        rows.push_back({store, FmtU(static_cast<uint64_t>(clients)),
                        Fmt("%.2f", r.ThroughputMops()), Fmt("%.2f", r.get_latency.MeanUs()),
                        Fmt("%.2f", r.update_latency.MeanUs())});
      }
    }
    PrintTable(rows);
  }
  // Key-count axis (beyond the paper's client axis): the store grows two
  // orders of magnitude at a fixed client count. The index runs sharded with
  // a per-shard service occupancy, so this measures the scale-out layer —
  // extent-allocated slots, probe placement, and the sharded
  // index — not just the steady-state cache-hit path: load throughput is
  // bounded by index-insert parallelism across shards, and the steady-state
  // numbers must hold flat as the keyspace (and every node's slab count)
  // grows 100x.
  // Emitted as its own report (fig8_keyscale) with its own footer: the
  // client-axis trajectory above predates this section, and folding three
  // more harnesses into its footer would look like host-cost drift.
  std::printf("\n== key-count scale-out (8 clients, 8 index shards) ==\n");
  JsonReport krep("fig8_keyscale");
  HostCostFooter kfooter;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"keys", "load_mops", "tput_mops", "get_mean_us", "update_mean_us"});
  for (const uint64_t keys : {10000ull, 100000ull, 1000000ull}) {
    HarnessConfig cfg;
    cfg.store = "swarm";
    cfg.workload = ycsb::WorkloadB(keys, 64);
    cfg.num_clients = 8;
    cfg.index_shards = 8;
    cfg.index_shard_service_time = 250;  // ns per index op held at its shard.
    cfg.fabric.node_capacity_bytes = 8ull << 30;  // calloc-backed: lazily touched.
    cfg.warmup_ops = WarmupOps() / 4;
    cfg.measure_ops = MeasureOps() / 2;
    KvHarness harness(cfg);
    const sim::Time load_start = harness.sim().Now();
    harness.Load();
    const double load_s = sim::ToSeconds(harness.sim().Now() - load_start);
    RunResults r = harness.Run();
    kfooter.Add(harness);
    const double load_mops =
        load_s <= 0 ? 0.0 : static_cast<double>(keys) / load_s / 1e6;
    const std::string key = "swarm.keys" + std::to_string(keys);
    krep.Metric(key + ".load_mops", load_mops);
    krep.Metric(key + ".tput_mops", r.ThroughputMops());
    krep.Metric(key + ".get_mean_us", r.get_latency.MeanUs());
    krep.Metric(key + ".update_mean_us", r.update_latency.MeanUs());
    rows.push_back({FmtU(keys), Fmt("%.2f", load_mops), Fmt("%.2f", r.ThroughputMops()),
                    Fmt("%.2f", r.get_latency.MeanUs()), Fmt("%.2f", r.update_latency.MeanUs())});
  }
  PrintTable(rows);
  kfooter.Flush(&krep);
  krep.Write();

  std::printf("\nPaper: sequential — near-linear to 15.9 Mops at 64 clients, gets 2.2->3.7us.\n"
              "4 concurrent — peak 28.3 Mops at 40 clients (fabric saturates beyond).\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
