// Figure 6: the Figure-5 experiment with 1M keys and index caches limited to
// 5 MiB of system-specific metadata, so not all key locations fit and the
// latency distributions turn bimodal (cache hit vs. miss).
//
// Per §7.1: DM-ABD and FUSEE cache entries are 24 B (≈21.8% of keys cached),
// SWARM-KV entries are 32 B as they include In-n-Out's metadata (≈16.4%
// cached); replacement is approximate LFU. SWARM-KV's miss rate only rises
// to ~45.6% (vs 42.5%) because LFU keeps the hottest keys, and its average
// latency remains best. On misses all systems pay +1 RT for the index;
// SWARM-KV updates pay +2 (index + latest metadata buffer).

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

constexpr uint64_t kCacheBudgetBytes = 5ull << 20;
constexpr uint64_t kKeys = 1000000;

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig6_small_cache");
  HostCostFooter footer;
  PrintHeader("Figure 6: 1M keys, 5 MiB caches (approximate LFU), YCSB B, Zipfian");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "op", "p50_us", "p90_us", "p99_us", "mean_us", "miss_rate",
                  "cached_keys"});
  std::vector<stats::LatencyHistogram> cdfs;
  std::vector<std::string> cdf_names;
  for (const char* store : {"swarm", "dmabd", "fusee"}) {
    const uint64_t entry = std::string(store) == "swarm" ? 32 : 24;
    HarnessConfig cfg;
    cfg.store = store;
    cfg.workload = ycsb::WorkloadB(kKeys, 64);
    cfg.num_clients = 4;
    cfg.cache_capacity = index::ClientCache::EntriesForBudget(kCacheBudgetBytes, entry);
    // §7.1 footnote: warm-up extended (8M ops) to stabilize the cache policy;
    // scaled with the configured op count here.
    cfg.warmup_ops = WarmupOps() * 4;
    cfg.measure_ops = MeasureOps();
    KvHarness harness(cfg);
    harness.Load();
    double miss_rate = 0;
    for (int c = 0; c < cfg.num_clients; ++c) {
      harness.client_cache(c).ResetStats();
    }
    RunResults r = harness.Run();
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (int c = 0; c < cfg.num_clients; ++c) {
      hits += harness.client_cache(c).stats().hits;
      misses += harness.client_cache(c).stats().misses;
    }
    miss_rate = hits + misses == 0 ? 0 : 100.0 * static_cast<double>(misses) /
                                             static_cast<double>(hits + misses);
    const double frac_cached = 100.0 * static_cast<double>(cfg.cache_capacity) /
                               static_cast<double>(kKeys);
    footer.Add(harness);
    rep.AddLatency(std::string(store) + ".get", r.get_latency);
    rep.AddLatency(std::string(store) + ".update", r.update_latency);
    rep.Metric(std::string(store) + ".miss_rate_pct", miss_rate);
    rep.Metric(std::string(store) + ".cached_keys_pct", frac_cached);
    rows.push_back({store, "GET", Fmt("%.2f", r.get_latency.PercentileUs(50)),
                    Fmt("%.2f", r.get_latency.PercentileUs(90)),
                    Fmt("%.2f", r.get_latency.PercentileUs(99)),
                    Fmt("%.2f", r.get_latency.MeanUs()), Fmt("%.1f%%", miss_rate),
                    Fmt("%.1f%%", frac_cached)});
    rows.push_back({store, "UPDATE", Fmt("%.2f", r.update_latency.PercentileUs(50)),
                    Fmt("%.2f", r.update_latency.PercentileUs(90)),
                    Fmt("%.2f", r.update_latency.PercentileUs(99)),
                    Fmt("%.2f", r.update_latency.MeanUs()), "", ""});
    cdfs.push_back(r.get_latency);
    cdf_names.push_back(std::string(store) + "/GET");
    cdfs.push_back(r.update_latency);
    cdf_names.push_back(std::string(store) + "/UPDATE");
  }
  PrintTable(rows);
  std::printf("\nPaper: caches cover 21.8%% (DM-ABD/FUSEE, 24B entries) vs 16.4%% (SWARM-KV, 32B);\n"
              "miss rates 42.5%% vs 45.6%%; bimodal latency; SWARM-KV keeps the best average.\n");
  PrintHeader("Figure 6 CDF series");
  for (size_t i = 0; i < cdfs.size(); ++i) {
    PrintCdf(cdf_names[i], cdfs[i]);
  }
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
