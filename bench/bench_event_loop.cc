// Event-core microbenchmark: host-side events/sec of the allocation-free
// tagged-event loop vs. the seed's std::function + std::priority_queue loop
// (replicated inline below as the baseline), plus end-to-end verbs/sec of a
// SWARM-KV run with doorbell batching on and off.
//
//   ./build/bench_event_loop [callback_events] [coroutine_resumes] [kv_ops]

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <vector>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/report.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace swarm::bench {
namespace {

// --- The seed's event loop, verbatim in shape: one std::function per event
// (heap-allocating whenever the capture outgrows the small-buffer
// optimization, i.e. for every fabric completion), in a std::priority_queue.
class LegacyLoop {
 public:
  sim::Time Now() const { return now_; }

  void At(sim::Time when, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    queue_.push(Event{when, seq_++, std::move(fn)});
  }

  void ResumeAt(sim::Time when, std::coroutine_handle<> h) {
    At(when, [h] { h.resume(); });
  }

  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++events_;
    ev.fn();
    return true;
  }

  void Run() {
    while (Step()) {
    }
  }

  uint64_t events() const { return events_; }

  auto Delay(sim::Time delay) {
    struct Awaiter {
      LegacyLoop* loop;
      sim::Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { loop->ResumeAt(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + (delay > 0 ? delay : 0)};
  }

 private:
  struct Event {
    sim::Time at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  sim::Time now_ = 0;
  uint64_t seq_ = 0;
  uint64_t events_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// The capture profile of a fabric completion callback: ~12 words of op state
// (node id, addresses, lengths, shared completion state, departure times).
struct Capture {
  uint64_t w[12];
};

// `chains` concurrent event chains, each rescheduling itself `per_chain`
// times with a fabric-sized capture — the steady-state shape of a
// replication benchmark's event queue.
template <typename Loop>
double CallbackChains(Loop* loop, int chains, uint64_t per_chain, uint64_t* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  struct Chain {
    Loop* loop;
    uint64_t left;
    uint64_t* sink;
    void Fire(const Capture& c) {
      *sink += c.w[0];
      if (left-- == 0) {
        return;
      }
      Capture next = c;
      next.w[0] ^= left;
      loop->At(loop->Now() + 1 + static_cast<sim::Time>(left & 7),
               [this, next] { Fire(next); });
    }
  };
  std::vector<Chain> state(static_cast<size_t>(chains));
  for (int c = 0; c < chains; ++c) {
    state[static_cast<size_t>(c)] = Chain{loop, per_chain, sink};
    Capture seed{};
    seed.w[0] = static_cast<uint64_t>(c);
    loop->At(static_cast<sim::Time>(c), [chain = &state[static_cast<size_t>(c)], seed] {
      chain->Fire(seed);
    });
  }
  loop->Run();
  return SecondsSince(t0);
}

template <typename Loop>
sim::Task<void> ResumeChain(Loop* loop, uint64_t iters, uint64_t* sink) {
  for (uint64_t i = 0; i < iters; ++i) {
    co_await loop->Delay(1 + static_cast<sim::Time>(i & 7));
    ++*sink;
  }
}

// `chains` coroutines ping-ponging through the scheduler — the ResumeAt fast
// path that dominates protocol execution.
template <typename Loop>
double CoroutineChains(Loop* loop, int chains, uint64_t per_chain, uint64_t* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < chains; ++c) {
    sim::Spawn(ResumeChain(loop, per_chain, sink));
  }
  loop->Run();
  return SecondsSince(t0);
}

RunResults KvRun(bool batching, uint64_t ops, uint64_t seed, uint64_t* events_out,
                 uint64_t* coroutine_events_out, fabric::FabricStats* stats_out,
                 double* wall_out) {
  HarnessConfig cfg;
  cfg.seed = seed;
  cfg.store = "swarm";
  cfg.fabric.doorbell_batching = batching;
  cfg.workload.num_keys = 10000;
  cfg.warmup_ops = ops / 4;
  cfg.measure_ops = ops;
  KvHarness harness(cfg);
  harness.Load();
  const uint64_t events_before = harness.sim().events_processed();
  const uint64_t coroutine_before = harness.sim().coroutine_events();
  const fabric::FabricStats before = harness.fabric().stats();
  const auto t0 = std::chrono::steady_clock::now();
  RunResults results = harness.Run();
  *wall_out = SecondsSince(t0);
  *events_out = harness.sim().events_processed() - events_before;
  *coroutine_events_out = harness.sim().coroutine_events() - coroutine_before;
  // Measure-phase delta, so Load/warmup traffic does not inflate the table.
  fabric::FabricStats delta = harness.fabric().stats();
  delta.ops_issued -= before.ops_issued;
  delta.bytes_to_nodes -= before.bytes_to_nodes;
  delta.bytes_from_nodes -= before.bytes_from_nodes;
  delta.casses -= before.casses;
  delta.reads -= before.reads;
  delta.writes -= before.writes;
  delta.doorbells -= before.doorbells;
  delta.doorbell_splits -= before.doorbell_splits;
  delta.batches -= before.batches;
  delta.batched_verbs -= before.batched_verbs;
  *stats_out = delta;
  return results;
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  const uint64_t callback_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const uint64_t coroutine_resumes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000000;
  const uint64_t kv_ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 40000;
  constexpr int kChains = 4096;
  uint64_t sink = 0;
  JsonReport rep("event_loop");
  rep.Label("callback_events", std::to_string(callback_events));
  rep.Label("coroutine_resumes", std::to_string(coroutine_resumes));
  rep.Label("kv_ops", std::to_string(kv_ops));

  PrintHeader("Event core: callback events (fabric-sized ~96 B captures)");
  LegacyLoop legacy_cb;
  const double legacy_cb_s =
      CallbackChains(&legacy_cb, kChains, callback_events / kChains, &sink);
  sim::Simulator tagged_cb;
  const double tagged_cb_s =
      CallbackChains(&tagged_cb, kChains, callback_events / kChains, &sink);
  const double legacy_cb_rate = static_cast<double>(legacy_cb.events()) / legacy_cb_s;
  const double tagged_cb_rate = static_cast<double>(tagged_cb.events_processed()) / tagged_cb_s;
  PrintTable({
      {"loop", "events", "wall_s", "events/sec"},
      {"std::function+priority_queue", FmtU(legacy_cb.events()), Fmt("%.3f", legacy_cb_s),
       Fmt("%.0f", legacy_cb_rate)},
      {"tagged-event slab heap", FmtU(tagged_cb.events_processed()), Fmt("%.3f", tagged_cb_s),
       Fmt("%.0f", tagged_cb_rate)},
      {"speedup", "", "", Fmt("%.2fx", tagged_cb_rate / legacy_cb_rate)},
  });
  rep.AddEventLoop("cb.legacy", legacy_cb.events(), 0, legacy_cb_s);
  rep.AddEventLoop("cb.tagged", tagged_cb.events_processed(), tagged_cb.coroutine_events(),
                   tagged_cb_s);
  rep.Metric("host_cb.speedup", tagged_cb_rate / legacy_cb_rate);

  PrintHeader("Event core: coroutine resumes (ResumeAt fast path)");
  LegacyLoop legacy_co;
  const double legacy_co_s =
      CoroutineChains(&legacy_co, kChains, coroutine_resumes / kChains, &sink);
  sim::Simulator tagged_co;
  const double tagged_co_s =
      CoroutineChains(&tagged_co, kChains, coroutine_resumes / kChains, &sink);
  const double legacy_co_rate = static_cast<double>(legacy_co.events()) / legacy_co_s;
  const double tagged_co_rate = static_cast<double>(tagged_co.events_processed()) / tagged_co_s;
  PrintTable({
      {"loop", "events", "wall_s", "events/sec"},
      {"std::function+priority_queue", FmtU(legacy_co.events()), Fmt("%.3f", legacy_co_s),
       Fmt("%.0f", legacy_co_rate)},
      {"tagged-event slab heap", FmtU(tagged_co.events_processed()), Fmt("%.3f", tagged_co_s),
       Fmt("%.0f", tagged_co_rate)},
      {"speedup", "", "", Fmt("%.2fx", tagged_co_rate / legacy_co_rate)},
  });
  rep.AddEventLoop("co.legacy", legacy_co.events(), 0, legacy_co_s);
  rep.AddEventLoop("co.tagged", tagged_co.events_processed(), tagged_co.coroutine_events(),
                   tagged_co_s);
  rep.Metric("host_co.speedup", tagged_co_rate / legacy_co_rate);

  PrintHeader("SWARM-KV (YCSB-B) with doorbell batching off vs. on");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"batching", "Mops/s(virt)", "p50 get us", "p50 upd us", "doorbells",
                  "verbs/batch", "host events/s"});
  for (bool batching : {false, true}) {
    uint64_t events = 0;
    uint64_t coroutine_events = 0;
    fabric::FabricStats stats;
    double wall = 0;
    RunResults r = KvRun(batching, kv_ops, 1, &events, &coroutine_events, &stats, &wall);
    // This section sweeps batching EXPLICITLY (labeled per row/key); the
    // global --paper-calibration regime does not apply to it.
    const std::string key = batching ? "kv.batch_on" : "kv.batch_off";
    rep.Metric(key + ".tput_mops", r.ThroughputMops());
    rep.Metric(key + ".get_p50_us", r.get_latency.PercentileUs(50));
    rep.Metric(key + ".update_p50_us", r.update_latency.PercentileUs(50));
    rep.AddBatchStats(key, stats);
    rep.AddEventLoop(key, events, coroutine_events, wall);
    rows.push_back({batching ? "on" : "off", Fmt("%.3f", r.ThroughputMops()),
                    Fmt("%.2f", r.get_latency.PercentileUs(50)),
                    Fmt("%.2f", r.update_latency.PercentileUs(50)), FmtU(stats.doorbells),
                    Fmt("%.2f", stats.verbs_per_batch()),
                    Fmt("%.0f", static_cast<double>(events) / wall)});
    std::printf("batching=%-3s %s | %s\n", batching ? "on" : "off",
                EventLoopSummary(events, coroutine_events, wall).c_str(),
                BatchSummary(stats).c_str());
  }
  PrintTable(rows);
  std::printf("\n(sink=%llu)\n", static_cast<unsigned long long>(sink));
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
