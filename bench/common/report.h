// Plain-text reporting helpers: aligned tables, latency summaries, CDF
// series — the textual equivalents of the paper's tables and figures.

#ifndef SWARM_BENCH_COMMON_REPORT_H_
#define SWARM_BENCH_COMMON_REPORT_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace swarm::bench {

inline void PrintRule(size_t width = 86) {
  std::string rule(width, '-');
  std::printf("%s\n", rule.c_str());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

// Prints rows of pre-formatted cells with aligned columns.
inline void PrintTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return;
  }
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtU(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// One-line latency summary: median / p1 / p99 / mean in microseconds.
inline std::string LatencySummary(const stats::LatencyHistogram& h) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%6.2fus p1=%6.2fus p99=%6.2fus mean=%6.2fus n=%llu",
                h.PercentileUs(50), h.PercentileUs(1), h.PercentileUs(99), h.MeanUs(),
                static_cast<unsigned long long>(h.count()));
  return buf;
}

// CDF as rows of "latency_us percentile" (plottable with any tool).
inline void PrintCdf(const std::string& name, const stats::LatencyHistogram& h,
                     size_t max_points = 40) {
  std::printf("# CDF %s (latency_us -> percentile)\n", name.c_str());
  for (const auto& [us, pct] : h.Cdf(max_points)) {
    std::printf("  %-10s %8.2f %7.2f\n", name.c_str(), us, pct);
  }
}

// One-line event-loop summary: events processed, coroutine/callback split,
// and host-side events/sec over `wall_seconds` (pass the measured phase's
// event delta and wall time).
inline std::string EventLoopSummary(uint64_t events, uint64_t coroutine_events,
                                    double wall_seconds) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "events=%llu (%.0f%% coroutine) rate=%.2fM events/s",
                static_cast<unsigned long long>(events),
                events == 0 ? 0.0
                            : 100.0 * static_cast<double>(coroutine_events) /
                                  static_cast<double>(events),
                wall_seconds <= 0 ? 0.0 : static_cast<double>(events) / wall_seconds / 1e6);
  return buf;
}

// One-line doorbell summary: submit charges, batches, and verbs per batch.
inline std::string BatchSummary(const fabric::FabricStats& st) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "doorbells=%llu batches=%llu batched_verbs=%llu (%.2f verbs/batch)",
                static_cast<unsigned long long>(st.doorbells),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.batched_verbs), st.verbs_per_batch());
  return buf;
}

// Roundtrip distribution: "rtts: share%".
inline std::string RttMix(const std::map<int, uint64_t>& rtts) {
  uint64_t total = 0;
  for (const auto& [k, v] : rtts) {
    total += v;
  }
  std::string out;
  for (const auto& [k, v] : rtts) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%d:%5.1f%% ", k,
                  100.0 * static_cast<double>(v) / static_cast<double>(total == 0 ? 1 : total));
    out += buf;
  }
  return out;
}

// Common-case (mode) and tail (p99) roundtrip counts, Table-2 style.
inline std::pair<int, int> RttCommonAndP99(const std::map<int, uint64_t>& rtts) {
  uint64_t total = 0;
  uint64_t best = 0;
  int common = 0;
  for (const auto& [k, v] : rtts) {
    total += v;
    if (v > best) {
      best = v;
      common = k;
    }
  }
  uint64_t seen = 0;
  int p99 = common;
  for (const auto& [k, v] : rtts) {
    seen += v;
    if (static_cast<double>(seen) >= 0.99 * static_cast<double>(total)) {
      p99 = k;
      break;
    }
  }
  return {common, p99};
}

}  // namespace swarm::bench

#endif  // SWARM_BENCH_COMMON_REPORT_H_
