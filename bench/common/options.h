// Benchmark-scale knobs, overridable from the environment so the whole suite
// can be dialed up to paper-scale op counts (SWARM_BENCH_OPS=1000000) or down
// for a quick smoke run.

#ifndef SWARM_BENCH_COMMON_OPTIONS_H_
#define SWARM_BENCH_COMMON_OPTIONS_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace swarm::bench {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

// Measured operations per experiment point (paper: 1M; default here keeps
// the full suite fast while leaving distributions stable).
inline uint64_t MeasureOps() { return EnvU64("SWARM_BENCH_OPS", 120000); }
inline uint64_t WarmupOps() { return EnvU64("SWARM_BENCH_WARMUP", 60000); }

}  // namespace swarm::bench

#endif  // SWARM_BENCH_COMMON_OPTIONS_H_
