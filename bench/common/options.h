// Benchmark-scale knobs, overridable from the environment so the whole suite
// can be dialed up to paper-scale op counts (SWARM_BENCH_OPS=1000000) or down
// for a quick smoke run.

#ifndef SWARM_BENCH_COMMON_OPTIONS_H_
#define SWARM_BENCH_COMMON_OPTIONS_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace swarm::bench {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

// Measured operations per experiment point (paper: 1M; default here keeps
// the full suite fast while leaving distributions stable).
inline uint64_t MeasureOps() { return EnvU64("SWARM_BENCH_OPS", 120000); }
inline uint64_t WarmupOps() { return EnvU64("SWARM_BENCH_WARMUP", 60000); }

// Calibration regime. Default ("batched") models the optimized client —
// doorbell batching on, submit_cost charged once per doorbell. The paper
// regime ("paper") turns doorbell batching OFF so every verb pays its own
// submit_cost, matching the per-series accounting the paper's absolute
// numbers are calibrated against (§7.2 charges each series of RDMA requests
// individually). Benches must not mix regimes within one run: the harness
// applies the flag globally, and any bench that sweeps batching itself (the
// event-loop ablation) does so explicitly and labels each row.
inline bool& PaperCalibrationFlag() {
  static bool flag = []() {
    const char* v = std::getenv("SWARM_PAPER_CALIBRATION");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return flag;
}
inline bool PaperCalibration() { return PaperCalibrationFlag(); }

// Shared argv handling for bench mains: recognizes --paper-calibration,
// compacts it out of argv (so positional args keep their indices), and
// returns the number of flags consumed. argc is updated in place.
inline int ParseBenchFlags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--paper-calibration") {
      PaperCalibrationFlag() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  const int consumed = argc - out;
  argc = out;
  return consumed;
}

}  // namespace swarm::bench

#endif  // SWARM_BENCH_COMMON_OPTIONS_H_
