// Shared benchmark harness: wires a simulated fabric, index, membership,
// clients and workers to one of the four KV stores, loads keys, runs YCSB
// phases, and collects per-operation statistics.
//
// Defaults mirror the paper's setup (§7): 4 memory nodes, 3 replicas, 100 K
// keys of 64 B values, 4 clients with one outstanding operation each,
// Zipfian(.99), warm-up then measurement, caches large enough for all keys.

#ifndef SWARM_BENCH_COMMON_HARNESS_H_
#define SWARM_BENCH_COMMON_HARNESS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common/options.h"
#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/dm_abd_kv.h"
#include "src/kv/fusee_kv.h"
#include "src/kv/raw_kv.h"
#include "src/kv/swarm_kv.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"
#include "src/ycsb/workload.h"

namespace swarm::bench {

struct HarnessConfig {
  uint64_t seed = 1;
  std::string store = "swarm";  // swarm | raw | dmabd | fusee
  fabric::FabricConfig fabric;
  ProtocolConfig proto;
  ycsb::WorkloadConfig workload;
  int num_clients = 4;
  int workers_per_client = 1;  // Concurrent operations per client (§7.2).
  // Index sharding (consistent hash of key): shards > 1 splits the service
  // into independent shards and segments every client cache to match. The
  // per-shard service occupancy models a real index server's serialization
  // (0 keeps index ops latency-only, the pre-sharding behavior).
  int index_shards = 1;
  sim::Time index_shard_service_time = 0;
  uint64_t warmup_ops = 100000;
  uint64_t measure_ops = 100000;
  size_t cache_capacity = 0;  // Entries; 0 = unbounded.
  int64_t max_clock_skew_ns = 400;  // Clients draw skew uniformly in ±this.
  // Fill every client's cache with all key locations after loading,
  // emulating the paper's "index caches large enough to cache all key
  // locations" after a long warm-up. Ignored for bounded caches.
  bool prewarm_caches = true;

  HarnessConfig() {
    fabric.num_nodes = 4;
    fabric.node_capacity_bytes = 2ull << 30;
    // Regime is global (see options.h): under --paper-calibration every verb
    // pays its own submit_cost, so no bench silently mixes batched and
    // unbatched points in one trajectory.
    if (PaperCalibration()) {
      fabric.doorbell_batching = false;
    }
    proto.replicas = 3;
    proto.max_value = workload.value_size;
    // 0 = auto: one In-n-Out metadata buffer per writer (§7.9's recommended
    // configuration) and one timestamp lock per writer.
    proto.meta_slots = 0;
    proto.max_writers = 0;
  }
};

struct RunResults {
  stats::LatencyHistogram get_latency;
  stats::LatencyHistogram update_latency;
  std::map<int, uint64_t> get_rtts;     // roundtrips -> count
  std::map<int, uint64_t> update_rtts;
  uint64_t gets = 0;
  uint64_t updates = 0;
  uint64_t get_inplace = 0;
  uint64_t not_found = 0;
  uint64_t unavailable = 0;
  sim::Time measure_duration = 0;
  double ThroughputMops() const {
    return measure_duration == 0
               ? 0.0
               : static_cast<double>(gets + updates) / sim::ToSeconds(measure_duration) / 1e6;
  }

  // Resource accounting deltas over the measurement phase.
  uint64_t fabric_bytes = 0;
  sim::Time cpu_busy = 0;
  sim::Time cpu_wall = 0;  // measure_duration * clients (for utilization).
};

class KvHarness {
 public:
  explicit KvHarness(HarnessConfig cfg);

  // Inserts all keys (version 0 values) and drains the simulator.
  void Load();

  // Runs warm-up + measurement; returns per-op statistics.
  RunResults Run();

  // Optional per-measured-op hook (e.g. Fig. 11's availability timeline):
  // called with (virtual completion time, op type, latency, result).
  using OpHook = std::function<void(sim::Time, ycsb::OpType, sim::Time, const kv::KvResult&)>;
  void set_op_hook(OpHook hook) { op_hook_ = std::move(hook); }

  sim::Simulator& sim() { return *sim_; }
  fabric::Fabric& fabric() { return *fabric_; }
  index::IndexService& index() { return *index_; }
  membership::MembershipService& membership() { return *membership_; }
  kv::FuseeStore& fusee_store() { return *fusee_; }
  const HarnessConfig& config() const { return cfg_; }

  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  kv::KvSession& session(int i) { return *sessions_[static_cast<size_t>(i)]; }
  index::ClientCache& client_cache(int c) { return *caches_[static_cast<size_t>(c)]; }

  // Aggregate modeled client-cache bytes (Table 3).
  uint64_t TotalCacheBytes() const;
  // Total clock re-synchronizations across all workers (§6).
  uint64_t TotalClockResyncs() const;
  // Aggregate client CPU busy-ns since the last reset.
  sim::Time TotalCpuBusy() const;
  void ResetCpu();

 private:
  void BuildClients();
  void PrewarmCaches();
  sim::Task<void> WorkerLoop(int session_idx, uint64_t warmup, uint64_t measured);
  sim::Task<void> LoadRange(int session_idx, uint64_t first, uint64_t last);

  HarnessConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<index::IndexService> index_;
  std::unique_ptr<membership::MembershipService> membership_;
  std::unique_ptr<kv::FuseeStore> fusee_;

  std::vector<std::unique_ptr<fabric::ClientCpu>> cpus_;
  std::vector<std::unique_ptr<index::ClientCache>> caches_;
  std::vector<std::unique_ptr<GuessClock>> clocks_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<kv::KvSession>> sessions_;
  std::vector<std::unique_ptr<ycsb::Workload>> workloads_;

  RunResults results_;
  bool measuring_ = false;
  uint64_t version_counter_ = 1;
  OpHook op_hook_;
};

}  // namespace swarm::bench

#endif  // SWARM_BENCH_COMMON_HARNESS_H_
