#include "bench/common/harness.h"

#include <algorithm>

#include "src/sim/task.h"

namespace swarm::bench {

KvHarness::KvHarness(HarnessConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.proto.max_value = std::max(cfg_.proto.max_value, cfg_.workload.value_size);
  const int total_workers = cfg_.num_clients * cfg_.workers_per_client;
  if (cfg_.proto.max_writers <= 0) {
    cfg_.proto.max_writers = std::min(total_workers, static_cast<int>(kMaxTid) + 1);
  }
  if (cfg_.proto.meta_slots <= 0) {
    cfg_.proto.meta_slots = std::min(total_workers, 64);
  }
  sim_ = std::make_unique<sim::Simulator>(cfg_.seed);
  fabric_ = std::make_unique<fabric::Fabric>(sim_.get(), cfg_.fabric);
  index_ = std::make_unique<index::IndexService>(sim_.get(), fabric_.get(),
                                                 cfg_.fabric.one_way_delay,
                                                 cfg_.fabric.delay_jitter, cfg_.fabric.submit_cost,
                                                 cfg_.index_shards);
  index_->set_shard_service_time(cfg_.index_shard_service_time);
  membership_ = std::make_unique<membership::MembershipService>(sim_.get(), fabric_.get());
  fusee_ = std::make_unique<kv::FuseeStore>(fabric_.get());
  BuildClients();
}

void KvHarness::BuildClients() {
  uint32_t tid = 0;
  for (int c = 0; c < cfg_.num_clients; ++c) {
    cpus_.push_back(std::make_unique<fabric::ClientCpu>(sim_.get()));
    caches_.push_back(std::make_unique<index::ClientCache>(
        cfg_.cache_capacity, cfg_.store == "swarm" ? 32 : 24, cfg_.seed + static_cast<uint64_t>(c),
        cfg_.index_shards));
    const int64_t max_skew = cfg_.max_clock_skew_ns;
    const int64_t skew = max_skew > 0 ? sim_->rng().Range(-max_skew, max_skew) : 0;
    auto known_failed = std::make_shared<std::vector<bool>>(
        static_cast<size_t>(cfg_.fabric.num_nodes), false);
    membership_->Subscribe(known_failed);
    // One membership-epoch stamp per client process, shared by its workers:
    // bench verbs ride the same epoch-fenced path as production clients
    // instead of stamping kNoFenceEpoch (which no fence ever rejects).
    auto epoch = std::make_shared<fabric::ClientEpoch>();
    epoch->value = membership_->epoch();
    membership_->SubscribeEpoch(epoch);
    for (int w = 0; w < cfg_.workers_per_client; ++w) {
      clocks_.push_back(std::make_unique<GuessClock>(sim_.get(), skew));
      workers_.push_back(std::make_unique<Worker>(fabric_.get(), tid, cpus_.back().get(),
                                                  clocks_.back().get(), cfg_.proto, known_failed));
      Worker* worker = workers_.back().get();
      worker->set_epoch(epoch);
      worker->set_epoch_source(
          [ms = membership_.get()] { return ms->ValidateEpoch(); });
      index::ClientCache* cache = caches_.back().get();
      if (cfg_.store == "swarm") {
        sessions_.push_back(std::make_unique<kv::SwarmKvSession>(worker, index_.get(), cache));
      } else if (cfg_.store == "raw") {
        sessions_.push_back(std::make_unique<kv::RawKvSession>(worker, index_.get(), cache));
      } else if (cfg_.store == "dmabd") {
        sessions_.push_back(std::make_unique<kv::DmAbdKvSession>(worker, index_.get(), cache));
      } else {
        sessions_.push_back(std::make_unique<kv::FuseeKvSession>(worker, fusee_.get(), cache));
      }
      workloads_.push_back(std::make_unique<ycsb::Workload>(
          cfg_.workload, cfg_.seed * 7919 + static_cast<uint64_t>(tid)));
      ++tid;
    }
  }
}

sim::Task<void> KvHarness::LoadRange(int session_idx, uint64_t first, uint64_t last) {
  ycsb::Workload& wl = *workloads_[static_cast<size_t>(session_idx)];
  kv::KvSession& kv = session(session_idx);
  for (uint64_t key = first; key < last; ++key) {
    (void)co_await kv.Insert(key, wl.ValueFor(key, 0));
  }
}

void KvHarness::Load() {
  const int n = num_sessions();
  const uint64_t keys = cfg_.workload.num_keys;
  const uint64_t share = (keys + static_cast<uint64_t>(n) - 1) / static_cast<uint64_t>(n);
  for (int s = 0; s < n; ++s) {
    const uint64_t first = static_cast<uint64_t>(s) * share;
    const uint64_t last = std::min(keys, first + share);
    if (first < last) {
      sim::Spawn(LoadRange(s, first, last));
    }
  }
  sim_->Run();
  if (cfg_.prewarm_caches && cfg_.cache_capacity == 0) {
    PrewarmCaches();
  }
}

void KvHarness::PrewarmCaches() {
  for (uint64_t key = 0; key < cfg_.workload.num_keys; ++key) {
    if (cfg_.store == "fusee") {
      kv::FuseeStore::KeyMeta& meta = fusee_->MetaFor(key);
      const uint64_t word = fabric_->node(meta.primary).LoadWord(meta.index_addr_primary);
      if (word == 0) {
        continue;
      }
      for (auto& cache : caches_) {
        index::CacheEntry entry;
        entry.generation = word;
        cache->Put(key, entry);
      }
      continue;
    }
    const index::IndexEntry* e = index_->Peek(key);
    if (e == nullptr) {
      continue;
    }
    for (auto& cache : caches_) {
      index::CacheEntry entry;
      entry.layout = e->layout;
      entry.generation = e->generation;
      cache->Put(key, entry);
    }
  }
}

sim::Task<void> KvHarness::WorkerLoop(int session_idx, uint64_t warmup, uint64_t measured) {
  ycsb::Workload& wl = *workloads_[static_cast<size_t>(session_idx)];
  kv::KvSession& kv = session(session_idx);
  for (uint64_t i = 0; i < warmup + measured; ++i) {
    const ycsb::Workload::Op op = wl.Next();
    const sim::Time start = sim_->Now();
    kv::KvResult result;
    if (op.type == ycsb::OpType::kGet) {
      result = co_await kv.Get(op.key);
    } else {
      result = co_await kv.Update(op.key, wl.ValueFor(op.key, version_counter_++));
    }
    const sim::Time latency = sim_->Now() - start;
    if (i < warmup || !measuring_) {
      continue;
    }
    if (op.type == ycsb::OpType::kGet) {
      results_.get_latency.Record(latency);
      results_.get_rtts[result.rtts]++;
      results_.gets++;
      results_.get_inplace += result.used_inplace ? 1 : 0;
    } else {
      results_.update_latency.Record(latency);
      results_.update_rtts[result.rtts]++;
      results_.updates++;
    }
    if (result.status == kv::KvStatus::kNotFound) {
      results_.not_found++;
    } else if (result.status == kv::KvStatus::kUnavailable) {
      results_.unavailable++;
    }
    if (op_hook_) {
      op_hook_(sim_->Now(), op.type, latency, result);
    }
  }
}

RunResults KvHarness::Run() {
  results_ = RunResults{};
  const int n = num_sessions();
  const uint64_t warmup_each = cfg_.warmup_ops / static_cast<uint64_t>(n);
  const uint64_t measured_each = cfg_.measure_ops / static_cast<uint64_t>(n);

  // Warm-up phase (caches, in-place data, clock skews settle).
  measuring_ = false;
  if (warmup_each > 0) {
    for (int s = 0; s < n; ++s) {
      sim::Spawn(WorkerLoop(s, warmup_each, 0));
    }
    sim_->Run();
  }

  // Measurement phase.
  measuring_ = true;
  const uint64_t fabric_bytes_before = fabric_->stats().total_io();
  ResetCpu();
  const sim::Time start = sim_->Now();
  for (int s = 0; s < n; ++s) {
    sim::Spawn(WorkerLoop(s, 0, measured_each));
  }
  sim_->Run();
  results_.measure_duration = sim_->Now() - start;
  results_.fabric_bytes = fabric_->stats().total_io() - fabric_bytes_before;
  results_.cpu_busy = TotalCpuBusy();
  results_.cpu_wall = results_.measure_duration * cfg_.num_clients;
  return results_;
}

uint64_t KvHarness::TotalClockResyncs() const {
  uint64_t total = 0;
  for (const auto& c : clocks_) {
    total += c->resyncs();
  }
  return total;
}

uint64_t KvHarness::TotalCacheBytes() const {
  uint64_t total = 0;
  for (const auto& c : caches_) {
    total += c->ModeledBytes();
  }
  return total;
}

sim::Time KvHarness::TotalCpuBusy() const {
  sim::Time total = 0;
  for (const auto& c : cpus_) {
    total += c->busy_ns();
  }
  return total;
}

void KvHarness::ResetCpu() {
  for (auto& c : cpus_) {
    c->ResetBusy();
  }
}

}  // namespace swarm::bench
