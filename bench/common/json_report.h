// Machine-readable benchmark output: every bench binary emits one
// BENCH_<name>.json next to its human-readable tables, holding a flat
// metric map plus a config fingerprint. The committed copies under
// bench/baselines/ form the repo's tracked performance trajectory;
// .github/workflows CI re-runs the benches and diffs fresh output against
// the baselines with per-metric thresholds (see bench/README.md for the
// schema, the update workflow, and the thresholds).
//
// Conventions the regression checker relies on:
//  * Metric keys are flat dotted paths ("swarm.c1.tput_mops"). Insertion
//    order is preserved, so output is byte-stable for unchanged code.
//  * Virtual-time metrics (throughput, latency percentiles, doorbells,
//    roundtrips) are DETERMINISTIC for a fixed seed + op count: they are
//    the gated trajectory.
//  * Keys starting with "host_" (wall-clock rates, host seconds) vary by
//    machine: emitted for the record, never gated.
//  * The "config" block labels the regime (calibration mode, op counts,
//    seed); the checker refuses to compare files whose fingerprints differ.

#ifndef SWARM_BENCH_COMMON_JSON_REPORT_H_
#define SWARM_BENCH_COMMON_JSON_REPORT_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common/options.h"
#include "src/fabric/fabric.h"
#include "src/stats/histogram.h"

namespace swarm::bench {

class JsonReport {
 public:
  // `name` identifies the bench ("fig7_tput_latency"): the file is written
  // as BENCH_<name>.json (default regime) or BENCH_<name>.paper.json
  // (--paper-calibration), so both regimes' trajectories coexist.
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    Label("calibration", PaperCalibration() ? "paper" : "batched");
    Label("measure_ops", std::to_string(MeasureOps()));
    Label("warmup_ops", std::to_string(WarmupOps()));
  }

  void Label(const std::string& key, const std::string& value) {
    labels_.emplace_back(key, value);
  }

  void Metric(const std::string& key, double value) { metrics_.emplace_back(key, value); }
  void MetricU(const std::string& key, uint64_t value) {
    Metric(key, static_cast<double>(value));
  }

  // Latency percentiles under `prefix` (p50/p90/p99/mean, microseconds).
  void AddLatency(const std::string& prefix, const stats::LatencyHistogram& h) {
    Metric(prefix + ".p50_us", h.PercentileUs(50));
    Metric(prefix + ".p90_us", h.PercentileUs(90));
    Metric(prefix + ".p99_us", h.PercentileUs(99));
    Metric(prefix + ".mean_us", h.MeanUs());
    MetricU(prefix + ".count", h.count());
  }

  // Host-cost footer, EventLoopSummary's numbers: event counts are
  // deterministic (gated); the wall-clock rate is host_* (informational).
  void AddEventLoop(const std::string& prefix, uint64_t events, uint64_t coroutine_events,
                    double wall_seconds) {
    MetricU(prefix + ".events", events);
    MetricU(prefix + ".coroutine_events", coroutine_events);
    Metric("host_" + prefix + ".wall_s", wall_seconds);
    Metric("host_" + prefix + ".events_per_s",
           wall_seconds <= 0 ? 0.0 : static_cast<double>(events) / wall_seconds);
  }

  // Doorbell accounting, BatchSummary's numbers (all deterministic).
  void AddBatchStats(const std::string& prefix, const fabric::FabricStats& st) {
    MetricU(prefix + ".doorbells", st.doorbells);
    MetricU(prefix + ".doorbell_splits", st.doorbell_splits);
    MetricU(prefix + ".batches", st.batches);
    MetricU(prefix + ".batched_verbs", st.batched_verbs);
    Metric(prefix + ".verbs_per_batch", st.verbs_per_batch());
  }

  // Writes BENCH_<name>[.paper].json into SWARM_BENCH_JSON_DIR (default:
  // current directory). Returns false (with a note on stderr) on I/O error.
  bool Write() const {
    const char* dir = std::getenv("SWARM_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : std::string();
    path += "BENCH_" + name_ + (PaperCalibration() ? ".paper.json" : ".json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json report: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"schema\": 1,\n  \"config\": {\n",
                 Escaped(name_).c_str());
    for (size_t i = 0; i < labels_.size(); ++i) {
      std::fprintf(f, "    \"%s\": \"%s\"%s\n", Escaped(labels_[i].first).c_str(),
                   Escaped(labels_[i].second).c_str(), i + 1 < labels_.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"metrics\": {\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.10g%s\n", Escaped(metrics_[i].first).c_str(),
                   metrics_[i].second, i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), metrics_.size());
    return true;
  }

  size_t metric_count() const { return metrics_.size(); }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> labels_;
  std::vector<std::pair<std::string, double>> metrics_;
};

// Accumulates the per-binary host-cost footer across every harness a bench
// runs. Each KvHarness starts with zeroed counters, so `Add(harness)` after
// Run() folds in that harness's lifetime totals (load + warm-up + measure —
// the footer tracks what the whole binary costs, not one phase). Wall time
// spans from construction to Flush(). The event/doorbell counts are
// deterministic and gated; the wall-clock rate is host_* (informational).
class HostCostFooter {
 public:
  HostCostFooter() : t0_(std::chrono::steady_clock::now()) {}

  template <typename Harness>
  void Add(Harness& h) {
    events_ += h.sim().events_processed();
    coroutine_events_ += h.sim().coroutine_events();
    const fabric::FabricStats st = h.fabric().stats();
    stats_.doorbells += st.doorbells;
    stats_.doorbell_splits += st.doorbell_splits;
    stats_.batches += st.batches;
    stats_.batched_verbs += st.batched_verbs;
  }

  void Flush(JsonReport* rep) const {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
    rep->AddEventLoop("footer", events_, coroutine_events_, wall_s);
    rep->AddBatchStats("footer", stats_);
  }

 private:
  std::chrono::steady_clock::time_point t0_;
  uint64_t events_ = 0;
  uint64_t coroutine_events_ = 0;
  fabric::FabricStats stats_;
};

}  // namespace swarm::bench

#endif  // SWARM_BENCH_COMMON_JSON_REPORT_H_
