// Figure 7: per-core throughput vs latency of SWARM-KV and DM-ABD with YCSB
// A and B (Zipfian), 4 clients, as the number of concurrent operations per
// client grows from 1 to 8.
//
// The paper observes large throughput gains up to ~3 concurrent operations
// with little latency impact, then a throughput-latency wall as the client
// CPU bottlenecks on submitting series of RDMA requests (200+ ns each).

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig7_tput_latency");
  HostCostFooter footer;
  PrintHeader("Figure 7: per-core throughput-latency, 1..8 concurrent ops, 4 clients");
  for (const bool workload_a : {true, false}) {
    std::printf("\n== YCSB %s - Zipfian ==\n", workload_a ? "A (50/50)" : "B (95/5)");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"system", "concurrent", "tput_kops", "avg_latency_us", "get_p50_us",
                    "update_p50_us"});
    for (const char* store : {"swarm", "dmabd"}) {
      for (int conc = 1; conc <= 8; ++conc) {
        HarnessConfig cfg;
        cfg.store = store;
        cfg.workload = workload_a ? ycsb::WorkloadA(100000, 64) : ycsb::WorkloadB(100000, 64);
        cfg.num_clients = 4;
        cfg.workers_per_client = conc;
        cfg.warmup_ops = WarmupOps() / 2;
        cfg.measure_ops = MeasureOps() / 2;
        KvHarness harness(cfg);
        harness.Load();
        RunResults r = harness.Run();
        stats::LatencyHistogram all = r.get_latency;
        all.Merge(r.update_latency);
        const double per_client_kops =
            r.ThroughputMops() * 1e3 / static_cast<double>(cfg.num_clients);
        footer.Add(harness);
        const std::string key =
            std::string(store) + (workload_a ? ".a" : ".b") + ".c" + std::to_string(conc);
        rep.Metric(key + ".tput_kops_per_client", per_client_kops);
        rep.Metric(key + ".mean_us", all.MeanUs());
        rep.Metric(key + ".get_p50_us", r.get_latency.PercentileUs(50));
        rep.Metric(key + ".update_p50_us", r.update_latency.PercentileUs(50));
        rows.push_back({store, FmtU(static_cast<uint64_t>(conc)), Fmt("%.0f", per_client_kops),
                        Fmt("%.2f", all.MeanUs()), Fmt("%.2f", r.get_latency.PercentileUs(50)),
                        Fmt("%.2f", r.update_latency.PercentileUs(50))});
      }
    }
    PrintTable(rows);
  }
  std::printf("\nPaper (YCSB A, SWARM-KV): 1 op 2.7us @264kops; 2 ops 2.8us @499kops; 3 ops\n"
              "3.4us @609kops; wall at ~640kops with ~+1us per extra op. YCSB B: 2.4us\n"
              "@389kops -> 1030kops with 5 ops.\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
