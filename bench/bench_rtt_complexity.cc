// Roundtrip-complexity microbenchmarks (Appendices A.2, B.2, C.3) and
// simulator-throughput measurements, using google-benchmark.
//
// Each benchmark drives one protocol primitive in a fresh simulated fabric
// and reports, as counters, the primitive's virtual-time latency and its
// roundtrip count — the quantities the paper's appendices bound analytically:
//   * reliable max-register write: 1 RT; read: 1 RT common / 2 RT repair,
//   * TRYLOCK: 1 RT uncontended, up to ts+1 in theory,
//   * Safe-Guess write: 1 RT fast path, and read: 1 RT on VERIFIED data.
// Wall-clock time per iteration measures the discrete-event engine itself.
//
// The probes are deterministic (fixed seed, fresh env per run), so main()
// first runs each ONCE and emits BENCH_rtt_complexity.json — the appendix
// bounds become part of the gated perf trajectory (an rtt count moving in
// either direction is a protocol change) — then hands argv to
// google-benchmark for the wall-clock fits (never gated; CI skips them with
// --benchmark_filter).

#include <benchmark/benchmark.h>

#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/swarm/abd.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/safe_guess.h"
#include "src/swarm/timestamp_lock.h"
#include "tests/support/test_env.h"
#include "src/util/discard.h"

namespace swarm {
namespace {

using testing::TestEnv;
using testing::ValN;

struct Probe {
  sim::Time latency = 0;
  int rtts = 0;
};

template <typename Fn>
Probe RunProbe(TestEnv& env, Fn body) {
  Probe probe;
  sim::Spawn(body(&probe));
  env.sim.Run();
  return probe;
}

Probe ProbeQuorumMaxWrite() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();
  auto body = [&](Probe* p) -> sim::Task<void> {
    QuorumMax reg(&w, &layout, cache);
    // Warm the slot caches with one write, then measure the steady state.
    swarm::DiscardStatus(co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), ValN(64, 1)));
    const sim::Time start = env.sim.Now();
    WriteReadOutcome out = co_await reg.WriteAndRead(Meta::Pack(20, 0, false, 0), ValN(64, 2));
    p->latency = env.sim.Now() - start;
    p->rtts = out.rtts;
  };
  return RunProbe(env, body);
}

Probe ProbeQuorumMaxReadFast() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();
  auto body = [&](Probe* p) -> sim::Task<void> {
    QuorumMax reg(&w, &layout, cache);
    WriteReadOutcome wr = co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), ValN(64, 1));
    co_await QuorumMax::Promote(&w, &layout, wr.installed, ValN(64, 1));
    co_await env.sim.Delay(20000);
    const sim::Time start = env.sim.Now();
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    p->latency = env.sim.Now() - start;
    p->rtts = rd.rtts;
  };
  return RunProbe(env, body);
}

Probe ProbeQuorumMaxReadRepair() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  Worker& rdr = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto body = [&](Probe* p) -> sim::Task<void> {
    // Value at a single replica: the read must chase + write back.
    InOutReplica rep(&w, &layout, 1);
    Meta cache;
    swarm::DiscardStatus(co_await rep.WriteMax(Meta::Pack(50, 0, false, 0), ValN(64, 1), &cache));
    QuorumMax reg(&rdr, &layout, std::make_shared<ObjectCache>());
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    p->rtts = rd.rtts;
  };
  return RunProbe(env, body);
}

Probe ProbeTryLockUncontended() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto body = [&](Probe* p) -> sim::Task<void> {
    TimestampLock lock(&w, &layout, 0);
    TryLockResult r = co_await lock.TryLock(42, LockMode::kWrite);
    p->rtts = r.rtts;
  };
  return RunProbe(env, body);
}

Probe ProbeSafeGuessWriteFastPath() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();
  auto body = [&](Probe* p) -> sim::Task<void> {
    SafeGuessObject obj(&w, &layout, cache);
    swarm::DiscardStatus(co_await obj.Write(ValN(64, 1)));
    co_await env.sim.Delay(20000);
    const sim::Time start = env.sim.Now();
    SgWriteResult r = co_await obj.Write(ValN(64, 2));
    p->latency = env.sim.Now() - start;
    p->rtts = r.rtts;
  };
  return RunProbe(env, body);
}

Probe ProbeSafeGuessReadVerified() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();
  auto body = [&](Probe* p) -> sim::Task<void> {
    SafeGuessObject obj(&w, &layout, cache);
    swarm::DiscardStatus(co_await obj.Write(ValN(64, 1)));
    co_await env.sim.Delay(20000);
    const sim::Time start = env.sim.Now();
    SgReadResult r = co_await obj.Read();
    p->latency = env.sim.Now() - start;
    p->rtts = r.rtts;
  };
  return RunProbe(env, body);
}

// Guessed timestamps (Safe-Guess) vs discovered timestamps (ABD needs a read
// before installing): latency is the fast-path write time of each, in ns.
// Returned as {sg_latency, abd_latency_in_rtts-field} — see callers.
std::pair<sim::Time, sim::Time> ProbeGuessVsDiscover() {
  TestEnv env(42);
  Worker& w = env.MakeWorker();
  ObjectLayout sg_layout = env.MakeObject();
  std::vector<int> nodes{0, 1, 2};
  ObjectLayout abd_layout = AllocateObject(env.fabric, nodes.data(), 3, 1, 1, 64, 0);
  sim::Time sg_lat = 0;
  sim::Time abd_lat = 0;
  auto body = [&](Probe*) -> sim::Task<void> {
    SafeGuessObject obj(&w, &sg_layout, std::make_shared<ObjectCache>());
    swarm::DiscardStatus(co_await obj.Write(ValN(64, 1)));
    sim::Time start = env.sim.Now();
    swarm::DiscardStatus(co_await obj.Write(ValN(64, 2)));
    sg_lat = env.sim.Now() - start;

    AbdObject abd_obj(&w, &abd_layout, std::make_shared<ObjectCache>());
    swarm::DiscardStatus(co_await abd_obj.Write(ValN(64, 1)));
    start = env.sim.Now();
    swarm::DiscardStatus(co_await abd_obj.Write(ValN(64, 2)));
    abd_lat = env.sim.Now() - start;
  };
  Probe p;
  sim::Spawn(body(&p));
  env.sim.Run();
  return {sg_lat, abd_lat};
}

// One deterministic pass over every probe -> BENCH_rtt_complexity.json.
// Roundtrip counts carry the appendix bounds; the virtual-time latencies are
// the same numbers the BM_ counters report.
void EmitJsonReport() {
  bench::JsonReport rep("rtt_complexity");

  const Probe qw = ProbeQuorumMaxWrite();
  rep.MetricU("quorum_max.write.rtts", static_cast<uint64_t>(qw.rtts));
  rep.Metric("quorum_max.write.virtual_us", static_cast<double>(qw.latency) / 1e3);

  const Probe qr = ProbeQuorumMaxReadFast();
  rep.MetricU("quorum_max.read_fast.rtts", static_cast<uint64_t>(qr.rtts));
  rep.Metric("quorum_max.read_fast.virtual_us", static_cast<double>(qr.latency) / 1e3);

  const Probe rr = ProbeQuorumMaxReadRepair();
  rep.MetricU("quorum_max.read_repair.rtts", static_cast<uint64_t>(rr.rtts));

  const Probe tl = ProbeTryLockUncontended();
  rep.MetricU("trylock.uncontended.rtts", static_cast<uint64_t>(tl.rtts));

  const Probe sw = ProbeSafeGuessWriteFastPath();
  rep.MetricU("safe_guess.write_fast.rtts", static_cast<uint64_t>(sw.rtts));
  rep.Metric("safe_guess.write_fast.virtual_us", static_cast<double>(sw.latency) / 1e3);

  const Probe sr = ProbeSafeGuessReadVerified();
  rep.MetricU("safe_guess.read_verified.rtts", static_cast<uint64_t>(sr.rtts));
  rep.Metric("safe_guess.read_verified.virtual_us", static_cast<double>(sr.latency) / 1e3);

  const auto [sg_lat, abd_lat] = ProbeGuessVsDiscover();
  rep.Metric("ablation.safe_guess_write_us", static_cast<double>(sg_lat) / 1e3);
  rep.Metric("ablation.abd_write_us", static_cast<double>(abd_lat) / 1e3);

  rep.Write();
}

void BM_QuorumMaxWrite(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    Probe p = ProbeQuorumMaxWrite();
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_QuorumMaxWrite);

void BM_QuorumMaxReadFast(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    Probe p = ProbeQuorumMaxReadFast();
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_QuorumMaxReadFast);

void BM_QuorumMaxReadRepair(benchmark::State& state) {
  double rtts = 0;
  for (auto _ : state) {
    rtts += ProbeQuorumMaxReadRepair().rtts;
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
}
BENCHMARK(BM_QuorumMaxReadRepair);

void BM_TryLockUncontended(benchmark::State& state) {
  double rtts = 0;
  for (auto _ : state) {
    rtts += ProbeTryLockUncontended().rtts;
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TryLockUncontended);

void BM_SafeGuessWriteFastPath(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    Probe p = ProbeSafeGuessWriteFastPath();
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SafeGuessWriteFastPath);

void BM_SafeGuessReadVerified(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    Probe p = ProbeSafeGuessReadVerified();
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SafeGuessReadVerified);

// Ablation: guessed timestamps (Safe-Guess) vs discovered timestamps (ABD
// needs a read before installing). Reported as the fast-path write latency
// difference in virtual time — the paper's headline single-roundtrip claim.
void BM_AblationGuessVsDiscover(benchmark::State& state) {
  double sg = 0;
  double abd = 0;
  for (auto _ : state) {
    const auto [sg_lat, abd_lat] = ProbeGuessVsDiscover();
    sg += static_cast<double>(sg_lat);
    abd += static_cast<double>(abd_lat);
  }
  state.counters["safe_guess_us"] = sg / 1e3 / static_cast<double>(state.iterations());
  state.counters["abd_us"] = abd / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AblationGuessVsDiscover);

// Raw engine throughput: how many simulated fabric verbs per wall second.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  uint64_t ops = 0;
  for (auto _ : state) {
    TestEnv env(7);
    Worker& w = env.MakeWorker();
    uint64_t addr = env.fabric.node(0).Allocate(64);
    auto body = [&](Probe*) -> sim::Task<void> {
      std::vector<uint8_t> buf(64);
      for (int i = 0; i < 1000; ++i) {
        swarm::DiscardStatus(co_await w.qp(0).Read(addr, buf));
      }
    };
    Probe p;
    sim::Spawn(body(&p));
    env.sim.Run();
    ops += 1000;
  }
  state.counters["verbs_per_s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace
}  // namespace swarm

int main(int argc, char** argv) {
  swarm::bench::ParseBenchFlags(argc, argv);
  swarm::EmitJsonReport();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
