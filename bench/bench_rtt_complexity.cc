// Roundtrip-complexity microbenchmarks (Appendices A.2, B.2, C.3) and
// simulator-throughput measurements, using google-benchmark.
//
// Each benchmark drives one protocol primitive in a fresh simulated fabric
// and reports, as counters, the primitive's virtual-time latency and its
// roundtrip count — the quantities the paper's appendices bound analytically:
//   * reliable max-register write: 1 RT; read: 1 RT common / 2 RT repair,
//   * TRYLOCK: 1 RT uncontended, up to ts+1 in theory,
//   * Safe-Guess write: 1 RT fast path, and read: 1 RT on VERIFIED data.
// Wall-clock time per iteration measures the discrete-event engine itself.

#include <benchmark/benchmark.h>

#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/swarm/abd.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/safe_guess.h"
#include "src/swarm/timestamp_lock.h"
#include "tests/support/test_env.h"

namespace swarm {
namespace {

using testing::TestEnv;
using testing::ValN;

struct Probe {
  sim::Time latency = 0;
  int rtts = 0;
};

template <typename Fn>
Probe RunProbe(TestEnv& env, Fn body) {
  Probe probe;
  sim::Spawn(body(&probe));
  env.sim.Run();
  return probe;
}

void BM_QuorumMaxWrite(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    ObjectLayout layout = env.MakeObject();
    auto cache = env.MakeCache();
    auto body = [&](Probe* p) -> sim::Task<void> {
      QuorumMax reg(&w, &layout, cache);
      // Warm the slot caches with one write, then measure the steady state.
      (void)co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), ValN(64, 1));
      const sim::Time start = env.sim.Now();
      WriteReadOutcome out = co_await reg.WriteAndRead(Meta::Pack(20, 0, false, 0), ValN(64, 2));
      p->latency = env.sim.Now() - start;
      p->rtts = out.rtts;
    };
    Probe p = RunProbe(env, body);
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_QuorumMaxWrite);

void BM_QuorumMaxReadFast(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    ObjectLayout layout = env.MakeObject();
    auto cache = env.MakeCache();
    auto body = [&](Probe* p) -> sim::Task<void> {
      QuorumMax reg(&w, &layout, cache);
      WriteReadOutcome wr = co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), ValN(64, 1));
      co_await QuorumMax::Promote(&w, &layout, wr.installed, ValN(64, 1));
      co_await env.sim.Delay(20000);
      const sim::Time start = env.sim.Now();
      ReadOutcome rd = co_await reg.ReadQuorum(true);
      p->latency = env.sim.Now() - start;
      p->rtts = rd.rtts;
    };
    Probe p = RunProbe(env, body);
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_QuorumMaxReadFast);

void BM_QuorumMaxReadRepair(benchmark::State& state) {
  double rtts = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    Worker& rdr = env.MakeWorker();
    ObjectLayout layout = env.MakeObject();
    auto body = [&](Probe* p) -> sim::Task<void> {
      // Value at a single replica: the read must chase + write back.
      InOutReplica rep(&w, &layout, 1);
      Meta cache;
      (void)co_await rep.WriteMax(Meta::Pack(50, 0, false, 0), ValN(64, 1), &cache);
      QuorumMax reg(&rdr, &layout, std::make_shared<ObjectCache>());
      ReadOutcome rd = co_await reg.ReadQuorum(true);
      p->rtts = rd.rtts;
    };
    rtts += RunProbe(env, body).rtts;
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
}
BENCHMARK(BM_QuorumMaxReadRepair);

void BM_TryLockUncontended(benchmark::State& state) {
  double rtts = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    ObjectLayout layout = env.MakeObject();
    auto body = [&](Probe* p) -> sim::Task<void> {
      TimestampLock lock(&w, &layout, 0);
      TryLockResult r = co_await lock.TryLock(42, LockMode::kWrite);
      p->rtts = r.rtts;
    };
    rtts += RunProbe(env, body).rtts;
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TryLockUncontended);

void BM_SafeGuessWriteFastPath(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    ObjectLayout layout = env.MakeObject();
    auto cache = env.MakeCache();
    auto body = [&](Probe* p) -> sim::Task<void> {
      SafeGuessObject obj(&w, &layout, cache);
      (void)co_await obj.Write(ValN(64, 1));
      co_await env.sim.Delay(20000);
      const sim::Time start = env.sim.Now();
      SgWriteResult r = co_await obj.Write(ValN(64, 2));
      p->latency = env.sim.Now() - start;
      p->rtts = r.rtts;
    };
    Probe p = RunProbe(env, body);
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SafeGuessWriteFastPath);

void BM_SafeGuessReadVerified(benchmark::State& state) {
  double rtts = 0;
  double lat = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    ObjectLayout layout = env.MakeObject();
    auto cache = env.MakeCache();
    auto body = [&](Probe* p) -> sim::Task<void> {
      SafeGuessObject obj(&w, &layout, cache);
      (void)co_await obj.Write(ValN(64, 1));
      co_await env.sim.Delay(20000);
      const sim::Time start = env.sim.Now();
      SgReadResult r = co_await obj.Read();
      p->latency = env.sim.Now() - start;
      p->rtts = r.rtts;
    };
    Probe p = RunProbe(env, body);
    rtts += p.rtts;
    lat += static_cast<double>(p.latency);
  }
  state.counters["virtual_rtts"] = rtts / static_cast<double>(state.iterations());
  state.counters["virtual_us"] = lat / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SafeGuessReadVerified);

// Ablation: guessed timestamps (Safe-Guess) vs discovered timestamps (ABD
// needs a read before installing). Reported as the fast-path write latency
// difference in virtual time — the paper's headline single-roundtrip claim.
void BM_AblationGuessVsDiscover(benchmark::State& state) {
  double sg = 0;
  double abd = 0;
  for (auto _ : state) {
    TestEnv env(42);
    Worker& w = env.MakeWorker();
    ObjectLayout sg_layout = env.MakeObject();
    std::vector<int> nodes{0, 1, 2};
    ObjectLayout abd_layout = AllocateObject(env.fabric, nodes.data(), 3, 1, 1, 64, 0);
    auto body = [&](Probe* p) -> sim::Task<void> {
      SafeGuessObject obj(&w, &sg_layout, std::make_shared<ObjectCache>());
      (void)co_await obj.Write(ValN(64, 1));
      sim::Time start = env.sim.Now();
      (void)co_await obj.Write(ValN(64, 2));
      p->latency = env.sim.Now() - start;

      AbdObject abd_obj(&w, &abd_layout, std::make_shared<ObjectCache>());
      (void)co_await abd_obj.Write(ValN(64, 1));
      start = env.sim.Now();
      (void)co_await abd_obj.Write(ValN(64, 2));
      p->rtts = static_cast<int>(env.sim.Now() - start);  // ABD latency in ns.
    };
    Probe p = RunProbe(env, body);
    sg += static_cast<double>(p.latency);
    abd += static_cast<double>(p.rtts);
  }
  state.counters["safe_guess_us"] = sg / 1e3 / static_cast<double>(state.iterations());
  state.counters["abd_us"] = abd / 1e3 / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AblationGuessVsDiscover);

// Raw engine throughput: how many simulated fabric verbs per wall second.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  uint64_t ops = 0;
  for (auto _ : state) {
    TestEnv env(7);
    Worker& w = env.MakeWorker();
    uint64_t addr = env.fabric.node(0).Allocate(64);
    auto body = [&](Probe*) -> sim::Task<void> {
      std::vector<uint8_t> buf(64);
      for (int i = 0; i < 1000; ++i) {
        (void)co_await w.qp(0).Read(addr, buf);
      }
    };
    Probe p;
    sim::Spawn(body(&p));
    env.sim.Run();
    ops += 1000;
  }
  state.counters["verbs_per_s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace
}  // namespace swarm

BENCHMARK_MAIN();
