// Figure 5: latency CDFs of RAW, SWARM-KV, DM-ABD and FUSEE under YCSB
// workload B (95% gets / 5% updates), Zipfian key distribution, 4 clients,
// 100 K keys, 64 B values, 3 replicas, caches covering all keys.
//
// Paper's headline numbers (for shape comparison): RAW get p50 1.9 us,
// SWARM-KV get p50 2.4 us (+27%), FUSEE get bimodal 2.9/4.8 us, DM-ABD get
// 4.3 us; updates: RAW 1.6, SWARM-KV 3.1, DM-ABD 4.9, FUSEE 8.5–10.4 us.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

RunResults RunOne(const char* store, HostCostFooter* footer) {
  HarnessConfig cfg;
  cfg.store = store;
  cfg.workload = ycsb::WorkloadB(100000, 64);
  cfg.num_clients = 4;
  cfg.warmup_ops = WarmupOps();
  cfg.measure_ops = MeasureOps();
  KvHarness harness(cfg);
  harness.Load();
  RunResults r = harness.Run();
  footer->Add(harness);
  return r;
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig5_latency_cdf");
  HostCostFooter footer;
  PrintHeader(
      "Figure 5: latency CDFs, YCSB B (95/5), Zipfian(.99), 4 clients, 100K keys, 64B values");
  const char* stores[] = {"raw", "swarm", "dmabd", "fusee"};
  std::vector<RunResults> results;
  for (const char* s : stores) {
    results.push_back(RunOne(s, &footer));
  }
  for (size_t i = 0; i < 4; ++i) {
    rep.AddLatency(std::string(stores[i]) + ".get", results[i].get_latency);
    rep.AddLatency(std::string(stores[i]) + ".update", results[i].update_latency);
    rep.Metric(std::string(stores[i]) + ".tput_mops", results[i].ThroughputMops());
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "op", "p50_us", "p1_us", "p90_us", "p99_us", "n"});
  for (size_t i = 0; i < 4; ++i) {
    const RunResults& r = results[i];
    rows.push_back({stores[i], "GET", Fmt("%.2f", r.get_latency.PercentileUs(50)),
                    Fmt("%.2f", r.get_latency.PercentileUs(1)),
                    Fmt("%.2f", r.get_latency.PercentileUs(90)),
                    Fmt("%.2f", r.get_latency.PercentileUs(99)), FmtU(r.gets)});
    rows.push_back({stores[i], "UPDATE", Fmt("%.2f", r.update_latency.PercentileUs(50)),
                    Fmt("%.2f", r.update_latency.PercentileUs(1)),
                    Fmt("%.2f", r.update_latency.PercentileUs(90)),
                    Fmt("%.2f", r.update_latency.PercentileUs(99)), FmtU(r.updates)});
  }
  PrintTable(rows);
  std::printf("\nPaper reference: GET p50 — RAW 1.9, SWARM-KV 2.4, FUSEE 2.9 (87%%)/4.8 (p90), "
              "DM-ABD 4.3 us\n");
  std::printf("                 UPDATE p50 — RAW 1.6, SWARM-KV 3.1, DM-ABD 4.9, FUSEE 8.5 us\n");

  PrintHeader("Figure 5 CDF series");
  for (size_t i = 0; i < 4; ++i) {
    PrintCdf(std::string(stores[i]) + "/GET", results[i].get_latency);
    PrintCdf(std::string(stores[i]) + "/UPDATE", results[i].update_latency);
  }
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
