// Figure 12 (§7.8): extreme contention — 16 clients hammering a single
// key-value pair under YCSB A. Latency CDFs for SWARM-KV and DM-ABD plus
// SWARM-KV's roundtrip breakdown.
//
// Paper: SWARM-KV gets stay live but their p99 degrades to ~30 us — only
// 14% complete in 1 RT (valid in-place value), 8% in 2 RTs (out-of-place),
// the rest need iterations / max-register write-backs. updates complete in
// at most 4 RTs (73% in 1). DM-ABD degrades drastically from CAS contention
// on its single shared metadata word.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig12_contention");
  HostCostFooter footer;
  PrintHeader("Figure 12: extreme contention, single key, 16 clients, YCSB A");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "op", "p50_us", "p90_us", "p99_us", "rtt_mix"});
  std::vector<stats::LatencyHistogram> cdfs;
  std::vector<std::string> names;
  for (const char* store : {"swarm", "dmabd"}) {
    HarnessConfig cfg;
    cfg.store = store;
    cfg.workload = ycsb::WorkloadA(1, 64);  // A single key.
    cfg.workload.zipfian = false;
    cfg.num_clients = 16;
    cfg.warmup_ops = WarmupOps() / 4;
    cfg.measure_ops = MeasureOps() / 2;
    KvHarness harness(cfg);
    harness.Load();
    RunResults r = harness.Run();
    footer.Add(harness);
    rep.Metric(std::string(store) + ".get.p50_us", r.get_latency.PercentileUs(50));
    rep.Metric(std::string(store) + ".get.p90_us", r.get_latency.PercentileUs(90));
    rep.Metric(std::string(store) + ".get.p99_us", r.get_latency.PercentileUs(99));
    rep.Metric(std::string(store) + ".update.p50_us", r.update_latency.PercentileUs(50));
    rep.Metric(std::string(store) + ".update.p90_us", r.update_latency.PercentileUs(90));
    rep.Metric(std::string(store) + ".update.p99_us", r.update_latency.PercentileUs(99));
    rows.push_back({store, "GET", Fmt("%.2f", r.get_latency.PercentileUs(50)),
                    Fmt("%.2f", r.get_latency.PercentileUs(90)),
                    Fmt("%.2f", r.get_latency.PercentileUs(99)), RttMix(r.get_rtts)});
    rows.push_back({store, "UPDATE", Fmt("%.2f", r.update_latency.PercentileUs(50)),
                    Fmt("%.2f", r.update_latency.PercentileUs(90)),
                    Fmt("%.2f", r.update_latency.PercentileUs(99)), RttMix(r.update_rtts)});
    cdfs.push_back(r.get_latency);
    names.push_back(std::string(store) + "/GET");
    cdfs.push_back(r.update_latency);
    names.push_back(std::string(store) + "/UPDATE");
    if (std::string(store) == "swarm") {
      const double inplace_pct =
          100.0 * static_cast<double>(r.get_inplace) / static_cast<double>(r.gets ? r.gets : 1);
      std::printf("swarm gets served from in-place data: %.1f%%\n", inplace_pct);
      rep.Metric("swarm.get_inplace_pct", inplace_pct);
    }
  }
  PrintTable(rows);
  std::printf("\nPaper: SWARM gets p99 ~30us (14%% 1RT / 8%% 2RT / 78%% more), updates <= 4 RT\n"
              "(73%% 1RT, 7%% 2RT, 14%% 3RT, 6%% 4RT); DM-ABD drastically worse on both.\n");

  PrintHeader("Figure 12 CDF series");
  for (size_t i = 0; i < cdfs.size(); ++i) {
    PrintCdf(names[i], cdfs[i]);
  }
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
