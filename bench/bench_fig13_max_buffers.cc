// Figure 13 (§7.9): scalability of In-n-Out's CAS-based max substitute —
// latency CDFs of SWARM-KV with 64 clients as the number of 8 B metadata
// buffers per key varies over 1 / 4 / 16 / 64 (§4.4's contention-reduction
// array).
//
// Paper (YCSB B): with 1 shared buffer only 23% of updates are 1 RT (stale
// CAS caches); 4 buffers -> 57%, 16 -> 86%, 64 (one per client) -> 99%.
// Meanwhile gets slow slightly with more buffers (larger array reads):
// get p50 3.1 -> 3.6 us from 1 to 64 buffers. Under YCSB A: 2% / 11% /
// 39% / 99% of updates in 1 RT.

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("fig13_max_buffers");
  HostCostFooter footer;
  PrintHeader("Figure 13: metadata buffer array width, 64 clients, SWARM-KV");
  for (const bool workload_a : {false, true}) {
    std::printf("\n== YCSB %s - Zipfian ==\n", workload_a ? "A (50/50)" : "B (95/5)");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"buffers", "get_p50_us", "get_p99_us", "update_p50_us", "update_p99_us",
                    "updates_1rt", "update_rtt_mix"});
    for (const int buffers : {1, 4, 16, 64}) {
      HarnessConfig cfg;
      cfg.store = "swarm";
      cfg.workload = workload_a ? ycsb::WorkloadA(100000, 64) : ycsb::WorkloadB(100000, 64);
      cfg.num_clients = 64;
      cfg.proto.meta_slots = buffers;
      cfg.warmup_ops = std::max<uint64_t>(WarmupOps() / 2, 64 * 300);
      cfg.measure_ops = std::max<uint64_t>(MeasureOps() / 2, 64 * 600);
      KvHarness harness(cfg);
      harness.Load();
      RunResults r = harness.Run();
      uint64_t one_rt = 0;
      uint64_t total = 0;
      for (const auto& [rt, n] : r.update_rtts) {
        total += n;
        if (rt <= 1) {
          one_rt += n;
        }
      }
      footer.Add(harness);
      const std::string key = std::string(workload_a ? "a" : "b") + ".m" +
                              std::to_string(buffers);
      rep.Metric(key + ".get_p50_us", r.get_latency.PercentileUs(50));
      rep.Metric(key + ".get_p99_us", r.get_latency.PercentileUs(99));
      rep.Metric(key + ".update_p50_us", r.update_latency.PercentileUs(50));
      rep.Metric(key + ".update_p99_us", r.update_latency.PercentileUs(99));
      rep.Metric(key + ".updates_1rt_pct", 100.0 * static_cast<double>(one_rt) /
                                               static_cast<double>(total ? total : 1));
      rows.push_back({FmtU(static_cast<uint64_t>(buffers)),
                      Fmt("%.2f", r.get_latency.PercentileUs(50)),
                      Fmt("%.2f", r.get_latency.PercentileUs(99)),
                      Fmt("%.2f", r.update_latency.PercentileUs(50)),
                      Fmt("%.2f", r.update_latency.PercentileUs(99)),
                      Fmt("%.1f%%", 100.0 * static_cast<double>(one_rt) /
                                        static_cast<double>(total ? total : 1)),
                      RttMix(r.update_rtts)});
    }
    PrintTable(rows);
  }
  std::printf("\nPaper (YCSB B): 1-RT updates 23%% / 57%% / 86%% / 99%% for 1/4/16/64 buffers;\n"
              "gets slow from 3.1 to 3.6us as arrays grow. YCSB A: 2%%/11%%/39%%/99%%.\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
