// Table 2: number of network roundtrips for gets and updates, common case
// (mode) and 99th percentile, for RAW / SWARM-KV / DM-ABD / FUSEE under the
// standard workload (§7.1: YCSB B, Zipfian, 4 clients, 100 K keys, warm
// caches).
//
// Paper's Table 2:
//            common get/update   p99 get/update
//   RAW            1 / 1              1 / 1
//   SWARM-KV       1 / 1              1 / 1
//   DM-ABD         2 / 2              2 / 2
//   FUSEE        1–2 / 4              2 / 5

#include <cstdio>

#include "bench/common/harness.h"
#include "bench/common/json_report.h"
#include "bench/common/options.h"
#include "bench/common/report.h"

namespace swarm::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  JsonReport rep("table2_roundtrips");
  HostCostFooter footer;
  PrintHeader("Table 2: roundtrips for gets and updates (common case and 99th percentile)");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"system", "get_common", "update_common", "get_p99", "update_p99",
                  "get_rtt_mix", "update_rtt_mix"});
  for (const char* store : {"raw", "swarm", "dmabd", "fusee"}) {
    HarnessConfig cfg;
    cfg.store = store;
    cfg.workload = ycsb::WorkloadB(100000, 64);
    cfg.num_clients = 4;
    cfg.warmup_ops = WarmupOps();
    cfg.measure_ops = MeasureOps();
    KvHarness harness(cfg);
    harness.Load();
    RunResults r = harness.Run();
    footer.Add(harness);
    auto [get_common, get_p99] = RttCommonAndP99(r.get_rtts);
    auto [up_common, up_p99] = RttCommonAndP99(r.update_rtts);
    // Roundtrip counts are the bench's whole point: gate them both ways (an
    // rtt change in either direction is a protocol-behavior change).
    rep.MetricU(std::string(store) + ".get_common_rtts", static_cast<uint64_t>(get_common));
    rep.MetricU(std::string(store) + ".update_common_rtts", static_cast<uint64_t>(up_common));
    rep.MetricU(std::string(store) + ".get_p99_rtts", static_cast<uint64_t>(get_p99));
    rep.MetricU(std::string(store) + ".update_p99_rtts", static_cast<uint64_t>(up_p99));
    rows.push_back({store, FmtU(static_cast<uint64_t>(get_common)),
                    FmtU(static_cast<uint64_t>(up_common)), FmtU(static_cast<uint64_t>(get_p99)),
                    FmtU(static_cast<uint64_t>(up_p99)), RttMix(r.get_rtts),
                    RttMix(r.update_rtts)});
  }
  PrintTable(rows);
  std::printf("\nPaper: RAW 1/1 1/1; SWARM-KV 1/1 1/1; DM-ABD 2/2 2/2; FUSEE 1-2/4 2/5\n");
  footer.Flush(&rep);
  rep.Write();
  return 0;
}

}  // namespace
}  // namespace swarm::bench

int main(int argc, char** argv) { return swarm::bench::Main(argc, argv); }
