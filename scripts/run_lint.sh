#!/usr/bin/env bash
# Protocol-invariant lint driver (see tools/lint/README.md).
#
#   scripts/run_lint.sh              # lint the tree (src/ tests/ bench/ examples/)
#   scripts/run_lint.sh <paths...>   # lint specific files/dirs (fixtures, WIP code)
#
# Exit 0 iff every stage passes: the custom protocol checks find nothing,
# the checker's own fixture self-test passes, and (when clang-tidy is
# installed) the curated .clang-tidy profile is clean. The container image
# does not ship clang-tidy; that stage reports SKIPPED locally and runs in
# the static-analysis CI job.
set -u
cd "$(dirname "$0")/.."

PYTHON=${PYTHON:-python3}
fail=0

if [ "$#" -gt 0 ]; then
  targets=("$@")
  selftest=0   # Explicit paths (e.g. a must-trip fixture): just lint them.
else
  targets=(src tests bench examples)
  selftest=1
fi

echo "== swarm protocol checks (tools/lint/check_protocol_invariants.py) =="
"$PYTHON" tools/lint/check_protocol_invariants.py "${targets[@]}" || fail=1

if [ "$selftest" -eq 1 ]; then
  echo "== lint fixture self-test =="
  "$PYTHON" tools/lint/lint_selftest.py || fail=1
fi

echo "== clang-tidy (curated .clang-tidy profile) =="
if command -v clang-tidy >/dev/null 2>&1 && [ "$selftest" -eq 1 ]; then
  # compile_commands.json is required; configure a throwaway build dir if
  # the main one predates CMAKE_EXPORT_COMPILE_COMMANDS.
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t tidy_sources < <(git ls-files 'src/*.cc')
  if ! clang-tidy -p build --quiet "${tidy_sources[@]}"; then
    fail=1
  fi
elif [ "$selftest" -eq 1 ]; then
  echo "clang-tidy not installed: SKIPPED (enforced by the static-analysis CI job)"
fi

exit "$fail"
