#!/usr/bin/env python3
"""Diffs fresh BENCH_*.json reports against committed baselines.

Usage:
    scripts/check_bench_regression.py <baseline-dir> <fresh-dir> [--threshold PCT]

For every BENCH_*.json in <baseline-dir> there must be a same-named file in
<fresh-dir> (a missing report fails: a bench that stopped emitting its JSON
is itself a regression). Extra fresh files are reported but don't fail, so a
new bench can land before its baseline does.

Rules (documented in bench/README.md):
  * The "config" fingerprints must match exactly — comparing runs with
    different op counts or calibration regimes is meaningless, so it's a
    hard error, not a diff.
  * Keys starting with "host_" are wall-clock numbers: skipped.
  * All other metrics are deterministic virtual-time numbers. A metric is
    gated in the direction that means "worse":
      - lower-is-better:  *_us, *_ns  (latency), *.doorbells,
        *.doorbell_splits, *.events, *.coroutine_events, *miss_rate*,
        *.unavailable_ops
      - higher-is-better: *tput*, *ops*, *per_s*, *per_client*, *_pct
        (1-RT shares, in-place shares), *.verbs_per_batch
      - count/shape keys (*.count, *.batches, *.batched_verbs): compared
        both directions (a change in either direction is a behavior change).
    Unknown keys default to both-directions gating: better to flag a rename
    than to silently stop tracking it.
  * A metric disappearing from the fresh report is an error; a new metric
    is reported but allowed (it has no baseline yet).
  * Tolerance: relative |delta| above --threshold (default 8%) in the gated
    direction fails. Baselines within ±1e-9 of zero use absolute comparison.
"""

import argparse
import json
import os
import sys

DEFAULT_THRESHOLD_PCT = 8.0

LOWER_IS_BETTER_SUFFIXES = ("_us", "_ns")
LOWER_IS_BETTER_SUBSTRINGS = (
    ".doorbell", ".events", ".coroutine_events", "miss_rate", "unavailable_ops",
)
HIGHER_IS_BETTER_SUBSTRINGS = (
    "tput", "per_s", "per_client", "_pct", "verbs_per_batch", ".ops",
)
BOTH_DIRECTIONS_SUFFIXES = (".count", ".batches", ".batched_verbs")


def direction(key: str) -> str:
    """Returns 'lower', 'higher' or 'both' — which movement is a regression."""
    if key.endswith(BOTH_DIRECTIONS_SUFFIXES):
        return "both"
    if key.endswith(LOWER_IS_BETTER_SUFFIXES):
        return "lower"
    if any(s in key for s in LOWER_IS_BETTER_SUBSTRINGS):
        return "lower"
    if any(s in key for s in HIGHER_IS_BETTER_SUBSTRINGS):
        return "higher"
    return "both"


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def compare_file(name: str, base: dict, fresh: dict, threshold_pct: float, failures: list,
                 notes: list) -> None:
    if base.get("config") != fresh.get("config"):
        failures.append(
            f"{name}: config fingerprint mismatch — baseline {base.get('config')} vs "
            f"fresh {fresh.get('config')}; re-run with the baseline's op counts/regime "
            f"(see scripts/run_benches.sh)")
        return

    bm = base.get("metrics", {})
    fm = fresh.get("metrics", {})
    for key, bval in bm.items():
        if key.startswith("host_"):
            continue
        if key not in fm:
            failures.append(f"{name}: metric '{key}' disappeared from fresh report")
            continue
        fval = fm[key]
        if abs(bval) < 1e-9:
            delta_pct = 0.0 if abs(fval) < 1e-9 else float("inf")
        else:
            delta_pct = 100.0 * (fval - bval) / abs(bval)
        d = direction(key)
        worse = (d == "lower" and delta_pct > threshold_pct) or \
                (d == "higher" and delta_pct < -threshold_pct) or \
                (d == "both" and abs(delta_pct) > threshold_pct)
        if worse:
            failures.append(
                f"{name}: {key} {bval:g} -> {fval:g} ({delta_pct:+.1f}%, "
                f"gated {d}, threshold {threshold_pct:g}%)")
    for key in fm:
        if key not in bm and not key.startswith("host_"):
            notes.append(f"{name}: new metric '{key}' (no baseline yet)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline_dir")
    ap.add_argument("fresh_dir")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
                    help="relative regression tolerance in percent (default: %(default)s)")
    args = ap.parse_args()

    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 2

    failures: list = []
    notes: list = []
    compared = 0
    for fname in baselines:
        fresh_path = os.path.join(args.fresh_dir, fname)
        if not os.path.exists(fresh_path):
            failures.append(f"{fname}: fresh report missing (bench no longer emits it?)")
            continue
        compare_file(fname, load(os.path.join(args.baseline_dir, fname)), load(fresh_path),
                     args.threshold, failures, notes)
        compared += 1

    for fname in sorted(os.listdir(args.fresh_dir)):
        if fname.startswith("BENCH_") and fname.endswith(".json") and fname not in baselines:
            notes.append(f"{fname}: no committed baseline (add one via bench/README.md)")

    for n in notes:
        print(f"note: {n}")
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) across {compared} report(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: {compared} report(s) within {args.threshold:g}% of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
