#!/usr/bin/env bash
# Runs the tracked benchmark suite and collects BENCH_*.json into a target
# directory. One entrypoint shared by the baseline-update workflow and the CI
# perf-regression job, so both always run the same op counts and arguments
# (the JSON config fingerprint makes any mismatch a hard checker error).
#
#   scripts/run_benches.sh <build-dir> <output-dir> [--paper-calibration]
#
# Baseline op counts are deliberately reduced from the bench defaults: the
# virtual-time metrics are deterministic at any op count, and 20k measured
# ops keep the full suite to a few minutes. Scale-up runs (SWARM_BENCH_OPS)
# are for humans; they cannot be diffed against these baselines.

set -euo pipefail

BUILD_DIR=${1:?usage: run_benches.sh <build-dir> <output-dir> [--paper-calibration]}
OUT_DIR=${2:?usage: run_benches.sh <build-dir> <output-dir> [--paper-calibration]}
EXTRA_FLAG=${3:-}

export SWARM_BENCH_OPS=${SWARM_BENCH_OPS:-20000}
export SWARM_BENCH_WARMUP=${SWARM_BENCH_WARMUP:-10000}
export SWARM_BENCH_JSON_DIR="$OUT_DIR"
mkdir -p "$OUT_DIR"

BENCHES=(
  bench_fig5_latency_cdf
  bench_fig6_small_cache
  bench_fig7_tput_latency
  bench_fig8_scalability
  bench_fig9_value_size
  bench_fig10_replication
  bench_fig11_failover
  bench_fig12_contention
  bench_fig13_max_buffers
  bench_table2_roundtrips
  bench_table3_resources
  bench_ablations
)

for b in "${BENCHES[@]}"; do
  echo "== $b $EXTRA_FLAG"
  # shellcheck disable=SC2086
  "$BUILD_DIR/$b" $EXTRA_FLAG > /dev/null
done

# The event-loop microbenchmark takes positional sizes (callback events,
# coroutine resumes, kv ops); keep them fixed so the fingerprint matches.
echo "== bench_event_loop $EXTRA_FLAG"
# shellcheck disable=SC2086
"$BUILD_DIR/bench_event_loop" $EXTRA_FLAG 500000 500000 20000 > /dev/null

# The rtt-complexity binary emits its deterministic probe JSON up front;
# the google-benchmark wall-clock fits are host-side only, so skip them here
# (the filter matches nothing).
echo "== bench_rtt_complexity $EXTRA_FLAG"
# shellcheck disable=SC2086
"$BUILD_DIR/bench_rtt_complexity" $EXTRA_FLAG --benchmark_filter='^$' > /dev/null

echo "wrote $(ls "$OUT_DIR"/BENCH_*.json | wc -l) reports to $OUT_DIR"
