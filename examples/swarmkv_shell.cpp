// swarmkv_shell: a scriptable command shell over a simulated SWARM-KV
// deployment — the "kick the tires" tool for the library.
//
// Reads commands from stdin (or runs a built-in demo script when stdin is a
// terminal with no input), executes them in virtual time, and prints each
// operation's outcome with its roundtrip count and virtual latency.
//
// Commands:
//   put <key> <value...>      insert-or-update
//   get <key>
//   del <key>
//   crash <node> | recover <node>
//   tick <microseconds>       advance virtual time
//   stats                     fabric + cache counters
//   # comment
//
// Example:
//   printf 'put 1 hello\nget 1\ncrash 0\nget 1\n' | ./build/examples/swarmkv_shell

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"

namespace {

using namespace swarm;

const char* StatusName(kv::KvStatus s) {
  switch (s) {
    case kv::KvStatus::kOk:
      return "OK";
    case kv::KvStatus::kExists:
      return "OK (existed; updated)";
    case kv::KvStatus::kNotFound:
      return "NOT_FOUND";
    case kv::KvStatus::kUnavailable:
      return "UNAVAILABLE";
  }
  return "?";
}

struct Shell {
  sim::Simulator sim{1};
  fabric::Fabric fabric;
  index::IndexService index;
  membership::MembershipService membership;
  fabric::ClientCpu cpu;
  GuessClock clock;
  index::ClientCache cache;
  std::shared_ptr<std::vector<bool>> known_failed;
  std::unique_ptr<Worker> worker;
  std::unique_ptr<kv::SwarmKvSession> kv;

  Shell()
      : fabric(&sim, MakeFabricConfig()), index(&sim), membership(&sim, &fabric), cpu(&sim),
        clock(&sim, 120),
        known_failed(std::make_shared<std::vector<bool>>(4, false)) {
    membership.Subscribe(known_failed);
    ProtocolConfig proto;
    proto.max_value = 256;
    proto.inplace_copies = 2;
    worker = std::make_unique<Worker>(&fabric, 0, &cpu, &clock, proto, known_failed);
    kv = std::make_unique<kv::SwarmKvSession>(worker.get(), &index, &cache);
  }

  static fabric::FabricConfig MakeFabricConfig() {
    fabric::FabricConfig cfg;
    cfg.num_nodes = 4;
    cfg.node_capacity_bytes = 64ull << 20;
    return cfg;
  }

  // Runs one blocking KV op to completion in virtual time.
  template <typename Fn>
  kv::KvResult RunOp(Fn&& make_task) {
    kv::KvResult result;
    bool done = false;
    auto driver = [](kv::KvResult* out, bool* done2, sim::Task<kv::KvResult> t) -> sim::Task<void> {
      *out = co_await std::move(t);
      *done2 = true;
    };
    sim::Spawn(driver(&result, &done, make_task()));
    sim.Run();
    (void)done;
    return result;
  }

  void Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') {
      return;
    }
    if (cmd == "put" || cmd == "get" || cmd == "del") {
      uint64_t key = 0;
      in >> key;
      const sim::Time t0 = sim.Now();
      kv::KvResult r;
      if (cmd == "put") {
        std::string rest;
        std::getline(in, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        std::vector<uint8_t> value(rest.begin(), rest.end());
        r = RunOp([&] { return kv->Insert(key, value); });
        std::printf("put %llu -> %s  [%d RT, %.2fus]\n", static_cast<unsigned long long>(key),
                    StatusName(r.status), r.rtts, sim::ToMicros(sim.Now() - t0));
      } else if (cmd == "get") {
        r = RunOp([&] { return kv->Get(key); });
        std::printf("get %llu -> %s%s%.*s%s  [%d RT%s, %.2fus]\n",
                    static_cast<unsigned long long>(key), StatusName(r.status),
                    r.status == kv::KvStatus::kOk ? " \"" : "",
                    static_cast<int>(r.value.size()), reinterpret_cast<const char*>(r.value.data()),
                    r.status == kv::KvStatus::kOk ? "\"" : "", r.rtts,
                    r.used_inplace ? ", in-place" : "", sim::ToMicros(sim.Now() - t0));
      } else {
        r = RunOp([&] { return kv->Remove(key); });
        std::printf("del %llu -> %s  [%d RT, %.2fus]\n", static_cast<unsigned long long>(key),
                    StatusName(r.status), r.rtts, sim::ToMicros(sim.Now() - t0));
      }
    } else if (cmd == "crash") {
      int node = 0;
      in >> node;
      membership.CrashNode(node);
      std::printf("crash node %d (membership will notify in %.0fus)\n", node,
                  sim::ToMicros(membership.detection_delay()));
    } else if (cmd == "recover") {
      int node = 0;
      in >> node;
      membership.RecoverNode(node);
      std::printf("recover node %d (contents lost)\n", node);
    } else if (cmd == "tick") {
      int64_t us = 0;
      in >> us;
      sim.RunUntil(sim.Now() + us * sim::kMicrosecond);
      std::printf("t=%.1fus\n", sim::ToMicros(sim.Now()));
    } else if (cmd == "stats") {
      const fabric::FabricStats& st = fabric.stats();
      std::printf("t=%.1fus  verbs=%llu (r=%llu w=%llu cas=%llu)  io=%llu B  "
                  "disagg=%llu B  cached=%zu keys\n",
                  sim::ToMicros(sim.Now()), static_cast<unsigned long long>(st.ops_issued),
                  static_cast<unsigned long long>(st.reads),
                  static_cast<unsigned long long>(st.writes),
                  static_cast<unsigned long long>(st.casses),
                  static_cast<unsigned long long>(st.total_io()),
                  static_cast<unsigned long long>(fabric.TotalAllocated()), cache.size());
    } else {
      std::printf("unknown command: %s\n", cmd.c_str());
    }
  }
};

constexpr const char* kDemoScript = R"(# built-in demo
put 1 the quick brown fox
get 1
put 1 jumps over the lazy dog
get 1
tick 25
get 1
crash 0
tick 60
get 1
del 1
get 1
stats
)";

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  std::printf("swarmkv_shell — SWARM-KV over a simulated 4-node disaggregated fabric\n");
  std::istringstream demo(kDemoScript);
  const bool use_demo = argc > 1 && std::string(argv[1]) == "--demo";
  std::istream& in = use_demo ? static_cast<std::istream&>(demo) : std::cin;
  if (use_demo) {
    std::printf("(running built-in demo script)\n");
  }
  std::string line;
  while (std::getline(in, line)) {
    shell.Execute(line);
  }
  return 0;
}
