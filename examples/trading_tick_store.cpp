// Trading tick store: the paper's motivating low-latency scenario ("data
// stores in trading systems", §1).
//
// A market-data publisher streams ticks for a set of instruments into
// SWARM-KV while several trading strategies concurrently read the latest
// tick of the instruments they track. Each tick must be visible with
// microsecond latency, reads must be strongly consistent (a strategy must
// never act on a price older than one it already saw), and the feed must
// survive a memory-node crash without a halt — exactly the combination
// SWARM provides (1-RTT ops, linearizability, no-downtime failover).
//
// The demo crashes a memory node mid-stream and shows the publisher and the
// strategies sail through it.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"

namespace {

using namespace swarm;

constexpr int kInstruments = 16;
constexpr int kTicksPerInstrument = 400;
constexpr sim::Time kTickInterval = 2 * sim::kMicrosecond;

struct Tick {
  uint64_t sequence;
  int64_t price_e6;  // Price in millionths.
};

std::vector<uint8_t> Pack(const Tick& t) {
  std::vector<uint8_t> bytes(sizeof(Tick));
  std::memcpy(bytes.data(), &t, sizeof(Tick));
  return bytes;
}

Tick Unpack(const std::vector<uint8_t>& bytes) {
  Tick t{};
  if (bytes.size() == sizeof(Tick)) {
    std::memcpy(&t, bytes.data(), sizeof(Tick));
  }
  return t;
}

struct Stats {
  stats::LatencyHistogram publish;
  stats::LatencyHistogram read;
  uint64_t stale_reads = 0;  // Monotonicity violations (must stay 0).
  uint64_t reads = 0;
};

sim::Task<void> Publisher(sim::Simulator* sim, kv::SwarmKvSession* kv, Stats* stats) {
  // Seed all instruments.
  for (int i = 0; i < kInstruments; ++i) {
    (void)co_await kv->Insert(static_cast<uint64_t>(i), Pack(Tick{0, 100'000'000 + i}));
  }
  // Stream ticks round-robin.
  for (int seq = 1; seq <= kTicksPerInstrument; ++seq) {
    for (int i = 0; i < kInstruments; ++i) {
      co_await sim->Delay(kTickInterval);
      Tick tick{static_cast<uint64_t>(seq), 100'000'000 + i + seq * 25};
      const sim::Time t0 = sim->Now();
      kv::KvResult r = co_await kv->Update(static_cast<uint64_t>(i), Pack(tick));
      if (r.ok()) {
        stats->publish.Record(sim->Now() - t0);
      }
    }
  }
}

sim::Task<void> Strategy(sim::Simulator* sim, kv::SwarmKvSession* kv, int first_instrument,
                         Stats* stats) {
  std::vector<uint64_t> last_seen(kInstruments, 0);
  for (int round = 0; round < kTicksPerInstrument * 2; ++round) {
    const auto instrument =
        static_cast<uint64_t>((first_instrument + round) % kInstruments);
    co_await sim->Delay(3 * sim::kMicrosecond);
    const sim::Time t0 = sim->Now();
    kv::KvResult r = co_await kv->Get(instrument);
    if (r.status != kv::KvStatus::kOk) {
      continue;
    }
    stats->read.Record(sim->Now() - t0);
    ++stats->reads;
    const Tick tick = Unpack(r.value);
    // Linearizability at work: the sequence a strategy observes for an
    // instrument never goes backwards.
    if (tick.sequence < last_seen[instrument]) {
      ++stats->stale_reads;
    }
    last_seen[instrument] = tick.sequence;
  }
}

}  // namespace

int main() {
  sim::Simulator sim(2024);
  fabric::FabricConfig fcfg;
  fcfg.num_nodes = 4;
  fcfg.node_capacity_bytes = 256ull << 20;
  fabric::Fabric fabric(&sim, fcfg);
  index::IndexService index(&sim);
  membership::MembershipService membership(&sim, &fabric);

  ProtocolConfig proto;
  proto.max_writers = 8;
  proto.meta_slots = 8;
  proto.inplace_copies = 2;  // Failover spare for in-place data.

  Stats stats;
  std::vector<std::unique_ptr<fabric::ClientCpu>> cpus;
  std::vector<std::unique_ptr<GuessClock>> clocks;
  std::vector<std::unique_ptr<index::ClientCache>> caches;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::unique_ptr<kv::SwarmKvSession>> sessions;
  for (uint32_t i = 0; i < 4; ++i) {
    cpus.push_back(std::make_unique<fabric::ClientCpu>(&sim));
    clocks.push_back(std::make_unique<GuessClock>(&sim, 100 * static_cast<int64_t>(i)));
    caches.push_back(std::make_unique<index::ClientCache>());
    auto known_failed = std::make_shared<std::vector<bool>>(4, false);
    membership.Subscribe(known_failed);
    workers.push_back(std::make_unique<Worker>(&fabric, i, cpus.back().get(), clocks.back().get(),
                                               proto, known_failed));
    sessions.push_back(
        std::make_unique<kv::SwarmKvSession>(workers.back().get(), &index, caches.back().get()));
  }

  sim::Spawn(Publisher(&sim, sessions[0].get(), &stats));
  sim::Spawn(Strategy(&sim, sessions[1].get(), 0, &stats));
  sim::Spawn(Strategy(&sim, sessions[2].get(), 5, &stats));
  sim::Spawn(Strategy(&sim, sessions[3].get(), 11, &stats));

  // Crash a memory node mid-stream: the feed must not pause.
  sim.At(5 * sim::kMillisecond, [&] {
    std::printf("t=5ms: memory node 2 crashes\n");
    membership.CrashNode(2);
  });

  sim.Run();

  std::printf("\npublished %" PRIu64 " ticks: publish p50=%.2fus p99=%.2fus max=%.2fus\n",
              stats.publish.count(), stats.publish.PercentileUs(50),
              stats.publish.PercentileUs(99), sim::ToMicros(stats.publish.max()));
  std::printf("%" PRIu64 " strategy reads:  read    p50=%.2fus p99=%.2fus max=%.2fus\n",
              stats.reads, stats.read.PercentileUs(50), stats.read.PercentileUs(99),
              sim::ToMicros(stats.read.max()));
  std::printf("monotonicity violations: %" PRIu64 " (must be 0)\n", stats.stale_reads);
  std::printf("=> the node crash cost at most ~%.0fus on the worst op — no downtime.\n",
              sim::ToMicros(stats.publish.max()));
  return stats.stale_reads == 0 ? 0 : 1;
}
