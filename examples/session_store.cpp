// Microservice session store: the paper's "microsecond-scale microservices"
// scenario (§1).
//
// A fleet of stateless API gateways keeps user-session state (auth token,
// cart, last activity) in disaggregated memory instead of a local cache. A
// user's requests are routed to a home gateway (consistent hashing), which
// mutates the session; any OTHER gateway may serve read-only traffic for
// that user (dashboards, fraud checks). SWARM's linearizability guarantees
// a reader never observes the session going backwards, even across gateway
// handoffs; SWARM-KV's 1-RTT gets/updates keep the whole exchange in the
// microsecond range. Sessions are created on login (insert), mutated on
// every request (update), and destroyed on logout (delete).
//
// Note the demo deliberately does NOT do concurrent read-modify-write from
// several gateways to one key: SWARM replicates a register, so blind
// concurrent RMW would be last-writer-wins (use one writer per key, as
// here, or layer a lock/transaction protocol on top).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"

namespace {

using namespace swarm;

constexpr int kGateways = 4;
constexpr int kUsers = 64;
constexpr int kRequestsPerGateway = 2000;

struct Session {
  uint64_t session_id;  // Unique per login (incarnation).
  uint64_t request_count;
  uint64_t cart_items;
  uint64_t last_activity_us;
};

std::vector<uint8_t> Pack(const Session& s) {
  std::vector<uint8_t> b(sizeof(Session));
  std::memcpy(b.data(), &s, sizeof(Session));
  return b;
}

Session Unpack(const std::vector<uint8_t>& b) {
  Session s{};
  if (b.size() == sizeof(Session)) {
    std::memcpy(&s, b.data(), sizeof(Session));
  }
  return s;
}

struct Stats {
  stats::LatencyHistogram request_latency;
  uint64_t logins = 0;
  uint64_t requests = 0;
  uint64_t logouts = 0;
  uint64_t lost_updates = 0;  // Request counts observed going backwards.
};

// One gateway: mutates sessions of the users it owns (user % kGateways ==
// id), reads any user's session. `watermark` tracks the highest
// request_count this gateway has OBSERVED per user; linearizability plus
// this gateway's sequential program order guarantee it never regresses.
sim::Task<void> Gateway(sim::Simulator* sim, kv::SwarmKvSession* kv, int id, uint64_t seed,
                        Stats* stats) {
  sim::Rng rng(seed);
  std::vector<uint64_t> watermark(kUsers, 0);
  std::vector<uint64_t> session_seen(kUsers, 0);
  for (int i = 0; i < kRequestsPerGateway; ++i) {
    co_await sim->Delay(static_cast<sim::Time>(rng.Below(4 * sim::kMicrosecond)));
    const uint64_t user = rng.Below(kUsers);
    const bool owner = static_cast<int>(user % kGateways) == id;
    const sim::Time t0 = sim->Now();

    kv::KvResult got = co_await kv->Get(user);
    if (got.status == kv::KvStatus::kNotFound) {
      watermark[user] = 0;  // Logged out (or never logged in).
      if (owner) {
        // Login: create the session.
        Session fresh{static_cast<uint64_t>(sim->Now()) * kGateways + static_cast<uint64_t>(id),
                      1, 0, static_cast<uint64_t>(sim->Now() / 1000)};
        kv::KvResult ins = co_await kv->Insert(user, Pack(fresh));
        if (ins.ok()) {
          ++stats->logins;
          watermark[user] = 1;
        }
      }
      stats->request_latency.Record(sim->Now() - t0);
      continue;
    }
    if (got.status != kv::KvStatus::kOk) {
      continue;
    }

    Session s = Unpack(got.value);
    if (s.session_id != session_seen[user]) {
      // New login incarnation since we last looked: reset the watermark.
      session_seen[user] = s.session_id;
      watermark[user] = 0;
    }
    if (s.request_count < watermark[user]) {
      ++stats->lost_updates;  // Monotonic-read violation: a consistency bug.
    }
    watermark[user] = s.request_count;

    if (owner) {
      if (rng.Chance(0.03)) {
        // Logout: destroy the session.
        kv::KvResult del = co_await kv->Remove(user);
        if (del.status == kv::KvStatus::kOk) {
          ++stats->logouts;
          watermark[user] = 0;
        }
      } else {
        // Regular request: mutate the session (single writer per user).
        s.request_count += 1;
        s.cart_items += rng.Below(3);
        s.last_activity_us = static_cast<uint64_t>(sim->Now() / 1000);
        kv::KvResult upd = co_await kv->Update(user, Pack(s));
        if (upd.status == kv::KvStatus::kOk) {
          watermark[user] = s.request_count;
          ++stats->requests;
        }
      }
    }
    stats->request_latency.Record(sim->Now() - t0);
  }
}

}  // namespace

int main() {
  sim::Simulator sim(7);
  fabric::FabricConfig fcfg;
  fcfg.num_nodes = 4;
  fcfg.node_capacity_bytes = 256ull << 20;
  fabric::Fabric fabric(&sim, fcfg);
  index::IndexService index(&sim);

  ProtocolConfig proto;
  proto.max_writers = kGateways;
  proto.meta_slots = kGateways;

  Stats stats;
  std::vector<std::unique_ptr<fabric::ClientCpu>> cpus;
  std::vector<std::unique_ptr<GuessClock>> clocks;
  std::vector<std::unique_ptr<index::ClientCache>> caches;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::unique_ptr<kv::SwarmKvSession>> gateways;
  for (uint32_t g = 0; g < kGateways; ++g) {
    cpus.push_back(std::make_unique<fabric::ClientCpu>(&sim));
    clocks.push_back(std::make_unique<GuessClock>(&sim, 200 - 100 * static_cast<int64_t>(g)));
    caches.push_back(std::make_unique<index::ClientCache>());
    auto known_failed = std::make_shared<std::vector<bool>>(4, false);
    workers.push_back(std::make_unique<Worker>(&fabric, g, cpus.back().get(), clocks.back().get(),
                                               proto, known_failed));
    gateways.push_back(
        std::make_unique<kv::SwarmKvSession>(workers.back().get(), &index, caches.back().get()));
  }

  for (uint32_t g = 0; g < kGateways; ++g) {
    sim::Spawn(Gateway(&sim, gateways[g].get(), static_cast<int>(g), 1000 + g, &stats));
  }
  sim.Run();

  std::printf("gateways: %d, users: %d\n", kGateways, kUsers);
  std::printf("logins=%" PRIu64 "  requests=%" PRIu64 "  logouts=%" PRIu64 "\n", stats.logins,
              stats.requests, stats.logouts);
  std::printf("end-to-end request latency: p50=%.2fus p99=%.2fus\n",
              stats.request_latency.PercentileUs(50), stats.request_latency.PercentileUs(99));
  std::printf("monotonic-read violations: %" PRIu64 " (must be 0)\n", stats.lost_updates);
  return stats.lost_updates == 0 ? 0 : 1;
}
