// Failover demo: a narrated walk through §7.7 — what happens to a SWARM-KV
// client when a memory node crashes, in four acts:
//
//   1. steady state: single-roundtrip gets/updates against the preferred
//      majority of each key's replicas,
//   2. the crash: in-flight operations time out on the dead node and
//      broaden to the remaining replicas (slow, but no unavailability),
//   3. detection: membership (uKharon stand-in) tells every client to stop
//      contacting the dead node — operations are fast again, though gets of
//      keys whose in-place copy lived on the dead node pay the
//      out-of-place chase,
//   4. repair: subsequent updates rebuild in-place data and quorum
//      unanimity on the survivors; latency returns to (near) baseline.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"

namespace {

using namespace swarm;

constexpr uint64_t kKeys = 512;

sim::Task<void> Phase(sim::Simulator* sim, kv::SwarmKvSession* kv, const char* label, int rounds,
                      bool updates_too) {
  stats::LatencyHistogram gets;
  stats::LatencyHistogram upds;
  uint64_t failures = 0;
  for (int round = 0; round < rounds; ++round) {
    for (uint64_t key = 0; key < kKeys; key += 7) {
      sim::Time t0 = sim->Now();
      kv::KvResult g = co_await kv->Get(key);
      if (g.status == kv::KvStatus::kOk) {
        gets.Record(sim->Now() - t0);
      } else {
        ++failures;
      }
      if (updates_too && key % 21 == 0) {
        std::vector<uint8_t> v(64, static_cast<uint8_t>(round));
        t0 = sim->Now();
        kv::KvResult u = co_await kv->Update(key, v);
        if (u.status == kv::KvStatus::kOk) {
          upds.Record(sim->Now() - t0);
        } else {
          ++failures;
        }
      }
    }
  }
  std::printf("%-38s gets p50=%6.2fus p99=%7.2fus", label, gets.PercentileUs(50),
              gets.PercentileUs(99));
  if (upds.count() > 0) {
    std::printf("   updates p50=%6.2fus p99=%7.2fus", upds.PercentileUs(50),
                upds.PercentileUs(99));
  }
  std::printf("   failed ops: %llu\n", static_cast<unsigned long long>(failures));
}

sim::Task<void> Run(sim::Simulator* sim, kv::SwarmKvSession* kv,
                    membership::MembershipService* membership) {
  for (uint64_t key = 0; key < kKeys; ++key) {
    std::vector<uint8_t> v(64, 0x42);
    (void)co_await kv->Insert(key, v);
  }
  co_await sim->Delay(sim::kMillisecond);

  std::printf("act 1: steady state\n");
  co_await Phase(sim, kv, "  before crash", 3, true);

  std::printf("act 2: node 1 crashes NOW (clients don't know yet)\n");
  membership->CrashNode(1);
  co_await Phase(sim, kv, "  crash undetected (ops time out)", 1, true);

  std::printf("act 3: membership notifies clients (detection delay elapsed)\n");
  co_await sim->Delay(membership->detection_delay());
  co_await Phase(sim, kv, "  detected (chases for lost in-place)", 2, false);

  std::printf("act 4: updates rebuild in-place data on survivors\n");
  co_await Phase(sim, kv, "  repairing (updates running)", 3, true);
  co_await Phase(sim, kv, "  repaired", 3, false);
  std::printf("=> zero unavailability throughout.\n");
}

}  // namespace

int main() {
  sim::Simulator sim(11);
  fabric::FabricConfig fcfg;
  fcfg.num_nodes = 4;
  fcfg.node_capacity_bytes = 128ull << 20;
  fabric::Fabric fabric(&sim, fcfg);
  index::IndexService index(&sim);
  membership::MembershipService membership(&sim, &fabric);

  ProtocolConfig proto;
  proto.inplace_copies = 2;  // Provision a standby in-place replica.

  fabric::ClientCpu cpu(&sim);
  GuessClock clock(&sim, 0);
  index::ClientCache cache;
  auto known_failed = std::make_shared<std::vector<bool>>(4, false);
  membership.Subscribe(known_failed);
  Worker worker(&fabric, 0, &cpu, &clock, proto, known_failed);
  kv::SwarmKvSession kv(&worker, &index, &cache);

  sim::Spawn(Run(&sim, &kv, &membership));
  sim.Run();
  return 0;
}
