// Failover demo: a narrated walk through §7.7 — what happens to a SWARM-KV
// client when a memory node crashes, in four acts:
//
//   1. steady state: single-roundtrip gets/updates against the preferred
//      majority of each key's replicas,
//   2. the crash: in-flight operations time out on the dead node and
//      broaden to the remaining replicas (slow, but no unavailability),
//   3. detection: membership (uKharon stand-in) tells every client to stop
//      contacting the dead node — operations are fast again, though gets of
//      keys whose in-place copy lived on the dead node pay the
//      out-of-place chase,
//   4. repair: subsequent updates rebuild in-place data and quorum
//      unanimity on the survivors; latency returns to (near) baseline.
//
// Every operation of the run is also recorded into a keyed history and
// handed to the linearizability checker (src/verify/lincheck.h) at the end:
// "zero unavailability" only counts if the answers were also consistent
// across the crash.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"
#include "src/verify/lincheck.h"

namespace {

using namespace swarm;

constexpr uint64_t kKeys = 512;

// The run's complete keyed history, fed to verify::LinearizabilityChecker
// after the simulation: the demo's availability claim is only meaningful if
// every answer across the crash was also linearizable.
struct RecordedHistory {
  std::vector<verify::HistoryOp> ops;
  uint64_t next_value = 1;  // Globally unique write values (8-byte prefix).
};

std::vector<uint8_t> EncodeValue(uint64_t v) {
  std::vector<uint8_t> bytes(64, 0);
  std::memcpy(bytes.data(), &v, 8);
  return bytes;
}

uint64_t DecodeValue(const std::vector<uint8_t>& bytes) {
  uint64_t v = 0;
  if (bytes.size() >= 8) {
    std::memcpy(&v, bytes.data(), 8);
  }
  return v;
}

sim::Task<void> Phase(sim::Simulator* sim, kv::SwarmKvSession* kv, const char* label, int rounds,
                      bool updates_too, RecordedHistory* hist) {
  stats::LatencyHistogram gets;
  stats::LatencyHistogram upds;
  uint64_t failures = 0;
  for (int round = 0; round < rounds; ++round) {
    for (uint64_t key = 0; key < kKeys; key += 7) {
      sim::Time t0 = sim->Now();
      kv::KvResult g = co_await kv->Get(key);
      if (g.status == kv::KvStatus::kOk) {
        gets.Record(sim->Now() - t0);
        hist->ops.push_back({/*is_write=*/false, DecodeValue(g.value), t0, sim->Now(),
                             /*pending=*/false, key});
      } else {
        ++failures;  // Unavailable read: no constraint recorded.
      }
      if (updates_too && key % 21 == 0) {
        const uint64_t v = hist->next_value++;
        t0 = sim->Now();
        kv::KvResult u = co_await kv->Update(key, EncodeValue(v));
        hist->ops.push_back({/*is_write=*/true, v, t0, sim->Now(),
                             /*pending=*/!u.ok(), key});
        if (u.status == kv::KvStatus::kOk) {
          upds.Record(sim->Now() - t0);
        } else {
          ++failures;
        }
      }
    }
  }
  std::printf("%-38s gets p50=%6.2fus p99=%7.2fus", label, gets.PercentileUs(50),
              gets.PercentileUs(99));
  if (upds.count() > 0) {
    std::printf("   updates p50=%6.2fus p99=%7.2fus", upds.PercentileUs(50),
                upds.PercentileUs(99));
  }
  std::printf("   failed ops: %llu\n", static_cast<unsigned long long>(failures));
}

sim::Task<void> Run(sim::Simulator* sim, kv::SwarmKvSession* kv,
                    membership::MembershipService* membership, RecordedHistory* hist) {
  for (uint64_t key = 0; key < kKeys; ++key) {
    const uint64_t v = hist->next_value++;
    const sim::Time t0 = sim->Now();
    kv::KvResult r = co_await kv->Insert(key, EncodeValue(v));
    hist->ops.push_back({/*is_write=*/true, v, t0, sim->Now(), /*pending=*/!r.ok(), key});
  }
  co_await sim->Delay(sim::kMillisecond);

  std::printf("act 1: steady state\n");
  co_await Phase(sim, kv, "  before crash", 3, true, hist);

  std::printf("act 2: node 1 crashes NOW (clients don't know yet)\n");
  membership->CrashNode(1);
  co_await Phase(sim, kv, "  crash undetected (ops time out)", 1, true, hist);

  std::printf("act 3: membership notifies clients (detection delay elapsed)\n");
  co_await sim->Delay(membership->detection_delay());
  co_await Phase(sim, kv, "  detected (chases for lost in-place)", 2, false, hist);

  std::printf("act 4: updates rebuild in-place data on survivors\n");
  co_await Phase(sim, kv, "  repairing (updates running)", 3, true, hist);
  co_await Phase(sim, kv, "  repaired", 3, false, hist);
  std::printf("=> zero unavailability throughout.\n");
}

}  // namespace

int main() {
  sim::Simulator sim(11);
  fabric::FabricConfig fcfg;
  fcfg.num_nodes = 4;
  fcfg.node_capacity_bytes = 128ull << 20;
  fabric::Fabric fabric(&sim, fcfg);
  index::IndexService index(&sim);
  membership::MembershipService membership(&sim, &fabric);

  ProtocolConfig proto;
  proto.inplace_copies = 2;  // Provision a standby in-place replica.

  fabric::ClientCpu cpu(&sim);
  GuessClock clock(&sim, 0);
  index::ClientCache cache;
  auto known_failed = std::make_shared<std::vector<bool>>(4, false);
  membership.Subscribe(known_failed);
  Worker worker(&fabric, 0, &cpu, &clock, proto, known_failed);
  kv::SwarmKvSession kv(&worker, &index, &cache);

  RecordedHistory hist;
  sim::Spawn(Run(&sim, &kv, &membership, &hist));
  sim.Run();

  // The consistency half of the failover story: the whole run — thousands of
  // ops spanning the crash, detection and repair — is one keyed history the
  // unbounded checker decomposes per key and verifies.
  verify::CheckResult report = verify::LinearizabilityChecker::CheckReport(hist.ops);
  std::printf("linearizability: %zu ops across %llu keys -> %s\n", hist.ops.size(),
              static_cast<unsigned long long>(report.stats.cells),
              report.linearizable ? "OK" : "VIOLATION");
  if (!report.linearizable) {
    std::printf("%s\n", report.Describe(hist.ops).c_str());
    return 1;
  }
  return 0;
}
