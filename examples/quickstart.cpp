// Quickstart: bring up a simulated disaggregated-memory fabric, start a
// SWARM-KV client, and run the basic key-value operations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Everything executes in virtual time inside a deterministic discrete-event
// simulation, so the printed latencies are the protocol's latencies on the
// modeled RDMA fabric (~0.7 us one-way), not host wall-clock noise.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "src/sim/simulator.h"
#include "src/swarm/clock.h"
#include "src/swarm/worker.h"

namespace {

using namespace swarm;  // Example code; a real client would pick names.

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

std::string Text(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

sim::Task<void> Demo(sim::Simulator* sim, kv::SwarmKvSession* kv) {
  // Insert: replicates the value over 3 memory nodes AND registers the key
  // in the index, in parallel — one roundtrip total.
  sim::Time t0 = sim->Now();
  kv::KvResult ins = co_await kv->Insert(42, Bytes("hello, disaggregated world"));
  std::printf("insert: status=%d  roundtrips=%d  latency=%.2fus\n",
              static_cast<int>(ins.status), ins.rtts, sim::ToMicros(sim->Now() - t0));

  // Get: single roundtrip once the value's background VERIFIED promotion has
  // landed; the value is served from In-n-Out's in-place copy.
  co_await sim->Delay(20 * sim::kMicrosecond);
  t0 = sim->Now();
  kv::KvResult got = co_await kv->Get(42);
  std::printf("get:    \"%s\"  roundtrips=%d  in-place=%s  latency=%.2fus\n",
              Text(got.value).c_str(), got.rtts, got.used_inplace ? "yes" : "no",
              sim::ToMicros(sim->Now() - t0));

  // Update: guesses a fresh timestamp and writes in a single roundtrip.
  t0 = sim->Now();
  kv::KvResult upd = co_await kv->Update(42, Bytes("updated in one roundtrip"));
  std::printf("update: status=%d  roundtrips=%d  fast-path=%s  latency=%.2fus\n",
              static_cast<int>(upd.status), upd.rtts, upd.fast_path ? "yes" : "no",
              sim::ToMicros(sim->Now() - t0));

  kv::KvResult got2 = co_await kv->Get(42);
  std::printf("get:    \"%s\"\n", Text(got2.value).c_str());

  // Delete: writes the maximal timestamp so the key can never be resurrected
  // by stale writers, then unmaps the index entry in the background.
  kv::KvResult del = co_await kv->Remove(42);
  std::printf("remove: status=%d  roundtrips=%d\n", static_cast<int>(del.status), del.rtts);
  kv::KvResult miss = co_await kv->Get(42);
  std::printf("get:    %s\n",
              miss.status == kv::KvStatus::kNotFound ? "(not found)" : "(unexpected!)");
}

}  // namespace

int main() {
  // 1. A simulator and a fabric of 4 memory nodes (the paper's testbed).
  sim::Simulator sim(/*seed=*/1);
  fabric::FabricConfig fabric_cfg;
  fabric_cfg.num_nodes = 4;
  fabric_cfg.node_capacity_bytes = 64ull << 20;
  fabric::Fabric fabric(&sim, fabric_cfg);

  // 2. The reliable index service (location lookups in one roundtrip).
  index::IndexService index(&sim);

  // 3. One client: CPU model, location cache, loosely synchronized clock,
  //    and a worker (queue pairs + out-of-place buffer pools on each node).
  fabric::ClientCpu cpu(&sim);
  index::ClientCache cache;
  GuessClock clock(&sim, /*skew_ns=*/150);
  ProtocolConfig proto;  // 3 replicas, per-writer metadata buffers.
  auto known_failed = std::make_shared<std::vector<bool>>(4, false);
  Worker worker(&fabric, /*tid=*/0, &cpu, &clock, proto, known_failed);
  kv::SwarmKvSession kv(&worker, &index, &cache);

  // 4. Run the demo to completion in virtual time.
  sim::Spawn(Demo(&sim, &kv));
  sim.Run();

  std::printf("\nsimulated %llu events covering %.1f virtual microseconds\n",
              static_cast<unsigned long long>(sim.events_processed()), sim::ToMicros(sim.Now()));
  return 0;
}
