// Migration-chaos scenario family: elastic-membership lifecycles — node
// admission with rebalancing, drains, decommissions — injected by the
// ChaosEngine (ChaosConfig::migration_weight) while the randomized
// multi-client workload keeps running and crashes/repairs/drop-bursts land on
// top. Three regimes per store, all linearizability-checked and
// seed-replayable:
//
//   * crash during migration: a memory node dies (and crash-recovers through
//     the RepairService) while a migration batch is copying extents — copies
//     lose their source or destination mid-round and must retry or abort
//     with the cluster exactly as before;
//   * migrate during repair: migrations fire while repairs are in flight, so
//     the migrate-vs-repair same-slot arbitration (skip sources under
//     repair, never pick a repairing destination) runs hot;
//   * concurrent grow+shrink: an admission's rebalancing races a drain of
//     another node — two coordinators flip ownership of overlapping key sets
//     concurrently, serialized per key only by the index's generation guard.
//
// Stale-cache clients riding the old layouts are inherent to the workload:
// caches are invalidated only by the retired-layout GC, so between a flip
// and the horizon every client write bounces off the vacated slot's region
// fence (kMovedReplica) and re-learns — the tentpole's safety argument.
//
// The companion unit lifecycle tests live in tests/migration_test.cc; the
// fence-disabled canary (flip WITHOUT fencing the vacated slot is caught by
// the checker) lives in tests/chaos_replay_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/dm_abd_kv.h"
#include "src/kv/fusee_kv.h"
#include "src/kv/swarm_kv.h"
#include "src/repair/migration.h"
#include "src/repair/repair.h"
#include "src/swarm/recycler.h"
#include "tests/support/scenario.h"

namespace swarm {
namespace {

using sim::Spawn;
using testing::ChaosEnv;
using testing::ChaosHistories;
using testing::CheckHistories;
using testing::DriveScenarios;
using testing::ElasticFabric;
using testing::KvChaosClient;
using testing::ScenarioSpec;
using testing::SeedMessage;

void ExpectLinearizable(const ChaosHistories& hist, const ScenarioSpec& spec,
                        const chaos::ChaosEngine& engine) {
  const std::string violation = CheckHistories(hist);
  EXPECT_TRUE(violation.empty()) << violation << "\n  " << SeedMessage(spec, engine);
}

// Every injected lifecycle ran to completion by simulation end: one
// kMigrateDone per kMigrateStart (success or graceful abort), and no node
// left crashed mid-repair.
void ExpectMigrationLifecyclesComplete(const ChaosEnv& c, const ScenarioSpec& spec) {
  size_t starts = 0;
  size_t dones = 0;
  for (const chaos::FaultEvent& e : c.engine.trace()) {
    starts += e.kind == chaos::FaultKind::kMigrateStart ? 1 : 0;
    dones += e.kind == chaos::FaultKind::kMigrateDone ? 1 : 0;
  }
  EXPECT_EQ(starts, dones) << SeedMessage(spec, c.engine);
  EXPECT_EQ(c.engine.crashed_count(), 0) << SeedMessage(spec, c.engine);
}

// The choreography the engine fires (at most max_migrations = 2 per
// scenario): first a grow — admit a fresh node and rebalance keys onto it —
// then a shrink — drain node 0 and decommission it. Under the
// concurrent-grow+shrink spec both lifecycles overlap in time.
sim::Task<bool> QuorumMigrationStep(repair::MigrationService* migration, int step) {
  if (step % 2 == 0) {
    const int node = co_await migration->AdmitAndRebalance(/*max_keys=*/3);
    co_return node >= 0;
  }
  co_return co_await migration->Drain(/*node=*/0, /*decommission=*/true);
}

// FUSEE's variant drives the store's own two-slot re-homing. Grow: admit +
// join, then spread node 1's keys across the (now larger) serving set.
// Shrink: drain node 0; if any key could not move (its quorum was mid-crash
// or mid-recovery) the drain aborts gracefully and the node resumes serving.
sim::Task<bool> FuseeMigrationStep(ChaosEnv* c, kv::FuseeStore* store, Worker* w, int step) {
  if (step % 2 == 0) {
    const int node = c->membership.AdmitNode();
    if (node < 0) {
      co_return false;
    }
    c->membership.CompleteJoin(node);
    co_return (co_await store->MigrateNode(1, w)) == 0;
  }
  c->membership.BeginDrain(0);
  const uint64_t remaining = co_await store->MigrateNode(0, w);
  if (remaining != 0) {
    c->membership.CompleteJoin(0);  // Graceful abort: back to serving.
    co_return false;
  }
  co_return true;
}

// ---------- Runners: crash-recover wiring + a migration coordinator --------

void RunMigrationSwarmScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec, ElasticFabric());
  index::IndexService index(&c.env.sim, &c.env.fabric);
  Recycler recycler(&c.env.sim, &c.membership);
  index.set_retirement_horizon([&recycler] { return recycler.current_epoch(); },
                               [&recycler] { return recycler.SafeReclaimBefore(); });
  std::vector<std::unique_ptr<RecyclerParticipant>> participants;
  std::vector<std::unique_ptr<index::ClientCache>> caches;
  std::vector<std::unique_ptr<kv::SwarmKvSession>> sessions;
  std::vector<std::unique_ptr<kv::TrackedKvSession>> tracked;
  ChaosHistories hist;
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    caches.push_back(std::make_unique<index::ClientCache>());
    sessions.push_back(std::make_unique<kv::SwarmKvSession>(&w, &index, caches.back().get()));
    sessions.back()->set_serving(c.membership.serving());  // Placement filter.
    tracked.push_back(std::make_unique<kv::TrackedKvSession>(sessions.back().get()));
    participants.push_back(
        testing::MakeCoupledParticipant(&c.env.sim, i, tracked.back().get()));
    recycler.Register(participants.back().get());
  }
  repair::RepairService repair(&c.membership, &c.env.MakeWorker(0));
  repair::IndexRepairSource source(&index, repair::LayoutProtocol::kSafeGuess);
  repair.RegisterStore(&source);
  recycler.set_repair_gate([&repair] { return repair.InFlight(); });
  c.engine.set_repair_fn([&repair](int node) { return repair.RecoverAndRepair(node); });
  repair::MigrationService migration(&c.membership, &index, &c.env.MakeWorker(0),
                                     repair::LayoutProtocol::kSafeGuess);
  int mig_step = 0;
  c.engine.set_migration_fn(
      [&migration, &mig_step]() { return QuorumMigrationStep(&migration, mig_step++); });
  c.engine.set_epoch_churn([&recycler]() -> sim::Task<void> {
    recycler.HeartbeatAll();
    return recycler.RunRound();
  });
  index.add_gc_listener([&caches](const std::shared_ptr<const ObjectLayout>& lo) {
    for (auto& cache : caches) {
      cache->InvalidateLayout(lo.get());
    }
  });
  for (int i = 0; i < spec.clients; ++i) {
    Spawn(KvChaosClient(&c.env, tracked[static_cast<size_t>(i)].get(),
                        spec.seed * 131 + static_cast<uint64_t>(i), spec, &hist));
  }
  c.engine.Start();
  c.env.sim.Run();
  ExpectLinearizable(hist, spec, c.engine);
  ExpectMigrationLifecyclesComplete(c, spec);
}

void RunMigrationDmAbdScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec, ElasticFabric());
  index::IndexService index(&c.env.sim, &c.env.fabric);
  std::vector<std::unique_ptr<index::ClientCache>> caches;
  std::vector<std::unique_ptr<kv::DmAbdKvSession>> sessions;
  ChaosHistories hist;
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    caches.push_back(std::make_unique<index::ClientCache>());
    sessions.push_back(std::make_unique<kv::DmAbdKvSession>(&w, &index, caches.back().get()));
    sessions.back()->set_serving(c.membership.serving());
  }
  repair::RepairService repair(&c.membership, &c.env.MakeWorker(0));
  repair::IndexRepairSource source(&index, repair::LayoutProtocol::kAbd);
  repair.RegisterStore(&source);
  c.engine.set_repair_fn([&repair](int node) { return repair.RecoverAndRepair(node); });
  repair::MigrationService migration(&c.membership, &index, &c.env.MakeWorker(0),
                                     repair::LayoutProtocol::kAbd);
  int mig_step = 0;
  c.engine.set_migration_fn(
      [&migration, &mig_step]() { return QuorumMigrationStep(&migration, mig_step++); });
  for (int i = 0; i < spec.clients; ++i) {
    Spawn(KvChaosClient(&c.env, sessions[static_cast<size_t>(i)].get(),
                        spec.seed * 131 + static_cast<uint64_t>(i), spec, &hist));
  }
  c.engine.Start();
  c.env.sim.Run();
  ExpectLinearizable(hist, spec, c.engine);
  ExpectMigrationLifecyclesComplete(c, spec);
}

void RunMigrationFuseeScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec, ElasticFabric());
  kv::FuseeStore store(&c.env.fabric, /*recovery_duration=*/300 * sim::kMicrosecond);
  store.set_serving(c.membership.serving());
  std::vector<std::unique_ptr<index::ClientCache>> caches;
  std::vector<std::unique_ptr<kv::FuseeKvSession>> sessions;
  ChaosHistories hist;
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    caches.push_back(std::make_unique<index::ClientCache>());
    sessions.push_back(std::make_unique<kv::FuseeKvSession>(&w, &store, caches.back().get()));
  }
  repair::RepairService repair(&c.membership, &c.env.MakeWorker(0));
  repair.RegisterStore(&store);
  c.engine.set_repair_fn([&repair](int node) { return repair.RecoverAndRepair(node); });
  // The migration coordinator's verbs harvest from fenced slots, so its
  // worker rides the repair channel (MigrationService wires this itself;
  // FUSEE's store-level mover expects the caller to).
  Worker& mover = c.env.MakeWorker(0);
  mover.set_repair_excluded(c.membership.repairing());
  mover.MarkRepairChannel();
  int mig_step = 0;
  c.engine.set_migration_fn([&c, &store, &mover, &mig_step]() {
    return FuseeMigrationStep(&c, &store, &mover, mig_step++);
  });
  for (int i = 0; i < spec.clients; ++i) {
    Spawn(KvChaosClient(&c.env, sessions[static_cast<size_t>(i)].get(),
                        spec.seed * 131 + static_cast<uint64_t>(i), spec, &hist));
  }
  c.engine.Start();
  c.env.sim.Run();
  ExpectLinearizable(hist, spec, c.engine);
  ExpectMigrationLifecyclesComplete(c, spec);
}

// ---------- The three regimes ----------

// Baseline: migrations under the crash-recover fault mix — crashes land
// before, during and after the copy rounds.
ScenarioSpec CrashDuringMigrationSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.clients = 4;
  spec.keys = 6;
  spec.ops_per_client = 14;
  spec.mean_think = 18000;  // Stretch the workload past the lifecycles.
  spec.faults.horizon = 260 * sim::kMicrosecond;
  spec.faults.mean_gap = 8 * sim::kMicrosecond;
  spec.faults.migration_weight = 2.5;
  spec.faults.max_migrations = 2;
  spec.faults.max_crashed = 1;
  spec.faults.restart = true;
  spec.faults.repair = true;
  spec.faults.min_down = 50 * sim::kMicrosecond;
  spec.faults.max_down = 150 * sim::kMicrosecond;
  spec.faults.max_drop_p = 0.3;
  spec.faults.drop_ack_weight = 2.0;
  return spec;
}

// Repair-heavy: more and longer-overlapping crash-recover lifecycles so
// migrations routinely fire while a repair holds a node — the arbitration
// regime. Two nodes may be down at once.
ScenarioSpec MigrateDuringRepairSpec(uint64_t seed) {
  ScenarioSpec spec = CrashDuringMigrationSpec(seed);
  spec.faults.crash_weight = 2.5;
  spec.faults.max_crashed = 2;
  spec.faults.horizon = 300 * sim::kMicrosecond;
  spec.mean_think = 24000;
  return spec;
}

// Pure elasticity: no crashes at all, but both lifecycles (grow, shrink)
// injected close together so the admission's rebalancing overlaps the drain
// — concurrent coordinators flipping overlapping key sets, serialized per
// key only by the index generation guard. Drop bursts keep the copy rounds
// retrying mid-overlap.
ScenarioSpec ConcurrentGrowShrinkSpec(uint64_t seed) {
  ScenarioSpec spec = CrashDuringMigrationSpec(seed);
  spec.faults.crash_weight = 0.0;
  spec.faults.migration_weight = 5.0;
  spec.faults.mean_gap = 5 * sim::kMicrosecond;
  spec.faults.max_drop_p = 0.35;
  return spec;
}

TEST(ChaosMigrationSwarmKv, CrashDuringMigrationStaysLinearizable) {
  DriveScenarios(10000, [](const ScenarioSpec& s) { RunMigrationSwarmScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = CrashDuringMigrationSpec(seed);
    spec.faults.churn_weight = 0.4;  // Retired-as-moved layouts ride the GC horizon.
    spec.faults.fault_index_link = true;
    return spec;
  });
}

TEST(ChaosMigrationSwarmKv, MigrateDuringRepairStaysLinearizable) {
  DriveScenarios(10300, [](const ScenarioSpec& s) { RunMigrationSwarmScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = MigrateDuringRepairSpec(seed);
    spec.faults.churn_weight = 0.3;
    spec.faults.fault_index_link = true;
    return spec;
  });
}

TEST(ChaosMigrationSwarmKv, ConcurrentGrowShrinkStaysLinearizable) {
  DriveScenarios(10600, [](const ScenarioSpec& s) { RunMigrationSwarmScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = ConcurrentGrowShrinkSpec(seed);
    spec.faults.churn_weight = 0.4;
    spec.faults.fault_index_link = true;
    return spec;
  });
}

TEST(ChaosMigrationDmAbdKv, CrashDuringMigrationStaysLinearizable) {
  DriveScenarios(11000, [](const ScenarioSpec& s) { RunMigrationDmAbdScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = CrashDuringMigrationSpec(seed);
    spec.faults.fault_index_link = true;
    return spec;
  });
}

TEST(ChaosMigrationDmAbdKv, MigrateDuringRepairStaysLinearizable) {
  DriveScenarios(11300, [](const ScenarioSpec& s) { RunMigrationDmAbdScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = MigrateDuringRepairSpec(seed);
    spec.faults.fault_index_link = true;
    return spec;
  });
}

TEST(ChaosMigrationDmAbdKv, ConcurrentGrowShrinkStaysLinearizable) {
  DriveScenarios(11600, [](const ScenarioSpec& s) { RunMigrationDmAbdScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = ConcurrentGrowShrinkSpec(seed);
    spec.faults.fault_index_link = true;
    return spec;
  });
}

TEST(ChaosMigrationFuseeKv, CrashDuringMigrationStaysLinearizable) {
  DriveScenarios(12000, [](const ScenarioSpec& s) { RunMigrationFuseeScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = CrashDuringMigrationSpec(seed);
    // FUSEE stalls on every failed verb (a full recovery), so milder drops.
    spec.faults.max_drop_p = 0.15;
    return spec;
  });
}

TEST(ChaosMigrationFuseeKv, MigrateDuringRepairStaysLinearizable) {
  DriveScenarios(12300, [](const ScenarioSpec& s) { RunMigrationFuseeScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = MigrateDuringRepairSpec(seed);
    spec.faults.max_drop_p = 0.15;
    spec.mean_think = 30000;  // Room for overlapping recovery stalls.
    return spec;
  });
}

TEST(ChaosMigrationFuseeKv, ConcurrentGrowShrinkStaysLinearizable) {
  DriveScenarios(12600, [](const ScenarioSpec& s) { RunMigrationFuseeScenario(s); },
                 [](uint64_t seed) {
    ScenarioSpec spec = ConcurrentGrowShrinkSpec(seed);
    spec.faults.max_drop_p = 0.15;
    return spec;
  });
}

}  // namespace
}  // namespace swarm
