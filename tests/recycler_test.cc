// Tests for the memory-recycling extension (§4.5/§5.4): epoch rounds,
// responsiveness, and fencing of crashed clients through the membership
// service — recycling must not block forever on a dead client.

#include "src/swarm/recycler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>

#include "src/fabric/fabric.h"
#include "src/kv/tracked_session.h"
#include "src/sim/simulator.h"

namespace swarm {
namespace {

struct RecyclerEnv {
  RecyclerEnv() : fabric(&sim, fabric::FabricConfig{}), membership(&sim, &fabric),
                  recycler(&sim, &membership) {}

  sim::Simulator sim;
  fabric::Fabric fabric;
  membership::MembershipService membership;
  Recycler recycler;
};

TEST(Recycler, RoundAdvancesSafeHorizonWithLiveClients) {
  RecyclerEnv env;
  RecyclerParticipant a(&env.sim, 1, 5000);
  RecyclerParticipant b(&env.sim, 2, 9000);
  env.recycler.Register(&a);
  env.recycler.Register(&b);

  EXPECT_EQ(env.recycler.SafeReclaimBefore(), 0u);
  sim::Spawn(env.recycler.RunRound());
  env.sim.Run();
  EXPECT_EQ(env.recycler.current_epoch(), 1u);
  EXPECT_EQ(env.recycler.SafeReclaimBefore(), 1u);
  EXPECT_EQ(a.published_epoch(), 1u);
  EXPECT_EQ(b.published_epoch(), 1u);
  EXPECT_EQ(env.recycler.fenced_clients(), 0u);
}

TEST(Recycler, MultipleRoundsKeepAdvancing) {
  RecyclerEnv env;
  RecyclerParticipant a(&env.sim, 1, 2000);
  env.recycler.Register(&a);
  for (int i = 0; i < 5; ++i) {
    env.recycler.HeartbeatAll();
    sim::Spawn(env.recycler.RunRound());
    env.sim.Run();
  }
  EXPECT_EQ(env.recycler.SafeReclaimBefore(), 5u);
}

TEST(Recycler, CrashedClientIsFencedNotWaitedForForever) {
  RecyclerEnv env;
  RecyclerParticipant alive(&env.sim, 1, 2000);
  RecyclerParticipant dead(&env.sim, 2, 2000);
  env.recycler.Register(&alive);
  env.recycler.Register(&dead);
  dead.Crash();

  const sim::Time start = env.sim.Now();
  sim::Spawn(env.recycler.RunRound());
  env.sim.Run();
  // The round completed despite the dead client (bounded by the lease
  // grace), and the horizon still advanced: §5.4's liveness argument.
  EXPECT_EQ(env.recycler.SafeReclaimBefore(), 1u);
  EXPECT_EQ(env.recycler.fenced_clients(), 1u);
  EXPECT_LE(env.sim.Now() - start, 3 * sim::kMillisecond);
  EXPECT_EQ(dead.published_epoch(), 0u);
}

TEST(Recycler, SuspectedClientSkippedInLaterRounds) {
  RecyclerEnv env;
  RecyclerParticipant alive(&env.sim, 1, 2000);
  RecyclerParticipant dead(&env.sim, 2, 2000);
  env.recycler.Register(&alive);
  env.recycler.Register(&dead);
  dead.Crash();

  sim::Spawn(env.recycler.RunRound());
  env.sim.Run();
  // Let the dead client's lease expire, then heartbeat the live one (real
  // clients renew continuously; the dead one has stopped).
  env.sim.RunUntil(env.sim.Now() + 5 * sim::kMillisecond);
  env.membership.RenewLease(1);
  EXPECT_TRUE(env.membership.IsSuspected(2));
  EXPECT_FALSE(env.membership.IsSuspected(1));

  // Later rounds no longer wait for the fenced client at all.
  const sim::Time start = env.sim.Now();
  sim::Time round_done = 0;
  auto timed = [](RecyclerEnv* env, sim::Time* done) -> sim::Task<void> {
    co_await env->recycler.RunRound();
    *done = env->sim.Now();
  };
  sim::Spawn(timed(&env, &round_done));
  env.sim.Run();
  EXPECT_EQ(env.recycler.SafeReclaimBefore(), 2u);
  EXPECT_LT(round_done - start, sim::kMillisecond);
}

TEST(Recycler, ClientCrashingMidEpochWithFreshLeaseBlocksUntilFenced) {
  // A client that crashes mid-epoch while its lease is still fresh (leases
  // here outlive the round's grace period) may hold reads from before the
  // epoch bump, and memory nodes have not disconnected it yet. The round
  // must NOT advance the safe horizon at grace expiry — that would recycle
  // buffers under the crashed client — but wait for membership suspicion,
  // fence it, and only then advance.
  sim::Simulator sim;
  fabric::Fabric fabric(&sim, fabric::FabricConfig{});
  membership::MembershipService membership(&sim, &fabric, 50 * sim::kMicrosecond,
                                           /*lease_duration=*/5 * sim::kMillisecond);
  Recycler recycler(&sim, &membership);
  RecyclerParticipant alive(&sim, 1, 2000);
  RecyclerParticipant doomed(&sim, 2, 2000);
  recycler.Register(&alive);
  recycler.Register(&doomed);
  sim.After(500, [&doomed] { doomed.Crash(); });  // Mid-epoch, post-renewal.

  sim::Spawn(recycler.RunRound());
  sim.Run();
  // The horizon did advance (liveness) ...
  EXPECT_EQ(recycler.SafeReclaimBefore(), 1u);
  // ... but only after the crashed client was fenced via lease expiry —
  // i.e. not before its 5 ms lease ran out, even though the round's grace
  // period ended at 2 ms.
  EXPECT_EQ(recycler.fenced_clients(), 1u);
  EXPECT_TRUE(membership.IsSuspected(2));
  EXPECT_GE(sim.Now(), 5 * sim::kMillisecond);
  EXPECT_EQ(doomed.published_epoch(), 0u);
  EXPECT_EQ(alive.published_epoch(), 1u);
}

TEST(Recycler, SafeHorizonWaitsForInFlightRepair) {
  // A node repair chases survivors' out-of-place pointers like a reader but
  // holds no lease: the safe horizon must not advance past it
  // (set_repair_gate), and must advance promptly once it completes.
  RecyclerEnv env;
  RecyclerParticipant a(&env.sim, 1, 2000);
  env.recycler.Register(&a);
  bool repair_in_flight = true;
  env.recycler.set_repair_gate([&repair_in_flight] { return repair_in_flight; });

  sim::Time horizon_advanced_at = 0;
  auto watcher = [](RecyclerEnv* env, sim::Time* at) -> sim::Task<void> {
    while (env->recycler.SafeReclaimBefore() == 0) {
      co_await env->sim.Delay(1000);
    }
    *at = env->sim.Now();
  };
  const sim::Time repair_done_at = 400 * sim::kMicrosecond;
  env.sim.After(repair_done_at, [&repair_in_flight] { repair_in_flight = false; });
  sim::Spawn(env.recycler.RunRound());
  sim::Spawn(watcher(&env, &horizon_advanced_at));
  env.sim.Run();

  EXPECT_EQ(env.recycler.SafeReclaimBefore(), 1u);
  EXPECT_GE(horizon_advanced_at, repair_done_at)
      << "the safe horizon advanced past an in-flight repair";
}

// A stand-in store whose every op takes a fixed virtual time — long enough
// to straddle a recycling round, like a real op chasing an out-of-place
// pointer across delay spikes.
struct SlowSession : kv::KvSession {
  SlowSession(sim::Simulator* s, sim::Time l) : sim(s), latency(l) {}
  sim::Task<kv::KvResult> Get(uint64_t) override { return Op(); }
  sim::Task<kv::KvResult> Update(uint64_t, std::span<const uint8_t>) override { return Op(); }
  sim::Task<kv::KvResult> Insert(uint64_t, std::span<const uint8_t>) override { return Op(); }
  sim::Task<kv::KvResult> Remove(uint64_t) override { return Op(); }
  sim::Task<kv::KvResult> Op() {
    co_await sim->Delay(latency);
    kv::KvResult ok;
    ok.status = kv::KvStatus::kOk;
    co_return ok;
  }
  sim::Simulator* sim;
  sim::Time latency;
};

TEST(Recycler, SyntheticAckAdvancesHorizonPastLiveOpCoupledAckDoesNot) {
  // THE REGRESSION the TrackedKvSession coupling closes: an UNCOUPLED
  // participant acknowledges an epoch after its synthetic delay even while
  // the client's own operation is still mid-flight — the safe horizon then
  // passes buffers that op may still be reading, and only the index GC's
  // use-count crutch kept the simulation honest. A COUPLED participant's
  // ack first drains every op in flight at the drain's start (§4.5's
  // "readers acknowledge" actually meaning something).
  for (const bool coupled : {false, true}) {
    RecyclerEnv env;
    SlowSession slow(&env.sim, /*latency=*/3 * sim::kMillisecond);
    kv::TrackedKvSession session(&slow);
    RecyclerParticipant p(&env.sim, 1, /*ack_delay=*/300);
    if (coupled) {
      p.CoupleDrain([&session] { return session.next_seq(); },
                    [&session] { return session.oldest_inflight(); });
    }
    env.recycler.Register(&p);

    sim::Time op_done_at = 0;
    auto op = [](kv::TrackedKvSession* s, sim::Simulator* sim,
                 sim::Time* done) -> sim::Task<void> {
      (void)co_await s->Get(7);
      *done = sim->Now();
    };
    sim::Time horizon_at = 0;
    auto watcher = [](RecyclerEnv* env, sim::Time* at) -> sim::Task<void> {
      while (env->recycler.SafeReclaimBefore() == 0) {
        co_await env->sim.Delay(100);
      }
      *at = env->sim.Now();
    };
    // Real clients renew continuously; keep the lease fresh past the drain
    // so the round's only way forward is the ack itself.
    auto heartbeats = [](RecyclerEnv* env) -> sim::Task<void> {
      for (int i = 0; i < 12; ++i) {
        env->recycler.HeartbeatAll();
        co_await env->sim.Delay(500 * sim::kMicrosecond);
      }
    };
    sim::Spawn(op(&session, &env.sim, &op_done_at));  // In flight at round start.
    sim::Spawn(env.recycler.RunRound());
    sim::Spawn(watcher(&env, &horizon_at));
    sim::Spawn(heartbeats(&env));
    env.sim.Run();

    ASSERT_EQ(env.recycler.SafeReclaimBefore(), 1u) << "coupled=" << coupled;
    EXPECT_EQ(env.recycler.fenced_clients(), 0u) << "coupled=" << coupled;
    ASSERT_GT(op_done_at, 0u) << "coupled=" << coupled;
    if (coupled) {
      EXPECT_GE(horizon_at, op_done_at)
          << "a coupled ack let the safe horizon pass a live op";
    } else {
      // The old synthetic behavior, demonstrably unsafe: the horizon moved
      // while the op was still in flight.
      EXPECT_LT(horizon_at, op_done_at);
    }
  }
}

TEST(Membership, NodeCrashNotificationReachesSubscribers) {
  sim::Simulator sim;
  fabric::Fabric fabric(&sim, fabric::FabricConfig{});
  membership::MembershipService membership(&sim, &fabric, 50 * sim::kMicrosecond);
  auto known = std::make_shared<std::vector<bool>>(4, false);
  membership.Subscribe(known);

  membership.CrashNode(2);
  EXPECT_TRUE(fabric.node(2).failed());  // The crash itself is immediate.
  EXPECT_FALSE((*known)[2]);             // Detection takes a while.
  sim.RunUntil(sim.Now() + 40 * sim::kMicrosecond);
  EXPECT_FALSE((*known)[2]);
  sim.RunUntil(sim.Now() + 20 * sim::kMicrosecond);
  EXPECT_TRUE((*known)[2]);

  membership.RecoverNode(2);
  sim.RunUntil(sim.Now() + 60 * sim::kMicrosecond);
  EXPECT_FALSE((*known)[2]);
  EXPECT_FALSE(fabric.node(2).failed());
}

}  // namespace
}  // namespace swarm
