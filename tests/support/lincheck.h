// A linearizability checker for register histories.
//
// Histories are collections of operations (reads and writes on one register)
// with invocation/response timestamps from the simulator's virtual clock.
// The checker runs a Wing&Gong-style DFS: repeatedly pick an operation that
// is "enabled" (its invocation precedes every unlinearized operation's
// response), apply register semantics, and backtrack on dead ends. States
// (chosen-set, current-value) are memoized. Histories are kept small (≤ 63
// ops) by the stress tests, so the worst case stays tractable.
//
// PENDING operations — ops whose response was never recorded because the
// client observed a timeout, an unavailable quorum, or crashed mid-call —
// are marked with HistoryOp::pending. A pending op may have taken effect at
// any instant after its invocation (a write whose ack was dropped still
// landed at a majority) or may never have executed at all, so the checker
// (a) treats its response time as +infinity and (b) accepts a linearization
// that explains every COMPLETED op, whether or not pending ops were
// linearized. A pending write whose value was observed by a completed read
// is thereby forced into the order; one never observed is simply dropped.
//
// Values are plain uint64 (0 = the initial/empty value ⊥). Writes must use
// distinct values for the strongest discrimination.

#ifndef SWARM_TESTS_SUPPORT_LINCHECK_H_
#define SWARM_TESTS_SUPPORT_LINCHECK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace swarm::testing {

struct HistoryOp {
  bool is_write = false;
  uint64_t value = 0;  // Written value, or value returned by the read.
  sim::Time invoked = 0;
  sim::Time responded = 0;
  // No response recorded: possibly applied anywhere after `invoked`, or
  // never. `responded` is ignored for pending ops.
  bool pending = false;
};

class LinearizabilityChecker {
 public:
  // Returns true iff the history has a linearization consistent with
  // register semantics (reads return the latest linearized write, or 0 if
  // none) in which every completed (non-pending) op takes effect exactly
  // once and pending ops take effect at most once.
  static bool Check(const std::vector<HistoryOp>& ops) {
    if (ops.size() > 63) {
      return false;  // Caller bug: keep histories small.
    }
    LinearizabilityChecker checker(ops);
    return checker.Dfs(0, 0);
  }

 private:
  explicit LinearizabilityChecker(const std::vector<HistoryOp>& ops) : ops_(ops) {
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (!ops_[i].pending) {
        completed_ |= 1ull << i;
      }
    }
  }

  sim::Time ResponseOf(size_t i) const {
    return ops_[i].pending ? std::numeric_limits<sim::Time>::max() : ops_[i].responded;
  }

  bool Dfs(uint64_t mask, uint64_t value) {
    if ((mask & completed_) == completed_) {
      return true;  // Every completed op explained; leftovers are pending.
    }
    if (!visited_.insert({mask, value}).second) {
      return false;
    }
    // An op is enabled if no unlinearized op responded before it was invoked.
    sim::Time min_resp = std::numeric_limits<sim::Time>::max();
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) == 0) {
        min_resp = std::min(min_resp, ResponseOf(i));
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) != 0) {
        continue;
      }
      const HistoryOp& op = ops_[i];
      if (op.invoked > min_resp) {
        continue;  // Some other pending op must linearize first.
      }
      if (op.is_write) {
        if (Dfs(mask | (1ull << i), op.value)) {
          return true;
        }
      } else if (op.value == value) {
        if (Dfs(mask | (1ull << i), value)) {
          return true;
        }
      }
    }
    return false;
  }

  const std::vector<HistoryOp>& ops_;
  uint64_t completed_ = 0;
  std::set<std::pair<uint64_t, uint64_t>> visited_;
};

}  // namespace swarm::testing

#endif  // SWARM_TESTS_SUPPORT_LINCHECK_H_
