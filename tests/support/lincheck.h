// A linearizability checker for register histories.
//
// Histories are collections of operations (reads and writes on one register)
// with invocation/response timestamps from the simulator's virtual clock.
// The checker runs a Wing&Gong-style DFS: repeatedly pick an operation that
// is "enabled" (its invocation precedes every unlinearized operation's
// response), apply register semantics, and backtrack on dead ends. States
// (chosen-set, current-value) are memoized. Histories are kept small (≤ 63
// ops) by the stress tests, so the worst case stays tractable.
//
// Values are plain uint64 (0 = the initial/empty value ⊥). Writes must use
// distinct values for the strongest discrimination.

#ifndef SWARM_TESTS_SUPPORT_LINCHECK_H_
#define SWARM_TESTS_SUPPORT_LINCHECK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace swarm::testing {

struct HistoryOp {
  bool is_write = false;
  uint64_t value = 0;  // Written value, or value returned by the read.
  sim::Time invoked = 0;
  sim::Time responded = 0;
};

class LinearizabilityChecker {
 public:
  // Returns true iff the history has a linearization consistent with
  // register semantics (reads return the latest linearized write, or 0 if
  // none).
  static bool Check(const std::vector<HistoryOp>& ops) {
    if (ops.size() > 63) {
      return false;  // Caller bug: keep histories small.
    }
    LinearizabilityChecker checker(ops);
    return checker.Dfs(0, 0);
  }

 private:
  explicit LinearizabilityChecker(const std::vector<HistoryOp>& ops) : ops_(ops) {}

  bool Dfs(uint64_t mask, uint64_t value) {
    const uint64_t full = (1ull << ops_.size()) - 1;
    if (mask == full) {
      return true;
    }
    if (!visited_.insert({mask, value}).second) {
      return false;
    }
    // An op is enabled if no unlinearized op responded before it was invoked.
    sim::Time min_resp = std::numeric_limits<sim::Time>::max();
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) == 0) {
        min_resp = std::min(min_resp, ops_[i].responded);
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & (1ull << i)) != 0) {
        continue;
      }
      const HistoryOp& op = ops_[i];
      if (op.invoked > min_resp) {
        continue;  // Some other pending op must linearize first.
      }
      if (op.is_write) {
        if (Dfs(mask | (1ull << i), op.value)) {
          return true;
        }
      } else if (op.value == value) {
        if (Dfs(mask | (1ull << i), value)) {
          return true;
        }
      }
    }
    return false;
  }

  const std::vector<HistoryOp>& ops_;
  std::set<std::pair<uint64_t, uint64_t>> visited_;
};

}  // namespace swarm::testing

#endif  // SWARM_TESTS_SUPPORT_LINCHECK_H_
