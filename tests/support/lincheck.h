// Compatibility shim: the linearizability checker was promoted out of the
// test tree into src/verify/lincheck.{h,cc} (PR 4) so bench drivers and
// examples can assert histories too. Test code keeps using the
// swarm::testing names.

#ifndef SWARM_TESTS_SUPPORT_LINCHECK_H_
#define SWARM_TESTS_SUPPORT_LINCHECK_H_

#include "src/verify/lincheck.h"

namespace swarm::testing {

using verify::CheckResult;
using verify::CheckStats;
using verify::HistoryOp;
using verify::LinearizabilityChecker;

}  // namespace swarm::testing

#endif  // SWARM_TESTS_SUPPORT_LINCHECK_H_
