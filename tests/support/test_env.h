// Shared test scaffolding: a simulator + fabric + workers wired together the
// way SWARM-KV would, with deterministic timing by default.

#ifndef SWARM_TESTS_SUPPORT_TEST_ENV_H_
#define SWARM_TESTS_SUPPORT_TEST_ENV_H_

#include <memory>
#include <numeric>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/membership/membership.h"
#include "src/sim/simulator.h"
#include "src/swarm/clock.h"
#include "src/swarm/layout.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/worker.h"

namespace swarm::testing {

struct TestEnv {
  explicit TestEnv(uint64_t seed = 1, fabric::FabricConfig fcfg = DefaultFabric(),
                   ProtocolConfig pcfg = DefaultProtocol())
      : sim(seed), fabric(&sim, fcfg), proto(pcfg),
        known_failed(std::make_shared<std::vector<bool>>(
            static_cast<size_t>(fcfg.num_nodes), false)) {}

  static fabric::FabricConfig DefaultFabric() {
    fabric::FabricConfig cfg;
    cfg.num_nodes = 4;
    cfg.node_capacity_bytes = 8ull << 20;
    cfg.delay_jitter = 60;
    return cfg;
  }

  static ProtocolConfig DefaultProtocol() {
    ProtocolConfig cfg;
    cfg.replicas = 3;
    cfg.meta_slots = 4;
    cfg.max_writers = 8;
    cfg.max_value = 64;
    cfg.oop_pool_slots = 256;
    return cfg;
  }

  // Creates a worker with its own CPU and clock (skew in ns, may be negative).
  // `kf` overrides the shared known-failed set — the chaos harness's "client
  // that never learns" gets a private, never-notified copy.
  Worker& MakeWorker(int64_t skew_ns = 0, std::shared_ptr<std::vector<bool>> kf = nullptr) {
    const uint32_t tid = static_cast<uint32_t>(workers.size());
    cpus.push_back(std::make_unique<fabric::ClientCpu>(&sim));
    clocks.push_back(std::make_unique<GuessClock>(&sim, skew_ns));
    workers.push_back(std::make_unique<Worker>(&fabric, tid, cpus.back().get(),
                                               clocks.back().get(), proto,
                                               kf != nullptr ? std::move(kf) : known_failed));
    return *workers.back();
  }

  // Allocates one replicated object over nodes 0..R-1.
  ObjectLayout MakeObject(int inplace_copies = 1) {
    std::vector<int> nodes(static_cast<size_t>(proto.replicas));
    std::iota(nodes.begin(), nodes.end(), 0);
    return AllocateObject(fabric, nodes.data(), proto.replicas, proto.meta_slots,
                          proto.max_writers, proto.max_value, inplace_copies);
  }

  std::shared_ptr<ObjectCache> MakeCache() { return std::make_shared<ObjectCache>(); }

  sim::Simulator sim;
  fabric::Fabric fabric;
  ProtocolConfig proto;
  std::shared_ptr<std::vector<bool>> known_failed;
  std::vector<std::unique_ptr<fabric::ClientCpu>> cpus;
  std::vector<std::unique_ptr<GuessClock>> clocks;
  std::vector<std::unique_ptr<Worker>> workers;
};

// Elastic-membership scenarios hot-add nodes mid-run (MigrationService::
// AdmitAndRebalance → Fabric::AddNode): the fabric needs lifetime headroom
// beyond the initial cluster, reserved up front so the per-link chaos fault
// arrays and the index pseudo-link stay stable across admissions.
inline fabric::FabricConfig ElasticFabric(int headroom = 2) {
  fabric::FabricConfig cfg = TestEnv::DefaultFabric();
  cfg.max_nodes = cfg.num_nodes + headroom;
  return cfg;
}

// Wires a worker's membership-epoch stamp and re-validation pull (§5.4):
// its verbs carry the client's cached epoch instead of kNoFenceEpoch, so the
// epoch-fenced verb path runs in unit fixtures too, not just the chaos
// harness. `subscribe` = false models the client that never receives pushes
// (it advances only through the kStaleEpoch → ValidateEpoch pull).
inline void WireWorkerEpoch(Worker& w, membership::MembershipService& membership,
                            bool subscribe = true) {
  auto epoch = std::make_shared<fabric::ClientEpoch>();
  epoch->value = membership.epoch();
  w.set_epoch(epoch);
  w.set_epoch_source([&membership] { return membership.ValidateEpoch(); });
  if (subscribe) {
    membership.SubscribeEpoch(std::move(epoch));
  }
}

inline std::vector<uint8_t> Val(std::initializer_list<uint8_t> bytes) { return bytes; }

inline std::vector<uint8_t> ValN(size_t n, uint8_t fill) { return std::vector<uint8_t>(n, fill); }

}  // namespace swarm::testing

#endif  // SWARM_TESTS_SUPPORT_TEST_ENV_H_
