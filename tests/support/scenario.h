// Chaos scenario scaffolding: ScenarioSpec + the machinery shared by the
// chaos suites (tests/chaos_*_test.cc).
//
// A scenario is a randomized multi-client open-loop workload interleaved
// with ChaosEngine fault injection. (ScenarioSpec, seed) fully determines
// the execution: every random choice — client think times, key picks, fault
// instants, drop coin-flips, latency jitter — is drawn either from the
// simulator's seeded Rng or from client Rngs derived from the seed. A
// failing seed printed by a suite replays byte-identically via the
// CHAOS_SEED environment variable (or tests/chaos_replay_test.cc, which
// asserts trace-hash identity).
//
// Environment knobs:
//   CHAOS_SCENARIOS=N  run N scenarios per suite (CI uses 200)
//   CHAOS_SEED=S       run only seed S (replay of a reported failure)

#ifndef SWARM_TESTS_SUPPORT_SCENARIO_H_
#define SWARM_TESTS_SUPPORT_SCENARIO_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kv/kv_types.h"
#include "src/kv/tracked_session.h"
#include "src/membership/membership.h"
#include "src/sim/chaos.h"
#include "src/swarm/recycler.h"
#include "src/ycsb/workload.h"
#include "tests/support/lincheck.h"
#include "tests/support/test_env.h"

namespace swarm::testing {

// Scenarios per suite: CHAOS_SCENARIOS overrides the built-in default.
inline int ScenarioCount(int fallback) {
  if (const char* s = std::getenv("CHAOS_SCENARIOS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) {
      return static_cast<int>(v);
    }
  }
  return fallback;
}

// Long-horizon soak scenarios are ~40x the virtual time of a regular one, so
// they scale through their own knob (CI's chaos-soak job raises it; the ASan
// matrix lowers it) instead of CHAOS_SCENARIOS.
inline constexpr int kDefaultSoakScenarios = 3;

inline int SoakScenarioCount(int fallback = kDefaultSoakScenarios) {
  if (const char* s = std::getenv("CHAOS_SOAK_SCENARIOS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) {
      return static_cast<int>(v);
    }
  }
  return fallback;
}

// Checker-scale soaks (10^5 ops) are ~50x a long-horizon soak, so they get
// their own knob and default to ONE scenario per suite locally; the CI
// checker-scale job raises it.
inline int ScaleScenarioCount(int fallback = 1) {
  if (const char* s = std::getenv("CHAOS_SCALE_SCENARIOS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) {
      return static_cast<int>(v);
    }
  }
  return fallback;
}

// Replay mode: CHAOS_SEED pins every suite to one seed.
inline bool ForcedSeed(uint64_t* seed) {
  if (const char* s = std::getenv("CHAOS_SEED")) {
    *seed = std::strtoull(s, nullptr, 10);
    return true;
  }
  return false;
}

// A scenario: workload shape + fault mix. Together with `seed` this fully
// determines the execution.
struct ScenarioSpec {
  uint64_t seed = 1;
  int clients = 4;
  uint64_t keys = 4;          // Key space (KV suites); protocol suites use 1 register.
  int ops_per_client = 10;
  uint32_t value_size = 16;
  sim::Time mean_think = 6000;     // Mean gap between a client's ops.
  int64_t max_clock_skew = 5000;   // Per-client GuessClock skew bound, ns.
  // Hot-key contention (multi-tenant Zipfian storms): when zipf_theta > 0,
  // KvChaosClient draws keys Zipfian(theta)-skewed instead of uniformly.
  // With tenants > 1, client c belongs to tenant (c % tenants) and its
  // distribution is rotated by the tenant's block offset, so each tenant
  // hammers a DIFFERENT hot key while all tenants share the full key space
  // — per-key cells stay dense (the checker-scale regime) without
  // partitioning the store into disjoint namespaces.
  double zipf_theta = 0.0;
  int tenants = 1;
  chaos::ChaosConfig faults;
};

// Long-horizon soak: 2,048 ops across 64 keys (~2.5 ms of virtual time)
// under the full fault mix, including per-QP drop bursts singling out one
// client's queue pair. Impossible before the unbounded checker: the legacy
// DFS capped every per-key history at 63 ops, forcing scenarios short enough
// that faults needing long incubation (recycler horizon churn across many
// epochs, slow ack-biased drop accumulation, repair overlapping later
// faults) were never observed under the linearizability contract. Suites add
// their store-specific fault classes (lease/churn weights, repair) on top.
inline ScenarioSpec LongHorizonSoakSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.clients = 8;
  spec.keys = 64;
  spec.ops_per_client = 256;  // 2,048 ops total.
  spec.value_size = 16;
  spec.mean_think = 5000;
  spec.faults.horizon = 1 * sim::kMillisecond;
  spec.faults.mean_gap = 10 * sim::kMicrosecond;  // ~100 faults per scenario.
  spec.faults.max_crashed = 1;
  spec.faults.restart = false;  // Crash-stop unless the suite wires repair.
  spec.faults.max_drop_p = 0.30;
  spec.faults.qp_drop_weight = 0.6;
  spec.faults.qp_tag_count = spec.clients;
  return spec;
}

// The long-horizon regime plus recurring client split-brain partitions:
// the client population is repeatedly cut into two groups that each see a
// disjoint subset of the nodes (chaos::ChaosConfig::client_split_weight), so
// both sides keep completing ops against different replica subsets and the
// merged history is what the checker must reconcile. The weight makes splits
// the single most likely fault class; everything else from the soak mix
// stays in.
inline ScenarioSpec SplitBrainSoakSpec(uint64_t seed) {
  ScenarioSpec spec = LongHorizonSoakSpec(seed);
  spec.faults.client_split_weight = 1.5;
  spec.faults.min_client_split_duration = 40 * sim::kMicrosecond;
  spec.faults.max_client_split_duration = 200 * sim::kMicrosecond;
  return spec;
}

// Checker-scale soak: 10^5 ops (10 clients x 10,000 ops over 64 keys,
// ~100 ms of virtual time) under client split-brain + multi-tenant Zipfian
// hot-key contention. The fault horizon covers the first ~40 ms so the tail
// drains cleanly and histories complete. This is the regime the frontier
// checker + persistent memo were built for: the hottest tenant keys
// accumulate 10^4-op cells, which the scan-based engine's O(n) enabling
// rescan and per-state bitset copies made intractable. Suites assert a
// wall-clock budget on the check itself (<60 s, see chaos_kv_test.cc).
inline ScenarioSpec CheckerScaleSoakSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.clients = 10;
  spec.keys = 64;
  spec.ops_per_client = 10000;  // 100,000 ops total.
  spec.value_size = 16;
  spec.mean_think = 5000;
  spec.zipf_theta = 0.99;
  spec.tenants = 5;
  spec.faults.horizon = 40 * sim::kMillisecond;
  spec.faults.mean_gap = 150 * sim::kMicrosecond;  // ~250 faults per scenario.
  spec.faults.max_crashed = 1;
  spec.faults.restart = false;  // Crash-stop unless the suite wires repair.
  spec.faults.max_drop_p = 0.20;
  spec.faults.qp_drop_weight = 0.5;
  spec.faults.qp_tag_count = spec.clients;
  spec.faults.client_split_weight = 1.0;
  return spec;
}

// Simulator + fabric + membership + chaos engine wired the way a chaos
// scenario needs them. Workers subscribe to membership notifications and
// share the membership service's per-node `repairing` set, so quorum
// selection excludes nodes mid-repair (crash-recover scenarios); each worker
// also carries a membership epoch (§5.4 QP revocation) pushed by the
// service, so every chaos suite exercises the epoch-fenced verb path.
struct ChaosEnv {
  // Every chaos client worker is a writer, so a spec with more clients than
  // the configured W must widen each object's TSL region: a writer tid past
  // the region would CAS the neighboring slab slot's words and mis-arbitrate
  // its own guesses (caught by the 10-client checker-scale storms; see the
  // UndersizedWriterBound canary in chaos_replay_test.cc). A caller that
  // turns enforce_writer_bounds off keeps its config verbatim — that is the
  // canary's pre-fix reproduction path.
  static ProtocolConfig SizeProtocolFor(const ScenarioSpec& spec, ProtocolConfig pcfg) {
    if (pcfg.enforce_writer_bounds) {
      pcfg.max_writers = std::max(pcfg.max_writers, spec.clients);
    }
    return pcfg;
  }

  explicit ChaosEnv(const ScenarioSpec& spec,
                    fabric::FabricConfig fcfg = TestEnv::DefaultFabric(),
                    ProtocolConfig pcfg = TestEnv::DefaultProtocol())
      : env(spec.seed, fcfg, SizeProtocolFor(spec, pcfg)),
        membership(&env.sim, &env.fabric, /*detection_delay=*/50 * sim::kMicrosecond),
        engine(&env.fabric, &membership, spec.faults) {
    membership.Subscribe(env.known_failed);
  }

  // Chaos workers are tagged in creation order so per-QP drop bursts
  // (ChaosConfig::qp_drop_weight with qp_tag_count = spec.clients) can
  // single out one client's queue pair. Suites that create one worker per
  // client in client order therefore get tag == client id for free.
  Worker& MakeSkewedWorker(const ScenarioSpec& spec) {
    Worker& w = env.MakeWorker(env.sim.rng().Range(-spec.max_clock_skew, spec.max_clock_skew));
    w.set_repair_excluded(membership.repairing());
    w.set_chaos_tag(next_chaos_tag_++);
    WireEpoch(w, /*subscribe=*/true);
    return w;
  }

  // The stale client of the CrashRecoverStaleClient suites: it NEVER
  // receives membership pushes — neither node-failure notifications nor
  // epoch advances — so it keeps issuing verbs stamped with its boot-time
  // epoch across whole crash-repair cycles. Its only way forward is the
  // fence itself: kStaleEpoch completions force the re-validation pull
  // (Worker::RefreshEpoch). Pre-fix (epoch fencing off) such a client's
  // in-flight verbs land on repaired state and are trusted — the §5.4
  // window the canary demonstrates.
  Worker& MakeDeafWorker(const ScenarioSpec& spec) {
    auto private_kf = std::make_shared<std::vector<bool>>(
        static_cast<size_t>(env.fabric.num_nodes()), false);
    Worker& w = env.MakeWorker(env.sim.rng().Range(-spec.max_clock_skew, spec.max_clock_skew),
                               std::move(private_kf));
    w.set_repair_excluded(membership.repairing());
    w.set_chaos_tag(next_chaos_tag_++);
    WireEpoch(w, /*subscribe=*/false);
    return w;
  }

  void WireEpoch(Worker& w, bool subscribe) { WireWorkerEpoch(w, membership, subscribe); }

  TestEnv env;
  membership::MembershipService membership;
  chaos::ChaosEngine engine;
  int next_chaos_tag_ = 0;
};

// Client `client`'s recycling participant, COUPLED to its real op stream:
// the epoch ack drains the session's in-flight ops
// (RecyclerParticipant::CoupleDrain) instead of completing after a purely
// synthetic delay — the §4.5 contract the safe-reclaim horizon claims. The
// staggered ack_delay still models the network + scheduling latency in front
// of the drain.
inline std::unique_ptr<RecyclerParticipant> MakeCoupledParticipant(
    sim::Simulator* sim, int client, kv::TrackedKvSession* session) {
  auto p = std::make_unique<RecyclerParticipant>(
      sim, 100 + static_cast<uint32_t>(client),
      /*ack_delay=*/1500 + 137 * static_cast<sim::Time>(client));
  p->CoupleDrain([session] { return session->next_seq(); },
                 [session] { return session->oldest_inflight(); });
  return p;
}

inline std::vector<uint8_t> EncodeValue(uint64_t v, uint32_t size) {
  std::vector<uint8_t> b(std::max<uint32_t>(size, 8));
  std::memcpy(b.data(), &v, 8);
  return b;
}

inline uint64_t DecodeValue(const std::vector<uint8_t>& b) {
  uint64_t v = 0;
  if (b.size() >= 8) {
    std::memcpy(&v, b.data(), 8);
  }
  return v;
}

// Per-key recorded histories. Value 0 models "absent" (never inserted or
// deleted); writes use globally unique nonzero values.
struct ChaosHistories {
  std::map<uint64_t, std::vector<HistoryOp>> per_key;
  uint64_t next_value = 1;
  int pending_ops = 0;   // Ops recorded as possibly-applied.
  int failed_reads = 0;  // Unavailable reads (no constraint, not recorded).
};

// Op-mix for KvChaosClient: cumulative dice cutoffs (get < update < insert;
// the remainder is removes). The default reproduces the original
// 40/30/20/10 mix; the repair canaries use a remove-heavy variant.
struct KvOpMix {
  double get = 0.40;
  double update = 0.70;
  double insert = 0.90;
};

// One KV chaos client: randomized gets/updates/inserts/removes against a
// shared small key space, recording every op's invocation/response. Ops
// whose outcome the client never learned (unavailable quorum, node timeouts)
// are recorded as PENDING writes — possibly applied — which is exactly the
// ambiguity LinearizabilityChecker::Check resolves.
inline sim::Task<void> KvChaosClient(TestEnv* env, kv::KvSession* kv, uint64_t rng_seed,
                                     const ScenarioSpec& spec, ChaosHistories* hist,
                                     KvOpMix mix = {}, int client = 0) {
  sim::Rng rng(rng_seed);
  // Zipfian hot-key mode: rank 0 (the hottest key) maps to the client's
  // tenant offset, so tenants contend on different hot keys over the shared
  // key space. Draws come from the client's own rng — determinism per
  // (spec, seed) is unchanged.
  ycsb::ZipfianGenerator zipf(spec.keys, spec.zipf_theta > 0.0 ? spec.zipf_theta : 0.99);
  const uint64_t tenant_offset =
      spec.tenants > 1
          ? static_cast<uint64_t>(client % spec.tenants) * (spec.keys / spec.tenants)
          : 0;
  for (int i = 0; i < spec.ops_per_client; ++i) {
    co_await env->sim.Delay(1 + static_cast<sim::Time>(
                                    rng.Below(static_cast<uint64_t>(2 * spec.mean_think))));
    const uint64_t key = spec.zipf_theta > 0.0
                             ? (zipf.Next(rng) + tenant_offset) % spec.keys
                             : rng.Below(spec.keys);
    const double dice = rng.Double();
    HistoryOp op;
    op.invoked = env->sim.Now();
    if (dice < mix.get) {
      // Get. A failed read constrains nothing and is dropped entirely.
      kv::KvResult r = co_await kv->Get(key);
      op.responded = env->sim.Now();
      if (r.status == kv::KvStatus::kUnavailable) {
        ++hist->failed_reads;
        continue;
      }
      op.is_write = false;
      op.value = r.status == kv::KvStatus::kOk ? DecodeValue(r.value) : 0;
    } else if (dice < mix.update) {
      // Update. kNotFound is a read of "absent"; an unavailable outcome is a
      // possibly-applied write (some replicas may hold it).
      const uint64_t v = hist->next_value++;
      kv::KvResult r = co_await kv->Update(key, EncodeValue(v, spec.value_size));
      op.responded = env->sim.Now();
      op.is_write = true;
      op.value = v;
      if (r.status == kv::KvStatus::kUnavailable ||
          (r.status == kv::KvStatus::kNotFound && r.ambiguous)) {
        // Unknown outcome — including the tombstone-bounce case where the
        // guessed word was installed and a racing reader may commit it.
        op.pending = true;
        ++hist->pending_ops;
      } else if (r.status == kv::KvStatus::kNotFound) {
        op.is_write = false;
        op.value = 0;
      }
    } else if (dice < mix.insert) {
      // Insert (updates when the key exists).
      const uint64_t v = hist->next_value++;
      kv::KvResult r = co_await kv->Insert(key, EncodeValue(v, spec.value_size));
      op.responded = env->sim.Now();
      op.is_write = true;
      op.value = v;
      if (!r.ok()) {
        op.pending = true;
        ++hist->pending_ops;
      }
    } else {
      // Remove: a write of "absent". Not-found removes read "absent".
      kv::KvResult r = co_await kv->Remove(key);
      op.responded = env->sim.Now();
      op.is_write = true;
      op.value = 0;
      if (r.status == kv::KvStatus::kUnavailable) {
        op.pending = true;
        ++hist->pending_ops;
      } else if (r.status == kv::KvStatus::kNotFound) {
        op.is_write = false;
      }
    }
    hist->per_key[key].push_back(op);
  }
}

// Checks every per-key history through the unbounded checker (src/verify/
// lincheck.h): keys become P-compositionality cells of ONE keyed history, so
// multi-thousand-op soaks decompose instead of hitting the legacy 63-op cap.
// Returns "" or the checker's minimal-failing-window report. `stats`, when
// given, receives the run's CheckStats (the remove-heavy soak asserts the
// splitter kept cutting).
inline std::string CheckHistories(const ChaosHistories& hist,
                                  verify::CheckStats* stats = nullptr) {
  std::vector<HistoryOp> flat;
  for (const auto& [key, ops] : hist.per_key) {
    for (HistoryOp op : ops) {
      op.key = key;
      flat.push_back(op);
    }
  }
  CheckResult report = LinearizabilityChecker::CheckReport(flat);
  if (stats != nullptr) {
    *stats = report.stats;
  }
  return report.linearizable ? "" : report.Describe(flat);
}

// Drives `run(make_spec(seed))` over `count` seeds starting at `seed_base`,
// honoring CHAOS_SEED replay mode, stopping at the first failing seed (the
// one to replay).
template <typename RunFn, typename SpecFn>
void DriveScenariosN(int count, uint64_t seed_base, RunFn run, SpecFn make_spec) {
  uint64_t forced = 0;
  if (ForcedSeed(&forced)) {
    run(make_spec(forced));
    return;
  }
  for (int i = 0; i < count; ++i) {
    run(make_spec(seed_base + static_cast<uint64_t>(i)));
    if (::testing::Test::HasFailure()) {
      break;  // The first failing seed is the one to replay.
    }
  }
}

// Regular suites: CHAOS_SCENARIOS scenarios each (CI raises the default).
inline constexpr int kDefaultChaosScenarios = 40;

template <typename RunFn, typename SpecFn>
void DriveScenarios(uint64_t seed_base, RunFn run, SpecFn make_spec) {
  DriveScenariosN(ScenarioCount(kDefaultChaosScenarios), seed_base, run, make_spec);
}

// Soak suites: CHAOS_SOAK_SCENARIOS scenarios each.
template <typename RunFn, typename SpecFn>
void DriveSoakScenarios(uint64_t seed_base, RunFn run, SpecFn make_spec) {
  DriveScenariosN(SoakScenarioCount(), seed_base, run, make_spec);
}

// Checker-scale suites: CHAOS_SCALE_SCENARIOS scenarios each (default 1).
template <typename RunFn, typename SpecFn>
void DriveScaleScenarios(uint64_t seed_base, RunFn run, SpecFn make_spec) {
  DriveScenariosN(ScaleScenarioCount(), seed_base, run, make_spec);
}

// Failure annotation: the seed, how to replay it, and what was injected.
inline std::string SeedMessage(const ScenarioSpec& spec, const chaos::ChaosEngine& engine) {
  std::string filter = "*";
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    filter = std::string(info->test_suite_name()) + "." + info->name();
  }
  return "seed=" + std::to_string(spec.seed) + " faults=[" + engine.TraceSummary() +
         "]  replay: CHAOS_SEED=" + std::to_string(spec.seed) +
         " <binary> --gtest_filter=" + filter;
}

}  // namespace swarm::testing

#endif  // SWARM_TESTS_SUPPORT_SCENARIO_H_
