// Chaos scenario scaffolding: ScenarioSpec + the machinery shared by the
// chaos suites (tests/chaos_*_test.cc).
//
// A scenario is a randomized multi-client open-loop workload interleaved
// with ChaosEngine fault injection. (ScenarioSpec, seed) fully determines
// the execution: every random choice — client think times, key picks, fault
// instants, drop coin-flips, latency jitter — is drawn either from the
// simulator's seeded Rng or from client Rngs derived from the seed. A
// failing seed printed by a suite replays byte-identically via the
// CHAOS_SEED environment variable (or tests/chaos_replay_test.cc, which
// asserts trace-hash identity).
//
// Environment knobs:
//   CHAOS_SCENARIOS=N  run N scenarios per suite (CI uses 200)
//   CHAOS_SEED=S       run only seed S (replay of a reported failure)

#ifndef SWARM_TESTS_SUPPORT_SCENARIO_H_
#define SWARM_TESTS_SUPPORT_SCENARIO_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/kv/kv_types.h"
#include "src/membership/membership.h"
#include "src/sim/chaos.h"
#include "tests/support/lincheck.h"
#include "tests/support/test_env.h"

namespace swarm::testing {

// Scenarios per suite: CHAOS_SCENARIOS overrides the built-in default.
inline int ScenarioCount(int fallback) {
  if (const char* s = std::getenv("CHAOS_SCENARIOS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v > 0) {
      return static_cast<int>(v);
    }
  }
  return fallback;
}

// Replay mode: CHAOS_SEED pins every suite to one seed.
inline bool ForcedSeed(uint64_t* seed) {
  if (const char* s = std::getenv("CHAOS_SEED")) {
    *seed = std::strtoull(s, nullptr, 10);
    return true;
  }
  return false;
}

// A scenario: workload shape + fault mix. Together with `seed` this fully
// determines the execution.
struct ScenarioSpec {
  uint64_t seed = 1;
  int clients = 4;
  uint64_t keys = 4;          // Key space (KV suites); protocol suites use 1 register.
  int ops_per_client = 10;
  uint32_t value_size = 16;
  sim::Time mean_think = 6000;     // Mean gap between a client's ops.
  int64_t max_clock_skew = 5000;   // Per-client GuessClock skew bound, ns.
  chaos::ChaosConfig faults;
};

// Simulator + fabric + membership + chaos engine wired the way a chaos
// scenario needs them. Workers subscribe to membership notifications and
// share the membership service's per-node `repairing` set, so quorum
// selection excludes nodes mid-repair (crash-recover scenarios).
struct ChaosEnv {
  explicit ChaosEnv(const ScenarioSpec& spec,
                    fabric::FabricConfig fcfg = TestEnv::DefaultFabric(),
                    ProtocolConfig pcfg = TestEnv::DefaultProtocol())
      : env(spec.seed, fcfg, pcfg),
        membership(&env.sim, &env.fabric, /*detection_delay=*/50 * sim::kMicrosecond),
        engine(&env.fabric, &membership, spec.faults) {
    membership.Subscribe(env.known_failed);
  }

  Worker& MakeSkewedWorker(const ScenarioSpec& spec) {
    Worker& w = env.MakeWorker(env.sim.rng().Range(-spec.max_clock_skew, spec.max_clock_skew));
    w.set_repair_excluded(membership.repairing());
    return w;
  }

  TestEnv env;
  membership::MembershipService membership;
  chaos::ChaosEngine engine;
};

inline std::vector<uint8_t> EncodeValue(uint64_t v, uint32_t size) {
  std::vector<uint8_t> b(std::max<uint32_t>(size, 8));
  std::memcpy(b.data(), &v, 8);
  return b;
}

inline uint64_t DecodeValue(const std::vector<uint8_t>& b) {
  uint64_t v = 0;
  if (b.size() >= 8) {
    std::memcpy(&v, b.data(), 8);
  }
  return v;
}

// Per-key recorded histories. Value 0 models "absent" (never inserted or
// deleted); writes use globally unique nonzero values.
struct ChaosHistories {
  std::map<uint64_t, std::vector<HistoryOp>> per_key;
  uint64_t next_value = 1;
  int pending_ops = 0;   // Ops recorded as possibly-applied.
  int failed_reads = 0;  // Unavailable reads (no constraint, not recorded).
};

// Op-mix for KvChaosClient: cumulative dice cutoffs (get < update < insert;
// the remainder is removes). The default reproduces the original
// 40/30/20/10 mix; the repair canaries use a remove-heavy variant.
struct KvOpMix {
  double get = 0.40;
  double update = 0.70;
  double insert = 0.90;
};

// One KV chaos client: randomized gets/updates/inserts/removes against a
// shared small key space, recording every op's invocation/response. Ops
// whose outcome the client never learned (unavailable quorum, node timeouts)
// are recorded as PENDING writes — possibly applied — which is exactly the
// ambiguity LinearizabilityChecker::Check resolves.
inline sim::Task<void> KvChaosClient(TestEnv* env, kv::KvSession* kv, uint64_t rng_seed,
                                     const ScenarioSpec& spec, ChaosHistories* hist,
                                     KvOpMix mix = {}) {
  sim::Rng rng(rng_seed);
  for (int i = 0; i < spec.ops_per_client; ++i) {
    co_await env->sim.Delay(1 + static_cast<sim::Time>(
                                    rng.Below(static_cast<uint64_t>(2 * spec.mean_think))));
    const uint64_t key = rng.Below(spec.keys);
    const double dice = rng.Double();
    HistoryOp op;
    op.invoked = env->sim.Now();
    if (dice < mix.get) {
      // Get. A failed read constrains nothing and is dropped entirely.
      kv::KvResult r = co_await kv->Get(key);
      op.responded = env->sim.Now();
      if (r.status == kv::KvStatus::kUnavailable) {
        ++hist->failed_reads;
        continue;
      }
      op.is_write = false;
      op.value = r.status == kv::KvStatus::kOk ? DecodeValue(r.value) : 0;
    } else if (dice < mix.update) {
      // Update. kNotFound is a read of "absent"; an unavailable outcome is a
      // possibly-applied write (some replicas may hold it).
      const uint64_t v = hist->next_value++;
      kv::KvResult r = co_await kv->Update(key, EncodeValue(v, spec.value_size));
      op.responded = env->sim.Now();
      op.is_write = true;
      op.value = v;
      if (r.status == kv::KvStatus::kUnavailable ||
          (r.status == kv::KvStatus::kNotFound && r.ambiguous)) {
        // Unknown outcome — including the tombstone-bounce case where the
        // guessed word was installed and a racing reader may commit it.
        op.pending = true;
        ++hist->pending_ops;
      } else if (r.status == kv::KvStatus::kNotFound) {
        op.is_write = false;
        op.value = 0;
      }
    } else if (dice < mix.insert) {
      // Insert (updates when the key exists).
      const uint64_t v = hist->next_value++;
      kv::KvResult r = co_await kv->Insert(key, EncodeValue(v, spec.value_size));
      op.responded = env->sim.Now();
      op.is_write = true;
      op.value = v;
      if (!r.ok()) {
        op.pending = true;
        ++hist->pending_ops;
      }
    } else {
      // Remove: a write of "absent". Not-found removes read "absent".
      kv::KvResult r = co_await kv->Remove(key);
      op.responded = env->sim.Now();
      op.is_write = true;
      op.value = 0;
      if (r.status == kv::KvStatus::kUnavailable) {
        op.pending = true;
        ++hist->pending_ops;
      } else if (r.status == kv::KvStatus::kNotFound) {
        op.is_write = false;
      }
    }
    hist->per_key[key].push_back(op);
  }
}

// Checks every per-key history; returns "" or a violation description.
inline std::string CheckHistories(const ChaosHistories& hist) {
  for (const auto& [key, ops] : hist.per_key) {
    if (ops.size() > 63) {
      return "key " + std::to_string(key) + " history too large (" +
             std::to_string(ops.size()) + " ops) — shrink the ScenarioSpec";
    }
    if (!LinearizabilityChecker::Check(ops)) {
      int pending = 0;
      for (const HistoryOp& op : ops) {
        pending += op.pending ? 1 : 0;
      }
      std::string msg = "key " + std::to_string(key) + " NON-LINEARIZABLE (" +
                        std::to_string(ops.size()) + " ops, " + std::to_string(pending) +
                        " pending)";
      for (const HistoryOp& op : ops) {
        msg += "\n    " + std::string(op.is_write ? "W" : "R") + "(" +
               std::to_string(op.value) + ") @" + std::to_string(op.invoked) +
               (op.pending ? " pending" : ".." + std::to_string(op.responded));
      }
      return msg;
    }
  }
  return "";
}

// Drives `run(make_spec(seed))` over ScenarioCount seeds starting at
// `seed_base`, honoring CHAOS_SEED replay mode, stopping at the first
// failing seed (the one to replay). `kDefaultChaosScenarios` is the local
// default; CI raises it via CHAOS_SCENARIOS.
inline constexpr int kDefaultChaosScenarios = 40;

template <typename RunFn, typename SpecFn>
void DriveScenarios(uint64_t seed_base, RunFn run, SpecFn make_spec) {
  uint64_t forced = 0;
  if (ForcedSeed(&forced)) {
    run(make_spec(forced));
    return;
  }
  const int n = ScenarioCount(kDefaultChaosScenarios);
  for (int i = 0; i < n; ++i) {
    run(make_spec(seed_base + static_cast<uint64_t>(i)));
    if (::testing::Test::HasFailure()) {
      break;  // The first failing seed is the one to replay.
    }
  }
}

// Failure annotation: the seed, how to replay it, and what was injected.
inline std::string SeedMessage(const ScenarioSpec& spec, const chaos::ChaosEngine& engine) {
  std::string filter = "*";
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    filter = std::string(info->test_suite_name()) + "." + info->name();
  }
  return "seed=" + std::to_string(spec.seed) + " faults=[" + engine.TraceSummary() +
         "]  replay: CHAOS_SEED=" + std::to_string(spec.seed) +
         " <binary> --gtest_filter=" + filter;
}

}  // namespace swarm::testing

#endif  // SWARM_TESTS_SUPPORT_SCENARIO_H_
