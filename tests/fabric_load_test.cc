// Load-dependent fabric behaviour: NIC occupancy queueing (the §7.3
// saturation mechanism), FIFO under load, failure of pipelined ops, and
// bandwidth-dependent transfer latency.

#include <gtest/gtest.h>

#include <vector>

#include "src/fabric/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/util/discard.h"

namespace swarm::fabric {
namespace {

using sim::Spawn;
using sim::Task;
using sim::Time;

FabricConfig QuietConfig() {
  FabricConfig cfg;
  cfg.num_nodes = 2;
  cfg.node_capacity_bytes = 1 << 20;
  cfg.delay_jitter = 0;
  return cfg;
}

Task<void> HammerNode(Fabric* f, int ops, sim::Counter done) {
  Qp qp(f, 0, nullptr);
  uint64_t addr = f->node(0).Allocate(8);
  std::vector<uint8_t> buf(8);
  for (int i = 0; i < ops; ++i) {
    swarm::DiscardStatus(co_await qp.Read(addr, buf));
  }
  done.Add(1);
}

TEST(FabricLoad, NicOccupancyCapsThroughput) {
  // 64 independent QPs each issue 50 reads as fast as they complete. The
  // per-node service rate is 1/node_op_cost; the total run must take at
  // least ops * node_op_cost of virtual time (queueing), unlike an
  // infinite-capacity model.
  sim::Simulator sim;
  FabricConfig cfg = QuietConfig();
  cfg.node_op_cost = 50;
  Fabric fabric(&sim, cfg);
  sim::Counter done(&sim);
  const int streams = 64;
  const int per_stream = 50;
  for (int i = 0; i < streams; ++i) {
    Spawn(HammerNode(&fabric, per_stream, done));
  }
  sim.Run();
  EXPECT_EQ(done.count(), streams);
  const Time min_service = static_cast<Time>(streams * per_stream) * cfg.node_op_cost;
  EXPECT_GE(sim.Now(), min_service) << "NIC queueing must bound service rate";
  // But not pathologically slow either: within ~2x of the service bound
  // (pipelining hides propagation).
  EXPECT_LT(sim.Now(), 2 * min_service + 100000);
}

TEST(FabricLoad, LoneOpUnaffectedByOccupancyModel) {
  sim::Simulator sim;
  Fabric fabric(&sim, QuietConfig());
  Time latency = 0;
  auto op = [](Fabric* f, Time* lat) -> Task<void> {
    Qp qp(f, 0, nullptr);
    uint64_t addr = f->node(0).Allocate(8);
    std::vector<uint8_t> buf(8);
    const Time t0 = f->sim()->Now();
    swarm::DiscardStatus(co_await qp.Read(addr, buf));
    *lat = f->sim()->Now() - t0;
  };
  Spawn(op(&fabric, &latency));
  sim.Run();
  // 2 * one_way + node cost + read_extra, no queueing.
  const FabricConfig& cfg = fabric.config();
  EXPECT_EQ(latency, 2 * cfg.one_way_delay + cfg.node_op_cost + cfg.read_extra);
}

TEST(FabricLoad, BandwidthScalesTransferTime) {
  sim::Simulator sim;
  FabricConfig cfg = QuietConfig();
  cfg.bandwidth_bytes_per_ns = 1.0;
  Fabric fabric(&sim, cfg);
  Time small_lat = 0;
  Time big_lat = 0;
  auto op = [](Fabric* f, size_t size, Time* lat) -> Task<void> {
    Qp qp(f, 0, nullptr);
    uint64_t addr = f->node(0).Allocate(1 << 16);
    std::vector<uint8_t> data(size, 1);
    const Time t0 = f->sim()->Now();
    swarm::DiscardStatus(co_await qp.Write(addr, data));
    *lat = f->sim()->Now() - t0;
  };
  Spawn(op(&fabric, 64, &small_lat));
  sim.Run();
  Spawn(op(&fabric, 16384, &big_lat));
  sim.Run();
  // 16 KiB at 1 B/ns adds ~16 us of transfer over the 64 B write.
  EXPECT_NEAR(static_cast<double>(big_lat - small_lat), 16320.0, 200.0);
}

TEST(FabricLoad, PipelinedOpFailsAtomically) {
  // A WriteThenCas against a node that crashes before execution: the CAS
  // must not apply, the write must not be half-applied to a *recovered*
  // node, and the op must complete with an error after the detection delay.
  sim::Simulator sim;
  FabricConfig cfg = QuietConfig();
  Fabric fabric(&sim, cfg);
  uint64_t waddr = fabric.node(0).Allocate(64);
  uint64_t caddr = fabric.node(0).Allocate(8);

  Status status = Status::kOk;
  auto op = [](Fabric* f, uint64_t waddr2, uint64_t caddr2, Status* st) -> Task<void> {
    Qp qp(f, 0, nullptr);
    std::vector<uint8_t> data(64, 0xAB);
    OpResult r = co_await qp.WriteThenCas(waddr2, data, caddr2, 0, 77);
    *st = r.status;
  };
  Spawn(op(&fabric, waddr, caddr, &status));
  sim.At(100, [&] { fabric.Crash(0); });  // Before the one-way delay elapses.
  sim.Run();
  EXPECT_EQ(status, Status::kNodeFailed);
  fabric.Recover(0);
  EXPECT_EQ(fabric.node(0).LoadWord(caddr), 0u);
}

TEST(FabricLoad, ManyQpsKeepPerQpFifo) {
  // Two QPs interleave heavily under load; within each QP, a later write
  // must never be overtaken by an earlier one.
  sim::Simulator sim(5);
  FabricConfig cfg = QuietConfig();
  cfg.delay_jitter = 200;  // Aggressive jitter tries to reorder.
  Fabric fabric(&sim, cfg);
  uint64_t addr_a = fabric.node(0).Allocate(8);
  uint64_t addr_b = fabric.node(0).Allocate(8);

  auto stream = [](Fabric* f, uint64_t addr, int count) -> Task<void> {
    Qp qp(f, 0, nullptr);
    for (int i = 1; i <= count; ++i) {
      std::vector<uint8_t> v(8, static_cast<uint8_t>(i));
      // Issue without waiting: all in flight simultaneously on one QP.
      sim::Spawn([](Qp* qp, uint64_t addr2, std::vector<uint8_t> data) -> Task<void> {
        swarm::DiscardStatus(co_await qp->Write(addr2, data));
      }(&qp, addr, std::move(v)));
      co_await f->sim()->Delay(10);
    }
    co_await f->sim()->Delay(100000);  // Wait out all completions.
  };
  Spawn(stream(&fabric, addr_a, 40));
  Spawn(stream(&fabric, addr_b, 40));
  sim.Run();
  // The LAST issued write must be the survivor on each QP's address.
  EXPECT_EQ(fabric.node(0).LoadWord(addr_a) & 0xFF, 40u);
  EXPECT_EQ(fabric.node(0).LoadWord(addr_b) & 0xFF, 40u);
}

}  // namespace
}  // namespace swarm::fabric
