// Chaos suites for the protocol layer: ABD registers (full linearizability
// histories), the reliable quorum-max register (validity + monotonicity),
// single-node In-n-Out (untorn values, max semantics), and timestamp locks
// (true exclusion) — each under machine-generated crash/delay/drop schedules
// driven by the seeded chaos engine. Failures print the reproducing seed.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/swarm/abd.h"
#include "src/swarm/inout.h"
#include "src/swarm/quorum_max.h"
#include "src/swarm/timestamp_lock.h"
#include "tests/support/scenario.h"

namespace swarm {
namespace {

using sim::Spawn;
using sim::Task;
using testing::ChaosEnv;
using testing::ChaosHistories;
using testing::CheckHistories;
using testing::DecodeValue;
using testing::EncodeValue;
using testing::DriveScenarios;
using testing::HistoryOp;
using testing::ScenarioSpec;
using testing::SeedMessage;
using testing::ValN;

ScenarioSpec ProtoSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.clients = 4;
  spec.ops_per_client = 12;
  spec.mean_think = 7000;
  spec.faults.horizon = 140 * sim::kMicrosecond;
  spec.faults.mean_gap = 8 * sim::kMicrosecond;
  spec.faults.max_crashed = 1;  // A minority of every 3-replica object.
  spec.faults.restart = false;  // Crash-stop (restarted nodes come back empty).
  spec.faults.crashable_nodes = 3;
  return spec;
}

// ---------- ABD register: full history linearizability ----------

Task<void> AbdChaosClient(ChaosEnv* c, Worker* w, const ObjectLayout* layout, uint64_t rng_seed,
                          const ScenarioSpec* spec, ChaosHistories* hist) {
  AbdObject obj(w, layout, std::make_shared<ObjectCache>());
  sim::Rng rng(rng_seed);
  for (int i = 0; i < spec->ops_per_client; ++i) {
    co_await c->env.sim.Delay(1 + static_cast<sim::Time>(
                                      rng.Below(static_cast<uint64_t>(2 * spec->mean_think))));
    HistoryOp op;
    op.invoked = c->env.sim.Now();
    if (rng.Chance(0.5)) {
      const uint64_t v = hist->next_value++;
      SgWriteResult r = co_await obj.Write(EncodeValue(v, spec->value_size));
      op.responded = c->env.sim.Now();
      op.is_write = true;
      op.value = v;
      if (r.status != SgStatus::kOk) {
        op.pending = true;  // Possibly applied at some replicas.
        ++hist->pending_ops;
      }
    } else {
      SgReadResult r = co_await obj.Read();
      op.responded = c->env.sim.Now();
      if (r.status == SgStatus::kUnavailable) {
        ++hist->failed_reads;
        continue;
      }
      op.is_write = false;
      op.value = r.status == SgStatus::kOk ? DecodeValue(r.value) : 0;
    }
    hist->per_key[0].push_back(op);
  }
}

void RunAbdScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec);
  std::vector<int> nodes{0, 1, 2};
  ObjectLayout layout = AllocateObject(c.env.fabric, nodes.data(), 3, /*meta_slots=*/1,
                                       /*max_writers=*/1, c.env.proto.max_value,
                                       /*inplace_copies=*/0);
  ChaosHistories hist;
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    Spawn(AbdChaosClient(&c, &w, &layout, spec.seed * 97 + static_cast<uint64_t>(i), &spec,
                         &hist));
  }
  c.engine.Start();
  c.env.sim.Run();
  const std::string violation = CheckHistories(hist);
  EXPECT_TRUE(violation.empty()) << violation << "\n  " << SeedMessage(spec, c.engine);
}

TEST(ChaosAbd, RandomFaultScenariosStayLinearizable) {
  DriveScenarios(4000, RunAbdScenario, ProtoSpec);
}

// ---------- Quorum-max register: validity + monotonicity ----------

struct QmState {
  std::map<uint64_t, uint8_t> fills;  // same_write_key -> value fill byte.
  uint64_t floor = 0;                 // ts_order_key of the latest completed write.
  uint8_t next_fill = 1;
  std::string violation;
};

Task<void> QmWriter(ChaosEnv* c, Worker* w, const ObjectLayout* layout, uint64_t rng_seed,
                    const ScenarioSpec* spec, QmState* st) {
  QuorumMax reg(w, layout, w->SlotCacheFor(layout));
  sim::Rng rng(rng_seed);
  for (uint32_t i = 1; i <= static_cast<uint32_t>(spec->ops_per_client); ++i) {
    co_await c->env.sim.Delay(1 + static_cast<sim::Time>(
                                      rng.Below(static_cast<uint64_t>(2 * spec->mean_think))));
    const Meta word = Meta::Pack(i * 64 + w->tid(), w->tid(), false, 0);
    const uint8_t fill = st->next_fill++;
    st->fills[word.same_write_key()] = fill;
    WriteReadOutcome wr = co_await reg.WriteAndRead(word, ValN(16, fill));
    if (wr.ok) {
      st->floor = std::max(st->floor, word.ts_order_key());
    }
  }
}

Task<void> QmReader(ChaosEnv* c, Worker* w, const ObjectLayout* layout, uint64_t rng_seed,
                    const ScenarioSpec* spec, QmState* st) {
  QuorumMax reg(w, layout, w->SlotCacheFor(layout));
  sim::Rng rng(rng_seed);
  Meta last;
  for (int i = 0; i < spec->ops_per_client; ++i) {
    co_await c->env.sim.Delay(1 + static_cast<sim::Time>(
                                      rng.Below(static_cast<uint64_t>(2 * spec->mean_think))));
    const uint64_t floor_at_invoke = st->floor;
    ReadOutcome r = co_await reg.ReadQuorum(true);
    if (!r.ok) {
      continue;  // No majority answered: no constraint.
    }
    // Write-read monotonicity: a read invoked after a write completed
    // returns at least that write's timestamp.
    if (r.m.ts_order_key() < floor_at_invoke) {
      st->violation = "read returned ts below a completed write's";
    }
    // Read-read monotonicity for this reader.
    if (TsLess(r.m, last)) {
      st->violation = "sequential reads went backwards";
    }
    last = TsMax(last, r.m);
    // Validity: resolved bytes must be exactly what the max's writer wrote.
    if (!r.m.empty() && r.value_ok) {
      auto it = st->fills.find(r.m.same_write_key());
      if (it == st->fills.end()) {
        st->violation = "read resolved a value never written";
      } else {
        for (uint8_t b : r.value) {
          if (b != it->second) {
            st->violation = "read returned torn/foreign bytes";
          }
        }
      }
    }
  }
}

void RunQuorumMaxScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec);
  ObjectLayout layout = c.env.MakeObject();
  QmState st;
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    if (i % 2 == 0) {
      Spawn(QmWriter(&c, &w, &layout, spec.seed * 97 + static_cast<uint64_t>(i), &spec, &st));
    } else {
      Spawn(QmReader(&c, &w, &layout, spec.seed * 97 + static_cast<uint64_t>(i), &spec, &st));
    }
  }
  c.engine.Start();
  c.env.sim.Run();
  EXPECT_TRUE(st.violation.empty()) << st.violation << "\n  " << SeedMessage(spec, c.engine);
}

TEST(ChaosQuorumMax, ValidityAndMonotonicityUnderFaults) {
  DriveScenarios(5000, RunQuorumMaxScenario, ProtoSpec);
}

// ---------- Single-node In-n-Out: untorn values, max semantics ----------

struct InOutState {
  std::map<uint64_t, uint8_t> fills;
  uint64_t floor = 0;
  uint8_t next_fill = 1;
  std::string violation;
};

Task<void> InOutWriter(ChaosEnv* c, Worker* w, const ObjectLayout* layout, uint64_t rng_seed,
                       const ScenarioSpec* spec, InOutState* st) {
  InOutReplica rep(w, layout, 0);
  Meta cache;
  sim::Rng rng(rng_seed);
  for (uint32_t i = 1; i <= static_cast<uint32_t>(spec->ops_per_client); ++i) {
    co_await c->env.sim.Delay(1 + static_cast<sim::Time>(
                                      rng.Below(static_cast<uint64_t>(2 * spec->mean_think))));
    const bool verified = rng.Chance(0.4);  // Verified writes refresh in-place.
    const Meta word = Meta::Pack(i * 64 + w->tid(), w->tid(), verified, 0);
    const uint8_t fill = st->next_fill++;
    st->fills[word.same_write_key()] = fill;
    NodeMaxResult wr =
        verified ? co_await rep.WriteVerifiedNode(word, ValN(24, fill), cache)
                 : co_await rep.WriteMax(word, ValN(24, fill), &cache);
    if (wr.ok()) {
      Meta reached = TsMax(wr.installed, wr.observed);
      st->floor = std::max(st->floor, reached.ts_order_key());
      cache = wr.observed.empty() ? cache : wr.observed;
    }
  }
}

Task<void> InOutReader(ChaosEnv* c, Worker* w, const ObjectLayout* layout, uint64_t rng_seed,
                       const ScenarioSpec* spec, InOutState* st) {
  InOutReplica rep(w, layout, 0);
  sim::Rng rng(rng_seed);
  Meta last;
  for (int i = 0; i < spec->ops_per_client; ++i) {
    co_await c->env.sim.Delay(1 + static_cast<sim::Time>(
                                      rng.Below(static_cast<uint64_t>(2 * spec->mean_think))));
    const uint64_t floor_at_invoke = st->floor;
    NodeView v = co_await rep.ReadNode(true, w->tid());
    if (!v.ok()) {
      continue;
    }
    if (v.max.ts_order_key() < floor_at_invoke) {
      st->violation = "node max went below a completed write";
    }
    if (TsLess(v.max, last)) {
      st->violation = "sequential reads of one node went backwards";
    }
    last = TsMax(last, v.max);
    if (v.max.empty()) {
      continue;
    }
    std::vector<uint8_t> bytes;
    if (v.inplace_valid) {
      bytes = v.value;
    } else {
      auto oop = co_await rep.ReadOop(v.max);
      if (!oop.has_value()) {
        continue;  // Buffer recycled mid-chase: the caller-level retry case.
      }
      bytes = *oop;
    }
    auto it = st->fills.find(v.max.same_write_key());
    if (it == st->fills.end()) {
      st->violation = "resolved a value never written";
    } else {
      for (uint8_t b : bytes) {
        if (b != it->second) {
          st->violation = "torn or foreign bytes escaped validation";
        }
      }
    }
  }
}

void RunInOutScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec);
  std::vector<int> nodes{0};
  ObjectLayout layout = AllocateObject(c.env.fabric, nodes.data(), 1, /*meta_slots=*/4,
                                       /*max_writers=*/8, /*max_value=*/24,
                                       /*inplace_copies=*/1);
  InOutState st;
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    if (i % 2 == 0) {
      Spawn(InOutWriter(&c, &w, &layout, spec.seed * 97 + static_cast<uint64_t>(i), &spec, &st));
    } else {
      Spawn(InOutReader(&c, &w, &layout, spec.seed * 97 + static_cast<uint64_t>(i), &spec, &st));
    }
  }
  c.engine.Start();
  c.env.sim.Run();
  EXPECT_TRUE(st.violation.empty()) << st.violation << "\n  " << SeedMessage(spec, c.engine);
}

TEST(ChaosInOut, SingleNodeMaxRegisterUnderLinkFaults) {
  DriveScenarios(6000, RunInOutScenario, [](uint64_t seed) {
    ScenarioSpec spec = ProtoSpec(seed);
    spec.faults.crash_weight = 0;  // One copy: a crash trivially loses data.
    return spec;
  });
}

// ---------- Timestamp locks: true exclusion ----------

struct LockState {
  // Per counter value: did WRITE mode / READ mode ever win?
  std::map<uint32_t, bool> write_won;
  std::map<uint32_t, bool> read_won;
};

Task<void> LockClient(ChaosEnv* c, Worker* w, const ObjectLayout* layout, uint32_t owner_tid,
                      LockMode mode, uint64_t rng_seed, const ScenarioSpec* spec, LockState* st) {
  TimestampLock lock(w, layout, owner_tid);
  sim::Rng rng(rng_seed);
  for (uint32_t cnt = 1; cnt <= static_cast<uint32_t>(spec->ops_per_client); ++cnt) {
    co_await c->env.sim.Delay(1 + static_cast<sim::Time>(
                                      rng.Below(static_cast<uint64_t>(2 * spec->mean_think))));
    TryLockResult r = co_await lock.TryLock(cnt, mode);
    if (r.acquired) {
      (mode == LockMode::kWrite ? st->write_won : st->read_won)[cnt] = true;
    }
  }
}

void RunLockScenario(const ScenarioSpec& spec) {
  ChaosEnv c(spec);
  ObjectLayout layout = c.env.MakeObject();
  LockState st;
  // Client 0 is the lock's owner re-executing writes; the rest are readers
  // racing to commit the owner's guessed timestamps (Algorithm 4).
  for (int i = 0; i < spec.clients; ++i) {
    Worker& w = c.MakeSkewedWorker(spec);
    const LockMode mode = i == 0 ? LockMode::kWrite : LockMode::kRead;
    Spawn(LockClient(&c, &w, &layout, /*owner_tid=*/0, mode,
                     spec.seed * 97 + static_cast<uint64_t>(i), &spec, &st));
  }
  c.engine.Start();
  c.env.sim.Run();
  for (const auto& [cnt, won] : st.write_won) {
    if (!won) {
      continue;
    }
    auto it = st.read_won.find(cnt);
    EXPECT_FALSE(it != st.read_won.end() && it->second)
        << "true exclusion violated at counter " << cnt << "\n  " << SeedMessage(spec, c.engine);
  }
}

TEST(ChaosTimestampLock, TrueExclusionUnderFaults) {
  DriveScenarios(7000, RunLockScenario, ProtoSpec);
}

}  // namespace
}  // namespace swarm
