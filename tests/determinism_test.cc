// Reproducibility guarantees: identical seeds must produce bit-identical
// executions (event counts, virtual end times, per-op results), and
// different seeds must actually explore different schedules. This is the
// property that makes every benchmark and stress test in this repository
// replayable.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "tests/support/test_env.h"

namespace swarm {
namespace {

using sim::Spawn;
using sim::Task;
using testing::TestEnv;

struct Trace {
  std::vector<sim::Time> latencies;
  uint64_t events = 0;
  sim::Time end_time = 0;
};

Trace RunWorkload(uint64_t seed) {
  TestEnv env(seed);
  index::IndexService index(&env.sim);
  index::ClientCache cache;
  Worker& w1 = env.MakeWorker(env.sim.rng().Range(-2000, 2000));
  Worker& w2 = env.MakeWorker(env.sim.rng().Range(-2000, 2000));
  kv::SwarmKvSession a(&w1, &index, &cache);
  kv::SwarmKvSession b(&w2, &index, &cache);

  Trace trace;
  auto client = [](TestEnv* env, kv::SwarmKvSession* kv, uint64_t seed2, Trace* t) -> Task<void> {
    sim::Rng rng(seed2);
    for (int i = 0; i < 30; ++i) {
      co_await env->sim.Delay(static_cast<sim::Time>(rng.Below(5000)));
      const uint64_t key = rng.Below(8);
      const sim::Time t0 = env->sim.Now();
      if (rng.Chance(0.3)) {
        std::vector<uint8_t> v(16, static_cast<uint8_t>(i));
        (void)co_await kv->Insert(key, v);
      } else if (rng.Chance(0.5)) {
        std::vector<uint8_t> v(16, static_cast<uint8_t>(i + 100));
        (void)co_await kv->Update(key, v);
      } else {
        (void)co_await kv->Get(key);
      }
      t->latencies.push_back(env->sim.Now() - t0);
    }
  };
  Spawn(client(&env, &a, seed * 3 + 1, &trace));
  Spawn(client(&env, &b, seed * 3 + 2, &trace));
  env.sim.Run();
  trace.events = env.sim.events_processed();
  trace.end_time = env.sim.Now();
  return trace;
}

TEST(Determinism, SameSeedSameExecution) {
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    Trace a = RunWorkload(seed);
    Trace b = RunWorkload(seed);
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;
    ASSERT_EQ(a.latencies.size(), b.latencies.size()) << "seed " << seed;
    for (size_t i = 0; i < a.latencies.size(); ++i) {
      EXPECT_EQ(a.latencies[i], b.latencies[i]) << "seed " << seed << " op " << i;
    }
  }
}

TEST(Determinism, DifferentSeedsDifferentSchedules) {
  Trace a = RunWorkload(1);
  Trace b = RunWorkload(2);
  EXPECT_NE(a.end_time, b.end_time);
}

}  // namespace
}  // namespace swarm
