// Tests for the YCSB workload generator: Zipfian distribution shape,
// determinism, get/update mix, and value generation.

#include "src/ycsb/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/sim/random.h"

namespace swarm::ycsb {
namespace {

TEST(Zipfian, StaysInRange) {
  sim::Rng rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(Zipfian, HotKeysDominate) {
  sim::Rng rng(3);
  ZipfianGenerator zipf(100000, 0.99);
  std::map<uint64_t, uint64_t> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  std::vector<uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [k, c] : counts) {
    freq.push_back(c);
  }
  std::sort(freq.rbegin(), freq.rend());
  // The theoretical Zipf(.99) top-1 share over 100K items is ~7.3%; allow a
  // generous band. The top-10 should cover roughly a quarter of accesses.
  const double top1 = static_cast<double>(freq[0]) / n;
  EXPECT_GT(top1, 0.04);
  EXPECT_LT(top1, 0.12);
  uint64_t top10 = 0;
  for (int i = 0; i < 10; ++i) {
    top10 += freq[static_cast<size_t>(i)];
  }
  EXPECT_GT(static_cast<double>(top10) / n, 0.15);
  // And the tail must still be touched: many distinct keys accessed.
  EXPECT_GT(counts.size(), 20000u);
}

TEST(Zipfian, ScrambleSpreadsHotKeysAcrossKeyspace) {
  sim::Rng rng(3);
  ZipfianGenerator zipf(100000, 0.99);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // Find the two hottest keys: they must not be adjacent ids (rank 0 and 1
  // would be without scrambling).
  uint64_t hottest = 0;
  uint64_t second = 0;
  uint64_t best = 0;
  uint64_t best2 = 0;
  for (const auto& [k, c] : counts) {
    if (c > best) {
      best2 = best;
      second = hottest;
      best = c;
      hottest = k;
    } else if (c > best2) {
      best2 = c;
      second = k;
    }
  }
  EXPECT_GT(hottest + second, 2u);  // Not keys {0,1} or {1,0}.
}

TEST(Zipfian, UniformWhenThetaNearZero) {
  sim::Rng rng(3);
  ZipfianGenerator zipf(100, 0.01);
  std::map<uint64_t, uint64_t> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  uint64_t max_c = 0;
  for (const auto& [k, c] : counts) {
    max_c = std::max(max_c, c);
  }
  // The YCSB rejection-free formula slightly over-weights the first two
  // ranks for tiny theta (a known property of the approximation); the bulk
  // must still be near-uniform.
  EXPECT_LT(static_cast<double>(max_c) / n, 0.08);
}

TEST(Workload, MixMatchesGetFraction) {
  Workload wl(WorkloadB(1000, 64), 5);
  int gets = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    gets += wl.Next().type == OpType::kGet ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.95, 0.01);

  Workload wa(WorkloadA(1000, 64), 5);
  gets = 0;
  for (int i = 0; i < n; ++i) {
    gets += wa.Next().type == OpType::kGet ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.5, 0.02);
}

TEST(Workload, DeterministicForSeed) {
  Workload a(WorkloadA(1000, 64), 77);
  Workload b(WorkloadA(1000, 64), 77);
  for (int i = 0; i < 1000; ++i) {
    const auto oa = a.Next();
    const auto ob = b.Next();
    EXPECT_EQ(oa.key, ob.key);
    EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
  }
}

TEST(Workload, ValuesAreVersionedAndSized) {
  Workload wl(WorkloadB(10, 128), 1);
  const auto v1 = wl.ValueFor(5, 1);
  const auto v2 = wl.ValueFor(5, 2);
  const auto v1_again = wl.ValueFor(5, 1);
  EXPECT_EQ(v1.size(), 128u);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(v1, v1_again);
  EXPECT_NE(wl.ValueFor(6, 1), v1);
}

}  // namespace
}  // namespace swarm::ycsb
