// Tests for the reliable max register over In-n-Out replicas (Algorithm 8 /
// Appendix A): validity, monotonicity, write-back repair, fast-path
// roundtrips, escalation on node failure.

#include "src/swarm/quorum_max.h"
#include "src/util/discard.h"

#include <gtest/gtest.h>

#include "src/sim/sync.h"
#include "tests/support/test_env.h"

namespace swarm {
namespace {

using sim::Spawn;
using sim::Task;
using testing::TestEnv;
using testing::ValN;

TEST(QuorumMax, WriteThenStrongReadReturnsValue) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();

  auto driver = [](Worker* w, const ObjectLayout* layout,
                   std::shared_ptr<ObjectCache> cache2) -> Task<void> {
    QuorumMax reg(w, layout, cache2);
    auto value = ValN(40, 0xAB);
    WriteReadOutcome wr = co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), value);
    EXPECT_TRUE(wr.ok);
    EXPECT_TRUE(wr.m.empty());  // Nothing else was ever written.
    int installs = 0;
    for (int r = 0; r < layout->num_replicas; ++r) {
      installs += !wr.installed[static_cast<size_t>(r)].empty();
    }
    EXPECT_GE(installs, layout->majority());

    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd.ok);
    EXPECT_TRUE(rd.value_ok);
    EXPECT_EQ(rd.m.counter(), 10u);
    EXPECT_EQ(rd.value, value);
  };
  Spawn(driver(&w, &layout, cache));
  env.sim.Run();
}

TEST(QuorumMax, ReadReportsMaxOfConcurrentWrites) {
  TestEnv env;
  Worker& w0 = env.MakeWorker();
  Worker& w1 = env.MakeWorker();
  Worker& rdr = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto writer = [](Worker* w, const ObjectLayout* layout, uint32_t counter,
                   uint8_t fill) -> Task<void> {
    QuorumMax reg(w, layout, std::make_shared<ObjectCache>());
    swarm::DiscardStatus(co_await reg.WriteAndRead(Meta::Pack(counter, w->tid(), false, 0), ValN(16, fill)));
  };
  auto reader = [](Worker* w, const ObjectLayout* layout) -> Task<void> {
    co_await w->sim()->Delay(20000);  // After both writes settle.
    QuorumMax reg(w, layout, std::make_shared<ObjectCache>());
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd.ok);
    EXPECT_EQ(rd.m.counter(), 30u);  // Max register: the larger ts wins.
    EXPECT_TRUE(rd.value_ok);
    if (rd.value_ok) {
      EXPECT_EQ(rd.value, ValN(16, 2));
    }
  };
  Spawn(writer(&w0, &layout, 20, 1));
  Spawn(writer(&w1, &layout, 30, 2));
  Spawn(reader(&rdr, &layout));
  env.sim.Run();
}

TEST(QuorumMax, WriteBackRepairsPartialWrite) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  Worker& rdr = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto driver = [](Worker* w, Worker* rdr, const ObjectLayout* layout) -> Task<void> {
    // Install a word at ONE replica only, simulating a writer that crashed
    // mid-write (its value reached a minority).
    InOutReplica rep(w, layout, 1);
    Meta cache;
    auto value = ValN(24, 0x77);
    NodeMaxResult nm = co_await rep.WriteMax(Meta::Pack(50, w->tid(), false, 0), value, &cache);
    EXPECT_FALSE(nm.installed.empty());

    // A strong read must repair: after it, a majority holds the value.
    QuorumMax reg(rdr, layout, std::make_shared<ObjectCache>());
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd.ok);
    EXPECT_TRUE(rd.value_ok);
    EXPECT_EQ(rd.m.counter(), 50u);
    EXPECT_GE(rd.rtts, 2);  // Oop chase and/or write-back happened.

    ReadOutcome rd2 = co_await reg.ReadQuorum(true);
    int holders = 0;
    for (int r = 0; r < layout->num_replicas; ++r) {
      const auto idx = static_cast<size_t>(r);
      if (rd2.node_ok[idx] && rd2.node_words[idx].counter() == 50) {
        ++holders;
      }
    }
    EXPECT_GE(holders, layout->majority());
  };
  Spawn(driver(&w, &rdr, &layout));
  env.sim.Run();
}

TEST(QuorumMax, VerifiedReadIsOneRoundtripAfterPromotion) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();

  auto driver = [](Worker* w, const ObjectLayout* layout,
                   std::shared_ptr<ObjectCache> cache2) -> Task<void> {
    QuorumMax reg(w, layout, cache2);
    auto value = ValN(32, 5);
    WriteReadOutcome wr = co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), value);
    EXPECT_TRUE(wr.ok);
    co_await QuorumMax::Promote(w, layout, wr.installed, value);
    co_await w->sim()->Delay(10000);  // Let the promotion land.

    const sim::Time start = w->sim()->Now();
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    const sim::Time latency = w->sim()->Now() - start;
    EXPECT_TRUE(rd.ok);
    EXPECT_TRUE(rd.m.verified());
    EXPECT_TRUE(rd.used_inplace);  // In-place hash validated: no oop chase.
    EXPECT_EQ(rd.rtts, 1);
    EXPECT_LT(latency, 3000);  // ~1 roundtrip.
  };
  Spawn(driver(&w, &layout, cache));
  env.sim.Run();
}

TEST(QuorumMax, GuessedReadFallsBackToOopChase) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();

  auto driver = [](Worker* w, const ObjectLayout* layout,
                   std::shared_ptr<ObjectCache> cache2) -> Task<void> {
    QuorumMax reg(w, layout, cache2);
    auto value = ValN(32, 6);
    // No promotion: in-place data never written, read must chase the pointer.
    swarm::DiscardStatus(co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), value));
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd.ok);
    EXPECT_TRUE(rd.value_ok);
    EXPECT_FALSE(rd.used_inplace);
    EXPECT_EQ(rd.value, value);
    EXPECT_GE(rd.rtts, 2);
  };
  Spawn(driver(&w, &layout, cache));
  env.sim.Run();
}

TEST(QuorumMax, SurvivesMinorityCrashViaEscalation) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();

  auto driver = [](Worker* w, const ObjectLayout* layout,
                   std::shared_ptr<ObjectCache> cache2) -> Task<void> {
    QuorumMax reg(w, layout, cache2);
    auto value = ValN(16, 9);
    WriteReadOutcome wr = co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), value);
    EXPECT_TRUE(wr.ok);

    // Crash replica 0 (the designated in-place holder, in the preferred set).
    w->fabric()->Crash(layout->replicas[0].node);
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd.ok);  // Escalation reached the remaining majority.
    EXPECT_TRUE(rd.value_ok);
    EXPECT_EQ(rd.value, value);
    EXPECT_GE(rd.rtts, 2);
    EXPECT_TRUE(w->NodeKnownFailed(layout->replicas[0].node));

    // Next reads skip the dead node: back to a single escalation-free phase.
    ReadOutcome rd2 = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd2.ok);
    EXPECT_EQ(rd2.value, value);
  };
  Spawn(driver(&w, &layout, cache));
  env.sim.Run();
}

TEST(QuorumMax, MajorityCrashMakesOpsUnavailable) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();
  env.fabric.Crash(layout.replicas[0].node);
  env.fabric.Crash(layout.replicas[1].node);

  auto driver = [](Worker* w, const ObjectLayout* layout,
                   std::shared_ptr<ObjectCache> cache2) -> Task<void> {
    QuorumMax reg(w, layout, cache2);
    WriteReadOutcome wr = co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), ValN(8, 1));
    EXPECT_FALSE(wr.ok);
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_FALSE(rd.ok);
  };
  Spawn(driver(&w, &layout, cache));
  env.sim.Run();
}

TEST(QuorumMax, TombstoneReadNeedsNoValue) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  auto cache = env.MakeCache();

  auto driver = [](Worker* w, const ObjectLayout* layout,
                   std::shared_ptr<ObjectCache> cache2) -> Task<void> {
    QuorumMax reg(w, layout, cache2);
    swarm::DiscardStatus(co_await reg.WriteAndRead(Meta::Pack(10, 0, false, 0), ValN(8, 1)));
    EXPECT_TRUE(co_await reg.WriteVerified(Meta::Tombstone(w->tid()), {}));
    ReadOutcome rd = co_await reg.ReadQuorum(true);
    EXPECT_TRUE(rd.ok);
    EXPECT_TRUE(rd.m.deleted());
  };
  Spawn(driver(&w, &layout, cache));
  env.sim.Run();
}

}  // namespace
}  // namespace swarm
