// Membership-epoch fencing regressions (§5.4 per-client QP revocation):
//  * the epoch advances on every repair-relevant transition and reaches
//    memory nodes immediately, subscribed clients after the detection delay;
//  * a verb in flight when the epoch advances completes kStaleEpoch — even
//    at a node that never crashed — and revokes its QP;
//  * revoked QPs fail fast until Worker::RefreshEpoch re-validates + re-arms;
//  * a doorbell batch straddling an epoch bump is fenced coherently: every
//    verb of the batch bounces, none applies;
//  * the repair coordinator's channel passes the epoch fence;
//  * the canary knob (set_epoch_fencing(false)) restores pre-fix behavior.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "src/membership/membership.h"
#include "src/swarm/worker.h"
#include "tests/support/test_env.h"

namespace swarm {
namespace {

using testing::TestEnv;

struct EpochEnv {
  EpochEnv() : membership(&env.sim, &env.fabric, /*detection_delay=*/50 * sim::kMicrosecond) {}

  // An epoch-wired worker; `subscribe` = receives membership pushes.
  Worker& MakeEpochWorker(bool subscribe) {
    Worker& w = env.MakeWorker();
    auto epoch = std::make_shared<fabric::ClientEpoch>();
    epoch->value = membership.epoch();
    w.set_epoch(epoch);
    w.set_epoch_source([this] { return membership.ValidateEpoch(); });
    if (subscribe) {
      membership.SubscribeEpoch(epoch);
    }
    return w;
  }

  TestEnv env;
  membership::MembershipService membership;
};

TEST(EpochFence, EpochAdvancesOnEveryRepairRelevantTransition) {
  EpochEnv f;
  const uint64_t e0 = f.membership.epoch();
  f.membership.CrashNode(1);
  EXPECT_EQ(f.membership.epoch(), e0 + 1);
  EXPECT_EQ(f.env.fabric.node(0).fence_epoch(), e0 + 1) << "nodes learn immediately";
  EXPECT_EQ(f.env.fabric.node(3).fence_epoch(), e0 + 1);
  f.membership.BeginRepair(1);
  EXPECT_EQ(f.membership.epoch(), e0 + 2);
  f.membership.CompleteRepair(1);
  EXPECT_EQ(f.membership.epoch(), e0 + 3);
  EXPECT_EQ(f.env.fabric.node(2).fence_epoch(), e0 + 3);
  EXPECT_EQ(f.membership.ValidateEpoch(), e0 + 3);
}

TEST(EpochFence, PushReachesSubscribersAfterDetectionDelayOnly) {
  EpochEnv f;
  auto subscribed = std::make_shared<fabric::ClientEpoch>();
  subscribed->value = f.membership.epoch();
  f.membership.SubscribeEpoch(subscribed);
  auto deaf = std::make_shared<fabric::ClientEpoch>();
  deaf->value = f.membership.epoch();
  const uint64_t e0 = f.membership.epoch();

  f.membership.CrashNode(2);
  EXPECT_EQ(subscribed->value, e0) << "the push must wait out the detection delay";
  f.env.sim.RunUntil(f.env.sim.Now() + 60 * sim::kMicrosecond);
  EXPECT_EQ(subscribed->value, e0 + 1);
  EXPECT_EQ(deaf->value, e0) << "an unsubscribed client never learns";
}

TEST(EpochFence, StaleClientFencedMidVerb) {
  // The verb targets node 1, which never crashes; node 2's crash advances
  // the epoch while the verb is in flight — it must bounce anyway (§5.4:
  // revocation is cluster-wide), revoke the QP, and the QP must fail fast
  // until RefreshEpoch re-arms it.
  EpochEnv f;
  Worker& w = f.MakeEpochWorker(/*subscribe=*/false);
  const uint64_t addr = f.env.fabric.node(1).Allocate(8);

  std::array<fabric::Status, 3> seen{};
  bool done = false;
  auto driver = [](EpochEnv* /*f*/, Worker* w, uint64_t addr2, std::array<fabric::Status, 3>* seen,
                   bool* done2) -> sim::Task<void> {
    std::array<uint8_t, 8> buf{};
    // In-flight fence: the crash lands 200 ns after this read departs.
    fabric::OpResult r = co_await w->qp(1).Read(addr2, buf);
    (*seen)[0] = r.status;
    // Revoked QP: fails fast, locally, without re-validation.
    r = co_await w->qp(1).Read(addr2, buf);
    (*seen)[1] = r.status;
    // Re-validated + re-armed: the retry carries the fresh stamp and lands.
    co_await w->RefreshEpoch();
    r = co_await w->qp(1).Read(addr2, buf);
    (*seen)[2] = r.status;
    *done2 = true;
  };
  f.env.sim.After(200, [&f] { f.membership.CrashNode(2); });
  sim::Spawn(driver(&f, &w, addr, &seen, &done));
  f.env.sim.Run();

  ASSERT_TRUE(done);
  EXPECT_EQ(seen[0], fabric::Status::kStaleEpoch) << "the in-flight verb must bounce";
  EXPECT_EQ(seen[1], fabric::Status::kStaleEpoch) << "the revoked QP must fail fast";
  EXPECT_EQ(seen[2], fabric::Status::kOk) << "the refreshed retry must land";
  EXPECT_FALSE(w.EpochRefreshNeeded());
}

TEST(EpochFence, DoorbellBatchStraddlingAnEpochBumpIsFencedCoherently) {
  // Three writes to three nodes posted under ONE doorbell; the epoch bump
  // lands while they are in flight. Every verb of the batch must bounce with
  // kStaleEpoch and none may have applied — a batch shares its stamp, so its
  // fate under a fence is all-or-nothing.
  EpochEnv f;
  Worker& w = f.MakeEpochWorker(/*subscribe=*/false);
  std::array<uint64_t, 3> addrs{};
  for (int n = 0; n < 3; ++n) {
    addrs[static_cast<size_t>(n)] = f.env.fabric.node(n).Allocate(8);
  }
  const std::vector<uint8_t> payload = {0xAB, 0xCD, 0xEF, 0x12, 0x34, 0x56, 0x78, 0x9A};

  sim::PoolVec<fabric::OpResult> first;
  sim::PoolVec<fabric::OpResult> second;
  std::array<uint64_t, 3> words_after_fenced_batch{};
  bool done = false;
  auto driver = [](EpochEnv* f, Worker* w, const std::array<uint64_t, 3>* addrs,
                   const std::vector<uint8_t>* payload, sim::PoolVec<fabric::OpResult>* first,
                   sim::PoolVec<fabric::OpResult>* second, std::array<uint64_t, 3>* words,
                   bool* done2) -> sim::Task<void> {
    auto post_batch = [&]() -> sim::Task<sim::PoolVec<fabric::OpResult>> {
      sim::PoolVec<sim::Task<fabric::OpResult>> verbs;
      for (int n = 0; n < 3; ++n) {
        verbs.push_back(w->qp(n).Write((*addrs)[static_cast<size_t>(n)], *payload));
      }
      co_return co_await fabric::PostMany(w->cpu(), w->sim(), std::move(verbs));
    };
    *first = co_await post_batch();
    for (int n = 0; n < 3; ++n) {  // Sampled BEFORE the re-armed retry lands.
      (*words)[static_cast<size_t>(n)] =
          f->env.fabric.node(n).LoadWord((*addrs)[static_cast<size_t>(n)]);
    }
    co_await w->RefreshEpoch();
    *second = co_await post_batch();
    *done2 = true;
  };
  f.env.sim.After(300, [&f] { f.membership.CrashNode(3); });
  sim::Spawn(driver(&f, &w, &addrs, &payload, &first, &second, &words_after_fenced_batch, &done));
  f.env.sim.Run();

  ASSERT_TRUE(done);
  ASSERT_EQ(first.size(), 3u);
  for (const fabric::OpResult& r : first) {
    EXPECT_EQ(r.status, fabric::Status::kStaleEpoch) << "the whole batch must be fenced";
  }
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(words_after_fenced_batch[static_cast<size_t>(n)], 0u)
        << "a fenced verb must not apply (node " << n << ")";
  }
  ASSERT_EQ(second.size(), 3u);
  for (const fabric::OpResult& r : second) {
    EXPECT_EQ(r.status, fabric::Status::kOk) << "the re-armed batch must land";
  }
}

TEST(EpochFence, RepairChannelPassesTheEpochFence) {
  EpochEnv f;
  Worker& w = f.MakeEpochWorker(/*subscribe=*/false);
  w.MarkRepairChannel();
  const uint64_t addr = f.env.fabric.node(1).Allocate(8);
  f.membership.CrashNode(2);  // Epoch bump; w's cached epoch is now stale.

  bool done = false;
  fabric::Status status{};
  auto driver = [](EpochEnv* f, Worker* w, uint64_t addr2, fabric::Status* status,
                   bool* done2) -> sim::Task<void> {
    (void)f;
    std::array<uint8_t, 8> buf{};
    fabric::OpResult r = co_await w->qp(1).Read(addr2, buf);
    *status = r.status;
    *done2 = true;
  };
  sim::Spawn(driver(&f, &w, addr, &status, &done));
  f.env.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(status, fabric::Status::kOk)
      << "the repair coordinator drives the transitions and must pass the fence";
}

TEST(EpochFence, CanaryKnobRestoresPreFixBehavior) {
  // With fencing disabled the epoch still advances and is still pushed, but
  // stale-stamped verbs land and are trusted — the §5.4 residual window the
  // chaos canary demonstrates.
  EpochEnv f;
  f.membership.set_epoch_fencing(false);
  Worker& w = f.MakeEpochWorker(/*subscribe=*/false);
  const uint64_t addr = f.env.fabric.node(1).Allocate(8);

  bool done = false;
  fabric::Status status{};
  auto driver = [](EpochEnv* f, Worker* w, uint64_t addr2, fabric::Status* status,
                   bool* done2) -> sim::Task<void> {
    (void)f;
    std::array<uint8_t, 8> buf{};
    fabric::OpResult r = co_await w->qp(1).Read(addr2, buf);
    *status = r.status;
    *done2 = true;
  };
  f.env.sim.After(200, [&f] { f.membership.CrashNode(2); });
  sim::Spawn(driver(&f, &w, addr, &status, &done));
  f.env.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(status, fabric::Status::kOk) << "pre-fix: the stale in-flight verb is trusted";
  EXPECT_GT(f.membership.epoch(), 1u);
}

}  // namespace
}  // namespace swarm
