// xxHash64 reference-vector and property tests.

#include "src/hash/xxhash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace swarm::hash {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// Reference vectors for XXH64 (from the xxHash project documentation and
// widely cross-checked third-party implementations).
TEST(Xxh64, EmptyInputSeedZero) {
  EXPECT_EQ(Xxh64({}, 0), 0xef46db3751d8e999ull);
}

TEST(Xxh64, SingleCharacter) {
  EXPECT_EQ(Xxh64(Bytes("a"), 0), 0xd24ec4f1a98c6e5bull);
}

TEST(Xxh64, Abc) {
  EXPECT_EQ(Xxh64(Bytes("abc"), 0), 0x44bc2cf5ad770999ull);
}

TEST(Xxh64, LongStringUsesLaneLoop) {
  // > 32 bytes: exercises the 4-lane main loop.
  const std::string s = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(Xxh64(Bytes(s), 0), 0x0b242d361fda71bcull);
}

TEST(Xxh64, SeedChangesResult) {
  const std::string s = "payload";
  EXPECT_NE(Xxh64(Bytes(s), 0), Xxh64(Bytes(s), 1));
}

TEST(Xxh64, DeterministicAcrossCalls) {
  std::vector<uint8_t> data(1024);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  EXPECT_EQ(Xxh64(data), Xxh64(data));
}

TEST(Xxh64, SingleBitFlipChangesHash) {
  std::vector<uint8_t> data(256, 0xAB);
  const uint64_t base = Xxh64(data);
  for (size_t i = 0; i < data.size(); i += 17) {
    data[i] ^= 1;
    EXPECT_NE(Xxh64(data), base) << "flip at byte " << i;
    data[i] ^= 1;
  }
}

TEST(Xxh64, AllLengthsUpTo64AreDistinct) {
  // Prefixes of a fixed buffer should hash to pairwise distinct values; this
  // catches tail-handling bugs where trailing bytes get ignored.
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i + 1);
  }
  std::vector<uint64_t> seen;
  for (size_t len = 0; len <= 64; ++len) {
    uint64_t h = Xxh64(std::span<const uint8_t>(data.data(), len));
    for (uint64_t other : seen) {
      EXPECT_NE(h, other) << "collision at length " << len;
    }
    seen.push_back(h);
  }
}

TEST(HashMetaAndValue, BindsMetadataToValue) {
  std::vector<uint8_t> value{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const uint64_t h1 = HashMetaAndValue(0x1111, value);
  const uint64_t h2 = HashMetaAndValue(0x2222, value);
  EXPECT_NE(h1, h2);  // Same bytes under a different metadata word: invalid.
  value[3] ^= 0x80;
  EXPECT_NE(HashMetaAndValue(0x1111, value), h1);
}

TEST(Mix64, SensitiveToBothInputs) {
  EXPECT_NE(Mix64(1, 2), Mix64(2, 1));
  EXPECT_NE(Mix64(0, 0), Mix64(0, 1));
  EXPECT_EQ(Mix64(42, 43), Mix64(42, 43));
}

}  // namespace
}  // namespace swarm::hash
