// Zero-allocation guard for the steady-state hot path.
//
// The allocation purge (ROADMAP item 3) moved every per-op allocation —
// coroutine frames, Counter/Waiter/OpState shared blocks, phase structs,
// value byte buffers — onto the FramePool's free-list slabs. This guard
// pins that property: after a warmup phase populates caches, pools, and
// container capacities, a steady-state read/write workload against each KV
// store (SWARM, DM-ABD, FUSEE) must perform ZERO heap allocations. Any
// regression (a stray make_shared, a std::vector on a hot struct, a
// std::function capture) shows up as a nonzero delta with op-granular
// attribution.
//
// Scope: the STEADY-STATE data path only. Chaos, crash repair, migration,
// and membership churn are exempt — they are rare, inherently allocating
// control paths (fresh layouts, history logs, repair queues) and are covered
// by their own suites. Under AddressSanitizer the pool intentionally
// delegates to ::operator new/delete to preserve use-after-free detection
// (see src/sim/pool.h), so the guard skips itself there.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/dm_abd_kv.h"
#include "src/kv/fusee_kv.h"
#include "src/kv/swarm_kv.h"
#include "src/sim/pool.h"
#include "src/swarm/placement.h"
#include "tests/support/test_env.h"

// --- Global operator-new counting hooks (whole-binary, this TU defines). ---

// The replaced operators intentionally pair malloc/aligned_alloc with free;
// GCC's new/delete matcher cannot see that pairing and warns at inlined
// call sites in this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
uint64_t g_heap_allocs = 0;
bool g_trace = false;  // Set by SWARM_ZERO_ALLOC_TRACE: backtrace each alloc.
}  // namespace

#include <execinfo.h>

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (g_trace) {
    g_trace = false;  // backtrace() itself may allocate; no recursion.
    void* frames[24];
    const int depth = backtrace(frames, 24);
    backtrace_symbols_fd(frames, depth, 2);
    const char nl = '\n';
    (void)!write(2, &nl, 1);
    g_trace = true;
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = std::aligned_alloc(static_cast<std::size_t>(al), n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace swarm {
namespace {

using sim::Spawn;
using sim::Task;
using testing::TestEnv;
using testing::ValN;

#ifdef SWARM_POOL_BYPASS
constexpr bool kPoolBypassed = true;
#else
constexpr bool kPoolBypassed = false;
#endif

// One steady-state phase: a fixed mix of updates and gets over a key set the
// warmup already created. Writes a fresh value each round so out-of-place
// buffers, promotions, and slot-cache CASes all stay exercised.
template <typename Session>
Task<void> SteadyPhase(TestEnv* env, Session* kv, int rounds, int keys) {
  sim::Bytes value(48);  // Pooled: refilling it each op is heap-free.
  for (int i = 0; i < rounds; ++i) {
    for (uint64_t key = 0; key < static_cast<uint64_t>(keys); ++key) {
      std::fill(value.begin(), value.end(), static_cast<uint8_t>(i + key));
      kv::KvResult wr = co_await kv->Update(key, value);
      EXPECT_TRUE(wr.ok());
      kv::KvResult rd = co_await kv->Get(key);
      EXPECT_TRUE(rd.ok());
      EXPECT_EQ(rd.value.size(), 48u);
    }
    co_await env->sim.Delay(2000);
  }
}

// Drives warmup + measured steady state for one store; returns the number of
// heap allocations observed during the measured phase.
template <typename Session>
uint64_t MeasureSteadyState(TestEnv* env, Session* kv, int keys) {
  // Warmup: create the keys, then run enough steady rounds that every lazy
  // structure (caches, pool slabs, bucket capacities, QP state) reaches its
  // steady footprint.
  auto warmup = [](TestEnv* e, Session* s, int nkeys) -> Task<void> {
    for (uint64_t key = 0; key < static_cast<uint64_t>(nkeys); ++key) {
      kv::KvResult r = co_await s->Insert(key, ValN(48, static_cast<uint8_t>(key)));
      EXPECT_TRUE(r.ok());
    }
    // 60 rounds: long enough for slow-converging structures (the oop
    // quarantine queue recycles only after its ripening delay, so its
    // high-water mark takes tens of rounds to reach) to stop growing.
    co_await SteadyPhase(e, s, /*rounds=*/60, nkeys);
  };
  Spawn(warmup(env, kv, keys));
  env->sim.Run();

  const uint64_t before = g_heap_allocs;
  g_trace = std::getenv("SWARM_ZERO_ALLOC_TRACE") != nullptr;
  Spawn(SteadyPhase(env, kv, /*rounds=*/40, keys));
  env->sim.Run();
  g_trace = false;
  return g_heap_allocs - before;
}

TEST(ZeroAlloc, SwarmSteadyStateReadWriteIsHeapFree) {
  if (kPoolBypassed) {
    GTEST_SKIP() << "pool bypassed under ASan; allocation counting is meaningless";
  }
  TestEnv env(7);
  index::IndexService index(&env.sim);
  index::ClientCache cache;
  Worker& w = env.MakeWorker();
  kv::SwarmKvSession kv(&w, &index, &cache);
  EXPECT_EQ(MeasureSteadyState(&env, &kv, /*keys=*/4), 0u);
}

TEST(ZeroAlloc, DmAbdSteadyStateReadWriteIsHeapFree) {
  if (kPoolBypassed) {
    GTEST_SKIP() << "pool bypassed under ASan; allocation counting is meaningless";
  }
  TestEnv env(11);
  index::IndexService index(&env.sim);
  index::ClientCache cache;
  Worker& w = env.MakeWorker();
  kv::DmAbdKvSession kv(&w, &index, &cache);
  EXPECT_EQ(MeasureSteadyState(&env, &kv, /*keys=*/4), 0u);
}

TEST(ZeroAlloc, FuseeSteadyStateReadWriteIsHeapFree) {
  if (kPoolBypassed) {
    GTEST_SKIP() << "pool bypassed under ASan; allocation counting is meaningless";
  }
  TestEnv env(13);
  kv::FuseeStore store(&env.fabric);
  index::ClientCache cache;
  Worker& w = env.MakeWorker();
  kv::FuseeKvSession kv(&w, &store, &cache);
  EXPECT_EQ(MeasureSteadyState(&env, &kv, /*keys=*/4), 0u);
}

// Placement is on the insert/migration planning path: both the classic
// modular pick and the serving-probe pick must stay heap-free — the probe
// is stateless, so it gets no warmup allowance at all.
TEST(ZeroAlloc, PlacementPickIsHeapFree) {
  if (kPoolBypassed) {
    GTEST_SKIP() << "pool bypassed under ASan; allocation counting is meaningless";
  }
  std::vector<bool> serving(16, true);
  serving[3] = false;
  PlacementProbe probe;
  int nodes[4];
  const uint64_t before = g_heap_allocs;
  for (uint64_t h = 0; h < 10000; ++h) {
    PlaceReplicas(h, 3, 16, &serving, nodes);
    probe.Pick(h, 3, 16, &serving, nodes);
  }
  EXPECT_EQ(g_heap_allocs - before, 0u);
}

// The pool itself must also be quiescent at steady state: no slab refills
// once warm (free lists recycle), confirming the zero heap delta is "pool
// absorbs everything", not "pool grows forever".
TEST(ZeroAlloc, PoolStopsRefillingOnceWarm) {
  if (kPoolBypassed) {
    GTEST_SKIP() << "pool bypassed under ASan";
  }
  TestEnv env(17);
  index::IndexService index(&env.sim);
  index::ClientCache cache;
  Worker& w = env.MakeWorker();
  kv::SwarmKvSession kv(&w, &index, &cache);
  (void)MeasureSteadyState(&env, &kv, /*keys=*/4);
  const uint64_t refills_before = sim::FramePool::stats().slab_refills;
  Spawn(SteadyPhase(&env, &kv, /*rounds=*/40, /*keys=*/4));
  env.sim.Run();
  EXPECT_EQ(sim::FramePool::stats().slab_refills, refills_before);
}

}  // namespace
}  // namespace swarm
