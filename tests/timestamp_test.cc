// Tests for the metadata-word / timestamp encodings and the guess clock.

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/swarm/clock.h"
#include "src/swarm/timestamp.h"

namespace swarm {
namespace {

TEST(Meta, PackUnpackRoundtrip) {
  const Meta m = Meta::Pack(0xDEADBEEF, 93, true, 0xABCDEF);
  EXPECT_EQ(m.counter(), 0xDEADBEEFu);
  EXPECT_EQ(m.tid(), 93u);
  EXPECT_TRUE(m.verified());
  EXPECT_EQ(m.oop(), 0xABCDEFu);
}

TEST(Meta, ZeroIsEmpty) {
  Meta m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.deleted());
  EXPECT_EQ(m.raw(), 0u);
}

TEST(Meta, OrderCounterDominates) {
  const Meta lo = Meta::Pack(10, 120, true, 0xFFFFFF);
  const Meta hi = Meta::Pack(11, 0, false, 0);
  EXPECT_TRUE(TsLess(lo, hi));
  EXPECT_FALSE(TsLess(hi, lo));
}

TEST(Meta, OrderTidBreaksTies) {
  const Meta a = Meta::Pack(10, 3, true, 0);
  const Meta b = Meta::Pack(10, 4, false, 0);
  EXPECT_TRUE(TsLess(a, b));
}

TEST(Meta, VerifiedBeatsGuessedAtSameTimestamp) {
  // §3.2: VERIFIED is greater than GUESSED w.r.t. the max register's order.
  const Meta guessed = Meta::Pack(10, 3, false, 0x111111);
  const Meta verified = Meta::Pack(10, 3, true, 0x222222);
  EXPECT_TRUE(TsLess(guessed, verified));
  EXPECT_EQ(guessed.same_write_key(), verified.same_write_key());
}

TEST(Meta, OopDoesNotAffectOrderOrIdentity) {
  const Meta a = Meta::Pack(10, 3, false, 0x000001);
  const Meta b = Meta::Pack(10, 3, false, 0xFFFFFF);
  EXPECT_FALSE(TsLess(a, b));
  EXPECT_FALSE(TsLess(b, a));
  EXPECT_EQ(a.same_write_key(), b.same_write_key());
  EXPECT_EQ(a.ts_order_key(), b.ts_order_key());
}

TEST(Meta, TombstoneBeatsEverything) {
  const Meta t = Meta::Tombstone(5);
  EXPECT_TRUE(t.deleted());
  const Meta big = Meta::Pack(kDeleteCounter - 1, kMaxTid, true, kOopMask);
  EXPECT_TRUE(TsLess(big, t));
}

TEST(Meta, WithVerifiedPreservesIdentity) {
  const Meta g = Meta::Pack(77, 2, false, 42);
  const Meta v = g.WithVerified();
  EXPECT_TRUE(v.verified());
  EXPECT_EQ(v.counter(), g.counter());
  EXPECT_EQ(v.oop(), g.oop());
  EXPECT_EQ(v.same_write_key(), g.same_write_key());
}

TEST(Meta, OopAddrUsesGranules) {
  const Meta m = Meta::Pack(1, 0, false, 10);
  EXPECT_EQ(m.oop_addr(), 10 * kOopGranuleBytes);
}

TEST(TslWord, PackUnpack) {
  const TslWord w = TslWord::Pack(1234, LockMode::kWrite);
  EXPECT_EQ(w.counter(), 1234u);
  EXPECT_EQ(w.mode(), LockMode::kWrite);
  EXPECT_FALSE(w.bottom());
  const TslWord r = TslWord::Pack(1234, LockMode::kRead);
  EXPECT_EQ(r.mode(), LockMode::kRead);
  EXPECT_NE(w.raw(), r.raw());
  EXPECT_TRUE(TslWord().bottom());
}

TEST(GuessClock, StrictlyMonotonicPerClient) {
  sim::Simulator sim;
  GuessClock clock(&sim, 0);
  uint32_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint32_t c = clock.Guess();
    EXPECT_GT(c, last);
    last = c;
    sim.RunUntil(sim.Now() + 10);  // Less than one counter unit sometimes.
  }
}

TEST(GuessClock, TracksVirtualTime) {
  sim::Simulator sim;
  GuessClock clock(&sim, 0);
  sim.RunUntil(1 << 20);
  const uint32_t c = clock.Guess();
  EXPECT_NEAR(static_cast<double>(c), static_cast<double>((1 << 20) >> kCounterShiftNs), 2.0);
}

TEST(GuessClock, SkewShiftsGuesses) {
  sim::Simulator sim;
  sim.RunUntil(1 << 20);
  GuessClock fast(&sim, 4096);
  GuessClock slow(&sim, -4096);
  EXPECT_GT(fast.Guess(), slow.Guess());
}

TEST(GuessClock, ObserveStaleResynchronizes) {
  sim::Simulator sim;
  sim.RunUntil(1 << 16);
  GuessClock clock(&sim, -60000);  // Badly lagging clock.
  const uint32_t observed = static_cast<uint32_t>((sim.Now() + 50000) >> kCounterShiftNs);
  clock.ObserveStale(observed);
  EXPECT_GT(clock.Guess(), observed);
  EXPECT_EQ(clock.resyncs(), 1u);
}

TEST(GuessClock, NeverReachesTombstone) {
  sim::Simulator sim;
  GuessClock clock(&sim, 0);
  clock.ObserveStale(kDeleteCounter - 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_LT(clock.Guess(), kDeleteCounter);
  }
}

}  // namespace
}  // namespace swarm
