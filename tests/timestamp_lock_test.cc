// Tests for timestamp locks (§3.3, Appendix B): True safety, True exclusion,
// supersession by higher timestamps, concurrency races, and fault tolerance.

#include "src/swarm/timestamp_lock.h"

#include <gtest/gtest.h>

#include "src/sim/sync.h"
#include "tests/support/test_env.h"

namespace swarm {
namespace {

using sim::Spawn;
using sim::Task;
using testing::TestEnv;

TEST(TimestampLock, UncontendedLockSucceeds) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto driver = [](Worker* w, const ObjectLayout* layout) -> Task<void> {
    TimestampLock lock(w, layout, 0);
    TryLockResult r = co_await lock.TryLock(42, LockMode::kWrite);
    EXPECT_TRUE(r.quorum_ok);
    EXPECT_TRUE(r.acquired);  // True safety: no conflicting attempt exists.
    EXPECT_EQ(r.rtts, 1);     // One CAS roundtrip per replica, in parallel.
  };
  Spawn(driver(&w, &layout));
  env.sim.Run();
}

TEST(TimestampLock, SameModeSameTimestampBothSucceed) {
  TestEnv env;
  Worker& r1 = env.MakeWorker();
  Worker& r2 = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto driver = [](Worker* a, Worker* b, const ObjectLayout* layout) -> Task<void> {
    TimestampLock la(a, layout, 0);
    TimestampLock lb(b, layout, 0);
    auto [ra, rb] = co_await sim::WhenBoth(a->sim(), la.TryLock(7, LockMode::kRead),
                                           lb.TryLock(7, LockMode::kRead));
    // Two readers may both lock the same timestamp (readers-writer style).
    EXPECT_TRUE(ra.acquired);
    EXPECT_TRUE(rb.acquired);
  };
  Spawn(driver(&r1, &r2, &layout));
  env.sim.Run();
}

TEST(TimestampLock, TrueExclusionSequential) {
  TestEnv env;
  Worker& a = env.MakeWorker();
  Worker& b = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto driver = [](Worker* a, Worker* b, const ObjectLayout* layout) -> Task<void> {
    TimestampLock la(a, layout, 0);
    TimestampLock lb(b, layout, 0);
    TryLockResult w = co_await la.TryLock(9, LockMode::kWrite);
    EXPECT_TRUE(w.acquired);
    TryLockResult r = co_await lb.TryLock(9, LockMode::kRead);
    EXPECT_FALSE(r.acquired);  // Opposite mode already holds a majority.
  };
  Spawn(driver(&a, &b, &layout));
  env.sim.Run();
}

TEST(TimestampLock, HigherTimestampSupersedes) {
  TestEnv env;
  Worker& a = env.MakeWorker();
  Worker& b = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto driver = [](Worker* a, Worker* b, const ObjectLayout* layout) -> Task<void> {
    TimestampLock la(a, layout, 0);
    TimestampLock lb(b, layout, 0);
    // Locks are never unlocked, but can be relocked at higher timestamps.
    TryLockResult hi = co_await la.TryLock(100, LockMode::kRead);
    EXPECT_TRUE(hi.acquired);
    TryLockResult lo = co_await lb.TryLock(50, LockMode::kWrite);
    EXPECT_FALSE(lo.acquired);  // A higher timestamp was locked before.
    TryLockResult hi2 = co_await lb.TryLock(150, LockMode::kWrite);
    EXPECT_TRUE(hi2.acquired);  // Relocking higher succeeds.
  };
  Spawn(driver(&a, &b, &layout));
  env.sim.Run();
}

// Property: under concurrent racing, TRYLOCK(ts, READ) and TRYLOCK(ts, WRITE)
// never both return true (Theorem B.2), across many seeds and racer counts.
struct RaceResult {
  int read_acquired = 0;
  int write_acquired = 0;
};

Task<void> Racer(Worker* w, const ObjectLayout* layout, uint32_t owner, uint32_t ts, LockMode mode,
                 sim::Time delay, RaceResult* out) {
  co_await w->sim()->Delay(delay);
  TimestampLock lock(w, layout, owner);
  TryLockResult r = co_await lock.TryLock(ts, mode);
  if (r.acquired) {
    if (mode == LockMode::kRead) {
      out->read_acquired++;
    } else {
      out->write_acquired++;
    }
  }
}

class TimestampLockRace : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimestampLockRace, TrueExclusionUnderConcurrency) {
  TestEnv env(GetParam());
  ObjectLayout layout = env.MakeObject();
  RaceResult result;
  const int racers = 6;
  for (int i = 0; i < racers; ++i) {
    Worker& w = env.MakeWorker();
    const LockMode mode = (i % 2 == 0) ? LockMode::kRead : LockMode::kWrite;
    const sim::Time delay = static_cast<sim::Time>(env.sim.rng().Below(2000));
    Spawn(Racer(&w, &layout, /*owner=*/0, /*ts=*/77, mode, delay, &result));
  }
  env.sim.Run();
  // Readers may all win or all lose; but never both modes.
  EXPECT_FALSE(result.read_acquired > 0 && result.write_acquired > 0)
      << "True exclusion violated: " << result.read_acquired << " readers and "
      << result.write_acquired << " writers acquired ts=77";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimestampLockRace, ::testing::Range<uint64_t>(1, 40));

TEST(TimestampLock, SurvivesMinorityCrash) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  env.fabric.Crash(0);  // One of three replicas.

  bool done = false;
  auto driver = [](Worker* w, const ObjectLayout* layout, bool* done2) -> Task<void> {
    TimestampLock lock(w, layout, 0);
    TryLockResult r = co_await lock.TryLock(5, LockMode::kWrite);
    EXPECT_TRUE(r.quorum_ok);
    EXPECT_TRUE(r.acquired);
    *done2 = true;
  };
  Spawn(driver(&w, &layout, &done));
  env.sim.Run();
  EXPECT_TRUE(done);
}

TEST(TimestampLock, MajorityCrashReturnsUnacquired) {
  TestEnv env;
  Worker& w = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();
  env.fabric.Crash(0);
  env.fabric.Crash(1);

  bool done = false;
  auto driver = [](Worker* w, const ObjectLayout* layout, bool* done2) -> Task<void> {
    TimestampLock lock(w, layout, 0);
    TryLockResult r = co_await lock.TryLock(5, LockMode::kWrite);
    EXPECT_FALSE(r.quorum_ok);
    EXPECT_FALSE(r.acquired);  // Not acquired is always safe.
    *done2 = true;
  };
  Spawn(driver(&w, &layout, &done));
  env.sim.Run();
  EXPECT_TRUE(done);
}

TEST(TimestampLock, DistinctOwnersAreIndependent) {
  TestEnv env;
  Worker& a = env.MakeWorker();
  Worker& b = env.MakeWorker();
  ObjectLayout layout = env.MakeObject();

  auto driver = [](Worker* a, Worker* b, const ObjectLayout* layout) -> Task<void> {
    TimestampLock la(a, layout, /*owner=*/1);
    TimestampLock lb(b, layout, /*owner=*/2);
    TryLockResult ra = co_await la.TryLock(9, LockMode::kWrite);
    TryLockResult rb = co_await lb.TryLock(9, LockMode::kRead);
    EXPECT_TRUE(ra.acquired);
    EXPECT_TRUE(rb.acquired);  // Different writers' locks never conflict.
  };
  Spawn(driver(&a, &b, &layout));
  env.sim.Run();
}

}  // namespace
}  // namespace swarm
