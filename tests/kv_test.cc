// Integration tests for the four key-value stores (SWARM-KV, RAW, DM-ABD,
// FUSEE): basic CRUD semantics, cache behaviour, roundtrip structure
// (Table 2), delete/re-insert races, and failure handling.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/kv/dm_abd_kv.h"
#include "src/kv/fusee_kv.h"
#include "src/kv/raw_kv.h"
#include "src/kv/swarm_kv.h"
#include "src/sim/sync.h"
#include "tests/support/test_env.h"

namespace swarm::kv {
namespace {

using sim::Spawn;
using sim::Task;
using testing::TestEnv;
using testing::ValN;

// Bundles one client environment for a given store type.
struct KvFixture {
  explicit KvFixture(uint64_t seed = 1) : env(seed), indexsvc(&env.sim), fusee(&env.fabric) {}

  std::unique_ptr<KvSession> Make(const std::string& kind) {
    Worker& w = env.MakeWorker();
    if (kind == "swarm") {
      return std::make_unique<SwarmKvSession>(&w, &indexsvc, &cache);
    }
    if (kind == "raw") {
      return std::make_unique<RawKvSession>(&w, &indexsvc, &cache);
    }
    if (kind == "dmabd") {
      return std::make_unique<DmAbdKvSession>(&w, &indexsvc, &cache);
    }
    return std::make_unique<FuseeKvSession>(&w, &fusee, &cache);
  }

  TestEnv env;
  index::IndexService indexsvc;
  index::ClientCache cache;
  FuseeStore fusee;
};

Task<void> CrudSequence(KvSession* kv, bool* done) {
  // Insert → get → update → get → remove → get.
  KvResult ins = co_await kv->Insert(1, ValN(32, 0xA1));
  EXPECT_TRUE(ins.ok());

  KvResult g1 = co_await kv->Get(1);
  EXPECT_EQ(g1.status, KvStatus::kOk);
  EXPECT_EQ(g1.value, ValN(32, 0xA1));

  KvResult up = co_await kv->Update(1, ValN(32, 0xB2));
  EXPECT_EQ(up.status, KvStatus::kOk);

  KvResult g2 = co_await kv->Get(1);
  EXPECT_EQ(g2.status, KvStatus::kOk);
  EXPECT_EQ(g2.value, ValN(32, 0xB2));

  KvResult rm = co_await kv->Remove(1);
  EXPECT_EQ(rm.status, KvStatus::kOk);

  KvResult g3 = co_await kv->Get(1);
  EXPECT_EQ(g3.status, KvStatus::kNotFound);

  KvResult miss = co_await kv->Get(42);
  EXPECT_EQ(miss.status, KvStatus::kNotFound);

  KvResult upmiss = co_await kv->Update(42, ValN(8, 1));
  EXPECT_EQ(upmiss.status, KvStatus::kNotFound);
  *done = true;
}

class KvCrud : public ::testing::TestWithParam<const char*> {};

TEST_P(KvCrud, FullLifecycle) {
  KvFixture fx;
  auto kv = fx.Make(GetParam());
  bool done = false;
  Spawn(CrudSequence(kv.get(), &done));
  fx.env.sim.Run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Stores, KvCrud, ::testing::Values("swarm", "raw", "dmabd", "fusee"));

// Regression: a remove through a stale cached location used to
// fire-and-forget the generation-guarded unmap, tombstone a dead region,
// and report kOk while the re-inserted live mapping survived untouched.
TEST(RawKv, StaleCachedRemoveDeletesTheLiveMapping) {
  KvFixture fx;
  auto a = fx.Make("raw");
  index::ClientCache cache_b;
  Worker& wb = fx.env.MakeWorker();
  RawKvSession b(&wb, &fx.indexsvc, &cache_b);

  bool done = false;
  auto driver = [](KvSession* a, KvSession* b, bool* done2) -> Task<void> {
    // Seed a's cache, then delete + re-insert the key through b: a's cached
    // location now points at a dead region and a stale generation.
    EXPECT_TRUE((co_await a->Insert(1, ValN(16, 0xA1))).ok());
    EXPECT_EQ((co_await b->Remove(1)).status, KvStatus::kOk);
    EXPECT_TRUE((co_await b->Insert(1, ValN(16, 0xB2))).ok());
    // The stale-cached remove must kill the LIVE mapping before claiming
    // kOk...
    KvResult rm = co_await a->Remove(1);
    EXPECT_EQ(rm.status, KvStatus::kOk);
    // ... so absence is observable afterwards from every vantage point.
    KvResult g = co_await b->Get(1);
    EXPECT_EQ(g.status, KvStatus::kNotFound);
    *done2 = true;
  };
  Spawn(driver(a.get(), &b, &done));
  fx.env.sim.Run();
  EXPECT_TRUE(done);
}

// Regression companion: a get through the same stale cached location reads
// the dead region's tombstone and used to report kNotFound while the
// re-inserted value was live — it must re-locate through the index instead.
TEST(RawKv, StaleCachedGetFollowsTheReinsertedKey) {
  KvFixture fx;
  auto a = fx.Make("raw");
  index::ClientCache cache_b;
  Worker& wb = fx.env.MakeWorker();
  RawKvSession b(&wb, &fx.indexsvc, &cache_b);

  bool done = false;
  auto driver = [](KvSession* a, KvSession* b, bool* done2) -> Task<void> {
    EXPECT_TRUE((co_await a->Insert(1, ValN(16, 0xA1))).ok());
    EXPECT_EQ((co_await b->Remove(1)).status, KvStatus::kOk);
    EXPECT_TRUE((co_await b->Insert(1, ValN(16, 0xB2))).ok());
    KvResult g = co_await a->Get(1);
    EXPECT_EQ(g.status, KvStatus::kOk);
    EXPECT_EQ(g.value, ValN(16, 0xB2));
    EXPECT_EQ(g.rtts, 3);  // Dead-region read + index re-locate + live read.
    *done2 = true;
  };
  Spawn(driver(a.get(), &b, &done));
  fx.env.sim.Run();
  EXPECT_TRUE(done);
}

TEST(SwarmKv, SteadyStateOpsAreSingleRoundtrip) {
  KvFixture fx;
  auto kv = fx.Make("swarm");
  auto driver = [](sim::Simulator* sim, KvSession* kv) -> Task<void> {
    (void)co_await kv->Insert(7, ValN(64, 1));
    co_await sim->Delay(20000);  // Let the background VERIFIED promotion land.
    for (int i = 0; i < 5; ++i) {
      KvResult up = co_await kv->Update(7, ValN(64, static_cast<uint8_t>(i)));
      EXPECT_EQ(up.rtts, 1) << "update " << i;
      EXPECT_TRUE(up.fast_path);
      KvResult g = co_await kv->Get(7);
      EXPECT_EQ(g.rtts, 1) << "get " << i;
      EXPECT_EQ(g.value, ValN(64, static_cast<uint8_t>(i)));
    }
  };
  Spawn(driver(&fx.env.sim, kv.get()));
  fx.env.sim.Run();
}

TEST(SwarmKv, CacheMissCostsExtraRoundtrips) {
  KvFixture fx;
  auto writer = fx.Make("swarm");
  // A second client with its own empty cache.
  index::ClientCache other_cache;
  Worker& w2 = fx.env.MakeWorker();
  SwarmKvSession reader(&w2, &fx.indexsvc, &other_cache);

  auto driver = [](KvSession* writer, SwarmKvSession* reader) -> Task<void> {
    (void)co_await writer->Insert(9, ValN(16, 5));
    KvResult g = co_await reader->Get(9);
    EXPECT_EQ(g.status, KvStatus::kOk);
    EXPECT_FALSE(g.cache_hit);
    EXPECT_EQ(g.rtts, 2);  // Index lookup + read.
    KvResult g2 = co_await reader->Get(9);
    EXPECT_TRUE(g2.cache_hit);
    EXPECT_EQ(g2.rtts, 1);
    // §7.1: updates on a cache miss pay 2 extra RTs (index + metadata read).
    KvResult u = co_await reader->Update(10, ValN(16, 6));
    EXPECT_EQ(u.status, KvStatus::kNotFound);
    (void)co_await writer->Insert(10, ValN(16, 6));
    index::ClientCache fresh;
    KvResult u2 = co_await reader->Update(10, ValN(16, 7));
    EXPECT_EQ(u2.status, KvStatus::kOk);
  };
  Spawn(driver(writer.get(), &reader));
  fx.env.sim.Run();
}

TEST(KvRoundtrips, Table2CommonCase) {
  // Steady-state roundtrips with warm caches must match Table 2.
  KvFixture fx;
  auto swarm = fx.Make("swarm");
  index::ClientCache c2;
  index::ClientCache c3;
  index::ClientCache c4;
  Worker& w2 = fx.env.MakeWorker();
  Worker& w3 = fx.env.MakeWorker();
  Worker& w4 = fx.env.MakeWorker();
  RawKvSession raw(&w2, &fx.indexsvc, &c2);
  DmAbdKvSession dmabd(&w3, &fx.indexsvc, &c3);
  FuseeKvSession fusee(&w4, &fx.fusee, &c4);

  auto driver = [](KvSession* swarm, KvSession* raw, KvSession* dmabd,
                   KvSession* fusee) -> Task<void> {
    (void)co_await swarm->Insert(1, ValN(64, 1));
    (void)co_await raw->Insert(2, ValN(64, 1));
    (void)co_await dmabd->Insert(3, ValN(64, 1));
    (void)co_await fusee->Insert(4, ValN(64, 1));
    // Warm up caches.
    (void)co_await swarm->Get(1);
    (void)co_await raw->Get(2);
    (void)co_await dmabd->Get(3);
    (void)co_await fusee->Get(4);

    KvResult r;
    r = co_await swarm->Get(1);
    EXPECT_EQ(r.rtts, 1);
    r = co_await swarm->Update(1, ValN(64, 2));
    EXPECT_EQ(r.rtts, 1);
    r = co_await raw->Get(2);
    EXPECT_EQ(r.rtts, 1);
    r = co_await raw->Update(2, ValN(64, 2));
    EXPECT_EQ(r.rtts, 1);
    r = co_await dmabd->Get(3);
    EXPECT_EQ(r.rtts, 2);
    r = co_await dmabd->Update(3, ValN(64, 2));
    EXPECT_EQ(r.rtts, 2);
    r = co_await fusee->Get(4);
    EXPECT_EQ(r.rtts, 1);  // Own cache is fresh.
    r = co_await fusee->Update(4, ValN(64, 2));
    EXPECT_EQ(r.rtts, 4);
    r = co_await fusee->Get(4);
    EXPECT_EQ(r.rtts, 1);
  };
  Spawn(driver(swarm.get(), &raw, &dmabd, &fusee));
  fx.env.sim.Run();
}

TEST(FuseeKv, StaleCacheCostsSecondRoundtrip) {
  KvFixture fx;
  auto a = fx.Make("fusee");
  index::ClientCache cache_b;
  Worker& wb = fx.env.MakeWorker();
  FuseeKvSession b(&wb, &fx.fusee, &cache_b);

  auto driver = [](KvSession* a, KvSession* b) -> Task<void> {
    (void)co_await a->Insert(5, ValN(16, 1));
    (void)co_await b->Get(5);  // b caches the location.
    (void)co_await a->Update(5, ValN(16, 2));  // a moves the value.
    KvResult g = co_await b->Get(5);
    EXPECT_EQ(g.status, KvStatus::kOk);
    EXPECT_EQ(g.value, ValN(16, 2));
    EXPECT_EQ(g.rtts, 2);  // Old block forwarded: one extra roundtrip.
    EXPECT_FALSE(g.fast_path);
    KvResult g2 = co_await b->Get(5);
    EXPECT_EQ(g2.rtts, 1);  // Cache refreshed.
  };
  Spawn(driver(a.get(), &b));
  fx.env.sim.Run();
}

TEST(SwarmKv, DeletedKeyDetectedThroughStaleCache) {
  KvFixture fx;
  auto a = fx.Make("swarm");
  index::ClientCache cache_b;
  Worker& wb = fx.env.MakeWorker();
  SwarmKvSession b(&wb, &fx.indexsvc, &cache_b);

  auto driver = [](KvSession* a, SwarmKvSession* b, index::ClientCache* cb) -> Task<void> {
    (void)co_await a->Insert(6, ValN(16, 1));
    (void)co_await b->Get(6);  // b caches the replicas.
    (void)co_await a->Remove(6);
    // b's cached replicas now carry the tombstone: the get must observe the
    // delete, flush its cache, and report not-found (§5.3.4).
    KvResult g = co_await b->Get(6);
    EXPECT_EQ(g.status, KvStatus::kNotFound);
    EXPECT_EQ(cb->stats().invalidations, 1u);
  };
  Spawn(driver(a.get(), &b, &cache_b));
  fx.env.sim.Run();
}

TEST(SwarmKv, ReinsertAfterDeleteWorks) {
  KvFixture fx;
  auto kv = fx.Make("swarm");
  auto driver = [](KvSession* kv) -> Task<void> {
    (void)co_await kv->Insert(8, ValN(16, 1));
    (void)co_await kv->Remove(8);
    KvResult ins = co_await kv->Insert(8, ValN(16, 9));
    EXPECT_TRUE(ins.ok());
    KvResult g = co_await kv->Get(8);
    EXPECT_EQ(g.status, KvStatus::kOk);
    EXPECT_EQ(g.value, ValN(16, 9));
  };
  Spawn(driver(kv.get()));
  fx.env.sim.Run();
}

TEST(SwarmKv, InsertRaceTurnsIntoUpdate) {
  KvFixture fx;
  auto a = fx.Make("swarm");
  index::ClientCache cache_b;
  Worker& wb = fx.env.MakeWorker();
  SwarmKvSession b(&wb, &fx.indexsvc, &cache_b);

  int oks = 0;
  int exists = 0;
  auto racer = [](KvSession* kv, uint8_t fill, int* oks, int* exists) -> Task<void> {
    KvResult r = co_await kv->Insert(11, testing::ValN(16, fill));
    if (r.status == KvStatus::kOk) {
      ++*oks;
    } else if (r.status == KvStatus::kExists) {
      ++*exists;
    }
  };
  Spawn(racer(a.get(), 1, &oks, &exists));
  Spawn(racer(&b, 2, &oks, &exists));
  fx.env.sim.Run();
  EXPECT_EQ(oks, 1);
  EXPECT_EQ(exists, 1);

  // Both clients must now read a single winning value.
  bool checked = false;
  auto check = [](KvSession* kv, bool* checked2) -> Task<void> {
    KvResult g = co_await kv->Get(11);
    EXPECT_EQ(g.status, KvStatus::kOk);
    EXPECT_EQ(g.value.size(), 16u);
    *checked2 = true;
  };
  Spawn(check(a.get(), &checked));
  fx.env.sim.Run();
  EXPECT_TRUE(checked);
}

TEST(SwarmKv, SurvivesNodeCrashNoDowntime) {
  KvFixture fx;
  auto kv = fx.Make("swarm");
  auto driver = [](KvFixture* fx, KvSession* kv) -> Task<void> {
    (void)co_await kv->Insert(12, ValN(16, 1));
    fx->env.fabric.Crash(0);
    KvResult g = co_await kv->Get(12);
    EXPECT_EQ(g.status, KvStatus::kOk);  // Escalation, no recovery pause.
    KvResult u = co_await kv->Update(12, ValN(16, 2));
    EXPECT_EQ(u.status, KvStatus::kOk);
  };
  Spawn(driver(&fx, kv.get()));
  fx.env.sim.Run();
}

TEST(FuseeKv, NodeCrashCausesRecoveryPause) {
  KvFixture fx;
  auto kv = fx.Make("fusee");
  sim::Time blocked_for = 0;
  auto driver = [](KvFixture* fx, KvSession* kv, sim::Time* blocked) -> Task<void> {
    (void)co_await kv->Insert(13, ValN(16, 1));
    // Crash the key's primary node (whatever it is): crash all but one to be
    // sure the op trips over a failure.
    fx->env.fabric.Crash(0);
    fx->env.fabric.Crash(1);
    fx->env.fabric.Crash(2);
    const sim::Time start = fx->env.sim.Now();
    KvResult g = co_await kv->Get(13);
    *blocked = fx->env.sim.Now() - start;
    (void)g;
  };
  Spawn(driver(&fx, kv.get(), &blocked_for));
  fx.env.sim.Run();
  // Tens of milliseconds of unavailability (vs SWARM's microseconds).
  EXPECT_GE(blocked_for, 40 * sim::kMillisecond);
}

}  // namespace
}  // namespace swarm::kv
