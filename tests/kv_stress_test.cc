// End-to-end randomized stress for SWARM-KV: several clients hammer a small
// keyspace with gets, updates, inserts and deletes; every per-key history is
// checked for linearizability (treating insert as a write, delete as a write
// of "absent", and not-found reads as reads of "absent").
//
// This is the strongest whole-system test: it exercises Safe-Guess fast and
// slow paths, In-n-Out fallbacks, tombstones, index races, cache
// invalidation, background promotion, write-backs, and buffer recycling all
// at once, across many seeds.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/index/client_cache.h"
#include "src/index/index_service.h"
#include "src/kv/swarm_kv.h"
#include "tests/support/lincheck.h"
#include "tests/support/test_env.h"

namespace swarm::kv {
namespace {

using sim::Spawn;
using sim::Task;
using testing::HistoryOp;
using testing::LinearizabilityChecker;
using testing::TestEnv;

constexpr uint64_t kKeys = 4;
constexpr uint64_t kAbsent = 0;  // Register value modeling "no mapping".

struct StressState {
  std::map<uint64_t, std::vector<HistoryOp>> histories;  // Per key.
  uint64_t next_value = 1;
  uint64_t unavailable = 0;
};

std::vector<uint8_t> Encode(uint64_t v) {
  std::vector<uint8_t> b(8);
  std::memcpy(b.data(), &v, 8);
  return b;
}

uint64_t Decode(const std::vector<uint8_t>& b) {
  uint64_t v = 0;
  if (b.size() == 8) {
    std::memcpy(&v, b.data(), 8);
  }
  return v;
}

Task<void> StressClient(TestEnv* env, SwarmKvSession* kv, uint64_t seed, int ops,
                        StressState* st) {
  sim::Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    co_await env->sim.Delay(static_cast<sim::Time>(rng.Below(8000)));
    const uint64_t key = rng.Below(kKeys);
    const double dice = rng.Double();
    HistoryOp op;
    op.invoked = env->sim.Now();
    if (dice < 0.45) {
      // Get.
      KvResult r = co_await kv->Get(key);
      op.responded = env->sim.Now();
      if (r.status == KvStatus::kUnavailable) {
        ++st->unavailable;
        continue;
      }
      op.is_write = false;
      op.value = r.status == KvStatus::kOk ? Decode(r.value) : kAbsent;
    } else if (dice < 0.75) {
      // Update (may fail with not-found: that is a read of "absent").
      const uint64_t v = st->next_value++;
      KvResult r = co_await kv->Update(key, Encode(v));
      op.responded = env->sim.Now();
      if (r.status == KvStatus::kUnavailable) {
        ++st->unavailable;
        continue;
      }
      if (r.status == KvStatus::kOk) {
        op.is_write = true;
        op.value = v;
      } else {
        op.is_write = false;
        op.value = kAbsent;
      }
    } else if (dice < 0.9) {
      // Insert (turns into an update when the key exists).
      const uint64_t v = st->next_value++;
      KvResult r = co_await kv->Insert(key, Encode(v));
      op.responded = env->sim.Now();
      if (!r.ok()) {
        ++st->unavailable;
        continue;
      }
      op.is_write = true;
      op.value = v;
    } else {
      // Delete (not-found delete is a read of "absent").
      KvResult r = co_await kv->Remove(key);
      op.responded = env->sim.Now();
      if (r.status == KvStatus::kUnavailable) {
        ++st->unavailable;
        continue;
      }
      if (r.status == KvStatus::kOk) {
        op.is_write = true;
        op.value = kAbsent;
      } else {
        op.is_write = false;
        op.value = kAbsent;
      }
    }
    st->histories[key].push_back(op);
  }
}

class SwarmKvStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwarmKvStress, PerKeyHistoriesAreLinearizable) {
  TestEnv env(GetParam());
  index::IndexService index(&env.sim);
  StressState st;
  const int clients = 4;
  const int ops = 12;
  std::vector<std::unique_ptr<index::ClientCache>> caches;
  std::vector<std::unique_ptr<SwarmKvSession>> sessions;
  for (int c = 0; c < clients; ++c) {
    Worker& w = env.MakeWorker(env.sim.rng().Range(-5000, 5000));
    caches.push_back(std::make_unique<index::ClientCache>());
    sessions.push_back(std::make_unique<SwarmKvSession>(&w, &index, caches.back().get()));
  }
  for (int c = 0; c < clients; ++c) {
    Spawn(StressClient(&env, sessions[static_cast<size_t>(c)].get(),
                       GetParam() * 131 + static_cast<uint64_t>(c), ops, &st));
  }
  env.sim.Run();
  EXPECT_EQ(st.unavailable, 0u);
  for (const auto& [key, history] : st.histories) {
    ASSERT_LE(history.size(), 63u);
    EXPECT_TRUE(LinearizabilityChecker::Check(history))
        << "key " << key << " non-linearizable (seed " << GetParam() << ", "
        << history.size() << " ops)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwarmKvStress, ::testing::Range<uint64_t>(1, 40));

}  // namespace
}  // namespace swarm::kv
