// Tests for the simulated RDMA fabric: verb semantics, latency model, FIFO
// pipelining, torn large writes, CAS atomicity, failure injection, and the
// client CPU submission model.

#include "src/fabric/fabric.h"
#include "src/util/discard.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace swarm::fabric {
namespace {

using sim::Simulator;
using sim::Spawn;
using sim::Task;
using sim::Time;

FabricConfig TestConfig() {
  FabricConfig cfg;
  cfg.num_nodes = 4;
  cfg.node_capacity_bytes = 1 << 20;
  cfg.one_way_delay = 700;
  cfg.delay_jitter = 0;  // Deterministic timing for assertions.
  cfg.node_op_cost = 50;
  cfg.submit_cost = 200;
  return cfg;
}

TEST(MemoryNode, AllocateIsAlignedAndZeroed) {
  MemoryNode node(4096);
  uint64_t a = node.Allocate(24);
  uint64_t b = node.Allocate(3);
  uint64_t c = node.Allocate(8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b, a + 24);
  EXPECT_EQ(c % 8, 0u);
  EXPECT_GT(c, b);
  std::vector<uint8_t> buf(24, 0xFF);
  node.ReadInto(a, buf);
  for (uint8_t v : buf) {
    EXPECT_EQ(v, 0);
  }
}

TEST(MemoryNode, CasWordSemantics) {
  MemoryNode node(4096);
  uint64_t addr = node.Allocate(8);
  EXPECT_EQ(node.CasWord(addr, 0, 42), 0u);   // succeeds
  EXPECT_EQ(node.LoadWord(addr), 42u);
  EXPECT_EQ(node.CasWord(addr, 0, 99), 42u);  // fails, returns current
  EXPECT_EQ(node.LoadWord(addr), 42u);
  EXPECT_EQ(node.CasWord(addr, 42, 99), 42u);
  EXPECT_EQ(node.LoadWord(addr), 99u);
}

TEST(MemoryNode, RecoverLosesContents) {
  MemoryNode node(4096);
  uint64_t addr = node.Allocate(8);
  node.StoreWord(addr, 7);
  node.Crash();
  EXPECT_TRUE(node.failed());
  node.Recover();
  EXPECT_FALSE(node.failed());
  EXPECT_EQ(node.LoadWord(addr), 0u);
}

Task<void> WriteReadRoundtrip(Fabric* f, bool* ok, Time* write_done, Time* read_done) {
  Qp qp(f, 0, nullptr);
  uint64_t addr = f->node(0).Allocate(64);
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  OpResult w = co_await qp.Write(addr, data);
  *write_done = f->sim()->Now();
  EXPECT_TRUE(w.ok());

  std::vector<uint8_t> out(64, 0);
  OpResult r = co_await qp.Read(addr, out);
  *read_done = f->sim()->Now();
  EXPECT_TRUE(r.ok());
  *ok = (out == data);
}

TEST(Fabric, WriteThenReadReturnsData) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  bool ok = false;
  Time write_done = 0;
  Time read_done = 0;
  Spawn(WriteReadRoundtrip(&fabric, &ok, &write_done, &read_done));
  sim.Run();
  EXPECT_TRUE(ok);
  // Write: ~2 * one_way + node cost + transfer; the RTT must be ~1.5 us.
  EXPECT_GT(write_done, 1400);
  EXPECT_LT(write_done, 1700);
  EXPECT_GT(read_done - write_done, 1400);
  EXPECT_LT(read_done - write_done, 1800);
}

Task<void> CasRace(Fabric* f, uint64_t addr, uint64_t desired, int* successes) {
  Qp qp(f, 0, nullptr);
  OpResult r = co_await qp.Cas(addr, 0, desired);
  if (r.ok() && r.old_value == 0) {
    ++*successes;
  }
}

TEST(Fabric, ConcurrentCasOnlyOneWins) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  uint64_t addr = fabric.node(0).Allocate(8);
  int successes = 0;
  for (int i = 1; i <= 10; ++i) {
    Spawn(CasRace(&fabric, addr, static_cast<uint64_t>(i), &successes));
  }
  sim.Run();
  EXPECT_EQ(successes, 1);
}

// A read that lands in the middle of a large write's transfer window must
// observe a torn buffer (first half new, second half old) — the paper's §2.1
// non-atomicity property, which In-n-Out's hash check exists to detect.
Task<void> TornReadProbe(Fabric* f, uint64_t addr, size_t len, bool* saw_torn, bool* saw_old,
                         bool* saw_new) {
  Qp qp(f, 0, nullptr);
  std::vector<uint8_t> out(len);
  swarm::DiscardStatus(co_await qp.Read(addr, out));
  bool first_new = out[0] == 0xBB;
  bool last_new = out[len - 1] == 0xBB;
  if (first_new && !last_new) {
    *saw_torn = true;
  } else if (!first_new && !last_new) {
    *saw_old = true;
  } else if (first_new && last_new) {
    *saw_new = true;
  }
}

Task<void> BigWrite(Fabric* f, uint64_t addr, size_t len) {
  Qp qp(f, 0, nullptr);  // Distinct Qp object: no FIFO ordering vs the readers.
  std::vector<uint8_t> data(len, 0xBB);
  swarm::DiscardStatus(co_await qp.Write(addr, data));
}

TEST(Fabric, LargeWritesCanTear) {
  Simulator sim;
  FabricConfig cfg = TestConfig();
  cfg.bandwidth_bytes_per_ns = 0.5;  // Slow link: wide tear window.
  Fabric fabric(&sim, cfg);
  constexpr size_t kLen = 1024;
  uint64_t addr = fabric.node(0).Allocate(kLen);
  std::vector<uint8_t> init(kLen, 0xAA);
  fabric.node(0).WriteFrom(addr, init);

  bool saw_torn = false;
  bool saw_old = false;
  bool saw_new = false;
  sim.At(500, [&] { Spawn(BigWrite(&fabric, addr, kLen)); });
  // Probe at many offsets around the write's transfer window (~2 us wide).
  for (Time t = 0; t < 6000; t += 100) {
    sim.At(t, [&] { Spawn(TornReadProbe(&fabric, addr, kLen, &saw_torn, &saw_old, &saw_new)); });
  }
  sim.Run();
  EXPECT_TRUE(saw_torn);
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
}

// WRITE→CAS pipelining: if the CAS's effect is visible, the write must be
// fully visible too, and the pair completes in one roundtrip.
Task<void> PipelinedWriteCas(Fabric* f, uint64_t waddr, uint64_t caddr, Time* rtt, bool* cas_ok) {
  Qp qp(f, 0, nullptr);
  std::vector<uint8_t> data(512, 0xCD);
  Time start = f->sim()->Now();
  OpResult r = co_await qp.WriteThenCas(waddr, data, caddr, 0, 1);
  *rtt = f->sim()->Now() - start;
  *cas_ok = r.ok() && r.old_value == 0;
}

Task<void> OrderProbe(Fabric* f, uint64_t waddr, uint64_t /*caddr*/, size_t len, bool* violation) {
  Qp qp(f, 0, nullptr);
  std::vector<uint8_t> buf(len + 8);
  swarm::DiscardStatus(co_await qp.Read(waddr, buf));  // Covers [write buffer][cas word].
  uint64_t cas_word;
  std::memcpy(&cas_word, buf.data() + len, 8);
  if (cas_word == 1) {
    for (size_t i = 0; i < len; ++i) {
      if (buf[i] != 0xCD) {
        *violation = true;
        co_return;
      }
    }
  }
}

TEST(Fabric, PipelinedWriteCasIsOrderedAndSingleRoundtrip) {
  Simulator sim;
  FabricConfig cfg = TestConfig();
  cfg.bandwidth_bytes_per_ns = 1.0;
  Fabric fabric(&sim, cfg);
  // Layout: [512-byte buffer][8-byte cas word] contiguous so one read sees both.
  uint64_t waddr = fabric.node(0).Allocate(512 + 8);
  uint64_t caddr = waddr + 512;

  Time rtt = 0;
  bool cas_ok = false;
  bool violation = false;
  Spawn(PipelinedWriteCas(&fabric, waddr, caddr, &rtt, &cas_ok));
  for (Time t = 0; t < 5000; t += 50) {
    sim.At(t, [&] { Spawn(OrderProbe(&fabric, waddr, caddr, 512, &violation)); });
  }
  sim.Run();
  EXPECT_TRUE(cas_ok);
  EXPECT_FALSE(violation) << "CAS visible before its pipelined write";
  // One roundtrip: ~2 * 700 + transfer(512+overheads) + node costs < 2.7 us,
  // far below the ~2 RTT a non-pipelined write+cas would need.
  EXPECT_LT(rtt, 2700);
}

Task<void> SameQpFifo(Fabric* f, bool* ordered) {
  // Two back-to-back writes on one QP: issue both without waiting, the
  // second must not apply before the first.
  Qp qp(f, 0, nullptr);
  uint64_t a = f->node(0).Allocate(8);
  std::vector<uint8_t> one(8, 1);
  std::vector<uint8_t> two(8, 2);
  auto w1 = qp.Write(a, one);
  auto w2 = qp.Write(a, two);
  auto [r1, r2] = co_await sim::WhenBoth(f->sim(), std::move(w1), std::move(w2));
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  *ordered = (f->node(0).LoadWord(a) == 0x0202020202020202ull);
}

TEST(Fabric, SameQpWritesApplyInOrder) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  bool ordered = false;
  Spawn(SameQpFifo(&fabric, &ordered));
  sim.Run();
  EXPECT_TRUE(ordered);
}

Task<void> FailedNodeOp(Fabric* f, Time* latency, Status* status) {
  Qp qp(f, 0, nullptr);
  uint64_t addr = f->node(0).Allocate(8);
  std::vector<uint8_t> out(8);
  Time start = f->sim()->Now();
  OpResult r = co_await qp.Read(addr, out);
  *latency = f->sim()->Now() - start;
  *status = r.status;
}

TEST(Fabric, OpsOnCrashedNodeFailAfterDetectDelay) {
  Simulator sim;
  FabricConfig cfg = TestConfig();
  cfg.failure_detect_delay = 4000;
  Fabric fabric(&sim, cfg);
  fabric.Crash(0);
  Time latency = 0;
  Status status = Status::kOk;
  Spawn(FailedNodeOp(&fabric, &latency, &status));
  sim.Run();
  EXPECT_EQ(status, Status::kNodeFailed);
  EXPECT_GE(latency, 4000);
  EXPECT_LT(latency, 4200);
}

TEST(Fabric, CrashFailsInFlightUnexecutedOps) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  Status status = Status::kOk;
  Time latency = 0;
  Spawn(FailedNodeOp(&fabric, &latency, &status));
  sim.At(100, [&] { fabric.Crash(0); });  // Before the op reaches the node.
  sim.Run();
  EXPECT_EQ(status, Status::kNodeFailed);
}

Task<void> IssueNOps(Fabric* f, ClientCpu* cpu, int n, Time* total) {
  Qp qp(f, 0, cpu);
  uint64_t addr = f->node(0).Allocate(8);
  std::vector<uint8_t> out(8);
  Time start = f->sim()->Now();
  for (int i = 0; i < n; ++i) {
    swarm::DiscardStatus(co_await qp.Read(addr, out));
  }
  *total = f->sim()->Now() - start;
}

TEST(Fabric, ClientCpuSerializesSubmissions) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  ClientCpu cpu(&sim);
  Time t1 = 0;
  Time t2 = 0;
  // Two workers sharing one CPU: their submissions serialize, so the pair of
  // first ops departs 200 ns apart rather than simultaneously.
  Spawn(IssueNOps(&fabric, &cpu, 1, &t1));
  Spawn(IssueNOps(&fabric, &cpu, 1, &t2));
  sim.Run();
  EXPECT_EQ(cpu.busy_ns(), 400);
  EXPECT_NE(t1, t2);  // One of them waited behind the other's submission.
}

TEST(Fabric, StatsAccounting) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  bool ok = false;
  Time a = 0;
  Time b = 0;
  Spawn(WriteReadRoundtrip(&fabric, &ok, &a, &b));
  sim.Run();
  const FabricStats& st = fabric.stats();
  EXPECT_EQ(st.reads, 1u);
  EXPECT_EQ(st.writes, 1u);
  // Write: header + 64 payload; read: header each way + 64 payload back.
  EXPECT_EQ(st.bytes_to_nodes, kVerbHeaderBytes + 64 + kVerbHeaderBytes);
  EXPECT_EQ(st.bytes_from_nodes, kAckBytes + kVerbHeaderBytes + 64);
}

TEST(Fabric, JitterStaysBounded) {
  Simulator sim(123);
  FabricConfig cfg = TestConfig();
  cfg.delay_jitter = 90;
  Fabric fabric(&sim, cfg);
  for (int i = 0; i < 1000; ++i) {
    Time d = fabric.SampleDelay();
    EXPECT_GE(d, cfg.one_way_delay - cfg.delay_jitter);
    EXPECT_LE(d, cfg.one_way_delay + cfg.delay_jitter);
  }
}

TEST(Fabric, ExtraDelaySlowsNode) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  fabric.node(0).set_extra_delay(5000);
  Time latency = 0;
  Status status = Status::kNodeFailed;
  auto op = [](Fabric* f, Time* lat, Status* st) -> Task<void> {
    Qp qp(f, 0, nullptr);
    uint64_t addr = f->node(0).Allocate(8);
    std::vector<uint8_t> out(8);
    Time start = f->sim()->Now();
    OpResult r = co_await qp.Read(addr, out);
    *lat = f->sim()->Now() - start;
    *st = r.status;
  };
  Spawn(op(&fabric, &latency, &status));
  sim.Run();
  EXPECT_EQ(status, Status::kOk);
  EXPECT_GT(latency, 6000);
}

}  // namespace
}  // namespace swarm::fabric
