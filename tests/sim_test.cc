// Unit tests for the discrete-event simulation kernel: virtual clock, event
// ordering, coroutine tasks, spawning, and quorum counters.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace swarm::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, TiedEventsRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.At(5, [&, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  Time observed = -1;
  sim.At(100, [&] {
    sim.At(50, [&] { observed = sim.Now(); });  // In the past.
  });
  sim.Run();
  EXPECT_EQ(observed, 100);
}

TEST(Simulator, RunUntilAdvancesClockWithoutLaterEvents) {
  Simulator sim;
  int ran = 0;
  sim.At(10, [&] { ran++; });
  sim.At(500, [&] { ran++; });
  sim.RunUntil(100);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 100);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.U64(), b.U64());
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

Task<int> Return42() { co_return 42; }

Task<int> AddAfterDelay(Simulator* sim, int a, int b) {
  co_await sim->Delay(100);
  co_return a + b;
}

Task<void> RunAndStore(Simulator* sim, int* out) {
  int v = co_await Return42();
  int w = co_await AddAfterDelay(sim, v, 8);
  *out = w;
}

TEST(Task, AwaitChainsAndDelays) {
  Simulator sim;
  int out = 0;
  Spawn(RunAndStore(&sim, &out));
  sim.Run();
  EXPECT_EQ(out, 50);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(Task, LazyUntilAwaited) {
  Simulator sim;
  bool started = false;
  auto body = [](bool* s) -> Task<void> {
    *s = true;
    co_return;
  };
  {
    Task<void> t = body(&started);
    EXPECT_FALSE(started);  // Lazy: not started, and safely destroyed below.
  }
  EXPECT_FALSE(started);
  Spawn(body(&started));
  EXPECT_TRUE(started);  // Spawn starts eagerly.
}

Task<void> DeepChain(Simulator* sim, int depth, int* out) {
  if (depth == 0) {
    *out += 1;
    co_return;
  }
  co_await DeepChain(sim, depth - 1, out);
}

TEST(Task, DeepAwaitChainDoesNotOverflowStack) {
  // ASan's instrumentation defeats the symmetric-transfer tail calls this
  // test exercises, so the chain must stay shallow enough for a real stack.
#if !defined(SWARM_ASAN_BUILD) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SWARM_ASAN_BUILD 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(SWARM_ASAN_BUILD)
  constexpr int kDepth = 2000;
#else
  constexpr int kDepth = 100000;
#endif
  Simulator sim;
  int out = 0;
  Spawn(DeepChain(&sim, kDepth, &out));
  sim.Run();
  EXPECT_EQ(out, 1);
}

TEST(Counter, ThresholdWakesWaiter) {
  Simulator sim;
  Counter c(&sim);
  bool reached = false;
  auto waiter = [](Counter c2, bool* r) -> Task<void> {
    *r = co_await c2.WaitFor(3);
  };
  Spawn(waiter(c, &reached));
  sim.Run();
  EXPECT_FALSE(reached);
  c.Add(2);
  sim.Run();
  EXPECT_FALSE(reached);
  c.Add(1);
  sim.Run();
  EXPECT_TRUE(reached);
}

TEST(Counter, AlreadyReachedReturnsImmediately) {
  Simulator sim;
  Counter c(&sim);
  c.Add(5);
  bool reached = false;
  auto waiter = [](Counter c2, bool* r) -> Task<void> {
    *r = co_await c2.WaitFor(3);
  };
  Spawn(waiter(c, &reached));
  sim.Run();
  EXPECT_TRUE(reached);
}

TEST(Counter, TimeoutReturnsFalse) {
  Simulator sim;
  Counter c(&sim);
  bool result = true;
  Time when = -1;
  auto waiter = [](Simulator* sim, Counter c2, bool* r, Time* w) -> Task<void> {
    *r = co_await c2.WaitFor(2, 1000);
    *w = sim->Now();
  };
  Spawn(waiter(&sim, c, &result, &when));
  c.Add(1);
  sim.Run();
  EXPECT_FALSE(result);
  EXPECT_EQ(when, 1000);
}

TEST(Counter, ReachedBeforeTimeoutReturnsTrue) {
  Simulator sim;
  Counter c(&sim);
  bool result = false;
  auto waiter = [](Counter c2, bool* r) -> Task<void> {
    *r = co_await c2.WaitFor(2, 1000);
  };
  Spawn(waiter(c, &result));
  sim.At(500, [&] { c.Add(2); });
  sim.Run();
  EXPECT_TRUE(result);
  EXPECT_EQ(sim.Now(), 1000);  // The stale timeout event still fires harmlessly.
}

TEST(Counter, LateSignalAfterTimeoutIsHarmless) {
  Simulator sim;
  Counter c(&sim);
  bool result = true;
  auto waiter = [](Counter c2, bool* r) -> Task<void> {
    *r = co_await c2.WaitFor(1, 100);
  };
  Spawn(waiter(c, &result));
  sim.At(5000, [&] { c.Add(1); });
  sim.Run();
  EXPECT_FALSE(result);
  EXPECT_EQ(c.count(), 1);
}

TEST(Counter, MultipleWaitersDifferentThresholds) {
  Simulator sim;
  Counter c(&sim);
  int wakes = 0;
  auto waiter = [](Counter c2, int threshold, int* wakes) -> Task<void> {
    co_await c2.WaitFor(threshold);
    ++*wakes;
  };
  for (int t = 1; t <= 5; ++t) {
    Spawn(waiter(c, t, &wakes));
  }
  c.Add(3);
  sim.Run();
  EXPECT_EQ(wakes, 3);
  c.Add(2);
  sim.Run();
  EXPECT_EQ(wakes, 5);
}

TEST(WhenBoth, RunsConcurrently) {
  Simulator sim;
  int sum = 0;
  auto slow = [](Simulator* sim, Time d, int v) -> Task<int> {
    co_await sim->Delay(d);
    co_return v;
  };
  auto driver = [](Simulator* sim, Task<int> a, Task<int> b, int* out) -> Task<void> {
    auto [x, y] = co_await WhenBoth(sim, std::move(a), std::move(b));
    *out = x + y;
  };
  Spawn(driver(&sim, slow(&sim, 300, 1), slow(&sim, 200, 2), &sum));
  sim.Run();
  EXPECT_EQ(sum, 3);
  EXPECT_EQ(sim.Now(), 300);  // max, not sum: the tasks overlapped.
}

TEST(WhenAll, WaitsForEveryTask) {
  Simulator sim;
  int done = 0;
  auto slow = [](Simulator* sim, Time d, int* n) -> Task<void> {
    co_await sim->Delay(d);
    ++*n;
  };
  auto driver = [](Simulator* sim, std::vector<Task<void>> ts, int* n) -> Task<void> {
    co_await WhenAll(sim, std::move(ts));
    EXPECT_EQ(*n, 3);
  };
  std::vector<Task<void>> tasks;
  tasks.push_back(slow(&sim, 100, &done));
  tasks.push_back(slow(&sim, 50, &done));
  tasks.push_back(slow(&sim, 150, &done));
  Spawn(driver(&sim, std::move(tasks), &done));
  sim.Run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sim.Now(), 150);
}

TEST(Task, BackgroundSpawnOutlivesParent) {
  Simulator sim;
  int bg_done = 0;
  auto background = [](Simulator* sim, int* flag) -> Task<void> {
    co_await sim->Delay(1000);
    *flag = 1;
  };
  auto parent = [](Simulator* sim, int* flag) -> Task<void> {
    Spawn([](Simulator* s, int* f) -> Task<void> {
      co_await s->Delay(1000);
      *f = 1;
    }(sim, flag));
    co_return;  // Parent finishes immediately; background continues.
  };
  (void)background;
  Spawn(parent(&sim, &bg_done));
  EXPECT_EQ(bg_done, 0);
  sim.Run();
  EXPECT_EQ(bg_done, 1);
  EXPECT_EQ(sim.Now(), 1000);
}

}  // namespace
}  // namespace swarm::sim
